package experiments

import (
	"context"
	"fmt"

	"magicstate/internal/core"
	"magicstate/internal/sweep"
)

// Fig10Row is one (strategy, capacity) cell of Fig. 10: simulated
// latency, area and space-time volume. For multi-level factories each
// strategy is run under both reuse policies and the better volume is
// kept, mirroring the paper's "final results plots show these
// configurations" (§VIII.C.2); Reuse records the winning policy.
type Fig10Row struct {
	Strategy string
	Capacity int
	Latency  int
	Area     int
	Volume   float64
	Reuse    bool
}

// Fig10 reproduces Fig. 10a/b/e (level 1) or 10c/d/f (level 2). The
// capacity x strategy x reuse grid runs on the sweep engine; the reuse
// dimension collapses to the winning policy per cell.
func Fig10(level int, capacities []int, seed int64) ([]Fig10Row, error) {
	strategies := []core.Strategy{core.StrategyLinear, core.StrategyForceDirected, core.StrategyGraphPartition}
	if level >= 2 {
		strategies = append(strategies, core.StrategyStitch)
	}
	type point struct {
		capacity int
		strategy core.Strategy
		reuse    bool
	}
	var pts []point
	for _, c := range capacities {
		for _, s := range strategies {
			pts = append(pts, point{capacity: c, strategy: s, reuse: false})
			if level >= 2 {
				pts = append(pts, point{capacity: c, strategy: s, reuse: true})
			}
		}
	}
	reps, err := sweep.Map(context.Background(), Engine(), pts, func(_ int, pt point) (*core.Report, error) {
		rep, err := runCapacity(pt.capacity, level, pt.strategy, pt.reuse, seed)
		if err != nil {
			return nil, fmt.Errorf("fig10 cap %d %v: %w", pt.capacity, pt.strategy, err)
		}
		return rep, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Fig10Row
	i := 0
	for _, c := range capacities {
		for _, s := range strategies {
			var rep *core.Report
			var reuse bool
			if level == 1 {
				rep, reuse = reps[i], false
				i++
			} else {
				rep, reuse = pickReuse(reps[i], reps[i+1])
				i += 2
			}
			rows = append(rows, Fig10Row{
				Strategy: s.String(), Capacity: c,
				Latency: rep.Latency, Area: rep.Area, Volume: rep.Volume, Reuse: reuse,
			})
		}
	}
	return rows, nil
}

// pickReuse keeps the lower-volume of a strategy's no-reuse and reuse
// runs (ties go to reuse, which needs the smaller machine).
func pickReuse(nr, r *core.Report) (*core.Report, bool) {
	if r.Volume <= nr.Volume {
		return r, true
	}
	return nr, false
}
