package scaffold

import (
	"strings"
	"testing"
	"time"

	"magicstate/internal/bravyi"
	"magicstate/internal/circuit"
)

// fig5 is the paper's Fig. 5 listing (single-level Bravyi-Haah circuit,
// K = 8), with the tail's raw-state indexing fixed to consume each input
// exactly once — the same correction the programmatic generator applies
// (see internal/bravyi/module.go).
const fig5 = `
// Bravyi-Haah Distillation Circuit with K=8, L=1
#define K 8

module tail(qbit* raw_states, qbit* anc, qbit* out) {
  for (int i = 0; i < K; i++) {
    CNOT ( out[i] , anc[5 + i] );
    injectT ( raw_states[2 * K + 8 + i] , anc[5 + i] );
    CNOT ( anc[5 + i] , anc[4 + i] );
    CNOT ( anc[3 + i] , anc[5 + i] );
    CNOT ( anc[4 + i] , anc[3 + i] );
  }
}

module BravyiHaahModule(qbit* raw_states, qbit* anc, qbit* out) {
  H ( anc[0] );
  H ( anc[1] );
  H ( anc[2] );
  for (int i = 0; i < K; i++)  { H ( out[i] ); }
  CNOT ( anc[1] , anc[3] );
  CNOT ( anc[2] , anc[4] );
  CXX ( anc[0] , anc , K );
  tail( raw_states , anc , out );
  for (int i = 1; i < K + 5; i++) { injectT(raw_states[2 * i - 2], anc[i]); }
  CXX ( anc[0] , anc , K + 4 );
  for (int i = 1; i < K + 5; i++) { injectTdag(raw_states[2 * i - 1], anc[i]); }
  MeasX ( anc );
}

module block_code(qbit* raw, qbit* out, qbit* anc) {
  BravyiHaahModule( raw , anc , out );
}

module main ( ) {
  qbit raw_states[3 * K + 8];
  qbit out[K];
  qbit anc[K + 5];
  block_code( raw_states , out , anc );
}
`

func TestCompileFig5(t *testing.T) {
	c, err := Compile(fig5)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 53 {
		t.Errorf("qubits = %d, want 53 (5k+13 at k=8)", c.NumQubits)
	}
	// The compiled listing must match the programmatic generator's gate
	// census exactly.
	f, err := bravyi.Build(bravyi.Params{K: 8, Levels: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []circuit.Kind{
		circuit.KindH, circuit.KindCNOT, circuit.KindCXX,
		circuit.KindInjectT, circuit.KindInjectTdag, circuit.KindMeasX,
	} {
		if got, want := c.CountKind(k), f.Circuit.CountKind(k); got != want {
			t.Errorf("%v: compiled %d, generator %d", k, got, want)
		}
	}
	if len(c.Gates) != len(f.Circuit.Gates) {
		t.Errorf("gate count: compiled %d, generator %d", len(c.Gates), len(f.Circuit.Gates))
	}
}

func TestCompileLoopsAndArithmetic(t *testing.T) {
	src := `
#define N 3
module main() {
  qbit q[2 * N];
  for (int i = 0; i < N; i++) {
    H(q[2 * i]);
    CNOT(q[2 * i], q[2 * i + 1]);
  }
}`
	c, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 6 || c.CountKind(circuit.KindH) != 3 || c.CountKind(circuit.KindCNOT) != 3 {
		t.Errorf("unexpected shape: %s", c.String())
	}
}

func TestCompileNestedLoopsAndCalls(t *testing.T) {
	src := `
module bell(qbit* a, qbit* b) {
  H(a[0]);
  CNOT(a[0], b[0]);
}
module main() {
  qbit x[4];
  qbit y[4];
  for (int i = 0; i < 2; i++) {
    for (int j = 0; j < 2; j++) {
      H(x[2 * i + j]);
    }
  }
  bell(x, y);
}`
	c, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.CountKind(circuit.KindH) != 5 || c.CountKind(circuit.KindCNOT) != 1 {
		t.Errorf("unexpected census: %s", c.String())
	}
}

func TestCompileWholeArrayGatesAndBarrier(t *testing.T) {
	src := `
module main() {
  qbit q[3];
  H(q);
  barrier(q);
  MeasX(q);
}`
	c, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.CountKind(circuit.KindH) != 3 || c.CountKind(circuit.KindMeasX) != 3 || c.CountKind(circuit.KindBarrier) != 1 {
		t.Errorf("unexpected census: %s", c.String())
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"no main", `module foo() { }`, "no main"},
		{"undefined name", `module main() { H(q[0]); }`, "undefined"},
		{"index out of range", `module main() { qbit q[1]; H(q[3]); }`, "out of range"},
		{"unknown module", `module main() { qbit q[1]; frob(q); }`, "unknown module"},
		{"unknown gate as call", `module main() { qbit q[2]; CCNOT(q); }`, "unknown module"},
		{"int where qubit", `module main() { qbit q[1]; H(3); }`, "want qubits"},
		{"bad token", `module main() { qbit q[1]; H(q[0]) @ }`, "unexpected character"},
		{"redefined module", `module main() {} module main() {}`, "redefined"},
		{"cnot arity", `module main() { qbit q[3]; CNOT(q, q); }`, "single qubit"},
		{"division by zero", `#define Z 0
module main() { qbit q[1 / Z]; }`, "division by zero"},
	}
	for _, tc := range cases {
		_, err := Compile(tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestCompileRecursionGuard(t *testing.T) {
	src := `
module loop(qbit* q) { loop(q); }
module main() { qbit q[1]; loop(q); }`
	_, err := Compile(src)
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Errorf("recursion should trip the depth guard, got %v", err)
	}
}

func TestCommentsAndDefines(t *testing.T) {
	src := `
// line comment
/* block
   comment */
#define A 2
#define B 3
module main() {
  qbit q[A + B]; // five qubits
  H(q[A * B - 6]);
}`
	c, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 5 {
		t.Errorf("qubits = %d, want 5", c.NumQubits)
	}
}

func TestParseForLoopValidation(t *testing.T) {
	for _, src := range []string{
		`module main() { for (i = 0; i < 3; i++) { } }`,     // missing int
		`module main() { for (int i = 0; j < 3; i++) { } }`, // wrong condition var
		`module main() { for (int i = 0; i < 3; j++) { } }`, // wrong increment var
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("malformed for loop accepted: %s", src)
		}
	}
}

func TestLexerUnterminatedComment(t *testing.T) {
	if _, err := lex("/* oops"); err == nil {
		t.Error("unterminated comment should fail")
	}
}

// TestElaborationBudgets pins the interpreter's resource limits: an
// unrolled loop with a huge trip count and an oversized qbit array must
// both fail fast with a structured error instead of hanging or
// ballooning memory — compilers run at HTTP request-validation time.
func TestElaborationBudgets(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"runaway loop",
			`module main() { qbit q[1]; for (int i = 0; i < 1000000000; i++) { } }`,
			"statements"},
		{"oversized array",
			`module main() { qbit q[1000000000]; }`,
			"more than"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			done := make(chan error, 1)
			go func() {
				_, err := Compile(tc.src)
				done <- err
			}()
			select {
			case err := <-done:
				if err == nil || !strings.Contains(err.Error(), tc.want) {
					t.Fatalf("err = %v, want mention of %q", err, tc.want)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("Compile hung")
			}
		})
	}
}

func FuzzScaffoldParse(f *testing.F) {
	f.Add(fig5)
	f.Add(`#define K 2
module sub(qbit* a) { H(a[0]); CNOT(a[0], a[1]); }
module main() { qbit q[K]; sub(q); MeasZ(q); }`)
	f.Add(`module main() { qbit q[3]; for (int i = 0; i < 3; i++) { T(q[i]); } }`)
	f.Add(`/* comment */ module main() { }`)
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Compile(src)
		if err != nil {
			return
		}
		// The frontend-boundary contract: anything that compiles is a
		// valid circuit.
		if verr := c.Validate(); verr != nil {
			t.Fatalf("Compile accepted %q but circuit invalid: %v", src, verr)
		}
	})
}
