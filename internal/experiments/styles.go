package experiments

import (
	"context"
	"fmt"
	"io"

	"magicstate/internal/bravyi"
	"magicstate/internal/core"
	"magicstate/internal/layout"
	"magicstate/internal/mesh"
	"magicstate/internal/sweep"
)

// StyleRow is one (code distance, interaction style) point of the §IX
// interaction-style study: the same factory circuit and placement
// executed under braiding, lattice surgery and teleportation disciplines.
type StyleRow struct {
	Distance int
	Style    string
	Latency  int
	Stalls   int
	Area     int
	Volume   float64
}

// StylesExperiment sweeps code distance for every interaction style on a
// level-`level` capacity-K^level factory with the linear mapping, so the
// differences between rows come only from the interaction discipline.
// Braiding rows are distance-insensitive by construction (§II.C) and act
// as the horizontal reference the other styles cross.
func StylesExperiment(k, level int, distances []int, seed int64) ([]StyleRow, error) {
	params := bravyi.Params{K: k, Levels: level, Reuse: level >= 2, Barriers: true}
	f, err := bravyi.Build(params)
	if err != nil {
		return nil, fmt.Errorf("styles: %w", err)
	}
	pl := layout.Linear(f)
	type point struct {
		distance int
		style    mesh.InteractionStyle
	}
	var pts []point
	for _, d := range distances {
		if d < 1 {
			return nil, fmt.Errorf("styles: bad distance %d", d)
		}
		for _, s := range mesh.Styles() {
			pts = append(pts, point{distance: d, style: s})
		}
	}
	rows, err := sweep.Map(context.Background(), Engine(), pts, func(_ int, pt point) (StyleRow, error) {
		res, err := mesh.Simulate(f.Circuit, pl, mesh.Config{Style: pt.style, Distance: pt.distance})
		if err != nil {
			return StyleRow{}, fmt.Errorf("styles d=%d %v: %w", pt.distance, pt.style, err)
		}
		return StyleRow{
			Distance: pt.distance,
			Style:    pt.style.String(),
			Latency:  res.Latency,
			Stalls:   res.Stalls,
			Area:     res.Area,
			Volume:   res.Volume().SpaceTime(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	_ = seed // the linear mapping and the simulator are deterministic
	return rows, nil
}

// WriteStyles renders the interaction-style sweep as a distance × style
// latency table with stall counts.
func WriteStyles(w io.Writer, k, level int, rows []StyleRow) {
	fmt.Fprintf(w, "Interaction styles (§IX) — K=%d level-%d factory, linear mapping\n", k, level)
	fmt.Fprintln(w, "latency (stalls) per code distance; braiding is distance-insensitive")
	// Collect distances and styles preserving order.
	var ds []int
	var styles []string
	seenD := map[int]bool{}
	seenS := map[string]bool{}
	for _, r := range rows {
		if !seenD[r.Distance] {
			seenD[r.Distance] = true
			ds = append(ds, r.Distance)
		}
		if !seenS[r.Style] {
			seenS[r.Style] = true
			styles = append(styles, r.Style)
		}
	}
	cell := func(style string, d int) *StyleRow {
		for i := range rows {
			if rows[i].Style == style && rows[i].Distance == d {
				return &rows[i]
			}
		}
		return nil
	}
	tw := newTab(w)
	fmt.Fprintf(tw, "style\\distance")
	for _, d := range ds {
		fmt.Fprintf(tw, "\td=%d", d)
	}
	fmt.Fprintln(tw)
	for _, s := range styles {
		fmt.Fprintf(tw, "%s", s)
		for _, d := range ds {
			if r := cell(s, d); r != nil {
				fmt.Fprintf(tw, "\t%d (%d)", r.Latency, r.Stalls)
			} else {
				fmt.Fprintf(tw, "\t-")
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// StyleStrategyRow is one (mapping strategy, interaction style) cell of
// the §IX interaction hypothesis: "our proposed optimizations may likely
// change the trade off thresholds presented in [1]".
type StyleStrategyRow struct {
	Strategy string
	Style    string
	Latency  int
	Stalls   int
}

// StylesByStrategy crosses mapping strategies with interaction styles at
// a fixed code distance on a two-level factory. Better mappings leave
// less congestion for teleportation to relieve, so the gap between
// full-hold styles and teleportation should shrink from Line to HS —
// which is the sense in which optimization shifts the style trade-off.
func StylesByStrategy(k, distance int, seed int64) ([]StyleStrategyRow, error) {
	if distance < 1 {
		return nil, fmt.Errorf("styles: bad distance %d", distance)
	}
	type point struct {
		strategy core.Strategy
		style    mesh.InteractionStyle
	}
	var pts []point
	for _, strat := range []core.Strategy{
		core.StrategyLinear, core.StrategyGraphPartition, core.StrategyStitch,
	} {
		for _, s := range mesh.Styles() {
			pts = append(pts, point{strategy: strat, style: s})
		}
	}
	return sweep.Map(context.Background(), Engine(), pts, func(_ int, pt point) (StyleStrategyRow, error) {
		rep, err := Engine().RunOne(core.Config{
			K: k, Levels: 2, Reuse: true, Strategy: pt.strategy, Seed: seed,
			Style: pt.style, Distance: distance,
		})
		if err != nil {
			return StyleStrategyRow{}, fmt.Errorf("styles %v/%v: %w", pt.strategy, pt.style, err)
		}
		return StyleStrategyRow{
			Strategy: pt.strategy.String(),
			Style:    pt.style.String(),
			Latency:  rep.Latency,
			Stalls:   rep.Stalls,
		}, nil
	})
}

// WriteStylesByStrategy renders the strategy x style matrix.
func WriteStylesByStrategy(w io.Writer, k, distance int, rows []StyleStrategyRow) {
	fmt.Fprintf(w, "Interaction styles x mapping strategies (§IX) — K=%d level-2, d=%d\n", k, distance)
	var strategies, styles []string
	seenStrat, seenStyle := map[string]bool{}, map[string]bool{}
	for _, r := range rows {
		if !seenStrat[r.Strategy] {
			seenStrat[r.Strategy] = true
			strategies = append(strategies, r.Strategy)
		}
		if !seenStyle[r.Style] {
			seenStyle[r.Style] = true
			styles = append(styles, r.Style)
		}
	}
	cell := func(strat, style string) *StyleStrategyRow {
		for i := range rows {
			if rows[i].Strategy == strat && rows[i].Style == style {
				return &rows[i]
			}
		}
		return nil
	}
	tw := newTab(w)
	fmt.Fprintf(tw, "strategy\\style")
	for _, s := range styles {
		fmt.Fprintf(tw, "\t%s", s)
	}
	fmt.Fprintln(tw)
	for _, strat := range strategies {
		fmt.Fprintf(tw, "%s", strat)
		for _, s := range styles {
			if r := cell(strat, s); r != nil {
				fmt.Fprintf(tw, "\t%d (%d)", r.Latency, r.Stalls)
			} else {
				fmt.Fprintf(tw, "\t-")
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(w, "latency (stalls); better mappings leave less congestion for teleportation to relieve")
}
