// Package presets names curated sweep suites — fixed, versioned lists
// of batch points — so the same scenario grid can be launched by name
// from every surface: `paperbench preset <name>` on the CLI and
// POST /v1/batch {"preset": "<name>"} on msfud. A preset expands to
// plain magicstate.BatchPoints, so everything downstream (memo cache,
// durable store, cluster fabric) treats preset points exactly like
// hand-written ones; two surfaces running the same preset produce
// byte-identical result sets because they lower to identical configs.
//
// Presets are part of the repo's compatibility surface: renaming one,
// or changing its point list, changes what a pinned name reproduces.
// Extend by adding new names instead of mutating existing ones.
package presets

import (
	"fmt"
	"sort"

	"magicstate"
)

// Preset is one named suite.
type Preset struct {
	// Name is the stable identifier both CLIs accept.
	Name string
	// Description says what the suite demonstrates, one line.
	Description string
	// Points is the expanded grid, in the order results are reported.
	Points []magicstate.BatchPoint
}

// qasmBell is the embedded OpenQASM source the qasm preset points run:
// a GHZ-style entangler with a magic-state-consuming T layer, small
// enough to simulate in milliseconds but touching every gate family the
// frontend supports.
const qasmBell = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
h q[0];
cx q[0], q[1];
cx q[1], q[2];
cx q[2], q[3];
t q;
barrier q;
tdg q[0];
s q[1];
sdg q[2];
h q[3];
cx q[3], q[0];
measure q -> c;
`

// registry holds every preset by name. Point lists are constructed once
// at init and treated as immutable; Get hands out the shared slice.
var registry = map[string]Preset{}

func register(p Preset) {
	if _, dup := registry[p.Name]; dup {
		panic(fmt.Sprintf("presets: duplicate preset %q", p.Name))
	}
	registry[p.Name] = p
}

func init() {
	// strategies-small: the paper's Table I strategy cross-section at the
	// smallest factory, the cheapest end-to-end sanity grid.
	strategies := Preset{
		Name:        "strategies-small",
		Description: "capacity-4 single-level factory under all four flat mapping strategies",
	}
	for _, st := range []magicstate.Strategy{
		magicstate.LinearMapping, magicstate.RandomMapping,
		magicstate.GraphPartitioning, magicstate.ForceDirected,
	} {
		strategies.Points = append(strategies.Points, magicstate.BatchPoint{
			Spec: magicstate.FactorySpec{Capacity: 4, Levels: 1},
			Opts: magicstate.Options{Seed: 1}.WithStrategy(st),
		})
	}
	register(strategies)

	// defect-ladder: one factory on meshes of increasing fabrication
	// damage. Latency should be monotone-ish in defect count; area grows
	// only if relocation has to add rows.
	defects := Preset{
		Name:        "defect-ladder",
		Description: "capacity-4 factory on pristine through increasingly defective meshes",
	}
	for _, dm := range []string{"", "1,0", "1,0;3,0", "0,0;1,0;3,0;5,0"} {
		defects.Points = append(defects.Points, magicstate.BatchPoint{
			Spec: magicstate.FactorySpec{Capacity: 4, Levels: 1},
			Opts: magicstate.Options{Seed: 1, Defects: dm}.WithStrategy(magicstate.LinearMapping),
		})
	}
	register(defects)

	// workload-mix: the frontend aperture in one suite — an imported QASM
	// program, then seeded random circuits of growing T-density, each
	// under the linear and force-directed mappers.
	mix := Preset{
		Name:        "workload-mix",
		Description: "qasm import plus seeded random circuits across two mappers",
	}
	sources := []struct{ kind, src string }{
		{"qasm", qasmBell},
		{"random", "q=6;layers=8;cx=0.5;t=0.2"},
		{"random", "q=9;layers=10;cx=0.4;t=0.4"},
	}
	for _, s := range sources {
		for _, st := range []magicstate.Strategy{magicstate.LinearMapping, magicstate.ForceDirected} {
			mix.Points = append(mix.Points, magicstate.BatchPoint{
				Opts: magicstate.Options{
					Seed: 1, Workload: s.kind, WorkloadSource: s.src,
				}.WithStrategy(st),
			})
		}
	}
	register(mix)

	// scenario-small: the cross-frontier smoke suite the CI e2e step
	// runs — one point from each aperture (factory, defects, qasm,
	// random workload), small enough to finish in seconds.
	register(Preset{
		Name:        "scenario-small",
		Description: "one point per frontend: factory, defective mesh, qasm, random workload",
		Points: []magicstate.BatchPoint{
			{
				Spec: magicstate.FactorySpec{Capacity: 4, Levels: 1},
				Opts: magicstate.Options{Seed: 1}.WithStrategy(magicstate.LinearMapping),
			},
			{
				Spec: magicstate.FactorySpec{Capacity: 4, Levels: 1},
				Opts: magicstate.Options{Seed: 1, Defects: "1,0;3,0"}.WithStrategy(magicstate.LinearMapping),
			},
			{
				Opts: magicstate.Options{
					Seed: 1, Workload: "qasm", WorkloadSource: qasmBell,
				}.WithStrategy(magicstate.LinearMapping),
			},
			{
				Opts: magicstate.Options{
					Seed: 1, Workload: "random", WorkloadSource: "q=6;layers=6;cx=0.5;t=0.25",
				}.WithStrategy(magicstate.LinearMapping),
			},
		},
	})
}

// Names lists every preset name, sorted, for error messages and
// discovery endpoints.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Get resolves a preset by name. The returned point slice is shared:
// callers must not mutate it.
func Get(name string) (Preset, bool) {
	p, ok := registry[name]
	return p, ok
}
