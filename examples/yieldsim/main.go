// Monte-Carlo yield: sample a two-level factory's stochastic behaviour —
// syndrome failures (§II.F), O'Gorman-Campbell checkpoint discards [20],
// and the loss-compensation maintenance reserve of §IX — and compare the
// sampled full-batch yield against the analytic first-order model the
// provisioning math in examples/tbudget relies on.
package main

import (
	"fmt"
	"log"

	"magicstate/internal/bravyi"
	"magicstate/internal/montecarlo"
	"magicstate/internal/resource"
)

func main() {
	p := bravyi.Params{K: 4, Levels: 2, Barriers: true}
	em := resource.DefaultError()
	const trials = 50000

	base := montecarlo.Config{Params: p, Errors: em, Trials: trials, Seed: 1}
	plain, err := montecarlo.Run(base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("K=%d two-level factory, %d trials, inject error %.0e\n",
		p.K, trials, em.InjectError)
	fmt.Printf("  analytic full-batch yield: %.4f\n", montecarlo.AnalyticFullYield(p, em))
	fmt.Printf("  sampled  full-batch yield: %.4f\n", plain.FullYieldRate)
	fmt.Printf("  mean states delivered:     %.2f of %d\n", plain.MeanOutputs, p.Capacity())
	fmt.Printf("  raw states per delivered:  %.1f (lossless floor %.1f)\n",
		plain.ExpectedRawPerState, float64(p.Inputs())/float64(p.Capacity()))

	ck := base
	ck.Checkpoints = true
	checked, err := montecarlo.Run(ck)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith checkpoint group discards [20]:\n")
	fmt.Printf("  mean states delivered:     %.2f\n", checked.MeanOutputs)
	fmt.Printf("  groups discarded per run:  %.2f\n", checked.MeanGroupsDiscarded)

	fmt.Printf("\nloss compensation (§IX): spare modules per round vs full yield\n")
	for _, spare := range []int{0, 1, 2, 4} {
		cfg := base
		if spare > 0 {
			cfg.Reserve = []int{spare, spare}
		}
		sum, err := montecarlo.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		extraQubits := spare * 2 * p.QubitsPerModule()
		fmt.Printf("  reserve %d: full yield %.4f  (extra footprint ~%d logical qubits)\n",
			spare, sum.FullYieldRate, extraQubits)
	}

	// Time-to-target: how long one factory takes to deliver 100 states
	// (tail percentiles are what a prepared-state buffer must absorb).
	const batchLatency = 1310 // simulated HS latency of this factory
	tt, err := montecarlo.TimeToStates(montecarlo.Config{
		Params: p, Errors: em, Trials: 5000, Seed: 2,
	}, 100, batchLatency)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntime to 100 distilled states at %d cycles/batch:\n", batchLatency)
	fmt.Printf("  mean %.0f cycles (%.1f batches), p50 %d, p90 %d, p99 %d\n",
		tt.MeanCycles, tt.MeanBatches, tt.P50, tt.P90, tt.P99)
	lossless := (100 + p.Capacity() - 1) / p.Capacity()
	fmt.Printf("  lossless floor: %d batches — failures cost %.1fx\n",
		lossless, tt.MeanBatches/float64(lossless))
}
