package layout

import (
	"fmt"
	"strings"
)

// Render draws a placement as ASCII art, one character per tile: '.' for
// an empty slot and the label character labelOf returns for occupied
// tiles. Pass nil to label every qubit '#'. Rows are emitted top to
// bottom. Intended for debugging and documentation; large placements are
// clipped to maxW x maxH with an ellipsis note.
func (p *Placement) Render(labelOf func(q int) byte, maxW, maxH int) string {
	if maxW <= 0 {
		maxW = 120
	}
	if maxH <= 0 {
		maxH = 60
	}
	if labelOf == nil {
		labelOf = func(int) byte { return '#' }
	}
	occ := p.Occupied()
	w, h := p.W, p.H
	clipped := false
	if w > maxW {
		w, clipped = maxW, true
	}
	if h > maxH {
		h, clipped = maxH, true
	}
	var b strings.Builder
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if q, ok := occ[Point{X: x, Y: y}]; ok {
				b.WriteByte(labelOf(q))
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	if clipped {
		fmt.Fprintf(&b, "(clipped to %dx%d of %dx%d)\n", w, h, p.W, p.H)
	}
	return b.String()
}

// RenderByClass renders with a per-qubit class label (e.g. module index
// mod 10, or register kind); classes map to '0'-'9' then 'a'-'z'.
func (p *Placement) RenderByClass(classOf func(q int) int, maxW, maxH int) string {
	const digits = "0123456789abcdefghijklmnopqrstuvwxyz"
	return p.Render(func(q int) byte {
		c := classOf(q)
		if c < 0 {
			return '#'
		}
		return digits[c%len(digits)]
	}, maxW, maxH)
}
