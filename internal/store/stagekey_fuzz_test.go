package store

import (
	"testing"

	"magicstate/internal/core"
)

// fuzzConfig builds a Config from raw fuzz scalars, mapping the
// strategy byte into the real enum range so every strategy's scoping
// rules get exercised.
func fuzzConfig(k, levels int, strategy byte, seed int64, cnot, style, distance, fdIters, hopIters int, reuse, noBarriers, recordPaths bool) core.Config {
	cfg := core.Config{
		K: k, Levels: levels,
		Strategy:    core.Strategy(int(strategy) % 5),
		Seed:        seed,
		RouteMargin: distance % 3,
		Distance:    distance,
		RecordPaths: recordPaths,
		Reuse:       reuse, NoBarriers: noBarriers,
	}
	cfg.Cost.CNOT = cnot
	cfg.Style = 0
	if style%2 == 1 {
		cfg.Style = 1
	}
	cfg.FD.Iterations = fdIters
	cfg.Stitch.HopIters = hopIters
	return cfg
}

// FuzzStageKeyScope drives the scope matrix across the whole config
// space: for an arbitrary config, every mutation of a field must move a
// stage's key exactly when that stage (or a stage it inherits from)
// consumes the field under the config's strategy. It is the
// generalization of TestStageKeyScopes from hand-picked points to
// fuzzer-chosen ones.
func FuzzStageKeyScope(f *testing.F) {
	f.Add(4, 2, byte(1), int64(1), 0, 0, 0, 0, 0, false, false, false)
	f.Add(2, 1, byte(0), int64(9), 21, 1, 11, 40, 3, true, true, true)
	f.Add(8, 2, byte(4), int64(-3), 1, 0, 7, 0, 9, false, true, false)
	f.Add(6, 2, byte(2), int64(42), 0, 1, 0, 17, 0, true, false, true)
	f.Add(3, 1, byte(3), int64(0), 5, 0, 3, 0, 1, false, false, false)

	f.Fuzz(func(t *testing.T, k, levels int, strategy byte, seed int64, cnot, style, distance, fdIters, hopIters int, reuse, noBarriers, recordPaths bool) {
		cfg := fuzzConfig(k, levels, strategy, seed, cnot, style, distance, fdIters, hopIters, reuse, noBarriers, recordPaths)
		base := keysOf(cfg)
		stitch := cfg.Strategy == core.StrategyStitch
		fd := cfg.Strategy == core.StrategyForceDirected
		seeded := cfg.Strategy == core.StrategyRandom || cfg.Strategy == core.StrategyGraphPartition || fd

		expect := func(field, got, want string) {
			if got != want {
				t.Errorf("%v %s: changed stages %q, want %q", cfg.Strategy, field, got, want)
			}
		}

		// K reaches the build (and therefore everything downstream).
		mut := cfg
		mut.K++
		expect("K", base.diff(keysOf(mut)), "build+place+sim")

		// Seed: fused into stitch builds, consumed by the seeded mappers
		// at placement, invisible to Linear.
		mut = cfg
		mut.Seed++
		switch {
		case stitch:
			expect("Seed", base.diff(keysOf(mut)), "build+place+sim")
		case seeded:
			expect("Seed", base.diff(keysOf(mut)), "place+sim")
		default:
			expect("Seed", base.diff(keysOf(mut)), "")
		}

		// The mesh scope (cost model here) reaches the simulation; FD
		// additionally scores placements with it.
		mut = cfg
		mut.Cost.CNOT++
		if fd {
			expect("Cost", base.diff(keysOf(mut)), "place+sim")
		} else {
			expect("Cost", base.diff(keysOf(mut)), "sim")
		}

		// FD options are the FD mapper's alone.
		mut = cfg
		mut.FD.Iterations++
		if fd {
			expect("FD.Iterations", base.diff(keysOf(mut)), "place+sim")
		} else {
			expect("FD.Iterations", base.diff(keysOf(mut)), "")
		}

		// Stitch options are fused into stitch builds and nothing else.
		mut = cfg
		mut.Stitch.HopIters++
		if stitch {
			expect("Stitch.HopIters", base.diff(keysOf(mut)), "build+place+sim")
		} else {
			expect("Stitch.HopIters", base.diff(keysOf(mut)), "")
		}

		// Diagnostics and throughput knobs never touch any stage key.
		mut = cfg
		mut.RecordPaths = !mut.RecordPaths
		expect("RecordPaths", base.diff(keysOf(mut)), "")
		mut = cfg
		mut.FD.RestartWorkers += 4
		expect("FD.RestartWorkers", base.diff(keysOf(mut)), "")

		// Stage keys never alias each other, the final key, or an
		// unknown stage's key, whatever the config.
		seen := map[Key]string{KeyOf(cfg): "final"}
		for _, st := range append(core.Stages(), core.Stage(200)) {
			sk := StageKeyOf(st, cfg)
			if prev, dup := seen[sk]; dup {
				t.Fatalf("stage %s key aliases %s for %+v", st, prev, cfg)
			}
			seen[sk] = st.String()
		}
	})
}
