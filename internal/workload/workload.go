// Package workload generates seeded random layered circuits for
// fuzzing the pipeline and for load realism in the msfuload traffic
// generator: configurations the paper's hand-picked benchmarks never
// exercise. A workload is described by a small Spec (width, depth,
// two-qubit density, T density) with a canonical string codec, so a
// workload-bearing core.Config stays content-addressable, and every
// random draw comes from SplitMix64 child streams (one per layer) so a
// (spec, seed) pair always produces the identical circuit regardless of
// generation order elsewhere in the process.
package workload

import (
	"fmt"
	"strconv"
	"strings"

	"magicstate/internal/circuit"
	"magicstate/internal/stats"
)

// Spec describes a layered random circuit.
type Spec struct {
	// Qubits is the circuit width (>= 2).
	Qubits int
	// Layers is the circuit depth in layers (>= 1).
	Layers int
	// CX is the probability that a candidate qubit pair in a layer
	// becomes a CNOT (two-qubit braid density), in [0, 1].
	CX float64
	// T is the probability that a qubit left single in a layer receives
	// a T gate rather than an H, in [0, 1] — the T-density knob.
	T float64
}

// Validate checks the knobs are in range.
func (s Spec) Validate() error {
	if s.Qubits < 2 {
		return fmt.Errorf("workload: need at least 2 qubits, got %d", s.Qubits)
	}
	if s.Layers < 1 {
		return fmt.Errorf("workload: need at least 1 layer, got %d", s.Layers)
	}
	if s.CX < 0 || s.CX > 1 {
		return fmt.Errorf("workload: cx density %g outside [0, 1]", s.CX)
	}
	if s.T < 0 || s.T > 1 {
		return fmt.Errorf("workload: t density %g outside [0, 1]", s.T)
	}
	return nil
}

// String returns the canonical codec form, e.g. "q=16;layers=8;cx=0.5;t=0.25".
// Parse(s.String()) round-trips for any valid spec.
func (s Spec) String() string {
	return fmt.Sprintf("q=%d;layers=%d;cx=%s;t=%s",
		s.Qubits, s.Layers,
		strconv.FormatFloat(s.CX, 'g', -1, 64),
		strconv.FormatFloat(s.T, 'g', -1, 64))
}

// Parse decodes the canonical spec form: semicolon-separated key=value
// pairs with keys q, layers, cx, t (each at most once; q and layers
// mandatory). The result is validated.
func Parse(src string) (Spec, error) {
	var s Spec
	seen := map[string]bool{}
	for _, part := range strings.Split(strings.TrimSpace(src), ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			return s, fmt.Errorf("workload: spec %q has an empty entry", src)
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return s, fmt.Errorf("workload: spec entry %q is not key=value", part)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if seen[key] {
			return s, fmt.Errorf("workload: spec repeats key %q", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "q":
			s.Qubits, err = strconv.Atoi(val)
		case "layers":
			s.Layers, err = strconv.Atoi(val)
		case "cx":
			s.CX, err = strconv.ParseFloat(val, 64)
		case "t":
			s.T, err = strconv.ParseFloat(val, 64)
		default:
			return s, fmt.Errorf("workload: unknown spec key %q (want q, layers, cx, t)", key)
		}
		if err != nil {
			return s, fmt.Errorf("workload: spec entry %q: %v", part, err)
		}
	}
	if !seen["q"] || !seen["layers"] {
		return s, fmt.Errorf("workload: spec %q must set q and layers", src)
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// Generate builds the layered random circuit for (spec, seed): every
// qubit is prepared, each layer independently shuffles the qubits into
// candidate pairs (CNOT with probability CX, singles otherwise, singles
// drawing T vs H by the T density), and every qubit is measured at the
// end. Layer i draws from SplitMix64 child stream i+1 of seed. The
// returned circuit is validated — the generator is a frontend boundary
// like the qasm and scaffold compilers.
func Generate(spec Spec, seed int64) (*circuit.Circuit, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	c := circuit.New(0)
	qs := make([]circuit.Qubit, spec.Qubits)
	for i := range qs {
		qs[i] = c.AddQubit(fmt.Sprintf("w_%d", i))
	}
	for _, q := range qs {
		c.PrepZ(q)
	}
	for layer := 0; layer < spec.Layers; layer++ {
		rng := stats.SplitRNG(seed, int64(layer)+1)
		perm := rng.Perm(spec.Qubits)
		for i := 0; i < len(perm); i += 2 {
			if i+1 < len(perm) && rng.Float64() < spec.CX {
				c.CNOT(qs[perm[i]], qs[perm[i+1]])
				continue
			}
			for _, pi := range perm[i:minInt(i+2, len(perm))] {
				if rng.Float64() < spec.T {
					c.T(qs[pi])
				} else {
					c.H(qs[pi])
				}
			}
		}
	}
	for _, q := range qs {
		c.MeasZ(q)
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated circuit invalid: %w", err)
	}
	return c, nil
}

// GenerateString is Generate over the canonical spec codec.
func GenerateString(src string, seed int64) (*circuit.Circuit, error) {
	spec, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Generate(spec, seed)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
