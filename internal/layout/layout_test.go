package layout

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"magicstate/internal/bravyi"
	"magicstate/internal/graph"
)

func TestManhattan(t *testing.T) {
	if Manhattan(Point{0, 0}, Point{3, 4}) != 7 {
		t.Error("manhattan broken")
	}
	if Manhattan(Point{2, 2}, Point{2, 2}) != 0 {
		t.Error("zero distance broken")
	}
}

func TestPlacementValidate(t *testing.T) {
	p := NewPlacement(2, 2, 2)
	if err := p.Validate(); err == nil {
		t.Error("unplaced qubits should fail validation")
	}
	p.Set(0, Point{0, 0})
	p.Set(1, Point{0, 0})
	if err := p.Validate(); err == nil {
		t.Error("duplicate tiles should fail validation")
	}
	p.Set(1, Point{5, 0})
	if err := p.Validate(); err == nil {
		t.Error("out-of-bounds should fail validation")
	}
	p.Set(1, Point{1, 1})
	if err := p.Validate(); err != nil {
		t.Errorf("valid placement rejected: %v", err)
	}
}

func TestAreaAndBounds(t *testing.T) {
	p := NewPlacement(2, 10, 10)
	p.Set(0, Point{2, 3})
	p.Set(1, Point{5, 3})
	w, h := p.UsedBounds()
	if w != 4 || h != 1 {
		t.Errorf("bounds = %dx%d, want 4x1", w, h)
	}
	if p.Area() != 2 {
		t.Errorf("area = %d occupied tiles, want 2", p.Area())
	}
	if p.HullArea() != 4 {
		t.Errorf("hull = %d, want 4", p.HullArea())
	}
}

func TestNormalize(t *testing.T) {
	p := NewPlacement(2, 10, 10)
	p.Set(0, Point{4, 7})
	p.Set(1, Point{6, 9})
	p.Normalize()
	if p.At(0) != (Point{0, 0}) || p.At(1) != (Point{2, 2}) {
		t.Errorf("normalize wrong: %v %v", p.At(0), p.At(1))
	}
	if p.W != 3 || p.H != 3 {
		t.Errorf("normalized grid %dx%d, want 3x3", p.W, p.H)
	}
}

func TestFreeTilesAndOccupied(t *testing.T) {
	p := NewPlacement(1, 2, 2)
	p.Set(0, Point{1, 1})
	free := p.FreeTiles()
	if len(free) != 3 {
		t.Fatalf("free tiles = %d, want 3", len(free))
	}
	occ := p.Occupied()
	if occ[Point{1, 1}] != 0 || len(occ) != 1 {
		t.Errorf("occupied = %v", occ)
	}
}

func TestGridFor(t *testing.T) {
	for _, n := range []int{1, 2, 5, 10, 53, 100, 1000} {
		w, h := GridFor(n, 1)
		if w*h < n {
			t.Errorf("GridFor(%d): %dx%d too small", n, w, h)
		}
		if w < h {
			t.Errorf("GridFor(%d): w < h (%d < %d)", n, w, h)
		}
	}
	if w, h := GridFor(0, 1); w != 0 || h != 0 {
		t.Error("GridFor(0) should be 0x0")
	}
}

func TestSegmentsConflict(t *testing.T) {
	cases := []struct {
		s1, s2 Segment
		want   bool
		name   string
	}{
		{Segment{Point{0, 0}, Point{2, 2}}, Segment{Point{0, 2}, Point{2, 0}}, true, "proper X crossing"},
		{Segment{Point{0, 0}, Point{2, 0}}, Segment{Point{0, 1}, Point{2, 1}}, false, "parallel"},
		{Segment{Point{0, 0}, Point{2, 0}}, Segment{Point{1, 0}, Point{3, 0}}, true, "collinear overlap"},
		{Segment{Point{0, 0}, Point{2, 0}}, Segment{Point{2, 0}, Point{4, 0}}, false, "collinear touch at endpoint"},
		{Segment{Point{0, 0}, Point{2, 0}}, Segment{Point{2, 0}, Point{2, 2}}, false, "shared endpoint L"},
		{Segment{Point{0, 0}, Point{2, 0}}, Segment{Point{0, 0}, Point{2, 0}}, true, "identical"},
		{Segment{Point{0, 0}, Point{4, 0}}, Segment{Point{0, 0}, Point{2, 0}}, true, "shared endpoint collinear overlap"},
		{Segment{Point{0, 0}, Point{2, 0}}, Segment{Point{1, 0}, Point{1, 2}}, true, "T touch mid-segment"},
	}
	for _, c := range cases {
		if got := SegmentsConflict(c.s1, c.s2); got != c.want {
			t.Errorf("%s: conflict = %v, want %v", c.name, got, c.want)
		}
		if got := SegmentsConflict(c.s2, c.s1); got != c.want {
			t.Errorf("%s (swapped): conflict = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestMeasureSimpleSquare(t *testing.T) {
	// Two crossing diagonals of a unit square.
	g := graph.New(4)
	g.AddEdge(0, 3, 1) // diagonal
	g.AddEdge(1, 2, 1) // other diagonal
	p := NewPlacement(4, 2, 2)
	p.Set(0, Point{0, 0})
	p.Set(1, Point{1, 0})
	p.Set(2, Point{0, 1})
	p.Set(3, Point{1, 1})
	m := Measure(g, p)
	if m.Crossings != 1 {
		t.Errorf("crossings = %d, want 1", m.Crossings)
	}
	if m.AvgManhattan != 2 {
		t.Errorf("avg manhattan = %v, want 2", m.AvgManhattan)
	}
	if m.AvgSpacing != 0 { // midpoints coincide
		t.Errorf("avg spacing = %v, want 0", m.AvgSpacing)
	}
}

func TestMeasureEmptyGraph(t *testing.T) {
	g := graph.New(3)
	p := NewPlacement(3, 2, 2)
	m := Measure(g, p)
	if m.Crossings != 0 || m.AvgManhattan != 0 || m.AvgSpacing != 0 {
		t.Errorf("empty graph metrics should be zero: %+v", m)
	}
}

func TestTotalManhattanMatchesMeasure(t *testing.T) {
	f, err := bravyi.Build(bravyi.Params{K: 4, Levels: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.FromCircuit(f.Circuit)
	p := Linear(f)
	m := Measure(g, p)
	want := float64(TotalManhattan(g, p)) / float64(len(g.Edges))
	if m.AvgManhattan != want {
		t.Errorf("AvgManhattan %v != TotalManhattan/m %v", m.AvgManhattan, want)
	}
}

func TestLinearSingleLevel(t *testing.T) {
	f, err := bravyi.Build(bravyi.Params{K: 8, Levels: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := Linear(f)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	w, h := p.UsedBounds()
	if h != 1 {
		t.Errorf("single module should occupy one row, got height %d", h)
	}
	if w != 53 {
		t.Errorf("row width = %d, want 53", w)
	}
	if p.Area() != 53 {
		t.Errorf("area = %d, want 53 (matches 5k+13)", p.Area())
	}
}

func TestLinearTwoLevelNoReuse(t *testing.T) {
	f, err := bravyi.Build(bravyi.Params{K: 2, Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := Linear(f)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	w, h := p.UsedBounds()
	if h != 1 || w != 16*23 { // all 16 modules on one line
		t.Errorf("bounds = %dx%d, want %dx1", w, h, 16*23)
	}
}

func TestLinearTwoLevelReuseShortensRow(t *testing.T) {
	f, err := bravyi.Build(bravyi.Params{K: 2, Levels: 2, Reuse: true})
	if err != nil {
		t.Fatal(err)
	}
	p := Linear(f)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	w, h := p.UsedBounds()
	if h != 1 || w != 14*23 { // round 2 fully reuses round-1 tiles
		t.Errorf("bounds = %dx%d, want %dx1", w, h, 14*23)
	}
}

func TestRandomPlacementValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(80)
		p := Random(n, rng)
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRandomOnTiles(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tiles := RowMajorTiles(9, 3)
	p := RandomOnTiles(5, tiles, 3, 3, rng)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesTileSet(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := Random(10, rng)
	before := map[Point]bool{}
	for _, pt := range p.Pos {
		before[pt] = true
	}
	p.Shuffle(rng)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, pt := range p.Pos {
		if !before[pt] {
			t.Fatalf("shuffle introduced new tile %v", pt)
		}
	}
}

func TestCenterOfMass(t *testing.T) {
	p := NewPlacement(2, 4, 4)
	p.Set(0, Point{0, 0})
	p.Set(1, Point{2, 2})
	x, y := p.CenterOfMass([]int{0, 1})
	if x != 1 || y != 1 {
		t.Errorf("center = (%v,%v), want (1,1)", x, y)
	}
}

func TestSortQubitsByPosition(t *testing.T) {
	p := NewPlacement(3, 3, 3)
	p.Set(0, Point{2, 1})
	p.Set(1, Point{0, 0})
	p.Set(2, Point{1, 1})
	got := p.SortQubitsByPosition()
	want := []int{1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestCrossingsForEdges(t *testing.T) {
	all := []Segment{
		{Point{0, 0}, Point{2, 2}},
		{Point{0, 2}, Point{2, 0}},
		{Point{5, 5}, Point{6, 6}},
	}
	if got := CrossingsForEdges(all[:1], all); got != 1 {
		t.Errorf("subset crossings = %d, want 1", got)
	}
}

func TestSnakeValidAndCompact(t *testing.T) {
	f, err := bravyi.Build(bravyi.Params{K: 4, Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := Snake(f)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	n := f.Circuit.NumQubits
	if p.Area() > n+p.W { // at most one partial row of slack
		t.Errorf("snake area %d too large for %d qubits", p.Area(), n)
	}
	// Consecutive qubits in the module order must stay adjacent across
	// row boundaries (boustrophedon property): spot-check distances.
	g := graph.FromCircuit(f.Circuit)
	if got, lin := TotalManhattan(g, p), TotalManhattan(g, Linear(f)); got > 3*lin {
		t.Errorf("snake edge length %d implausibly above linear %d", got, lin)
	}
}

func TestRender(t *testing.T) {
	p := NewPlacement(2, 3, 2)
	p.Set(0, Point{X: 0, Y: 0})
	p.Set(1, Point{X: 2, Y: 1})
	got := p.Render(nil, 0, 0)
	want := "#..\n..#\n"
	if got != want {
		t.Errorf("render = %q, want %q", got, want)
	}
	byClass := p.RenderByClass(func(q int) int { return q }, 0, 0)
	if byClass != "0..\n..1\n" {
		t.Errorf("class render = %q", byClass)
	}
}

func TestRenderClipsLargePlacements(t *testing.T) {
	p := NewPlacement(1, 500, 500)
	p.Set(0, Point{X: 0, Y: 0})
	out := p.Render(nil, 10, 5)
	if !strings.Contains(out, "clipped") {
		t.Error("large render should note clipping")
	}
}
