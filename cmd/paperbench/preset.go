package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"magicstate"
	"magicstate/internal/presets"
)

// presetResult is the wire form of one preset point's result: the same
// field names and order as msfud's per-point result JSON, so the CI
// e2e step can diff `paperbench preset X` line-for-line against
// `POST /v1/batch {"preset": "X"}`.
type presetResult struct {
	Strategy           string  `json:"strategy"`
	Latency            int     `json:"latency"`
	Area               int     `json:"area"`
	Volume             float64 `json:"volume"`
	CriticalLatency    int     `json:"critical_latency"`
	CriticalVolume     float64 `json:"critical_volume"`
	PermutationLatency int     `json:"permutation_latency,omitempty"`
}

// runPreset evaluates a named preset suite and prints one JSON result
// per line, in point order. Parallelism and checkpointing behave like
// the artifact sweeps: results are byte-identical at every -parallel
// setting and across checkpoint resumes.
func runPreset(name string, parallel int, checkpoint string) error {
	p, ok := presets.Get(name)
	if !ok {
		return fmt.Errorf("unknown preset %q (available: %s)",
			name, strings.Join(presets.Names(), ", "))
	}
	results, err := magicstate.OptimizeBatch(p.Points, magicstate.BatchOptions{
		Parallelism: parallel,
		Checkpoint:  checkpoint,
	})
	if err != nil {
		return fmt.Errorf("preset %s: %w", name, err)
	}
	enc := json.NewEncoder(os.Stdout)
	for _, r := range results {
		if err := enc.Encode(presetResult{
			Strategy:           r.Strategy,
			Latency:            r.Latency,
			Area:               r.Area,
			Volume:             r.Volume,
			CriticalLatency:    r.CriticalLatency,
			CriticalVolume:     r.CriticalVolume,
			PermutationLatency: r.PermutationLatency,
		}); err != nil {
			return err
		}
	}
	return nil
}
