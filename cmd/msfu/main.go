// Command msfu (magic-state functional unit) builds, maps and simulates
// one Bravyi-Haah block-code distillation factory and prints its resource
// report.
//
// Usage:
//
//	msfu -capacity 16 -levels 2 -strategy hs -reuse [-seed N] [-estimate]
//
// Strategies: random, line, fd, gp, hs.
package main

import (
	"flag"
	"fmt"
	"os"

	"magicstate"
)

func main() {
	capacity := flag.Int("capacity", 8, "distilled states per factory run (k^levels)")
	levels := flag.Int("levels", 1, "block-code recursion depth")
	strategy := flag.String("strategy", "", "mapping strategy: random|line|fd|gp|hs (default: hs for levels>=2, line otherwise)")
	reuse := flag.Bool("reuse", false, "reuse measured qubits across rounds")
	seed := flag.Int64("seed", 1, "random seed")
	noBarriers := flag.Bool("nobarriers", false, "drop inter-round scheduling fences")
	estimate := flag.Bool("estimate", false, "also print the physical resource estimate")
	traceFlag := flag.Bool("trace", false, "also print a utilization trace (concurrency, per-round timing)")
	style := flag.String("style", "braiding", "interaction style: braiding|surgery|teleport (§IX)")
	distance := flag.Int("distance", 0, "code distance for distance-sensitive styles (default 7)")
	flag.Parse()

	st, ok := map[string]magicstate.InteractionStyle{
		"braiding": magicstate.Braiding,
		"surgery":  magicstate.LatticeSurgery,
		"teleport": magicstate.Teleportation,
	}[*style]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown style %q\n", *style)
		os.Exit(2)
	}

	spec := magicstate.FactorySpec{Capacity: *capacity, Levels: *levels, Reuse: *reuse}
	opts := magicstate.Options{
		Seed: *seed, DisableBarriers: *noBarriers, Trace: *traceFlag,
		Style: st, Distance: *distance,
	}
	if *strategy != "" {
		s, ok := map[string]magicstate.Strategy{
			"random": magicstate.RandomMapping,
			"line":   magicstate.LinearMapping,
			"fd":     magicstate.ForceDirected,
			"gp":     magicstate.GraphPartitioning,
			"hs":     magicstate.HierarchicalStitching,
		}[*strategy]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *strategy)
			os.Exit(2)
		}
		opts = opts.WithStrategy(s)
	}

	res, err := magicstate.Optimize(spec, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("factory: capacity %d, %d level(s), reuse=%v, strategy=%s\n",
		*capacity, *levels, *reuse, res.Strategy)
	fmt.Printf("  latency:  %d cycles (lower bound %d)\n", res.Latency, res.CriticalLatency)
	fmt.Printf("  area:     %d logical qubits\n", res.Area)
	fmt.Printf("  volume:   %.4g qubit-cycles (lower bound %.4g)\n", res.Volume, res.CriticalVolume)
	if res.PermutationLatency > 0 {
		fmt.Printf("  permute:  %d cycles (inter-round step)\n", res.PermutationLatency)
	}

	if *traceFlag {
		fmt.Print(res.Trace)
	}

	if *estimate {
		est, err := magicstate.EstimateResources(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("physical estimate (p=1e-3, inject=5e-3, balanced investment):\n")
		for r, d := range est.RoundDistances {
			fmt.Printf("  round %d: distance %d, %d physical qubits\n",
				r+1, d, est.PhysicalQubitsPerRound[r])
		}
		fmt.Printf("  output state error: %.3g\n", est.OutputError)
		fmt.Printf("  expected runs per successful batch: %.3f\n", est.ExpectedRunsPerBatch)
	}
}
