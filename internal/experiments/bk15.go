package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"magicstate/internal/circuit"
	"magicstate/internal/force"
	"magicstate/internal/graph"
	"magicstate/internal/layout"
	"magicstate/internal/mesh"
	"magicstate/internal/partition"
	"magicstate/internal/protocols"
	"magicstate/internal/resource"
)

// BK15Row is one mapping strategy's cost on the original Bravyi-Kitaev
// 15→1 distillation module — the paper's mappers applied to the §III
// related-work protocol's circuit.
type BK15Row struct {
	Strategy string
	Latency  int
	Area     int
	Volume   float64
	Critical int
}

// BK15Mapping maps the explicit [[15,1,3]]-code 15→1 circuit with random
// placement, force-directed annealing and recursive graph partitioning,
// and simulates each on the braid mesh. The circuit's interaction graph
// is dominated by the four stabilizer hubs and the all-ones logical
// operator, a different shape from the Bravyi-Haah ancilla chain — a
// robustness check that the mappers are not overfit to one protocol.
func BK15Mapping(seed int64) ([]BK15Row, error) {
	c := protocols.Circuit15to1()
	g := graph.FromCircuit(c)
	cm := resource.DefaultCost()
	critical := cm.CriticalPath(c)

	random := layout.Random(c.NumQubits, rand.New(rand.NewSource(seed)))
	gp := partition.EmbedSquare(g, rand.New(rand.NewSource(seed+1)))
	fd := force.Anneal(g, c, random.Clone(), force.Options{Seed: seed})

	var rows []BK15Row
	for _, m := range []struct {
		name string
		pl   *layout.Placement
	}{{"Random", random}, {"FD", fd}, {"GP", gp}} {
		res, err := mesh.Simulate(c, m.pl, mesh.Config{})
		if err != nil {
			return nil, fmt.Errorf("bk15 %s: %w", m.name, err)
		}
		rows = append(rows, BK15Row{
			Strategy: m.name,
			Latency:  res.Latency,
			Area:     res.Area,
			Volume:   res.Volume().SpaceTime(),
			Critical: critical,
		})
	}
	return rows, nil
}

// WriteBK15 renders the 15→1 mapping comparison.
func WriteBK15(w io.Writer, rows []BK15Row) {
	fmt.Fprintln(w, "Bravyi-Kitaev 15-to-1 module mapping (§III protocol, this repo's mappers)")
	tw := newTab(w)
	fmt.Fprintln(tw, "strategy\tlatency\tarea\tvolume\tbound")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.3g\t%d\n", r.Strategy, r.Latency, r.Area, r.Volume, r.Critical)
	}
	tw.Flush()
}

// bk15GateCheck asserts the circuit stays in the simulator's vocabulary;
// used by tests.
func bk15GateCheck() error {
	c := protocols.Circuit15to1()
	for i := range c.Gates {
		k := c.Gates[i].Kind
		if k == circuit.KindInvalid {
			return fmt.Errorf("gate %d invalid", i)
		}
	}
	return c.Validate()
}
