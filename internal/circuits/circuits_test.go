package circuits

import (
	"testing"
	"testing/quick"

	"magicstate/internal/circuit"
	"magicstate/internal/graph"
)

func TestGHZStructure(t *testing.T) {
	c, err := GHZ(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.CountKind(circuit.KindCNOT); got != 4 {
		t.Errorf("cnot count = %d, want 4", got)
	}
	if got := c.CountKind(circuit.KindH); got != 1 {
		t.Errorf("h count = %d, want 1", got)
	}
	// Interaction graph must be a path: n-1 edges, max degree 2.
	g := graph.FromCircuit(c)
	if len(g.Edges) != 4 {
		t.Errorf("edges = %d, want 4", len(g.Edges))
	}
	for v := 0; v < g.N; v++ {
		if g.Degree(v) > 2 {
			t.Errorf("vertex %d degree %d on a path", v, g.Degree(v))
		}
	}
}

func TestGHZRejectsTiny(t *testing.T) {
	if _, err := GHZ(1); err == nil {
		t.Error("GHZ(1) accepted")
	}
}

func TestCuccaroAdderStructure(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		c, err := CuccaroAdder(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got, want := c.NumQubits, 1+2*n; got != want {
			t.Errorf("n=%d: qubits = %d, want %d", n, got, want)
		}
		// 2n MAJ/UMA pairs, each with one Toffoli of 7 T gates.
		if got, want := c.CountKind(circuit.KindT), 7*2*n; got != want {
			t.Errorf("n=%d: T count = %d, want %d", n, got, want)
		}
		// Locality: the interaction graph of a ripple-carry adder only
		// couples qubits within a window of one bit position (id
		// distance <= 3 in the interleaved layout).
		g := graph.FromCircuit(c)
		for _, e := range g.Edges {
			if e.V-e.U > 3 {
				t.Errorf("n=%d: non-local edge (%d,%d)", n, e.U, e.V)
			}
		}
	}
}

func TestCuccaroAdderRejectsZeroBits(t *testing.T) {
	if _, err := CuccaroAdder(0); err == nil {
		t.Error("0-bit adder accepted")
	}
}

func TestQFTLikeComplete(t *testing.T) {
	c, err := QFTLike(6)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	g := graph.FromCircuit(c)
	want := 6 * 5 / 2
	if len(g.Edges) != want {
		t.Errorf("edges = %d, want complete graph %d", len(g.Edges), want)
	}
	if got, want := c.CountKind(circuit.KindT), 15; got != want {
		t.Errorf("T count = %d, want one per pair %d", got, want)
	}
}

func TestRandomCliffordTDeterministic(t *testing.T) {
	a, err := RandomCliffordT(8, 40, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomCliffordT(8, 40, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different circuits")
	}
	c, err := RandomCliffordT(8, 40, 0.3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() == c.String() {
		t.Error("different seeds produced identical circuits")
	}
}

func TestRandomCliffordTRejectsBadArgs(t *testing.T) {
	if _, err := RandomCliffordT(1, 5, 0, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := RandomCliffordT(4, -1, 0, 1); err == nil {
		t.Error("negative cnots accepted")
	}
}

func TestHierarchicalRandomPhases(t *testing.T) {
	opt := HierarchicalOptions{
		Blocks: 3, QubitsPerBlock: 4, Phases: 3,
		IntraCNOTs: 6, BridgeCNOTs: 2, Barriers: true, Seed: 2,
	}
	c, err := HierarchicalRandom(opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := c.NumQubits, 12; got != want {
		t.Errorf("qubits = %d, want %d", got, want)
	}
	if got, want := c.CountKind(circuit.KindBarrier), 2; got != want {
		t.Errorf("barriers = %d, want %d (between 3 phases)", got, want)
	}
}

func TestHierarchicalRandomValidation(t *testing.T) {
	if _, err := HierarchicalRandom(HierarchicalOptions{Blocks: 1, QubitsPerBlock: 4, Phases: 1}); err == nil {
		t.Error("1 block accepted")
	}
	if _, err := HierarchicalRandom(HierarchicalOptions{Blocks: 2, QubitsPerBlock: 1, Phases: 1}); err == nil {
		t.Error("1 qubit per block accepted")
	}
	if _, err := HierarchicalRandom(HierarchicalOptions{Blocks: 2, QubitsPerBlock: 4, Phases: 0}); err == nil {
		t.Error("0 phases accepted")
	}
	if _, err := HierarchicalRandom(HierarchicalOptions{Blocks: 2, QubitsPerBlock: 4, Phases: 1, BridgeCNOTs: -1}); err == nil {
		t.Error("negative bridges accepted")
	}
}

// Property: every generator emits circuits that validate and whose qubit
// ids stay dense, for a range of random sizes.
func TestGeneratorsPropertyValid(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%8) + 2
		gens := []func() (*circuit.Circuit, error){
			func() (*circuit.Circuit, error) { return GHZ(n) },
			func() (*circuit.Circuit, error) { return CuccaroAdder(n) },
			func() (*circuit.Circuit, error) { return QFTLike(n) },
			func() (*circuit.Circuit, error) { return RandomCliffordT(n, 5*n, 0.25, seed) },
			func() (*circuit.Circuit, error) {
				return HierarchicalRandom(HierarchicalOptions{
					Blocks: 2, QubitsPerBlock: n, Phases: 2, IntraCNOTs: n,
					BridgeCNOTs: 1, Barriers: true, Seed: seed,
				})
			},
		}
		for _, gen := range gens {
			c, err := gen()
			if err != nil {
				return false
			}
			if c.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
