package fabric

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"magicstate/internal/store"
)

// vnodesPerNode is how many virtual nodes each physical node claims on
// the ring. More virtual nodes smooth the key distribution (the spread
// between the most- and least-loaded node shrinks roughly with
// 1/sqrt(vnodes)); 64 keeps the imbalance under a few percent for the
// small clusters this service runs as, at a ring of a few hundred
// entries that a binary search traverses in nanoseconds.
const vnodesPerNode = 64

// ringVersion is folded into every virtual-node hash. Bumping it
// re-deals the whole ring, which is the safe failure mode if the point
// or hash encoding below ever changes: nodes disagreeing about
// ownership degrade to fallback computes, never to wrong answers.
const ringVersion = 1

// vnode is one virtual node: a point on the [0, 2^64) ring owned by a
// physical node.
type vnode struct {
	hash uint64
	node string
}

// Ring is an immutable consistent-hash ring over a set of node ids. Two
// processes constructing a Ring from the same id set (in any order)
// agree on the owner of every key, which is what lets shared-nothing
// msfud nodes route to each other without any coordination service.
type Ring struct {
	nodes  []string
	vnodes []vnode
}

// NewRing builds a ring over the given node ids. Ids are deduplicated
// and sorted, so membership — not argument order — defines the ring. At
// least one id is required.
func NewRing(nodes []string) (*Ring, error) {
	seen := make(map[string]bool, len(nodes))
	var uniq []string
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("fabric: empty node id")
		}
		if !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("fabric: ring needs at least one node")
	}
	sort.Strings(uniq)
	r := &Ring{nodes: uniq}
	for _, n := range uniq {
		for i := 0; i < vnodesPerNode; i++ {
			r.vnodes = append(r.vnodes, vnode{hash: vnodeHash(n, i), node: n})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool {
		if r.vnodes[i].hash != r.vnodes[j].hash {
			return r.vnodes[i].hash < r.vnodes[j].hash
		}
		// A 64-bit hash collision between virtual nodes is vanishingly
		// unlikely but must still order deterministically everywhere.
		return r.vnodes[i].node < r.vnodes[j].node
	})
	return r, nil
}

// vnodeHash places one virtual node on the ring: the first 8 bytes of a
// SHA-256 over a versioned, unambiguous encoding of (node, index).
func vnodeHash(node string, i int) uint64 {
	h := sha256.Sum256([]byte(fmt.Sprintf("magicstate/fabric ring v%d|%s|%d", ringVersion, node, i)))
	return binary.BigEndian.Uint64(h[:8])
}

// point maps a key onto the ring. The key is already a SHA-256 digest,
// so its first 8 bytes are uniformly distributed as they stand.
func point(k store.Key) uint64 { return binary.BigEndian.Uint64(k[:8]) }

// Nodes returns the ring's member ids in sorted order. The slice is
// shared; treat it as read-only.
func (r *Ring) Nodes() []string { return r.nodes }

// Owner names the node that owns k: the first virtual node at or after
// the key's point, wrapping at the top of the ring.
func (r *Ring) Owner(k store.Key) string {
	return r.vnodes[r.ownerIdx(k)].node
}

// ownerIdx locates the owning virtual node's index.
func (r *Ring) ownerIdx(k store.Key) int {
	p := point(k)
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= p })
	if i == len(r.vnodes) {
		i = 0
	}
	return i
}

// Successor names the next distinct node after k's owner on the ring —
// the replication target for records the owner computes. It returns ""
// on a single-node ring, where there is nobody to replicate to.
func (r *Ring) Successor(k store.Key) string {
	if len(r.nodes) < 2 {
		return ""
	}
	start := r.ownerIdx(k)
	owner := r.vnodes[start].node
	for i := 1; i < len(r.vnodes); i++ {
		if n := r.vnodes[(start+i)%len(r.vnodes)].node; n != owner {
			return n
		}
	}
	return ""
}
