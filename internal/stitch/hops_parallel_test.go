package stitch

import (
	"runtime"
	"testing"

	"magicstate/internal/bravyi"
)

// TestBuildDeterministicAcrossWorkerWidths pins the speculative parallel
// counting phase of the hop annealer to the serial result: the annealer
// sizes its worker pool from GOMAXPROCS, so forcing different widths must
// still yield byte-identical circuits and placements (speculation only
// precomputes conflict counts; the resolve pass replays the serial
// decision order). The -race run of this test doubles as the data-race
// check for the worker pool, which a 1-CPU default would never spin up.
func TestBuildDeterministicAcrossWorkerWidths(t *testing.T) {
	p := bravyi.Params{K: 6, Levels: 2}
	opt := Options{Seed: 7, Reuse: true, Hops: AnnealedMidpointHop, HopIters: 8}

	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	serial, err := Build(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if serial.HopWires == 0 {
		t.Fatal("test factory routed no hop wires; annealer not exercised")
	}
	serialCirc := serial.Factory.Circuit.String()

	for _, width := range []int{2, 4} {
		runtime.GOMAXPROCS(width)
		par, err := Build(p, opt)
		if err != nil {
			t.Fatal(err)
		}
		if par.HopWires != serial.HopWires {
			t.Fatalf("width %d: HopWires %d != serial %d", width, par.HopWires, serial.HopWires)
		}
		for q := range serial.Placement.Pos {
			if par.Placement.Pos[q] != serial.Placement.Pos[q] {
				t.Fatalf("width %d: qubit %d placed at %v, want %v",
					width, q, par.Placement.Pos[q], serial.Placement.Pos[q])
			}
		}
		if got := par.Factory.Circuit.String(); got != serialCirc {
			t.Fatalf("width %d: hopped circuit diverged from serial build", width)
		}
	}
}
