package graph

import "sort"

// EdgeBetweenness returns, per edge (indexed as in g.Edges), the number of
// shortest paths between all vertex pairs that traverse the edge —
// Brandes' accumulation over unweighted breadth-first shortest paths
// [35]. Edge weights are treated as interaction multiplicities, not
// lengths, matching how the mappers read the interaction graph.
func EdgeBetweenness(g *Graph) []float64 {
	bc := make([]float64, len(g.Edges))
	if g.N == 0 {
		return bc
	}
	// Per-source BFS with path counting, then dependency accumulation.
	dist := make([]int, g.N)
	sigma := make([]float64, g.N)
	delta := make([]float64, g.N)
	order := make([]int, 0, g.N)
	queue := make([]int, 0, g.N)
	// preds[v] lists (pred vertex, edge index) pairs on shortest paths.
	type pred struct{ v, e int }
	preds := make([][]pred, g.N)

	for s := 0; s < g.N; s++ {
		for i := range dist {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		order = order[:0]
		queue = queue[:0]
		dist[s] = 0
		sigma[s] = 1
		queue = append(queue, s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, ei := range g.adj[v] {
				e := g.Edges[ei]
				u := e.U
				if u == v {
					u = e.V
				}
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
				if dist[u] == dist[v]+1 {
					sigma[u] += sigma[v]
					preds[u] = append(preds[u], pred{v: v, e: ei})
				}
			}
		}
		// Accumulate dependencies in reverse BFS order.
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			for _, p := range preds[w] {
				share := sigma[p.v] / sigma[w] * (1 + delta[w])
				delta[p.v] += share
				bc[p.e] += share
			}
		}
	}
	// Each undirected pair was counted from both endpoints.
	for i := range bc {
		bc[i] /= 2
	}
	return bc
}

// GirvanNewman detects communities by iteratively removing the
// highest-betweenness edge and keeping the connected-component partition
// of highest modularity seen along the way [35]. maxRemovals caps the
// number of edge removals (zero means remove every edge if needed). The
// result maps every vertex to a dense community id.
func GirvanNewman(g *Graph, maxRemovals int) ([]int, int) {
	if maxRemovals <= 0 || maxRemovals > len(g.Edges) {
		maxRemovals = len(g.Edges)
	}
	// Work on a copy whose edges can be deactivated.
	work := New(g.N)
	for _, e := range g.Edges {
		work.AddEdge(e.U, e.V, e.Weight)
	}
	removed := make([]bool, len(work.Edges))

	bestLabel, bestCount := componentsSkipping(work, removed)
	bestQ := Modularity(g, bestLabel)

	for step := 0; step < maxRemovals; step++ {
		bc := betweennessSkipping(work, removed)
		target, targetBC := -1, -1.0
		for ei := range work.Edges {
			if removed[ei] {
				continue
			}
			if bc[ei] > targetBC {
				target, targetBC = ei, bc[ei]
			}
		}
		if target < 0 {
			break
		}
		removed[target] = true
		label, count := componentsSkipping(work, removed)
		if q := Modularity(g, label); q > bestQ {
			bestQ = q
			bestLabel, bestCount = label, count
		}
	}
	return bestLabel, bestCount
}

// betweennessSkipping runs EdgeBetweenness over the subgraph of active
// edges.
func betweennessSkipping(g *Graph, removed []bool) []float64 {
	sub := New(g.N)
	// Map sub edge indices back to g edge indices.
	back := make([]int, 0, len(g.Edges))
	for ei, e := range g.Edges {
		if removed[ei] {
			continue
		}
		sub.AddEdge(e.U, e.V, e.Weight)
		back = append(back, ei)
	}
	sbc := EdgeBetweenness(sub)
	bc := make([]float64, len(g.Edges))
	for si, v := range sbc {
		bc[back[si]] = v
	}
	return bc
}

// componentsSkipping labels connected components over active edges.
func componentsSkipping(g *Graph, removed []bool) ([]int, int) {
	label := make([]int, g.N)
	for i := range label {
		label[i] = -1
	}
	count := 0
	var stack []int
	for s := 0; s < g.N; s++ {
		if label[s] >= 0 {
			continue
		}
		label[s] = count
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, ei := range g.adj[v] {
				if removed[ei] {
					continue
				}
				e := g.Edges[ei]
				u := e.U
				if u == v {
					u = e.V
				}
				if label[u] < 0 {
					label[u] = count
					stack = append(stack, u)
				}
			}
		}
		count++
	}
	return label, count
}

// TopBetweennessEdges returns the indices of the n highest-betweenness
// edges, descending; ties break toward the lower edge index for
// determinism.
func TopBetweennessEdges(g *Graph, n int) []int {
	bc := EdgeBetweenness(g)
	idx := make([]int, len(bc))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if bc[idx[a]] != bc[idx[b]] {
			return bc[idx[a]] > bc[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if n > len(idx) {
		n = len(idx)
	}
	return idx[:n]
}
