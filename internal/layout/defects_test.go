package layout

import (
	"strings"
	"testing"

	"magicstate/internal/stats"
)

// TestParseDefectsCanonical pins the codec contract: any spelling of
// the same physical defect set — reordered, duplicated, whitespace —
// canonicalizes to one string, so configs carrying the map stay
// content-addressable.
func TestParseDefectsCanonical(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"  ", ""},
		{"3,1", "3,1"},
		{"3,1;0,0;2,1", "0,0;2,1;3,1"},
		{"1,0;1,0;1,0", "1,0"},
		{" 2 , 0 ; 1 , 0 ", "1,0;2,0"},
		{"0,2;5,0;0,1", "5,0;0,1;0,2"}, // sorted Y then X
	}
	for _, tc := range cases {
		dm, err := ParseDefects(tc.in)
		if err != nil {
			t.Fatalf("ParseDefects(%q): %v", tc.in, err)
		}
		if got := dm.String(); got != tc.want {
			t.Errorf("ParseDefects(%q).String() = %q, want %q", tc.in, got, tc.want)
		}
		// Canonical forms are fixed points.
		dm2, err := ParseDefects(dm.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", dm.String(), err)
		}
		if dm2.String() != dm.String() {
			t.Errorf("canonical form %q is not a fixed point", dm.String())
		}
	}
}

func TestParseDefectsErrors(t *testing.T) {
	cases := []struct{ in, want string }{
		{";", "empty entry"},
		{"1,0;;2,0", "empty entry"},
		{"1", "not of the form"},
		{"a,0", "bad x"},
		{"0,b", "bad y"},
		{"-1,0", "negative"},
		{"0,-2", "negative"},
	}
	for _, tc := range cases {
		if _, err := ParseDefects(tc.in); err == nil {
			t.Errorf("ParseDefects(%q) accepted", tc.in)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseDefects(%q) error %q does not mention %q", tc.in, err, tc.want)
		}
	}
}

func TestDefectMapNilSafe(t *testing.T) {
	var dm *DefectMap
	if dm.Has(Point{0, 0}) || dm.Len() != 0 || dm.String() != "" || dm.Tiles() != nil {
		t.Fatal("nil DefectMap must behave as the empty map")
	}
}

func TestSampleDefectsDeterministic(t *testing.T) {
	a := SampleDefects(12, 4, 0.2, stats.SplitRNG(99, 0))
	b := SampleDefects(12, 4, 0.2, stats.SplitRNG(99, 0))
	if a.String() != b.String() {
		t.Fatalf("same seed sampled different maps: %q vs %q", a, b)
	}
	if a.Len() == 0 {
		t.Fatal("rate 0.2 over 48 tiles sampled no defects — suspicious seed stream")
	}
	if SampleDefects(12, 4, 0, stats.SplitRNG(99, 0)) != nil {
		t.Fatal("rate 0 must sample the nil map")
	}
	c := SampleDefects(12, 4, 0.2, stats.SplitRNG(100, 0))
	if a.String() == c.String() {
		t.Fatal("different seeds sampled identical maps")
	}
}

func TestAvoidDefectsRelocates(t *testing.T) {
	// A 3x2 grid with qubit 0 on the defective tile (1,0); the nearest
	// free healthy tile is (0,0)... but it's occupied by qubit 1, so the
	// relocation must pick among the free ones: (2,0) and row 1, with
	// (2,0) at distance 1 winning.
	p := NewPlacement(2, 3, 2)
	p.Pos[0] = Point{1, 0}
	p.Pos[1] = Point{0, 0}
	dm, err := ParseDefects("1,0")
	if err != nil {
		t.Fatal(err)
	}
	if err := AvoidDefects(p, dm); err != nil {
		t.Fatal(err)
	}
	if p.Pos[0] != (Point{2, 0}) {
		t.Fatalf("qubit 0 relocated to %v, want (2,0)", p.Pos[0])
	}
	if p.Pos[1] != (Point{0, 0}) {
		t.Fatalf("healthy qubit 1 moved to %v", p.Pos[1])
	}
}

func TestAvoidDefectsGrowsExactFit(t *testing.T) {
	// Exact fit: a 2x1 grid with both tiles occupied and one defective.
	// There is no spare healthy tile, so relocation must add a row.
	p := NewPlacement(2, 2, 1)
	p.Pos[0] = Point{0, 0}
	p.Pos[1] = Point{1, 0}
	dm, err := ParseDefects("1,0")
	if err != nil {
		t.Fatal(err)
	}
	if err := AvoidDefects(p, dm); err != nil {
		t.Fatal(err)
	}
	if p.H < 2 {
		t.Fatalf("grid height = %d, want growth past 1", p.H)
	}
	if dm.Has(p.Pos[1]) {
		t.Fatalf("qubit 1 still on defective tile %v", p.Pos[1])
	}
	if p.Pos[0] == p.Pos[1] {
		t.Fatal("relocation stacked two qubits on one tile")
	}
}

func TestAvoidDefectsZeroWidth(t *testing.T) {
	p := NewPlacement(1, 0, 0)
	dm, err := ParseDefects("0,0")
	if err != nil {
		t.Fatal(err)
	}
	if err := AvoidDefects(p, dm); err == nil {
		t.Fatal("zero-width grid must be rejected")
	}
}

func FuzzParseDefects(f *testing.F) {
	f.Add("1,0;3,0")
	f.Add("0,0")
	f.Add(" 2 , 3 ; 2 , 3 ")
	f.Fuzz(func(t *testing.T, s string) {
		dm, err := ParseDefects(s)
		if err != nil {
			return
		}
		canon := dm.String()
		dm2, err := ParseDefects(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, s, err)
		}
		if dm2.String() != canon {
			t.Fatalf("canonicalization unstable: %q -> %q -> %q", s, canon, dm2.String())
		}
	})
}
