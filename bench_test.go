// Benchmarks regenerating each table and figure of the paper (scaled-down
// capacity sweeps so the full suite stays minutes; cmd/paperbench runs the
// paper's full parameter sets) plus ablation benches for the design
// choices DESIGN.md calls out. Volume metrics are attached to the bench
// output via ReportMetric so regressions in result quality — not just
// runtime — are visible.
package magicstate_test

import (
	"testing"

	"magicstate/internal/bravyi"
	"magicstate/internal/core"
	"magicstate/internal/experiments"
	"magicstate/internal/force"
	"magicstate/internal/graph"
	"magicstate/internal/layout"
	"magicstate/internal/mesh"
	"magicstate/internal/partition"
	"magicstate/internal/stats"
	"magicstate/internal/stitch"
)

func BenchmarkFig6Correlations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(8, 24, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.RCrossings, "r_crossings")
		b.ReportMetric(r.RSpacing, "r_spacing")
	}
}

func BenchmarkFig7SingleLevel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig7(1, []int{2, 4, 8}, 1)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(float64(last.GPLatency)/float64(last.Critical), "gp_vs_bound")
	}
}

func BenchmarkFig7TwoLevel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig7(2, []int{4, 16}, 1)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(float64(last.GPLatency)/float64(last.Critical), "gp_vs_bound")
	}
}

func BenchmarkFig9Reuse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig9Reuse([]int{4, 16}, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].LineDiff, "line_reuse_gain")
	}
}

func BenchmarkFig9Hops(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig9Hops([]int{4, 16}, 1)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(float64(last.NoHop)/float64(last.AnnealedMidpoint), "hop_speedup")
	}
}

func BenchmarkFig10SingleLevel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10(1, []int{2, 4, 8}, 1)
		if err != nil {
			b.Fatal(err)
		}
		_ = rows
	}
}

func BenchmarkFig10TwoLevel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10(2, []int{4, 16}, 1)
		if err != nil {
			b.Fatal(err)
		}
		var hs, line float64
		for _, r := range rows {
			if r.Capacity == 16 {
				switch r.Strategy {
				case "HS":
					hs = r.Volume
				case "Line":
					line = r.Volume
				}
			}
		}
		if hs > 0 {
			b.ReportMetric(line/hs, "line_over_hs")
		}
	}
}

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table1([]int{2, 4}, []int{4, 16}, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.HeadlineImprovement(), "line_over_hs")
	}
}

// --- Ablation benches -------------------------------------------------

// BenchmarkAblationRouting compares the paper's dimension-ordered braid
// model against box-limited and fully adaptive routing on a two-level
// linear mapping: adaptive routers hide the congestion the paper's
// optimizations exist to remove.
func BenchmarkAblationRouting(b *testing.B) {
	f, err := bravyi.Build(bravyi.Params{K: 4, Levels: 2, Barriers: true})
	if err != nil {
		b.Fatal(err)
	}
	pl := layout.Linear(f)
	for _, mode := range []struct {
		name string
		mode mesh.RouteMode
	}{{"xy", mesh.RouteXY}, {"box", mesh.RouteBox}, {"adaptive", mesh.RouteAdaptive}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := mesh.Simulate(f.Circuit, pl, mesh.Config{Mode: mode.mode})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Latency), "latency_cycles")
			}
		})
	}
}

// BenchmarkAblationBarriers measures the effect of the inter-round
// scheduling fences of §V.A.
func BenchmarkAblationBarriers(b *testing.B) {
	for _, bar := range []struct {
		name string
		on   bool
	}{{"with", true}, {"without", false}} {
		b.Run(bar.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := core.Run(core.Config{
					K: 4, Levels: 2, Strategy: core.StrategyLinear,
					NoBarriers: !bar.on, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rep.Latency), "latency_cycles")
			}
		})
	}
}

// BenchmarkAblationDipole isolates the magnetic-dipole rotation force in
// the FD annealer.
func BenchmarkAblationDipole(b *testing.B) {
	f, err := bravyi.Build(bravyi.Params{K: 8, Levels: 1})
	if err != nil {
		b.Fatal(err)
	}
	g := graph.FromCircuit(f.Circuit)
	init := layout.Random(f.Circuit.NumQubits, stats.NewRNG(3))
	for _, d := range []struct {
		name    string
		disable bool
	}{{"with", false}, {"without", true}} {
		b.Run(d.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := force.Anneal(g, f.Circuit, init, force.Options{Seed: 3, DisableDipole: d.disable})
				m := layout.Measure(g, p)
				b.ReportMetric(float64(m.Crossings), "crossings")
			}
		})
	}
}

// BenchmarkAblationPortReassign isolates the Hungarian port matching of
// §VII.B.2 inside hierarchical stitching.
func BenchmarkAblationPortReassign(b *testing.B) {
	for _, d := range []struct {
		name    string
		disable bool
	}{{"with", false}, {"without", true}} {
		b.Run(d.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := stitch.Build(bravyi.Params{K: 4, Levels: 2, Barriers: true},
					stitch.Options{Seed: 1, Reuse: true, Hops: stitch.NoHop, DisablePortReassign: d.disable})
				if err != nil {
					b.Fatal(err)
				}
				res, err := mesh.Simulate(r.Factory.Circuit, r.Placement, mesh.Config{})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Latency), "latency_cycles")
			}
		})
	}
}

// --- Microbenches for the hot substrates -------------------------------

func BenchmarkSimulateSingleLevelK8(b *testing.B) {
	f, err := bravyi.Build(bravyi.Params{K: 8, Levels: 1})
	if err != nil {
		b.Fatal(err)
	}
	pl := layout.Linear(f)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mesh.Simulate(f.Circuit, pl, mesh.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateTwoLevelK64(b *testing.B) {
	f, err := bravyi.Build(bravyi.Params{K: 8, Levels: 2, Barriers: true})
	if err != nil {
		b.Fatal(err)
	}
	pl := layout.Linear(f)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mesh.Simulate(f.Circuit, pl, mesh.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorReuseTwoLevelK64 measures the caller-owned Simulator
// path: arenas, lattice and dependency DAG all carry over between runs,
// which is the steady state of the planner's candidate search and the FD
// mapper's paired evaluations.
func BenchmarkSimulatorReuseTwoLevelK64(b *testing.B) {
	f, err := bravyi.Build(bravyi.Params{K: 8, Levels: 2, Barriers: true})
	if err != nil {
		b.Fatal(err)
	}
	pl := layout.Linear(f)
	sim := mesh.NewSimulator()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Simulate(f.Circuit, pl, mesh.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraphPartitionEmbed(b *testing.B) {
	f, err := bravyi.Build(bravyi.Params{K: 8, Levels: 2, Barriers: true})
	if err != nil {
		b.Fatal(err)
	}
	g := graph.FromCircuit(f.Circuit)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		partition.EmbedSquare(g, stats.NewRNG(int64(i)))
	}
}

// BenchmarkForceAnneal measures the arena-backed annealing engine on a
// single-level factory's interaction graph: the engine variant is the FD
// mapper's steady state (one process-wide Annealer whose scratch carries
// across sweep points), and the restart variants exercise the parallel
// independent-restart path.
func BenchmarkForceAnneal(b *testing.B) {
	f, err := bravyi.Build(bravyi.Params{K: 8, Levels: 1})
	if err != nil {
		b.Fatal(err)
	}
	g := graph.FromCircuit(f.Circuit)
	init := layout.Linear(f)
	an := force.NewAnnealer()
	for _, v := range []struct {
		name string
		opt  force.Options
	}{
		{"single", force.Options{Seed: 1}},
		{"restarts4", force.Options{Seed: 1, Restarts: 4}},
		{"restarts4_serial", force.Options{Seed: 1, Restarts: 4, RestartWorkers: 1}},
	} {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := an.Anneal(g, f.Circuit, init, v.opt)
				if i == b.N-1 {
					m := layout.Measure(g, p)
					b.ReportMetric(float64(m.Crossings), "crossings")
				}
			}
		})
	}
}

func BenchmarkStitchBuildK36(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := stitch.Build(bravyi.Params{K: 6, Levels: 2, Barriers: true},
			stitch.Options{Seed: 1, Reuse: true, Hops: stitch.AnnealedMidpointHop}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFactoryGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bravyi.Build(bravyi.Params{K: 10, Levels: 2, Barriers: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAreaExpansion measures §IX's area-expansion tradeoff:
// empty gutters between stitched blocks buy routing bandwidth.
func BenchmarkAblationAreaExpansion(b *testing.B) {
	for _, sp := range []struct {
		name    string
		spacing int
	}{{"tight", 0}, {"spaced1", 1}, {"spaced3", 3}} {
		b.Run(sp.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := stitch.Build(bravyi.Params{K: 6, Levels: 2, Barriers: true},
					stitch.Options{Seed: 1, Hops: stitch.NoHop, ExpandSpacing: sp.spacing})
				if err != nil {
					b.Fatal(err)
				}
				res, err := mesh.Simulate(r.Factory.Circuit, r.Placement, mesh.Config{})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Latency), "latency_cycles")
			}
		})
	}
}

func BenchmarkExtInteractionStyles(b *testing.B) {
	// §IX interaction-style study: same factory under braiding, lattice
	// surgery and teleportation at a representative code distance.
	for i := 0; i < b.N; i++ {
		rows, err := experiments.StylesExperiment(4, 1, []int{5, 15}, 1)
		if err != nil {
			b.Fatal(err)
		}
		var braid, tele float64
		for _, r := range rows {
			if r.Distance != 15 {
				continue
			}
			switch r.Style {
			case "braiding":
				braid = float64(r.Latency)
			case "teleportation":
				tele = float64(r.Latency)
			}
		}
		b.ReportMetric(tele/braid, "tele_vs_braid_d15")
	}
}

func BenchmarkExtAreaExpansion(b *testing.B) {
	// §IX area-expansion study under the GP embedding.
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AreaExpansion(4, 1, []float64{1, 2}, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].Latency)/float64(rows[1].Latency), "latency_gain_2x_area")
	}
}

func BenchmarkExtProtocolZoo(b *testing.B) {
	// §III protocol comparison at the default working point.
	for i := 0; i < b.N; i++ {
		rows := experiments.ProtocolComparison(1e-3, 1e-10)
		best := 0.0
		for _, r := range rows {
			if r.Err == "" && (best == 0 || r.VolumeProxy < best) {
				best = r.VolumeProxy
			}
		}
		b.ReportMetric(best, "best_volume_proxy")
	}
}

func BenchmarkExtMonteCarloYield(b *testing.B) {
	// Monte-Carlo factory yield against the analytic first-order model.
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Yield([]int{2}, 2, 4000, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].SampledFullYield, "sampled_full_yield")
		b.ReportMetric(rows[0].AnalyticFullYield, "analytic_full_yield")
	}
}

func BenchmarkExtStitchGeneralization(b *testing.B) {
	// §IX stitching generalization: windowed stitching vs one global
	// embedding across phase-shuffled, static, local and all-pairs
	// workloads.
	for i := 0; i < b.N; i++ {
		rows, err := experiments.StitchGeneralization(1)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Workload == "qft-16" {
				b.ReportMetric(r.Gain, "qft_gain")
			}
			if r.Workload == "hier-shuffled" {
				b.ReportMetric(r.Gain, "shuffled_gain")
			}
		}
	}
}

func BenchmarkExtCommunityMethods(b *testing.B) {
	// Community detection algorithm comparison on a two-level factory
	// interaction graph (§VI.B.1, [34-39]).
	f, err := bravyi.Build(bravyi.Params{K: 2, Levels: 2, Barriers: true})
	if err != nil {
		b.Fatal(err)
	}
	g := graph.FromCircuit(f.Circuit)
	for _, m := range graph.CommunityMethods(14) {
		if m.Name == "girvan-newman" || m.Name == "random-walk" {
			continue // quadratic; benchmarked implicitly via unit tests
		}
		b.Run(m.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				label, count := m.Detect(g)
				if count < 1 {
					b.Fatal("no communities")
				}
				b.ReportMetric(graph.Modularity(g, label), "modularity")
			}
		})
	}
}

func BenchmarkExtSchedReorder(b *testing.B) {
	// §V.A gate-reordering study: commuting-sift vs program order.
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SchedReorder(2, []int{4, 16}, 1)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(float64(last.SiftedLatency)/float64(last.ProgramLatency), "sifted_vs_program")
	}
}

func BenchmarkExtThreeLevel(b *testing.B) {
	// Beyond the paper: K=2 three-level factory, all strategies; the
	// Line/HS volume ratio shows the permutation overhead compounding.
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ThreeLevel(2, 1)
		if err != nil {
			b.Fatal(err)
		}
		var line, hs float64
		for _, r := range rows {
			switch r.Strategy {
			case "Line":
				line = r.Volume
			case "HS":
				hs = r.Volume
			}
		}
		b.ReportMetric(line/hs, "line_over_hs_l3")
	}
}

func BenchmarkExtBK15Mapping(b *testing.B) {
	// §III robustness check: the mappers on the 15→1 protocol circuit.
	for i := 0; i < b.N; i++ {
		rows, err := experiments.BK15Mapping(1)
		if err != nil {
			b.Fatal(err)
		}
		var random, gp float64
		for _, r := range rows {
			switch r.Strategy {
			case "Random":
				random = r.Volume
			case "GP":
				gp = r.Volume
			}
		}
		b.ReportMetric(random/gp, "random_over_gp")
	}
}
