package core

import (
	"encoding/binary"
	"fmt"

	"magicstate/internal/bravyi"
	"magicstate/internal/circuit"
	"magicstate/internal/layout"
	"magicstate/internal/mesh"
)

// Stage artifact codecs: compact, versioned binary encodings of the
// intermediate artifacts the staged pipeline persists (BuildArtifact,
// PlaceArtifact, the simulation mesh.Result). The format is
// deliberately boring — a magic string, a version byte, then every
// field in declaration order as varints — because the properties that
// matter are elsewhere:
//
//   - Lossless for replay: everything a downstream stage reads is
//     encoded. The two deliberate omissions are bravyi.Params.Assigner
//     (a policy func consulted only during Build, never replayed) and
//     mesh.Result.Paths/HoldEnd (diagnostic fields populated only under
//     RecordPaths; configs that need them never cache the sim stage).
//   - Strict on decode: a corrupt or truncated record is rejected with
//     an error, never admitted — every count is bounded by the bytes
//     that remain, every index is range-checked against the structure
//     decoded so far, and trailing bytes fail the decode. The fuzz
//     target FuzzStageArtifactDecode hammers exactly this contract.
//   - Versioned: bumping a stage's codec version orphans (never
//     misreads) records written by older encodings, the same contract
//     internal/store's key format version gives final records.

// Codec version bytes, one per artifact kind. Bump on any change to the
// corresponding encoding's meaning.
const (
	buildCodecVersion = 1
	placeCodecVersion = 1
	simCodecVersion   = 1
)

// Codec magic strings. Distinct per artifact kind so a record can never
// decode as the wrong kind even if stage framing above this layer is
// confused.
const (
	buildMagic = "msc/build"
	placeMagic = "msc/place"
	simMagic   = "msc/sim"
)

// enc is an append-only varint writer.
type enc struct{ b []byte }

func (e *enc) magic(m string, version byte) { e.b = append(append(e.b, m...), version) }
func (e *enc) uint(v uint64)                { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) int(v int)                    { e.b = binary.AppendVarint(e.b, int64(v)) }
func (e *enc) bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}
func (e *enc) qubits(qs []circuit.Qubit) {
	e.uint(uint64(len(qs)))
	for _, q := range qs {
		e.int(int(q))
	}
}
func (e *enc) ints(vs []int) {
	e.uint(uint64(len(vs)))
	for _, v := range vs {
		e.int(v)
	}
}

// dec is the matching reader. The first failure latches into err and
// every later read returns zero values, so decode bodies read linearly
// and check err once per structural boundary.
type dec struct {
	data []byte
	off  int
	err  error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *dec) magic(m string, version byte) {
	if d.err != nil {
		return
	}
	if len(d.data)-d.off < len(m)+1 || string(d.data[d.off:d.off+len(m)]) != m {
		d.fail("bad magic (want %q)", m)
		return
	}
	d.off += len(m)
	if got := d.data[d.off]; got != version {
		d.fail("unsupported %s version %d (want %d)", m, got, version)
		return
	}
	d.off++
}

func (d *dec) uint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail("truncated uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) int() int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		d.fail("truncated varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return int(v)
}

func (d *dec) bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.data) {
		d.fail("truncated bool at offset %d", d.off)
		return false
	}
	b := d.data[d.off]
	d.off++
	if b > 1 {
		d.fail("bad bool byte %d at offset %d", b, d.off-1)
		return false
	}
	return b == 1
}

// count reads a length prefix and bounds it by the bytes remaining
// (each encoded element costs at least perItem bytes), so a corrupt
// length can never drive a giant allocation.
func (d *dec) count(perItem int) int {
	v := d.uint()
	if d.err != nil {
		return 0
	}
	if max := uint64(len(d.data)-d.off) / uint64(perItem); v > max {
		d.fail("count %d exceeds remaining input (%d bytes)", v, len(d.data)-d.off)
		return 0
	}
	return int(v)
}

func (d *dec) qubits(min, max int) []circuit.Qubit {
	n := d.count(1)
	if d.err != nil || n == 0 {
		return nil
	}
	qs := make([]circuit.Qubit, n)
	for i := range qs {
		v := d.int()
		if d.err == nil && (v < min || v >= max) {
			d.fail("qubit %d out of range [%d, %d)", v, min, max)
		}
		qs[i] = circuit.Qubit(v)
	}
	return qs
}

func (d *dec) ints(min, max int) []int {
	n := d.count(1)
	if d.err != nil || n == 0 {
		return nil
	}
	vs := make([]int, n)
	for i := range vs {
		v := d.int()
		if d.err == nil && (v < min || v >= max) {
			d.fail("value %d out of range [%d, %d)", v, min, max)
		}
		vs[i] = v
	}
	return vs
}

// done rejects trailing bytes: a valid record is consumed exactly.
func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.data) {
		return fmt.Errorf("%d trailing bytes after a complete record", len(d.data)-d.off)
	}
	return nil
}

func encodeCircuit(e *enc, c *circuit.Circuit) {
	e.int(c.NumQubits)
	e.uint(uint64(len(c.Gates)))
	for i := range c.Gates {
		g := &c.Gates[i]
		e.uint(uint64(g.Kind))
		e.int(int(g.Control))
		e.qubits(g.Targets)
		e.int(int(g.Dest))
		e.int(g.Round)
		e.int(g.Module)
	}
	e.uint(uint64(len(c.Names)))
	for _, n := range c.Names {
		e.uint(uint64(len(n)))
		e.b = append(e.b, n...)
	}
}

func decodeCircuit(d *dec) *circuit.Circuit {
	c := &circuit.Circuit{}
	c.NumQubits = d.int()
	if d.err == nil && c.NumQubits < 0 {
		d.fail("negative qubit count %d", c.NumQubits)
	}
	nGates := d.count(5) // kind, control, target len, dest, round/module ≥ 5 bytes
	if d.err != nil {
		return c
	}
	c.Gates = make([]circuit.Gate, nGates)
	for i := range c.Gates {
		g := &c.Gates[i]
		kind := d.uint()
		if d.err == nil && kind > uint64(circuit.KindBarrier) {
			d.fail("gate %d has unknown kind %d", i, kind)
		}
		g.Kind = circuit.Kind(kind)
		ctrl := d.int()
		if d.err == nil && (ctrl < int(circuit.NoQubit) || ctrl >= c.NumQubits) {
			d.fail("gate %d control %d out of range", i, ctrl)
		}
		g.Control = circuit.Qubit(ctrl)
		g.Targets = d.qubits(0, c.NumQubits)
		dest := d.int()
		if d.err == nil && (dest < int(circuit.NoQubit) || dest >= c.NumQubits) {
			d.fail("gate %d dest %d out of range", i, dest)
		}
		g.Dest = circuit.Qubit(dest)
		g.Round = d.int()
		g.Module = d.int()
		if d.err != nil {
			return c
		}
	}
	nNames := d.count(1)
	if d.err == nil && nNames != 0 && nNames != c.NumQubits {
		d.fail("name count %d does not match %d qubits", nNames, c.NumQubits)
	}
	if d.err != nil {
		return c
	}
	if nNames > 0 {
		c.Names = make([]string, nNames)
		for i := range c.Names {
			n := d.count(1)
			if d.err != nil {
				return c
			}
			c.Names[i] = string(d.data[d.off : d.off+n])
			d.off += n
		}
	}
	return c
}

func encodePlacement(e *enc, p *layout.Placement) {
	e.int(p.W)
	e.int(p.H)
	e.uint(uint64(len(p.Pos)))
	for _, pt := range p.Pos {
		e.int(pt.X)
		e.int(pt.Y)
	}
}

func decodePlacement(d *dec) *layout.Placement {
	p := &layout.Placement{}
	p.W = d.int()
	p.H = d.int()
	n := d.count(2)
	if d.err != nil {
		return p
	}
	p.Pos = make([]layout.Point, n)
	for i := range p.Pos {
		p.Pos[i] = layout.Point{X: d.int(), Y: d.int()}
	}
	return p
}

// EncodeBuildArtifact serializes a StageBuild artifact.
func EncodeBuildArtifact(b *BuildArtifact) []byte {
	e := &enc{}
	e.magic(buildMagic, buildCodecVersion)
	f := b.Factory
	e.int(f.Params.K)
	e.int(f.Params.Levels)
	e.bool(f.Params.Reuse)
	e.bool(f.Params.Barriers)
	encodeCircuit(e, f.Circuit)
	e.uint(uint64(len(f.Modules)))
	for i := range f.Modules {
		m := &f.Modules[i]
		e.int(m.Round)
		e.int(m.Index)
		e.int(m.InRound)
		e.int(m.Group)
		e.qubits(m.Raw)
		e.qubits(m.Anc)
		e.qubits(m.Out)
		e.ints(m.RawConsumer)
		e.int(m.GateStart)
		e.int(m.GateEnd)
	}
	e.uint(uint64(len(f.Rounds)))
	for i := range f.Rounds {
		r := &f.Rounds[i]
		e.int(r.Index)
		e.ints(r.Modules)
		e.int(r.PermStart)
		e.int(r.PermEnd)
		e.int(r.GateStart)
		e.int(r.GateEnd)
		e.qubits(r.Fresh)
	}
	e.uint(uint64(len(f.Wires)))
	for i := range f.Wires {
		w := &f.Wires[i]
		e.int(w.FromModule)
		e.int(w.FromPort)
		e.int(w.ToModule)
		e.int(w.ToSlot)
		e.int(w.GateIdx)
	}
	e.bool(b.Placement != nil)
	if b.Placement != nil {
		encodePlacement(e, b.Placement)
	}
	return e.b
}

// DecodeBuildArtifact is the strict inverse of EncodeBuildArtifact.
func DecodeBuildArtifact(data []byte) (*BuildArtifact, error) {
	d := &dec{data: data}
	d.magic(buildMagic, buildCodecVersion)
	f := &bravyi.Factory{}
	f.Params.K = d.int()
	f.Params.Levels = d.int()
	f.Params.Reuse = d.bool()
	f.Params.Barriers = d.bool()
	f.Circuit = decodeCircuit(d)
	nGates := len(f.Circuit.Gates)
	nMod := d.count(10)
	if d.err == nil && nMod > 0 {
		f.Modules = make([]bravyi.Module, nMod)
		for i := range f.Modules {
			m := &f.Modules[i]
			m.Round = d.int()
			m.Index = d.int()
			m.InRound = d.int()
			m.Group = d.int()
			m.Raw = d.qubits(0, f.Circuit.NumQubits)
			m.Anc = d.qubits(0, f.Circuit.NumQubits)
			m.Out = d.qubits(0, f.Circuit.NumQubits)
			m.RawConsumer = d.ints(-1, nGates)
			m.GateStart = d.int()
			m.GateEnd = d.int()
			if d.err == nil && (m.GateStart < 0 || m.GateEnd < m.GateStart || m.GateEnd > nGates) {
				d.fail("module %d gate span [%d, %d) out of range", i, m.GateStart, m.GateEnd)
			}
			if d.err != nil {
				break
			}
		}
	}
	nRounds := d.count(7)
	if d.err == nil && nRounds > 0 {
		f.Rounds = make([]bravyi.Round, nRounds)
		for i := range f.Rounds {
			r := &f.Rounds[i]
			r.Index = d.int()
			r.Modules = d.ints(0, nMod)
			r.PermStart = d.int()
			r.PermEnd = d.int()
			r.GateStart = d.int()
			r.GateEnd = d.int()
			r.Fresh = d.qubits(0, f.Circuit.NumQubits)
			if d.err == nil && (r.PermStart < 0 || r.PermEnd < r.PermStart || r.PermEnd > nGates ||
				r.GateStart < 0 || r.GateEnd < r.GateStart || r.GateEnd > nGates) {
				d.fail("round %d gate spans out of range", i)
			}
			if d.err != nil {
				break
			}
		}
	}
	nWires := d.count(5)
	if d.err == nil && nWires > 0 {
		f.Wires = make([]bravyi.Wire, nWires)
		for i := range f.Wires {
			w := &f.Wires[i]
			w.FromModule = d.int()
			w.FromPort = d.int()
			w.ToModule = d.int()
			w.ToSlot = d.int()
			w.GateIdx = d.int()
			if d.err == nil && (w.FromModule < 0 || w.FromModule >= nMod ||
				w.ToModule < 0 || w.ToModule >= nMod ||
				w.GateIdx < -1 || w.GateIdx >= nGates) {
				d.fail("wire %d references out-of-range module or gate", i)
			}
			if d.err != nil {
				break
			}
		}
	}
	b := &BuildArtifact{Factory: f}
	if d.bool() {
		b.Placement = decodePlacement(d)
	}
	if err := d.done(); err != nil {
		return nil, fmt.Errorf("core: decode build artifact: %w", err)
	}
	return b, nil
}

// EncodePlaceArtifact serializes a StagePlace artifact. Only the
// placement is durable: the Sim byproduct (force-directed candidate
// evaluation) is freshness-only and is recomputed deterministically by
// SimStage when the artifact is replayed.
func EncodePlaceArtifact(p *PlaceArtifact) []byte {
	e := &enc{}
	e.magic(placeMagic, placeCodecVersion)
	encodePlacement(e, p.Placement)
	return e.b
}

// DecodePlaceArtifact is the strict inverse of EncodePlaceArtifact.
// The returned artifact's Sim is nil by construction.
func DecodePlaceArtifact(data []byte) (*PlaceArtifact, error) {
	d := &dec{data: data}
	d.magic(placeMagic, placeCodecVersion)
	pl := decodePlacement(d)
	if err := d.done(); err != nil {
		return nil, fmt.Errorf("core: decode place artifact: %w", err)
	}
	return &PlaceArtifact{Placement: pl}, nil
}

// EncodeSimArtifact serializes a StageSim result: the scalar outcome
// plus the per-gate timing arrays report assembly reads (the
// permutation window needs Start/End). Paths and HoldEnd are never
// encoded; configs that record them do not cache the sim stage.
func EncodeSimArtifact(r *mesh.Result) []byte {
	e := &enc{}
	e.magic(simMagic, simCodecVersion)
	e.int(r.Latency)
	e.int(r.Area)
	e.int(r.Stalls)
	e.uint(uint64(len(r.Start)))
	for _, v := range r.Start {
		e.int(v)
	}
	if len(r.End) != len(r.Start) {
		// Structurally impossible for a simulator result; encode
		// defensively so a decode can never misalign the two arrays.
		panic("core: sim result Start/End length mismatch")
	}
	for _, v := range r.End {
		e.int(v)
	}
	return e.b
}

// DecodeSimArtifact is the strict inverse of EncodeSimArtifact.
func DecodeSimArtifact(data []byte) (*mesh.Result, error) {
	d := &dec{data: data}
	d.magic(simMagic, simCodecVersion)
	r := &mesh.Result{}
	r.Latency = d.int()
	r.Area = d.int()
	r.Stalls = d.int()
	n := d.count(2)
	if d.err == nil && n > 0 {
		r.Start = make([]int, n)
		for i := range r.Start {
			r.Start[i] = d.int()
		}
		r.End = make([]int, n)
		for i := range r.End {
			r.End[i] = d.int()
		}
	}
	if err := d.done(); err != nil {
		return nil, fmt.Errorf("core: decode sim artifact: %w", err)
	}
	return r, nil
}

// ValidateStageArtifact checks that body decodes as an artifact of the
// given stage, without retaining the result. It is the admission check
// shared by the store's scrub pass and the peer read-through path.
func ValidateStageArtifact(st Stage, body []byte) error {
	switch st {
	case StageBuild:
		_, err := DecodeBuildArtifact(body)
		return err
	case StagePlace:
		_, err := DecodePlaceArtifact(body)
		return err
	case StageSim:
		_, err := DecodeSimArtifact(body)
		return err
	}
	return fmt.Errorf("core: unknown stage %d", st)
}
