package magicstate

import (
	"strings"
	"testing"
)

func TestOptimizeQuickstart(t *testing.T) {
	res, err := Optimize(FactorySpec{Capacity: 8, Levels: 1}, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "Line" {
		t.Errorf("default L1 strategy = %q, want Line", res.Strategy)
	}
	if res.Area != 53 {
		t.Errorf("area = %d, want 53", res.Area)
	}
	if res.Latency < res.CriticalLatency {
		t.Error("latency below lower bound")
	}
}

func TestOptimizeTwoLevelDefaultsToStitching(t *testing.T) {
	res, err := Optimize(FactorySpec{Capacity: 4, Levels: 2, Reuse: true}, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "HS" {
		t.Errorf("default L2 strategy = %q, want HS", res.Strategy)
	}
	if res.PermutationLatency <= 0 {
		t.Error("missing permutation latency")
	}
}

func TestOptimizeExplicitStrategy(t *testing.T) {
	res, err := Optimize(FactorySpec{Capacity: 4, Levels: 2},
		Options{Seed: 3}.WithStrategy(RandomMapping))
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "Random" {
		t.Errorf("strategy = %q, want Random", res.Strategy)
	}
}

func TestOptimizeRejectsBadSpec(t *testing.T) {
	if _, err := Optimize(FactorySpec{Capacity: 5, Levels: 2}, Options{}); err == nil {
		t.Error("capacity 5 at level 2 should be rejected")
	}
	if err := (FactorySpec{Capacity: 5, Levels: 2}).Validate(); err == nil {
		t.Error("Validate should reject too")
	}
	if err := (FactorySpec{Capacity: 16, Levels: 2}).Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestEstimateResources(t *testing.T) {
	est, err := EstimateResources(FactorySpec{Capacity: 4, Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(est.RoundDistances) != 2 || est.RoundDistances[1] <= est.RoundDistances[0] {
		t.Errorf("distances %v should grow per round", est.RoundDistances)
	}
	if est.OutputError <= 0 || est.OutputError >= 5e-3 {
		t.Errorf("output error %v should improve on the injected 5e-3", est.OutputError)
	}
	if est.ExpectedRunsPerBatch <= 1 {
		t.Errorf("expected runs %v must exceed 1", est.ExpectedRunsPerBatch)
	}
}

func TestStrategyStrings(t *testing.T) {
	if RandomMapping.String() != "Random" || HierarchicalStitching.String() != "HS" {
		t.Error("strategy names broken")
	}
}

func TestOptimizeDeterministicPerSeed(t *testing.T) {
	run := func() *Result {
		res, err := Optimize(FactorySpec{Capacity: 4, Levels: 2, Reuse: true}, Options{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if *a != *b {
		t.Errorf("same seed should reproduce identical results: %+v vs %+v", a, b)
	}
}

func TestOptimizeStrategyOrderingAtCapacity16(t *testing.T) {
	// End-to-end check of the paper's Table-I ordering through the
	// public API: HS <= GP and both beat Random.
	vol := func(s Strategy) float64 {
		res, err := Optimize(FactorySpec{Capacity: 16, Levels: 2, Reuse: true},
			Options{Seed: 1}.WithStrategy(s))
		if err != nil {
			t.Fatal(err)
		}
		return res.Volume
	}
	hs, gp, rnd := vol(HierarchicalStitching), vol(GraphPartitioning), vol(RandomMapping)
	if !(hs <= gp && gp < rnd) {
		t.Errorf("ordering broken: HS %.3g, GP %.3g, Random %.3g", hs, gp, rnd)
	}
}

func TestVolumeAboveCriticalAlways(t *testing.T) {
	for _, spec := range []FactorySpec{
		{Capacity: 2, Levels: 1},
		{Capacity: 8, Levels: 1},
		{Capacity: 4, Levels: 2},
		{Capacity: 4, Levels: 2, Reuse: true},
	} {
		res, err := Optimize(spec, Options{Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.Volume < res.CriticalVolume {
			t.Errorf("%+v: volume %.3g below critical %.3g", spec, res.Volume, res.CriticalVolume)
		}
	}
}

func TestPlanProvisionMeetsBudget(t *testing.T) {
	app := Application{TCount: 1e9, ErrorBudget: 0.01, TGatesPerCycle: 0.02}
	prov, err := PlanProvision(app)
	if err != nil {
		t.Fatal(err)
	}
	if prov.OutputError > app.ErrorBudget/app.TCount {
		t.Errorf("per-state error %g above budget %g", prov.OutputError, app.ErrorBudget/app.TCount)
	}
	if prov.Factories < 1 || prov.PhysicalQubits <= 0 || prov.BufferSize < prov.CapacityPerFactory {
		t.Errorf("degenerate provision: %+v", prov)
	}
	// Farm throughput must cover demand: factories x capacity x p / latency.
	rate := float64(prov.Factories) * float64(prov.CapacityPerFactory) *
		prov.BatchSuccessProbability / float64(prov.BatchLatency)
	if rate < app.TGatesPerCycle {
		t.Errorf("farm rate %g below demand %g", rate, app.TGatesPerCycle)
	}
}

func TestPlanProvisionRejectsBadApplication(t *testing.T) {
	if _, err := PlanProvision(Application{TCount: 0, ErrorBudget: 0.01, TGatesPerCycle: 0.01}); err == nil {
		t.Error("TCount=0 accepted")
	}
	if _, err := PlanProvision(Application{TCount: 1e9, ErrorBudget: 0, TGatesPerCycle: 0.01}); err == nil {
		t.Error("ErrorBudget=0 accepted")
	}
}

func TestOptimizeInteractionStyles(t *testing.T) {
	spec := FactorySpec{Capacity: 8, Levels: 1}
	braid, err := Optimize(spec, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tele, err := Optimize(spec, Options{Seed: 1, Style: Teleportation, Distance: 10})
	if err != nil {
		t.Fatal(err)
	}
	surgery, err := Optimize(spec, Options{Seed: 1, Style: LatticeSurgery, Distance: 25})
	if err != nil {
		t.Fatal(err)
	}
	// At d well above the braid unit, surgery must be slower than
	// braiding. Teleportation at the matching unit pays only its EPR
	// setup cycles on this low-congestion mapping (its payoff is
	// congestion relief, not raw speed), so it must stay within ~15%.
	if surgery.Latency <= braid.Latency {
		t.Errorf("surgery at d=25 latency %d <= braiding %d", surgery.Latency, braid.Latency)
	}
	if float64(tele.Latency) > 1.15*float64(braid.Latency) {
		t.Errorf("teleportation at matched unit latency %d far above braiding %d", tele.Latency, braid.Latency)
	}
	if Braiding.String() != "braiding" || Teleportation.String() != "teleportation" {
		t.Error("style names wrong through the facade")
	}
}

func TestOptimizeTraceReport(t *testing.T) {
	res, err := Optimize(FactorySpec{Capacity: 4, Levels: 2, Reuse: true},
		Options{Seed: 1, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"concurrency", "round 2", "permutation share"} {
		if !containsStr(res.Trace, want) {
			t.Errorf("trace missing %q", want)
		}
	}
	plain, err := Optimize(FactorySpec{Capacity: 4, Levels: 2, Reuse: true}, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != "" {
		t.Error("trace populated without Options.Trace")
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && strings.Contains(s, sub)
}
