// Scaffoldc: compile a Scaffold program (the language of the paper's
// Fig. 5 listing) to the gate-level IR, map it with recursive graph
// partitioning, and execute it on the braid mesh — the same end-to-end
// flow the paper's toolchain performs on arbitrary circuits, here on a
// GHZ-preparation kernel with a distillation-style syndrome check.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"magicstate/internal/graph"
	"magicstate/internal/layout"
	"magicstate/internal/mesh"
	"magicstate/internal/partition"
	"magicstate/internal/resource"
	"magicstate/internal/scaffold"
)

const src = `
#define N 16

// Entangle two registers with a crossing pattern: on a 1-D line these
// CNOTs fight over the same channel rows, on a good 2-D embedding they
// run in parallel.
module crossings(qbit* a, qbit* b) {
  for (int i = 0; i < N; i++) {
    H(a[i]);
  }
  for (int i = 0; i < N; i++) {
    CNOT(a[i], b[N - 1 - i]);
  }
  for (int i = 0; i < N / 2; i++) {
    CNOT(a[2 * i], b[2 * i + 1]);
  }
}

module check(qbit* a, qbit* b) {
  for (int i = 0; i < N; i++) {
    MeasX(b[i]);
  }
}

module main() {
  qbit a[N];
  qbit b[N];
  crossings(a, b);
  barrier(a, b);
  check(a, b);
}
`

func main() {
	circ, err := scaffold.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %d qubits, %d gates from Scaffold source\n",
		circ.NumQubits, len(circ.Gates))

	g := graph.FromCircuit(circ)
	pl := partition.EmbedSquare(g, rand.New(rand.NewSource(1)))
	fmt.Printf("graph-partitioned placement (%dx%d grid):\n%s",
		pl.W, pl.H, pl.Render(nil, 0, 0))

	res, err := mesh.Simulate(circ, pl, mesh.Config{})
	if err != nil {
		log.Fatal(err)
	}
	cm := resource.DefaultCost()
	fmt.Printf("latency %d cycles (lower bound %d), area %d tiles, %d stalls\n",
		res.Latency, cm.CriticalPath(circ), res.Area, res.Stalls)

	lin := layout.NewPlacement(circ.NumQubits, circ.NumQubits, 1)
	for i := 0; i < circ.NumQubits; i++ {
		lin.Set(i, layout.Point{X: i, Y: 0})
	}
	rl, err := mesh.Simulate(circ, lin, mesh.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same program on a 1-row line: %d cycles — GP saves %.1f%%\n",
		rl.Latency, 100*(1-float64(res.Latency)/float64(rl.Latency)))
}
