package main

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// errQueueFull reports that the admission waiting room is at capacity;
// handlers translate it to 429 + Retry-After.
var errQueueFull = errors.New("msfud: admission queue full")

// admission is the service's compute budget: at most maxInflight
// requests execute at once, at most maxQueue more wait for a slot, and
// everything beyond that is rejected immediately so load sheds at the
// door instead of accumulating as unbounded goroutines. Cache hits
// bypass admission entirely (they cost microseconds); only work that
// may compute pays for a ticket.
type admission struct {
	maxInflight int
	maxQueue    int
	slots       chan struct{}
	queued      atomic.Int64
	inflight    atomic.Int64
	rejected    atomic.Int64
}

// newAdmission sizes the budget. Non-positive maxInflight falls back to
// 1; negative maxQueue means an empty waiting room (admit or reject,
// never wait).
func newAdmission(maxInflight, maxQueue int) *admission {
	if maxInflight <= 0 {
		maxInflight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{
		maxInflight: maxInflight,
		maxQueue:    maxQueue,
		slots:       make(chan struct{}, maxInflight),
	}
}

// reservation is a claim on the admission budget: either a held
// execution slot or a place in the waiting room, converted to a slot by
// wait. Exactly one of wait or abandon must be called.
type reservation struct {
	a        *admission
	slotHeld bool
}

// reserve claims budget without blocking: an execution slot when one is
// free, a queue place otherwise, errQueueFull when the waiting room is
// at capacity. It is the synchronous half of admission, so the batch
// job path can answer 429 at submit time while the waiting happens in
// the job's own goroutine.
func (a *admission) reserve() (*reservation, error) {
	select {
	case a.slots <- struct{}{}:
		a.inflight.Add(1)
		return &reservation{a: a, slotHeld: true}, nil
	default:
	}
	if a.queued.Add(1) > int64(a.maxQueue) {
		a.queued.Add(-1)
		a.rejected.Add(1)
		return nil, errQueueFull
	}
	return &reservation{a: a}, nil
}

// wait blocks until the reservation holds an execution slot or ctx
// ends, returning the release func the holder must call exactly once.
func (r *reservation) wait(ctx context.Context) (release func(), err error) {
	a := r.a
	if !r.slotHeld {
		select {
		case a.slots <- struct{}{}:
			a.queued.Add(-1)
			a.inflight.Add(1)
			r.slotHeld = true
		case <-ctx.Done():
			a.queued.Add(-1)
			return nil, ctx.Err()
		}
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			a.inflight.Add(-1)
			<-a.slots
		})
	}, nil
}

// abandon gives up a reservation that was never waited on (the request
// died between reserve and wait).
func (r *reservation) abandon() {
	if r.slotHeld {
		r.a.inflight.Add(-1)
		<-r.a.slots
	} else {
		r.a.queued.Add(-1)
	}
}

// acquire is reserve+wait for synchronous callers.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	r, err := a.reserve()
	if err != nil {
		return nil, err
	}
	return r.wait(ctx)
}

// rateLimiter is a per-client token bucket keyed by remote address.
// Each client accrues rate tokens per second up to burst; a request
// spends one. The zero rate disables limiting entirely.
type rateLimiter struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	clients map[string]*bucket
	limited atomic.Int64
}

// bucket is one client's token balance at a refill instant.
type bucket struct {
	tokens float64
	last   time.Time
}

// maxTrackedClients bounds the limiter's memory: past it, buckets that
// have fully refilled (idle clients) are dropped — rejoining at full
// burst is exactly what a fresh bucket grants anyway.
const maxTrackedClients = 4096

// newRateLimiter builds a limiter granting rate tokens/second with the
// given burst (non-positive burst defaults to max(1, rate)). rate <= 0
// disables limiting: allow always succeeds.
func newRateLimiter(rate, burst float64) *rateLimiter {
	if burst <= 0 {
		burst = math.Max(1, rate)
	}
	return &rateLimiter{rate: rate, burst: burst, clients: make(map[string]*bucket)}
}

// allow spends one token for client, reporting whether the request may
// proceed and, when it may not, how long until a token accrues (the
// Retry-After the handler advertises).
func (rl *rateLimiter) allow(client string, now time.Time) (ok bool, retryAfter time.Duration) {
	if rl.rate <= 0 {
		return true, 0
	}
	rl.mu.Lock()
	defer rl.mu.Unlock()
	b, present := rl.clients[client]
	if !present {
		if len(rl.clients) >= maxTrackedClients {
			rl.pruneLocked(now)
		}
		b = &bucket{tokens: rl.burst, last: now}
		rl.clients[client] = b
	}
	b.tokens = math.Min(rl.burst, b.tokens+now.Sub(b.last).Seconds()*rl.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	rl.limited.Add(1)
	need := (1 - b.tokens) / rl.rate
	return false, time.Duration(need * float64(time.Second))
}

// pruneLocked drops buckets that have refilled to burst — clients idle
// long enough that forgetting them is observationally free.
func (rl *rateLimiter) pruneLocked(now time.Time) {
	for c, b := range rl.clients {
		if b.tokens+now.Sub(b.last).Seconds()*rl.rate >= rl.burst {
			delete(rl.clients, c)
		}
	}
}
