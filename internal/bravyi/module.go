package bravyi

import "magicstate/internal/circuit"

// Module records one Bravyi-Haah (3k+8) -> k instance inside a factory.
type Module struct {
	Round   int // 1-based round
	Index   int // global module index across the factory
	InRound int // index within its round
	Group   int // wiring group within its round (§II.G g_r/m_r structure)

	// Raw[s] is the qubit sourcing input slot s (a fresh raw-state tile in
	// round 1, a previous round's output qubit afterwards).
	Raw []circuit.Qubit
	// Anc holds the k+5 ancillary qubits, Out the k output qubits.
	Anc []circuit.Qubit
	Out []circuit.Qubit

	// RawConsumer[s] is the index (into Circuit.Gates) of the injection
	// gate that consumes Raw[s]; port reassignment rewrites its Control.
	RawConsumer []int

	// GateStart/GateEnd delimit the module's gates [GateStart, GateEnd).
	GateStart, GateEnd int
}

// emitModule appends the Fig. 5 module body for the given registers to c,
// tagging every gate with round and module indices. It fills
// m.RawConsumer.
//
// The published listing indexes raw_states[2*i+8+i] inside the tail, which
// double-consumes low-index states for every K; we instead consume the
// remaining block raw[2(K+4) .. 3K+7] so that each of the 3K+8 inputs is
// injected exactly once, matching the protocol's input arity.
func emitModule(c *circuit.Circuit, m *Module) {
	k := len(m.Out)
	anc, out, raw := m.Anc, m.Out, m.Raw
	m.GateStart = len(c.Gates)
	m.RawConsumer = make([]int, len(raw))
	for i := range m.RawConsumer {
		m.RawConsumer[i] = -1
	}

	tag := func(from int) {
		for i := from; i < len(c.Gates); i++ {
			c.Gates[i].Round = m.Round
			c.Gates[i].Module = m.Index
		}
	}

	// Head: superposition preparation and verification skeleton.
	c.H(anc[0])
	c.H(anc[1])
	c.H(anc[2])
	for i := 0; i < k; i++ {
		c.H(out[i])
	}
	c.CNOT(anc[1], anc[3])
	c.CNOT(anc[2], anc[4])
	c.CXX(anc[0], anc[1:k+1])

	// Tail: entangle each output with the ancilla chain and inject one
	// raw state per output.
	for i := 0; i < k; i++ {
		c.CNOT(out[i], anc[5+i])
		m.RawConsumer[2*(k+4)+i] = len(c.Gates)
		c.InjectT(raw[2*(k+4)+i], anc[5+i])
		c.CNOT(anc[5+i], anc[4+i])
		c.CNOT(anc[3+i], anc[5+i])
		c.CNOT(anc[4+i], anc[3+i])
	}

	// Syndrome block: T then T-dagger injections around the big CXX.
	for i := 1; i < k+5; i++ {
		m.RawConsumer[2*i-2] = len(c.Gates)
		c.InjectT(raw[2*i-2], anc[i])
	}
	c.CXX(anc[0], anc[1:k+5])
	for i := 1; i < k+5; i++ {
		m.RawConsumer[2*i-1] = len(c.Gates)
		c.InjectTdag(raw[2*i-1], anc[i])
	}

	// Error check: measure every ancilla in the X basis.
	for i := 0; i < k+5; i++ {
		c.MeasX(anc[i])
	}

	tag(m.GateStart)
	m.GateEnd = len(c.Gates)
}

// GatesPerModule returns the closed-form gate count of one module body:
// (3+k) H + (2+4k) CNOT + 2 CXX + (2k+4) injectT + (k+4) injectTdag +
// (k+5) MeasX = 9k + 20.
func GatesPerModule(k int) int { return 9*k + 20 }
