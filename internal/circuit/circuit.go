package circuit

import (
	"errors"
	"fmt"
	"strings"
)

// Circuit is an ordered sequence of gates over NumQubits logical qubits.
// The sequence order defines program order; dependencies derive from
// shared operands (see Deps).
type Circuit struct {
	NumQubits int
	Gates     []Gate
	Names     []string // optional per-qubit debug names; empty or len == NumQubits
}

// New returns an empty circuit over n qubits.
func New(n int) *Circuit { return &Circuit{NumQubits: n} }

// AddQubit appends a fresh qubit with an optional name and returns its id.
func (c *Circuit) AddQubit(name string) Qubit {
	q := Qubit(c.NumQubits)
	c.NumQubits++
	if name != "" || len(c.Names) > 0 {
		for len(c.Names) < c.NumQubits-1 {
			c.Names = append(c.Names, "")
		}
		c.Names = append(c.Names, name)
	}
	return q
}

// Name returns the debug name of q, or "q<i>" when unnamed.
func (c *Circuit) Name(q Qubit) string {
	if int(q) < len(c.Names) && c.Names[q] != "" {
		return c.Names[q]
	}
	return fmt.Sprintf("q%d", q)
}

// Append adds a gate to the end of the program.
func (c *Circuit) Append(g Gate) { c.Gates = append(c.Gates, g) }

// H appends a Hadamard on q.
func (c *Circuit) H(q Qubit) { c.Append(Gate{Kind: KindH, Control: NoQubit, Targets: []Qubit{q}}) }

// PrepZ appends a |0> preparation on q.
func (c *Circuit) PrepZ(q Qubit) {
	c.Append(Gate{Kind: KindPrepZ, Control: NoQubit, Targets: []Qubit{q}})
}

// PrepX appends a |+> preparation on q.
func (c *Circuit) PrepX(q Qubit) {
	c.Append(Gate{Kind: KindPrepX, Control: NoQubit, Targets: []Qubit{q}})
}

// T appends a T rotation on q (consumes a magic state when fault
// tolerant; T and T-dagger share a cost and interaction profile, so the
// IR does not distinguish them).
func (c *Circuit) T(q Qubit) { c.Append(Gate{Kind: KindT, Control: NoQubit, Targets: []Qubit{q}}) }

// S appends a phase gate on q (decomposes into two T gates, §II.E).
func (c *Circuit) S(q Qubit) { c.Append(Gate{Kind: KindS, Control: NoQubit, Targets: []Qubit{q}}) }

// X appends a Pauli X on q.
func (c *Circuit) X(q Qubit) { c.Append(Gate{Kind: KindX, Control: NoQubit, Targets: []Qubit{q}}) }

// Z appends a Pauli Z on q.
func (c *Circuit) Z(q Qubit) { c.Append(Gate{Kind: KindZ, Control: NoQubit, Targets: []Qubit{q}}) }

// MeasZ appends a Z-basis measurement of q.
func (c *Circuit) MeasZ(q Qubit) {
	c.Append(Gate{Kind: KindMeasZ, Control: NoQubit, Targets: []Qubit{q}})
}

// CNOT appends a controlled-NOT with the given control and target.
func (c *Circuit) CNOT(ctrl, tgt Qubit) {
	c.Append(Gate{Kind: KindCNOT, Control: ctrl, Targets: []Qubit{tgt}})
}

// CXX appends a single-control multi-target CNOT.
func (c *Circuit) CXX(ctrl Qubit, tgts []Qubit) {
	ts := make([]Qubit, len(tgts))
	copy(ts, tgts)
	c.Append(Gate{Kind: KindCXX, Control: ctrl, Targets: ts})
}

// InjectT appends a T-state injection into data. raw is the source qubit
// carrying the state, or NoQubit for an ambient (freshly prepared) state.
func (c *Circuit) InjectT(raw, data Qubit) {
	c.Append(Gate{Kind: KindInjectT, Control: raw, Targets: []Qubit{data}})
}

// InjectTdag appends an adjoint T-state injection.
func (c *Circuit) InjectTdag(raw, data Qubit) {
	c.Append(Gate{Kind: KindInjectTdag, Control: raw, Targets: []Qubit{data}})
}

// MeasX appends an X-basis measurement of q.
func (c *Circuit) MeasX(q Qubit) {
	c.Append(Gate{Kind: KindMeasX, Control: NoQubit, Targets: []Qubit{q}})
}

// Move appends a state relocation of src into the tile slot identified by
// dst. dst is itself a qubit id (the slot's identity after the move).
func (c *Circuit) Move(src, dst Qubit) {
	c.Append(Gate{Kind: KindMove, Control: src, Targets: []Qubit{dst}, Dest: dst})
}

// Barrier appends a scheduling fence over qs. Physically this is a
// multi-target CNOT controlled by an ancilla prepared in |0> (§V.A), which
// is a no-op on the data but serializes everything across it.
func (c *Circuit) Barrier(qs []Qubit) {
	ts := make([]Qubit, len(qs))
	copy(ts, qs)
	c.Append(Gate{Kind: KindBarrier, Control: NoQubit, Targets: ts, Module: -1})
}

// Validate checks structural well-formedness: operand ids in range, gate
// arity constraints, and no duplicate operands within a gate.
func (c *Circuit) Validate() error {
	for i := range c.Gates {
		g := &c.Gates[i]
		if g.Kind == KindInvalid {
			return fmt.Errorf("gate %d: invalid kind", i)
		}
		if g.Kind != KindBarrier && len(g.Targets) == 0 {
			return fmt.Errorf("gate %d (%s): no targets", i, g.Kind)
		}
		switch g.Kind {
		case KindCNOT:
			if g.Control == NoQubit || len(g.Targets) != 1 {
				return fmt.Errorf("gate %d: cnot needs control and exactly one target", i)
			}
		case KindCXX:
			if g.Control == NoQubit || len(g.Targets) < 1 {
				return fmt.Errorf("gate %d: cxx needs control and targets", i)
			}
		case KindInjectT, KindInjectTdag:
			if len(g.Targets) != 1 {
				return fmt.Errorf("gate %d: inject needs exactly one data target", i)
			}
		case KindMove:
			if g.Control == NoQubit || g.Dest == NoQubit {
				return fmt.Errorf("gate %d: move needs source and destination", i)
			}
			if len(g.Targets) != 1 || g.Targets[0] != g.Dest {
				return fmt.Errorf("gate %d: move target must mirror its destination", i)
			}
		}
		seen := make(map[Qubit]bool, len(g.Targets)+2)
		for _, q := range g.Operands() {
			if q < 0 || int(q) >= c.NumQubits {
				return fmt.Errorf("gate %d (%s): qubit %d out of range [0,%d)", i, g.Kind, q, c.NumQubits)
			}
			if seen[q] {
				return fmt.Errorf("gate %d (%s): duplicate operand q%d", i, g.Kind, q)
			}
			seen[q] = true
		}
	}
	return nil
}

// CountKind returns how many gates of kind k the circuit contains.
func (c *Circuit) CountKind(k Kind) int {
	n := 0
	for i := range c.Gates {
		if c.Gates[i].Kind == k {
			n++
		}
	}
	return n
}

// TwoQubitGateCount returns the number of braid-requiring gates.
func (c *Circuit) TwoQubitGateCount() int {
	n := 0
	for i := range c.Gates {
		if c.Gates[i].Kind.IsTwoQubit() {
			n++
		}
	}
	return n
}

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{NumQubits: c.NumQubits}
	out.Gates = make([]Gate, len(c.Gates))
	for i := range c.Gates {
		g := c.Gates[i]
		g.Targets = append([]Qubit(nil), g.Targets...)
		out.Gates[i] = g
	}
	out.Names = append([]string(nil), c.Names...)
	return out
}

// String renders the program, one gate per line, for debugging and golden
// tests.
func (c *Circuit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %d qubits, %d gates\n", c.NumQubits, len(c.Gates))
	for i := range c.Gates {
		b.WriteString(c.Gates[i].String())
		b.WriteByte('\n')
	}
	return b.String()
}

// ErrEmpty is returned by analyses that need at least one gate.
var ErrEmpty = errors.New("circuit: empty circuit")
