package stitch

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"magicstate/internal/bravyi"
	"magicstate/internal/circuit"
	"magicstate/internal/layout"
)

// hopScratch owns every buffer the hop router needs: dense per-qubit
// bookkeeping, the dead-tile grid behind pickNearest, the compacted
// free-list behind pickRandom, and the annealer's segment table, bucket
// grid and scoring arenas. Routers are pooled so repeated stitch builds
// reuse the high-water-mark allocations of earlier ones.
type hopScratch struct {
	liveAfter []bool
	used      []bool
	pool      []circuit.Qubit
	// free/freePos form a compacted free-list over the dead pool:
	// free[:nFree] lists the unused qubits in O(1)-removable order, and
	// freePos[q] is q's index in it (-1 once used).
	free    []circuit.Qubit
	freePos []int32
	// tileQ[y*W+x] holds q+1 when unused dead qubit q sits on the tile,
	// the spatial index behind pickNearest.
	tileQ []int32
	hopOf []circuit.Qubit

	// Annealer state.
	hopIdxs    []int
	srcT, dstT []layout.Point
	// segs holds two fixed slots per wire: hopped wires occupy both,
	// direct wires only the first; unused slots carry an off-canvas
	// sentinel whose bounding box can never overlap a real leg. segBox
	// caches each slot's bounding box for the scan's inline reject.
	segs   []layout.Segment
	segBox []box
	candQ  []circuit.Qubit
	// cnt holds the per-wire conflict counts of one speculative pass:
	// 7 scored options (current hop + 6 candidates) x 2 legs per wire,
	// -1 in a first-leg slot marking a candidate the speculation skipped.
	cnt []int32
	// curCnt[si] is slot si's live conflict count, maintained
	// incrementally across passes so current-hop scores never rescan.
	curCnt  []int32
	changes []segChange
}

// segChange records one accepted move's effect on a segment slot, the
// delta later wires repair their speculative counts with.
type segChange struct {
	old, new       layout.Segment
	oldBox, newBox box
}

var hopPool = sync.Pool{New: func() any { return &hopScratch{} }}

// box is an inclusive tile-space bounding rectangle.
type box struct{ minX, minY, maxX, maxY int }

func boxOf(s layout.Segment) box {
	b := box{minX: s.A.X, minY: s.A.Y, maxX: s.A.X, maxY: s.A.Y}
	return b.add(s.B)
}

func (b box) add(p layout.Point) box {
	if p.X < b.minX {
		b.minX = p.X
	}
	if p.X > b.maxX {
		b.maxX = p.X
	}
	if p.Y < b.minY {
		b.minY = p.Y
	}
	if p.Y > b.maxY {
		b.maxY = p.Y
	}
	return b
}

func (b box) overlaps(o box) bool {
	return b.minX <= o.maxX && o.minX <= b.maxX && b.minY <= o.maxY && o.minY <= b.maxY
}

// pickRandomTries bounds the historical rejection-sampling loop before
// pickRandom falls back to the compacted free-list. While fewer than
// roughly half the dead qubits are taken — the common regime — sixteen
// tries fail with probability under 2^-16, so the historical rng stream
// (and therefore every existing artifact) is preserved; once the pool
// gets crowded the old loop degraded toward its 4*len(pool) bound while
// the fallback stays O(1) and never fails while a free qubit exists.
const pickRandomTries = 16

// applyHopRouting selects an intermediate destination for every
// inter-round wire, anneals hop locations when the mode asks for it, and
// rewrites the circuit. Hop qubits are dead qubits (consumed raw states
// or measured ancillas not reused by later rounds), so hops never add
// tiles. Returns the number of hopped wires.
func applyHopRouting(f *bravyi.Factory, pl *layout.Placement, opt Options, rng *rand.Rand) (int, error) {
	nq := f.Circuit.NumQubits
	hs := hopPool.Get().(*hopScratch)
	defer hopPool.Put(hs)

	// Collect hop candidates per consuming round: ids dead by that
	// round's permutation time and not used as registers afterwards.
	liveAfter := resizeBools(&hs.liveAfter, nq)
	for _, m := range f.Modules {
		if m.Round >= 2 {
			for _, qs := range [3][]circuit.Qubit{m.Raw, m.Anc, m.Out} {
				for _, q := range qs {
					liveAfter[q] = true
				}
			}
		}
	}
	// Dead pool: round-1 raw states (consumed by injection) and round-1
	// ancillas (measured), minus anything reused later.
	pool := hs.pool[:0]
	for _, mi := range f.Rounds[0].Modules {
		m := f.Modules[mi]
		for _, qs := range [2][]circuit.Qubit{m.Raw, m.Anc} {
			for _, q := range qs {
				if !liveAfter[q] {
					pool = append(pool, q)
				}
			}
		}
	}
	hs.pool = pool
	if len(pool) == 0 {
		return 0, nil
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i] < pool[j] })

	wires := f.Wires
	used := resizeBools(&hs.used, nq)
	hopOf := hs.hopOf[:0]
	for range wires {
		hopOf = append(hopOf, circuit.NoQubit)
	}
	hs.hopOf = hopOf

	// Free-list and dead-tile grid over the pool.
	if cap(hs.free) < len(pool) {
		hs.free = make([]circuit.Qubit, len(pool))
	}
	free := hs.free[:len(pool)]
	copy(free, pool)
	nFree := len(free)
	freePos := resizeInt32s(&hs.freePos, nq, -1)
	for i, q := range free {
		freePos[q] = int32(i)
	}
	tileQ := resizeInt32s(&hs.tileQ, pl.W*pl.H, 0)
	for _, q := range pool {
		pt := pl.At(int(q))
		tileQ[pt.Y*pl.W+pt.X] = int32(q) + 1
	}

	take := func(q circuit.Qubit) {
		used[q] = true
		pt := pl.At(int(q))
		tileQ[pt.Y*pl.W+pt.X] = 0
		i := freePos[q]
		last := free[nFree-1]
		free[i] = last
		freePos[last] = i
		freePos[q] = -1
		nFree--
	}

	srcTile := func(w bravyi.Wire) layout.Point {
		return pl.At(int(f.Modules[w.FromModule].Out[w.FromPort]))
	}
	dstTile := func(w bravyi.Wire) layout.Point {
		return pl.At(int(f.Modules[w.ToModule].Raw[w.ToSlot]))
	}

	pickRandom := func() circuit.Qubit {
		// Historical rejection sampling first (stream compatibility),
		// bounded; then one uniform O(1) draw from the free-list.
		tries := pickRandomTries
		if tries > 4*len(pool) {
			tries = 4 * len(pool)
		}
		for t := 0; t < tries; t++ {
			q := pool[rng.Intn(len(pool))]
			if !used[q] {
				take(q)
				return q
			}
		}
		if nFree == 0 {
			return circuit.NoQubit
		}
		q := free[rng.Intn(nFree)]
		take(q)
		return q
	}
	pickNearest := func(target layout.Point) circuit.Qubit {
		best, bestD := circuit.NoQubit, 1<<30
		// Expanding Chebyshev rings: a ring-c tile is at Manhattan
		// distance >= c, so once c exceeds the best distance no closer
		// (or equal-distance, lower-id) qubit can appear. Ties prefer the
		// lowest qubit id, matching the historical ascending-pool scan.
		maxC := pl.W + pl.H
		for c := 0; c <= maxC && c <= bestD; c++ {
			x0, x1 := target.X-c, target.X+c
			y0, y1 := target.Y-c, target.Y+c
			visit := func(x, y int) {
				if x < 0 || x >= pl.W || y < 0 || y >= pl.H {
					return
				}
				v := tileQ[y*pl.W+x]
				if v == 0 {
					return
				}
				q := circuit.Qubit(v - 1)
				d := layout.Manhattan(layout.Point{X: x, Y: y}, target)
				if d < bestD || (d == bestD && q < best) {
					best, bestD = q, d
				}
			}
			if c == 0 {
				visit(target.X, target.Y)
				continue
			}
			for x := x0; x <= x1; x++ {
				visit(x, y0)
				visit(x, y1)
			}
			for y := y0 + 1; y < y1; y++ {
				visit(x0, y)
				visit(x1, y)
			}
		}
		if best != circuit.NoQubit {
			take(best)
		}
		return best
	}

	count := 0
	for wi, w := range wires {
		var hq circuit.Qubit = circuit.NoQubit
		switch opt.Hops {
		case RandomHop, AnnealedRandomHop:
			hq = pickRandom()
		case AnnealedMidpointHop:
			s, d := srcTile(w), dstTile(w)
			hq = pickNearest(layout.Point{X: (s.X + d.X) / 2, Y: (s.Y + d.Y) / 2})
		}
		if hq == circuit.NoQubit {
			continue // pool exhausted: route this wire directly
		}
		hopOf[wi] = hq
		count++
	}

	if opt.Hops == AnnealedRandomHop || opt.Hops == AnnealedMidpointHop {
		hs.anneal(f, pl, wires, pool, used, opt.HopIters, rng)
	}
	hops := make(map[int]circuit.Qubit, count)
	for wi, q := range hopOf {
		if q != circuit.NoQubit {
			hops[wi] = q
		}
	}
	if err := bravyi.ApplyHops(f, hops); err != nil {
		return 0, err
	}
	return len(hops), nil
}

// anneal locally improves hop assignments: each pass tries to move every
// hop to a nearby unused dead qubit and keeps the move when the
// force-directed objective — segment conflicts between permutation legs
// (the crossing heuristic) plus a length term — decreases.
//
// The historical scoring accumulated a fixed +4 per conflicting segment
// onto a per-leg length term, so a leg's score is fully determined by
// (its Manhattan length, its conflict count): the float fold can be
// replayed bit-exactly from the count alone, and counts are free to be
// gathered in any order and repaired incrementally. Each pass therefore
// draws every wire's candidate qubits upfront (the exact historical rng
// sequence), counts all wires' conflicts concurrently against the
// pass-start segment snapshot, then resolves acceptances serially in
// ascending wire order, repairing each wire's counts by the segments
// earlier acceptances actually moved. The accept sequence — and so the
// final hop assignment — is byte-identical to the serial annealer no
// matter how many workers counted.
func (hs *hopScratch) anneal(f *bravyi.Factory, pl *layout.Placement, wires []bravyi.Wire,
	pool []circuit.Qubit, used []bool, iters int, rng *rand.Rand) {

	hopOf := hs.hopOf
	hopIdxs := hs.hopIdxs[:0]
	for wi, q := range hopOf {
		if q != circuit.NoQubit {
			hopIdxs = append(hopIdxs, wi)
		}
	}
	hs.hopIdxs = hopIdxs
	if len(hopIdxs) == 0 {
		return
	}

	// Wire endpoint tiles and the fixed-slot segment table: two slots
	// per wire, the second a never-matching sentinel for direct wires.
	nw := len(wires)
	if cap(hs.srcT) < nw {
		hs.srcT = make([]layout.Point, nw)
		hs.dstT = make([]layout.Point, nw)
	}
	srcT, dstT := hs.srcT[:nw], hs.dstT[:nw]
	for wi, w := range wires {
		srcT[wi] = pl.At(int(f.Modules[w.FromModule].Out[w.FromPort]))
		dstT[wi] = pl.At(int(f.Modules[w.ToModule].Raw[w.ToSlot]))
	}
	nSegs := 2 * nw
	if cap(hs.segs) < nSegs {
		hs.segs = make([]layout.Segment, nSegs)
		hs.segBox = make([]box, nSegs)
	}
	segs, segBox := hs.segs[:nSegs], hs.segBox[:nSegs]
	// deadSeg sits off-canvas: its box rejects against every real leg
	// and its value equals no real segment, so dead slots need no
	// liveness check in the scan.
	deadSeg := layout.Segment{A: layout.Point{X: -9, Y: -9}, B: layout.Point{X: -9, Y: -9}}
	deadBox := boxOf(deadSeg)
	setSeg := func(si int, s layout.Segment) {
		segs[si] = s
		segBox[si] = boxOf(s)
	}
	for wi := range wires {
		if q := hopOf[wi]; q != circuit.NoQubit {
			hop := pl.At(int(q))
			setSeg(2*wi, layout.Segment{A: srcT[wi], B: hop})
			setSeg(2*wi+1, layout.Segment{A: hop, B: dstT[wi]})
		} else {
			setSeg(2*wi, layout.Segment{A: srcT[wi], B: dstT[wi]})
			segs[2*wi+1], segBox[2*wi+1] = deadSeg, deadBox
		}
	}

	// conflicts counts the segments crossing leg l: a linear scan over
	// the slot table with an inline bounding-box reject (a conflict
	// implies overlapping boxes, so the reject drops only never-counted
	// pairs) and the historical skip of value-identical segments.
	conflicts := func(l layout.Segment, lb box) int32 {
		var c int32
		for si := 0; si < nSegs; si++ {
			b := segBox[si]
			if b.minX > lb.maxX || b.maxX < lb.minX || b.minY > lb.maxY || b.maxY < lb.minY {
				continue
			}
			o := segs[si]
			if o == l {
				continue
			}
			if layout.SegmentsConflictTight(l, o) {
				c++
			}
		}
		return c
	}
	legsOf := func(wi int, hop layout.Point) (l0, l1 layout.Segment, b0, b1 box) {
		l0 = layout.Segment{A: srcT[wi], B: hop}
		l1 = layout.Segment{A: hop, B: dstT[wi]}
		return l0, l1, boxOf(l0), boxOf(l1)
	}
	// replay folds a wire's score exactly as the serial annealer did:
	// leg length, then one +4 per conflict, per leg in order. Repeated
	// identical additions depend only on their count, so counts gathered
	// out of order (or repaired) reproduce the historical bits.
	replay := func(wi int, hop layout.Point, c0, c1 int32) float64 {
		var s float64
		s += 0.2 * float64(layout.Manhattan(srcT[wi], hop))
		for ; c0 > 0; c0-- {
			s += 4
		}
		s += 0.2 * float64(layout.Manhattan(hop, dstT[wi]))
		for ; c1 > 0; c1-- {
			s += 4
		}
		return s
	}

	const nCand = 6
	const nOpt = nCand + 1 // option 0 is the current hop
	nh := len(hopIdxs)
	if cap(hs.candQ) < nh*nCand {
		hs.candQ = make([]circuit.Qubit, nh*nCand)
		hs.cnt = make([]int32, nh*nOpt*2)
	}
	candQ, cnt := hs.candQ[:nh*nCand], hs.cnt[:nh*nOpt*2]
	changes := hs.changes[:0]

	// Live per-slot conflict counts, seeded with one quadratic pass and
	// repaired on every accepted move: a wire's current score replays
	// from them for free, so passes only ever scan candidate legs.
	curCnt := resizeInt32s(&hs.curCnt, nSegs, 0)
	for si := 0; si < nSegs; si++ {
		curCnt[si] = conflicts(segs[si], segBox[si])
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > nh {
		workers = nh
	}
	if workers < 1 {
		workers = 1
	}

	// lowerBound is the score a hop tile cannot beat: conflicts only add
	// a nonnegative +4 each and rounded float addition is monotone, so a
	// wire's score through hop is always >= its pure length fold. A
	// candidate whose bound already meets the strict < acceptance test
	// can be discarded without ever counting its conflicts — in midpoint
	// mode most random candidates lose on length alone.
	lowerBound := func(wi int, hop layout.Point) float64 {
		return 0.2*float64(layout.Manhattan(srcT[wi], hop)) +
			0.2*float64(layout.Manhattan(hop, dstT[wi]))
	}
	// candScore counts both legs in one walk over the slot table and
	// abandons the candidate as soon as the partial fold already meets
	// best: counts only grow as the walk proceeds and the fold is
	// monotone in both counts, so a crossed threshold is final. A
	// survivor's returned score is the full walk's exact fold.
	candScore := func(wi int, hop layout.Point, best float64) (c0, c1 int32, ok bool) {
		l0, l1, b0, b1 := legsOf(wi, hop)
		ub := b0.add(l1.B)
		for si := 0; si < nSegs; si++ {
			bt := segBox[si]
			if bt.minX > ub.maxX || bt.maxX < ub.minX || bt.minY > ub.maxY || bt.maxY < ub.minY {
				continue
			}
			o := segs[si]
			hit := false
			if !(bt.minX > b0.maxX || bt.maxX < b0.minX || bt.minY > b0.maxY || bt.maxY < b0.minY) &&
				o != l0 && layout.SegmentsConflictTight(l0, o) {
				c0++
				hit = true
			}
			if !(bt.minX > b1.maxX || bt.maxX < b1.minX || bt.minY > b1.maxY || bt.maxY < b1.minY) &&
				o != l1 && layout.SegmentsConflictTight(l1, o) {
				c1++
				hit = true
			}
			if hit && replay(wi, hop, c0, c1) >= best {
				return 0, 0, false
			}
		}
		return c0, c1, replay(wi, hop, c0, c1) < best
	}

	for pass := 0; pass < iters; pass++ {
		improved := false
		// Draw every candidate upfront: the rng sequence is exactly the
		// historical per-wire draw order, independent of scoring.
		for i := range hopIdxs {
			for c := 0; c < nCand; c++ {
				candQ[i*nCand+c] = pool[rng.Intn(len(pool))]
			}
		}
		// Speculative parallel counting against the pass-start snapshot:
		// every wire's current-hop counts, plus candidate counts for the
		// candidates that stand a chance against the wire's snapshot
		// score (-1 marks the rest; resolve counts them live in the rare
		// case an earlier acceptance makes them viable). A single-worker
		// "pool" gains nothing over counting at resolve time, so the
		// phase only runs when real parallelism is available.
		if workers > 1 {
			var nextIdx atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := int(nextIdx.Add(1)) - 1
						if i >= nh {
							return
						}
						wi := hopIdxs[i]
						hop := pl.At(int(hopOf[wi]))
						snapCur := replay(wi, hop, curCnt[2*wi], curCnt[2*wi+1])
						for c := 0; c < nCand; c++ {
							q := candQ[i*nCand+c]
							cp := pl.At(int(q))
							if used[q] || lowerBound(wi, cp) >= snapCur {
								cnt[(i*nOpt+c+1)*2] = -1
								continue
							}
							if c0, c1, ok := candScore(wi, cp, snapCur); ok {
								cnt[(i*nOpt+c+1)*2] = c0
								cnt[(i*nOpt+c+1)*2+1] = c1
							} else {
								cnt[(i*nOpt+c+1)*2] = -1
							}
						}
					}
				}()
			}
			wg.Wait()
		}
		// Serial deterministic resolve in ascending wire order. Snapshot
		// counts are repaired by the slots earlier acceptances changed
		// (or dropped outright once the change list outgrows the slot
		// table); counts the speculation skipped are taken live against
		// the already-updated table. Either way the counts are exact and
		// the scores replay the serial annealer's bits.
		changes = changes[:0]
		for i, wi := range hopIdxs {
			useSnap := workers > 1 && 2*len(changes) <= nSegs
			adjust := func(l layout.Segment, lb box, c int32) int32 {
				for k := range changes {
					ch := &changes[k]
					if ch.old != l && ch.oldBox.overlaps(lb) && layout.SegmentsConflictTight(l, ch.old) {
						c--
					}
					if ch.new != l && ch.newBox.overlaps(lb) && layout.SegmentsConflictTight(l, ch.new) {
						c++
					}
				}
				return c
			}
			cur := hopOf[wi]
			bestScore := replay(wi, pl.At(int(cur)), curCnt[2*wi], curCnt[2*wi+1])
			var best circuit.Qubit = circuit.NoQubit
			for c := 0; c < nCand; c++ {
				q := candQ[i*nCand+c]
				if used[q] {
					continue
				}
				cp := pl.At(int(q))
				if lowerBound(wi, cp) >= bestScore {
					continue
				}
				if pc := cnt[(i*nOpt+c+1)*2]; useSnap && pc >= 0 {
					l0, l1, b0, b1 := legsOf(wi, cp)
					s := replay(wi, cp, adjust(l0, b0, pc), adjust(l1, b1, cnt[(i*nOpt+c+1)*2+1]))
					if s < bestScore {
						best, bestScore = q, s
					}
				} else if c0, c1, ok := candScore(wi, cp, bestScore); ok {
					best, bestScore = q, replay(wi, cp, c0, c1)
				}
			}
			if best != circuit.NoQubit {
				used[cur] = false
				used[best] = true
				hopOf[wi] = best
				hop := pl.At(int(best))
				l0, l1, b0, b1 := legsOf(wi, hop)
				o0, o1 := segs[2*wi], segs[2*wi+1]
				ob0, ob1 := segBox[2*wi], segBox[2*wi+1]
				if workers > 1 {
					changes = append(changes,
						segChange{old: o0, new: l0, oldBox: ob0, newBox: b0},
						segChange{old: o1, new: l1, oldBox: ob1, newBox: b1})
				}
				// Repair every other slot's live count for the two
				// outgoing and two incoming legs in a single walk, then
				// rescan the moved slots against the updated table.
				for t := 0; t < nSegs; t++ {
					if t == 2*wi || t == 2*wi+1 {
						continue
					}
					lt, bt := segs[t], segBox[t]
					d := curCnt[t]
					if o0 != lt && ob0.overlaps(bt) && layout.SegmentsConflictTight(lt, o0) {
						d--
					}
					if o1 != lt && ob1.overlaps(bt) && layout.SegmentsConflictTight(lt, o1) {
						d--
					}
					if l0 != lt && b0.overlaps(bt) && layout.SegmentsConflictTight(lt, l0) {
						d++
					}
					if l1 != lt && b1.overlaps(bt) && layout.SegmentsConflictTight(lt, l1) {
						d++
					}
					curCnt[t] = d
				}
				segs[2*wi], segBox[2*wi] = l0, b0
				segs[2*wi+1], segBox[2*wi+1] = l1, b1
				curCnt[2*wi] = conflicts(l0, b0)
				curCnt[2*wi+1] = conflicts(l1, b1)
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	hs.changes = changes[:0]
}

// resizeBools resets *s to n false entries, reusing capacity.
func resizeBools(s *[]bool, n int) []bool {
	if cap(*s) < n {
		*s = make([]bool, n)
	} else {
		*s = (*s)[:n]
		for i := range *s {
			(*s)[i] = false
		}
	}
	return *s
}

// resizeInt32s resets *s to n copies of fill, reusing capacity.
func resizeInt32s(s *[]int32, n int, fill int32) []int32 {
	if cap(*s) < n {
		*s = make([]int32, n)
	} else {
		*s = (*s)[:n]
	}
	for i := range *s {
		(*s)[i] = fill
	}
	return *s
}

// PermutationLatency extracts the permutation-phase window of round r
// from per-gate timings (Fig. 9d's metric): the cycles between the first
// and last permutation move of that round.
func PermutationLatency(f *bravyi.Factory, start, end []int, round int) (int, error) {
	if round < 2 || round > len(f.Rounds) {
		return 0, fmt.Errorf("stitch: round %d has no permutation phase", round)
	}
	r := f.Rounds[round-1]
	lo, hi := -1, 0
	for gi := r.PermStart; gi < r.PermEnd; gi++ {
		if start[gi] < 0 {
			continue
		}
		if lo == -1 || start[gi] < lo {
			lo = start[gi]
		}
		if end[gi] > hi {
			hi = end[gi]
		}
	}
	if lo == -1 {
		return 0, nil
	}
	return hi - lo, nil
}
