package experiments

import (
	"context"
	"fmt"

	"magicstate/internal/core"
	"magicstate/internal/sweep"
)

// Table1Cell is one entry of Table I: the quantum volume a procedure
// needs for a factory of the given level and capacity. Zero Volume means
// the cell is empty in the paper (e.g. HS for single-level factories).
type Table1Cell struct {
	Procedure string
	Level     int
	Capacity  int
	Volume    float64
}

// Table1Result reproduces Table I. Procedures appear in the paper's row
// order: Random, Line(NR), Line(R), FD, GP, HS, Critical.
type Table1Result struct {
	Level1Capacities []int
	Level2Capacities []int
	Cells            []Table1Cell
}

// Procedures is Table I's row order.
var Procedures = []string{"Random", "Line(NR)", "Line(R)", "FD", "GP", "HS", "Critical"}

// Cell looks up a cell by procedure, level and capacity; ok is false for
// cells the table leaves empty.
func (t *Table1Result) Cell(proc string, level, capacity int) (Table1Cell, bool) {
	for _, c := range t.Cells {
		if c.Procedure == proc && c.Level == level && c.Capacity == capacity {
			return c, true
		}
	}
	return Table1Cell{}, false
}

// table1L1Strategies are the single-level pipeline runs per capacity (no
// reuse dimension: one round has nothing to reuse across).
var table1L1Strategies = []core.Strategy{
	core.StrategyRandom, core.StrategyLinear,
	core.StrategyForceDirected, core.StrategyGraphPartition,
}

// table1L2Strategies are the two-level pipeline runs per capacity; each
// is evaluated under both reuse policies.
var table1L2Strategies = []core.Strategy{
	core.StrategyLinear, core.StrategyForceDirected,
	core.StrategyGraphPartition, core.StrategyStitch,
}

// Table1 regenerates Table I for the given capacity sets (the paper uses
// level 1 K in {2,4,8,10,24} and level 2 K in {4,16,36,64,100}). The
// whole table is one point grid on the sweep engine — level-1 capacities
// contribute a run per strategy, level-2 capacities a run per (strategy,
// reuse policy) — and the cells assemble from the ordered reports.
func Table1(level1, level2 []int, seed int64) (*Table1Result, error) {
	type point struct {
		capacity, level int
		strategy        core.Strategy
		reuse           bool
	}
	var pts []point
	for _, c := range level1 {
		for _, s := range table1L1Strategies {
			pts = append(pts, point{capacity: c, level: 1, strategy: s})
		}
	}
	for _, c := range level2 {
		for _, s := range table1L2Strategies {
			pts = append(pts, point{capacity: c, level: 2, strategy: s, reuse: false})
			pts = append(pts, point{capacity: c, level: 2, strategy: s, reuse: true})
		}
	}
	reps, err := sweep.Map(context.Background(), Engine(), pts, func(_ int, pt point) (*core.Report, error) {
		rep, err := runCapacity(pt.capacity, pt.level, pt.strategy, pt.reuse, seed)
		if err != nil {
			return nil, fmt.Errorf("table1 cap %d L%d %v: %w", pt.capacity, pt.level, pt.strategy, err)
		}
		return rep, nil
	})
	if err != nil {
		return nil, err
	}

	res := &Table1Result{Level1Capacities: level1, Level2Capacities: level2}
	add := func(proc string, level, cap int, vol float64) {
		res.Cells = append(res.Cells, Table1Cell{Procedure: proc, Level: level, Capacity: cap, Volume: vol})
	}
	i := 0
	for _, c := range level1 {
		rnd, line, fd, gp := reps[i], reps[i+1], reps[i+2], reps[i+3]
		i += 4
		add("Random", 1, c, rnd.Volume)
		// Single-level factories have no rounds to reuse across; both
		// Line rows coincide, as their Table I values nearly do.
		add("Line(NR)", 1, c, line.Volume)
		add("Line(R)", 1, c, line.Volume)
		add("FD", 1, c, fd.Volume)
		add("GP", 1, c, gp.Volume)
		add("Critical", 1, c, line.CriticalVolume)
	}
	for _, c := range level2 {
		lineNR, lineR := reps[i], reps[i+1]
		fd, _ := pickReuse(reps[i+2], reps[i+3])
		gp, _ := pickReuse(reps[i+4], reps[i+5])
		hs, _ := pickReuse(reps[i+6], reps[i+7])
		i += 8
		add("Line(NR)", 2, c, lineNR.Volume)
		add("Line(R)", 2, c, lineR.Volume)
		add("FD", 2, c, fd.Volume)
		add("GP", 2, c, gp.Volume)
		add("HS", 2, c, hs.Volume)
		// Critical volume uses the reuse footprint (the smallest machine
		// that can run the factory) times the dependency bound.
		add("Critical", 2, c, float64(lineR.CriticalLatency)*float64(lineR.Area))
	}
	return res, nil
}

// HeadlineImprovement returns the Line(NR) / HS volume ratio at the
// largest level-2 capacity — the paper's 5.64x headline.
func (t *Table1Result) HeadlineImprovement() float64 {
	if len(t.Level2Capacities) == 0 {
		return 0
	}
	cap := t.Level2Capacities[len(t.Level2Capacities)-1]
	line, ok1 := t.Cell("Line(NR)", 2, cap)
	hs, ok2 := t.Cell("HS", 2, cap)
	if !ok1 || !ok2 || hs.Volume == 0 {
		return 0
	}
	return line.Volume / hs.Volume
}
