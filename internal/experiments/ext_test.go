package experiments

import (
	"strings"
	"testing"
)

func TestStylesExperiment(t *testing.T) {
	rows, err := StylesExperiment(2, 1, []int{5, 10, 20}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 3 distances x 3 styles", len(rows))
	}
	byKey := func(style string, d int) *StyleRow {
		for i := range rows {
			if rows[i].Style == style && rows[i].Distance == d {
				return &rows[i]
			}
		}
		t.Fatalf("missing row %s d=%d", style, d)
		return nil
	}
	// Braiding is distance-insensitive.
	if a, b := byKey("braiding", 5).Latency, byKey("braiding", 20).Latency; a != b {
		t.Errorf("braiding latency varies with distance: %d vs %d", a, b)
	}
	// Surgery latency grows with distance.
	if a, b := byKey("lattice-surgery", 5).Latency, byKey("lattice-surgery", 20).Latency; b <= a {
		t.Errorf("surgery latency did not grow: d=5 %d, d=20 %d", a, b)
	}
	// At small d, surgery beats braiding; at large d, braiding wins —
	// the crossover the §IX study is after.
	if byKey("lattice-surgery", 5).Latency >= byKey("braiding", 5).Latency {
		t.Error("surgery not faster than braiding at d=5")
	}
	if byKey("lattice-surgery", 20).Latency <= byKey("braiding", 20).Latency {
		t.Error("surgery not slower than braiding at d=20")
	}
	var sb strings.Builder
	WriteStyles(&sb, 2, 1, rows)
	if !strings.Contains(sb.String(), "lattice-surgery") {
		t.Error("rendered table missing style row")
	}
}

func TestStylesExperimentRejectsBadDistance(t *testing.T) {
	if _, err := StylesExperiment(2, 1, []int{0}, 1); err == nil {
		t.Error("d=0 accepted")
	}
}

func TestAreaExpansion(t *testing.T) {
	rows, err := AreaExpansion(2, 1, []float64{1, 1.5, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for i, r := range rows {
		if r.Latency <= 0 || r.HullArea <= 0 {
			t.Errorf("row %d: degenerate latency %d / hull %d", i, r.Latency, r.HullArea)
		}
		if i > 0 && r.W < rows[i-1].W {
			t.Errorf("grid shrank between factors: %d < %d", r.W, rows[i-1].W)
		}
	}
	var sb strings.Builder
	WriteAreaExpansion(&sb, 2, 1, rows)
	if !strings.Contains(sb.String(), "hull volume") {
		t.Error("rendered table missing header")
	}
}

func TestAreaExpansionRejectsShrinking(t *testing.T) {
	if _, err := AreaExpansion(2, 1, []float64{0.5}, 1); err == nil {
		t.Error("factor < 1 accepted")
	}
}

func TestProtocolComparisonTable(t *testing.T) {
	rows := ProtocolComparison(1e-3, 1e-10)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	ok := 0
	for _, r := range rows {
		if r.Err == "" {
			ok++
			if r.OutputError > 1e-10 {
				t.Errorf("%s: output error %g above target", r.Name, r.OutputError)
			}
		}
	}
	if ok == 0 {
		t.Error("no protocol met the target")
	}
	var sb strings.Builder
	WriteProtocols(&sb, 1e-3, 1e-10, rows)
	if !strings.Contains(sb.String(), "BH 14-to-2") {
		t.Error("rendered table missing Bravyi-Haah row")
	}
}

func TestYieldExperiment(t *testing.T) {
	rows, err := Yield([]int{2, 4}, 2, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if diff := r.AnalyticFullYield - r.SampledFullYield; diff > 0.05 || diff < -0.05 {
			t.Errorf("K=%d: sampled %g far from analytic %g", r.K, r.SampledFullYield, r.AnalyticFullYield)
		}
		if r.ReserveFullYield < r.SampledFullYield-0.03 {
			t.Errorf("K=%d: reserve hurt yield: %g < %g", r.K, r.ReserveFullYield, r.SampledFullYield)
		}
		if r.CheckpointMeanOutputs > r.MeanOutputs+0.2 {
			t.Errorf("K=%d: checkpoints increased mean outputs", r.K)
		}
	}
	var sb strings.Builder
	WriteYield(&sb, 2, 2000, rows)
	if !strings.Contains(sb.String(), "analytic full") {
		t.Error("rendered table missing header")
	}
}

func TestStitchGeneralization(t *testing.T) {
	rows, err := StitchGeneralization(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 workloads", len(rows))
	}
	byName := map[string]StitchGenRow{}
	for _, r := range rows {
		if r.GlobalLatency <= 0 || r.StitchedLatency <= 0 {
			t.Errorf("%s: degenerate latencies %d/%d", r.Workload, r.GlobalLatency, r.StitchedLatency)
		}
		byName[r.Workload] = r
	}
	// Shape assertions for the §IX study: stitching wins clearly on the
	// sequential all-pairs QFT, helps on the phase-shuffled hierarchy,
	// and costs at most noise on workloads a global embedding already
	// handles.
	if byName["qft-16"].Gain < 1.05 {
		t.Errorf("qft gain = %.2f, want > 1.05", byName["qft-16"].Gain)
	}
	if byName["hier-shuffled"].Gain < 0.98 {
		t.Errorf("shuffled gain = %.2f, want >= ~1", byName["hier-shuffled"].Gain)
	}
	if byName["hier-static"].Gain < 0.9 || byName["adder-10bit"].Gain < 0.9 {
		t.Errorf("static controls degraded: static %.2f adder %.2f",
			byName["hier-static"].Gain, byName["adder-10bit"].Gain)
	}
	var sb strings.Builder
	WriteStitchGen(&sb, rows)
	if !strings.Contains(sb.String(), "hier-shuffled") {
		t.Error("rendered table missing workload")
	}
}

func TestSchedReorder(t *testing.T) {
	rows, err := SchedReorder(2, []int{4, 16}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.ProgramLatency <= 0 || r.SiftedLatency <= 0 {
			t.Errorf("cap %d: degenerate latencies", r.Capacity)
		}
		// §V.A: barriers bound mobility — sifting must not change the
		// dependency bound by more than a few percent in either
		// direction, and realized latency stays in the same regime.
		db := float64(r.CriticalSifted) / float64(r.CriticalProgram)
		if db < 0.9 || db > 1.1 {
			t.Errorf("cap %d: sifting moved the bound by %0.2fx", r.Capacity, db)
		}
		dl := float64(r.SiftedLatency) / float64(r.ProgramLatency)
		if dl < 0.5 || dl > 2 {
			t.Errorf("cap %d: sifting changed latency by %0.2fx", r.Capacity, dl)
		}
	}
	var sb strings.Builder
	WriteSchedReorder(&sb, 2, rows)
	if !strings.Contains(sb.String(), "sifted") {
		t.Error("rendered table missing header")
	}
}

func TestThreeLevel(t *testing.T) {
	rows, err := ThreeLevel(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 strategies", len(rows))
	}
	vol := map[string]float64{}
	for _, r := range rows {
		if r.Latency <= 0 || r.Volume <= 0 {
			t.Errorf("%s: degenerate row %+v", r.Strategy, r)
		}
		if r.Latency < r.Critical {
			t.Errorf("%s: latency %d below bound %d", r.Strategy, r.Latency, r.Critical)
		}
		vol[r.Strategy] = r.Volume
	}
	// The paper's ordering must sharpen with depth: HS < GP < Line.
	if !(vol["HS"] < vol["GP"] && vol["GP"] < vol["Line"]) {
		t.Errorf("three-level ordering broken: HS %.3g, GP %.3g, Line %.3g",
			vol["HS"], vol["GP"], vol["Line"])
	}
	var sb strings.Builder
	WriteThreeLevel(&sb, 2, rows)
	if !strings.Contains(sb.String(), "volume ratio") {
		t.Error("rendered table missing ratio line")
	}
}

func TestBK15Mapping(t *testing.T) {
	if err := bk15GateCheck(); err != nil {
		t.Fatal(err)
	}
	rows, err := BK15Mapping(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 strategies", len(rows))
	}
	vol := map[string]float64{}
	for _, r := range rows {
		if r.Latency < r.Critical {
			t.Errorf("%s: latency %d below bound %d", r.Strategy, r.Latency, r.Critical)
		}
		vol[r.Strategy] = r.Volume
	}
	// The optimizing mappers must beat random placement on this protocol
	// too — the robustness claim of the experiment.
	if vol["FD"] > vol["Random"] || vol["GP"] > vol["Random"] {
		t.Errorf("mappers lost to random: FD %.3g GP %.3g Random %.3g",
			vol["FD"], vol["GP"], vol["Random"])
	}
	var sb strings.Builder
	WriteBK15(&sb, rows)
	if !strings.Contains(sb.String(), "15-to-1") {
		t.Error("rendered table missing title")
	}
}

func TestStylesByStrategy(t *testing.T) {
	rows, err := StylesByStrategy(2, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 3 strategies x 3 styles", len(rows))
	}
	cell := func(strat, style string) StyleStrategyRow {
		for _, r := range rows {
			if r.Strategy == strat && r.Style == style {
				return r
			}
		}
		t.Fatalf("missing cell %s/%s", strat, style)
		return StyleStrategyRow{}
	}
	// The §IX hypothesis: teleportation relieves congestion, so its
	// advantage over full-hold styles is largest on the congested linear
	// mapping and smaller (relatively) on the stitched mapping.
	lineGain := float64(cell("Line", "lattice-surgery").Latency) /
		float64(cell("Line", "teleportation").Latency)
	hsGain := float64(cell("HS", "lattice-surgery").Latency) /
		float64(cell("HS", "teleportation").Latency)
	if lineGain < hsGain {
		t.Errorf("teleportation gain did not shrink under stitching: Line %.2f, HS %.2f",
			lineGain, hsGain)
	}
	// Every cell simulated.
	for _, r := range rows {
		if r.Latency <= 0 {
			t.Errorf("%s/%s: zero latency", r.Strategy, r.Style)
		}
	}
	var sb strings.Builder
	WriteStylesByStrategy(&sb, 2, 7, rows)
	if !strings.Contains(sb.String(), "strategy\\style") {
		t.Error("rendered matrix missing header")
	}
}

func TestStylesByStrategyRejectsBadDistance(t *testing.T) {
	if _, err := StylesByStrategy(2, 0, 1); err == nil {
		t.Error("d=0 accepted")
	}
}
