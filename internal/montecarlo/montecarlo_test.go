package montecarlo

import (
	"math"
	"testing"
	"testing/quick"

	"magicstate/internal/bravyi"
	"magicstate/internal/resource"
)

func params(k, l int) bravyi.Params {
	return bravyi.Params{K: k, Levels: l, Barriers: true}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{Params: params(0, 1)}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Run(Config{Params: params(2, 1), Trials: -5}); err == nil {
		t.Error("negative trials accepted")
	}
	if _, err := Run(Config{Params: params(2, 2), Reserve: []int{1}}); err == nil {
		t.Error("reserve round mismatch accepted")
	}
	if _, err := Run(Config{Params: params(2, 1), Reserve: []int{-1}}); err == nil {
		t.Error("negative reserve accepted")
	}
}

func TestRunPerfectFidelityYieldsFullCapacity(t *testing.T) {
	cfg := Config{
		Params: params(2, 2),
		Errors: resource.ErrorModel{PhysError: 1e-9, InjectError: 1e-9, Threshold: 1e-2},
		Trials: 200,
		Seed:   1,
	}
	sum, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	capn := cfg.Params.Capacity()
	if sum.FullYieldRate != 1 {
		t.Errorf("FullYieldRate = %g, want 1", sum.FullYieldRate)
	}
	if sum.MeanOutputs != float64(capn) {
		t.Errorf("MeanOutputs = %g, want %d", sum.MeanOutputs, capn)
	}
	if sum.MeanFailures != 0 {
		t.Errorf("MeanFailures = %g, want 0", sum.MeanFailures)
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	cfg := Config{Params: params(2, 2), Trials: 500, Seed: 42}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanOutputs != b.MeanOutputs || a.FullYieldRate != b.FullYieldRate {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestRunConvergesToAnalyticFullYield(t *testing.T) {
	cfg := Config{Params: params(2, 2), Trials: 20000, Seed: 7}
	sum, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := AnalyticFullYield(cfg.Params, resource.DefaultError())
	if math.Abs(sum.FullYieldRate-want) > 0.02 {
		t.Errorf("FullYieldRate = %g, analytic %g", sum.FullYieldRate, want)
	}
}

func TestAnalyticFullYieldMatchesResourceModel(t *testing.T) {
	for _, p := range []bravyi.Params{params(2, 1), params(2, 2), params(4, 2)} {
		em := resource.DefaultError()
		yield := AnalyticFullYield(p, em)
		runs := resource.ExpectedRunsPerSuccess(p, em)
		if yield <= 0 {
			t.Fatalf("k=%d L=%d: zero analytic yield", p.K, p.Levels)
		}
		if got := 1 / yield; math.Abs(got-runs)/runs > 1e-9 {
			t.Errorf("k=%d L=%d: 1/yield = %g, ExpectedRunsPerSuccess = %g", p.K, p.Levels, got, runs)
		}
	}
}

func TestCheckpointsNeverIncreaseYield(t *testing.T) {
	base := Config{Params: params(2, 2), Trials: 5000, Seed: 11}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	ck := base
	ck.Checkpoints = true
	checked, err := Run(ck)
	if err != nil {
		t.Fatal(err)
	}
	if checked.MeanOutputs > plain.MeanOutputs+0.1 {
		t.Errorf("checkpoints increased mean outputs: %g > %g", checked.MeanOutputs, plain.MeanOutputs)
	}
	if checked.MeanGroupsDiscarded == 0 {
		t.Error("checkpoints never discarded a group at this error rate")
	}
}

func TestReserveImprovesFullYield(t *testing.T) {
	// Single-level, single-module factory at a lossy working point: a
	// 2-module reserve triples the chances of landing one good module.
	errs := resource.ErrorModel{PhysError: 1e-3, InjectError: 2e-2, Threshold: 1e-2}
	base := Config{Params: params(2, 1), Errors: errs, Trials: 8000, Seed: 3}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withReserve := base
	withReserve.Reserve = []int{2}
	boosted, err := Run(withReserve)
	if err != nil {
		t.Fatal(err)
	}
	if boosted.FullYieldRate <= plain.FullYieldRate {
		t.Errorf("reserve did not improve yield: %g <= %g", boosted.FullYieldRate, plain.FullYieldRate)
	}
	ps := 1 - float64(8+3*2)*errs.InjectError
	want := 1 - math.Pow(1-ps, 3)
	if math.Abs(boosted.FullYieldRate-want) > 0.03 {
		t.Errorf("reserved FullYieldRate = %g, analytic %g", boosted.FullYieldRate, want)
	}
}

func TestHistogramAccounting(t *testing.T) {
	cfg := Config{Params: params(2, 2), Trials: 3000, Seed: 5}
	sum, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for n, c := range sum.Outputs {
		total += c
		if c > 0 && n%cfg.Params.K != 0 {
			t.Errorf("delivered %d states, not a multiple of K=%d", n, cfg.Params.K)
		}
	}
	if total != cfg.Trials {
		t.Errorf("histogram sums to %d, want %d trials", total, cfg.Trials)
	}
}

func TestPartialYieldAppearsAtLossyWorkingPoints(t *testing.T) {
	errs := resource.ErrorModel{PhysError: 1e-3, InjectError: 1.5e-2, Threshold: 1e-2}
	cfg := Config{Params: params(2, 2), Errors: errs, Trials: 5000, Seed: 9}
	sum, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	partial := 0
	capn := cfg.Params.Capacity()
	for n, c := range sum.Outputs {
		if n > 0 && n < capn {
			partial += c
		}
	}
	if partial == 0 {
		t.Error("no partial-yield runs at a lossy working point")
	}
	if sum.ExpectedRawPerState <= float64(cfg.Params.Inputs())/float64(capn) {
		t.Errorf("ExpectedRawPerState = %g does not exceed the lossless floor", sum.ExpectedRawPerState)
	}
}

func TestZeroYieldDominatesAtExtremeError(t *testing.T) {
	errs := resource.ErrorModel{PhysError: 1e-3, InjectError: 0.08, Threshold: 1e-2}
	cfg := Config{Params: params(2, 2), Errors: errs, Trials: 500, Seed: 13}
	sum, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.ZeroYieldRate < 0.9 {
		t.Errorf("ZeroYieldRate = %g, want near 1 at eps=0.08", sum.ZeroYieldRate)
	}
	if sum.ExpectedRunsPerFull < 1e6 {
		t.Errorf("ExpectedRunsPerFull = %g, want sentinel-large", sum.ExpectedRunsPerFull)
	}
}

func TestGroupSizeOverride(t *testing.T) {
	cfg := Config{Params: params(2, 2), Trials: 2000, Seed: 17, Checkpoints: true, GroupSize: 2}
	sum, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Smaller groups discard less: compare against whole-round groups.
	coarse := cfg
	coarse.GroupSize = 14
	sumCoarse, err := Run(coarse)
	if err != nil {
		t.Fatal(err)
	}
	if sum.MeanOutputs < sumCoarse.MeanOutputs-0.1 {
		t.Errorf("fine groups yield %g, coarse %g; fine should not be worse",
			sum.MeanOutputs, sumCoarse.MeanOutputs)
	}
}

// Property: aggregate invariants hold for arbitrary seeds and small
// factories — histogram mass equals trials, rates live in [0,1], mean
// outputs never exceed capacity.
func TestRunPropertyInvariants(t *testing.T) {
	f := func(seed int64, kRaw, lRaw uint8) bool {
		k := int(kRaw%3) + 1
		l := int(lRaw%2) + 1
		cfg := Config{Params: params(k, l), Trials: 300, Seed: seed}
		sum, err := Run(cfg)
		if err != nil {
			return false
		}
		total := 0
		for _, c := range sum.Outputs {
			total += c
		}
		if total != cfg.Trials {
			return false
		}
		if sum.FullYieldRate < 0 || sum.FullYieldRate > 1 ||
			sum.ZeroYieldRate < 0 || sum.ZeroYieldRate > 1 {
			return false
		}
		return sum.MeanOutputs <= float64(cfg.Params.Capacity())+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTimeToStatesValidation(t *testing.T) {
	cfg := Config{Params: params(2, 1), Trials: 100, Seed: 1}
	if _, err := TimeToStates(cfg, 0, 100); err == nil {
		t.Error("target=0 accepted")
	}
	if _, err := TimeToStates(cfg, 4, 0); err == nil {
		t.Error("latency=0 accepted")
	}
	if _, err := TimeToStates(Config{Params: params(0, 1)}, 4, 100); err == nil {
		t.Error("bad params accepted")
	}
}

func TestTimeToStatesPerfectFidelity(t *testing.T) {
	cfg := Config{
		Params: params(2, 2),
		Errors: resource.ErrorModel{PhysError: 1e-9, InjectError: 1e-9, Threshold: 1e-2},
		Trials: 50, Seed: 1,
	}
	// Capacity 4 per batch at perfect fidelity: 10 states need 3 batches.
	sum, err := TimeToStates(cfg, 10, 500)
	if err != nil {
		t.Fatal(err)
	}
	if sum.MeanBatches != 3 {
		t.Errorf("mean batches = %g, want exactly 3", sum.MeanBatches)
	}
	if sum.P50 != 1500 || sum.P99 != 1500 {
		t.Errorf("percentiles %d/%d, want 1500 cycles flat", sum.P50, sum.P99)
	}
}

func TestTimeToStatesPercentilesOrdered(t *testing.T) {
	cfg := Config{Params: params(2, 2), Trials: 3000, Seed: 5}
	sum, err := TimeToStates(cfg, 20, 700)
	if err != nil {
		t.Fatal(err)
	}
	if !(sum.P50 <= sum.P90 && sum.P90 <= sum.P99) {
		t.Errorf("percentiles unordered: %d %d %d", sum.P50, sum.P90, sum.P99)
	}
	// Lossy yields mean more batches than the lossless floor of 5.
	if sum.MeanBatches <= 5 {
		t.Errorf("mean batches %g at lossless floor despite failures", sum.MeanBatches)
	}
	if sum.MeanCycles != sum.MeanBatches*700 {
		t.Errorf("cycles %g inconsistent with batches %g", sum.MeanCycles, sum.MeanBatches)
	}
}

func TestTimeToStatesUnreachable(t *testing.T) {
	cfg := Config{
		Params: params(2, 2),
		Errors: resource.ErrorModel{PhysError: 1e-3, InjectError: 0.3, Threshold: 1e-2},
		Trials: 5, Seed: 1,
	}
	if _, err := TimeToStates(cfg, 4, 100); err == nil {
		t.Error("zero-yield target accepted")
	}
}
