package httpclient

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeSleep records requested delays instead of waiting.
type fakeSleep struct {
	delays []time.Duration
}

func (f *fakeSleep) sleep(ctx context.Context, d time.Duration) error {
	f.delays = append(f.delays, d)
	return ctx.Err()
}

// fixedRand pins the jitter factor so backoff delays are exact. 0.5
// maps the ±50% jitter to exactly 1.0x.
func fixedRand() float64 { return 0.5 }

func TestRetryAfterIsHonored(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
		case 2:
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
		default:
			io.WriteString(w, `{"ok": true}`)
		}
	}))
	defer ts.Close()

	fs := &fakeSleep{}
	c := &Client{Sleep: fs.sleep, Rand: fixedRand}
	var out struct {
		OK bool `json:"ok"`
	}
	status, err := c.GetJSON(context.Background(), ts.URL, &out)
	if err != nil || status != http.StatusOK || !out.OK {
		t.Fatalf("GetJSON = %d, %v, %+v", status, err, out)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
	want := []time.Duration{2 * time.Second, time.Second}
	if len(fs.delays) != len(want) || fs.delays[0] != want[0] || fs.delays[1] != want[1] {
		t.Fatalf("slept %v, want %v (Retry-After must override backoff)", fs.delays, want)
	}
}

func TestExponentialBackoffWithoutRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 4 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, `{}`)
	}))
	defer ts.Close()

	fs := &fakeSleep{}
	c := &Client{Sleep: fs.sleep, Rand: fixedRand, BaseDelay: 10 * time.Millisecond, MaxDelay: 25 * time.Millisecond}
	status, err := c.GetJSON(context.Background(), ts.URL, nil)
	if err != nil || status != http.StatusOK {
		t.Fatalf("GetJSON = %d, %v", status, err)
	}
	// 10ms, 20ms, then capped at 25ms (jitter factor pinned to 1.0).
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 25 * time.Millisecond}
	if len(fs.delays) != len(want) {
		t.Fatalf("slept %v, want %v", fs.delays, want)
	}
	for i := range want {
		if fs.delays[i] != want[i] {
			t.Fatalf("delay %d = %v, want %v", i, fs.delays[i], want[i])
		}
	}
}

func TestBodyIsReplayedAcrossAttempts(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		if string(body) != `{"x":1}` {
			t.Errorf("attempt %d body = %q", calls.Load()+1, body)
		}
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		io.WriteString(w, `{}`)
	}))
	defer ts.Close()

	fs := &fakeSleep{}
	c := &Client{Sleep: fs.sleep, Rand: fixedRand}
	status, err := c.PostJSON(context.Background(), ts.URL, map[string]int{"x": 1}, nil)
	if err != nil || status != http.StatusOK {
		t.Fatalf("PostJSON = %d, %v", status, err)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d calls, want 2", calls.Load())
	}
}

func TestGivesUpAfterMaxAttempts(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	fs := &fakeSleep{}
	c := &Client{Sleep: fs.sleep, Rand: fixedRand, MaxAttempts: 3}
	status, err := c.GetJSON(context.Background(), ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want the final 429 surfaced", status)
	}
	if calls.Load() != 3 || len(fs.delays) != 2 {
		t.Fatalf("calls = %d, sleeps = %d; want 3 and 2", calls.Load(), len(fs.delays))
	}
}

func TestNonRetryableReturnsImmediately(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer ts.Close()
	fs := &fakeSleep{}
	c := &Client{Sleep: fs.sleep, Rand: fixedRand}
	status, err := c.GetJSON(context.Background(), ts.URL, nil)
	if err != nil || status != http.StatusBadRequest {
		t.Fatalf("GetJSON = %d, %v; want 400, nil", status, err)
	}
	if calls.Load() != 1 || len(fs.delays) != 0 {
		t.Fatalf("400 was retried: calls = %d, sleeps = %d", calls.Load(), len(fs.delays))
	}
}

func TestContextCancelStopsRetrying(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	c := &Client{Rand: fixedRand, Sleep: func(ctx context.Context, d time.Duration) error {
		cancel() // the context ends mid-wait
		return ctx.Err()
	}}
	if _, err := c.GetJSON(ctx, ts.URL, nil); err == nil {
		t.Fatal("cancelled retry loop returned no error")
	}
}

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2024, 5, 1, 12, 0, 0, 0, time.UTC)
	if d, ok := ParseRetryAfter("7", now); !ok || d != 7*time.Second {
		t.Fatalf("seconds form = %v, %v", d, ok)
	}
	date := now.Add(90 * time.Second).Format(http.TimeFormat)
	if d, ok := ParseRetryAfter(date, now); !ok || d != 90*time.Second {
		t.Fatalf("date form = %v, %v", d, ok)
	}
	if d, ok := ParseRetryAfter(now.Add(-time.Hour).Format(http.TimeFormat), now); !ok || d != 0 {
		t.Fatalf("past date = %v, %v; want 0, true", d, ok)
	}
	for _, bad := range []string{"", "soon", "-3"} {
		if _, ok := ParseRetryAfter(bad, now); ok {
			t.Errorf("ParseRetryAfter(%q) ok", bad)
		}
	}
}

// TestParseRetryAfterEdgeCases pins the contract at its boundaries:
// zero is a legal "retry now", every RFC 7231 date format parses, a
// date equal to now is not a failure, and the many strings that look
// almost like delay-seconds are rejected rather than misread.
func TestParseRetryAfterEdgeCases(t *testing.T) {
	now := time.Date(2024, 5, 1, 12, 0, 0, 0, time.UTC)

	// Zero seconds: valid, means the server is ready again already.
	if d, ok := ParseRetryAfter("0", now); !ok || d != 0 {
		t.Fatalf(`ParseRetryAfter("0") = %v, %v; want 0, true`, d, ok)
	}
	// Leading zeros are still plain integers.
	if d, ok := ParseRetryAfter("007", now); !ok || d != 7*time.Second {
		t.Fatalf(`ParseRetryAfter("007") = %v, %v; want 7s, true`, d, ok)
	}

	// http.ParseTime accepts all three RFC 7231 date formats; the
	// preferred IMF-fixdate is covered above, so pin the two legacy
	// forms here.
	future := now.Add(2 * time.Minute)
	for name, v := range map[string]string{
		"rfc850":   future.Format(time.RFC850),
		"ansi-c":   future.Format(time.ANSIC),
		"imf-date": future.Format(http.TimeFormat),
	} {
		if d, ok := ParseRetryAfter(v, now); !ok || d != 2*time.Minute {
			t.Errorf("%s form %q = %v, %v; want 2m, true", name, v, d, ok)
		}
	}
	// A date exactly at now is a boundary, not an error: wait zero.
	if d, ok := ParseRetryAfter(now.Format(http.TimeFormat), now); !ok || d != 0 {
		t.Fatalf("date == now = %v, %v; want 0, true", d, ok)
	}

	// Near-miss garbage must be rejected, not rounded or truncated.
	for _, bad := range []string{
		"7.5", "7s", " 7", "7 ", "+",
		"-0.1", "99999999999999999999999999",
		"Mon, 32 Jan 2024 99:00:00 GMT",
	} {
		if d, ok := ParseRetryAfter(bad, now); ok {
			t.Errorf("ParseRetryAfter(%q) = %v, true; want rejection", bad, d)
		}
	}
}

func TestDoReturnsTransportErrorAfterRetries(t *testing.T) {
	fs := &fakeSleep{}
	c := &Client{Sleep: fs.sleep, Rand: fixedRand, MaxAttempts: 2}
	req, _ := http.NewRequest(http.MethodGet, "http://127.0.0.1:1/unreachable", nil)
	if _, err := c.Do(req); err == nil {
		t.Fatal("unreachable host returned no error")
	}
	if len(fs.delays) != 1 {
		t.Fatalf("transport errors slept %d times, want 1", len(fs.delays))
	}
	if !strings.Contains("connection refused", "refused") {
		t.Fatal("unreachable")
	}
}
