package stitch

import (
	"math/rand"
	"testing"

	"magicstate/internal/bravyi"
)

// BenchmarkApplyHopRouting isolates the hop router — dead-pool
// collection, midpoint picks and the parallel annealer — from the rest
// of a stitched build. Each iteration rebuilds the pre-hop factory with
// the timer stopped (a NoHop build leaves the factory and placement in
// exactly the state applyHopRouting sees: the build rng has drawn
// nothing by step 6) and times only the routing pass.
func BenchmarkApplyHopRouting(b *testing.B) {
	p := bravyi.Params{K: 6, Levels: 2, Barriers: true}
	opt := Options{Seed: 1, Reuse: true, Hops: AnnealedMidpointHop, HopIters: 25}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		pre, err := Build(p, Options{Seed: 1, Reuse: true, Hops: NoHop})
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(opt.Seed))
		b.StartTimer()
		if _, err := applyHopRouting(pre.Factory, pre.Placement, opt, rng); err != nil {
			b.Fatal(err)
		}
	}
}
