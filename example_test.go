package magicstate_test

import (
	"fmt"

	"magicstate"
)

// ExampleOptimize builds and maps a small two-level factory with
// hierarchical stitching and prints its simulated cost.
func ExampleOptimize() {
	res, err := magicstate.Optimize(
		magicstate.FactorySpec{Capacity: 4, Levels: 2, Reuse: true},
		magicstate.Options{Seed: 1},
	)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Strategy, res.Area)
	// Output: HS 322
}

// ExampleEstimateResources reports the physical provisioning of a factory
// under the balanced-investment error model.
func ExampleEstimateResources() {
	est, err := magicstate.EstimateResources(
		magicstate.FactorySpec{Capacity: 4, Levels: 2})
	if err != nil {
		panic(err)
	}
	fmt.Println(est.RoundDistances)
	// Output: [11 17]
}

// ExamplePlanProvision sizes a factory farm for a billion-T-gate
// application consuming one T state every 50 cycles.
func ExamplePlanProvision() {
	prov, err := magicstate.PlanProvision(magicstate.Application{
		TCount:         1e9,
		ErrorBudget:    0.01,
		TGatesPerCycle: 0.02,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(prov.K, prov.Levels, prov.Factories >= 1)
	// Output: 1 3 true
}
