// Package force implements the force-directed annealing mapper of
// §VI.B.1. Starting from an initial placement (the paper transforms the
// hand-optimized linear mapping), it iteratively computes three families
// of forces on each vertex of the interaction graph —
//
//   - vertex-vertex attraction toward the centroid of its neighborhood
//     (edge length reduction),
//   - edge-edge repulsion between edge midpoints with inverse-square
//     falloff (edge spacing maximization),
//   - magnetic-dipole rotation derived from a per-timestep 2-coloring of
//     the qubits, preferring (anti-)parallel edges over crossing ones,
//
// — then proposes moving vertices one tile along their net force, gated by
// a cost function over average edge length, edge spacing and crossing
// count. When the local search converges, community-level escape moves
// (repulsing whole communities apart or attracting a fragmented
// community's k-means clusters together) kick the mapping out of the
// local minimum, as the paper describes.
//
// The engine is exposed two ways: a caller-owned Annealer that keeps all
// annealing scratch (occupancy grid, proposal order, edge samples,
// community membership) alive across calls, and a package-level Anneal
// that borrows a pooled Annealer for one-shot use. With Options.Restarts
// above one, independently seeded runs execute concurrently on a bounded
// worker pool; per-restart rng streams are derived from the point seed by
// a SplitMix64 step, so the chosen result depends only on (inputs, seed,
// Restarts) — never on scheduling or worker count.
package force

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"magicstate/internal/circuit"
	"magicstate/internal/graph"
	"magicstate/internal/kmeans"
	"magicstate/internal/layout"
	"magicstate/internal/stats"
)

// Options tunes the annealer.
type Options struct {
	// Iterations caps force sweeps; 0 picks a size-dependent default.
	Iterations int
	// Seed drives proposal order, community detection and k-means.
	Seed int64
	// WAttract, WRepulse, WDipole weight the three force families.
	// Zero values take defaults (1, 1, 1).
	WAttract, WRepulse, WDipole float64
	// CostSample caps how many other edges are consulted when estimating
	// a move's effect on crossings and spacing (0 = 400); keeps large
	// factories tractable, as the paper's own O(m^2) analysis warns.
	CostSample int
	// MarginRows adds free rows above and below the initial placement so
	// the line can fold into 2-D; 0 picks 3.
	MarginRows int
	// DisableDipole and DisableCommunity switch off individual heuristics
	// for ablation benches.
	DisableDipole    bool
	DisableCommunity bool
	// Restarts runs this many independently seeded annealing runs and
	// keeps the lowest-cost result (ties broken by restart index, so the
	// pick is deterministic). 0 or 1 runs the single historical stream,
	// keeping existing artifacts byte-identical. Restart 0 always uses
	// the stream rand.NewSource(Seed) itself would produce; restart r>0
	// uses the SplitMix64-derived child stream of (Seed, r).
	Restarts int
	// RestartWorkers caps how many restarts run concurrently (0 =
	// GOMAXPROCS). Purely a throughput knob: results never depend on it.
	RestartWorkers int
}

func (o *Options) fill(n int) {
	if o.Iterations == 0 {
		switch {
		case n <= 200:
			o.Iterations = 120
		case n <= 1000:
			o.Iterations = 40
		default:
			o.Iterations = 30
		}
	}
	if o.WAttract == 0 {
		o.WAttract = 1
	}
	if o.WRepulse == 0 {
		o.WRepulse = 1
	}
	if o.WDipole == 0 {
		o.WDipole = 1
	}
	if o.CostSample == 0 {
		o.CostSample = 400
	}
	if o.MarginRows == 0 {
		o.MarginRows = 4
	}
}

// Annealer is a reusable force-directed annealing engine. It owns a pool
// of per-run scratch arenas (dense occupancy grid, proposal-order buffer,
// edge-sample sets, community membership index), so repeated Anneal calls
// — across sweep points or across the restarts of one point — allocate
// almost nothing. An Annealer is safe for concurrent use; each concurrent
// run borrows its own arena from the pool.
type Annealer struct {
	pool sync.Pool
}

// NewAnnealer returns an engine with an empty arena pool.
func NewAnnealer() *Annealer { return &Annealer{} }

func (a *Annealer) acquire() *runState {
	if v := a.pool.Get(); v != nil {
		return v.(*runState)
	}
	return &runState{}
}

func (a *Annealer) release(st *runState) { a.pool.Put(st) }

// Anneal returns an optimized copy of init. c supplies the schedule used
// for the dipole 2-coloring; it must be the circuit g was built from.
// With opt.Restarts > 1, independently seeded runs execute concurrently
// and the lowest-cost placement wins (ties to the lowest restart index);
// the result is byte-identical no matter how many workers ran them.
func (a *Annealer) Anneal(g *graph.Graph, c *circuit.Circuit, init *layout.Placement, opt Options) *layout.Placement {
	opt.fill(g.N)
	var poles []int
	if !opt.DisableDipole {
		poles = graph.Poles(c)
	}
	restarts := opt.Restarts
	if restarts < 1 {
		restarts = 1
	}
	if restarts == 1 {
		st := a.acquire()
		p := st.run(g, init, opt, restartRNG(opt.Seed, 0), poles)
		a.release(st)
		return p
	}

	results := make([]*layout.Placement, restarts)
	costs := make([]float64, restarts)
	workers := opt.RestartWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > restarts {
		workers = restarts
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := a.acquire()
			defer a.release(st)
			for {
				r := int(next.Add(1)) - 1
				if r >= restarts {
					return
				}
				p := st.run(g, init, opt, restartRNG(opt.Seed, r), poles)
				results[r] = p
				costs[r] = placementCost(g, p)
			}
		}()
	}
	wg.Wait()
	best := 0
	for r := 1; r < restarts; r++ {
		if costs[r] < costs[best] {
			best = r
		}
	}
	return results[best]
}

// restartRNG derives restart r's rng stream. Restart 0 is the plain
// seeded stream every pre-restart artifact was produced with; higher
// restarts get decorrelated SplitMix64 child streams. Deriving streams
// from (seed, r) alone — never from which worker runs them — is what
// makes parallel restarts schedule-independent.
func restartRNG(seed int64, r int) *rand.Rand {
	if r == 0 {
		return rand.New(rand.NewSource(seed))
	}
	return stats.SplitRNG(seed, int64(r))
}

// placementCost scores a finished restart for the best-of pick: total
// weighted edge length plus the crossing penalty over every edge pair,
// the global form of the sampled local cost the sweeps optimize. It is a
// pure function of the placement, so comparing restarts by it (ties to
// the lowest index) is deterministic.
func placementCost(g *graph.Graph, p *layout.Placement) float64 {
	const crossWeight = 4.0
	cost := layout.WeightedManhattan(g, p)
	segs := layout.Segments(g, p)
	for i := range segs {
		for j := i + 1; j < len(segs); j++ {
			if layout.SegmentsConflict(segs[i], segs[j]) {
				cost += crossWeight
			}
		}
	}
	return cost
}

var defaultAnnealer = NewAnnealer()

// Anneal returns an optimized copy of init using a shared pooled engine;
// it is the one-shot form of Annealer.Anneal. c supplies the schedule
// used for the dipole 2-coloring; it must be the circuit g was built
// from.
func Anneal(g *graph.Graph, c *circuit.Circuit, init *layout.Placement, opt Options) *layout.Placement {
	return defaultAnnealer.Anneal(g, c, init, opt)
}

// runState carries the bookkeeping of one annealing run. All of it is
// reusable scratch: the arrays grow to the high-water mark of the runs
// they have served and are reset, not reallocated, on the next run.
type runState struct {
	g   *graph.Graph
	p   layout.Placement // owned canvas; Pos is the run's working copy
	opt Options
	rng *rand.Rand
	// occ is a dense W*H occupancy grid over the canvas: 0 means free,
	// v+1 means qubit v sits on the tile.
	occ []int32
	// perm receives the sweep proposal order (rand.Perm replicated into
	// reused storage).
	perm []int
	// allEdges is the identity edge list [0..m) used as the comparison
	// set when the whole graph fits under CostSample; sample receives
	// rng-drawn subsets when it does not.
	allEdges []int
	sample   []int
	// osegs/omidX/omidY cache the comparison edges' segments and
	// midpoints for one localCost evaluation, so the incident x sample
	// double loop reads them instead of re-deriving four placement
	// lookups and two float divisions per pair.
	osegs        []layout.Segment
	omidX, omidY []float64
	// memberStart/memberCur/memberList index community members in CSR
	// form: members of community cid are
	// memberList[memberStart[cid]:memberStart[cid+1]].
	memberStart []int32
	memberCur   []int32
	memberList  []int
	// pts is the k-means scratch for communityKick.
	pts []kmeans.Point
}

// run executes one annealing run against the reused arenas and returns a
// freshly cloned result (the arena canvas never escapes). The rng draw
// sequence exactly matches the historical single-shot implementation:
// community detection first, then per-sweep proposal order, force
// sampling and move gating in program order.
func (st *runState) run(g *graph.Graph, init *layout.Placement, opt Options, rng *rand.Rand, poles []int) *layout.Placement {
	st.g, st.opt, st.rng = g, opt, rng

	// Work on an expanded canvas so vertices can leave the initial hull.
	n := len(init.Pos)
	if cap(st.p.Pos) < n {
		st.p.Pos = make([]layout.Point, n)
	}
	st.p.Pos = st.p.Pos[:n]
	copy(st.p.Pos, init.Pos)
	st.p.W, st.p.H = init.W, init.H
	st.p.Normalize()
	margin := opt.MarginRows
	for q := range st.p.Pos {
		st.p.Pos[q].X += margin
		st.p.Pos[q].Y += margin
	}
	st.p.W += 2 * margin
	st.p.H += 2 * margin

	var comm []int
	commCount := 0
	if !opt.DisableCommunity {
		comm, commCount = graph.Communities(g, rng)
	}
	st.buildOcc()

	stuck := 0
	for iter := 0; iter < opt.Iterations; iter++ {
		// Community attraction alternates with force sweeps: it compacts
		// each community around its centroid with forced moves, escaping
		// the 1-D local minima the cost-gated sweep cannot leave.
		if !opt.DisableCommunity && commCount > 1 && iter%2 == 1 {
			st.communityAttract(comm, commCount)
		}
		moved := st.sweep(poles)
		if moved == 0 {
			stuck++
			if !opt.DisableCommunity && commCount > 1 {
				st.communityKick(comm, commCount)
			}
			if stuck >= 3 {
				break
			}
		} else {
			stuck = 0
		}
	}
	st.p.Normalize()
	out := st.p.Clone()
	st.g, st.rng = nil, nil
	return out
}

// buildOcc resets the occupancy grid to the current canvas.
func (st *runState) buildOcc() {
	need := st.p.W * st.p.H
	if cap(st.occ) < need {
		st.occ = make([]int32, need)
	} else {
		st.occ = st.occ[:need]
		for i := range st.occ {
			st.occ[i] = 0
		}
	}
	for q := range st.p.Pos {
		pt := st.p.Pos[q]
		st.occ[pt.Y*st.p.W+pt.X] = int32(q) + 1
	}
}

// forceOn computes the net force vector on vertex v.
func (st *runState) forceOn(v int, poles []int) (fx, fy float64) {
	pv := st.p.At(v)
	// Attraction to neighborhood centroid.
	var cx, cy, wsum float64
	st.g.Neighbors(v, func(u int, w float64) {
		pu := st.p.At(u)
		cx += w * float64(pu.X)
		cy += w * float64(pu.Y)
		wsum += w
	})
	if wsum > 0 {
		fx += st.opt.WAttract * (cx/wsum - float64(pv.X))
		fy += st.opt.WAttract * (cy/wsum - float64(pv.Y))
	}
	// Edge-edge repulsion: push v's edges' midpoints away from sampled
	// other midpoints, inverse-square in midpoint distance.
	if len(st.g.Edges) > 1 {
		sample := st.opt.CostSample
		for _, ei := range st.g.Incident(v) {
			mvx, mvy := st.midpoint(ei)
			for s := 0; s < sample; s++ {
				oi := st.rng.Intn(len(st.g.Edges))
				if oi == ei {
					continue
				}
				mox, moy := st.midpoint(oi)
				dx, dy := mvx-mox, mvy-moy
				d2 := dx*dx + dy*dy
				if d2 < 0.25 {
					d2 = 0.25
				}
				if d2 > 64 { // cutoff: distant edges contribute nothing
					continue
				}
				inv := st.opt.WRepulse / d2
				norm := math.Sqrt(d2)
				fx += inv * dx / norm
				fy += inv * dy / norm
			}
			if sample > 8 {
				sample = 8 // first incident edge dominates; keep the rest cheap
			}
		}
	}
	// Dipole rotation: like poles repel, opposite poles attract, with
	// inverse-square falloff, over a sample of vertices.
	if poles != nil {
		for s := 0; s < 32; s++ {
			u := st.rng.Intn(st.g.N)
			if u == v {
				continue
			}
			pu := st.p.At(u)
			dx := float64(pv.X - pu.X)
			dy := float64(pv.Y - pu.Y)
			d2 := dx*dx + dy*dy
			if d2 < 0.25 {
				d2 = 0.25
			}
			if d2 > 36 {
				continue
			}
			sign := -1.0 // opposite poles attract (pull toward u)
			if poles[v] == poles[u] {
				sign = 1.0
			}
			inv := st.opt.WDipole * sign / d2
			norm := math.Sqrt(d2)
			fx += inv * dx / norm
			fy += inv * dy / norm
		}
	}
	return fx, fy
}

func (st *runState) midpoint(ei int) (float64, float64) {
	e := st.g.Edges[ei]
	a, b := st.p.At(e.U), st.p.At(e.V)
	return float64(a.X+b.X) / 2, float64(a.Y+b.Y) / 2
}

// sweep proposes one move per vertex along its force and returns how many
// were accepted.
func (st *runState) sweep(poles []int) int {
	order := st.permInto()
	moved := 0
	for _, v := range order {
		fx, fy := st.forceOn(v, poles)
		if fx == 0 && fy == 0 {
			continue
		}
		step := layout.Point{X: intSign(fx), Y: intSign(fy)}
		// Prefer the dominant axis; fall back to the other.
		if math.Abs(fx) < math.Abs(fy) {
			if st.tryMove(v, layout.Point{X: 0, Y: step.Y}) || st.tryMove(v, layout.Point{X: step.X, Y: 0}) {
				moved++
			}
		} else {
			if st.tryMove(v, layout.Point{X: step.X, Y: 0}) || st.tryMove(v, layout.Point{X: 0, Y: step.Y}) {
				moved++
			}
		}
	}
	return moved
}

// permInto replicates rand.Perm into reused storage — including the i==0
// Intn(1) draw the standard library keeps for stream compatibility — so
// sweeps consume exactly the rng sequence the historical rng.Perm call
// did.
func (st *runState) permInto() []int {
	n := st.g.N
	if cap(st.perm) < n {
		st.perm = make([]int, n)
	}
	m := st.perm[:n]
	for i := 0; i < n; i++ {
		j := st.rng.Intn(i + 1)
		m[i] = m[j]
		m[j] = i
	}
	return m
}

func intSign(f float64) int {
	switch {
	case f > 0.25:
		return 1
	case f < -0.25:
		return -1
	}
	return 0
}

// tryMove attempts to move v by delta (to a free tile, or swapping with
// the occupant) and keeps the move only if the sampled cost does not
// increase.
func (st *runState) tryMove(v int, delta layout.Point) bool {
	if delta == (layout.Point{}) {
		return false
	}
	from := st.p.At(v)
	to := layout.Point{X: from.X + delta.X, Y: from.Y + delta.Y}
	if to.X < 0 || to.X >= st.p.W || to.Y < 0 || to.Y >= st.p.H {
		return false
	}
	o := st.occ[to.Y*st.p.W+to.X]
	occupant, swap := int(o)-1, o != 0
	// Sample the comparison edge set once so before/after scores differ
	// only through the move, not through sampling noise.
	sample := st.sampleEdgeSet()
	before := st.localCost(v, sample)
	if swap {
		before += st.localCost(occupant, sample)
	}
	st.apply(v, to, occupant, swap, from)
	after := st.localCost(v, sample)
	if swap {
		after += st.localCost(occupant, sample)
	}
	if after <= before {
		return true
	}
	// Revert.
	st.apply(v, from, occupant, swap, to)
	return false
}

func (st *runState) apply(v int, to layout.Point, occupant int, swap bool, from layout.Point) {
	w := st.p.W
	if swap {
		st.p.Set(occupant, from)
		st.occ[from.Y*w+from.X] = int32(occupant) + 1
	} else {
		st.occ[from.Y*w+from.X] = 0
	}
	st.p.Set(v, to)
	st.occ[to.Y*w+to.X] = int32(v) + 1
}

// sampleEdgeSet draws the comparison edges used for one move evaluation.
// Small graphs compare against every edge (the prebuilt identity list);
// large ones against a random subset of CostSample edges drawn into
// reused storage.
func (st *runState) sampleEdgeSet() []int {
	m := len(st.g.Edges)
	if m <= st.opt.CostSample {
		if len(st.allEdges) != m {
			if cap(st.allEdges) < m {
				st.allEdges = make([]int, m)
			}
			st.allEdges = st.allEdges[:m]
			for i := range st.allEdges {
				st.allEdges[i] = i
			}
		}
		return st.allEdges
	}
	if cap(st.sample) < st.opt.CostSample {
		st.sample = make([]int, st.opt.CostSample)
	}
	sample := st.sample[:st.opt.CostSample]
	for i := range sample {
		sample[i] = st.rng.Intn(m)
	}
	return sample
}

// localCost scores vertex v's edges against the given comparison edges:
// weighted length plus crossing count minus spacing, mirroring the
// paper's cost metric locally.
func (st *runState) localCost(v int, sample []int) float64 {
	const crossWeight = 4.0
	const spacingWeight = 0.5
	var cost float64
	edges := st.g.Incident(v)
	if len(edges) == 0 {
		return 0
	}
	// Derive each comparison edge's segment and midpoint once: the
	// expressions match the per-pair forms bit for bit, and the pair
	// loop accumulates in the same order, so cached reads change no
	// cost value.
	if cap(st.osegs) < len(sample) {
		st.osegs = make([]layout.Segment, len(sample))
		st.omidX = make([]float64, len(sample))
		st.omidY = make([]float64, len(sample))
	}
	osegs := st.osegs[:len(sample)]
	omidX, omidY := st.omidX[:len(sample)], st.omidY[:len(sample)]
	for k, oi := range sample {
		oe := st.g.Edges[oi]
		a, b := st.p.At(oe.U), st.p.At(oe.V)
		osegs[k] = layout.Segment{A: a, B: b}
		omidX[k] = float64(a.X+b.X) / 2
		omidY[k] = float64(a.Y+b.Y) / 2
	}
	for _, ei := range edges {
		e := st.g.Edges[ei]
		a, b := st.p.At(e.U), st.p.At(e.V)
		cost += e.Weight * float64(layout.Manhattan(a, b))
		seg := layout.Segment{A: a, B: b}
		mx, my := float64(a.X+b.X)/2, float64(a.Y+b.Y)/2
		for k, oi := range sample {
			if oi == ei {
				continue
			}
			if layout.SegmentsConflict(seg, osegs[k]) {
				cost += crossWeight
			}
			dx, dy := mx-omidX[k], my-omidY[k]
			// The spacing penalty only fires under distance 8; comparing
			// squared distances first skips the Sqrt for the typical far
			// pair without changing any cost value.
			if d2 := dx*dx + dy*dy; d2 < 64 {
				cost += spacingWeight * (8 - math.Sqrt(d2)) / 8
			}
		}
	}
	return cost
}

// buildMembers indexes community membership in CSR form over reused
// storage. It is rebuilt on every use because communityAttract sorts the
// member lists in place.
func (st *runState) buildMembers(comm []int, commCount int) {
	if cap(st.memberStart) < commCount+1 {
		st.memberStart = make([]int32, commCount+1)
		st.memberCur = make([]int32, commCount)
	}
	starts := st.memberStart[:commCount+1]
	for i := range starts {
		starts[i] = 0
	}
	for _, cid := range comm {
		starts[cid+1]++
	}
	for i := 1; i <= commCount; i++ {
		starts[i] += starts[i-1]
	}
	cur := st.memberCur[:commCount]
	copy(cur, starts[:commCount])
	if cap(st.memberList) < len(comm) {
		st.memberList = make([]int, len(comm))
	}
	list := st.memberList[:len(comm)]
	for v, cid := range comm {
		list[cur[cid]] = v
		cur[cid]++
	}
	st.memberStart = starts
	st.memberList = list
}

// members returns community cid's member list (vertex-ascending until
// sorted in place by a consumer).
func (st *runState) members(cid int) []int {
	return st.memberList[st.memberStart[cid]:st.memberStart[cid+1]]
}

// communityAttract compacts every community toward a square block
// centered on its centroid: each member is assigned a target slot inside
// the block (row-major, members ordered by current position) and forced
// one step toward it, moving only onto free tiles but ignoring the local
// cost gate. These are the paper's forced community moves — they break
// the 1-D local minima (a flat line exerts no vertical force at all) and
// the following sweep re-polishes. The block shape is what "attract all
// nodes within a single community together" converges to on a grid.
func (st *runState) communityAttract(comm []int, commCount int) {
	st.buildMembers(comm, commCount)
	for cid := 0; cid < commCount; cid++ {
		vs := st.members(cid)
		if len(vs) < 3 {
			continue
		}
		cx, cy := st.p.CenterOfMass(vs)
		// Block dimensions with ~20% slack.
		side := 1
		for side*side < len(vs)*6/5 {
			side++
		}
		// Order members by current position (row-major) so targets keep
		// relative order and moves do not cross each other. The member
		// index was rebuilt fresh above, so the sort can run in place.
		ordered := vs
		sortBy(ordered, func(a, b int) bool {
			pa, pb := st.p.At(a), st.p.At(b)
			if pa.Y != pb.Y {
				return pa.Y < pb.Y
			}
			return pa.X < pb.X
		})
		x0 := int(cx) - side/2
		y0 := int(cy) - side/2
		for i, v := range ordered {
			tx := x0 + i%side
			ty := y0 + i/side
			pt := st.p.At(v)
			dx := intSign(float64(tx - pt.X))
			dy := intSign(float64(ty - pt.Y))
			if dx == 0 && dy == 0 {
				continue
			}
			st.forcedMove(v, layout.Point{X: dx, Y: dy})
		}
	}
}

// forcedMove relocates v by delta when the destination tile is free (or
// one axis of it is); it never swaps and never consults the cost gate.
func (st *runState) forcedMove(v int, delta layout.Point) bool {
	from := st.p.At(v)
	cands := [3]layout.Point{delta, {X: delta.X}, {Y: delta.Y}}
	for _, d := range cands {
		if d == (layout.Point{}) {
			continue
		}
		to := layout.Point{X: from.X + d.X, Y: from.Y + d.Y}
		if to.X < 0 || to.X >= st.p.W || to.Y < 0 || to.Y >= st.p.H {
			continue
		}
		if st.occ[to.Y*st.p.W+to.X] != 0 {
			continue
		}
		st.apply(v, to, 0, false, from)
		return true
	}
	return false
}

func sortBy(xs []int, less func(a, b int) bool) {
	// Insertion sort: community member lists are small enough and this
	// avoids importing sort with closure allocation in the hot path.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && less(xs[j], xs[j-1]); j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// communityKick applies the paper's two community-level escape moves: it
// pushes distinct communities' centers apart and pulls each fragmented
// community's k-means clusters toward their joint center.
func (st *runState) communityKick(comm []int, commCount int) {
	st.buildMembers(comm, commCount)
	for cid := 0; cid < commCount; cid++ {
		vs := st.members(cid)
		if len(vs) < 2 {
			continue
		}
		// Cluster the community spatially; if split, attract clusters
		// toward the community centroid.
		if cap(st.pts) < len(vs) {
			st.pts = make([]kmeans.Point, len(vs))
		}
		pts := st.pts[:len(vs)]
		for i, v := range vs {
			pt := st.p.At(v)
			pts[i] = kmeans.Point{X: float64(pt.X), Y: float64(pt.Y)}
		}
		kk := 2
		res := kmeans.KMeans(pts, kk, 25, st.rng)
		if len(res.Centroids) < 2 {
			continue
		}
		ccx, ccy := st.p.CenterOfMass(vs)
		for i, v := range vs {
			ctr := res.Centroids[res.Assign[i]]
			// Move cluster members one step from their cluster centroid
			// toward the community centroid.
			dx := intSign(ccx - ctr.X)
			dy := intSign(ccy - ctr.Y)
			if dx == 0 && dy == 0 {
				continue
			}
			st.tryMove(v, layout.Point{X: dx, Y: dy})
		}
	}
}
