package sched

import (
	"testing"

	"magicstate/internal/bravyi"
	"magicstate/internal/circuit"
	"magicstate/internal/resource"
)

func cm() resource.CostModel { return resource.DefaultCost() }

func TestASAPChain(t *testing.T) {
	c := circuit.New(2)
	c.H(0)
	c.CNOT(0, 1)
	c.MeasX(1)
	s := ASAP(c, cm())
	m := cm()
	if s.Start[0] != 0 || s.Start[1] != m.H || s.Start[2] != m.H+m.CNOT {
		t.Errorf("starts = %v", s.Start)
	}
	if s.Makespan != m.H+m.CNOT+m.Meas {
		t.Errorf("makespan = %d", s.Makespan)
	}
}

func TestALAPSameMakespanAndOrdering(t *testing.T) {
	f, err := bravyi.Build(bravyi.Params{K: 4, Levels: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := f.Circuit
	asap := ASAP(c, cm())
	alap := ALAP(c, cm())
	if asap.Makespan != alap.Makespan {
		t.Fatalf("makespans differ: %d vs %d", asap.Makespan, alap.Makespan)
	}
	d := circuit.Deps(c)
	for i := range c.Gates {
		if alap.Start[i] < asap.Start[i] {
			t.Fatalf("gate %d: ALAP start %d before ASAP %d", i, alap.Start[i], asap.Start[i])
		}
		for _, succ := range d.Succ[i] {
			if alap.Finish[i] > alap.Start[succ] {
				t.Fatalf("ALAP violates dependency %d -> %d", i, succ)
			}
		}
	}
}

func TestSlackZeroOnCriticalPath(t *testing.T) {
	f, err := bravyi.Build(bravyi.Params{K: 2, Levels: 1})
	if err != nil {
		t.Fatal(err)
	}
	sl := Slack(f.Circuit, cm())
	zero := 0
	for _, s := range sl {
		if s < 0 {
			t.Fatalf("negative slack %d", s)
		}
		if s == 0 {
			zero++
		}
	}
	if zero == 0 {
		t.Error("some gates must lie on the critical path")
	}
}

func TestParallelismProfile(t *testing.T) {
	c := circuit.New(4)
	c.H(0)
	c.H(1)
	c.CNOT(0, 1)
	c.H(2)
	prof := ParallelismProfile(c)
	if prof[0] != 3 || prof[1] != 1 {
		t.Errorf("profile = %v, want [3 1]", prof)
	}
}

func TestCommute(t *testing.T) {
	cn := func(ctrl, tgt circuit.Qubit) *circuit.Gate {
		return &circuit.Gate{Kind: circuit.KindCNOT, Control: ctrl, Targets: []circuit.Qubit{tgt}}
	}
	h := &circuit.Gate{Kind: circuit.KindH, Control: circuit.NoQubit, Targets: []circuit.Qubit{0}}
	bar := &circuit.Gate{Kind: circuit.KindBarrier, Control: circuit.NoQubit, Targets: []circuit.Qubit{0, 1}}

	cases := []struct {
		a, b *circuit.Gate
		want bool
		name string
	}{
		{cn(0, 1), cn(2, 3), true, "disjoint"},
		{cn(0, 1), cn(0, 2), true, "shared control"},
		{cn(0, 2), cn(1, 2), true, "shared target"},
		{cn(0, 1), cn(1, 2), false, "target feeds control"},
		{cn(0, 1), cn(2, 0), false, "control feeds target"},
		{cn(0, 1), h, false, "H on control blocks"},
		{cn(0, 1), bar, false, "barrier blocks"},
	}
	for _, tc := range cases {
		if got := Commute(tc.a, tc.b); got != tc.want {
			t.Errorf("%s: commute = %v, want %v", tc.name, got, tc.want)
		}
		if got := Commute(tc.b, tc.a); got != tc.want {
			t.Errorf("%s (swapped): commute = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestSiftEarlierImprovesSharedControlChain(t *testing.T) {
	// Three CNOTs with a shared control are order-serialized by the
	// hazard rule; sifting cannot remove the shared-control hazard, but a
	// commuting reorder of shared-control gates with interleaved blockers
	// can shorten chains. Build a case where gate 2 commutes past gate 1.
	c := circuit.New(4)
	c.CNOT(0, 1) // A
	c.CNOT(2, 3) // B: disjoint from A (no swap benefit; shares nothing)
	c.CNOT(0, 2) // C: shares control with A, shares q2 with B (target/control -> blocked by B)
	before := cm().CriticalPath(c)
	out := SiftEarlier(c)
	after := cm().CriticalPath(out)
	if after > before {
		t.Errorf("sifting lengthened critical path: %d -> %d", before, after)
	}
	if len(out.Gates) != len(c.Gates) {
		t.Error("sifting changed gate count")
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSiftEarlierPreservesFactorySemantics(t *testing.T) {
	f, err := bravyi.Build(bravyi.Params{K: 2, Levels: 2, Barriers: true})
	if err != nil {
		t.Fatal(err)
	}
	out := SiftEarlier(f.Circuit)
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// Gate census unchanged.
	for _, k := range []circuit.Kind{circuit.KindCNOT, circuit.KindCXX, circuit.KindInjectT, circuit.KindBarrier, circuit.KindMove} {
		if out.CountKind(k) != f.Circuit.CountKind(k) {
			t.Errorf("%v count changed", k)
		}
	}
	// Barriers still fence: no round-2 body gate may precede the barrier.
	barIdx := -1
	for i := range out.Gates {
		if out.Gates[i].Kind == circuit.KindBarrier {
			barIdx = i
			break
		}
	}
	for i := 0; i < barIdx; i++ {
		g := out.Gates[i]
		if g.Round == 2 && g.Kind != circuit.KindBarrier {
			t.Fatalf("round-2 gate %d crossed the barrier", i)
		}
	}
	// ASAP makespan must not grow.
	if ASAP(out, cm()).Makespan > ASAP(f.Circuit, cm()).Makespan {
		t.Error("sifting increased the ASAP makespan")
	}
}

func TestInsertRoundBarriers(t *testing.T) {
	c := circuit.New(2)
	c.H(0)
	c.H(1)
	out := InsertRoundBarriers(c, []int{0}, []circuit.Qubit{0, 1})
	if len(out.Gates) != 3 || out.Gates[1].Kind != circuit.KindBarrier {
		t.Fatalf("barrier not inserted: %v", out.String())
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// Original untouched.
	if len(c.Gates) != 2 {
		t.Error("input mutated")
	}
}
