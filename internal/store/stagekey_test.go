package store

import (
	"reflect"
	"testing"

	"magicstate/internal/core"
	"magicstate/internal/force"
	"magicstate/internal/resource"
	"magicstate/internal/stitch"
)

// stageKeySet is the three stage keys of one config, for compact
// change-matrix assertions.
type stageKeySet struct{ build, place, sim Key }

func keysOf(cfg core.Config) stageKeySet {
	return stageKeySet{
		build: StageKeyOf(core.StageBuild, cfg),
		place: StageKeyOf(core.StagePlace, cfg),
		sim:   StageKeyOf(core.StageSim, cfg),
	}
}

// diff reports which stage keys changed between two configs as a
// compact string like "build+place+sim" ("" when nothing moved).
func (a stageKeySet) diff(b stageKeySet) string {
	out := ""
	app := func(s string) {
		if out != "" {
			out += "+"
		}
		out += s
	}
	if a.build != b.build {
		app("build")
	}
	if a.place != b.place {
		app("place")
	}
	if a.sim != b.sim {
		app("sim")
	}
	return out
}

// TestStageKeyScopes pins the scope matrix field by field: for each
// strategy, mutating a Config field must move exactly the keys of the
// stages that consume it. A mutation moving too few keys would serve a
// stale artifact; too many would fracture sharing the tier exists for.
func TestStageKeyScopes(t *testing.T) {
	type mutation struct {
		name   string
		mutate func(*core.Config)
		want   string // stages whose keys must change, "" for none
	}
	run := func(t *testing.T, base core.Config, muts []mutation) {
		t.Helper()
		baseKeys := keysOf(base)
		for _, m := range muts {
			cfg := base
			m.mutate(&cfg)
			if got := baseKeys.diff(keysOf(cfg)); got != m.want {
				t.Errorf("%s: changed stages %q, want %q", m.name, got, m.want)
			}
		}
	}

	// Upstream structure axes move everything; downstream axes cascade
	// forward only; diagnostics and throughput knobs move nothing.
	common := []mutation{
		{"K", func(c *core.Config) { c.K = 6 }, "build+place+sim"},
		{"Levels", func(c *core.Config) { c.Levels = 1 }, "build+place+sim"},
		{"Reuse", func(c *core.Config) { c.Reuse = true }, "build+place+sim"},
		{"NoBarriers", func(c *core.Config) { c.NoBarriers = true }, "build+place+sim"},
		// A frontend workload determines the circuit itself, so it scopes
		// every stage regardless of strategy.
		{"Workload", func(c *core.Config) { c.Workload = "random" }, "build+place+sim"},
		{"WorkloadSource", func(c *core.Config) { c.WorkloadSource = "q=8;layers=2" }, "build+place+sim"},
		// The defect map never reaches the build (the factory circuit is
		// mesh-independent) but every mapper relocates around it.
		{"Defects", func(c *core.Config) { c.Defects = "1,1" }, "place+sim"},
		{"RecordPaths", func(c *core.Config) { c.RecordPaths = true }, ""},
		{"FD.RestartWorkers", func(c *core.Config) { c.FD.RestartWorkers = 8 }, ""},
	}

	t.Run("linear", func(t *testing.T) {
		base := core.Config{K: 4, Levels: 2, Strategy: core.StrategyLinear, Seed: 1}
		run(t, base, append([]mutation{
			// Linear is deterministic from the factory: no seed, no FD
			// knobs, and the simulator config only reaches the sim stage.
			{"Seed", func(c *core.Config) { c.Seed = 2 }, ""},
			{"Strategy", func(c *core.Config) { c.Strategy = core.StrategyRandom }, "place+sim"},
			{"Cost", func(c *core.Config) { c.Cost = resource.CostModel{CNOT: 21} }, "sim"},
			{"MeshMode", func(c *core.Config) { c.MeshMode = 1 }, "sim"},
			{"RouteMargin", func(c *core.Config) { c.RouteMargin = 3 }, "sim"},
			{"Style", func(c *core.Config) { c.Style = 1 }, "sim"},
			{"Distance", func(c *core.Config) { c.Distance = 11 }, "sim"},
			{"FD", func(c *core.Config) { c.FD = force.Options{Iterations: 9} }, ""},
			{"Stitch", func(c *core.Config) { c.Stitch = stitch.Options{HopIters: 9} }, ""},
		}, common...))
	})

	t.Run("random", func(t *testing.T) {
		base := core.Config{K: 4, Levels: 2, Strategy: core.StrategyRandom, Seed: 1}
		run(t, base, append([]mutation{
			{"Seed", func(c *core.Config) { c.Seed = 2 }, "place+sim"},
			{"Style", func(c *core.Config) { c.Style = 1 }, "sim"},
			{"FD", func(c *core.Config) { c.FD = force.Options{Iterations: 9} }, ""},
		}, common...))
	})

	t.Run("gp", func(t *testing.T) {
		base := core.Config{K: 4, Levels: 2, Strategy: core.StrategyGraphPartition, Seed: 1}
		run(t, base, append([]mutation{
			{"Seed", func(c *core.Config) { c.Seed = 2 }, "place+sim"},
			{"Cost", func(c *core.Config) { c.Cost = resource.CostModel{CNOT: 21} }, "sim"},
		}, common...))
	})

	t.Run("fd", func(t *testing.T) {
		base := core.Config{K: 4, Levels: 2, Strategy: core.StrategyForceDirected, Seed: 1}
		run(t, base, append([]mutation{
			{"Seed", func(c *core.Config) { c.Seed = 2 }, "place+sim"},
			{"FD.Iterations", func(c *core.Config) { c.FD.Iterations = 9 }, "place+sim"},
			// FD scores candidates in simulation, so the simulator's
			// configuration reaches the placement key too.
			{"Cost", func(c *core.Config) { c.Cost = resource.CostModel{CNOT: 21} }, "place+sim"},
			{"Style", func(c *core.Config) { c.Style = 1 }, "place+sim"},
			{"Distance", func(c *core.Config) { c.Distance = 11 }, "place+sim"},
			{"Stitch", func(c *core.Config) { c.Stitch = stitch.Options{HopIters: 9} }, ""},
		}, common...))
	})

	t.Run("stitch", func(t *testing.T) {
		base := core.Config{K: 4, Levels: 2, Strategy: core.StrategyStitch, Seed: 1}
		run(t, base, append([]mutation{
			// Stitching fuses building and placing into one seeded
			// optimization: the seed and stitch knobs reach the build.
			{"Seed", func(c *core.Config) { c.Seed = 2 }, "build+place+sim"},
			{"Stitch.HopIters", func(c *core.Config) { c.Stitch.HopIters = 9 }, "build+place+sim"},
			{"Stitch.Hops", func(c *core.Config) { c.Stitch.Hops = 1 }, "build+place+sim"},
			{"Cost", func(c *core.Config) { c.Cost = resource.CostModel{CNOT: 21} }, "sim"},
			{"Style", func(c *core.Config) { c.Style = 1 }, "sim"},
			{"FD", func(c *core.Config) { c.FD = force.Options{Iterations: 9} }, ""},
		}, common...))
	})
}

// TestStageKeysNeverAliasAcrossStagesOrFinals: the same config's keys
// for different stages — and its final key — must all be distinct, or a
// lookup could replay the wrong kind of record.
func TestStageKeysNeverAliasAcrossStagesOrFinals(t *testing.T) {
	for _, cfg := range []core.Config{
		{K: 4, Levels: 2, Strategy: core.StrategyLinear},
		{K: 4, Levels: 2, Strategy: core.StrategyStitch, Seed: 3},
	} {
		seen := map[Key]string{KeyOf(cfg): "final"}
		for _, st := range core.Stages() {
			k := StageKeyOf(st, cfg)
			if prev, dup := seen[k]; dup {
				t.Fatalf("%+v: stage %s key collides with %s", cfg, st, prev)
			}
			seen[k] = st.String()
		}
		// Unknown stages get a total key too, and it must not alias.
		k := StageKeyOf(core.Stage(99), cfg)
		if prev, dup := seen[k]; dup {
			t.Fatalf("unknown-stage key collides with %s", prev)
		}
	}
}

// TestStageKeyPinnedDigests pins the canonical stage encodings the way
// TestKeyOfPinnedDigest pins the final one: silent drift would orphan
// every stage record in every existing store. Produced by
// stageKeyFormatVersion 2 (which scoped Workload/WorkloadSource into the
// build and Defects into place and sim); if an encoding must change,
// bump the version and re-pin.
func TestStageKeyPinnedDigests(t *testing.T) {
	cfg := core.Config{K: 4, Levels: 2, Reuse: true, Strategy: core.StrategyStitch, Seed: 7}
	for st, want := range map[core.Stage]string{
		core.StageBuild: "f9135e6ca906eecb0aae23a9de58690b42c4f30f38ee051467b6f8cb3e4170aa",
		core.StagePlace: "ededca6ab94c0ce673e46464a32d8fb40777ee4da8e1e7911a8fea7ecb1a49f1",
		core.StageSim:   "492d73000e35cf5c7c248d2452f229189d7bace24cdadc6d1493f793c0cd10c6",
	} {
		if got := StageKeyOf(st, cfg).String(); got != want {
			t.Errorf("stage %s digest drifted:\n got %s\nwant %s\n(bump stageKeyFormatVersion if the encoding changed on purpose)", st, got, want)
		}
	}
}

// TestStageKeyGuardsConfigFields is the reflection pin for the scope
// matrix: every core.Config field must be explicitly classified below.
// When a field is added, this fails until the new field is placed into
// a scope class — teaching StageKeyOf about it (and bumping
// stageKeyFormatVersion) or recording why no stage consumes it.
func TestStageKeyGuardsConfigFields(t *testing.T) {
	// Classification of every Config field by the earliest stage whose
	// key carries it (later stages inherit their inputs' scope):
	//   build       — in the build scope for at least one strategy
	//   place       — joins at the placement key
	//   sim         — joins at the simulation key
	//   excluded    — deliberately in no stage scope
	scope := map[string]string{
		"K":              "build",
		"Levels":         "build",
		"Reuse":          "build",
		"NoBarriers":     "build",
		"Seed":           "build", // stitch fuses it into the build; seeded mappers at place
		"Stitch":         "build", // stitch builds only
		"Strategy":       "place",
		"FD":             "place", // FD mapper only (minus RestartWorkers)
		"Cost":           "sim",   // and place, for FD's simulation-scored candidates
		"MeshMode":       "sim",
		"RouteMargin":    "sim",
		"Style":          "sim",
		"Distance":       "sim",
		"RecordPaths":    "excluded", // diagnostics-only; gates StageCacheable instead
		"Workload":       "build",    // the frontend fixes the circuit for every stage
		"WorkloadSource": "build",
		"Defects":        "place", // mappers relocate around defects; sim routes around them
	}
	rt := reflect.TypeOf(core.Config{})
	for i := 0; i < rt.NumField(); i++ {
		name := rt.Field(i).Name
		if _, ok := scope[name]; !ok {
			t.Errorf("core.Config field %s is not classified in the stage-key scope matrix — place it in a scope (updating StageKeyOf and stageKeyFormatVersion) or record it as excluded", name)
		}
		delete(scope, name)
	}
	for name := range scope {
		t.Errorf("scope matrix lists %s, which is no longer a core.Config field", name)
	}
}

func TestStageCacheableGatesSimOnly(t *testing.T) {
	plain := core.Config{K: 4, Levels: 2}
	paths := plain
	paths.RecordPaths = true
	for _, st := range core.Stages() {
		if !StageCacheable(st, plain) {
			t.Errorf("stage %s should be cacheable for a plain config", st)
		}
	}
	if !StageCacheable(core.StageBuild, paths) || !StageCacheable(core.StagePlace, paths) {
		t.Error("build/place artifacts are lossless and must stay cacheable under RecordPaths")
	}
	if StageCacheable(core.StageSim, paths) {
		t.Error("sim artifacts drop the path diagnostics and must not be cacheable under RecordPaths")
	}
}
