// Package store is the durable tier of the repository's result cache: a
// content-addressed, append-only on-disk store of pipeline results keyed
// by a canonical hash of core.Config. It is what lets a result outlive
// the process that computed it — the in-memory memo cache of
// internal/sweep/memo answers repeats within a process, and this package
// answers repeats across processes, so any given (capacity, level,
// strategy, style, seed) grid point — the unit of the paper's entire
// §VIII evaluation — is computed once, ever, per store directory.
//
// # Layout
//
// A store directory holds two files:
//
//   - store.log — record payloads (JSON, one per result), written
//     back-to-back in append order;
//   - store.idx — fixed-width index entries, one per record, each
//     holding the record's key, its [offset, length) extent in the log,
//     a CRC of the payload, and a CRC of the entry itself.
//
// Both files are append-only; nothing is ever rewritten in place.
//
// # Crash safety
//
// Open recovers the longest valid prefix of the two files: index
// entries are replayed in order and validated (entry CRC, contiguous
// extents, payload CRC), and the first invalid entry — a torn write
// from a crash, a truncated log, flipped bits — ends the replay. Both
// files are then truncated back to the validated prefix, so a store
// that crashed mid-append reopens to exactly the records that were
// fully written, and the next append continues from there. The
// store_test.go property test drives this at every byte boundary.
//
// # What is stored
//
// Records hold the scalar outcome of a pipeline run (latency, area,
// volume, bounds, stalls — see Record), not the simulation itself:
// reports served from disk carry no Factory/Placement/Sim pointers.
// Configurations whose callers need those pointers (RecordPaths, i.e.
// trace rendering) are excluded by Cacheable and always recompute.
//
// Store is safe for concurrent use by multiple goroutines of one
// process, and Open refuses a directory this process already has open —
// two independently buffered writers would interleave appends and
// corrupt both files. Across processes there is no file locking: keep
// one writing process per directory at a time (readers that open after
// the writer closed are always safe).
package store
