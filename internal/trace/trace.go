// Package trace post-processes simulator runs into the diagnostics the
// paper's evaluation reasons about but never plots directly: braid
// concurrency over time, channel utilization, per-round timing breakdowns
// (how much of a multi-level factory's latency the inter-round
// permutation phases consume, the quantity §VII.B attacks), and compact
// ASCII sparklines for CLI reports.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"magicstate/internal/bravyi"
	"magicstate/internal/circuit"
	"magicstate/internal/mesh"
)

// Concurrency returns, per sample bin, the average number of simultaneously
// executing gates across the run: values[i] covers cycles
// [i*latency/bins, (i+1)*latency/bins). Zero-duration gates contribute
// nothing. bins must be >= 1.
func Concurrency(res *mesh.Result, bins int) ([]float64, error) {
	if bins < 1 {
		return nil, fmt.Errorf("trace: bins must be >= 1, got %d", bins)
	}
	if res.Latency == 0 {
		return make([]float64, bins), nil
	}
	// Sweep events: +1 at start, -1 at end, then integrate per bin.
	type event struct {
		t, d int
	}
	var evs []event
	for i := range res.Start {
		if res.Start[i] < 0 || res.End[i] <= res.Start[i] {
			continue
		}
		evs = append(evs, event{t: res.Start[i], d: +1}, event{t: res.End[i], d: -1})
	}
	sort.Slice(evs, func(a, b int) bool {
		if evs[a].t != evs[b].t {
			return evs[a].t < evs[b].t
		}
		return evs[a].d < evs[b].d // ends before starts at the same cycle
	})
	out := make([]float64, bins)
	binWidth := float64(res.Latency) / float64(bins)
	active := 0
	prev := 0
	addSpan := func(from, to, level int) {
		if to <= from || level == 0 {
			return
		}
		// Distribute level x (to-from) cycles across the touched bins.
		for t := from; t < to; {
			bin := int(float64(t) / binWidth)
			if bin >= bins {
				bin = bins - 1
			}
			binEnd := int(float64(bin+1) * binWidth)
			if binEnd <= t {
				binEnd = t + 1
			}
			if binEnd > to {
				binEnd = to
			}
			out[bin] += float64(level) * float64(binEnd-t)
			t = binEnd
		}
	}
	for _, e := range evs {
		addSpan(prev, e.t, active)
		active += e.d
		prev = e.t
	}
	for i := range out {
		out[i] /= binWidth
	}
	return out, nil
}

// BusyFraction returns the fraction of gates' total busy cycles relative
// to the run's latency times the circuit's gate count — a coarse whole-
// machine utilization figure in [0, 1] for non-degenerate runs.
func BusyFraction(res *mesh.Result) float64 {
	if res.Latency == 0 || len(res.Start) == 0 {
		return 0
	}
	busy := 0
	for i := range res.Start {
		if res.Start[i] >= 0 && res.End[i] > res.Start[i] {
			busy += res.End[i] - res.Start[i]
		}
	}
	return float64(busy) / (float64(res.Latency) * float64(len(res.Start)))
}

// RoundSpan is one factory round's realized timing.
type RoundSpan struct {
	Round int
	// PermStart/PermEnd bound the round's permutation phase in cycles
	// (zero-width for round 1).
	PermStart, PermEnd int
	// Start/End bound the whole round in cycles.
	Start, End int
}

// PermCycles returns the permutation window width.
func (r RoundSpan) PermCycles() int { return r.PermEnd - r.PermStart }

// Cycles returns the whole round width.
func (r RoundSpan) Cycles() int { return r.End - r.Start }

// RoundTimeline maps each factory round onto the cycles it actually
// occupied in a simulation, splitting out the inter-round permutation
// phase that hierarchical stitching optimizes (§VII.B).
func RoundTimeline(f *bravyi.Factory, res *mesh.Result) ([]RoundSpan, error) {
	if len(res.Start) != len(f.Circuit.Gates) {
		return nil, fmt.Errorf("trace: result covers %d gates, factory has %d",
			len(res.Start), len(f.Circuit.Gates))
	}
	spans := make([]RoundSpan, 0, len(f.Rounds))
	window := func(from, to int) (start, end int) {
		start, end = -1, 0
		for gi := from; gi < to; gi++ {
			if res.Start[gi] < 0 {
				continue
			}
			if start == -1 || res.Start[gi] < start {
				start = res.Start[gi]
			}
			if res.End[gi] > end {
				end = res.End[gi]
			}
		}
		if start == -1 {
			return 0, 0
		}
		return start, end
	}
	for _, r := range f.Rounds {
		sp := RoundSpan{Round: r.Index}
		sp.Start, sp.End = window(r.GateStart, r.GateEnd)
		if r.PermEnd > r.PermStart {
			sp.PermStart, sp.PermEnd = window(r.PermStart, r.PermEnd)
		}
		spans = append(spans, sp)
	}
	return spans, nil
}

// PermutationShare returns the fraction of total latency spent inside
// permutation windows across all rounds.
func PermutationShare(spans []RoundSpan, latency int) float64 {
	if latency == 0 {
		return 0
	}
	perm := 0
	for _, s := range spans {
		perm += s.PermCycles()
	}
	return float64(perm) / float64(latency)
}

// KindBreakdown sums busy cycles per gate kind, the per-class view of
// where a run's time goes.
func KindBreakdown(c *circuit.Circuit, res *mesh.Result) (map[circuit.Kind]int, error) {
	if len(res.Start) != len(c.Gates) {
		return nil, fmt.Errorf("trace: result covers %d gates, circuit has %d",
			len(res.Start), len(c.Gates))
	}
	out := make(map[circuit.Kind]int)
	for i := range c.Gates {
		if res.Start[i] >= 0 && res.End[i] > res.Start[i] {
			out[c.Gates[i].Kind] += res.End[i] - res.Start[i]
		}
	}
	return out, nil
}

// sparkLevels are the eight block characters of a sparkline.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a fixed-width ASCII sparkline, resampling
// by averaging. An empty input or all-zero input renders as width spaces.
func Sparkline(values []float64, width int) string {
	if width < 1 || len(values) == 0 {
		return ""
	}
	// Resample to width buckets.
	buckets := make([]float64, width)
	per := float64(len(values)) / float64(width)
	for i := 0; i < width; i++ {
		lo := int(float64(i) * per)
		hi := int(float64(i+1) * per)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > len(values) {
			hi = len(values)
		}
		var s float64
		for _, v := range values[lo:hi] {
			s += v
		}
		buckets[i] = s / float64(hi-lo)
	}
	var max float64
	for _, v := range buckets {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range buckets {
		if max <= 0 {
			b.WriteRune(' ')
			continue
		}
		idx := int(v / max * float64(len(sparkLevels)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkLevels) {
			idx = len(sparkLevels) - 1
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

// WriteReport renders a compact utilization report for a simulated
// factory: overall numbers, a concurrency sparkline, per-round timing
// with permutation shares, and a per-kind cycle breakdown.
func WriteReport(w io.Writer, f *bravyi.Factory, res *mesh.Result) error {
	conc, err := Concurrency(res, 60)
	if err != nil {
		return err
	}
	spans, err := RoundTimeline(f, res)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "latency %d cycles, area %d tiles, stalls %d, busy fraction %.3f\n",
		res.Latency, res.Area, res.Stalls, BusyFraction(res))
	fmt.Fprintf(w, "concurrency %s\n", Sparkline(conc, 60))
	for _, s := range spans {
		fmt.Fprintf(w, "round %d: cycles [%d,%d)", s.Round, s.Start, s.End)
		if s.PermCycles() > 0 {
			fmt.Fprintf(w, ", permutation [%d,%d) = %d cycles", s.PermStart, s.PermEnd, s.PermCycles())
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "permutation share of latency: %.3f\n", PermutationShare(spans, res.Latency))
	kinds, err := KindBreakdown(f.Circuit, res)
	if err != nil {
		return err
	}
	var ks []circuit.Kind
	for k := range kinds {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(a, b int) bool { return kinds[ks[a]] > kinds[ks[b]] })
	for _, k := range ks {
		fmt.Fprintf(w, "  %-12s %d busy cycles\n", k.String(), kinds[k])
	}
	return nil
}
