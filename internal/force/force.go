// Package force implements the force-directed annealing mapper of
// §VI.B.1. Starting from an initial placement (the paper transforms the
// hand-optimized linear mapping), it iteratively computes three families
// of forces on each vertex of the interaction graph —
//
//   - vertex-vertex attraction toward the centroid of its neighborhood
//     (edge length reduction),
//   - edge-edge repulsion between edge midpoints with inverse-square
//     falloff (edge spacing maximization),
//   - magnetic-dipole rotation derived from a per-timestep 2-coloring of
//     the qubits, preferring (anti-)parallel edges over crossing ones,
//
// — then proposes moving vertices one tile along their net force, gated by
// a cost function over average edge length, edge spacing and crossing
// count. When the local search converges, community-level escape moves
// (repulsing whole communities apart or attracting a fragmented
// community's k-means clusters together) kick the mapping out of the
// local minimum, as the paper describes.
package force

import (
	"math"
	"math/rand"

	"magicstate/internal/circuit"
	"magicstate/internal/cluster"
	"magicstate/internal/graph"
	"magicstate/internal/layout"
)

// Options tunes the annealer.
type Options struct {
	// Iterations caps force sweeps; 0 picks a size-dependent default.
	Iterations int
	// Seed drives proposal order, community detection and k-means.
	Seed int64
	// WAttract, WRepulse, WDipole weight the three force families.
	// Zero values take defaults (1, 1, 1).
	WAttract, WRepulse, WDipole float64
	// CostSample caps how many other edges are consulted when estimating
	// a move's effect on crossings and spacing (0 = 400); keeps large
	// factories tractable, as the paper's own O(m^2) analysis warns.
	CostSample int
	// MarginRows adds free rows above and below the initial placement so
	// the line can fold into 2-D; 0 picks 3.
	MarginRows int
	// DisableDipole and DisableCommunity switch off individual heuristics
	// for ablation benches.
	DisableDipole    bool
	DisableCommunity bool
}

func (o *Options) fill(n int) {
	if o.Iterations == 0 {
		switch {
		case n <= 200:
			o.Iterations = 120
		case n <= 1000:
			o.Iterations = 40
		default:
			o.Iterations = 30
		}
	}
	if o.WAttract == 0 {
		o.WAttract = 1
	}
	if o.WRepulse == 0 {
		o.WRepulse = 1
	}
	if o.WDipole == 0 {
		o.WDipole = 1
	}
	if o.CostSample == 0 {
		o.CostSample = 400
	}
	if o.MarginRows == 0 {
		o.MarginRows = 4
	}
}

// Anneal returns an optimized copy of init. c supplies the schedule used
// for the dipole 2-coloring; it must be the circuit g was built from.
func Anneal(g *graph.Graph, c *circuit.Circuit, init *layout.Placement, opt Options) *layout.Placement {
	opt.fill(g.N)
	rng := rand.New(rand.NewSource(opt.Seed))

	// Work on an expanded canvas so vertices can leave the initial hull.
	p := init.Clone()
	p.Normalize()
	margin := opt.MarginRows
	for q := range p.Pos {
		p.Pos[q].X += margin
		p.Pos[q].Y += margin
	}
	p.W += 2 * margin
	p.H += 2 * margin

	var poles []int
	if !opt.DisableDipole {
		poles = graph.Poles(c)
	}
	var comm []int
	commCount := 0
	if !opt.DisableCommunity {
		comm, commCount = graph.Communities(g, rng)
	}

	st := newState(g, p, opt, rng)
	stuck := 0
	for iter := 0; iter < opt.Iterations; iter++ {
		// Community attraction alternates with force sweeps: it compacts
		// each community around its centroid with forced moves, escaping
		// the 1-D local minima the cost-gated sweep cannot leave.
		if !opt.DisableCommunity && commCount > 1 && iter%2 == 1 {
			st.communityAttract(comm, commCount)
		}
		moved := st.sweep(poles)
		if moved == 0 {
			stuck++
			if !opt.DisableCommunity && commCount > 1 {
				st.communityKick(comm, commCount)
			}
			if stuck >= 3 {
				break
			}
		} else {
			stuck = 0
		}
	}
	st.p.Normalize()
	return st.p
}

// state carries the incremental bookkeeping of one annealing run.
type state struct {
	g   *graph.Graph
	p   *layout.Placement
	opt Options
	rng *rand.Rand
	occ map[layout.Point]int // tile -> qubit
	// incident[v] lists edge indices touching v.
	incident [][]int
}

func newState(g *graph.Graph, p *layout.Placement, opt Options, rng *rand.Rand) *state {
	st := &state{g: g, p: p, opt: opt, rng: rng, occ: map[layout.Point]int{}}
	for q, pt := range p.Pos {
		st.occ[pt] = q
	}
	st.incident = make([][]int, g.N)
	for ei, e := range g.Edges {
		st.incident[e.U] = append(st.incident[e.U], ei)
		st.incident[e.V] = append(st.incident[e.V], ei)
	}
	return st
}

// forceOn computes the net force vector on vertex v.
func (st *state) forceOn(v int, poles []int) (fx, fy float64) {
	pv := st.p.At(v)
	// Attraction to neighborhood centroid.
	var cx, cy, wsum float64
	st.g.Neighbors(v, func(u int, w float64) {
		pu := st.p.At(u)
		cx += w * float64(pu.X)
		cy += w * float64(pu.Y)
		wsum += w
	})
	if wsum > 0 {
		fx += st.opt.WAttract * (cx/wsum - float64(pv.X))
		fy += st.opt.WAttract * (cy/wsum - float64(pv.Y))
	}
	// Edge-edge repulsion: push v's edges' midpoints away from sampled
	// other midpoints, inverse-square in midpoint distance.
	if len(st.g.Edges) > 1 {
		sample := st.opt.CostSample
		for _, ei := range st.incident[v] {
			mvx, mvy := st.midpoint(ei)
			for s := 0; s < sample; s++ {
				oi := st.rng.Intn(len(st.g.Edges))
				if oi == ei {
					continue
				}
				mox, moy := st.midpoint(oi)
				dx, dy := mvx-mox, mvy-moy
				d2 := dx*dx + dy*dy
				if d2 < 0.25 {
					d2 = 0.25
				}
				if d2 > 64 { // cutoff: distant edges contribute nothing
					continue
				}
				inv := st.opt.WRepulse / d2
				norm := math.Sqrt(d2)
				fx += inv * dx / norm
				fy += inv * dy / norm
			}
			if sample > 8 {
				sample = 8 // first incident edge dominates; keep the rest cheap
			}
		}
	}
	// Dipole rotation: like poles repel, opposite poles attract, with
	// inverse-square falloff, over a sample of vertices.
	if poles != nil {
		for s := 0; s < 32; s++ {
			u := st.rng.Intn(st.g.N)
			if u == v {
				continue
			}
			pu := st.p.At(u)
			dx := float64(pv.X - pu.X)
			dy := float64(pv.Y - pu.Y)
			d2 := dx*dx + dy*dy
			if d2 < 0.25 {
				d2 = 0.25
			}
			if d2 > 36 {
				continue
			}
			sign := -1.0 // opposite poles attract (pull toward u)
			if poles[v] == poles[u] {
				sign = 1.0
			}
			inv := st.opt.WDipole * sign / d2
			norm := math.Sqrt(d2)
			fx += inv * dx / norm
			fy += inv * dy / norm
		}
	}
	return fx, fy
}

func (st *state) midpoint(ei int) (float64, float64) {
	e := st.g.Edges[ei]
	a, b := st.p.At(e.U), st.p.At(e.V)
	return float64(a.X+b.X) / 2, float64(a.Y+b.Y) / 2
}

// sweep proposes one move per vertex along its force and returns how many
// were accepted.
func (st *state) sweep(poles []int) int {
	order := st.rng.Perm(st.g.N)
	moved := 0
	for _, v := range order {
		fx, fy := st.forceOn(v, poles)
		if fx == 0 && fy == 0 {
			continue
		}
		step := layout.Point{X: intSign(fx), Y: intSign(fy)}
		// Prefer the dominant axis; fall back to the other.
		if math.Abs(fx) < math.Abs(fy) {
			if st.tryMove(v, layout.Point{X: 0, Y: step.Y}) || st.tryMove(v, layout.Point{X: step.X, Y: 0}) {
				moved++
			}
		} else {
			if st.tryMove(v, layout.Point{X: step.X, Y: 0}) || st.tryMove(v, layout.Point{X: 0, Y: step.Y}) {
				moved++
			}
		}
	}
	return moved
}

func intSign(f float64) int {
	switch {
	case f > 0.25:
		return 1
	case f < -0.25:
		return -1
	}
	return 0
}

// tryMove attempts to move v by delta (to a free tile, or swapping with
// the occupant) and keeps the move only if the sampled cost does not
// increase.
func (st *state) tryMove(v int, delta layout.Point) bool {
	if delta == (layout.Point{}) {
		return false
	}
	from := st.p.At(v)
	to := layout.Point{X: from.X + delta.X, Y: from.Y + delta.Y}
	if to.X < 0 || to.X >= st.p.W || to.Y < 0 || to.Y >= st.p.H {
		return false
	}
	occupant, swap := st.occ[to]
	// Sample the comparison edge set once so before/after scores differ
	// only through the move, not through sampling noise.
	sample := st.sampleEdgeSet()
	before := st.localCost(v, sample)
	if swap {
		before += st.localCost(occupant, sample)
	}
	st.apply(v, to, occupant, swap, from)
	after := st.localCost(v, sample)
	if swap {
		after += st.localCost(occupant, sample)
	}
	if after <= before {
		return true
	}
	// Revert.
	st.apply(v, from, occupant, swap, to)
	return false
}

func (st *state) apply(v int, to layout.Point, occupant int, swap bool, from layout.Point) {
	if swap {
		st.p.Set(occupant, from)
		st.occ[from] = occupant
	} else {
		delete(st.occ, from)
	}
	st.p.Set(v, to)
	st.occ[to] = v
}

// sampleEdgeSet draws the comparison edges used for one move evaluation.
// Small graphs compare against every edge; large ones against a random
// subset of CostSample edges.
func (st *state) sampleEdgeSet() []int {
	m := len(st.g.Edges)
	if m <= st.opt.CostSample {
		all := make([]int, m)
		for i := range all {
			all[i] = i
		}
		return all
	}
	sample := make([]int, st.opt.CostSample)
	for i := range sample {
		sample[i] = st.rng.Intn(m)
	}
	return sample
}

// localCost scores vertex v's edges against the given comparison edges:
// weighted length plus crossing count minus spacing, mirroring the
// paper's cost metric locally.
func (st *state) localCost(v int, sample []int) float64 {
	const crossWeight = 4.0
	const spacingWeight = 0.5
	var cost float64
	edges := st.incident[v]
	if len(edges) == 0 {
		return 0
	}
	for _, ei := range edges {
		e := st.g.Edges[ei]
		a, b := st.p.At(e.U), st.p.At(e.V)
		cost += e.Weight * float64(layout.Manhattan(a, b))
		seg := layout.Segment{A: a, B: b}
		mx, my := st.midpoint(ei)
		for _, oi := range sample {
			if oi == ei {
				continue
			}
			oe := st.g.Edges[oi]
			oseg := layout.Segment{A: st.p.At(oe.U), B: st.p.At(oe.V)}
			if layout.SegmentsConflict(seg, oseg) {
				cost += crossWeight
			}
			ox, oy := st.midpoint(oi)
			dx, dy := mx-ox, my-oy
			// The spacing penalty only fires under distance 8; comparing
			// squared distances first skips the Sqrt for the typical far
			// pair without changing any cost value.
			if d2 := dx*dx + dy*dy; d2 < 64 {
				cost += spacingWeight * (8 - math.Sqrt(d2)) / 8
			}
		}
	}
	return cost
}

// communityAttract compacts every community toward a square block
// centered on its centroid: each member is assigned a target slot inside
// the block (row-major, members ordered by current position) and forced
// one step toward it, moving only onto free tiles but ignoring the local
// cost gate. These are the paper's forced community moves — they break
// the 1-D local minima (a flat line exerts no vertical force at all) and
// the following sweep re-polishes. The block shape is what "attract all
// nodes within a single community together" converges to on a grid.
func (st *state) communityAttract(comm []int, commCount int) {
	members := make([][]int, commCount)
	for v, cid := range comm {
		members[cid] = append(members[cid], v)
	}
	for _, vs := range members {
		if len(vs) < 3 {
			continue
		}
		cx, cy := st.p.CenterOfMass(vs)
		// Block dimensions with ~20% slack.
		side := 1
		for side*side < len(vs)*6/5 {
			side++
		}
		// Order members by current position (row-major) so targets keep
		// relative order and moves do not cross each other. members was
		// built fresh above, so the sort can run in place.
		ordered := vs
		sortBy(ordered, func(a, b int) bool {
			pa, pb := st.p.At(a), st.p.At(b)
			if pa.Y != pb.Y {
				return pa.Y < pb.Y
			}
			return pa.X < pb.X
		})
		x0 := int(cx) - side/2
		y0 := int(cy) - side/2
		for i, v := range ordered {
			tx := x0 + i%side
			ty := y0 + i/side
			pt := st.p.At(v)
			dx := intSign(float64(tx - pt.X))
			dy := intSign(float64(ty - pt.Y))
			if dx == 0 && dy == 0 {
				continue
			}
			st.forcedMove(v, layout.Point{X: dx, Y: dy})
		}
	}
}

// forcedMove relocates v by delta when the destination tile is free (or
// one axis of it is); it never swaps and never consults the cost gate.
func (st *state) forcedMove(v int, delta layout.Point) bool {
	from := st.p.At(v)
	for _, d := range []layout.Point{delta, {X: delta.X, Y: 0}, {X: 0, Y: delta.Y}} {
		if d == (layout.Point{}) {
			continue
		}
		to := layout.Point{X: from.X + d.X, Y: from.Y + d.Y}
		if to.X < 0 || to.X >= st.p.W || to.Y < 0 || to.Y >= st.p.H {
			continue
		}
		if _, occupied := st.occ[to]; occupied {
			continue
		}
		st.apply(v, to, 0, false, from)
		return true
	}
	return false
}

func sortBy(xs []int, less func(a, b int) bool) {
	// Insertion sort: community member lists are small enough and this
	// avoids importing sort with closure allocation in the hot path.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && less(xs[j], xs[j-1]); j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// communityKick applies the paper's two community-level escape moves: it
// pushes distinct communities' centers apart and pulls each fragmented
// community's k-means clusters toward their joint center.
func (st *state) communityKick(comm []int, commCount int) {
	// Gather members and centers.
	members := make([][]int, commCount)
	for v, cid := range comm {
		members[cid] = append(members[cid], v)
	}
	for cid, vs := range members {
		if len(vs) < 2 {
			continue
		}
		// Cluster the community spatially; if split, attract clusters
		// toward the community centroid.
		pts := make([]cluster.Point, len(vs))
		for i, v := range vs {
			pt := st.p.At(v)
			pts[i] = cluster.Point{X: float64(pt.X), Y: float64(pt.Y)}
		}
		kk := 2
		res := cluster.KMeans(pts, kk, 25, st.rng)
		if len(res.Centroids) < 2 {
			continue
		}
		ccx, ccy := st.p.CenterOfMass(vs)
		for i, v := range vs {
			ctr := res.Centroids[res.Assign[i]]
			// Move cluster members one step from their cluster centroid
			// toward the community centroid.
			dx := intSign(ccx - ctr.X)
			dy := intSign(ccy - ctr.Y)
			if dx == 0 && dy == 0 {
				continue
			}
			st.tryMove(v, layout.Point{X: dx, Y: dy})
		}
		_ = cid
	}
}
