package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"magicstate/internal/httpclient"
	"magicstate/internal/store"
)

// Options configures a Fabric. Self and Nodes are required; everything
// else has a serviceable default.
type Options struct {
	// Self is this node's id. It must appear in Nodes.
	Self string
	// Nodes is the full cluster membership, this node included. All
	// nodes must be configured with the same set (order irrelevant) or
	// they will disagree about key ownership — which degrades to
	// fallback computes, not wrong answers, but wastes the cluster.
	Nodes []string
	// URLs maps peer node ids to their base URLs (e.g.
	// "http://10.0.0.2:8080"). Entries may also be added later with
	// SetURL; a peer without a URL is treated as unreachable.
	URLs map[string]string
	// BreakerThreshold is how many consecutive failures open a peer's
	// circuit breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before
	// admitting a half-open probe (default 1s).
	BreakerCooldown time.Duration
	// Timeout bounds each individual peer call (default 2s). The
	// fallback path exists precisely so a slow peer cannot make a
	// request slower than Timeout + local compute.
	Timeout time.Duration
	// Replicate enables best-effort async replication of locally
	// computed, locally owned records to the key's ring successor.
	Replicate bool
	// Client overrides the retrying HTTP client used for peer calls.
	// The default is tuned tighter than the zero httpclient.Client
	// (2 attempts, 50ms base delay) because every fabric call has a
	// local fallback — it is better to give up fast than to retry long.
	Client *httpclient.Client
	// Now is the clock used by breakers (default time.Now); tests
	// inject a fake to step through breaker transitions.
	Now func() time.Time
}

// repQueueDepth bounds the replication backlog. Replication is
// best-effort: when the queue is full new records are dropped (and
// counted) rather than applying backpressure to the compute path.
const repQueueDepth = 256

// repJob is one queued replication: push payload for key to a peer.
type repJob struct {
	key     store.Key
	payload []byte
	target  string
}

// peerState is everything the fabric tracks per peer: its circuit
// breaker and the counters the metrics registry exports.
type peerState struct {
	breaker *Breaker

	fetchHits       atomic.Int64
	fetchMisses     atomic.Int64
	fetchFailures   atomic.Int64
	fetchRejected   atomic.Int64
	forwards        atomic.Int64
	forwardFailures atomic.Int64
	repSent         atomic.Int64
	repFailed       atomic.Int64
}

// Fabric routes store keys across a static set of shared-nothing msfud
// nodes: it answers who owns a key, fetches owned records from peers
// (read-through), forwards evaluations to owners, and replicates local
// results to ring successors. Every peer interaction is breaker-gated
// and byte-verified, and every method degrades to "not available —
// compute locally" rather than returning an error the request path
// would have to handle. Safe for concurrent use.
type Fabric struct {
	self      string
	ring      *Ring
	client    *httpclient.Client
	timeout   time.Duration
	replicate bool

	mu    sync.RWMutex
	urls  map[string]string
	peers map[string]*peerState

	repCh            chan repJob
	fallbackComputes atomic.Int64
	repDropped       atomic.Int64
}

// New builds a Fabric over opts. It fails only on membership errors
// (empty set, empty id, Self not a member).
func New(opts Options) (*Fabric, error) {
	ring, err := NewRing(opts.Nodes)
	if err != nil {
		return nil, err
	}
	found := false
	for _, n := range ring.Nodes() {
		if n == opts.Self {
			found = true
		}
	}
	if !found {
		return nil, errSelfNotMember(opts.Self)
	}
	threshold := opts.BreakerThreshold
	if threshold <= 0 {
		threshold = 3
	}
	cooldown := opts.BreakerCooldown
	if cooldown <= 0 {
		cooldown = time.Second
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	client := opts.Client
	if client == nil {
		client = &httpclient.Client{
			MaxAttempts: 2,
			BaseDelay:   50 * time.Millisecond,
			MaxDelay:    500 * time.Millisecond,
		}
	}
	f := &Fabric{
		self:      opts.Self,
		ring:      ring,
		client:    client,
		timeout:   timeout,
		replicate: opts.Replicate,
		urls:      map[string]string{},
		peers:     map[string]*peerState{},
		repCh:     make(chan repJob, repQueueDepth),
	}
	for _, n := range ring.Nodes() {
		if n == opts.Self {
			continue
		}
		f.peers[n] = &peerState{breaker: NewBreaker(threshold, cooldown, opts.Now)}
	}
	for n, u := range opts.URLs {
		f.SetURL(n, u)
	}
	return f, nil
}

type errSelfNotMember string

func (e errSelfNotMember) Error() string {
	return "fabric: self node " + string(e) + " is not in the configured node set"
}

// Self returns this node's id.
func (f *Fabric) Self() string { return f.self }

// Nodes returns the cluster membership in sorted order.
func (f *Fabric) Nodes() []string { return f.ring.Nodes() }

// SetURL records a peer's base URL. Setting the self node or an unknown
// node is ignored.
func (f *Fabric) SetURL(node, url string) {
	if node == f.self {
		return
	}
	if _, ok := f.peers[node]; !ok {
		return
	}
	f.mu.Lock()
	f.urls[node] = url
	f.mu.Unlock()
}

// URL returns a peer's base URL, or "" if none is known.
func (f *Fabric) URL(node string) string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.urls[node]
}

// Owner names the node owning key k.
func (f *Fabric) Owner(k store.Key) string { return f.ring.Owner(k) }

// noForwardKey marks contexts whose work arrived from a peer and must
// not be forwarded again.
type noForwardKey struct{}

// NoForward marks ctx so that Evaluate refuses to forward work derived
// from it. The /v1/fabric/eval handler applies it to every forwarded
// evaluation, which is what makes a one-hop routing fabric instead of a
// loop: an evaluation crosses the wire at most once, after which the
// receiving node computes locally no matter what its ring says.
func NoForward(ctx context.Context) context.Context {
	return context.WithValue(ctx, noForwardKey{}, true)
}

func isNoForward(ctx context.Context) bool {
	v, _ := ctx.Value(noForwardKey{}).(bool)
	return v
}

// peer returns the peer state and URL for a node, or ok=false when the
// node is self, unknown, or has no URL yet.
func (f *Fabric) peer(node string) (*peerState, string, bool) {
	ps, ok := f.peers[node]
	if !ok {
		return nil, "", false
	}
	url := f.URL(node)
	if url == "" {
		return ps, "", false
	}
	return ps, url, true
}

// Fetch implements the store's read-through peer tier: if k is owned by
// a reachable peer, fetch its record bytes and byte-verify them. ok is
// false whenever the fabric cannot produce a verified record — key
// owned locally, peer unknown/breaker open/unreachable, record absent,
// or payload failing digest or key verification — and the caller
// proceeds exactly as it would without a fabric.
func (f *Fabric) Fetch(ctx context.Context, k store.Key) ([]byte, bool) {
	owner := f.ring.Owner(k)
	if owner == f.self {
		return nil, false
	}
	ps, url, ok := f.peer(owner)
	if !ok || !ps.breaker.Allow() {
		return nil, false
	}
	cctx, cancel := context.WithTimeout(ctx, f.timeout)
	defer cancel()
	var env RecordEnvelope
	status, err := f.client.GetJSON(cctx, url+"/v1/record/"+k.String(), &env)
	switch {
	case err == nil && status == http.StatusOK:
		payload, verr := env.Verify(k)
		if verr != nil {
			// The peer answered but the bytes are wrong: count the
			// rejection and treat the peer as failing, so a node serving
			// rot trips its breaker like a dead one.
			ps.fetchRejected.Add(1)
			ps.breaker.Failure()
			return nil, false
		}
		ps.fetchHits.Add(1)
		ps.breaker.Success()
		return payload, true
	case err == nil && status == http.StatusNotFound:
		// A healthy peer that simply has not computed the point yet.
		ps.fetchMisses.Add(1)
		ps.breaker.Success()
		return nil, false
	default:
		ps.fetchFailures.Add(1)
		ps.breaker.Failure()
		return nil, false
	}
}

// Evaluate forwards a point evaluation to the owner of k and returns
// the verified record bytes the owner computed. ok=false means "the
// fabric did not evaluate this point — compute it locally"; when the
// point is genuinely owned by a peer that could not serve it, the
// miss is additionally counted as a fallback compute, which is the
// number the failover tests reconcile against orphaned points.
func (f *Fabric) Evaluate(ctx context.Context, k store.Key, cfgJSON []byte) ([]byte, bool) {
	if isNoForward(ctx) {
		return nil, false
	}
	owner := f.ring.Owner(k)
	if owner == f.self {
		return nil, false
	}
	ps, url, ok := f.peer(owner)
	if !ok {
		f.fallbackComputes.Add(1)
		return nil, false
	}
	if !ps.breaker.Allow() {
		f.fallbackComputes.Add(1)
		return nil, false
	}
	cctx, cancel := context.WithTimeout(ctx, f.timeout)
	defer cancel()
	var env RecordEnvelope
	status, err := f.client.PostJSON(cctx, url+"/v1/fabric/eval",
		EvalRequest{Key: k.String(), Config: json.RawMessage(cfgJSON)}, &env)
	if err != nil || status != http.StatusOK {
		ps.forwardFailures.Add(1)
		ps.breaker.Failure()
		f.fallbackComputes.Add(1)
		return nil, false
	}
	payload, verr := env.Verify(k)
	if verr != nil {
		ps.forwardFailures.Add(1)
		ps.breaker.Failure()
		f.fallbackComputes.Add(1)
		return nil, false
	}
	ps.forwards.Add(1)
	ps.breaker.Success()
	return payload, true
}

// NotifyPut is the store's on-put hook: when this node freshly persists
// a record it owns, the record is queued for best-effort replication to
// the key's ring successor. Records owned by other nodes (fallback
// computes, forwarded-eval admissions) are not replicated — their
// owners are responsible for them. A full queue drops the record and
// counts the drop.
func (f *Fabric) NotifyPut(k store.Key, payload []byte) {
	if !f.replicate {
		return
	}
	if f.ring.Owner(k) != f.self {
		return
	}
	succ := f.ring.Successor(k)
	if succ == "" || succ == f.self {
		return
	}
	select {
	case f.repCh <- repJob{key: k, payload: payload, target: succ}:
	default:
		f.repDropped.Add(1)
	}
}

// Run drives the fabric's background work until ctx ends: the
// replication worker draining NotifyPut's queue, and a prober that
// health-checks peers whose breakers are open so they close again from
// idle (without waiting for live traffic to spend its probe).
func (f *Fabric) Run(ctx context.Context) {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		f.runReplication(ctx)
	}()
	go func() {
		defer wg.Done()
		f.runProber(ctx)
	}()
	wg.Wait()
}

// runReplication drains the replication queue, PUTting each record's
// envelope to its target peer. Failures count but are not retried
// beyond the HTTP client's own attempts — replication is an
// optimization, and correctness never depends on it.
func (f *Fabric) runReplication(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case job := <-f.repCh:
			f.replicateOne(ctx, job)
		}
	}
}

func (f *Fabric) replicateOne(ctx context.Context, job repJob) {
	ps, url, ok := f.peer(job.target)
	if !ok || !ps.breaker.Allow() {
		if ps != nil {
			ps.repFailed.Add(1)
		}
		return
	}
	cctx, cancel := context.WithTimeout(ctx, f.timeout)
	defer cancel()
	body, err := json.Marshal(NewEnvelope(job.key, job.payload))
	if err != nil {
		ps.repFailed.Add(1)
		return
	}
	req, err := http.NewRequestWithContext(cctx, http.MethodPut,
		url+"/v1/record/"+job.key.String(), bytes.NewReader(body))
	if err != nil {
		ps.repFailed.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.client.Do(req)
	if err != nil {
		ps.repFailed.Add(1)
		ps.breaker.Failure()
		return
	}
	resp.Body.Close()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		ps.repSent.Add(1)
		ps.breaker.Success()
		return
	}
	ps.repFailed.Add(1)
	ps.breaker.Failure()
}

// proberInterval is how often the background prober scans for open
// breakers. Small enough that a recovered peer rejoins within a couple
// of cooldown windows, large enough to be noise at cluster scale.
const proberInterval = 500 * time.Millisecond

// runProber periodically pings peers whose breakers are not closed. The
// ping goes through Allow, so it is the half-open probe when one is
// due; its success re-closes the breaker before any live request has to
// gamble on the peer.
func (f *Fabric) runProber(ctx context.Context) {
	t := time.NewTicker(proberInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			for node, ps := range f.peers {
				if ps.breaker.State() == BreakerClosed {
					continue
				}
				_, url, ok := f.peer(node)
				if !ok || !ps.breaker.Allow() {
					continue
				}
				cctx, cancel := context.WithTimeout(ctx, f.timeout)
				status, err := f.client.GetJSON(cctx, url+"/v1/ping", nil)
				cancel()
				if err == nil && status == http.StatusOK {
					ps.breaker.Success()
				} else {
					ps.breaker.Failure()
				}
			}
		}
	}
}

// PeerSnapshot is one peer's counters at a point in time, as exported
// through /v1/stats and /metrics.
type PeerSnapshot struct {
	// Node is the peer's id.
	Node string `json:"node"`
	// Breaker is the breaker position ("closed", "open", "half-open").
	Breaker string `json:"breaker"`
	// BreakerOpened counts closed→open transitions.
	BreakerOpened int64 `json:"breaker_opened"`
	// FetchHits counts verified records fetched from this peer.
	FetchHits int64 `json:"fetch_hits"`
	// FetchMisses counts clean 404s (peer healthy, record absent).
	FetchMisses int64 `json:"fetch_misses"`
	// FetchFailures counts transport errors and unexpected statuses.
	FetchFailures int64 `json:"fetch_failures"`
	// FetchRejected counts responses discarded by byte verification.
	FetchRejected int64 `json:"fetch_rejected"`
	// Forwards counts evaluations this peer served as owner.
	Forwards int64 `json:"forwards"`
	// ForwardFailures counts forwarded evaluations that failed over to
	// local compute.
	ForwardFailures int64 `json:"forward_failures"`
	// ReplicationSent counts records successfully replicated to this
	// peer.
	ReplicationSent int64 `json:"replication_sent"`
	// ReplicationFailed counts replication attempts that did not land.
	ReplicationFailed int64 `json:"replication_failed"`
}

// Snapshot is the fabric's full observable state at a point in time.
type Snapshot struct {
	// Self is this node's id.
	Self string `json:"self"`
	// Nodes is the cluster membership.
	Nodes []string `json:"nodes"`
	// Peers holds per-peer counters, sorted by node id.
	Peers []PeerSnapshot `json:"peers"`
	// FallbackComputes counts peer-owned points this node computed
	// locally because their owner could not serve them.
	FallbackComputes int64 `json:"fallback_computes"`
	// ReplicationQueue is the current replication backlog length.
	ReplicationQueue int `json:"replication_queue"`
	// ReplicationDropped counts records dropped on a full queue.
	ReplicationDropped int64 `json:"replication_dropped"`
}

// Stats returns a consistent-enough snapshot of the fabric's counters
// for /v1/stats, /v1/cluster and the metrics registry.
func (f *Fabric) Stats() Snapshot {
	s := Snapshot{
		Self:               f.self,
		Nodes:              f.ring.Nodes(),
		FallbackComputes:   f.fallbackComputes.Load(),
		ReplicationQueue:   len(f.repCh),
		ReplicationDropped: f.repDropped.Load(),
	}
	for node, ps := range f.peers {
		s.Peers = append(s.Peers, PeerSnapshot{
			Node:              node,
			Breaker:           ps.breaker.State().String(),
			BreakerOpened:     ps.breaker.opened.Load(),
			FetchHits:         ps.fetchHits.Load(),
			FetchMisses:       ps.fetchMisses.Load(),
			FetchFailures:     ps.fetchFailures.Load(),
			FetchRejected:     ps.fetchRejected.Load(),
			Forwards:          ps.forwards.Load(),
			ForwardFailures:   ps.forwardFailures.Load(),
			ReplicationSent:   ps.repSent.Load(),
			ReplicationFailed: ps.repFailed.Load(),
		})
	}
	sort.Slice(s.Peers, func(i, j int) bool { return s.Peers[i].Node < s.Peers[j].Node })
	return s
}
