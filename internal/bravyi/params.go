// Package bravyi generates Bravyi-Haah (3k+8) -> k magic-state distillation
// circuits and the multi-level block-code factories built from them
// (paper §II.F-II.G and the Fig. 5 Scaffold listing). A factory is a
// circuit.Circuit plus the structural metadata (rounds, modules, inter-round
// permutation wires) that the mapping and stitching optimizers exploit.
package bravyi

import (
	"fmt"
	"math"

	"magicstate/internal/circuit"
)

// Params configures a block-code factory.
type Params struct {
	// K is the per-module output count k of the (3k+8) -> k protocol.
	K int
	// Levels is the block-code recursion depth L; the factory outputs
	// K^L states per run.
	Levels int
	// Reuse enables sharing-after-measurement qubit reuse (§V.B): later
	// rounds rename qubits measured in earlier rounds instead of
	// allocating fresh ones, trading false dependencies for area.
	Reuse bool
	// Barriers inserts a scheduling fence between rounds (§V.A), exposing
	// the per-round planar structure to the mappers.
	Barriers bool
	// Assigner customizes which measured qubits later rounds reuse. Nil
	// selects the default contiguous policy. Only consulted when Reuse.
	Assigner ReuseAssigner
}

// ReuseAssigner picks `need` qubit ids from pool (ids already measured and
// safe to rename) for the module with the given round and in-round index.
// Implementations must return ids drawn from pool without repetition; the
// returned slice length may be shorter than need, in which case fresh
// qubits cover the remainder. Hierarchical stitching supplies a
// placement-aware assigner (§VII.B.1).
type ReuseAssigner func(round, moduleInRound, need int, pool []circuit.Qubit) []circuit.Qubit

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.K < 1 {
		return fmt.Errorf("bravyi: K must be >= 1, got %d", p.K)
	}
	if p.Levels < 1 {
		return fmt.Errorf("bravyi: Levels must be >= 1, got %d", p.Levels)
	}
	return nil
}

// Capacity returns the factory's total output count K^Levels.
func (p Params) Capacity() int {
	c := 1
	for i := 0; i < p.Levels; i++ {
		c *= p.K
	}
	return c
}

// Inputs returns the number of raw input states consumed per run,
// (3K+8)^Levels.
func (p Params) Inputs() int {
	c := 1
	for i := 0; i < p.Levels; i++ {
		c *= 3*p.K + 8
	}
	return c
}

// ModulesInRound returns the number of Bravyi-Haah modules in round r
// (1-based): (3K+8)^(L-r) * K^(r-1).
func (p Params) ModulesInRound(r int) int {
	n := 1
	for i := 0; i < p.Levels-r; i++ {
		n *= 3*p.K + 8
	}
	for i := 0; i < r-1; i++ {
		n *= p.K
	}
	return n
}

// TotalModules returns the module count across all rounds.
func (p Params) TotalModules() int {
	n := 0
	for r := 1; r <= p.Levels; r++ {
		n += p.ModulesInRound(r)
	}
	return n
}

// QubitsPerModule returns the full logical-qubit footprint of a round-1
// module: 3K+8 raw + K+5 ancilla + K output = 5K+13 (§II.F). Later rounds
// allocate only 2K+5 fresh qubits because their raw inputs are the previous
// round's outputs.
func (p Params) QubitsPerModule() int { return 5*p.K + 13 }

// ParamsForCapacity returns Params whose Capacity is exactly capacity at
// the given level count, or an error when capacity is not a perfect
// levels-th power.
func ParamsForCapacity(capacity, levels int) (Params, error) {
	if capacity < 1 || levels < 1 {
		return Params{}, fmt.Errorf("bravyi: bad capacity %d or levels %d", capacity, levels)
	}
	k := int(math.Round(math.Pow(float64(capacity), 1/float64(levels))))
	p := Params{K: k, Levels: levels, Barriers: true}
	if p.Capacity() != capacity {
		return Params{}, fmt.Errorf("bravyi: capacity %d is not a perfect %d-th power", capacity, levels)
	}
	return p, nil
}

// OutputError returns the distilled error rate after one module given
// input error eps: (1+3K) * eps^2 (§II.F).
func (p Params) OutputError(eps float64) float64 {
	return float64(1+3*p.K) * eps * eps
}

// SuccessProbability returns the first-order module success probability
// 1 - (8+3K) * eps (§II.F), clamped to [0,1].
func (p Params) SuccessProbability(eps float64) float64 {
	s := 1 - float64(8+3*p.K)*eps
	if s < 0 {
		return 0
	}
	return s
}
