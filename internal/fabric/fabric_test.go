package fabric

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"magicstate/internal/httpclient"
)

// fastClient is a test client that fails fast and never sleeps for
// real, so dead-peer paths don't stretch the test wall clock.
func fastClient() *httpclient.Client {
	return &httpclient.Client{
		MaxAttempts: 1,
		Sleep:       func(ctx context.Context, d time.Duration) error { return nil },
	}
}

func newTestFabric(t *testing.T, self string, nodes []string, opts Options) *Fabric {
	t.Helper()
	opts.Self = self
	opts.Nodes = nodes
	if opts.Client == nil {
		opts.Client = fastClient()
	}
	f, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewRejectsForeignSelf(t *testing.T) {
	if _, err := New(Options{Self: "ghost", Nodes: []string{"a", "b"}}); err == nil {
		t.Fatal("self outside the node set accepted")
	}
}

func TestFetchVerifiedHit(t *testing.T) {
	f := newTestFabric(t, "n1", []string{"n1", "n2"}, Options{})
	k := keyOwnedBy(t, f.ring, "n2")
	payload := []byte(`{"latency":123}`)

	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/record/"+k.String() {
			t.Errorf("unexpected path %s", r.URL.Path)
		}
		json.NewEncoder(w).Encode(NewEnvelope(k, payload))
	}))
	defer srv.Close()
	f.SetURL("n2", srv.URL)

	got, ok := f.Fetch(context.Background(), k)
	if !ok || string(got) != string(payload) {
		t.Fatalf("Fetch = %q, %t; want payload hit", got, ok)
	}
	s := f.Stats()
	if s.Peers[0].FetchHits != 1 {
		t.Fatalf("fetch hits = %d, want 1", s.Peers[0].FetchHits)
	}
}

func TestFetchSelfOwnedIsLocal(t *testing.T) {
	f := newTestFabric(t, "n1", []string{"n1", "n2"}, Options{})
	k := keyOwnedBy(t, f.ring, "n1")
	if _, ok := f.Fetch(context.Background(), k); ok {
		t.Fatal("Fetch returned a record for a self-owned key with no peer call possible")
	}
}

func TestFetchMissIsCleanSuccess(t *testing.T) {
	f := newTestFabric(t, "n1", []string{"n1", "n2"}, Options{})
	k := keyOwnedBy(t, f.ring, "n2")
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	defer srv.Close()
	f.SetURL("n2", srv.URL)

	if _, ok := f.Fetch(context.Background(), k); ok {
		t.Fatal("404 produced a record")
	}
	s := f.Stats()
	if s.Peers[0].FetchMisses != 1 || s.Peers[0].FetchFailures != 0 {
		t.Fatalf("misses=%d failures=%d, want 1/0", s.Peers[0].FetchMisses, s.Peers[0].FetchFailures)
	}
	if s.Peers[0].Breaker != "closed" {
		t.Fatalf("breaker after clean miss = %s, want closed", s.Peers[0].Breaker)
	}
}

func TestFetchRejectsCorruptPayload(t *testing.T) {
	f := newTestFabric(t, "n1", []string{"n1", "n2"}, Options{BreakerThreshold: 1})
	k := keyOwnedBy(t, f.ring, "n2")
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		env := NewEnvelope(k, []byte(`{"latency":123}`))
		env.Payload[0] ^= 0xff // corrupt after the digest was stamped
		json.NewEncoder(w).Encode(env)
	}))
	defer srv.Close()
	f.SetURL("n2", srv.URL)

	if _, ok := f.Fetch(context.Background(), k); ok {
		t.Fatal("corrupt payload accepted")
	}
	s := f.Stats()
	if s.Peers[0].FetchRejected != 1 {
		t.Fatalf("rejected = %d, want 1", s.Peers[0].FetchRejected)
	}
	if s.Peers[0].Breaker != "open" {
		t.Fatalf("breaker after corrupt response = %s, want open (threshold 1)", s.Peers[0].Breaker)
	}
}

func TestFetchRejectsWrongKeyEcho(t *testing.T) {
	f := newTestFabric(t, "n1", []string{"n1", "n2"}, Options{})
	k := keyOwnedBy(t, f.ring, "n2")
	other := keyOwnedBy(t, f.ring, "n1")
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(NewEnvelope(other, []byte(`{"latency":9}`)))
	}))
	defer srv.Close()
	f.SetURL("n2", srv.URL)

	if _, ok := f.Fetch(context.Background(), k); ok {
		t.Fatal("envelope for the wrong key accepted")
	}
	if got := f.Stats().Peers[0].FetchRejected; got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
}

func TestFetchDeadPeerOpensBreaker(t *testing.T) {
	f := newTestFabric(t, "n1", []string{"n1", "n2"}, Options{BreakerThreshold: 2})
	k := keyOwnedBy(t, f.ring, "n2")
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close() // dead on arrival
	f.SetURL("n2", srv.URL)

	f.Fetch(context.Background(), k)
	f.Fetch(context.Background(), k)
	s := f.Stats()
	if s.Peers[0].FetchFailures != 2 || s.Peers[0].Breaker != "open" {
		t.Fatalf("failures=%d breaker=%s, want 2/open", s.Peers[0].FetchFailures, s.Peers[0].Breaker)
	}
	// With the breaker open, Fetch refuses without a network call.
	if _, ok := f.Fetch(context.Background(), k); ok {
		t.Fatal("open breaker still fetched")
	}
	if got := f.Stats().Peers[0].FetchFailures; got != 2 {
		t.Fatalf("breaker-refused fetch changed failure count to %d", got)
	}
}

func TestEvaluateForwardsToOwner(t *testing.T) {
	f := newTestFabric(t, "n1", []string{"n1", "n2"}, Options{})
	k := keyOwnedBy(t, f.ring, "n2")
	cfgJSON := []byte(`{"k":15}`)
	result := []byte(`{"latency":77}`)

	var gotReq EvalRequest
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/fabric/eval" || r.Method != http.MethodPost {
			t.Errorf("unexpected %s %s", r.Method, r.URL.Path)
		}
		json.NewDecoder(r.Body).Decode(&gotReq)
		json.NewEncoder(w).Encode(NewEnvelope(k, result))
	}))
	defer srv.Close()
	f.SetURL("n2", srv.URL)

	got, ok := f.Evaluate(context.Background(), k, cfgJSON)
	if !ok || string(got) != string(result) {
		t.Fatalf("Evaluate = %q, %t; want forwarded result", got, ok)
	}
	if gotReq.Key != k.String() || string(gotReq.Config) != string(cfgJSON) {
		t.Fatalf("request = %+v", gotReq)
	}
	s := f.Stats()
	if s.Peers[0].Forwards != 1 || s.FallbackComputes != 0 {
		t.Fatalf("forwards=%d fallbacks=%d, want 1/0", s.Peers[0].Forwards, s.FallbackComputes)
	}
}

func TestEvaluateNoForwardContext(t *testing.T) {
	f := newTestFabric(t, "n1", []string{"n1", "n2"}, Options{})
	k := keyOwnedBy(t, f.ring, "n2")
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
	}))
	defer srv.Close()
	f.SetURL("n2", srv.URL)

	if _, ok := f.Evaluate(NoForward(context.Background()), k, []byte(`{}`)); ok {
		t.Fatal("forwarded-context evaluation forwarded again")
	}
	if calls.Load() != 0 {
		t.Fatal("NoForward context still hit the network")
	}
	if got := f.Stats().FallbackComputes; got != 0 {
		t.Fatalf("NoForward counted as fallback: %d", got)
	}
}

func TestEvaluateFallbackCounting(t *testing.T) {
	f := newTestFabric(t, "n1", []string{"n1", "n2"}, Options{BreakerThreshold: 1})
	k := keyOwnedBy(t, f.ring, "n2")

	// No URL configured: immediate fallback.
	if _, ok := f.Evaluate(context.Background(), k, []byte(`{}`)); ok {
		t.Fatal("evaluated against a peer with no URL")
	}
	// Dead peer: fallback + breaker trip.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close()
	f.SetURL("n2", srv.URL)
	f.Evaluate(context.Background(), k, []byte(`{}`))
	// Open breaker: fallback without a network call.
	f.Evaluate(context.Background(), k, []byte(`{}`))

	s := f.Stats()
	if s.FallbackComputes != 3 {
		t.Fatalf("fallback computes = %d, want 3", s.FallbackComputes)
	}
	if s.Peers[0].ForwardFailures != 1 {
		t.Fatalf("forward failures = %d, want 1 (breaker-refused calls don't count)", s.Peers[0].ForwardFailures)
	}

	// Self-owned keys are never fallbacks.
	self := keyOwnedBy(t, f.ring, "n1")
	if _, ok := f.Evaluate(context.Background(), self, []byte(`{}`)); ok {
		t.Fatal("self-owned key forwarded")
	}
	if got := f.Stats().FallbackComputes; got != 3 {
		t.Fatalf("self-owned compute counted as fallback: %d", got)
	}
}

func TestEvaluateRejectsCorruptResult(t *testing.T) {
	f := newTestFabric(t, "n1", []string{"n1", "n2"}, Options{BreakerThreshold: 1})
	k := keyOwnedBy(t, f.ring, "n2")
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		env := NewEnvelope(k, []byte(`{"latency":5}`))
		env.Payload[0] ^= 0xff
		json.NewEncoder(w).Encode(env)
	}))
	defer srv.Close()
	f.SetURL("n2", srv.URL)

	if _, ok := f.Evaluate(context.Background(), k, []byte(`{}`)); ok {
		t.Fatal("corrupt forwarded result accepted")
	}
	s := f.Stats()
	if s.Peers[0].ForwardFailures != 1 || s.FallbackComputes != 1 {
		t.Fatalf("forwardFailures=%d fallbacks=%d, want 1/1", s.Peers[0].ForwardFailures, s.FallbackComputes)
	}
}

func TestReplicationToSuccessor(t *testing.T) {
	f := newTestFabric(t, "n1", []string{"n1", "n2", "n3"}, Options{Replicate: true})
	k := keyOwnedBy(t, f.ring, "n1")
	succ := f.ring.Successor(k)
	payload := []byte(`{"latency":11}`)

	received := make(chan RecordEnvelope, 1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPut || r.URL.Path != "/v1/record/"+k.String() {
			t.Errorf("unexpected %s %s", r.Method, r.URL.Path)
		}
		var env RecordEnvelope
		json.NewDecoder(r.Body).Decode(&env)
		received <- env
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()
	f.SetURL(succ, srv.URL)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go f.Run(ctx)

	f.NotifyPut(k, payload)
	select {
	case env := <-received:
		got, err := env.Verify(k)
		if err != nil || string(got) != string(payload) {
			t.Fatalf("replicated envelope: payload=%q err=%v", got, err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("replication never arrived")
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		if s := f.Stats(); s.Peers[0].Node == succ && s.Peers[0].ReplicationSent == 1 {
			break
		}
		if sent := false; !sent && time.Now().After(deadline) {
			t.Fatalf("replication sent counter never reached 1: %+v", f.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestNotifyPutSkipsPeerOwnedKeys(t *testing.T) {
	f := newTestFabric(t, "n1", []string{"n1", "n2", "n3"}, Options{Replicate: true})
	k := keyOwnedBy(t, f.ring, "n2")
	f.NotifyPut(k, []byte(`{}`))
	if got := f.Stats().ReplicationQueue; got != 0 {
		t.Fatalf("peer-owned key enqueued for replication: queue=%d", got)
	}
}

func TestNotifyPutDropsOnFullQueue(t *testing.T) {
	f := newTestFabric(t, "n1", []string{"n1", "n2"}, Options{Replicate: true})
	k := keyOwnedBy(t, f.ring, "n1")
	// No Run loop draining: fill the queue past its depth.
	for i := 0; i < repQueueDepth+5; i++ {
		f.NotifyPut(k, []byte(`{}`))
	}
	s := f.Stats()
	if s.ReplicationQueue != repQueueDepth || s.ReplicationDropped != 5 {
		t.Fatalf("queue=%d dropped=%d, want %d/5", s.ReplicationQueue, s.ReplicationDropped, repQueueDepth)
	}
}

func TestProberClosesBreakerOnRecovery(t *testing.T) {
	var healthy atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			panic(http.ErrAbortHandler)
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	f := newTestFabric(t, "n1", []string{"n1", "n2"}, Options{
		BreakerThreshold: 1,
		BreakerCooldown:  50 * time.Millisecond,
	})
	f.SetURL("n2", srv.URL)
	k := keyOwnedBy(t, f.ring, "n2")

	f.Fetch(context.Background(), k) // trips the breaker
	if f.Stats().Peers[0].Breaker != "open" {
		t.Fatalf("breaker = %s, want open", f.Stats().Peers[0].Breaker)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go f.Run(ctx)

	healthy.Store(true)
	deadline := time.Now().Add(10 * time.Second)
	for f.Stats().Peers[0].Breaker != "closed" {
		if time.Now().After(deadline) {
			t.Fatalf("prober never re-closed the breaker: %+v", f.Stats().Peers[0])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestEnvelopeVerify(t *testing.T) {
	k := keyWithPoint(99)
	env := NewEnvelope(k, []byte("hello"))
	if got, err := env.Verify(k); err != nil || string(got) != "hello" {
		t.Fatalf("Verify of intact envelope: %q, %v", got, err)
	}
	bad := env
	bad.SHA256 = "00" + bad.SHA256[2:]
	if _, err := bad.Verify(k); err == nil {
		t.Fatal("digest mismatch accepted")
	}
	if _, err := env.Verify(keyWithPoint(100)); err == nil {
		t.Fatal("key mismatch accepted")
	}
}
