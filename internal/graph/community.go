package graph

import (
	"math/rand"
	"sort"
)

// Communities detects community structure (§VI.B.1) with weighted
// asynchronous label propagation followed by a greedy modularity-guided
// merge of small communities. The result maps every vertex to a dense
// community id in [0, count). Isolated vertices each form their own
// community. rng drives the propagation order; the same seed reproduces
// the same communities.
func Communities(g *Graph, rng *rand.Rand) ([]int, int) {
	label := make([]int, g.N)
	for i := range label {
		label[i] = i
	}
	order := make([]int, g.N)
	for i := range order {
		order[i] = i
	}
	weight := make(map[int]float64)
	const maxSweeps = 50
	for sweep := 0; sweep < maxSweeps; sweep++ {
		if rng != nil {
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		changed := 0
		for _, v := range order {
			for k := range weight {
				delete(weight, k)
			}
			g.Neighbors(v, func(u int, w float64) {
				weight[label[u]] += w
			})
			if len(weight) == 0 {
				continue
			}
			best, bestW := label[v], weight[label[v]]
			// Deterministic tie-break: smallest label among the heaviest.
			keys := make([]int, 0, len(weight))
			for k := range weight {
				keys = append(keys, k)
			}
			sort.Ints(keys)
			for _, k := range keys {
				if weight[k] > bestW {
					best, bestW = k, weight[k]
				}
			}
			if best != label[v] {
				label[v] = best
				changed++
			}
		}
		if changed == 0 {
			break
		}
	}
	label, count := densify(label)
	label, count = mergeTiny(g, label, count)
	return label, count
}

// densify renumbers labels to dense ids preserving first-appearance order.
func densify(label []int) ([]int, int) {
	next := 0
	remap := make(map[int]int)
	out := make([]int, len(label))
	for i, l := range label {
		id, ok := remap[l]
		if !ok {
			id = next
			remap[l] = id
			next++
		}
		out[i] = id
	}
	return out, next
}

// mergeTiny folds communities of one or two vertices into the neighboring
// community they share the most edge weight with, which reduces
// fragmentation before the force-directed community moves.
func mergeTiny(g *Graph, label []int, count int) ([]int, int) {
	size := make([]int, count)
	for _, l := range label {
		size[l]++
	}
	for v := 0; v < g.N; v++ {
		if size[label[v]] > 2 {
			continue
		}
		best, bestW := -1, 0.0
		agg := make(map[int]float64)
		g.Neighbors(v, func(u int, w float64) {
			if label[u] != label[v] {
				agg[label[u]] += w
			}
		})
		keys := make([]int, 0, len(agg))
		for k := range agg {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		for _, k := range keys {
			if agg[k] > bestW {
				best, bestW = k, agg[k]
			}
		}
		if best >= 0 {
			size[label[v]]--
			label[v] = best
			size[best]++
		}
	}
	return densify(label)
}

// Modularity returns the Newman modularity of the given community
// assignment, a quality score in [-0.5, 1].
func Modularity(g *Graph, label []int) float64 {
	m := g.TotalWeight()
	if m == 0 {
		return 0
	}
	var q float64
	degSum := make(map[int]float64)
	inSum := make(map[int]float64)
	for v := 0; v < g.N; v++ {
		degSum[label[v]] += g.WeightedDegree(v)
	}
	for _, e := range g.Edges {
		if label[e.U] == label[e.V] {
			inSum[label[e.U]] += e.Weight
		}
	}
	for c, din := range inSum {
		q += din / m
		_ = c
	}
	for _, d := range degSum {
		q -= (d / (2 * m)) * (d / (2 * m))
	}
	return q
}
