module magicstate

go 1.22
