package experiments

import (
	"context"
	"fmt"
	"io"

	"magicstate/internal/bravyi"
	"magicstate/internal/montecarlo"
	"magicstate/internal/resource"
	"magicstate/internal/sweep"
)

// YieldRow is one factory configuration of the Monte-Carlo yield study:
// sampled full-batch yield against the first-order analytic model, plus
// the effect of O'Gorman-Campbell checkpoints [20] and a loss-
// compensation reserve (§IX).
type YieldRow struct {
	K, Levels int
	// AnalyticFullYield is the closed-form all-modules-pass probability.
	AnalyticFullYield float64
	// SampledFullYield is the Monte-Carlo estimate of the same event.
	SampledFullYield float64
	// MeanOutputs is the average delivered states per run (partial
	// yields included — what a prepared-state buffer actually sees).
	MeanOutputs float64
	// CheckpointMeanOutputs repeats the measurement with group discards.
	CheckpointMeanOutputs float64
	// ReserveFullYield adds one spare module per round.
	ReserveFullYield float64
	// Capacity is K^Levels for normalizing.
	Capacity int
}

// yieldVariant names one Monte-Carlo sampling mode per factory.
type yieldVariant int

const (
	yieldPlain yieldVariant = iota
	yieldCheckpoints
	yieldReserve
	yieldVariants // count
)

// Yield samples every (k, levels) combination for the given trial count.
// Each (k, variant) pair — plain, checkpointed, and reserve sampling —
// is one grid point on the sweep engine; a row reduces its factory's
// three variants.
func Yield(ks []int, levels, trials int, seed int64) ([]YieldRow, error) {
	em := resource.DefaultError()
	type point struct {
		k       int
		variant yieldVariant
	}
	var pts []point
	for _, k := range ks {
		for v := yieldPlain; v < yieldVariants; v++ {
			pts = append(pts, point{k: k, variant: v})
		}
	}
	runs, err := sweep.Map(context.Background(), Engine(), pts, func(_ int, pt point) (*montecarlo.Summary, error) {
		p := bravyi.Params{K: pt.k, Levels: levels, Barriers: true}
		cfg := montecarlo.Config{Params: p, Errors: em, Trials: trials, Seed: seed}
		var wrap string
		switch pt.variant {
		case yieldCheckpoints:
			cfg.Checkpoints = true
			wrap = " checkpoints"
		case yieldReserve:
			cfg.Reserve = make([]int, levels)
			for i := range cfg.Reserve {
				cfg.Reserve[i] = 1
			}
			wrap = " reserve"
		}
		res, err := montecarlo.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("yield k=%d%s: %w", pt.k, wrap, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []YieldRow
	for i, k := range ks {
		p := bravyi.Params{K: k, Levels: levels, Barriers: true}
		plain := runs[i*int(yieldVariants)+int(yieldPlain)]
		checked := runs[i*int(yieldVariants)+int(yieldCheckpoints)]
		reserved := runs[i*int(yieldVariants)+int(yieldReserve)]
		rows = append(rows, YieldRow{
			K:                     k,
			Levels:                levels,
			AnalyticFullYield:     montecarlo.AnalyticFullYield(p, em),
			SampledFullYield:      plain.FullYieldRate,
			MeanOutputs:           plain.MeanOutputs,
			CheckpointMeanOutputs: checked.MeanOutputs,
			ReserveFullYield:      reserved.FullYieldRate,
			Capacity:              p.Capacity(),
		})
	}
	return rows, nil
}

// WriteYield renders the yield study.
func WriteYield(w io.Writer, levels, trials int, rows []YieldRow) {
	fmt.Fprintf(w, "Monte-Carlo factory yield — level %d, %d trials per point\n", levels, trials)
	tw := newTab(w)
	fmt.Fprintln(tw, "K\tcapacity\tanalytic full\tsampled full\tmean out\tmean out (ckpt)\tfull w/ reserve")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%.3f\t%.3f\t%.2f\t%.2f\t%.3f\n",
			r.K, r.Capacity, r.AnalyticFullYield, r.SampledFullYield,
			r.MeanOutputs, r.CheckpointMeanOutputs, r.ReserveFullYield)
	}
	tw.Flush()
}
