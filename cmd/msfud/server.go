package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"magicstate"
)

// server is the msfud HTTP service: request parsing, job tracking and
// SSE streaming around one shared magicstate.Batcher, so every request
// — single point, streamed grid, polled job — draws from the same
// memory + disk cache tier.
type server struct {
	batcher     *magicstate.Batcher
	maxParallel int // per-request parallelism cap (the batcher's width)
	maxPoints   int // per-request grid size cap
	started     time.Time

	mu        sync.Mutex
	jobs      map[string]*job
	nextJob   int64
	pruneFrom int64 // lowest job number that might still be evictable

	jobWG      sync.WaitGroup
	jobsDone   atomic.Int64
	jobsFailed atomic.Int64
}

// job is one asynchronous /v1/batch evaluation.
type job struct {
	id     string
	cancel context.CancelFunc
	total  int
	done   atomic.Int64

	finished chan struct{} // closed when results/err are set
	results  []resultJSON
	err      error
}

// newServer wires a server around a batcher. maxParallel caps what any
// single request may ask for; maxPoints bounds grid expansion so one
// request cannot queue unbounded work.
func newServer(b *magicstate.Batcher, maxParallel, maxPoints int) *server {
	return &server{
		batcher:     b,
		maxParallel: maxParallel,
		maxPoints:   maxPoints,
		started:     time.Now(),
		jobs:        make(map[string]*job),
		pruneFrom:   1,
	}
}

// drainJobs cancels every running job and waits (up to the deadline)
// for their goroutines to finish, so the store can be closed without
// racing in-flight PutReport calls. Called once during shutdown, after
// the HTTP listener stops accepting work.
func (s *server) drainJobs(timeout time.Duration) {
	s.mu.Lock()
	for _, j := range s.jobs {
		j.cancel()
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.jobWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
	}
}

// handler builds the service's route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

// optimizeRequest is the JSON body of /v1/optimize and one point of a
// /v1/batch points list. Strategy and style names match the msfu CLI
// flags; empty strings pick the same defaults.
type optimizeRequest struct {
	Capacity        int    `json:"capacity"`
	Levels          int    `json:"levels"`
	Reuse           bool   `json:"reuse,omitempty"`
	Strategy        string `json:"strategy,omitempty"`
	Seed            int64  `json:"seed,omitempty"`
	Style           string `json:"style,omitempty"`
	Distance        int    `json:"distance,omitempty"`
	DisableBarriers bool   `json:"disable_barriers,omitempty"`
}

// resultJSON is the wire form of magicstate.Result.
type resultJSON struct {
	Strategy           string  `json:"strategy"`
	Latency            int     `json:"latency"`
	Area               int     `json:"area"`
	Volume             float64 `json:"volume"`
	CriticalLatency    int     `json:"critical_latency"`
	CriticalVolume     float64 `json:"critical_volume"`
	PermutationLatency int     `json:"permutation_latency,omitempty"`
}

func resultToJSON(r *magicstate.Result) resultJSON {
	return resultJSON{
		Strategy:           r.Strategy,
		Latency:            r.Latency,
		Area:               r.Area,
		Volume:             r.Volume,
		CriticalLatency:    r.CriticalLatency,
		CriticalVolume:     r.CriticalVolume,
		PermutationLatency: r.PermutationLatency,
	}
}

// point lowers a request to the public API's batch point, rejecting
// unknown names and invalid factory shapes up front so bad requests
// answer 400, not 500.
func (r optimizeRequest) point() (magicstate.BatchPoint, error) {
	var pt magicstate.BatchPoint
	pt.Spec = magicstate.FactorySpec{Capacity: r.Capacity, Levels: r.Levels, Reuse: r.Reuse}
	if r.Levels == 0 {
		pt.Spec.Levels = 1
	}
	if err := pt.Spec.Validate(); err != nil {
		return pt, err
	}
	pt.Opts = magicstate.Options{
		Seed:            r.Seed,
		DisableBarriers: r.DisableBarriers,
		Distance:        r.Distance,
	}
	if r.Style != "" {
		style, err := magicstate.ParseStyle(r.Style)
		if err != nil {
			return pt, err
		}
		pt.Opts.Style = style
	}
	if r.Strategy != "" {
		st, err := magicstate.ParseStrategy(r.Strategy)
		if err != nil {
			return pt, err
		}
		pt.Opts = pt.Opts.WithStrategy(st)
	}
	return pt, nil
}

// batchRequest is the JSON body of /v1/batch: either an explicit points
// list or a grid to expand (capacity-major, then strategy, then seed —
// the order the CLIs print). Parallelism narrows the worker pool for
// this request; it is clamped to the server's -parallel cap.
type batchRequest struct {
	Points      []optimizeRequest `json:"points,omitempty"`
	Grid        *gridSpec         `json:"grid,omitempty"`
	Parallelism int               `json:"parallelism,omitempty"`
}

// gridSpec is the cross-product form of a batch: capacities x
// strategies x seeds at one level/reuse/style setting.
type gridSpec struct {
	Capacities      []int    `json:"capacities"`
	Levels          int      `json:"levels"`
	Strategies      []string `json:"strategies,omitempty"`
	Seeds           []int64  `json:"seeds,omitempty"`
	Reuse           bool     `json:"reuse,omitempty"`
	Style           string   `json:"style,omitempty"`
	Distance        int      `json:"distance,omitempty"`
	DisableBarriers bool     `json:"disable_barriers,omitempty"`
}

// expand flattens a batch request to points.
func (b batchRequest) expand() ([]magicstate.BatchPoint, error) {
	reqs := b.Points
	if b.Grid != nil {
		if len(b.Points) > 0 {
			return nil, fmt.Errorf("give either points or grid, not both")
		}
		strategies := b.Grid.Strategies
		if len(strategies) == 0 {
			strategies = []string{""}
		}
		seeds := b.Grid.Seeds
		if len(seeds) == 0 {
			seeds = []int64{0}
		}
		for _, c := range b.Grid.Capacities {
			for _, st := range strategies {
				for _, seed := range seeds {
					reqs = append(reqs, optimizeRequest{
						Capacity: c, Levels: b.Grid.Levels, Reuse: b.Grid.Reuse,
						Strategy: st, Seed: seed, Style: b.Grid.Style,
						Distance: b.Grid.Distance, DisableBarriers: b.Grid.DisableBarriers,
					})
				}
			}
		}
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("empty batch")
	}
	points := make([]magicstate.BatchPoint, len(reqs))
	for i, r := range reqs {
		pt, err := r.point()
		if err != nil {
			return nil, fmt.Errorf("point %d: %w", i, err)
		}
		points[i] = pt
	}
	return points, nil
}

// httpError answers with a JSON error body.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeJSON answers 200 with v as JSON.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// handleOptimize evaluates one point synchronously. Request timeouts
// and disconnects cancel nothing mid-pipeline (a single point is the
// smallest unit of work), but the result of every computed point lands
// in the cache tier either way.
func (s *server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	var req optimizeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	pt, err := req.point()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, err := s.batcher.Optimize(pt.Spec, pt.Opts)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "optimize: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, resultToJSON(res))
}

// handleBatch evaluates a grid. With ?stream=1 (or an Accept header
// asking for text/event-stream) the evaluation runs inside the request
// and progress is streamed as server-sent events; closing the
// connection cancels the remaining points. Otherwise the batch becomes
// a job: the response is 202 with a job id to poll at /v1/jobs/{id}.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	points, err := req.expand()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(points) > s.maxPoints {
		httpError(w, http.StatusBadRequest, "batch of %d points exceeds the server cap of %d", len(points), s.maxPoints)
		return
	}
	parallel := req.Parallelism
	if parallel <= 0 || parallel > s.maxParallel {
		parallel = s.maxParallel
	}

	if r.URL.Query().Get("stream") == "1" || strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		s.streamBatch(w, r, points, parallel)
		return
	}

	// Asynchronous job path.
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{cancel: cancel, total: len(points), finished: make(chan struct{})}
	s.mu.Lock()
	s.nextJob++
	j.id = fmt.Sprintf("job-%d", s.nextJob)
	s.jobs[j.id] = j
	s.pruneJobsLocked()
	s.mu.Unlock()

	s.jobWG.Add(1)
	go func() {
		defer s.jobWG.Done()
		defer cancel()
		results, err := s.batcher.OptimizeBatch(points, magicstate.BatchOptions{
			Parallelism: parallel,
			Context:     ctx,
			Progress:    func(done, total int) { j.done.Store(int64(done)) },
		})
		if err != nil {
			j.err = err
			s.jobsFailed.Add(1)
		} else {
			j.results = make([]resultJSON, len(results))
			for i, res := range results {
				j.results[i] = resultToJSON(res)
			}
			s.jobsDone.Add(1)
		}
		close(j.finished)
	}()

	writeJSON(w, http.StatusAccepted, map[string]any{
		"job_id": j.id,
		"total":  j.total,
		"poll":   "/v1/jobs/" + j.id,
	})
}

// streamBatch runs points inside the request and reports progress as
// SSE frames: "progress" events with done/total counts, then one
// "done" event carrying the full result array (or "error" with the
// failure). The request context cancels evaluation between points when
// the client goes away.
func (s *server) streamBatch(w http.ResponseWriter, r *http.Request, points []magicstate.BatchPoint, parallel int) {
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	// Progress callbacks arrive from worker goroutines (serialized by
	// the engine) while this goroutine owns the ResponseWriter, so
	// frames are written here and handed over via a channel.
	type frame struct {
		event string
		data  any
	}
	frames := make(chan frame, 16)
	go func() {
		defer close(frames)
		results, err := s.batcher.OptimizeBatch(points, magicstate.BatchOptions{
			Parallelism: parallel,
			Context:     r.Context(),
			Progress: func(done, total int) {
				// Never block the worker pool on the client: progress
				// frames are advisory, so when the client reads slower
				// than points complete the backlog is dropped (the next
				// progress frame carries the up-to-date count anyway).
				select {
				case frames <- frame{"progress", map[string]int{"done": done, "total": total}}:
				default:
				}
			},
		})
		// The terminal frame is never dropped — but a client that went
		// away must not pin this goroutine either.
		var final frame
		if err != nil {
			final = frame{"error", map[string]string{"error": err.Error()}}
		} else {
			out := make([]resultJSON, len(results))
			for i, res := range results {
				out[i] = resultToJSON(res)
			}
			final = frame{"done", map[string]any{"results": out}}
		}
		select {
		case frames <- final:
		case <-r.Context().Done():
		}
	}()
	for f := range frames {
		data, err := json.Marshal(f.data)
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", f.event, data)
		fl.Flush()
	}
}

// maxFinishedJobs bounds how many completed jobs stay queryable; the
// oldest finished jobs are dropped first. Running jobs are never
// evicted.
const maxFinishedJobs = 256

// pruneJobsLocked evicts the lowest-numbered finished jobs beyond the
// retention cap. Callers hold s.mu. Job ids are dense ("job-N") and
// eviction is oldest-first, so the scan starts at pruneFrom — the
// lowest number that might still be live — and advances the cursor
// past ids that are gone, keeping each prune proportional to the live
// job count rather than to every job the server has ever issued.
func (s *server) pruneJobsLocked() {
	finished := 0
	for _, j := range s.jobs {
		select {
		case <-j.finished:
			finished++
		default:
		}
	}
	for n := s.pruneFrom; finished > maxFinishedJobs && n <= s.nextJob; n++ {
		id := fmt.Sprintf("job-%d", n)
		j, ok := s.jobs[id]
		if !ok {
			if n == s.pruneFrom {
				s.pruneFrom++
			}
			continue
		}
		select {
		case <-j.finished:
			delete(s.jobs, id)
			finished--
			if n == s.pruneFrom {
				s.pruneFrom++
			}
		default:
			// Still running: it may finish and become evictable later,
			// so the cursor cannot move past it.
		}
	}
}

// handleJobGet reports a job's progress, and its results once finished.
func (s *server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	resp := map[string]any{
		"job_id": j.id,
		"total":  j.total,
		"done":   j.done.Load(),
	}
	select {
	case <-j.finished:
		if j.err != nil {
			resp["status"] = "failed"
			resp["error"] = j.err.Error()
		} else {
			resp["status"] = "done"
			resp["results"] = j.results
		}
	default:
		resp["status"] = "running"
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleJobCancel cancels a running job. The job stays queryable; its
// status resolves to failed with a cancellation error.
func (s *server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	j.cancel()
	writeJSON(w, http.StatusOK, map[string]string{"job_id": j.id, "status": "cancelling"})
}

// handleStats reports cache-tier and job counters: the operational view
// of "compute each point once, ever".
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	cs := s.batcher.Stats()
	s.mu.Lock()
	inFlight := 0
	for _, j := range s.jobs {
		select {
		case <-j.finished:
		default:
			inFlight++
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_seconds": int64(time.Since(s.started).Seconds()),
		"max_parallel":   s.maxParallel,
		"cache": map[string]any{
			"memory_hits":    cs.MemoryHits,
			"memory_misses":  cs.MemoryMisses,
			"disk_hits":      cs.DiskHits,
			"stored_records": cs.StoredRecords,
			"stored_bytes":   cs.StoredBytes,
			"checkpoint_dir": cs.CheckpointDir,
		},
		"jobs": map[string]any{
			"in_flight": inFlight,
			"completed": s.jobsDone.Load(),
			"failed":    s.jobsFailed.Load(),
		},
	})
}
