package presets

import (
	"sort"
	"testing"

	"magicstate"
)

func TestNamesSortedAndResolvable(t *testing.T) {
	names := Names()
	if len(names) == 0 {
		t.Fatal("no presets registered")
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	for _, n := range names {
		p, ok := Get(n)
		if !ok {
			t.Fatalf("Names() lists %q but Get cannot resolve it", n)
		}
		if p.Name != n {
			t.Errorf("preset registered under %q carries Name %q", n, p.Name)
		}
		if p.Description == "" {
			t.Errorf("preset %q has no description", n)
		}
		if len(p.Points) == 0 {
			t.Errorf("preset %q has no points", n)
		}
	}
	if _, ok := Get("no-such-preset"); ok {
		t.Fatal("Get resolved a name that was never registered")
	}
}

// TestPresetPointsWellFormed validates every registered point the way
// the HTTP boundary would: factory specs validate, workload sources
// compile, and defect maps parse. A preset that fails here would turn
// a named suite into runtime 500s on both CLIs.
func TestPresetPointsWellFormed(t *testing.T) {
	for _, n := range Names() {
		p, _ := Get(n)
		for i, pt := range p.Points {
			if pt.Opts.Workload != "" {
				if err := magicstate.ValidateWorkload(pt.Opts.Workload, pt.Opts.WorkloadSource, pt.Opts.Seed); err != nil {
					t.Errorf("preset %q point %d: workload invalid: %v", n, i, err)
				}
			} else if err := pt.Spec.Validate(); err != nil {
				t.Errorf("preset %q point %d: spec invalid: %v", n, i, err)
			}
			if err := magicstate.ValidateDefects(pt.Opts.Defects); err != nil {
				t.Errorf("preset %q point %d: defect map invalid: %v", n, i, err)
			}
		}
	}
}

// TestScenarioSmallCoversFrontends pins the CI smoke suite's shape: it
// must keep exercising one point per aperture.
func TestScenarioSmallCoversFrontends(t *testing.T) {
	p, ok := Get("scenario-small")
	if !ok {
		t.Fatal("scenario-small missing")
	}
	var factory, defective, qasm, random bool
	for _, pt := range p.Points {
		switch {
		case pt.Opts.Workload == "qasm":
			qasm = true
		case pt.Opts.Workload == "random":
			random = true
		case pt.Opts.Defects != "":
			defective = true
		default:
			factory = true
		}
	}
	if !factory || !defective || !qasm || !random {
		t.Fatalf("scenario-small coverage: factory=%v defective=%v qasm=%v random=%v", factory, defective, qasm, random)
	}
}
