package sweep

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"magicstate/internal/core"
	"magicstate/internal/store"
)

// smallGrid is a cheap capacity x strategy grid with a duplicated point,
// so tests exercise both the memo and the durable tier.
func smallGrid() []core.Config {
	return []core.Config{
		{K: 2, Levels: 1, Strategy: core.StrategyLinear, Seed: 1},
		{K: 3, Levels: 1, Strategy: core.StrategyLinear, Seed: 1},
		{K: 2, Levels: 1, Strategy: core.StrategyRandom, Seed: 1},
		{K: 2, Levels: 1, Strategy: core.StrategyLinear, Seed: 1}, // dup of [0]
	}
}

func TestStoreTierServesAcrossEngines(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := smallGrid()

	eng1 := New(Options{Workers: 2, Store: st})
	reps1, err := eng1.Run(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if hits := eng1.DiskHits(); hits != 0 {
		t.Fatalf("first run DiskHits = %d, want 0", hits)
	}
	if puts := st.Stats().Puts; puts != 3 {
		t.Fatalf("first run stored %d records, want 3 unique points", puts)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// A new process: fresh memo, reopened store. Every unique point must
	// come off disk, and no new records may be written.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	eng2 := New(Options{Workers: 2, Store: st2})
	reps2, err := eng2.Run(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if hits := eng2.DiskHits(); hits != 3 {
		t.Fatalf("second run DiskHits = %d, want 3", hits)
	}
	if puts := st2.Stats().Puts; puts != 0 {
		t.Fatalf("second run stored %d new records, want 0", puts)
	}
	for i := range reps1 {
		a, b := *reps1[i], *reps2[i]
		a.Factory, a.Placement, a.Sim = nil, nil, nil
		b.Factory, b.Placement, b.Sim = nil, nil, nil
		if a != b {
			t.Fatalf("point %d differs across tiers:\n fresh: %+v\n disk:  %+v", i, a, b)
		}
	}
}

// TestStoreTierRecoversTruncatedLog kills the store mid-write (by
// truncating the log) and checks a resumed sweep recomputes exactly the
// lost points and still returns correct results.
func TestStoreTierRecoversTruncatedLog(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := smallGrid()
	eng := New(Options{Workers: 1, Store: st})
	want, err := eng.Run(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Chop the tail off the log — the crash-consistency of a killed run.
	logPath := filepath.Join(dir, "store.log")
	info, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(logPath, info.Size()/2); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	// Final records only: stage artifacts also live in the log, but the
	// recompute accounting below is stated in points.
	survivors := st2.Stats().Records
	if survivors >= 3 {
		t.Fatalf("truncation left %d final records, expected fewer than 3", survivors)
	}
	eng2 := New(Options{Workers: 1, Store: st2})
	got, err := eng2.Run(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if hits := int(eng2.DiskHits()); hits != survivors {
		t.Fatalf("resume DiskHits = %d, want %d survivors", hits, survivors)
	}
	if puts := int(st2.Stats().Puts); puts != 3-survivors {
		t.Fatalf("resume recomputed %d points, want %d", puts, 3-survivors)
	}
	for i := range want {
		a, b := *want[i], *got[i]
		a.Factory, a.Placement, a.Sim = nil, nil, nil
		b.Factory, b.Placement, b.Sim = nil, nil, nil
		if a != b {
			t.Fatalf("point %d differs after crash recovery", i)
		}
	}
}

func TestUncacheableConfigBypassesStore(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	eng := New(Options{Workers: 1, Store: st})
	cfg := core.Config{K: 2, Levels: 1, Strategy: core.StrategyLinear, Seed: 1, RecordPaths: true}
	rep, err := eng.RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sim == nil {
		t.Fatal("RecordPaths run must keep its simulation artifacts")
	}
	// RecordPaths makes the final report uncacheable (its value is the
	// diagnostic payload the record format drops) and likewise the sim
	// stage. The build and place stages are lossless for any config, so
	// those artifacts may — and should — still be persisted.
	stats := st.Stats()
	if stats.Records != 0 {
		t.Fatalf("store holds %d final records, want 0 for an uncacheable config", stats.Records)
	}
	if _, ok := st.Get(store.StageKeyOf(core.StageSim, cfg)); ok {
		t.Fatal("sim stage artifact persisted for a RecordPaths config")
	}
	if stats.StageRecords == 0 {
		t.Fatal("build/place stage artifacts should persist even for RecordPaths configs")
	}
}

func TestDeriveSharesCacheAndClampsWorkers(t *testing.T) {
	eng := New(Options{Workers: 4})
	d := eng.Derive(Options{Workers: 99})
	if got := d.Workers(); got != 4 {
		t.Fatalf("Derive(99).Workers = %d, want clamp to 4", got)
	}
	if got := eng.Derive(Options{Workers: 2}).Workers(); got != 2 {
		t.Fatalf("Derive(2).Workers = %d, want 2", got)
	}
	if got := eng.Derive(Options{}).Workers(); got != 4 {
		t.Fatalf("Derive(0).Workers = %d, want parent width 4", got)
	}

	cfg := core.Config{K: 2, Levels: 1, Strategy: core.StrategyLinear, Seed: 1}
	if _, err := eng.RunOne(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := d.RunOne(cfg); err != nil {
		t.Fatal(err)
	}
	hits, misses := d.CacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("shared cache stats = %d hits / %d misses, want 1/1", hits, misses)
	}
}
