package circuit

import (
	"errors"
	"fmt"
	"strings"
)

// Circuit is an ordered sequence of gates over NumQubits logical qubits.
// The sequence order defines program order; dependencies derive from
// shared operands (see Deps).
type Circuit struct {
	NumQubits int
	Gates     []Gate
	Names     []string // optional per-qubit debug names; empty or len == NumQubits

	// arena is the current operand-slice chunk. Gate emitters carve
	// Targets slices out of it so a circuit of g gates costs O(g/arenaChunk)
	// allocations instead of one per gate. Carved slices are capacity-
	// capped, and gates never grow Targets in place (circuits are immutable
	// once built), so chunk reuse can never alias two gates' operands.
	arena []Qubit
}

// arenaChunk is the operand arena's chunk size in qubits. Large enough to
// amortize gate emission to well under one allocation per gate, small
// enough that an abandoned chunk tail wastes almost nothing.
const arenaChunk = 1024

// carve returns an arena-backed slice holding the given operands. Slices
// longer than a chunk get dedicated backing (whole-circuit barriers).
func (c *Circuit) carve(qs []Qubit) []Qubit {
	n := len(qs)
	if n > arenaChunk {
		return append([]Qubit(nil), qs...)
	}
	if len(c.arena)+n > cap(c.arena) {
		c.arena = make([]Qubit, 0, arenaChunk)
	}
	start := len(c.arena)
	c.arena = append(c.arena, qs...)
	return c.arena[start : start+n : start+n]
}

// carve1 is carve for the single-target common case.
func (c *Circuit) carve1(q Qubit) []Qubit {
	if len(c.arena) == cap(c.arena) {
		c.arena = make([]Qubit, 0, arenaChunk)
	}
	start := len(c.arena)
	c.arena = append(c.arena, q)
	return c.arena[start : start+1 : start+1]
}

// New returns an empty circuit over n qubits.
func New(n int) *Circuit { return &Circuit{NumQubits: n} }

// AddQubit appends a fresh qubit with an optional name and returns its id.
func (c *Circuit) AddQubit(name string) Qubit {
	q := Qubit(c.NumQubits)
	c.NumQubits++
	if name != "" || len(c.Names) > 0 {
		for len(c.Names) < c.NumQubits-1 {
			c.Names = append(c.Names, "")
		}
		c.Names = append(c.Names, name)
	}
	return q
}

// Name returns the debug name of q, or "q<i>" when unnamed.
func (c *Circuit) Name(q Qubit) string {
	if int(q) < len(c.Names) && c.Names[q] != "" {
		return c.Names[q]
	}
	return fmt.Sprintf("q%d", q)
}

// Append adds a gate to the end of the program.
func (c *Circuit) Append(g Gate) { c.Gates = append(c.Gates, g) }

// H appends a Hadamard on q.
func (c *Circuit) H(q Qubit) { c.Append(Gate{Kind: KindH, Control: NoQubit, Targets: c.carve1(q)}) }

// PrepZ appends a |0> preparation on q.
func (c *Circuit) PrepZ(q Qubit) {
	c.Append(Gate{Kind: KindPrepZ, Control: NoQubit, Targets: c.carve1(q)})
}

// PrepX appends a |+> preparation on q.
func (c *Circuit) PrepX(q Qubit) {
	c.Append(Gate{Kind: KindPrepX, Control: NoQubit, Targets: c.carve1(q)})
}

// T appends a T rotation on q (consumes a magic state when fault
// tolerant; T and T-dagger share a cost and interaction profile, so the
// IR does not distinguish them).
func (c *Circuit) T(q Qubit) { c.Append(Gate{Kind: KindT, Control: NoQubit, Targets: c.carve1(q)}) }

// S appends a phase gate on q (decomposes into two T gates, §II.E).
func (c *Circuit) S(q Qubit) { c.Append(Gate{Kind: KindS, Control: NoQubit, Targets: c.carve1(q)}) }

// X appends a Pauli X on q.
func (c *Circuit) X(q Qubit) { c.Append(Gate{Kind: KindX, Control: NoQubit, Targets: c.carve1(q)}) }

// Z appends a Pauli Z on q.
func (c *Circuit) Z(q Qubit) { c.Append(Gate{Kind: KindZ, Control: NoQubit, Targets: c.carve1(q)}) }

// MeasZ appends a Z-basis measurement of q.
func (c *Circuit) MeasZ(q Qubit) {
	c.Append(Gate{Kind: KindMeasZ, Control: NoQubit, Targets: c.carve1(q)})
}

// CNOT appends a controlled-NOT with the given control and target.
func (c *Circuit) CNOT(ctrl, tgt Qubit) {
	c.Append(Gate{Kind: KindCNOT, Control: ctrl, Targets: c.carve1(tgt)})
}

// CXX appends a single-control multi-target CNOT.
func (c *Circuit) CXX(ctrl Qubit, tgts []Qubit) {
	c.Append(Gate{Kind: KindCXX, Control: ctrl, Targets: c.carve(tgts)})
}

// InjectT appends a T-state injection into data. raw is the source qubit
// carrying the state, or NoQubit for an ambient (freshly prepared) state.
func (c *Circuit) InjectT(raw, data Qubit) {
	c.Append(Gate{Kind: KindInjectT, Control: raw, Targets: c.carve1(data)})
}

// InjectTdag appends an adjoint T-state injection.
func (c *Circuit) InjectTdag(raw, data Qubit) {
	c.Append(Gate{Kind: KindInjectTdag, Control: raw, Targets: c.carve1(data)})
}

// MeasX appends an X-basis measurement of q.
func (c *Circuit) MeasX(q Qubit) {
	c.Append(Gate{Kind: KindMeasX, Control: NoQubit, Targets: c.carve1(q)})
}

// Move appends a state relocation of src into the tile slot identified by
// dst. dst is itself a qubit id (the slot's identity after the move).
func (c *Circuit) Move(src, dst Qubit) {
	c.Append(Gate{Kind: KindMove, Control: src, Targets: c.carve1(dst), Dest: dst})
}

// Barrier appends a scheduling fence over qs. Physically this is a
// multi-target CNOT controlled by an ancilla prepared in |0> (§V.A), which
// is a no-op on the data but serializes everything across it.
func (c *Circuit) Barrier(qs []Qubit) {
	c.Append(Gate{Kind: KindBarrier, Control: NoQubit, Targets: c.carve(qs), Module: -1})
}

// Validate checks structural well-formedness: operand ids in range, gate
// arity constraints, and no duplicate operands within a gate. Duplicate
// detection runs on a stamp-indexed scratch array (a slot is "seen" iff it
// carries the current gate's stamp), so validating g gates costs O(1)
// allocations instead of one map per gate.
func (c *Circuit) Validate() error {
	seen := make([]int, c.NumQubits)
	var ops []Qubit
	for i := range c.Gates {
		g := &c.Gates[i]
		if g.Kind == KindInvalid {
			return fmt.Errorf("gate %d: invalid kind", i)
		}
		if g.Kind != KindBarrier && len(g.Targets) == 0 {
			return fmt.Errorf("gate %d (%s): no targets", i, g.Kind)
		}
		switch g.Kind {
		case KindCNOT:
			if g.Control == NoQubit || len(g.Targets) != 1 {
				return fmt.Errorf("gate %d: cnot needs control and exactly one target", i)
			}
		case KindCXX:
			if g.Control == NoQubit || len(g.Targets) < 1 {
				return fmt.Errorf("gate %d: cxx needs control and targets", i)
			}
		case KindInjectT, KindInjectTdag:
			if len(g.Targets) != 1 {
				return fmt.Errorf("gate %d: inject needs exactly one data target", i)
			}
		case KindMove:
			if g.Control == NoQubit || g.Dest == NoQubit {
				return fmt.Errorf("gate %d: move needs source and destination", i)
			}
			if len(g.Targets) != 1 || g.Targets[0] != g.Dest {
				return fmt.Errorf("gate %d: move target must mirror its destination", i)
			}
		}
		ops = g.AppendOperands(ops[:0])
		for _, q := range ops {
			if q < 0 || int(q) >= c.NumQubits {
				return fmt.Errorf("gate %d (%s): qubit %d out of range [0,%d)", i, g.Kind, q, c.NumQubits)
			}
			if seen[q] == i+1 {
				return fmt.Errorf("gate %d (%s): duplicate operand q%d", i, g.Kind, q)
			}
			seen[q] = i + 1
		}
	}
	return nil
}

// CountKind returns how many gates of kind k the circuit contains.
func (c *Circuit) CountKind(k Kind) int {
	n := 0
	for i := range c.Gates {
		if c.Gates[i].Kind == k {
			n++
		}
	}
	return n
}

// TwoQubitGateCount returns the number of braid-requiring gates.
func (c *Circuit) TwoQubitGateCount() int {
	n := 0
	for i := range c.Gates {
		if c.Gates[i].Kind.IsTwoQubit() {
			n++
		}
	}
	return n
}

// Clone returns a deep copy of the circuit. Operand slices are carved
// from one backing array, not allocated per gate.
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{NumQubits: c.NumQubits}
	total := 0
	for i := range c.Gates {
		total += len(c.Gates[i].Targets)
	}
	backing := make([]Qubit, 0, total)
	out.Gates = make([]Gate, len(c.Gates))
	for i := range c.Gates {
		g := c.Gates[i]
		start := len(backing)
		backing = append(backing, g.Targets...)
		g.Targets = backing[start:len(backing):len(backing)]
		out.Gates[i] = g
	}
	out.Names = append([]string(nil), c.Names...)
	return out
}

// String renders the program, one gate per line, for debugging and golden
// tests.
func (c *Circuit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %d qubits, %d gates\n", c.NumQubits, len(c.Gates))
	for i := range c.Gates {
		b.WriteString(c.Gates[i].String())
		b.WriteByte('\n')
	}
	return b.String()
}

// ErrEmpty is returned by analyses that need at least one gate.
var ErrEmpty = errors.New("circuit: empty circuit")
