// Command batchsweep evaluates a capacity x strategy grid of two-level
// factories through magicstate.OptimizeBatch: the grid runs on a worker
// pool (one worker per CPU here), results come back in submission
// order, and identical points are computed once — the library-level
// counterpart of `paperbench -parallel`.
package main

import (
	"fmt"
	"log"

	"magicstate"
)

func main() {
	strategies := []magicstate.Strategy{
		magicstate.LinearMapping,
		magicstate.GraphPartitioning,
		magicstate.HierarchicalStitching,
	}
	capacities := []int{4, 16, 36}

	var points []magicstate.BatchPoint
	for _, capacity := range capacities {
		for _, s := range strategies {
			points = append(points, magicstate.BatchPoint{
				Spec: magicstate.FactorySpec{Capacity: capacity, Levels: 2, Reuse: true},
				Opts: magicstate.Options{Seed: 1}.WithStrategy(s),
			})
		}
	}

	results, err := magicstate.OptimizeBatch(points, magicstate.BatchOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("two-level factories, reuse, seed 1 — volume (qubit-cycles)")
	fmt.Printf("%-10s", "capacity")
	for _, s := range strategies {
		fmt.Printf("%12s", s)
	}
	fmt.Println()
	for i, capacity := range capacities {
		fmt.Printf("%-10d", capacity)
		for j := range strategies {
			fmt.Printf("%12.4g", results[i*len(strategies)+j].Volume)
		}
		fmt.Println()
	}
}
