package mesh

import (
	"math/rand"
	"testing"
	"testing/quick"

	"magicstate/internal/bravyi"
	"magicstate/internal/circuit"
	"magicstate/internal/layout"
	"magicstate/internal/resource"
)

func TestLatticeGeometry(t *testing.T) {
	l := NewLattice(3, 2)
	if l.CW != 7 || l.CH != 5 {
		t.Fatalf("cell grid = %dx%d, want 7x5", l.CW, l.CH)
	}
	tiles := 0
	for ci := 0; ci < l.Cells(); ci++ {
		if l.IsTile(ci) {
			tiles++
		}
	}
	if tiles != 6 {
		t.Errorf("tiles = %d, want 6", tiles)
	}
	ci := l.TileCell(layout.Point{X: 0, Y: 0})
	if !l.IsTile(ci) {
		t.Error("tile cell not marked as tile")
	}
	ports := l.TilePorts(layout.Point{X: 0, Y: 0}, nil)
	if len(ports) != 4 {
		t.Errorf("interior-corner tile should expose 4 ports, got %d", len(ports))
	}
	for _, pc := range ports {
		if l.IsTile(pc) {
			t.Error("port cell is a tile")
		}
	}
}

func TestNeighborCellsAtCorner(t *testing.T) {
	l := NewLattice(2, 2)
	nb := l.NeighborCells(l.CellIndex(0, 0), nil)
	if len(nb) != 2 {
		t.Errorf("corner cell neighbors = %d, want 2", len(nb))
	}
	nb = l.NeighborCells(l.CellIndex(2, 2), nil)
	if len(nb) != 4 {
		t.Errorf("interior cell neighbors = %d, want 4", len(nb))
	}
}

func TestRouterFindsAndBlocksPaths(t *testing.T) {
	l := NewLattice(3, 1)
	r := newRouter(l)
	src := l.TilePorts(layout.Point{X: 0, Y: 0}, nil)
	dst := l.TilePorts(layout.Point{X: 2, Y: 0}, nil)
	path, _ := r.route(src, dst, 0)
	if path == nil {
		t.Fatal("route on empty lattice failed")
	}
	for _, c := range path {
		if l.IsTile(c) {
			t.Fatal("path crosses a tile")
		}
	}
	// Reserve the whole lattice's channels and verify blocking.
	all := make([]int, 0, l.Cells())
	for ci := 0; ci < l.Cells(); ci++ {
		if !l.IsTile(ci) {
			all = append(all, ci)
		}
	}
	r.reserve(all, 100)
	blockedPath, clearAt := r.route(src, dst, 50)
	if blockedPath != nil {
		t.Error("route should fail while cells are reserved")
	}
	if clearAt != 100 {
		t.Errorf("blocked route retry bound = %d, want 100 (the reservation expiry)", clearAt)
	}
	if p, _ := r.route(src, dst, 100); p == nil {
		t.Error("route should succeed after reservations expire")
	}
}

func TestRouteTreeSpansAllGroups(t *testing.T) {
	l := NewLattice(4, 4)
	r := newRouter(l)
	groups := [][]int{
		l.TilePorts(layout.Point{X: 0, Y: 0}, nil),
		l.TilePorts(layout.Point{X: 3, Y: 0}, nil),
		l.TilePorts(layout.Point{X: 0, Y: 3}, nil),
		l.TilePorts(layout.Point{X: 3, Y: 3}, nil),
	}
	tree := r.routeTree(groups, 0)
	if tree == nil {
		t.Fatal("tree routing failed on empty lattice")
	}
	// The tree must touch at least one port of every group.
	inTree := map[int]bool{}
	for _, c := range tree {
		inTree[c] = true
	}
	for gi, g := range groups {
		hit := false
		for _, c := range g {
			if inTree[c] {
				hit = true
			}
		}
		if !hit {
			t.Errorf("group %d untouched by tree", gi)
		}
	}
}

func simpleCfg() Config { return Config{Cost: resource.DefaultCost()} }

func linePlacement(n int) *layout.Placement {
	p := layout.NewPlacement(n, n, 1)
	for i := 0; i < n; i++ {
		p.Set(i, layout.Point{X: i, Y: 0})
	}
	return p
}

func TestSimulateSerialChain(t *testing.T) {
	cm := resource.DefaultCost()
	c := circuit.New(2)
	c.H(0)
	c.CNOT(0, 1)
	c.MeasX(1)
	res, err := Simulate(c, linePlacement(2), simpleCfg())
	if err != nil {
		t.Fatal(err)
	}
	want := cm.H + cm.CNOT + cm.Meas
	if res.Latency != want {
		t.Errorf("latency = %d, want %d", res.Latency, want)
	}
	if res.Stalls != 0 {
		t.Errorf("stalls = %d, want 0", res.Stalls)
	}
}

func TestSimulateParallelGates(t *testing.T) {
	cm := resource.DefaultCost()
	// Two independent CNOTs with ample room route concurrently.
	c := circuit.New(4)
	c.CNOT(0, 1)
	c.CNOT(2, 3)
	p := layout.NewPlacement(4, 4, 2)
	p.Set(0, layout.Point{X: 0, Y: 0})
	p.Set(1, layout.Point{X: 1, Y: 0})
	p.Set(2, layout.Point{X: 0, Y: 1})
	p.Set(3, layout.Point{X: 1, Y: 1})
	res, err := Simulate(c, p, simpleCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency != cm.CNOT {
		t.Errorf("parallel latency = %d, want %d", res.Latency, cm.CNOT)
	}
	if res.Start[0] != 0 || res.Start[1] != 0 {
		t.Errorf("both gates should start at 0: %v", res.Start)
	}
}

func TestSimulateCrossingBraidsStall(t *testing.T) {
	cm := resource.DefaultCost()
	// Qubits arranged so the two braids must cross:
	//   a . b
	//   c . d
	// CNOT(a,d) and CNOT(c,b) — on a tight lattice one must wait.
	c := circuit.New(4)
	c.CNOT(0, 3)
	c.CNOT(2, 1)
	p := layout.NewPlacement(4, 2, 2)
	p.Set(0, layout.Point{X: 0, Y: 0})
	p.Set(1, layout.Point{X: 1, Y: 0})
	p.Set(2, layout.Point{X: 0, Y: 1})
	p.Set(3, layout.Point{X: 1, Y: 1})
	res, err := Simulate(c, p, simpleCfg())
	if err != nil {
		t.Fatal(err)
	}
	// With only a 5x5 cell lattice there is still a detour around the
	// outside, so either both run in parallel (latency CNOT) or the
	// second stalls (latency 2*CNOT). It must never exceed serial.
	if res.Latency > 2*cm.CNOT {
		t.Errorf("latency = %d, want <= %d", res.Latency, 2*cm.CNOT)
	}
	if res.Latency < cm.CNOT {
		t.Errorf("latency = %d below single braid duration", res.Latency)
	}
}

func TestSimulateForcedSerialization(t *testing.T) {
	cm := resource.DefaultCost()
	// A 1xN line of tiles leaves two channel rows plus the single-cell
	// gaps between adjacent tiles; four nested braids exceed that
	// capacity, so at least one must serialize.
	c := circuit.New(8)
	c.CNOT(0, 7)
	c.CNOT(1, 6)
	c.CNOT(2, 5)
	c.CNOT(3, 4)
	res, err := Simulate(c, linePlacement(8), simpleCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency <= cm.CNOT {
		t.Errorf("four nested braids on a line cannot all run concurrently (latency %d)", res.Latency)
	}
	if res.Stalls == 0 {
		t.Error("expected at least one stall")
	}
}

func TestSimulateBarrierFence(t *testing.T) {
	cm := resource.DefaultCost()
	c := circuit.New(2)
	c.H(0)
	c.Barrier([]circuit.Qubit{0, 1})
	c.H(1)
	res, err := Simulate(c, linePlacement(2), simpleCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency != 2*cm.H {
		t.Errorf("latency = %d, want %d (H before fence, H after)", res.Latency, 2*cm.H)
	}
	if res.Start[2] != cm.H {
		t.Errorf("post-barrier gate starts at %d, want %d", res.Start[2], cm.H)
	}
}

func TestSimulateCXX(t *testing.T) {
	c := circuit.New(4)
	c.CXX(0, []circuit.Qubit{1, 2, 3})
	res, err := Simulate(c, linePlacement(4), simpleCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency != resource.DefaultCost().CXX {
		t.Errorf("cxx latency = %d", res.Latency)
	}
}

func TestSimulateMove(t *testing.T) {
	c := circuit.New(2)
	c.Move(0, 1)
	res, err := Simulate(c, linePlacement(2), simpleCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency != resource.DefaultCost().Move {
		t.Errorf("move latency = %d", res.Latency)
	}
}

func TestSimulateRejectsBadPlacement(t *testing.T) {
	c := circuit.New(2)
	c.CNOT(0, 1)
	if _, err := Simulate(c, linePlacement(1), simpleCfg()); err == nil {
		t.Error("mismatched placement size must fail")
	}
	p := layout.NewPlacement(2, 2, 1)
	p.Set(0, layout.Point{X: 0, Y: 0})
	p.Set(1, layout.Point{X: 0, Y: 0})
	if _, err := Simulate(c, p, simpleCfg()); err == nil {
		t.Error("duplicate tiles must fail")
	}
}

func TestSimulateFactoryLatencyAboveCriticalPath(t *testing.T) {
	f, err := bravyi.Build(bravyi.Params{K: 4, Levels: 1})
	if err != nil {
		t.Fatal(err)
	}
	cm := resource.DefaultCost()
	p := layout.Linear(f)
	res, err := Simulate(f.Circuit, p, simpleCfg())
	if err != nil {
		t.Fatal(err)
	}
	crit := cm.CriticalPath(f.Circuit)
	if res.Latency < crit {
		t.Errorf("simulated latency %d below critical path %d", res.Latency, crit)
	}
	if res.Latency > 5*crit {
		t.Errorf("linear mapping latency %d implausibly above critical path %d", res.Latency, crit)
	}
	if res.Area != 33 {
		t.Errorf("area = %d, want 33 (5k+13 at k=4)", res.Area)
	}
}

func TestSimulateRandomWorseThanLinear(t *testing.T) {
	f, err := bravyi.Build(bravyi.Params{K: 8, Levels: 1})
	if err != nil {
		t.Fatal(err)
	}
	lin, err := Simulate(f.Circuit, layout.Linear(f), simpleCfg())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	rnd, err := Simulate(f.Circuit, layout.Random(f.Circuit.NumQubits, rng), simpleCfg())
	if err != nil {
		t.Fatal(err)
	}
	if rnd.Latency <= lin.Latency {
		t.Errorf("random placement (%d) should be slower than linear (%d)",
			rnd.Latency, lin.Latency)
	}
}

func TestSimulateAllGatesScheduled(t *testing.T) {
	f, err := bravyi.Build(bravyi.Params{K: 2, Levels: 2, Barriers: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(f.Circuit, layout.Linear(f), simpleCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Start {
		if s < 0 || res.End[i] < s {
			t.Fatalf("gate %d unscheduled or negative-length: [%d,%d)", i, s, res.End[i])
		}
	}
	// Dependency order is respected.
	d := circuit.Deps(f.Circuit)
	for i := range f.Circuit.Gates {
		for _, s := range d.Succ[i] {
			if res.Start[s] < res.End[i] {
				t.Fatalf("gate %d starts at %d before dep %d ends at %d",
					s, res.Start[s], i, res.End[i])
			}
		}
	}
}

func TestPhaseWindow(t *testing.T) {
	r := &Result{Start: []int{0, 10, 20}, End: []int{5, 15, 30}}
	s, e := r.PhaseWindow(func(i int) bool { return i >= 1 })
	if s != 10 || e != 30 {
		t.Errorf("window = [%d,%d), want [10,30)", s, e)
	}
	s, e = r.PhaseWindow(func(i int) bool { return false })
	if s != 0 || e != 0 {
		t.Errorf("empty window = [%d,%d), want [0,0)", s, e)
	}
}

func TestNoOverlapInvariantOnFactory(t *testing.T) {
	// Property: across a whole congested factory run, no two braids with
	// overlapping execution windows ever share a channel cell.
	f, err := bravyi.Build(bravyi.Params{K: 4, Levels: 2, Barriers: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := simpleCfg()
	cfg.RecordPaths = true
	res, err := Simulate(f.Circuit, layout.Linear(f), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalls == 0 {
		t.Fatal("want a congested run for this test to be meaningful")
	}
	if err := res.CheckNoOverlaps(); err != nil {
		t.Fatal(err)
	}
}

func TestNoOverlapInvariantRandomPlacements(t *testing.T) {
	f, err := bravyi.Build(bravyi.Params{K: 4, Levels: 1})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := layout.Random(f.Circuit.NumQubits, rng)
		cfg := simpleCfg()
		cfg.RecordPaths = true
		res, err := Simulate(f.Circuit, p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.CheckNoOverlaps(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestCheckNoOverlapsRequiresRecording(t *testing.T) {
	r := &Result{}
	if err := r.CheckNoOverlaps(); err == nil {
		t.Error("unrecorded run should refuse the check")
	}
}

func TestCheckNoOverlapsDetectsViolation(t *testing.T) {
	r := &Result{
		Start: []int{0, 5},
		End:   []int{10, 15},
		Paths: [][]int{{7, 8}, {8, 9}}, // share cell 8 while overlapping in time
	}
	if err := r.CheckNoOverlaps(); err == nil {
		t.Error("overlapping claims must be detected")
	}
	// Disjoint windows on the same cell are fine.
	r2 := &Result{
		Start: []int{0, 10},
		End:   []int{10, 20},
		Paths: [][]int{{8}, {8}},
	}
	if err := r2.CheckNoOverlaps(); err != nil {
		t.Errorf("sequential reuse flagged: %v", err)
	}
}

// Property: both rectilinear candidates connect valid ports of the two
// tiles through channel cells only, for arbitrary tile pairs.
func TestXYPathsAreValidChannels(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, h := 2+rng.Intn(10), 2+rng.Intn(10)
		l := NewLattice(w, h)
		a := layout.Point{X: rng.Intn(w), Y: rng.Intn(h)}
		b := layout.Point{X: rng.Intn(w), Y: rng.Intn(h)}
		if a == b {
			return true
		}
		for _, path := range [][]int{l.xyPath(a, b), l.yxPath(a, b)} {
			if len(path) == 0 {
				return false
			}
			for _, ci := range path {
				if l.IsTile(ci) {
					return false
				}
			}
			// Endpoints must touch the tiles.
			if !adjacentToTile(l, path[0], a) && !adjacentToTile(l, path[0], b) {
				return false
			}
			if !adjacentToTile(l, path[len(path)-1], b) && !adjacentToTile(l, path[len(path)-1], a) {
				return false
			}
			// Consecutive cells must be lattice neighbors.
			for i := 1; i < len(path); i++ {
				if !cellsAdjacent(l, path[i-1], path[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func adjacentToTile(l *Lattice, ci int, tile layout.Point) bool {
	for _, p := range l.TilePorts(tile, nil) {
		if p == ci {
			return true
		}
	}
	return false
}

func cellsAdjacent(l *Lattice, a, b int) bool {
	ax, ay := a%l.CW, a/l.CW
	bx, by := b%l.CW, b/l.CW
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx+dy == 1
}
