package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"magicstate"
)

// newRobustServer builds a server with an explicit robustness budget
// and hands back the internals, so tests can hold admission slots,
// inspect the flight table and trigger drains deterministically.
func newRobustServer(t *testing.T, cfg serverConfig) (*httptest.Server, *server, *magicstate.Batcher) {
	t.Helper()
	if cfg.MaxParallel == 0 {
		cfg.MaxParallel = 2
	}
	if cfg.MaxPoints == 0 {
		cfg.MaxPoints = 256
	}
	b, err := magicstate.NewBatcher(magicstate.BatcherOptions{Parallelism: cfg.MaxParallel})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	srv := newServer(b, cfg)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return ts, srv, b
}

// --- admission unit tests ---

func TestAdmissionBudget(t *testing.T) {
	a := newAdmission(1, 1)
	rel1, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Slot taken: the next claim queues, the one after is rejected.
	r2, err := a.reserve()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.reserve(); !errors.Is(err, errQueueFull) {
		t.Fatalf("third claim = %v, want errQueueFull", err)
	}
	if a.rejected.Load() != 1 {
		t.Fatalf("rejected = %d, want 1", a.rejected.Load())
	}
	if q, in := a.queued.Load(), a.inflight.Load(); q != 1 || in != 1 {
		t.Fatalf("queued, inflight = %d, %d; want 1, 1", q, in)
	}

	// The queued claim converts to a slot once the holder releases.
	got := make(chan error, 1)
	go func() {
		rel2, err := r2.wait(context.Background())
		if err == nil {
			rel2()
		}
		got <- err
	}()
	select {
	case err := <-got:
		t.Fatalf("queued wait finished while the slot was held: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	rel1()
	rel1() // release is idempotent
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	if q, in := a.queued.Load(), a.inflight.Load(); q != 0 || in != 0 {
		t.Fatalf("after release: queued, inflight = %d, %d; want 0, 0", q, in)
	}
}

func TestAdmissionWaitHonorsContext(t *testing.T) {
	a := newAdmission(1, 4)
	rel, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("acquire(cancelled) = %v, want context.Canceled", err)
	}
	if a.queued.Load() != 0 {
		t.Fatalf("queued = %d after cancelled wait, want 0", a.queued.Load())
	}
	// abandon returns a queued place without occupying a slot.
	r, err := a.reserve()
	if err != nil {
		t.Fatal(err)
	}
	r.abandon()
	if a.queued.Load() != 0 {
		t.Fatalf("queued = %d after abandon, want 0", a.queued.Load())
	}
}

func TestRateLimiterBucket(t *testing.T) {
	rl := newRateLimiter(1, 2)
	now := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		if ok, _ := rl.allow("a", now); !ok {
			t.Fatalf("request %d within burst denied", i)
		}
	}
	ok, retry := rl.allow("a", now)
	if ok {
		t.Fatal("request beyond burst allowed")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retryAfter = %v, want (0, 1s]", retry)
	}
	// Other clients have their own budget.
	if ok, _ := rl.allow("b", now); !ok {
		t.Fatal("second client shares the first's bucket")
	}
	// A second of refill grants exactly one more token.
	if ok, _ := rl.allow("a", now.Add(time.Second)); !ok {
		t.Fatal("refilled token denied")
	}
	if ok, _ := rl.allow("a", now.Add(time.Second)); ok {
		t.Fatal("token granted twice")
	}
	if rl.limited.Load() != 2 {
		t.Fatalf("limited = %d, want 2", rl.limited.Load())
	}
	// The zero rate disables limiting.
	off := newRateLimiter(0, 0)
	for i := 0; i < 100; i++ {
		if ok, _ := off.allow("a", now); !ok {
			t.Fatal("disabled limiter denied a request")
		}
	}
}

// --- flight table unit tests ---

func TestFlightTableShares(t *testing.T) {
	ft := newFlightTable()
	started := make(chan struct{})
	unblock := make(chan struct{})
	want := &magicstate.Result{Strategy: "x", Latency: 7}
	fn := func(ctx context.Context) (*magicstate.Result, error) {
		close(started)
		<-unblock
		return want, nil
	}

	type out struct {
		res    *magicstate.Result
		joined bool
		err    error
	}
	results := make(chan out, 2)
	go func() {
		res, joined, err := ft.do(context.Background(), "k", fn)
		results <- out{res, joined, err}
	}()
	<-started
	go func() {
		res, joined, err := ft.do(context.Background(), "k", func(context.Context) (*magicstate.Result, error) {
			t.Error("second caller started its own computation")
			return nil, nil
		})
		results <- out{res, joined, err}
	}()
	// Wait until the second caller has actually joined before releasing.
	for ft.shared.Load() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	close(unblock)

	joins := 0
	for i := 0; i < 2; i++ {
		o := <-results
		if o.err != nil || o.res != want {
			t.Fatalf("caller %d: %v, %v", i, o.res, o.err)
		}
		if o.joined {
			joins++
		}
	}
	if joins != 1 {
		t.Fatalf("joined callers = %d, want 1", joins)
	}
	if ft.leaders.Load() != 1 || ft.shared.Load() != 1 {
		t.Fatalf("leaders, shared = %d, %d; want 1, 1", ft.leaders.Load(), ft.shared.Load())
	}
	if ft.size() != 0 {
		t.Fatalf("flight table size = %d after completion, want 0", ft.size())
	}
}

func TestFlightLoneCallerCancelStopsComputation(t *testing.T) {
	ft := newFlightTable()
	started := make(chan struct{})
	stopped := make(chan error, 1)
	ctx, cancel := context.WithCancel(context.Background())
	go ft.do(ctx, "k", func(fctx context.Context) (*magicstate.Result, error) {
		close(started)
		<-fctx.Done()
		stopped <- fctx.Err()
		return nil, fctx.Err()
	})
	<-started
	cancel()
	select {
	case err := <-stopped:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("flight context ended with %v, want Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("last caller left but the computation was never cancelled")
	}
}

func TestFlightSurvivesOneDisconnect(t *testing.T) {
	ft := newFlightTable()
	started := make(chan struct{})
	unblock := make(chan struct{})
	want := &magicstate.Result{Latency: 3}
	fn := func(fctx context.Context) (*magicstate.Result, error) {
		close(started)
		select {
		case <-unblock:
			return want, nil
		case <-fctx.Done():
			return nil, fctx.Err()
		}
	}
	survivor := make(chan *magicstate.Result, 1)
	go func() {
		res, _, _ := ft.do(context.Background(), "k", fn)
		survivor <- res
	}()
	<-started
	// A second caller joins, then disconnects: the flight must carry on.
	ctx, cancel := context.WithCancel(context.Background())
	joinGone := make(chan error, 1)
	go func() {
		_, _, err := ft.do(ctx, "k", fn)
		joinGone <- err
	}()
	for ft.shared.Load() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	if err := <-joinGone; !errors.Is(err, context.Canceled) {
		t.Fatalf("disconnected joiner got %v, want Canceled", err)
	}
	close(unblock)
	if res := <-survivor; res != want {
		t.Fatalf("surviving caller got %v, want the shared result", res)
	}
}

// --- HTTP robustness tests ---

func TestQueueFullAnswers429(t *testing.T) {
	ts, srv, _ := newRobustServer(t, serverConfig{MaxInflight: 1, MaxQueue: 0})
	// Occupy the only execution slot so any compute-carrying request
	// must be turned away at the door.
	release, err := srv.adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	resp := postJSON(t, ts.URL+"/v1/optimize", optimizeRequest{Capacity: 4, Levels: 1})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", ra)
	}
	resp.Body.Close()

	// The async job path must also answer 429 at submit time.
	resp = postJSON(t, ts.URL+"/v1/batch", batchRequest{Grid: &gridSpec{Capacities: []int{4}, Levels: 1}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("batch submit status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("batch 429 without Retry-After")
	}
	resp.Body.Close()
	if got := srv.adm.rejected.Load(); got != 2 {
		t.Fatalf("rejected = %d, want 2", got)
	}
}

func TestCacheHitsBypassAdmission(t *testing.T) {
	ts, srv, _ := newRobustServer(t, serverConfig{MaxInflight: 1, MaxQueue: 0})
	req := optimizeRequest{Capacity: 4, Levels: 1}
	resp := postJSON(t, ts.URL+"/v1/optimize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up status = %d, want 200", resp.StatusCode)
	}
	want := decode[resultJSON](t, resp)

	// Saturate the budget: the cached point must still be served.
	release, err := srv.adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	resp = postJSON(t, ts.URL+"/v1/optimize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached point under saturation: status = %d, want 200", resp.StatusCode)
	}
	if got := decode[resultJSON](t, resp); got != want {
		t.Fatalf("cached result %+v differs from computed %+v", got, want)
	}
}

func TestRateLimitAnswers429(t *testing.T) {
	ts, _, _ := newRobustServer(t, serverConfig{MaxInflight: 2, MaxQueue: 4, Rate: 0.01, Burst: 1})
	req := optimizeRequest{Capacity: 4, Levels: 1}
	resp := postJSON(t, ts.URL+"/v1/optimize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request status = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postJSON(t, ts.URL+"/v1/optimize", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" || resp.Header.Get("X-RateLimit-Limit") == "" {
		t.Fatalf("rate-limit 429 missing Retry-After/X-RateLimit-Limit headers: %v", resp.Header)
	}
	resp.Body.Close()
}

func TestDrainAnswers503AndCancelsJobs(t *testing.T) {
	ts, srv, _ := newRobustServer(t, serverConfig{MaxInflight: 2, MaxQueue: 4})
	// A slow job to be caught mid-flight by the drain.
	var pts []optimizeRequest
	for i := 0; i < 60; i++ {
		pts = append(pts, optimizeRequest{Capacity: 16, Levels: 2, Reuse: true, Seed: int64(i)})
	}
	resp := postJSON(t, ts.URL+"/v1/batch", batchRequest{Points: pts, Parallelism: 1})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job submit status = %d, want 202", resp.StatusCode)
	}
	id := decode[map[string]any](t, resp)["job_id"].(string)

	done := make(chan struct{})
	go func() {
		srv.drainJobs(10 * time.Second)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not complete")
	}

	// New compute requests are refused with 503 + Retry-After…
	resp = postJSON(t, ts.URL+"/v1/optimize", optimizeRequest{Capacity: 4, Levels: 1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("optimize during drain: status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drain 503 without Retry-After")
	}
	resp.Body.Close()

	// …while read-side endpoints keep answering: the cancelled job is
	// still queryable and resolved.
	r, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	jr := decode[map[string]any](t, r)
	if jr["status"] == "running" {
		t.Fatalf("job still running after drain: %v", jr)
	}
	sr, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decode[map[string]any](t, sr)
	if stats["draining"] != true {
		t.Fatalf("stats.draining = %v, want true", stats["draining"])
	}
}

// scrapeMetric fetches /metrics and returns the value of the first
// sample matching name (with any labels).
func scrapeMetric(t *testing.T, baseURL, name string) float64 {
	t.Helper()
	vals := scrapeMetricSeries(t, baseURL, name)
	total := 0.0
	for _, v := range vals {
		total += v
	}
	return total
}

// scrapeMetricSeries returns every sample of name keyed by its label
// block ("" for none).
func scrapeMetricSeries(t *testing.T, baseURL, name string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + `(\{[^}]*\})? ([0-9.eE+-]+)$`)
	out := make(map[string]float64)
	for _, m := range re.FindAllStringSubmatch(string(body), -1) {
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			t.Fatalf("unparsable sample %q: %v", m[0], err)
		}
		out[m[1]] = v
	}
	if len(out) == 0 {
		t.Fatalf("metric %s absent from /metrics:\n%s", name, body)
	}
	return out
}

// TestSingleflightCollapse is the acceptance check for the HTTP-layer
// singleflight: N concurrent clients asking for the same uncached point
// produce exactly one computation — one flight leader, one memo miss —
// and all N get byte-identical results; the collapse is visible in the
// /metrics counters.
func TestSingleflightCollapse(t *testing.T) {
	ts, srv, _ := newRobustServer(t, serverConfig{MaxInflight: 4, MaxQueue: 16, MaxParallel: 1})
	// A force-directed point takes long enough (hundreds of ms) that
	// all concurrent callers overlap its computation.
	req := optimizeRequest{Capacity: 64, Levels: 1, Strategy: "fd", Seed: 11}
	body, _ := json.Marshal(req)

	const clients = 4
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d", i, resp.StatusCode)
				return
			}
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("client %d result differs:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	if leaders := srv.flights.leaders.Load(); leaders != 1 {
		t.Fatalf("flight leaders = %d, want 1 (the whole point of singleflight)", leaders)
	}
	if got := scrapeMetric(t, ts.URL, "msfud_singleflight_leader_total"); got != 1 {
		t.Fatalf("/metrics leader_total = %g, want 1", got)
	}
	if misses := scrapeMetric(t, ts.URL, "msfud_cache_memory_misses_total"); misses != 1 {
		t.Fatalf("memo misses = %g, want 1 (N clients must share one computation)", misses)
	}
	shared := scrapeMetric(t, ts.URL, "msfud_singleflight_shared_total")
	hits := scrapeMetric(t, ts.URL, "msfud_cache_memory_hits_total")
	if shared+hits != clients-1 {
		t.Fatalf("shared (%g) + cache hits (%g) != %d followers", shared, hits, clients-1)
	}
}

// TestOptimizeClientDisconnectCancels is the regression test for the
// sync path honoring client disconnect: the request context must reach
// the pipeline, and an abandoned computation must neither be cached nor
// poison the point for the next caller.
func TestOptimizeClientDisconnectCancels(t *testing.T) {
	ts, srv, b := newRobustServer(t, serverConfig{MaxInflight: 2, MaxQueue: 4, MaxParallel: 1})
	req := optimizeRequest{Capacity: 64, Levels: 1, Strategy: "fd", Seed: 23}
	pt, err := req.point()
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(req)

	ctx, cancel := context.WithCancel(context.Background())
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/optimize", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(hr)
		if err == nil {
			resp.Body.Close()
			err = fmt.Errorf("request completed with status %d", resp.StatusCode)
		}
		errc <- err
	}()
	// Wait for the computation to start (the flight registers), then
	// hang up mid-anneal. The FD placement runs for hundreds of
	// milliseconds, so the cancel always lands inside it.
	deadline := time.Now().Add(5 * time.Second)
	for srv.flights.size() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("computation never started")
		}
		time.Sleep(200 * time.Microsecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("client saw %v, want its own cancellation", err)
	}
	// The flight winds down — the cancellation lands at the next
	// pipeline stage boundary, which under the race detector can be
	// seconds away — and the abandoned result is NOT cached.
	deadline = time.Now().Add(60 * time.Second)
	for srv.flights.size() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("flight never drained after disconnect")
		}
		time.Sleep(time.Millisecond)
	}
	if _, ok := b.Lookup(pt.Spec, pt.Opts); ok {
		t.Fatal("abandoned computation was cached")
	}
	// The point is not poisoned: the next caller computes it fine.
	resp := postJSON(t, ts.URL+"/v1/optimize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recompute after disconnect: status = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
	// The disconnect was accounted as 499 (client went away).
	if got := scrapeMetricSeries(t, ts.URL, "msfud_requests_total")[`{path="/v1/optimize",code="499"}`]; got != 1 {
		t.Fatalf("499 count = %g, want 1", got)
	}
}

func TestRequestTimeoutAnswers504(t *testing.T) {
	ts, _, b := newRobustServer(t, serverConfig{MaxInflight: 2, MaxQueue: 4, MaxParallel: 1, RequestTimeout: 30 * time.Millisecond})
	req := optimizeRequest{Capacity: 64, Levels: 1, Strategy: "fd", Seed: 31}
	pt, err := req.point()
	if err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, ts.URL+"/v1/optimize", req)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("504 without Retry-After")
	}
	resp.Body.Close()
	if _, ok := b.Lookup(pt.Spec, pt.Opts); ok {
		t.Fatal("timed-out computation was cached")
	}
}

func TestStrictRequestDecoding(t *testing.T) {
	ts, _, _ := newRobustServer(t, serverConfig{MaxInflight: 2, MaxQueue: 4})
	cases := map[string]string{
		"unknown field": `{"capacity": 4, "levels": 1, "capactiy": 9}`,
		"trailing data": `{"capacity": 4, "levels": 1} {"again": true}`,
		"not json":      `hello`,
		"wrong type":    `{"capacity": "four"}`,
	}
	for name, body := range cases {
		resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
		if e := decode[map[string]string](t, resp)["error"]; e == "" {
			t.Errorf("%s: missing structured error body", name)
		}
	}
	// Oversized body: 400 with a size message, not an unbounded read.
	big := `{"capacity": 4, "levels": 1, "strategy": "` + strings.Repeat("x", maxRequestBody) + `"}`
	resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized body: status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
	// The batch endpoint is equally strict.
	resp, err = http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(`{"grid": {"capacities": [4], "levels": 1}, "surprise": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("batch unknown field: status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestStreamDrainSendsTerminalFrame: a drain mid-stream must end the
// SSE response with a terminal error frame, not a silent connection
// drop.
func TestStreamDrainSendsTerminalFrame(t *testing.T) {
	ts, srv, _ := newRobustServer(t, serverConfig{MaxInflight: 2, MaxQueue: 4, MaxPoints: 256})
	var pts []optimizeRequest
	for i := 0; i < 120; i++ {
		pts = append(pts, optimizeRequest{Capacity: 16, Levels: 2, Reuse: true, Seed: int64(i)})
	}
	body, _ := json.Marshal(batchRequest{Points: pts, Parallelism: 1})
	resp, err := http.Post(ts.URL+"/v1/batch?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	go func() {
		// Let a few points land, then drain the server.
		time.Sleep(50 * time.Millisecond)
		srv.startDrain()
	}()
	var lastEvent string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event: ") {
			lastEvent = strings.TrimPrefix(sc.Text(), "event: ")
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream ended with transport error %v, want a clean terminal frame", err)
	}
	if lastEvent != "error" && lastEvent != "done" {
		t.Fatalf("stream ended on %q, want a terminal error/done frame", lastEvent)
	}
}

// TestStatsAndMetricsAgree: /v1/stats and /metrics read the same
// registry, so their shared counters must be equal on a quiet server.
func TestStatsAndMetricsAgree(t *testing.T) {
	ts, _, _ := newRobustServer(t, serverConfig{MaxInflight: 2, MaxQueue: 4})
	// Generate some traffic: a computed point, a cache hit, a 400.
	postJSON(t, ts.URL+"/v1/optimize", optimizeRequest{Capacity: 4, Levels: 1}).Body.Close()
	postJSON(t, ts.URL+"/v1/optimize", optimizeRequest{Capacity: 4, Levels: 1}).Body.Close()
	postJSON(t, ts.URL+"/v1/optimize", optimizeRequest{Capacity: 5, Levels: 2}).Body.Close()

	r, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decode[struct {
		Cache struct {
			MemoryHits         int64 `json:"memory_hits"`
			MemoryMisses       int64 `json:"memory_misses"`
			DiskHits           int64 `json:"disk_hits"`
			StageBuildHits     int64 `json:"stage_build_hits"`
			StageBuildComputes int64 `json:"stage_build_computes"`
			StagePlaceComputes int64 `json:"stage_place_computes"`
			StageSimComputes   int64 `json:"stage_sim_computes"`
		} `json:"cache"`
		Admission struct {
			QueueRejected int64 `json:"queue_rejected"`
			RateLimited   int64 `json:"rate_limited"`
		} `json:"admission"`
		Singleflight struct {
			Leaders int64 `json:"leaders"`
		} `json:"singleflight"`
		Requests map[string]int64 `json:"requests"`
	}](t, r)

	for name, want := range map[string]float64{
		"msfud_cache_memory_hits_total":   float64(stats.Cache.MemoryHits),
		"msfud_cache_memory_misses_total": float64(stats.Cache.MemoryMisses),
		"msfud_cache_disk_hits_total":     float64(stats.Cache.DiskHits),
		"msfud_queue_rejected_total":      float64(stats.Admission.QueueRejected),
		"msfud_rate_limited_total":        float64(stats.Admission.RateLimited),
		"msfud_singleflight_leader_total": float64(stats.Singleflight.Leaders),
	} {
		if got := scrapeMetric(t, ts.URL, name); got != want {
			t.Errorf("%s = %g, /v1/stats says %g", name, got, want)
		}
	}
	if stats.Requests["200"] != 2 || stats.Requests["400"] != 1 {
		t.Fatalf("request counts = %v, want 2x200 and 1x400", stats.Requests)
	}
	// The staged pipeline ran once (a computed point, no durable store
	// on this server), and the labeled stage series agree with stats.
	if stats.Cache.StageBuildComputes != 1 || stats.Cache.StagePlaceComputes != 1 || stats.Cache.StageSimComputes != 1 {
		t.Fatalf("stage computes = %d/%d/%d, want 1/1/1 for one cold point",
			stats.Cache.StageBuildComputes, stats.Cache.StagePlaceComputes, stats.Cache.StageSimComputes)
	}
	stageHits := scrapeMetricSeries(t, ts.URL, "msfud_cache_stage_hits_total")
	stageComputes := scrapeMetricSeries(t, ts.URL, "msfud_cache_stage_computes_total")
	if got := stageHits[`{stage="build"}`]; got != float64(stats.Cache.StageBuildHits) {
		t.Errorf("stage build hits: /metrics %g, /v1/stats %d", got, stats.Cache.StageBuildHits)
	}
	for stage, want := range map[string]int64{
		"build": stats.Cache.StageBuildComputes,
		"place": stats.Cache.StagePlaceComputes,
		"sim":   stats.Cache.StageSimComputes,
	} {
		if got := stageComputes[fmt.Sprintf("{stage=%q}", stage)]; got != float64(want) {
			t.Errorf("stage %s computes: /metrics %g, /v1/stats %d", stage, got, want)
		}
	}
	series := scrapeMetricSeries(t, ts.URL, "msfud_requests_total")
	if got := series[`{path="/v1/optimize",code="200"}`]; got != 2 {
		t.Fatalf("/metrics 200 count = %g, want 2", got)
	}
	if got := series[`{path="/v1/optimize",code="400"}`]; got != 1 {
		t.Fatalf("/metrics 400 count = %g, want 1", got)
	}
	// The latency histogram saw exactly the two accepted requests.
	if got := scrapeMetric(t, ts.URL, "msfud_request_seconds_count"); got != 2 {
		t.Fatalf("histogram count = %g, want 2 (only 2xx requests observed)", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram()
	for i := 0; i < 100; i++ {
		h.observe(0.003) // lands in the (0.0025, 0.005] bucket
	}
	if q := h.quantile(0.5); q <= 0.0025 || q > 0.005 {
		t.Fatalf("p50 = %g, want within (0.0025, 0.005]", q)
	}
	if q := h.quantile(0.99); q <= 0.0025 || q > 0.005 {
		t.Fatalf("p99 = %g, want within (0.0025, 0.005]", q)
	}
	if empty := newHistogram().quantile(0.5); empty != 0 {
		t.Fatalf("empty histogram p50 = %g, want 0", empty)
	}
}
