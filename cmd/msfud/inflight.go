package main

import (
	"context"
	"sync"
	"sync/atomic"

	"magicstate"
)

// flightTable is the HTTP layer's cross-request singleflight: a
// process-wide in-flight map keyed by the store's canonical config key
// (magicstate.PointKey), so N concurrent clients asking for the same
// not-yet-cached point share one computation and one result fan-out.
// It lifts the sweep memo's singleflight semantics up to where request
// lifetimes live: the shared computation runs on its own context that
// stays alive until the last interested caller leaves, so one client
// disconnecting never kills a computation other clients still want —
// and when every client vanishes, the work is cancelled instead of
// burning compute for nobody.
type flightTable struct {
	mu sync.Mutex
	m  map[string]*flight

	// leaders counts computations started; shared counts requests that
	// joined an existing flight instead of starting their own. The two
	// are the /metrics evidence that duplicate-heavy traffic collapses.
	leaders atomic.Int64
	shared  atomic.Int64
}

// flight is one in-progress computation and its subscribers.
type flight struct {
	refs   int // callers still waiting; last one out cancels
	cancel context.CancelFunc
	done   chan struct{} // closed once res/err are set
	res    *magicstate.Result
	err    error
}

func newFlightTable() *flightTable {
	return &flightTable{m: make(map[string]*flight)}
}

// do returns the result for key, starting fn at most once across all
// concurrent callers. fn runs on a context detached from any single
// request and cancelled when the last waiting caller's ctx ends; a
// caller whose own ctx ends first leaves with ctx.Err() while the
// flight carries on for the others. joined reports whether this call
// shared an existing flight (for per-request accounting).
func (t *flightTable) do(ctx context.Context, key string, fn func(context.Context) (*magicstate.Result, error)) (res *magicstate.Result, joined bool, err error) {
	t.mu.Lock()
	f, ok := t.m[key]
	if ok {
		f.refs++
		t.mu.Unlock()
		t.shared.Add(1)
	} else {
		fctx, cancel := context.WithCancel(context.Background())
		f = &flight{refs: 1, cancel: cancel, done: make(chan struct{})}
		t.m[key] = f
		t.mu.Unlock()
		t.leaders.Add(1)
		go func() {
			f.res, f.err = fn(fctx)
			t.mu.Lock()
			// Remove before signalling completion so a request arriving
			// after the result is out starts a fresh flight (the cache
			// tier, not this table, is where finished results live).
			if t.m[key] == f {
				delete(t.m, key)
			}
			t.mu.Unlock()
			close(f.done)
			cancel()
		}()
	}

	select {
	case <-f.done:
		t.leave(f)
		return f.res, ok, f.err
	case <-ctx.Done():
		t.leave(f)
		return nil, ok, ctx.Err()
	}
}

// leave drops one subscriber; the last one out cancels the flight's
// context (a no-op once the computation finished).
func (t *flightTable) leave(f *flight) {
	t.mu.Lock()
	f.refs--
	last := f.refs == 0
	t.mu.Unlock()
	if last {
		f.cancel()
	}
}

// size reports the live flight count (tests and the queue-depth view).
func (t *flightTable) size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}
