// Package sched implements the instruction-level scheduling analyses of
// §V: ASAP/ALAP schedules over the hazard dependency DAG, slack and
// critical-path statistics, commutativity-aware gate reordering (CNOTs
// sharing a control commute, as do disjoint gates), and barrier insertion.
// The braid simulator performs its own list scheduling at execution time;
// this package supplies the compile-time views the paper's scheduling
// discussion draws on (gate mobility across rounds, the effect of
// barriers on mobility, and schedule-level parallelism profiles).
package sched

import (
	"magicstate/internal/circuit"
	"magicstate/internal/resource"
)

// Schedule is a compile-time timing assignment: Start[i] is the cycle
// gate i would begin under unlimited routing bandwidth.
type Schedule struct {
	Start  []int
	Finish []int
	// Makespan is the completion time of the last gate.
	Makespan int
}

// ASAP returns the as-soon-as-possible schedule of c under cost model cm:
// every gate starts the moment its last dependency finishes.
func ASAP(c *circuit.Circuit, cm resource.CostModel) *Schedule {
	d := circuit.Deps(c)
	n := len(c.Gates)
	s := &Schedule{Start: make([]int, n), Finish: make([]int, n)}
	for i := 0; i < n; i++ {
		dur := cm.GateCycles(&c.Gates[i])
		s.Finish[i] = s.Start[i] + dur
		if s.Finish[i] > s.Makespan {
			s.Makespan = s.Finish[i]
		}
		for _, succ := range d.Succ[i] {
			if s.Finish[i] > s.Start[succ] {
				s.Start[succ] = s.Finish[i]
			}
		}
	}
	return s
}

// ALAP returns the as-late-as-possible schedule with the same makespan as
// ASAP; the difference between ALAP and ASAP start times is each gate's
// slack (its scheduling mobility, §V.A).
func ALAP(c *circuit.Circuit, cm resource.CostModel) *Schedule {
	d := circuit.Deps(c)
	n := len(c.Gates)
	asap := ASAP(c, cm)
	s := &Schedule{Start: make([]int, n), Finish: make([]int, n), Makespan: asap.Makespan}
	for i := 0; i < n; i++ {
		s.Finish[i] = asap.Makespan
	}
	for i := n - 1; i >= 0; i-- {
		dur := cm.GateCycles(&c.Gates[i])
		for _, succ := range d.Succ[i] {
			if s.Start[succ] < s.Finish[i] {
				s.Finish[i] = s.Start[succ]
			}
		}
		s.Start[i] = s.Finish[i] - dur
	}
	return s
}

// Slack returns per-gate mobility: ALAP start minus ASAP start. Gates
// with zero slack are on the critical path.
func Slack(c *circuit.Circuit, cm resource.CostModel) []int {
	asap := ASAP(c, cm)
	alap := ALAP(c, cm)
	out := make([]int, len(c.Gates))
	for i := range out {
		out[i] = alap.Start[i] - asap.Start[i]
	}
	return out
}

// ParallelismProfile returns, for each ASAP level, how many gates occupy
// it — the schedule's width profile. Useful for judging how much routing
// bandwidth a mapping must supply.
func ParallelismProfile(c *circuit.Circuit) []int {
	levels := circuit.Deps(c).Levels()
	max := 0
	for _, l := range levels {
		if l > max {
			max = l
		}
	}
	prof := make([]int, max+1)
	for _, l := range levels {
		prof[l]++
	}
	return prof
}

// Commute reports whether adjacent gates a and b may be exchanged without
// changing circuit semantics. Disjoint gates always commute. Two CNOT-like
// gates sharing only their controls commute (control-control overlap is
// diagonal in the same basis); sharing a target with a target also
// commutes for pure CNOTs. Everything else is conservatively ordered.
// Barriers never commute with anything they fence.
func Commute(a, b *circuit.Gate) bool {
	if a.Kind == circuit.KindBarrier || b.Kind == circuit.KindBarrier {
		return false
	}
	shared := sharedOperands(a, b)
	if len(shared) == 0 {
		return true
	}
	if !isCNOTLike(a.Kind) || !isCNOTLike(b.Kind) {
		return false
	}
	// Every shared qubit must play the same role (control/control or
	// target/target) in both gates.
	for _, q := range shared {
		ra, rb := roleOf(a, q), roleOf(b, q)
		if ra != rb || ra == roleMixed {
			return false
		}
	}
	return true
}

type role int

const (
	roleControl role = iota
	roleTarget
	roleMixed
)

func isCNOTLike(k circuit.Kind) bool {
	return k == circuit.KindCNOT || k == circuit.KindCXX
}

func roleOf(g *circuit.Gate, q circuit.Qubit) role {
	if g.Control == q {
		return roleControl
	}
	for _, t := range g.Targets {
		if t == q {
			return roleTarget
		}
	}
	return roleMixed
}

func sharedOperands(a, b *circuit.Gate) []circuit.Qubit {
	set := make(map[circuit.Qubit]bool)
	for _, q := range a.Operands() {
		set[q] = true
	}
	var out []circuit.Qubit
	for _, q := range b.Operands() {
		if set[q] {
			out = append(out, q)
		}
	}
	return out
}

// SiftEarlier moves each gate as early in program order as commutation
// allows (a bubble pass repeated to fixpoint, capped for safety). The
// hazard DAG the simulator builds from the reordered program admits more
// parallelism when commuting gates were previously order-serialized. It
// returns a new circuit; the input is untouched.
func SiftEarlier(c *circuit.Circuit) *circuit.Circuit {
	out := c.Clone()
	for pass := 0; pass < 8; pass++ {
		changed := false
		for i := 1; i < len(out.Gates); i++ {
			j := i
			for j > 0 && Commute(&out.Gates[j-1], &out.Gates[j]) && wouldUnblock(out, j) {
				out.Gates[j-1], out.Gates[j] = out.Gates[j], out.Gates[j-1]
				j--
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return out
}

// wouldUnblock limits sifting to exchanges that can actually shorten the
// hazard chain: swapping two gates that share no operands never changes
// the DAG, so skip those to keep the pass cheap and stable.
func wouldUnblock(c *circuit.Circuit, j int) bool {
	return len(sharedOperands(&c.Gates[j-1], &c.Gates[j])) > 0
}

// InsertRoundBarriers returns a copy of c with a barrier over qs after
// every gate index in cutpoints (ascending). It is the generic form of
// the generator's built-in round fencing, usable on arbitrary circuits.
func InsertRoundBarriers(c *circuit.Circuit, cutpoints []int, qs []circuit.Qubit) *circuit.Circuit {
	out := circuit.New(c.NumQubits)
	out.Names = append([]string(nil), c.Names...)
	next := 0
	for i := range c.Gates {
		g := c.Gates[i]
		g.Targets = append([]circuit.Qubit(nil), g.Targets...)
		out.Append(g)
		if next < len(cutpoints) && cutpoints[next] == i {
			out.Barrier(qs)
			next++
		}
	}
	return out
}
