// Tbudget: provision magic-state factories for a realistic workload. The
// paper's motivation (§II.D) estimates the Fe2S2 ground-state algorithm
// at ~1e12 T gates; this example sizes a stitched two-level factory,
// derates its throughput by the distillation success probability, and
// reports how many factory-copies and how much wall-clock a surface-code
// machine needs to feed the algorithm.
package main

import (
	"fmt"
	"log"

	"magicstate"
)

func main() {
	const (
		totalTGates    = 1e12 // Fe2S2 estimate from §II.D
		cycleSeconds   = 1e-6 // one surface-code cycle at ~1 MHz
		targetWallDays = 30.0 // provisioning target
	)

	spec := magicstate.FactorySpec{Capacity: 16, Levels: 2, Reuse: true}
	res, err := magicstate.Optimize(spec, magicstate.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	est, err := magicstate.EstimateResources(spec)
	if err != nil {
		log.Fatal(err)
	}

	statesPerRun := float64(spec.Capacity)
	effRunLatency := float64(res.Latency) * est.ExpectedRunsPerBatch
	statesPerCycle := statesPerRun / effRunLatency
	cyclesNeeded := totalTGates / statesPerCycle
	wallSecondsOneFactory := cyclesNeeded * cycleSeconds
	wallDaysOneFactory := wallSecondsOneFactory / 86400
	factories := int(wallDaysOneFactory/targetWallDays) + 1

	var phys int
	for _, q := range est.PhysicalQubitsPerRound {
		phys += q
	}

	fmt.Printf("workload: %.0g T gates (Fe2S2 ground-state estimate, §II.D)\n", totalTGates)
	fmt.Printf("factory: capacity %d, %d levels, %s mapping\n", spec.Capacity, spec.Levels, res.Strategy)
	fmt.Printf("  run latency %d cycles, success derating %.2fx\n", res.Latency, est.ExpectedRunsPerBatch)
	fmt.Printf("  output error %.3g per state\n", est.OutputError)
	fmt.Printf("  physical qubits per factory: %d (d=%v)\n", phys, est.RoundDistances)
	fmt.Printf("throughput: %.3g states/cycle per factory\n", statesPerCycle)
	fmt.Printf("one factory: %.1f days of wall clock at %.0f MHz\n",
		wallDaysOneFactory, 1/cycleSeconds/1e6)
	fmt.Printf("to finish in %.0f days: %d parallel factories (~%.3g physical qubits)\n",
		targetWallDays, factories, float64(factories)*float64(phys))
}
