// Package partition implements the recursive graph-partitioning grid
// embedding of §VI.B.2: a multilevel bisection (heavy-edge matching
// coarsening, greedy min-cut on the coarsest graph, Kernighan-Lin style
// refinement during uncoarsening), where every bisection of the
// interaction graph is matched by a bisection of the grid region being
// filled, following the METIS/SCOTCH lineage the paper cites [45-49].
package partition

import (
	"math/rand"
	"sort"

	"magicstate/internal/graph"
	"magicstate/internal/layout"
)

// Embed places every vertex of g onto a w x h grid (w*h >= g.N) by
// recursive bisection. rng breaks ties during coarsening and seeding; the
// same seed reproduces the same embedding.
func Embed(g *graph.Graph, w, h int, rng *rand.Rand) *layout.Placement {
	p := layout.NewPlacement(g.N, w, h)
	verts := make([]int, g.N)
	for i := range verts {
		verts[i] = i
	}
	embedRegion(g, verts, region{0, 0, w, h}, p, rng)
	return p
}

// EmbedSquare embeds onto the smallest near-square grid.
func EmbedSquare(g *graph.Graph, rng *rand.Rand) *layout.Placement {
	w, h := layout.GridFor(g.N, 1)
	return Embed(g, w, h, rng)
}

type region struct{ x, y, w, h int }

func (r region) tiles() int { return r.w * r.h }

// embedRegion recursively assigns verts to tiles of r.
func embedRegion(g *graph.Graph, verts []int, r region, p *layout.Placement, rng *rand.Rand) {
	if len(verts) == 0 {
		return
	}
	if len(verts) == 1 {
		p.Set(verts[0], layout.Point{X: r.x, Y: r.y})
		return
	}
	if r.tiles() <= 1 {
		// Should not happen for well-sized grids; drop extra vertices on
		// the single tile's neighbors is impossible, so panic loudly in
		// development via placement validation later.
		p.Set(verts[0], layout.Point{X: r.x, Y: r.y})
		return
	}
	// Split the region along its longer axis.
	var rA, rB region
	if r.w >= r.h {
		wA := r.w / 2
		rA = region{r.x, r.y, wA, r.h}
		rB = region{r.x + wA, r.y, r.w - wA, r.h}
	} else {
		hA := r.h / 2
		rA = region{r.x, r.y, r.w, hA}
		rB = region{r.x, r.y + hA, r.w, r.h - hA}
	}
	// Target part sizes proportional to tile counts, clamped to fit.
	nA := (len(verts)*rA.tiles() + r.tiles()/2) / r.tiles()
	if nA > rA.tiles() {
		nA = rA.tiles()
	}
	if len(verts)-nA > rB.tiles() {
		nA = len(verts) - rB.tiles()
	}
	if nA < 0 {
		nA = 0
	}
	if nA > len(verts) {
		nA = len(verts)
	}
	sub, orig := g.Subgraph(verts)
	partA := Bisect(sub, nA, rng)
	var vertsA, vertsB []int
	for i, inA := range partA {
		if inA {
			vertsA = append(vertsA, orig[i])
		} else {
			vertsB = append(vertsB, orig[i])
		}
	}
	embedRegion(g, vertsA, rA, p, rng)
	embedRegion(g, vertsB, rB, p, rng)
}

// Bisect splits g's vertices into a part of exactly nA vertices (returned
// as a bool mask) and the rest, minimizing the weight of cut edges via
// weight-aware multilevel coarsening plus KL refinement.
func Bisect(g *graph.Graph, nA int, rng *rand.Rand) []bool {
	w := make([]int, g.N)
	for i := range w {
		w[i] = 1
	}
	mask := bisectW(g, w, nA, rng)
	rebalanceW(g, w, mask, nA)
	klRefine(g, mask, nil)
	rebalanceW(g, w, mask, nA)
	return mask
}

// bisectW is the multilevel core: vweight[v] counts the fine vertices a
// (possibly coarse) vertex represents and targetA is measured in fine
// vertices, so the split target survives coarsening unchanged.
func bisectW(g *graph.Graph, vweight []int, targetA int, rng *rand.Rand) []bool {
	total := 0
	for _, w := range vweight {
		total += w
	}
	if targetA <= 0 {
		return make([]bool, g.N)
	}
	if targetA >= total {
		mask := make([]bool, g.N)
		for i := range mask {
			mask[i] = true
		}
		return mask
	}
	const coarsestSize = 24
	if g.N > coarsestSize {
		match := heavyEdgeMatching(g, rng)
		coarse, mapDown := contract(g, match)
		if coarse.N < g.N {
			cw := make([]int, coarse.N)
			for v := 0; v < g.N; v++ {
				cw[mapDown[v]] += vweight[v]
			}
			coarseMask := bisectW(coarse, cw, targetA, rng)
			mask := make([]bool, g.N)
			for v := 0; v < g.N; v++ {
				mask[v] = coarseMask[mapDown[v]]
			}
			rebalanceW(g, vweight, mask, targetA)
			klRefine(g, mask, nil)
			rebalanceW(g, vweight, mask, targetA)
			return mask
		}
	}
	mask := greedyGrowW(g, vweight, targetA, rng)
	klRefine(g, mask, nil)
	rebalanceW(g, vweight, mask, targetA)
	return mask
}

// heavyEdgeMatching pairs each unmatched vertex with its heaviest-edge
// unmatched neighbor. match[v] == v means unmatched.
func heavyEdgeMatching(g *graph.Graph, rng *rand.Rand) []int {
	match := make([]int, g.N)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(g.N)
	for _, v := range order {
		if match[v] != -1 {
			continue
		}
		best, bestW := -1, 0.0
		g.Neighbors(v, func(u int, w float64) {
			if match[u] == -1 && u != v && w > bestW {
				best, bestW = u, w
			}
		})
		if best >= 0 {
			match[v], match[best] = best, v
		} else {
			match[v] = v
		}
	}
	return match
}

// contract merges matched pairs into single coarse vertices.
func contract(g *graph.Graph, match []int) (*graph.Graph, []int) {
	mapDown := make([]int, g.N)
	next := 0
	for v := 0; v < g.N; v++ {
		if match[v] >= v || match[v] == -1 { // representative: smaller id of the pair
			mapDown[v] = next
			next++
		}
	}
	for v := 0; v < g.N; v++ {
		if match[v] < v {
			mapDown[v] = mapDown[match[v]]
		}
	}
	coarse := graph.New(next)
	for _, e := range g.Edges {
		cu, cv := mapDown[e.U], mapDown[e.V]
		if cu != cv {
			coarse.AddEdge(cu, cv, e.Weight)
		}
	}
	return coarse, mapDown
}

// greedyGrowW seeds part A at the highest weighted-degree vertex and
// grows it by repeatedly absorbing the outside vertex with the largest
// connection to A until A's fine-vertex weight reaches targetA.
func greedyGrowW(g *graph.Graph, vweight []int, targetA int, rng *rand.Rand) []bool {
	mask := make([]bool, g.N)
	seed := 0
	bestDeg := -1.0
	for v := 0; v < g.N; v++ {
		if d := g.WeightedDegree(v); d > bestDeg {
			bestDeg, seed = d, v
		}
	}
	mask[seed] = true
	weightA := vweight[seed]
	gain := make([]float64, g.N)
	g.Neighbors(seed, func(u int, w float64) { gain[u] += w })
	for weightA < targetA {
		best, bestGain := -1, -1.0
		for v := 0; v < g.N; v++ {
			if !mask[v] && gain[v] > bestGain {
				best, bestGain = v, gain[v]
			}
		}
		if best == -1 {
			for v := 0; v < g.N; v++ {
				if !mask[v] {
					best = v
					break
				}
			}
			if best == -1 {
				break
			}
		}
		mask[best] = true
		weightA += vweight[best]
		g.Neighbors(best, func(u int, w float64) { gain[u] += w })
	}
	return mask
}

// rebalanceW moves vertices across the cut (best connection gain first,
// breaking ties toward light vertices) until part A's fine weight is as
// close to targetA as vertex granularity allows.
func rebalanceW(g *graph.Graph, vweight []int, mask []bool, targetA int) {
	weightA := 0
	for v, in := range mask {
		if in {
			weightA += vweight[v]
		}
	}
	for weightA != targetA {
		fromA := weightA > targetA
		need := weightA - targetA
		if need < 0 {
			need = -need
		}
		best, bestGain := -1, -1e18
		for v := 0; v < g.N; v++ {
			if mask[v] != fromA || vweight[v] > need {
				continue
			}
			gain := 0.0
			g.Neighbors(v, func(u int, w float64) {
				if mask[u] == mask[v] {
					gain -= w
				} else {
					gain += w
				}
			})
			if gain > bestGain {
				best, bestGain = v, gain
			}
		}
		if best == -1 {
			return // no vertex small enough to close the gap at this level
		}
		mask[best] = !mask[best]
		if fromA {
			weightA -= vweight[best]
		} else {
			weightA += vweight[best]
		}
	}
}

// klRefine performs Kernighan-Lin style pairwise swaps across the cut
// while any swap strictly reduces cut weight, preserving part sizes.
// fixed (optional) marks vertices that may not move.
func klRefine(g *graph.Graph, mask []bool, fixed []bool) {
	for pass := 0; pass < 8; pass++ {
		improved := false
		// External-internal gain per vertex.
		gain := make([]float64, g.N)
		for v := 0; v < g.N; v++ {
			g.Neighbors(v, func(u int, w float64) {
				if mask[u] == mask[v] {
					gain[v] -= w
				} else {
					gain[v] += w
				}
			})
		}
		// Consider boundary vertices sorted by gain.
		var cand []int
		for v := 0; v < g.N; v++ {
			if fixed != nil && fixed[v] {
				continue
			}
			if gain[v] > 0 {
				cand = append(cand, v)
			}
		}
		sort.Slice(cand, func(i, j int) bool { return gain[cand[i]] > gain[cand[j]] })
		used := make(map[int]bool)
		for _, a := range cand {
			if used[a] {
				continue
			}
			// Find the best partner on the other side.
			bestB, bestGain := -1, 0.0
			for _, b := range cand {
				if used[b] || mask[b] == mask[a] {
					continue
				}
				wab := 0.0
				g.Neighbors(a, func(u int, w float64) {
					if u == b {
						wab = w
					}
				})
				tg := gain[a] + gain[b] - 2*wab
				if tg > bestGain {
					bestB, bestGain = b, tg
				}
			}
			if bestB >= 0 {
				mask[a] = !mask[a]
				mask[bestB] = !mask[bestB]
				used[a], used[bestB] = true, true
				improved = true
				// Refresh gains of the neighborhood lazily: full
				// recompute next pass keeps this simple and correct.
			}
		}
		if !improved {
			break
		}
	}
}

// CutWeight returns the total weight of edges crossing the mask.
func CutWeight(g *graph.Graph, mask []bool) float64 {
	var s float64
	for _, e := range g.Edges {
		if mask[e.U] != mask[e.V] {
			s += e.Weight
		}
	}
	return s
}
