package sweep

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"magicstate/internal/core"
	"magicstate/internal/store"
)

func grid() []core.Config {
	var cfgs []core.Config
	for _, k := range []int{1, 2} {
		for _, s := range []core.Strategy{core.StrategyLinear, core.StrategyRandom} {
			cfgs = append(cfgs, core.Config{K: k, Levels: 1, Strategy: s, Seed: 7})
		}
	}
	return cfgs
}

func TestRunMatchesSerialOrder(t *testing.T) {
	cfgs := grid()
	serial, err := New(Options{Workers: 1}).Run(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := New(Options{Workers: 4}).Run(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(cfgs) || len(parallel) != len(cfgs) {
		t.Fatalf("result lengths %d/%d, want %d", len(serial), len(parallel), len(cfgs))
	}
	for i := range cfgs {
		if serial[i].Config != cfgs[i] {
			t.Fatalf("serial result %d is for %+v, want %+v", i, serial[i].Config, cfgs[i])
		}
		if serial[i].Latency != parallel[i].Latency ||
			serial[i].Area != parallel[i].Area ||
			serial[i].Volume != parallel[i].Volume {
			t.Fatalf("point %d: serial %+v != parallel %+v", i, serial[i], parallel[i])
		}
	}
}

func TestRunMemoizesDuplicates(t *testing.T) {
	cfg := core.Config{K: 1, Levels: 1, Strategy: core.StrategyLinear, Seed: 1}
	e := New(Options{Workers: 4})
	reps, err := e.Run(context.Background(), []core.Config{cfg, cfg, cfg, cfg})
	if err != nil {
		t.Fatal(err)
	}
	_, misses := e.CacheStats()
	if misses != 1 {
		t.Fatalf("misses = %d, want 1 for four identical points", misses)
	}
	for i := 1; i < len(reps); i++ {
		if reps[i] != reps[0] {
			t.Fatal("identical points should share one memoized report")
		}
	}
	// A second Run on the same engine hits the cache entirely.
	if _, err := e.Run(context.Background(), []core.Config{cfg}); err != nil {
		t.Fatal(err)
	}
	if _, misses = e.CacheStats(); misses != 1 {
		t.Fatalf("misses after second run = %d, want 1", misses)
	}
}

func TestProgressCallback(t *testing.T) {
	var calls []int
	e := New(Options{Workers: 3, Progress: func(done, total int) {
		if total != 4 {
			t.Errorf("total = %d, want 4", total)
		}
		calls = append(calls, done)
	}})
	if _, err := e.Run(context.Background(), grid()); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 4 {
		t.Fatalf("progress called %d times, want 4", len(calls))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress done counts %v not monotonic", calls)
		}
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		_, err := New(Options{Workers: workers}).Run(ctx, grid())
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

func TestMapFirstIndexError(t *testing.T) {
	// Serial execution reports exactly the first failure.
	e := New(Options{Workers: 1})
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	fail := func(i, v int) (int, error) {
		if v >= 3 {
			return 0, fmt.Errorf("item %d failed", v)
		}
		return v * v, nil
	}
	_, err := Map(context.Background(), e, items, fail)
	if err == nil || err.Error() != "item 3 failed" {
		t.Fatalf("serial err = %v, want item 3's failure", err)
	}
	// Parallel execution stops dispatching after a failure and reports
	// the lowest-indexed point that ran and failed — some failing item,
	// never a skipped sentinel or nil.
	_, err = Map(context.Background(), New(Options{Workers: 4}), items, fail)
	if err == nil || !strings.Contains(err.Error(), "failed") {
		t.Fatalf("parallel err = %v, want a real item failure", err)
	}
}

func TestMapFailFastSkipsAndTicks(t *testing.T) {
	var started atomic.Int64
	var ticks int
	items := make([]int, 64)
	e := New(Options{Workers: 2, Progress: func(done, total int) {
		if total != len(items) {
			t.Errorf("total = %d, want %d", total, len(items))
		}
		ticks = done
	}})
	_, err := Map(context.Background(), e, items, func(i, v int) (int, error) {
		started.Add(1)
		return 0, fmt.Errorf("item %d failed", i)
	})
	if err == nil {
		t.Fatal("want an error")
	}
	// After the first failure the pool skips remaining points instead
	// of computing them...
	if n := started.Load(); n >= int64(len(items)) {
		t.Fatalf("all %d points ran despite fail-fast", n)
	}
	// ...but every point (run or skipped) still ticks progress.
	if ticks != len(items) {
		t.Fatalf("progress reached %d/%d", ticks, len(items))
	}
}

func TestMapOrderingAndEmpty(t *testing.T) {
	e := New(Options{Workers: 8})
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	out, err := Map(context.Background(), e, items, func(i, v int) (int, error) {
		return v * 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*2 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*2)
		}
	}
	empty, err := Map(context.Background(), e, nil, func(i, v int) (int, error) { return 0, nil })
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty map = %v, %v", empty, err)
	}
}

func TestRunSurfacesPipelineError(t *testing.T) {
	bad := core.Config{K: -1, Levels: 1, Strategy: core.StrategyLinear}
	for _, workers := range []int{1, 4} {
		_, err := New(Options{Workers: workers}).Run(context.Background(), []core.Config{bad})
		if err == nil {
			t.Fatalf("workers=%d: invalid config should fail", workers)
		}
	}
}

// TestRunOneContextCancelDoesNotPoison: a cancelled computation must
// return the context error without caching it — the same point asked
// again by a live caller computes and succeeds.
func TestRunOneContextCancelDoesNotPoison(t *testing.T) {
	e := New(Options{Workers: 1})
	cfg := core.Config{K: 4, Levels: 1, Strategy: core.StrategyLinear, Seed: 3}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.RunOneContext(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunOneContext(cancelled) = %v, want context.Canceled", err)
	}
	if _, ok := e.PeekOne(cfg); ok {
		t.Fatal("cancelled computation was cached")
	}
	rep, err := e.RunOne(cfg)
	if err != nil {
		t.Fatalf("RunOne after cancelled attempt: %v", err)
	}
	if rep == nil || rep.Latency <= 0 {
		t.Fatalf("recomputed report = %+v", rep)
	}
}

// TestPeekOneTiers: PeekOne sees completed memo entries and durable
// store records, and misses points that were never computed.
func TestPeekOneTiers(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Workers: 1, Store: st})
	cfg := core.Config{K: 4, Levels: 1, Strategy: core.StrategyLinear, Seed: 9}

	if _, ok := e.PeekOne(cfg); ok {
		t.Fatal("PeekOne hit before any computation")
	}
	want, err := e.RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := e.PeekOne(cfg); !ok || got != want {
		t.Fatalf("PeekOne after RunOne = %v, %v", got, ok)
	}
	st.Close()

	// A fresh process (new engine over the same directory) peeks the
	// point from disk without computing.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	e2 := New(Options{Workers: 1, Store: st2})
	got, ok := e2.PeekOne(cfg)
	if !ok {
		t.Fatal("PeekOne missed the durable record")
	}
	if got.Latency != want.Latency || got.Area != want.Area {
		t.Fatalf("disk peek = %+v, want %+v", got, want)
	}
	if e2.DiskHits() != 1 {
		t.Fatalf("DiskHits = %d, want 1", e2.DiskHits())
	}
}
