// Package core wires the whole toolchain together following the flow
// chart of Fig. 3: generate the block-code factory, map it with one of
// the paper's strategies (random, linear, force-directed annealing,
// recursive graph partitioning, hierarchical stitching), execute the
// mapped circuit on the cycle-accurate braid mesh, and report latency,
// area, space-time volume and the theoretical lower bound.
package core

import (
	"context"
	"fmt"

	"magicstate/internal/bravyi"
	"magicstate/internal/force"
	"magicstate/internal/graph"
	"magicstate/internal/layout"
	"magicstate/internal/mesh"
	"magicstate/internal/resource"
	"magicstate/internal/stitch"
	"magicstate/internal/sweep/memo"
)

// Strategy selects a mapping procedure.
type Strategy int

const (
	// StrategyRandom places qubits uniformly at random (Table I "Random").
	StrategyRandom Strategy = iota
	// StrategyLinear is the hand-optimized linear mapping of Fowler et
	// al. [19] ("Line").
	StrategyLinear
	// StrategyForceDirected anneals the linear mapping with the dipole /
	// repulsion / attraction forces of §VI.B.1 ("FD").
	StrategyForceDirected
	// StrategyGraphPartition embeds the global interaction graph by
	// recursive bisection (§VI.B.2, "GP").
	StrategyGraphPartition
	// StrategyStitch is hierarchical stitching (§VII, "HS").
	StrategyStitch
)

var strategyNames = map[Strategy]string{
	StrategyRandom:         "Random",
	StrategyLinear:         "Line",
	StrategyForceDirected:  "FD",
	StrategyGraphPartition: "GP",
	StrategyStitch:         "HS",
}

// String returns the Table I row label for the strategy.
func (s Strategy) String() string {
	if n, ok := strategyNames[s]; ok {
		return n
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// Config describes one factory optimization run.
type Config struct {
	// K and Levels define the Bravyi-Haah block code; see bravyi.Params.
	K, Levels int
	// Reuse enables sharing-after-measurement qubit reuse (§V.B).
	Reuse bool
	// Barriers inserts the inter-round fences of §V.A (default on; set
	// NoBarriers to drop them for the scheduling ablation).
	NoBarriers bool
	// Strategy picks the mapper.
	Strategy Strategy
	// Seed drives every randomized component.
	Seed int64
	// Cost overrides the gate cost model (zero value = defaults).
	Cost resource.CostModel
	// Mesh overrides simulator knobs other than Cost. RouteMargin follows
	// mesh.Config's convention: 0 means the default margin of 2, and
	// mesh.ZeroRouteMargin (-1) requests a true zero-margin box.
	MeshMode    mesh.RouteMode
	RouteMargin int
	// Style selects the surface-code interaction discipline (§IX); the
	// zero value is the paper's braiding model. Distance feeds the
	// distance-sensitive styles (zero means 7).
	Style    mesh.InteractionStyle
	Distance int
	// RecordPaths keeps braid paths in the simulation result so callers
	// can audit overlaps or draw congestion maps.
	RecordPaths bool
	// FD carries force-directed overrides (Iterations etc.).
	FD force.Options
	// Stitch carries hierarchical stitching overrides; Reuse and Seed are
	// taken from this Config.
	Stitch stitch.Options
	// Workload selects an alternative circuit frontend. Empty (the
	// default) builds the paper's Bravyi-Haah factory from K/Levels;
	// "qasm" and "scaffold" compile WorkloadSource as program text;
	// "random" generates a seeded layered circuit from a workload.Spec
	// string. Frontend workloads carry no round structure, so
	// StrategyStitch rejects them.
	Workload string
	// WorkloadSource is the frontend input: program source for
	// qasm/scaffold, the canonical workload spec for random.
	WorkloadSource string
	// Defects names defective tiles of a heterogeneous mesh in the
	// canonical layout.DefectMap codec ("x,y;x,y" row-major). Defective
	// tiles host no qubits (placements relocate around them) and the
	// router treats their region as permanently blocked.
	Defects string
}

// Report is the outcome of a run.
type Report struct {
	Config   Config
	Strategy string
	// Latency, Area and Volume are the simulated cost of the mapped
	// factory (Volume = Latency x Area, the paper's quantum volume).
	Latency int
	Area    int
	Volume  float64
	// CriticalLatency and CriticalVolume are the dependency-limited lower
	// bounds (Fig. 7's "theoretical lower bound", Table I "Critical").
	CriticalLatency int
	CriticalVolume  float64
	// PermLatency is the round-2 permutation window for multi-level runs.
	PermLatency int
	// Stalls counts rejected braid attempts (congestion diagnostic).
	Stalls int

	Factory   *bravyi.Factory
	Placement *layout.Placement
	Sim       *mesh.Result
}

// Run executes the full pipeline for cfg.
func Run(cfg Config) (*Report, error) { return RunContext(context.Background(), cfg) }

// RunContext is Run with cooperative cancellation: ctx is checked at
// every stage boundary (factory build, placement, simulation), so work
// abandoned by its caller — a vanished HTTP client, an expired request
// deadline — stops costing compute at the next boundary instead of
// running to completion. Cancellation returns ctx.Err(); partial work
// is discarded, never reported.
//
// RunContext is the monolithic serial composition of the pipeline's
// explicit stages (BuildStage, PlaceStage, SimStage, Assemble); caching
// layers that replay individual stage artifacts (internal/sweep's stage
// tier) reproduce this exact composition, which is what the
// stage-equivalence harness pins byte-identical.
func RunContext(ctx context.Context, cfg Config) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b, err := BuildStage(ctx, cfg)
	if err != nil {
		return nil, err
	}
	p, err := PlaceStage(ctx, cfg, b)
	if err != nil {
		return nil, err
	}
	sim, err := SimStage(ctx, cfg, b, p)
	if err != nil {
		return nil, err
	}
	return Assemble(cfg, b, p, sim), nil
}

// fdKey identifies one force-directed candidate evaluation: everything
// that deterministically fixes the init/annealed placements and their
// simulation outcomes. bravyi.Params itself is spelled out as scalars
// because its Assigner func field makes the struct unhashable (FD runs
// never set it).
type fdKey struct {
	K, Levels       int
	Reuse, Barriers bool
	// Workload and WorkloadSource pin the circuit for frontend
	// workloads, where K/Levels are zero and say nothing about it.
	Workload, WorkloadSource string
	Mesh                     mesh.Config
	Seed                     int64
	FD                       force.Options
}

// fdChoice is the memoized outcome: the winning placement and its
// simulation. Both are shared across callers and must be treated as
// read-only.
type fdChoice struct {
	pl  *layout.Placement
	sim *mesh.Result
}

// fdMemo caches force-directed candidate evaluations. The annealer plus
// the two candidate simulations dominate an FD run, and sweep grids
// (Table I's best-of-reuse scan, Fig. 7/10 sharing capacity points)
// evaluate the same key repeatedly; routing the candidates through the
// sweep engine's memo cache computes each once per process. Each entry
// retains a full placement and simulation, so the limit is kept small:
// the complete paper evaluation needs ~15 distinct FD keys, while a
// long-running caller with endlessly varying configs re-derives evicted
// entries instead of holding their simulations forever.
var fdMemo = memo.New(64)

// fdAnnealer is the process-wide annealing engine behind force-directed
// placements. Like the mesh simulator pool, its scratch arenas carry
// across sweep points: every FD evaluation in a batch reuses the same
// occupancy grid, proposal-order and sample buffers instead of
// reallocating them per point.
var fdAnnealer = force.NewAnnealer()

// placeFD anneals the linear mapping and keeps whichever of the initial
// and annealed candidates actually executes faster (the toolchain
// evaluates candidates in simulation, §VIII.A).
func placeFD(cfg Config, f *bravyi.Factory, mcfg mesh.Config) (*layout.Placement, *mesh.Result, error) {
	opt := cfg.FD
	opt.Seed = cfg.Seed
	key := fdKey{
		K: cfg.K, Levels: cfg.Levels, Reuse: cfg.Reuse, Barriers: !cfg.NoBarriers,
		Workload: cfg.Workload, WorkloadSource: cfg.WorkloadSource,
		Mesh: mcfg, Seed: cfg.Seed, FD: opt,
	}
	v, err := fdMemo.Do(key, func() (any, error) {
		dm, err := layout.ParseDefects(mcfg.Defects)
		if err != nil {
			return nil, err
		}
		g := graph.FromCircuit(f.Circuit)
		init := initialPlacement(f)
		if err := layout.AvoidDefects(init, dm); err != nil {
			return nil, err
		}
		annealed := fdAnnealer.Anneal(g, f.Circuit, init, opt)
		// The annealer knows nothing about defects; pull any qubit it
		// parked on a dead tile back onto healthy ground before the
		// candidates are scored, so the memoized simulation always
		// matches the placement it is stored with.
		if err := layout.AvoidDefects(annealed, dm); err != nil {
			return nil, err
		}
		// Both candidates are evaluated on one reusable simulator: the
		// second run reuses the first's arenas and cached dependency DAG
		// (same circuit), paying only for the Result it returns.
		sim := mesh.NewSimulator()
		ri, err1 := sim.Simulate(f.Circuit, init, mcfg)
		ra, err2 := sim.Simulate(f.Circuit, annealed, mcfg)
		if err1 != nil {
			return nil, err1
		}
		if err2 != nil {
			return nil, err2
		}
		if ra.Volume().SpaceTime() <= ri.Volume().SpaceTime() {
			return fdChoice{pl: annealed, sim: ra}, nil
		}
		return fdChoice{pl: init, sim: ri}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	c := v.(fdChoice)
	return c.pl, c.sim, nil
}

// Strategies lists every mapping strategy applicable to the given level
// count (hierarchical stitching needs the multi-level structure).
func Strategies(levels int) []Strategy {
	ss := []Strategy{StrategyRandom, StrategyLinear, StrategyForceDirected, StrategyGraphPartition}
	if levels >= 2 {
		ss = append(ss, StrategyStitch)
	}
	return ss
}
