// Interaction styles (§IX future work): execute the same distillation
// factory under braiding, lattice surgery and teleportation disciplines
// across a sweep of code distances, and locate the crossover where the
// constant-time braids of the paper's model stop paying for their
// exclusive pathways.
package main

import (
	"fmt"
	"log"
	"os"

	"magicstate/internal/experiments"
)

func main() {
	const k, level = 4, 2
	distances := []int{3, 5, 7, 9, 11, 15, 21, 27}
	rows, err := experiments.StylesExperiment(k, level, distances, 1)
	if err != nil {
		log.Fatal(err)
	}
	experiments.WriteStyles(os.Stdout, k, level, rows)

	// Find the braiding/lattice-surgery latency crossover.
	braid := map[int]int{}
	surgery := map[int]int{}
	for _, r := range rows {
		switch r.Style {
		case "braiding":
			braid[r.Distance] = r.Latency
		case "lattice-surgery":
			surgery[r.Distance] = r.Latency
		}
	}
	crossover := -1
	for _, d := range distances {
		if surgery[d] > braid[d] {
			crossover = d
			break
		}
	}
	fmt.Println()
	if crossover > 0 {
		fmt.Printf("lattice surgery overtakes braiding latency at d = %d;\n", crossover)
		fmt.Println("below that distance the O(d) merge/split rounds are cheaper than")
		fmt.Println("constant-time braids, above it braiding wins (teleportation tracks")
		fmt.Println("surgery in latency but nearly eliminates channel congestion).")
	} else {
		fmt.Println("no crossover within the sweep: surgery stayed at or below braiding latency.")
	}
}
