package protocols

import (
	"magicstate/internal/circuit"
)

// BravyiKitaev15 is the original 15→1 distillation protocol of Bravyi and
// Kitaev [16,22], built on the [[15,1,3]] punctured Reed-Muller code:
// fifteen raw T states are consumed transversally, the code's syndrome
// verifies them, and one output state emerges with error 35ε³ and
// first-order success probability 1−15ε.
type BravyiKitaev15 struct{}

// Name identifies the protocol.
func (BravyiKitaev15) Name() string { return "BK 15-to-1" }

// Inputs returns 15.
func (BravyiKitaev15) Inputs() int { return 15 }

// Outputs returns 1.
func (BravyiKitaev15) Outputs() int { return 1 }

// Qubits returns the logical footprint of the explicit circuit built by
// Circuit15to1: 15 raw-state slots, 15 code qubits, and the output, all
// counted the same way the Bravyi-Haah module counts its 5k+13 (raw slots
// included). Compact realizations in the literature quote 16 qubits by
// excluding the raw slots and reusing code qubits for sequential
// injections; we keep the wide layout because the mapper studies need the
// full interaction graph.
func (BravyiKitaev15) Qubits() int { return 31 }

// OutputError returns 35ε³, the leading-order suppression of [22].
func (BravyiKitaev15) OutputError(eps float64) float64 { return 35 * eps * eps * eps }

// SuccessProbability returns 1−15ε to first order.
func (BravyiKitaev15) SuccessProbability(eps float64) float64 { return clamp01(1 - 15*eps) }

// rm14Checks returns the four X-stabilizer generator supports of the
// punctured RM(1,4) code over positions 1..15: check j covers every
// position whose binary index has bit j set. Positions are returned as
// 0-based code-qubit indices (position i+1 has index i).
func rm14Checks() [4][]int {
	var checks [4][]int
	for i := 0; i < 15; i++ {
		pos := i + 1
		for j := 0; j < 4; j++ {
			if pos&(1<<j) != 0 {
				checks[j] = append(checks[j], i)
			}
		}
	}
	return checks
}

// seedIndex returns the code-qubit index acting as the encoding seed of
// check j: the position whose binary index is exactly 2^j.
func seedIndex(j int) int { return (1 << j) - 1 }

// Circuit15to1 emits an explicit realization of the 15→1 protocol in the
// toolchain's gate set, mirroring the conventions of the Fig. 5
// Bravyi-Haah listing: raw states live in dedicated slots and are braided
// into code qubits by injectT; single-control multi-target CXX gates carry
// the stabilizer structure; X-basis measurements close the verification.
//
// Layout of qubit ids: raw[0..14], code[0..14], out. The circuit prepares
// the code's logical |+> by seeding the four generator rows and the
// logical (all-ones) operator, injects one raw T state transversally into
// every code qubit, uncomputes the encoding, and measures the code block;
// the surviving magic state is decoded onto out.
func Circuit15to1() *circuit.Circuit {
	c := circuit.New(0)
	raw := make([]circuit.Qubit, 15)
	code := make([]circuit.Qubit, 15)
	for i := range raw {
		raw[i] = c.AddQubit(name("raw", i))
	}
	for i := range code {
		code[i] = c.AddQubit(name("code", i))
	}
	out := c.AddQubit("out")

	checks := rm14Checks()

	// Encode logical |+>: seeds in |+>, generator rows spread by CXX.
	for j := 0; j < 4; j++ {
		c.H(code[seedIndex(j)])
	}
	c.H(out)
	for j := 0; j < 4; j++ {
		seed := code[seedIndex(j)]
		var tgts []circuit.Qubit
		for _, i := range checks[j] {
			if code[i] != seed {
				tgts = append(tgts, code[i])
			}
		}
		c.CXX(seed, tgts)
	}
	// Couple the logical operator (all-ones support) through the output.
	c.CXX(out, code)

	// Transversal T: one raw state per code qubit.
	for i := range code {
		c.InjectT(raw[i], code[i])
	}

	// Uncompute the encoding so the syndrome localizes on the seeds.
	c.CXX(out, code)
	for j := 3; j >= 0; j-- {
		seed := code[seedIndex(j)]
		var tgts []circuit.Qubit
		for _, i := range checks[j] {
			if code[i] != seed {
				tgts = append(tgts, code[i])
			}
		}
		c.CXX(seed, tgts)
	}

	// Verify: measure the code block; out holds the distilled state.
	for i := range code {
		c.MeasX(code[i])
	}
	return c
}

func name(prefix string, i int) string {
	const digits = "0123456789"
	if i < 10 {
		return prefix + string(digits[i])
	}
	return prefix + string(digits[i/10]) + string(digits[i%10])
}
