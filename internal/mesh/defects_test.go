package mesh

import (
	"reflect"
	"strings"
	"testing"

	"magicstate/internal/circuit"
	"magicstate/internal/layout"
)

// defectRowCircuit builds n qubits on row 0 of a (2n-1) x 2 tile grid,
// qubit q on tile (2q, 0), with a CNOT from qubit 0 to the last qubit.
// The braid must cross the odd columns of row 0, which is where the
// tests plant defects — the defective tiles stay unoccupied, and a
// defect's full-height dead column in row 0 leaves a detour through the
// spare row below (on a 1-row mesh a defect severs the fabric outright,
// which is why relocation grows exact-fit grids by rows).
func defectRowCircuit(n int) (*circuit.Circuit, *layout.Placement) {
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.PrepZ(circuit.Qubit(q))
	}
	c.CNOT(0, circuit.Qubit(n-1))
	for q := 0; q < n; q++ {
		c.MeasZ(circuit.Qubit(q))
	}
	p := layout.NewPlacement(n, 2*n-1, 2)
	for q := 0; q < n; q++ {
		p.Pos[q] = layout.Point{X: 2 * q, Y: 0}
	}
	return c, p
}

// TestDefectDetour is the regression for the dimension-ordered router
// on a severed row: with tile (1,0) defective, both the XY and YX
// rectilinear candidates between (0,0) and (2,0) cross dead cells and
// no reservation will ever clear them. The braid must fall back to a
// shortest detour around the dead region instead of deadlocking.
func TestDefectDetour(t *testing.T) {
	c, p := defectRowCircuit(3)
	pristine, err := Simulate(c, p, Config{RecordPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(c, p, Config{Defects: "1,0", RecordPaths: true})
	if err != nil {
		t.Fatalf("defective mesh deadlocked: %v", err)
	}
	// Braid duration is path-length independent, so latency alone cannot
	// witness the detour; the reserved cells can. Find the CNOT's braid
	// and check it rerouted off the straight-line path.
	cnot := -1
	for gi, g := range c.Gates {
		if g.Kind == circuit.KindCNOT {
			cnot = gi
		}
	}
	if cnot < 0 || len(res.Paths[cnot]) == 0 {
		t.Fatal("CNOT braid path not recorded")
	}
	if reflect.DeepEqual(res.Paths[cnot], pristine.Paths[cnot]) {
		t.Fatal("braid took the pristine path across a defect region")
	}
	if err := res.CheckNoOverlaps(); err != nil {
		t.Fatal(err)
	}
}

// TestDefectPathsAvoidDeadCells audits the recorded braid paths: no
// reserved cell may lie in a defect region.
func TestDefectPathsAvoidDeadCells(t *testing.T) {
	const defects = "1,0;3,0"
	c, p := defectRowCircuit(5)
	res, err := Simulate(c, p, Config{Defects: defects, RecordPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	dm, err := layout.ParseDefects(defects)
	if err != nil {
		t.Fatal(err)
	}
	lat := NewLatticeDefective(p.W, p.H, dm)
	braids := 0
	for gi, path := range res.Paths {
		for _, ci := range path {
			if lat.Dead(ci) {
				t.Fatalf("gate %d reserved dead cell %d", gi, ci)
			}
		}
		if len(path) > 0 {
			braids++
		}
	}
	if braids == 0 {
		t.Fatal("no braid paths recorded — the audit checked nothing")
	}
}

// TestDefectiveTileRejectsQubit pins the placement validation: a qubit
// sitting on a defective tile is a config error, not a silent crash.
func TestDefectiveTileRejectsQubit(t *testing.T) {
	c, p := defectRowCircuit(3)
	_, err := Simulate(c, p, Config{Defects: "0,0"})
	if err == nil {
		t.Fatal("placement on a defective tile accepted")
	}
	if !strings.Contains(err.Error(), "defective") {
		t.Fatalf("error %q does not mention the defective tile", err)
	}
}

// TestDefectDeterminism pins reproducibility: the same circuit,
// placement and defect map yield byte-identical schedules run to run.
func TestDefectDeterminism(t *testing.T) {
	c, p := defectRowCircuit(5)
	cfg := Config{Defects: "1,0;3,0", RecordPaths: true}
	a, err := Simulate(c, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(c, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Latency != b.Latency || a.Stalls != b.Stalls {
		t.Fatalf("latency/stalls differ run to run: %d/%d vs %d/%d", a.Latency, a.Stalls, b.Latency, b.Stalls)
	}
	if !reflect.DeepEqual(a.Start, b.Start) || !reflect.DeepEqual(a.End, b.End) {
		t.Fatal("per-gate schedules differ run to run")
	}
	if !reflect.DeepEqual(a.Paths, b.Paths) {
		t.Fatal("braid paths differ run to run")
	}
}

// TestDefectOutsideGridIgnored: defect entries beyond the tile grid are
// inert (the codec allows naming them; the lattice ignores them).
func TestDefectOutsideGridIgnored(t *testing.T) {
	c, p := defectRowCircuit(3)
	pristine, err := Simulate(c, p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(c, p, Config{Defects: "9,9"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency != pristine.Latency {
		t.Fatalf("out-of-grid defect changed latency: %d vs %d", res.Latency, pristine.Latency)
	}
}
