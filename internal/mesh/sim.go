package mesh

import (
	"fmt"
	"sync"

	"magicstate/internal/circuit"
	"magicstate/internal/layout"
	"magicstate/internal/resource"
)

// Config tunes a simulation run.
type Config struct {
	// Cost supplies per-gate durations; zero value uses resource.DefaultCost.
	Cost resource.CostModel
	// MaxCycles aborts runaway simulations; zero means 100 million cycles.
	MaxCycles int
	// Mode selects the braid routing discipline (default RouteXY).
	Mode RouteMode
	// RouteMargin is how many cells beyond its endpoints' bounding box a
	// braid may route through in RouteBox mode. The zero value means the
	// default of 2 — NOT a zero-margin box; pass ZeroRouteMargin (or any
	// negative value) for a braid confined strictly to its endpoints'
	// bounding box.
	RouteMargin int
	// RecordPaths keeps every braid's claimed cells in Result.Paths so
	// invariants (no two braids overlap in space and time) can be audited
	// after the run.
	RecordPaths bool
	// Style selects the surface-code interaction discipline (§IX future
	// work); the zero value reproduces the paper's braiding model.
	Style InteractionStyle
	// Distance is the code distance d used by the distance-sensitive
	// styles (zero means 7); braiding ignores it.
	Distance int
	// EprCycles is the channel occupancy of teleportation-style
	// entanglement distribution (zero means 2).
	EprCycles int
	// Defects names the defective tiles of a heterogeneous mesh in the
	// canonical layout.DefectMap codec ("x,y;x,y" sorted row-major).
	// Defective tiles expose no braid ports, their surrounding channel
	// cells are permanently unroutable, and placements hosting a qubit
	// on one are rejected. Empty means a defect-free mesh.
	Defects string
}

// ZeroRouteMargin requests a true zero-margin routing box in RouteBox
// mode. Config.RouteMargin's zero value historically (and still) means
// "use the default margin of 2", which made an actual zero-margin box
// unexpressible; this sentinel resolves the ambiguity.
const ZeroRouteMargin = -1

// RouteMode selects how braids claim paths.
type RouteMode int

const (
	// RouteXY is the paper's braid model (Fig. 1): each braid follows a
	// dimension-ordered rectilinear path (XY or YX candidate); crossing
	// braids cannot run simultaneously and never detour.
	RouteXY RouteMode = iota
	// RouteBox allows shortest-path detours within the braid endpoints'
	// bounding box plus RouteMargin cells.
	RouteBox
	// RouteAdaptive allows braids to route anywhere on the machine — an
	// idealized congestion-avoiding router used for ablation.
	RouteAdaptive
)

func (cfg *Config) fill() {
	if cfg.Cost == (resource.CostModel{}) {
		cfg.Cost = resource.DefaultCost()
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 100_000_000
	}
	if cfg.RouteMargin == 0 {
		cfg.RouteMargin = 2
	} else if cfg.RouteMargin < 0 {
		cfg.RouteMargin = 0
	}
	cfg.fillStyle()
}

// Result reports a completed simulation.
type Result struct {
	// Latency is the cycle at which the last gate finishes.
	Latency int
	// Start and End give per-gate timing (End exclusive).
	Start, End []int
	// Stalls counts braid start attempts rejected for lack of a
	// conflict-free path. The event-driven engine only re-attempts a
	// blocked braid once the reservations it was waiting on could have
	// expired, so this counts distinct meaningful rejections rather than
	// every hopeless per-cycle retry.
	Stalls int
	// Area is the bounding-box tile area of the placement simulated.
	Area int
	// Paths holds, per gate, the channel cells its braid reserved (nil
	// for local gates, and only populated when Config.RecordPaths).
	Paths [][]int
	// HoldEnd gives, per gate, the cycle its channel reservation was
	// released (equal to End under braiding and lattice surgery; earlier
	// under teleportation). Only populated when Config.RecordPaths.
	HoldEnd []int
}

// CheckNoOverlaps verifies the core braid invariant on a recorded run: no
// two gates whose execution windows overlap in time reserved the same
// channel cell. It returns an error naming the first violation.
func (r *Result) CheckNoOverlaps() error {
	if r.Paths == nil {
		return fmt.Errorf("mesh: run did not record paths")
	}
	type claim struct {
		gate       int
		start, end int
	}
	byCell := make(map[int][]claim)
	holdEnd := func(gi int) int {
		if r.HoldEnd != nil {
			return r.HoldEnd[gi]
		}
		return r.End[gi]
	}
	for gi, path := range r.Paths {
		for _, ci := range path {
			for _, prev := range byCell[ci] {
				if r.Start[gi] < prev.end && prev.start < holdEnd(gi) {
					return fmt.Errorf("mesh: gates %d [%d,%d) and %d [%d,%d) share cell %d",
						prev.gate, prev.start, prev.end, gi, r.Start[gi], holdEnd(gi), ci)
				}
			}
			byCell[ci] = append(byCell[ci], claim{gate: gi, start: r.Start[gi], end: holdEnd(gi)})
		}
	}
	return nil
}

// Volume returns the space-time volume of the run.
func (r *Result) Volume() resource.Volume {
	return resource.Volume{Area: r.Area, Latency: r.Latency}
}

// simPool recycles Simulators across Simulate calls so even one-shot
// callers reuse arenas instead of reallocating lattice, router and queue
// state per run. Each Get hands a goroutine an exclusive instance, so the
// sweep engine's parallel workers share the pool safely.
var simPool = sync.Pool{New: func() any { return NewSimulator() }}

// Simulate executes c on the braid mesh defined by p and returns timing.
// It is a thin wrapper around a pooled Simulator; callers that simulate
// in a loop can hold their own Simulator to also reuse the cached
// dependency DAG and lattice across calls.
func Simulate(c *circuit.Circuit, p *layout.Placement, cfg Config) (*Result, error) {
	s := simPool.Get().(*Simulator)
	res, err := s.Simulate(c, p, cfg)
	simPool.Put(s)
	return res, err
}

// PhaseWindow returns the [start, end) cycle window spanned by the gates
// selected by keep, or (0, 0) when none match. Experiments use it to
// isolate the inter-round permutation step (Fig. 9d).
func (r *Result) PhaseWindow(keep func(i int) bool) (start, end int) {
	start, end = -1, 0
	for i := range r.Start {
		if r.Start[i] < 0 || !keep(i) {
			continue
		}
		if start == -1 || r.Start[i] < start {
			start = r.Start[i]
		}
		if r.End[i] > end {
			end = r.End[i]
		}
	}
	if start == -1 {
		return 0, 0
	}
	return start, end
}
