package fabric

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerOpensAtThreshold(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(3, time.Second, clk.now)
	if !b.Allow() {
		t.Fatal("fresh breaker refused")
	}
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", b.State())
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after 3 failures = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a call before cooldown")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := NewBreaker(3, time.Second, nil)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatalf("interleaved successes still tripped the breaker: %v", b.State())
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(1, time.Second, clk.now)
	b.Failure()
	if b.Allow() {
		t.Fatal("open breaker allowed a call immediately")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooled-down breaker refused the half-open probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// Only one probe at a time.
	if b.Allow() {
		t.Fatal("second caller admitted while probe in flight")
	}
}

func TestBreakerProbeOutcomes(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}

	// Probe succeeds: breaker closes.
	b := NewBreaker(1, time.Second, clk.now)
	b.Failure()
	clk.advance(time.Second)
	b.Allow()
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("re-closed breaker refused a call")
	}

	// Probe fails: breaker re-opens and the cooldown restarts.
	b = NewBreaker(1, time.Second, clk.now)
	b.Failure()
	clk.advance(time.Second)
	b.Allow()
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("re-opened breaker allowed a call before a fresh cooldown")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("re-opened breaker refused its next probe after cooldown")
	}
}

func TestBreakerStragglerFailureRestartsCooldown(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(1, time.Second, clk.now)
	b.Failure() // opens at t=0
	clk.advance(900 * time.Millisecond)
	b.Failure() // straggler at t=0.9s: cooldown restarts
	clk.advance(500 * time.Millisecond)
	if b.Allow() {
		t.Fatal("breaker probed 0.5s after the latest failure; cooldown should have restarted")
	}
	clk.advance(500 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker refused probe a full cooldown after the latest failure")
	}
}

func TestBreakerThresholdFloor(t *testing.T) {
	b := NewBreaker(0, time.Second, nil)
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("threshold 0 should clamp to 1 (open on first failure)")
	}
}
