package magicstate

import (
	"context"
	"testing"
)

func batchGrid() []BatchPoint {
	var pts []BatchPoint
	for _, capacity := range []int{4, 16} {
		for _, s := range []Strategy{LinearMapping, HierarchicalStitching} {
			pts = append(pts, BatchPoint{
				Spec: FactorySpec{Capacity: capacity, Levels: 2, Reuse: true},
				Opts: Options{Seed: 1}.WithStrategy(s),
			})
		}
	}
	return pts
}

func TestOptimizeBatchMatchesOptimize(t *testing.T) {
	pts := batchGrid()
	batch, err := OptimizeBatch(pts, BatchOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(pts) {
		t.Fatalf("results = %d, want %d", len(batch), len(pts))
	}
	for i, pt := range pts {
		single, err := Optimize(pt.Spec, pt.Opts)
		if err != nil {
			t.Fatal(err)
		}
		if *batch[i] != *single {
			t.Errorf("point %d: batch %+v != serial %+v", i, batch[i], single)
		}
	}
}

func TestOptimizeBatchParallelismInvariant(t *testing.T) {
	pts := batchGrid()
	serial, err := OptimizeBatch(pts, BatchOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := OptimizeBatch(pts, BatchOptions{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if *serial[i] != *parallel[i] {
			t.Errorf("point %d differs across parallelism settings", i)
		}
	}
}

func TestOptimizeBatchProgressAndDefaults(t *testing.T) {
	var last int
	pts := []BatchPoint{
		{Spec: FactorySpec{Capacity: 4, Levels: 1}}, // default strategy: line
		{Spec: FactorySpec{Capacity: 4, Levels: 2}}, // default strategy: hs
	}
	res, err := OptimizeBatch(pts, BatchOptions{
		Parallelism: 2,
		Progress: func(done, total int) {
			if total != 2 {
				t.Errorf("total = %d, want 2", total)
			}
			last = done
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if last != 2 {
		t.Errorf("final done = %d, want 2", last)
	}
	if res[0].Strategy != "Line" || res[1].Strategy != "HS" {
		t.Errorf("default strategies = %s/%s, want Line/HS", res[0].Strategy, res[1].Strategy)
	}
}

func TestOptimizeBatchBadSpecAborts(t *testing.T) {
	pts := []BatchPoint{
		{Spec: FactorySpec{Capacity: 4, Levels: 1}},
		{Spec: FactorySpec{Capacity: 5, Levels: 2}}, // not a perfect square
	}
	if _, err := OptimizeBatch(pts, BatchOptions{Parallelism: 2}); err == nil {
		t.Fatal("invalid spec should abort the batch")
	}
}

func TestOptimizeBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := OptimizeBatch(batchGrid(), BatchOptions{Context: ctx}); err == nil {
		t.Fatal("cancelled context should abort the batch")
	}
}
