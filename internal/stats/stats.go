// Package stats provides the small statistics substrate used by the
// experiment harness: summary statistics, Pearson correlation (the metric
// behind the paper's Fig. 6 r-values), and linear regression over metric /
// latency samples.
package stats

import (
	"errors"
	"math"
)

// ErrInsufficientData is returned when a statistic needs more samples than
// were provided.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs. It returns 0 when fewer
// than two samples are provided.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Pearson returns the Pearson product-moment correlation coefficient
// between xs and ys. It returns ErrInsufficientData when fewer than two
// samples are provided or the slices differ in length, and r = 0 when
// either series is constant.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, ErrInsufficientData
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// LinearFit returns slope and intercept of the least-squares line through
// (xs, ys). It returns ErrInsufficientData for mismatched or short input
// and a zero slope for a constant x series.
func LinearFit(xs, ys []float64) (slope, intercept float64, err error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, ErrInsufficientData
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx float64
	for i := range xs {
		dx := xs[i] - mx
		sxy += dx * (ys[i] - my)
		sxx += dx * dx
	}
	if sxx == 0 {
		return 0, my, nil
	}
	slope = sxy / sxx
	return slope, my - slope*mx, nil
}

// GeoMean returns the geometric mean of xs, all of which must be positive;
// non-positive entries make the result NaN.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
