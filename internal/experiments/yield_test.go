package experiments

import (
	"reflect"
	"testing"
)

// TestYieldNonContiguousKs pins the row-assembly indexing: the sweep
// flattens (k, variant) pairs as runs[i*variants+v], where i is the
// position of k in ks — not k itself. A non-contiguous ks slice catches
// any regression to k-based indexing: each row of the combined run must
// equal the row of a single-k run of the same factory.
func TestYieldNonContiguousKs(t *testing.T) {
	const (
		levels = 1
		trials = 64
		seed   = 11
	)
	ks := []int{2, 6}
	combined, err := Yield(ks, levels, trials, seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(combined) != len(ks) {
		t.Fatalf("rows = %d, want %d", len(combined), len(ks))
	}
	for i, k := range ks {
		solo, err := Yield([]int{k}, levels, trials, seed)
		if err != nil {
			t.Fatal(err)
		}
		if combined[i].K != k {
			t.Fatalf("row %d has K = %d, want %d", i, combined[i].K, k)
		}
		if !reflect.DeepEqual(combined[i], solo[0]) {
			t.Errorf("row for k=%d differs between combined and solo runs:\ncombined: %+v\nsolo:     %+v", k, combined[i], solo[0])
		}
	}
}
