package store

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"magicstate/internal/core"
)

// buildScrubDir writes a store of n JSON records and returns its dir.
func buildScrubDir(t *testing.T, n int) string {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fill(t, s, n)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestScrubCleanStore(t *testing.T) {
	dir := buildScrubDir(t, 10)
	rep, err := Scrub(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.Entries != 10 || rep.Valid != 10 {
		t.Fatalf("clean store scrub = %+v", rep)
	}
}

func TestScrubDetectsAndRepairsCorruptTail(t *testing.T) {
	dir := buildScrubDir(t, 10)
	// Corrupt the payload of the 8th record: everything from entry 7 on
	// is lost, entries 0-6 survive.
	logPath := filepath.Join(dir, logName)
	idx, err := os.ReadFile(filepath.Join(dir, idxName))
	if err != nil {
		t.Fatal(err)
	}
	logData, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(0)
	for i := 0; i < 7; i++ {
		e := idx[i*entrySize : (i+1)*entrySize]
		off += int64(uint32(e[40]) | uint32(e[41])<<8 | uint32(e[42])<<16 | uint32(e[43])<<24)
	}
	logData[off] ^= 0xff
	if err := os.WriteFile(logPath, logData, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := Scrub(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() || !rep.Truncated || rep.Valid != 7 {
		t.Fatalf("scrub of corrupted store = %+v", rep)
	}
	if !strings.Contains(rep.Reason, "entry 7") {
		t.Fatalf("reason %q does not name entry 7", rep.Reason)
	}
	// Dry run must not have touched the files.
	if fi, _ := os.Stat(logPath); fi.Size() != int64(len(logData)) {
		t.Fatal("scrub without repair modified the log")
	}

	rep, err = Scrub(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Repaired || rep.Valid != 7 {
		t.Fatalf("repair scrub = %+v", rep)
	}
	// After repair the store is clean and opens with the 7 survivors.
	rep, err = Scrub(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.Entries != 7 {
		t.Fatalf("post-repair scrub = %+v", rep)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Len(); got != 7 {
		t.Fatalf("post-repair Len = %d, want 7", got)
	}
}

func TestScrubFlagsUndecodablePayloads(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := KeyOf(core.Config{K: 3, Levels: 1})
	if err := s.Put(k, []byte("not json at all")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := Scrub(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	// CRC-valid but not a record: a soft finding, not a truncation.
	if rep.Truncated || len(rep.BadRecords) != 1 {
		t.Fatalf("scrub = %+v, want one bad record and no truncation", rep)
	}
}

// TestScrubWalksStageRecords: scrub must tell stage records from final
// ones, count them, and soft-flag a stage body that no longer decodes
// under its stage codec — without truncating anything, since the frames
// themselves are CRC-clean.
func TestScrubWalksStageRecords(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fill(t, s, 3)
	cfg := core.Config{K: 2, Levels: 1, Strategy: core.StrategyLinear}
	b, err := core.BuildStage(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutStage(core.StageBuild, cfg, core.EncodeBuildArtifact(b)); err != nil {
		t.Fatal(err)
	}
	// A stage frame whose body is garbage: CRC-valid on disk, so it is a
	// writer bug, not corruption — a soft finding naming the stage.
	rot := core.Config{K: 3, Levels: 1, Strategy: core.StrategyLinear}
	if err := s.Put(StageKeyOf(core.StagePlace, rot), stageWrap(core.StagePlace, []byte("not a place artifact"))); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := Scrub(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Truncated || rep.Valid != 5 {
		t.Fatalf("scrub = %+v, want 5 valid entries and no truncation", rep)
	}
	if rep.StageRecords != 2 {
		t.Fatalf("StageRecords = %d, want 2", rep.StageRecords)
	}
	if len(rep.BadRecords) != 1 || !strings.Contains(rep.BadRecords[0], "stage place") {
		t.Fatalf("BadRecords = %q, want one finding naming stage place", rep.BadRecords)
	}
}

// TestScrubRepairsTornTailInsideStageArtifact: a crash mid-append can
// tear the log inside a stage artifact's payload just as inside a JSON
// record. Scrub must report the torn entry, repair must drop exactly
// it, and the reopened store must miss on that stage and keep everything
// before it.
func TestScrubRepairsTornTailInsideStageArtifact(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fill(t, s, 3)
	cfg := core.Config{K: 2, Levels: 1, Strategy: core.StrategyLinear}
	b, err := core.BuildStage(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutStage(core.StageBuild, cfg, core.EncodeBuildArtifact(b)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail a few bytes short: the cut lands inside the stage
	// artifact payload, which was appended last.
	logPath := filepath.Join(dir, logName)
	fi, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(logPath, fi.Size()-4); err != nil {
		t.Fatal(err)
	}

	rep, err := Scrub(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated || rep.Valid != 3 || rep.StageRecords != 0 {
		t.Fatalf("scrub of torn stage tail = %+v, want 3 valid finals and no stage records", rep)
	}
	if !strings.Contains(rep.Reason, "entry 3") {
		t.Fatalf("reason %q does not name the torn entry", rep.Reason)
	}
	if rep, err = Scrub(dir, true); err != nil || !rep.Repaired {
		t.Fatalf("repair scrub = %+v, %v", rep, err)
	}
	if rep, err = Scrub(dir, false); err != nil || !rep.Clean() || rep.Entries != 3 {
		t.Fatalf("post-repair scrub = %+v, %v", rep, err)
	}
	s, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, ok := s.GetStage(core.StageBuild, cfg); ok {
		t.Fatal("torn stage artifact survived the repair")
	}
	if st := s.Stats(); st.Records != 3 || st.StageRecords != 0 {
		t.Fatalf("post-repair stats = %+v, want 3 finals and no stage records", st)
	}
}

func TestScrubRefusesOpenStore(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := Scrub(dir, false); err == nil {
		t.Fatal("scrub of an open store directory succeeded")
	}
}

func TestScrubMissingDir(t *testing.T) {
	if _, err := Scrub(filepath.Join(t.TempDir(), "nope"), false); err == nil {
		t.Fatal("scrub of a missing directory succeeded")
	}
}
