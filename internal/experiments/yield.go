package experiments

import (
	"fmt"
	"io"

	"magicstate/internal/bravyi"
	"magicstate/internal/montecarlo"
	"magicstate/internal/resource"
)

// YieldRow is one factory configuration of the Monte-Carlo yield study:
// sampled full-batch yield against the first-order analytic model, plus
// the effect of O'Gorman-Campbell checkpoints [20] and a loss-
// compensation reserve (§IX).
type YieldRow struct {
	K, Levels int
	// AnalyticFullYield is the closed-form all-modules-pass probability.
	AnalyticFullYield float64
	// SampledFullYield is the Monte-Carlo estimate of the same event.
	SampledFullYield float64
	// MeanOutputs is the average delivered states per run (partial
	// yields included — what a prepared-state buffer actually sees).
	MeanOutputs float64
	// CheckpointMeanOutputs repeats the measurement with group discards.
	CheckpointMeanOutputs float64
	// ReserveFullYield adds one spare module per round.
	ReserveFullYield float64
	// Capacity is K^Levels for normalizing.
	Capacity int
}

// Yield samples every (k, levels) combination for the given trial count.
func Yield(ks []int, levels, trials int, seed int64) ([]YieldRow, error) {
	em := resource.DefaultError()
	var rows []YieldRow
	for _, k := range ks {
		p := bravyi.Params{K: k, Levels: levels, Barriers: true}
		base := montecarlo.Config{Params: p, Errors: em, Trials: trials, Seed: seed}
		plain, err := montecarlo.Run(base)
		if err != nil {
			return nil, fmt.Errorf("yield k=%d: %w", k, err)
		}
		ck := base
		ck.Checkpoints = true
		checked, err := montecarlo.Run(ck)
		if err != nil {
			return nil, fmt.Errorf("yield k=%d checkpoints: %w", k, err)
		}
		rv := base
		rv.Reserve = make([]int, levels)
		for i := range rv.Reserve {
			rv.Reserve[i] = 1
		}
		reserved, err := montecarlo.Run(rv)
		if err != nil {
			return nil, fmt.Errorf("yield k=%d reserve: %w", k, err)
		}
		rows = append(rows, YieldRow{
			K:                     k,
			Levels:                levels,
			AnalyticFullYield:     montecarlo.AnalyticFullYield(p, em),
			SampledFullYield:      plain.FullYieldRate,
			MeanOutputs:           plain.MeanOutputs,
			CheckpointMeanOutputs: checked.MeanOutputs,
			ReserveFullYield:      reserved.FullYieldRate,
			Capacity:              p.Capacity(),
		})
	}
	return rows, nil
}

// WriteYield renders the yield study.
func WriteYield(w io.Writer, levels, trials int, rows []YieldRow) {
	fmt.Fprintf(w, "Monte-Carlo factory yield — level %d, %d trials per point\n", levels, trials)
	tw := newTab(w)
	fmt.Fprintln(tw, "K\tcapacity\tanalytic full\tsampled full\tmean out\tmean out (ckpt)\tfull w/ reserve")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%.3f\t%.3f\t%.2f\t%.2f\t%.3f\n",
			r.K, r.Capacity, r.AnalyticFullYield, r.SampledFullYield,
			r.MeanOutputs, r.CheckpointMeanOutputs, r.ReserveFullYield)
	}
	tw.Flush()
}
