package store

import (
	"context"
	"fmt"

	"magicstate/internal/core"
)

// Stage records share the final-record store: same append-only log,
// same index, same crash recovery and same peer fabric — a stage
// artifact is just a payload filed under a stage-scoped key
// (StageKeyOf). Two layers keep the kinds from ever mixing:
//
//   - Keys are domain-separated. A stage key's preimage starts
//     "magicstate/store stage/..." where a final key's starts
//     "magicstate/store v...", so the two can only collide by breaking
//     SHA-256.
//   - Payloads are framed. Every stage payload opens with
//     stagePayloadMagic plus the stage byte, which no JSON record can
//     start with, so scrubbing and admission checks can tell the kinds
//     apart without consulting the key.

// stagePayloadMagic opens every stage-artifact payload. The next byte
// is the stage id (core.Stage), then the stage codec body.
const stagePayloadMagic = "msstage/1:"

// stageWrap frames a stage codec body as a store payload.
func stageWrap(st core.Stage, body []byte) []byte {
	p := make([]byte, 0, len(stagePayloadMagic)+1+len(body))
	p = append(p, stagePayloadMagic...)
	p = append(p, byte(st))
	return append(p, body...)
}

// StagePayload recognizes a stage-record payload, returning its stage
// id and codec body. ok=false means the payload is not stage-framed (a
// final JSON record, or foreign data).
func StagePayload(payload []byte) (st core.Stage, body []byte, ok bool) {
	if len(payload) < len(stagePayloadMagic)+1 ||
		string(payload[:len(stagePayloadMagic)]) != stagePayloadMagic {
		return 0, nil, false
	}
	return core.Stage(payload[len(stagePayloadMagic)]), payload[len(stagePayloadMagic)+1:], true
}

// ValidateStagePayload checks a stage-framed payload end to end: known
// framing, known stage, and a body that decodes under that stage's
// codec. It is the admission gate for stage payloads arriving from
// peers (replication, read-through).
func ValidateStagePayload(payload []byte) error {
	st, body, ok := StagePayload(payload)
	if !ok {
		return fmt.Errorf("store: payload is not stage-framed")
	}
	if err := core.ValidateStageArtifact(st, body); err != nil {
		return fmt.Errorf("store: stage %s payload does not decode: %w", st, err)
	}
	return nil
}

// PutStage persists a stage artifact body under its stage-scoped key.
// Like PutReport, uncacheable combinations are silently skipped so
// callers can offer every artifact without gating.
func (s *Store) PutStage(st core.Stage, cfg core.Config, body []byte) error {
	if !StageCacheable(st, cfg) {
		return nil
	}
	return s.Put(StageKeyOf(st, cfg), stageWrap(st, body))
}

// GetStage returns the stage artifact body stored for cfg, strictly
// locally. A payload under the key that is not framed as this stage's
// record is treated as a miss: the caller recomputes and the store
// serves final records none the worse.
func (s *Store) GetStage(st core.Stage, cfg core.Config) ([]byte, bool) {
	if !StageCacheable(st, cfg) {
		return nil, false
	}
	payload, ok := s.getStage(StageKeyOf(st, cfg))
	if !ok {
		return nil, false
	}
	gotSt, body, ok := StagePayload(payload)
	if !ok || gotSt != st {
		return nil, false
	}
	return body, true
}

// GetStageContext is GetStage with the read-through peer tier: on a
// local miss it consults the fetcher installed by SetFetcher (stage
// keys shard over the ring exactly like final keys), and a fetched
// payload must frame-check AND decode under the stage codec before it
// is admitted locally and served — the same decode-before-admit rule
// final records follow, so a confused peer can cost a recompute but
// never plant an artifact this node would later replay.
func (s *Store) GetStageContext(ctx context.Context, st core.Stage, cfg core.Config) ([]byte, bool) {
	if body, ok := s.GetStage(st, cfg); ok {
		return body, true
	}
	if !StageCacheable(st, cfg) {
		return nil, false
	}
	s.hookMu.RLock()
	fetch := s.fetcher
	s.hookMu.RUnlock()
	if fetch == nil {
		return nil, false
	}
	k := StageKeyOf(st, cfg)
	payload, fetched := fetch(ctx, k)
	if !fetched {
		return nil, false
	}
	gotSt, body, ok := StagePayload(payload)
	if !ok || gotSt != st {
		return nil, false
	}
	if core.ValidateStageArtifact(st, body) != nil {
		return nil, false
	}
	if err := s.Put(k, payload); err != nil {
		return nil, false
	}
	s.mu.Lock()
	s.peerHits++
	s.mu.Unlock()
	return body, true
}
