package mesh

import "magicstate/internal/layout"

// Dimension-ordered routing: a braid between two tiles follows one of two
// rectilinear candidate paths (horizontal-then-vertical or
// vertical-then-horizontal). If both are blocked the braid stalls. This is
// the braid model of the paper's Fig. 1: crossing braids cannot execute
// simultaneously and do not wander around each other.

// walkXY visits the horizontal-first path between tiles src and dst
// cell by cell without materializing it. visit returning false aborts the
// walk; walkXY then returns false. Paths run on even (all-channel) rows
// and columns, entering/leaving tiles through adjacent port cells.
func (l *Lattice) walkXY(src, dst layout.Point, visit func(ci int) bool) bool {
	sx, sy := 2*src.X+1, 2*src.Y+1
	dx, dy := 2*dst.X+1, 2*dst.Y+1
	// Horizontal highway row adjacent to src, biased toward dst.
	ry := sy + 1
	if dy < sy {
		ry = sy - 1
	}
	// Vertical highway column adjacent to dst, biased toward src.
	cx := dx + 1
	if sx < dx {
		cx = dx - 1
	}
	if !visit(l.CellIndex(sx, ry)) { // exit src vertically
		return false
	}
	for x := sx; x != cx; x += sign(cx - sx) {
		if !visit(l.CellIndex(x+sign(cx-sx), ry)) {
			return false
		}
	}
	for y := ry; y != dy; y += sign(dy - ry) {
		if !visit(l.CellIndex(cx, y+sign(dy-ry))) {
			return false
		}
	}
	return true
}

// walkYX visits the vertical-first path between tiles src and dst.
func (l *Lattice) walkYX(src, dst layout.Point, visit func(ci int) bool) bool {
	sx, sy := 2*src.X+1, 2*src.Y+1
	dx, dy := 2*dst.X+1, 2*dst.Y+1
	// Vertical highway column adjacent to src, biased toward dst.
	cx := sx + 1
	if dx < sx {
		cx = sx - 1
	}
	// Horizontal highway row adjacent to dst, biased toward src.
	ry := dy + 1
	if sy < dy {
		ry = dy - 1
	}
	if !visit(l.CellIndex(cx, sy)) { // exit src horizontally
		return false
	}
	for y := sy; y != ry; y += sign(ry - sy) {
		if !visit(l.CellIndex(cx, y+sign(ry-sy))) {
			return false
		}
	}
	for x := cx; x != dx; x += sign(dx - cx) {
		if !visit(l.CellIndex(x+sign(dx-cx), ry)) {
			return false
		}
	}
	return true
}

// xyPath materializes the horizontal-first path (used by tests and by
// successful routing).
func (l *Lattice) xyPath(src, dst layout.Point) []int {
	var path []int
	l.walkXY(src, dst, func(ci int) bool {
		if len(path) == 0 || path[len(path)-1] != ci {
			path = append(path, ci)
		}
		return true
	})
	return path
}

// yxPath materializes the vertical-first path.
func (l *Lattice) yxPath(src, dst layout.Point) []int {
	var path []int
	l.walkYX(src, dst, func(ci int) bool {
		if len(path) == 0 || path[len(path)-1] != ci {
			path = append(path, ci)
		}
		return true
	})
	return path
}

func sign(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}

// checkWalk scans a candidate path without materializing it. It reports
// whether the path is fully free at t and, when blocked, the busyUntil of
// the first blocked cell (a sound retry bound).
func (r *router) checkWalk(walk func(func(int) bool) bool, t int, claimed map[int]bool) (ok bool, clearAt int) {
	ok = walk(func(ci int) bool {
		if claimed != nil && claimed[ci] {
			return true
		}
		if bu := r.busyUntil[ci]; bu > t {
			clearAt = bu
			return false
		}
		return true
	})
	return ok, clearAt
}

// routeXY tries the XY then the YX candidate between two tiles and
// returns the first conflict-free one. When both are blocked it returns
// nil and the earliest cycle at which either candidate could clear.
func (r *router) routeXY(src, dst layout.Point, t int) ([]int, int) {
	if ok, clear1 := r.checkWalk(func(v func(int) bool) bool { return r.lat.walkXY(src, dst, v) }, t, nil); ok {
		return r.lat.xyPath(src, dst), 0
	} else if ok2, clear2 := r.checkWalk(func(v func(int) bool) bool { return r.lat.walkYX(src, dst, v) }, t, nil); ok2 {
		return r.lat.yxPath(src, dst), 0
	} else {
		if clear2 < clear1 {
			clear1 = clear2
		}
		return nil, clear1
	}
}

// routeXYTree builds a multi-target braid under dimension-ordered routing:
// one arm per target, each an XY or YX candidate from the control, where
// arms of the same gate may overlap one another (a braid tree is a single
// topological defect). Returns the union of cells, or nil plus an
// earliest-retry bound if any arm is blocked.
func (r *router) routeXYTree(control layout.Point, targets []layout.Point, t int) ([]int, int) {
	claimed := make(map[int]bool)
	var union []int
	for _, tgt := range targets {
		var arm []int
		ok, clear1 := r.checkWalk(func(v func(int) bool) bool { return r.lat.walkXY(control, tgt, v) }, t, claimed)
		if ok {
			arm = r.lat.xyPath(control, tgt)
		} else {
			ok2, clear2 := r.checkWalk(func(v func(int) bool) bool { return r.lat.walkYX(control, tgt, v) }, t, claimed)
			if ok2 {
				arm = r.lat.yxPath(control, tgt)
			} else {
				if clear2 < clear1 {
					clear1 = clear2
				}
				return nil, clear1
			}
		}
		for _, ci := range arm {
			if !claimed[ci] {
				claimed[ci] = true
				union = append(union, ci)
			}
		}
	}
	return union, 0
}
