package experiments

import (
	"sync/atomic"

	"magicstate/internal/sweep"
)

// defaultEngine is the sweep engine every experiment in this package
// submits its point grid to. It defaults to a parallel engine with
// runtime.GOMAXPROCS workers; cmd/paperbench overrides it from the
// -parallel and -progress flags before running artifacts. Because every
// pipeline stage is deterministic per point, the engine's worker count
// changes wall-clock time only — rendered artifacts are byte-identical
// at any setting (see determinism_test.go).
var defaultEngine atomic.Pointer[sweep.Engine]

func init() { defaultEngine.Store(sweep.New(sweep.Options{})) }

// Engine returns the engine experiments currently run on.
func Engine() *sweep.Engine { return defaultEngine.Load() }

// SetEngine replaces the package's engine (worker count, progress
// callback, memo cache). Call it before running experiments; swapping
// engines mid-experiment is safe but splits the memo cache.
func SetEngine(e *sweep.Engine) {
	if e != nil {
		defaultEngine.Store(e)
	}
}
