package memo

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoMemoizes(t *testing.T) {
	c := New(0)
	calls := 0
	fn := func() (any, error) { calls++; return 42, nil }
	for i := 0; i < 3; i++ {
		v, err := c.Do("k", fn)
		if err != nil || v.(int) != 42 {
			t.Fatalf("Do = %v, %v", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 2/1", hits, misses)
	}
}

func TestDoCachesErrors(t *testing.T) {
	c := New(0)
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 2; i++ {
		_, err := c.Do(1, func() (any, error) { calls++; return nil, boom })
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
}

func TestSingleflight(t *testing.T) {
	c := New(0)
	var calls atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.Do("shared", func() (any, error) {
				calls.Add(1)
				return "v", nil
			})
			if err != nil || v.(string) != "v" {
				t.Errorf("Do = %v, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times under contention, want 1", n)
	}
}

func TestLimitResets(t *testing.T) {
	c := New(2)
	for i := 0; i < 5; i++ {
		if _, err := c.Do(i, func() (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() > 2 {
		t.Fatalf("len = %d, want <= limit 2", c.Len())
	}
	// Evicted keys recompute and still return the right value.
	v, err := c.Do(0, func() (any, error) { return 100, nil })
	if err != nil {
		t.Fatal(err)
	}
	if v.(int) != 100 {
		t.Fatalf("recomputed value = %v", v)
	}
}

func TestReset(t *testing.T) {
	c := New(0)
	c.Do("a", func() (any, error) { return 1, nil })
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("len after reset = %d", c.Len())
	}
}

// TestDoDropsContextErrors: a computation that fails with a context
// error must not poison the cache — context errors describe the caller
// that asked, not the point itself, so the next caller recomputes.
func TestDoDropsContextErrors(t *testing.T) {
	c := New(0)
	for _, ctxErr := range []error{context.Canceled, context.DeadlineExceeded} {
		calls := 0
		if _, err := c.Do("k", func() (any, error) { calls++; return nil, ctxErr }); !errors.Is(err, ctxErr) {
			t.Fatalf("Do = %v, want %v", err, ctxErr)
		}
		v, err := c.Do("k", func() (any, error) { calls++; return 42, nil })
		if err != nil || v.(int) != 42 {
			t.Fatalf("Do after %v = %v, %v; want 42", ctxErr, v, err)
		}
		if calls != 2 {
			t.Fatalf("calls = %d, want 2 (the %v entry must have been dropped)", calls, ctxErr)
		}
		c.Reset()
	}
	// A wrapped context error is still a context error.
	wrapped := fmt.Errorf("stage 3: %w", context.Canceled)
	c.Do("w", func() (any, error) { return nil, wrapped })
	recomputed := false
	c.Do("w", func() (any, error) { recomputed = true; return 1, nil })
	if !recomputed {
		t.Fatal("wrapped context error was cached")
	}
}

// TestPeek: Peek answers only completed entries — never starting a
// computation, never waiting on one in flight, never counting as a hit
// or miss.
func TestPeek(t *testing.T) {
	c := New(0)
	if _, _, ok := c.Peek("absent"); ok {
		t.Fatal("Peek invented an entry")
	}
	// An in-flight entry is invisible to Peek.
	started := make(chan struct{})
	unblock := make(chan struct{})
	go c.Do("slow", func() (any, error) { close(started); <-unblock; return 1, nil })
	<-started
	if _, _, ok := c.Peek("slow"); ok {
		t.Fatal("Peek returned an in-flight entry")
	}
	close(unblock)

	c.Do("done", func() (any, error) { return 7, nil })
	hits0, misses0 := c.Stats()
	v, err, ok := c.Peek("done")
	if !ok || err != nil || v.(int) != 7 {
		t.Fatalf("Peek(done) = %v, %v, %v; want 7, nil, true", v, err, ok)
	}
	if hits, misses := c.Stats(); hits != hits0 || misses != misses0 {
		t.Fatal("Peek moved the hit/miss counters")
	}
	// Cached plain errors are peekable too (the caller decides).
	boom := errors.New("boom")
	c.Do("bad", func() (any, error) { return nil, boom })
	if _, err, ok := c.Peek("bad"); !ok || !errors.Is(err, boom) {
		t.Fatalf("Peek(bad) = %v, %v; want boom, true", err, ok)
	}
}
