package mesh

import (
	"container/heap"
	"fmt"
	"sort"

	"magicstate/internal/circuit"
	"magicstate/internal/layout"
	"magicstate/internal/resource"
)

// Config tunes a simulation run.
type Config struct {
	// Cost supplies per-gate durations; zero value uses resource.DefaultCost.
	Cost resource.CostModel
	// MaxCycles aborts runaway simulations; zero means 100 million cycles.
	MaxCycles int
	// Mode selects the braid routing discipline (default RouteXY).
	Mode RouteMode
	// RouteMargin is how many cells beyond its endpoints' bounding box a
	// braid may route through in RouteBox mode (zero means 2).
	RouteMargin int
	// RecordPaths keeps every braid's claimed cells in Result.Paths so
	// invariants (no two braids overlap in space and time) can be audited
	// after the run.
	RecordPaths bool
	// Style selects the surface-code interaction discipline (§IX future
	// work); the zero value reproduces the paper's braiding model.
	Style InteractionStyle
	// Distance is the code distance d used by the distance-sensitive
	// styles (zero means 7); braiding ignores it.
	Distance int
	// EprCycles is the channel occupancy of teleportation-style
	// entanglement distribution (zero means 2).
	EprCycles int
}

// RouteMode selects how braids claim paths.
type RouteMode int

const (
	// RouteXY is the paper's braid model (Fig. 1): each braid follows a
	// dimension-ordered rectilinear path (XY or YX candidate); crossing
	// braids cannot run simultaneously and never detour.
	RouteXY RouteMode = iota
	// RouteBox allows shortest-path detours within the braid endpoints'
	// bounding box plus RouteMargin cells.
	RouteBox
	// RouteAdaptive allows braids to route anywhere on the machine — an
	// idealized congestion-avoiding router used for ablation.
	RouteAdaptive
)

func (cfg *Config) fill() {
	if cfg.Cost == (resource.CostModel{}) {
		cfg.Cost = resource.DefaultCost()
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 100_000_000
	}
	if cfg.RouteMargin == 0 {
		cfg.RouteMargin = 2
	}
	cfg.fillStyle()
}

// Result reports a completed simulation.
type Result struct {
	// Latency is the cycle at which the last gate finishes.
	Latency int
	// Start and End give per-gate timing (End exclusive).
	Start, End []int
	// Stalls counts braid start attempts rejected for lack of a
	// conflict-free path.
	Stalls int
	// Area is the bounding-box tile area of the placement simulated.
	Area int
	// Paths holds, per gate, the channel cells its braid reserved (nil
	// for local gates, and only populated when Config.RecordPaths).
	Paths [][]int
	// HoldEnd gives, per gate, the cycle its channel reservation was
	// released (equal to End under braiding and lattice surgery; earlier
	// under teleportation). Only populated when Config.RecordPaths.
	HoldEnd []int
}

// CheckNoOverlaps verifies the core braid invariant on a recorded run: no
// two gates whose execution windows overlap in time reserved the same
// channel cell. It returns an error naming the first violation.
func (r *Result) CheckNoOverlaps() error {
	if r.Paths == nil {
		return fmt.Errorf("mesh: run did not record paths")
	}
	type claim struct {
		gate       int
		start, end int
	}
	byCell := make(map[int][]claim)
	holdEnd := func(gi int) int {
		if r.HoldEnd != nil {
			return r.HoldEnd[gi]
		}
		return r.End[gi]
	}
	for gi, path := range r.Paths {
		for _, ci := range path {
			for _, prev := range byCell[ci] {
				if r.Start[gi] < prev.end && prev.start < holdEnd(gi) {
					return fmt.Errorf("mesh: gates %d [%d,%d) and %d [%d,%d) share cell %d",
						prev.gate, prev.start, prev.end, gi, r.Start[gi], holdEnd(gi), ci)
				}
			}
			byCell[ci] = append(byCell[ci], claim{gate: gi, start: r.Start[gi], end: holdEnd(gi)})
		}
	}
	return nil
}

// Volume returns the space-time volume of the run.
func (r *Result) Volume() resource.Volume {
	return resource.Volume{Area: r.Area, Latency: r.Latency}
}

type completion struct {
	t    int
	gate int
}

type completionHeap []completion

func (h completionHeap) Len() int            { return len(h) }
func (h completionHeap) Less(i, j int) bool  { return h[i].t < h[j].t }
func (h completionHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x interface{}) { *h = append(*h, x.(completion)) }
func (h *completionHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Simulate executes c on the braid mesh defined by p and returns timing.
// Gates issue in dependency order; braids that cannot claim a
// conflict-free channel path stall until running braids release cells.
func Simulate(c *circuit.Circuit, p *layout.Placement, cfg Config) (*Result, error) {
	cfg.fill()
	if len(p.Pos) != c.NumQubits {
		return nil, fmt.Errorf("mesh: placement covers %d qubits, circuit has %d", len(p.Pos), c.NumQubits)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("mesh: %w", err)
	}
	lat := NewLattice(p.W, p.H)
	rt := newRouter(lat)

	dag := circuit.Deps(c)
	n := len(c.Gates)
	res := &Result{
		Start: make([]int, n),
		End:   make([]int, n),
		Area:  p.Area(),
	}
	if cfg.RecordPaths {
		res.Paths = make([][]int, n)
		res.HoldEnd = make([]int, n)
	}
	for i := range res.Start {
		res.Start[i] = -1
		res.End[i] = -1
	}
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		indeg[i] = dag.InDegree(i)
	}

	// avail holds ready-but-unstarted gates in program order. retryAt
	// skips hopeless routing attempts: a blocked XY braid cannot start
	// before the reservations on its candidate paths expire.
	var avail []int
	retryAt := make([]int, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			avail = append(avail, i)
		}
	}
	var comps completionHeap
	completed := 0
	t := 0

	portBuf := make([][]int, 0, 8)
	finish := func(gi, at int) {
		completed++
		for _, s := range dag.Succ[gi] {
			indeg[s]--
			if indeg[s] == 0 {
				avail = append(avail, s)
			}
		}
		_ = at
	}

	for completed < n {
		if t > cfg.MaxCycles {
			return nil, fmt.Errorf("mesh: exceeded %d cycles with %d/%d gates done", cfg.MaxCycles, completed, n)
		}
		// Attempt to start every available gate; zero-duration gates
		// complete inline and may enable more (finish appends to avail),
		// so loop until quiescent. sort keeps program-order arbitration.
		for progress := true; progress; {
			progress = false
			sort.Ints(avail)
			pending := avail
			avail = nil // finish() appends newly-ready gates here
			var next []int
			for _, gi := range pending {
				g := &c.Gates[gi]
				if retryAt[gi] > t {
					next = append(next, gi)
					continue
				}
				dur, hold := cfg.styleCycles(g)
				if dur == 0 {
					res.Start[gi], res.End[gi] = t, t
					finish(gi, t)
					progress = true
					continue
				}
				if !g.Kind.IsTwoQubit() {
					res.Start[gi], res.End[gi] = t, t+dur
					heap.Push(&comps, completion{t + dur, gi})
					progress = true
					continue
				}
				setBox := func(groups ...[]int) {
					if cfg.Mode == RouteAdaptive {
						rt.box = lat.wholeGrid()
						return
					}
					var all []int
					for _, gp := range groups {
						all = append(all, gp...)
					}
					rt.box = lat.boxAround(all, cfg.RouteMargin)
				}
				routePair := func(srcQ, dstQ circuit.Qubit) []int {
					if cfg.Mode == RouteXY {
						path, clearAt := rt.routeXY(p.At(int(srcQ)), p.At(int(dstQ)), t)
						if path == nil {
							retryAt[gi] = clearAt
						}
						return path
					}
					src := lat.TilePorts(p.At(int(srcQ)), nil)
					dst := lat.TilePorts(p.At(int(dstQ)), nil)
					setBox(src, dst)
					return rt.route(src, dst, t)
				}
				var path []int
				switch g.Kind {
				case circuit.KindCXX:
					if cfg.Mode == RouteXY {
						tgts := make([]layout.Point, len(g.Targets))
						for i, tq := range g.Targets {
							tgts[i] = p.At(int(tq))
						}
						var clearAt int
						path, clearAt = rt.routeXYTree(p.At(int(g.Control)), tgts, t)
						if path == nil {
							retryAt[gi] = clearAt
						}
						break
					}
					portBuf = portBuf[:0]
					portBuf = append(portBuf, lat.TilePorts(p.At(int(g.Control)), nil))
					for _, tq := range g.Targets {
						portBuf = append(portBuf, lat.TilePorts(p.At(int(tq)), nil))
					}
					setBox(portBuf...)
					path = rt.routeTree(portBuf, t)
				case circuit.KindMove:
					path = routePair(g.Control, g.Dest)
				default: // CNOT, InjectT, InjectTdag
					if g.Control == circuit.NoQubit {
						// Ambient injection: local operation on the target.
						res.Start[gi], res.End[gi] = t, t+dur
						heap.Push(&comps, completion{t + dur, gi})
						progress = true
						continue
					}
					path = routePair(g.Control, g.Targets[0])
				}
				if path == nil {
					res.Stalls++
					next = append(next, gi)
					continue
				}
				rt.reserve(path, t+hold)
				if cfg.RecordPaths {
					res.Paths[gi] = append([]int(nil), path...)
					res.HoldEnd[gi] = t + hold
				}
				res.Start[gi], res.End[gi] = t, t+dur
				heap.Push(&comps, completion{t + dur, gi})
				progress = true
			}
			avail = append(avail, next...)
		}
		if completed >= n {
			break
		}
		if comps.Len() == 0 {
			return nil, fmt.Errorf("mesh: deadlock at cycle %d: %d gates stuck, none running", t, len(avail))
		}
		// Advance to the next completion and drain all completions there.
		t = comps[0].t
		for comps.Len() > 0 && comps[0].t == t {
			cm := heap.Pop(&comps).(completion)
			finish(cm.gate, t)
			if t > res.Latency {
				res.Latency = t
			}
		}
	}
	if res.Latency == 0 {
		for _, e := range res.End {
			if e > res.Latency {
				res.Latency = e
			}
		}
	}
	return res, nil
}

// PhaseWindow returns the [start, end) cycle window spanned by the gates
// selected by keep, or (0, 0) when none match. Experiments use it to
// isolate the inter-round permutation step (Fig. 9d).
func (r *Result) PhaseWindow(keep func(i int) bool) (start, end int) {
	start, end = -1, 0
	for i := range r.Start {
		if r.Start[i] < 0 || !keep(i) {
			continue
		}
		if start == -1 || r.Start[i] < start {
			start = r.Start[i]
		}
		if r.End[i] > end {
			end = r.End[i]
		}
	}
	if start == -1 {
		return 0, 0
	}
	return start, end
}
