package bravyi

import (
	"fmt"

	"magicstate/internal/circuit"
)

// ApplyHops rewrites the factory circuit so that each wire in hops routes
// through an intermediate destination (Valiant-style two-phase routing,
// §VII.B.3): the single Move(src, slot) becomes Move(src, hop) followed by
// Move(hop, slot). Keys are indices into f.Wires; values are the hop
// qubits, which must already exist in the circuit and must not be live at
// permutation time (the stitcher reuses dead raw/ancilla qubits so hops
// add no tiles). All stored gate indices (module ranges, round ranges,
// raw consumers, wire gates) are remapped. A wire's GateIdx points at the
// first of the two moves, so port reassignment keeps working after hops
// are applied.
func ApplyHops(f *Factory, hops map[int]circuit.Qubit) error {
	if len(hops) == 0 {
		return nil
	}
	hopOfGate := make(map[int]circuit.Qubit, len(hops))
	for wi, hq := range hops {
		if wi < 0 || wi >= len(f.Wires) {
			return fmt.Errorf("bravyi: hop wire %d out of range", wi)
		}
		if int(hq) < 0 || int(hq) >= f.Circuit.NumQubits {
			return fmt.Errorf("bravyi: hop qubit %d out of range", hq)
		}
		gi := f.Wires[wi].GateIdx
		if f.Circuit.Gates[gi].Kind != circuit.KindMove {
			return fmt.Errorf("bravyi: wire %d gate is %v, not a move", wi, f.Circuit.Gates[gi].Kind)
		}
		if prev, dup := hopOfGate[gi]; dup {
			return fmt.Errorf("bravyi: gate %d hopped twice (%d, %d)", gi, prev, hq)
		}
		hopOfGate[gi] = hq
	}

	old := f.Circuit.Gates
	// insBefore[i] = number of gates inserted before old index i.
	insBefore := make([]int, len(old)+1)
	newGates := make([]circuit.Gate, 0, len(old)+len(hops))
	// Every synthesized Move has exactly one target (validated above), so
	// one backing array sized 2 per hop holds all new operand slices.
	backing := make([]circuit.Qubit, 0, 2*len(hops))
	carve1 := func(q circuit.Qubit) []circuit.Qubit {
		backing = append(backing, q)
		return backing[len(backing)-1 : len(backing) : len(backing)]
	}
	for i := range old {
		insBefore[i] = len(newGates) - i
		g := old[i]
		if hq, hop := hopOfGate[i]; hop {
			first := g // Move(src, hop)
			first.Targets = carve1(hq)
			first.Dest = hq
			second := g // Move(hop, slot)
			second.Control = hq
			second.Targets = carve1(g.Targets[0])
			newGates = append(newGates, first, second)
			continue
		}
		newGates = append(newGates, g)
	}
	insBefore[len(old)] = len(newGates) - len(old)
	remap := func(i int) int { return i + insBefore[i] }

	f.Circuit.Gates = newGates
	for mi := range f.Modules {
		m := &f.Modules[mi]
		m.GateStart = remap(m.GateStart)
		m.GateEnd = remap(m.GateEnd)
		for s := range m.RawConsumer {
			if m.RawConsumer[s] >= 0 {
				m.RawConsumer[s] = remap(m.RawConsumer[s])
			}
		}
	}
	for ri := range f.Rounds {
		r := &f.Rounds[ri]
		r.GateStart = remap(r.GateStart)
		r.GateEnd = remap(r.GateEnd)
		r.PermStart = remap(r.PermStart)
		r.PermEnd = remap(r.PermEnd)
	}
	for wi := range f.Wires {
		f.Wires[wi].GateIdx = remap(f.Wires[wi].GateIdx)
	}
	if err := f.Circuit.Validate(); err != nil {
		return fmt.Errorf("bravyi: circuit invalid after hops: %w", err)
	}
	return nil
}
