// Quickstart: build a single-level Bravyi-Haah factory producing 8 magic
// states, map it with the hand-optimized linear layout, and print its
// simulated cost against the dependency lower bound.
package main

import (
	"fmt"
	"log"

	"magicstate"
)

func main() {
	spec := magicstate.FactorySpec{Capacity: 8, Levels: 1}
	res, err := magicstate.Optimize(spec, magicstate.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("capacity-8 single-level factory (%s mapping)\n", res.Strategy)
	fmt.Printf("  latency: %d cycles (lower bound %d)\n", res.Latency, res.CriticalLatency)
	fmt.Printf("  area:    %d logical qubits\n", res.Area)
	fmt.Printf("  volume:  %.4g qubit-cycles\n", res.Volume)
	fmt.Printf("  1 distilled state costs %.4g qubit-cycles\n", res.Volume/8)
}
