package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"magicstate/internal/bravyi"
	"magicstate/internal/circuit"
)

func TestAddEdgeMergesWeights(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 0, 2) // same undirected edge
	g.AddEdge(1, 2, 1)
	g.AddEdge(1, 1, 5) // self loop ignored
	if len(g.Edges) != 2 {
		t.Fatalf("edges = %d, want 2", len(g.Edges))
	}
	if g.Edges[0].Weight != 3 {
		t.Errorf("merged weight = %v, want 3", g.Edges[0].Weight)
	}
	if g.Degree(1) != 2 || g.Degree(0) != 1 {
		t.Errorf("degrees wrong: %d %d", g.Degree(1), g.Degree(0))
	}
	if g.WeightedDegree(1) != 4 {
		t.Errorf("weighted degree = %v, want 4", g.WeightedDegree(1))
	}
	if g.TotalWeight() != 4 {
		t.Errorf("total weight = %v, want 4", g.TotalWeight())
	}
}

func TestNeighbors(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 2)
	got := map[int]float64{}
	g.Neighbors(0, func(v int, w float64) { got[v] = w })
	if len(got) != 2 || got[1] != 1 || got[2] != 2 {
		t.Errorf("neighbors of 0 = %v", got)
	}
}

func TestFromCircuit(t *testing.T) {
	c := circuit.New(5)
	c.H(0)                           // no edge
	c.CNOT(0, 1)                     // 0-1
	c.CNOT(0, 1)                     // reinforces 0-1
	c.CXX(2, []circuit.Qubit{3, 4})  // 2-3, 2-4
	c.InjectT(3, 0)                  // 0-3
	c.Barrier([]circuit.Qubit{0, 1}) // no edge
	c.Move(4, 1)                     // 4-1
	g := FromCircuit(c)
	if len(g.Edges) != 5 {
		t.Fatalf("edges = %d, want 5", len(g.Edges))
	}
	var w01 float64
	g.Neighbors(0, func(v int, w float64) {
		if v == 1 {
			w01 = w
		}
	})
	if w01 != 2 {
		t.Errorf("0-1 weight = %v, want 2", w01)
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 4, 1)
	comp, n := g.Components()
	if n != 3 { // {0,1,2}, {3,4}, {5}
		t.Fatalf("components = %d, want 3", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Error("0,1,2 should share a component")
	}
	if comp[3] != comp[4] || comp[3] == comp[0] {
		t.Error("3,4 mis-assigned")
	}
	if comp[5] == comp[0] || comp[5] == comp[3] {
		t.Error("isolated vertex should be its own component")
	}
}

func TestSingleLevelFactoryGraphIsOneComponent(t *testing.T) {
	f, err := bravyi.Build(bravyi.Params{K: 8, Levels: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := FromCircuit(f.Circuit)
	if g.N != 53 {
		t.Fatalf("vertices = %d, want 53", g.N)
	}
	_, n := g.Components()
	if n != 1 {
		t.Errorf("single module should be fully connected, got %d components", n)
	}
}

func TestSubgraph(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(3, 4, 1)
	sub, orig := g.Subgraph([]int{1, 2, 3})
	if sub.N != 3 || len(sub.Edges) != 1 {
		t.Fatalf("subgraph %d vertices %d edges, want 3/1", sub.N, len(sub.Edges))
	}
	if orig[0] != 1 || orig[2] != 3 {
		t.Errorf("orig mapping = %v", orig)
	}
	if sub.Edges[0].Weight != 2 {
		t.Errorf("subgraph edge weight = %v, want 2", sub.Edges[0].Weight)
	}
}

func TestSortedEdgesByWeight(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 5)
	g.AddEdge(2, 3, 3)
	idx := g.SortedEdgesByWeight()
	if g.Edges[idx[0]].Weight != 5 || g.Edges[idx[2]].Weight != 1 {
		t.Errorf("sort order wrong: %v", idx)
	}
}

func TestPolesAreAssignedAndBinary(t *testing.T) {
	f, err := bravyi.Build(bravyi.Params{K: 4, Levels: 1})
	if err != nil {
		t.Fatal(err)
	}
	poles := Poles(f.Circuit)
	if len(poles) != f.Circuit.NumQubits {
		t.Fatalf("poles length %d", len(poles))
	}
	plus, minus := 0, 0
	for _, p := range poles {
		switch p {
		case 1:
			plus++
		case -1:
			minus++
		default:
			t.Fatalf("pole %d not in {+1,-1}", p)
		}
	}
	if plus == 0 || minus == 0 {
		t.Errorf("degenerate pole assignment: +%d -%d", plus, minus)
	}
}

func TestPolesAlternateAlongChain(t *testing.T) {
	// A pure CNOT chain executed in one level per gate pair should
	// 2-color alternately.
	c := circuit.New(4)
	c.CNOT(0, 1)
	c.CNOT(2, 3)
	poles := Poles(c)
	if poles[0] == poles[1] || poles[2] == poles[3] {
		t.Errorf("gate endpoints should get opposite poles: %v", poles)
	}
}

func TestCommunitiesOnTwoCliques(t *testing.T) {
	g := New(8)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(i, j, 1)
			g.AddEdge(i+4, j+4, 1)
		}
	}
	g.AddEdge(0, 4, 0.1) // weak bridge
	label, n := Communities(g, rand.New(rand.NewSource(1)))
	if n != 2 {
		t.Fatalf("communities = %d, want 2 (%v)", n, label)
	}
	for i := 1; i < 4; i++ {
		if label[i] != label[0] {
			t.Errorf("clique 1 split: %v", label)
		}
	}
	for i := 5; i < 8; i++ {
		if label[i] != label[4] {
			t.Errorf("clique 2 split: %v", label)
		}
	}
	if Modularity(g, label) < 0.3 {
		t.Errorf("modularity %v too low for clean cliques", Modularity(g, label))
	}
}

func TestCommunitiesDeterministicPerSeed(t *testing.T) {
	f, err := bravyi.Build(bravyi.Params{K: 2, Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	g := FromCircuit(f.Circuit)
	l1, n1 := Communities(g, rand.New(rand.NewSource(9)))
	l2, n2 := Communities(g, rand.New(rand.NewSource(9)))
	if n1 != n2 {
		t.Fatalf("counts differ: %d vs %d", n1, n2)
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatal("same seed must reproduce identical communities")
		}
	}
}

func TestTwoLevelFactoryHasModuleCommunities(t *testing.T) {
	f, err := bravyi.Build(bravyi.Params{K: 2, Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	g := FromCircuit(f.Circuit)
	_, n := Communities(g, rand.New(rand.NewSource(3)))
	// 16 modules with weak inter-round coupling should yield several
	// communities, roughly tracking modules (Fig. 4c).
	if n < 4 {
		t.Errorf("expected >= 4 communities in a 16-module factory, got %d", n)
	}
}

func TestCommunityLabelsAreDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := New(n)
		for e := 0; e < n*2; e++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), 1+rng.Float64())
		}
		label, count := Communities(g, rng)
		seen := make([]bool, count)
		for _, l := range label {
			if l < 0 || l >= count {
				return false
			}
			seen[l] = true
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestModularityEmptyGraph(t *testing.T) {
	g := New(3)
	if Modularity(g, []int{0, 1, 2}) != 0 {
		t.Error("empty graph modularity should be 0")
	}
}
