package graph

import (
	"math"
	"sort"
)

// FiedlerVector approximates the eigenvector of the weighted graph
// Laplacian L = D − W belonging to its second-smallest eigenvalue (the
// algebraic connectivity of Fiedler [36]). It power-iterates on the
// spectrum-reversing operator B = cI − L with deflation against the
// constant vector (L's kernel on a connected graph), so B's dominant
// non-constant eigenvector is L's Fiedler vector. iters caps the
// iterations (zero means 200). The result is normalized to unit length;
// a zero vector is returned for graphs with fewer than two vertices.
func FiedlerVector(g *Graph, iters int) []float64 {
	n := g.N
	v := make([]float64, n)
	if n < 2 {
		return v
	}
	if iters <= 0 {
		iters = 200
	}
	// Gershgorin bound: every Laplacian eigenvalue is at most 2·max
	// weighted degree, so c = bound + 1 keeps B positive semidefinite
	// with reversed eigenvalue order.
	var maxDeg float64
	for u := 0; u < n; u++ {
		if d := g.WeightedDegree(u); d > maxDeg {
			maxDeg = d
		}
	}
	c := 2*maxDeg + 1

	// Deterministic, non-constant start vector.
	for i := range v {
		v[i] = math.Sin(float64(i + 1))
	}
	deflate(v)
	normalize(v)

	next := make([]float64, n)
	for it := 0; it < iters; it++ {
		// next = (cI − L) v = c·v − D·v + W·v
		for i := range next {
			next[i] = (c - g.WeightedDegree(i)) * v[i]
		}
		for _, e := range g.Edges {
			next[e.U] += e.Weight * v[e.V]
			next[e.V] += e.Weight * v[e.U]
		}
		deflate(next)
		if !normalize(next) {
			// Degenerate (all-constant) iterate: reseed.
			for i := range next {
				next[i] = math.Cos(float64(2*it + i))
			}
			deflate(next)
			normalize(next)
		}
		v, next = next, v
	}
	return v
}

// deflate removes the component along the all-ones vector.
func deflate(v []float64) {
	var mean float64
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	for i := range v {
		v[i] -= mean
	}
}

// normalize scales v to unit length, reporting false when v is ~zero.
func normalize(v []float64) bool {
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	norm = math.Sqrt(norm)
	if norm < 1e-12 {
		return false
	}
	for i := range v {
		v[i] /= norm
	}
	return true
}

// SpectralBisect splits the graph into two halves by the median of the
// Fiedler vector [34,36], returning a 0/1 label per vertex. The split is
// balanced: exactly floor(n/2) vertices land in side 0 (median ties break
// by vertex id for determinism).
func SpectralBisect(g *Graph) []int {
	fv := FiedlerVector(g, 0)
	idx := make([]int, g.N)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if fv[idx[a]] != fv[idx[b]] {
			return fv[idx[a]] < fv[idx[b]]
		}
		return idx[a] < idx[b]
	})
	label := make([]int, g.N)
	for rank, v := range idx {
		if rank >= g.N/2 {
			label[v] = 1
		}
	}
	return label
}

// SpectralCommunities recursively bisects the graph until it has k parts
// (or parts become singletons), splitting the currently largest part at
// each step. It returns dense community ids. k < 2 returns the trivial
// single community.
func SpectralCommunities(g *Graph, k int) ([]int, int) {
	label := make([]int, g.N)
	if g.N == 0 {
		return label, 0
	}
	if k < 2 || g.N < 2 {
		return label, 1
	}
	count := 1
	for count < k {
		// Find the largest community.
		size := make([]int, count)
		for _, l := range label {
			size[l]++
		}
		largest, largestSize := 0, 0
		for c, s := range size {
			if s > largestSize {
				largest, largestSize = c, s
			}
		}
		if largestSize < 2 {
			break
		}
		var members []int
		for v, l := range label {
			if l == largest {
				members = append(members, v)
			}
		}
		sub, back := g.Subgraph(members)
		half := SpectralBisect(sub)
		for si, side := range half {
			if side == 1 {
				label[back[si]] = count
			}
		}
		count++
	}
	out, n := densify(label)
	return out, n
}
