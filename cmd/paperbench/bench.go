package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"magicstate/internal/bravyi"
	"magicstate/internal/experiments"
	"magicstate/internal/force"
	"magicstate/internal/graph"
	"magicstate/internal/layout"
	"magicstate/internal/mesh"
	"magicstate/internal/stitch"
	"magicstate/internal/store"
	"magicstate/internal/sweep"
)

// benchResult is one workload's measurement in the -bench snapshot.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchSnapshot is the machine-readable perf snapshot -bench emits; CI
// archives one per run and BENCH_PR2.json pins the PR-2 before/after pair
// so the bench trajectory has a seed.
type benchSnapshot struct {
	Schema     string        `json:"schema"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	NumCPU     int           `json:"num_cpu"`
	Benchmarks []benchResult `json:"benchmarks"`
}

func toResult(name string, r testing.BenchmarkResult) benchResult {
	return benchResult{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// runBenchSuite measures the simulator and stitcher hot paths the repo's
// Go benchmarks track (simulate micro benches, simulator reuse, stitch
// build, and a cold end-to-end Table I pass) and writes the snapshot as
// JSON to path ("-" for stdout).
func runBenchSuite(path string) error {
	snap := benchSnapshot{
		Schema:    "paperbench-bench/v1",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}

	k8, err := bravyi.Build(bravyi.Params{K: 8, Levels: 1})
	if err != nil {
		return err
	}
	k8pl := layout.Linear(k8)
	k64, err := bravyi.Build(bravyi.Params{K: 8, Levels: 2, Barriers: true})
	if err != nil {
		return err
	}
	k64pl := layout.Linear(k64)

	snap.Benchmarks = append(snap.Benchmarks, toResult("simulate_single_level_k8",
		testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mesh.Simulate(k8.Circuit, k8pl, mesh.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})))
	snap.Benchmarks = append(snap.Benchmarks, toResult("simulate_two_level_k64",
		testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mesh.Simulate(k64.Circuit, k64pl, mesh.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})))
	sim := mesh.NewSimulator()
	snap.Benchmarks = append(snap.Benchmarks, toResult("simulator_reuse_two_level_k64",
		testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Simulate(k64.Circuit, k64pl, mesh.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})))
	fg := graph.FromCircuit(k8.Circuit)
	fan := force.NewAnnealer()
	snap.Benchmarks = append(snap.Benchmarks, toResult("force_anneal_k8",
		testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fan.Anneal(fg, k8.Circuit, k8pl, force.Options{Seed: 1})
			}
		})))
	snap.Benchmarks = append(snap.Benchmarks, toResult("stitch_build_k36",
		testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := stitch.Build(bravyi.Params{K: 6, Levels: 2, Barriers: true},
					stitch.Options{Seed: 1, Reuse: true, Hops: stitch.AnnealedMidpointHop}); err != nil {
					b.Fatal(err)
				}
			}
		})))

	// Cold end-to-end Table I (quick grids). The sweep engine memoizes
	// grid points process-wide, so only the first pass is meaningful:
	// measure it once with the allocator's own counters.
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if _, err := experiments.Table1([]int{2, 4}, []int{4, 16}, 1); err != nil {
		return err
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	snap.Benchmarks = append(snap.Benchmarks, benchResult{
		Name:        "table1_quick_cold",
		Iterations:  1,
		NsPerOp:     float64(elapsed.Nanoseconds()),
		BytesPerOp:  int64(after.TotalAlloc - before.TotalAlloc),
		AllocsPerOp: int64(after.Mallocs - before.Mallocs),
	})

	// Stage reuse: the same quick grids at a different seed, over a
	// checkpoint populated by a first pass. Every final record misses
	// (the seed changed) but the seed-independent factory builds replay
	// from the stage tier, so this measures the staged pipeline's
	// partial-reuse win over the cold pass above.
	stageDir, err := os.MkdirTemp("", "paperbench-stage-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(stageDir)
	st, err := store.Open(stageDir)
	if err != nil {
		return err
	}
	origEng := experiments.Engine()
	experiments.SetEngine(sweep.New(sweep.Options{Store: st}))
	if _, err := experiments.Table1([]int{2, 4}, []int{4, 16}, 2); err != nil {
		experiments.SetEngine(origEng)
		st.Close()
		return err
	}
	// A fresh engine on the same store: empty memos, so every reused
	// artifact comes off disk the way a new process would see it.
	warm := sweep.New(sweep.Options{Store: st})
	experiments.SetEngine(warm)
	runtime.ReadMemStats(&before)
	start = time.Now()
	_, terr := experiments.Table1([]int{2, 4}, []int{4, 16}, 3)
	elapsed = time.Since(start)
	runtime.ReadMemStats(&after)
	experiments.SetEngine(origEng)
	if cerr := st.Close(); terr == nil {
		terr = cerr
	}
	if terr != nil {
		return terr
	}
	ss := warm.StageStats()
	fmt.Fprintf(os.Stderr, "stage reuse: build %d reused / %d computed, place %d/%d, sim %d/%d\n",
		ss.BuildHits, ss.BuildComputes, ss.PlaceHits, ss.PlaceComputes, ss.SimHits, ss.SimComputes)
	snap.Benchmarks = append(snap.Benchmarks, benchResult{
		Name:        "table1_quick_warm_stage_reuse",
		Iterations:  1,
		NsPerOp:     float64(elapsed.Nanoseconds()),
		BytesPerOp:  int64(after.TotalAlloc - before.TotalAlloc),
		AllocsPerOp: int64(after.Mallocs - before.Mallocs),
	})

	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote perf snapshot to %s\n", path)
	return nil
}
