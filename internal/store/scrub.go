package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"magicstate/internal/core"
)

// ScrubReport is the outcome of an offline store verification.
type ScrubReport struct {
	// Entries is the total index entry count on disk (including any
	// past the valid prefix).
	Entries int
	// Valid is the length of the longest valid prefix, in entries:
	// every entry up to here passes its own CRC, is contiguous and
	// in-range, and its payload passes the payload CRC.
	Valid int
	// BadRecords lists soft findings within the valid prefix: records
	// whose payload does not decode as a Record (or, for stage-framed
	// payloads, under the stage's artifact codec), and duplicate keys.
	// These never block reads (lookups decode-check anyway) but point
	// at a writer bug or foreign data.
	BadRecords []string
	// StageRecords counts records within the valid prefix framed as
	// stage artifacts (the staged pipeline's intermediate results);
	// Valid - StageRecords are final result records.
	StageRecords int
	// Truncated reports whether the files hold data past the valid
	// prefix — the condition -repair would (or did) truncate away.
	Truncated bool
	// Reason describes the first chain break when Truncated is true.
	Reason string
	// IndexBytes and LogBytes are the on-disk file sizes found.
	IndexBytes, LogBytes int64
	// ValidIndexBytes and ValidLogBytes are the sizes of the valid
	// prefix — what the files are truncated to under -repair.
	ValidIndexBytes, ValidLogBytes int64
	// Repaired reports whether this scrub truncated the files.
	Repaired bool
}

// Clean reports whether the scrub found nothing wrong at all.
func (r *ScrubReport) Clean() bool {
	return !r.Truncated && len(r.BadRecords) == 0
}

// Scrub verifies a store directory offline, without opening it as a
// live Store: it replays the index against the log exactly the way
// recovery does (entry CRC, contiguity, range, payload CRC), then
// applies softer checks within the valid prefix (payloads must decode
// as Records — or, when stage-framed, under their stage artifact codec
// — and keys must be unique). With repair set, files holding data
// past the valid prefix are truncated back to it — the same operation
// the next Open would perform, done eagerly and reported.
//
// Scrub takes the same in-process single-writer slot a live Store
// would, so it cannot race a Store writing the directory.
func Scrub(dir string, repair bool) (*ScrubReport, error) {
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	openDirs.mu.Lock()
	if openDirs.dirs[absDir] {
		openDirs.mu.Unlock()
		return nil, fmt.Errorf("store: %s is open in this process; close it before scrubbing", dir)
	}
	openDirs.dirs[absDir] = true
	openDirs.mu.Unlock()
	defer func() {
		openDirs.mu.Lock()
		delete(openDirs.dirs, absDir)
		openDirs.mu.Unlock()
	}()

	logBytes, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil {
		return nil, fmt.Errorf("store: read log: %w", err)
	}
	idxBytes, err := os.ReadFile(filepath.Join(dir, idxName))
	if err != nil {
		return nil, fmt.Errorf("store: read index: %w", err)
	}

	rep := &ScrubReport{
		Entries:    len(idxBytes) / entrySize,
		IndexBytes: int64(len(idxBytes)),
		LogBytes:   int64(len(logBytes)),
	}
	if len(idxBytes)%entrySize != 0 {
		rep.Reason = fmt.Sprintf("index length %d is not a multiple of the %d-byte entry size (torn tail)", len(idxBytes), entrySize)
	}

	seen := make(map[Key]bool, rep.Entries)
	var validLog int64
	for off := 0; off+entrySize <= len(idxBytes); off += entrySize {
		e := idxBytes[off : off+entrySize]
		entryNo := off / entrySize
		if crc32.ChecksumIEEE(e[:48]) != binary.LittleEndian.Uint32(e[48:52]) {
			rep.Reason = fmt.Sprintf("entry %d fails its entry CRC", entryNo)
			break
		}
		recOff := int64(binary.LittleEndian.Uint64(e[32:40]))
		recLen := int64(binary.LittleEndian.Uint32(e[40:44]))
		if recOff != validLog {
			rep.Reason = fmt.Sprintf("entry %d is non-contiguous (offset %d, want %d)", entryNo, recOff, validLog)
			break
		}
		if recOff+recLen > int64(len(logBytes)) {
			rep.Reason = fmt.Sprintf("entry %d extends past the log end (%d+%d > %d)", entryNo, recOff, recLen, len(logBytes))
			break
		}
		payload := logBytes[recOff : recOff+recLen]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(e[44:48]) {
			rep.Reason = fmt.Sprintf("entry %d payload fails its CRC", entryNo)
			break
		}
		var k Key
		copy(k[:], e[:32])
		if seen[k] {
			rep.BadRecords = append(rep.BadRecords, fmt.Sprintf("entry %d: duplicate key %s", entryNo, k))
		}
		seen[k] = true
		if st, body, isStage := StagePayload(payload); isStage {
			rep.StageRecords++
			if err := core.ValidateStageArtifact(st, body); err != nil {
				rep.BadRecords = append(rep.BadRecords, fmt.Sprintf("entry %d (%s): stage %s payload does not decode: %v", entryNo, k, st, err))
			}
		} else {
			var r Record
			if err := json.Unmarshal(payload, &r); err != nil {
				rep.BadRecords = append(rep.BadRecords, fmt.Sprintf("entry %d (%s): payload does not decode as a record: %v", entryNo, k, err))
			}
		}
		rep.Valid++
		validLog = recOff + recLen
	}
	rep.ValidIndexBytes = int64(rep.Valid * entrySize)
	rep.ValidLogBytes = validLog
	rep.Truncated = rep.ValidIndexBytes != rep.IndexBytes || rep.ValidLogBytes != rep.LogBytes

	if repair && rep.Truncated {
		if err := os.Truncate(filepath.Join(dir, idxName), rep.ValidIndexBytes); err != nil {
			return rep, fmt.Errorf("store: repair index: %w", err)
		}
		if err := os.Truncate(filepath.Join(dir, logName), rep.ValidLogBytes); err != nil {
			return rep, fmt.Errorf("store: repair log: %w", err)
		}
		rep.Repaired = true
	}
	return rep, nil
}
