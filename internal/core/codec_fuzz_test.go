package core

import (
	"bytes"
	"context"
	"testing"
)

// FuzzStageArtifactDecode hammers the strict-decode contract of every
// stage codec: arbitrary bytes must either be rejected with an error or
// decode into an artifact whose re-encoding is a fixed point — decode
// then encode then decode again lands on identical bytes, so nothing
// half-parsed can ever be admitted and replayed. A panic (slice out of
// range, giant allocation from a corrupt count) is a failure by
// construction.
func FuzzStageArtifactDecode(f *testing.F) {
	// Seed with one pristine record per kind plus near-miss mutations,
	// so the fuzzer starts at the format's cliff edges instead of in
	// random-noise flatland.
	// The config stays cheap on purpose: this setup reruns once per fuzz
	// worker, so an expensive build would starve the fuzzer itself.
	cfg := Config{K: 2, Levels: 1, Strategy: StrategyLinear}
	ctx := context.Background()
	b, err := BuildStage(ctx, cfg)
	if err != nil {
		f.Fatal(err)
	}
	p, err := PlaceStage(ctx, cfg, b)
	if err != nil {
		f.Fatal(err)
	}
	sim, err := SimStage(ctx, cfg, b, p)
	if err != nil {
		f.Fatal(err)
	}
	seeds := [][]byte{
		EncodeBuildArtifact(b),
		// A build artifact carrying a placement (the stitch shape),
		// synthesized without paying for a stitch anneal.
		EncodeBuildArtifact(&BuildArtifact{Factory: b.Factory, Placement: p.Placement}),
		EncodePlaceArtifact(p),
		EncodeSimArtifact(sim),
	}
	for _, s := range seeds {
		for _, st := range Stages() {
			f.Add(byte(st), s)
		}
		f.Add(byte(StageBuild), s[:len(s)/2])
		truncTail := append([]byte(nil), s...)
		f.Add(byte(StageSim), append(truncTail, 7))
	}
	f.Add(byte(0), []byte(nil))
	f.Add(byte(200), []byte("msc/build\x01"))

	f.Fuzz(func(t *testing.T, stageByte byte, data []byte) {
		st := Stage(stageByte)
		if err := ValidateStageArtifact(st, data); err != nil {
			return // rejected cleanly — the common, correct outcome
		}
		// Admitted: the decoded value must re-encode canonically.
		var reenc []byte
		switch st {
		case StageBuild:
			a, err := DecodeBuildArtifact(data)
			if err != nil {
				t.Fatalf("ValidateStageArtifact admitted what DecodeBuildArtifact rejects: %v", err)
			}
			reenc = EncodeBuildArtifact(a)
		case StagePlace:
			a, err := DecodePlaceArtifact(data)
			if err != nil {
				t.Fatalf("ValidateStageArtifact admitted what DecodePlaceArtifact rejects: %v", err)
			}
			reenc = EncodePlaceArtifact(a)
		case StageSim:
			a, err := DecodeSimArtifact(data)
			if err != nil {
				t.Fatalf("ValidateStageArtifact admitted what DecodeSimArtifact rejects: %v", err)
			}
			reenc = EncodeSimArtifact(a)
		default:
			t.Fatalf("unknown stage %d was admitted", st)
		}
		// The canonical form is a fixed point: decoding the re-encoding
		// and encoding once more must reproduce it byte for byte.
		if err := ValidateStageArtifact(st, reenc); err != nil {
			t.Fatalf("re-encoded artifact does not decode: %v", err)
		}
		var again []byte
		switch st {
		case StageBuild:
			a, _ := DecodeBuildArtifact(reenc)
			again = EncodeBuildArtifact(a)
		case StagePlace:
			a, _ := DecodePlaceArtifact(reenc)
			again = EncodePlaceArtifact(a)
		case StageSim:
			a, _ := DecodeSimArtifact(reenc)
			again = EncodeSimArtifact(a)
		}
		if !bytes.Equal(reenc, again) {
			t.Fatal("re-encoding is not a fixed point; the codec admits a non-canonical form it cannot reproduce")
		}
	})
}
