package qasm

import (
	"fmt"

	"magicstate/internal/circuit"
)

// Compile parses and elaborates src, returning the flat gate-level
// circuit: register declarations allocate logical qubits, whole-register
// applications broadcast element-wise, and gate macros inline. The
// circuit is validated before it is returned — a malformed program
// yields a structured error, never an invalid circuit.
func Compile(src string) (*circuit.Circuit, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileProgram(prog)
}

// maxDepth bounds macro inlining so mutually-recursive gate definitions
// fail with an error instead of overflowing the stack.
const maxDepth = 64

// maxQubits bounds register allocation and maxGates bounds elaboration:
// a kilobyte of source can otherwise demand gigabytes (qreg q[1<<30])
// or run forever (64 chained macros that each call the previous one
// twice elaborate 2^64 gates). Both limits are far beyond any circuit
// the mesh could simulate, so real programs never see them.
const (
	maxQubits = 1 << 16
	maxGates  = 1 << 20
)

type compiler struct {
	prog  *Program
	circ  *circuit.Circuit
	qregs map[string][]circuit.Qubit
	cregs map[string]int
}

// CompileProgram elaborates an already-parsed program.
func CompileProgram(prog *Program) (*circuit.Circuit, error) {
	c := &compiler{
		prog:  prog,
		circ:  circuit.New(0),
		qregs: map[string][]circuit.Qubit{},
		cregs: map[string]int{},
	}
	for _, s := range prog.Stmts {
		var err error
		switch st := s.(type) {
		case *QRegDecl:
			err = c.declare(st)
		case *CRegDecl:
			if _, dup := c.cregs[st.Name]; dup {
				err = fmt.Errorf("qasm:%d: register %s redeclared", st.Line, st.Name)
			} else {
				c.cregs[st.Name] = st.Size
			}
		case *Apply:
			err = c.apply(st)
		}
		if err != nil {
			return nil, err
		}
	}
	if err := c.circ.Validate(); err != nil {
		return nil, fmt.Errorf("qasm: compiled circuit invalid: %w", err)
	}
	return c.circ, nil
}

func (c *compiler) declare(st *QRegDecl) error {
	if _, dup := c.qregs[st.Name]; dup {
		return fmt.Errorf("qasm:%d: register %s redeclared", st.Line, st.Name)
	}
	if _, dup := c.cregs[st.Name]; dup {
		return fmt.Errorf("qasm:%d: register %s redeclared", st.Line, st.Name)
	}
	if c.circ.NumQubits+st.Size > maxQubits {
		return fmt.Errorf("qasm:%d: program declares more than %d qubits", st.Line, maxQubits)
	}
	qs := make([]circuit.Qubit, st.Size)
	for i := range qs {
		qs[i] = c.circ.AddQubit(fmt.Sprintf("%s_%d", st.Name, i))
	}
	c.qregs[st.Name] = qs
	return nil
}

// resolve maps an argument to the qubits it names: one for an indexed
// element, the whole register otherwise.
func (c *compiler) resolve(a Arg) ([]circuit.Qubit, error) {
	qs, ok := c.qregs[a.Reg]
	if !ok {
		if _, isCreg := c.cregs[a.Reg]; isCreg {
			return nil, fmt.Errorf("qasm:%d: %s is a classical register, want qubits", a.Line, a.Reg)
		}
		return nil, fmt.Errorf("qasm:%d: undeclared register %q", a.Line, a.Reg)
	}
	if !a.HasIndex {
		return qs, nil
	}
	if a.Index < 0 || a.Index >= len(qs) {
		return nil, fmt.Errorf("qasm:%d: index %d out of range for %s (size %d)", a.Line, a.Index, a.Reg, len(qs))
	}
	return qs[a.Index : a.Index+1], nil
}

// apply elaborates one main-body application: resolve each argument,
// determine the broadcast width (every multi-qubit argument must agree;
// single qubits broadcast), and emit one instance per lane.
func (c *compiler) apply(app *Apply) error {
	if app.Name == "measure" {
		return c.measure(app)
	}
	args := make([][]circuit.Qubit, len(app.Args))
	width := 1
	for i, a := range app.Args {
		qs, err := c.resolve(a)
		if err != nil {
			return err
		}
		args[i] = qs
		if len(qs) > 1 {
			if width > 1 && len(qs) != width {
				return fmt.Errorf("qasm:%d: %s mixes registers of size %d and %d", app.Line, app.Name, width, len(qs))
			}
			width = len(qs)
		}
	}
	if app.Name == "barrier" {
		var all []circuit.Qubit
		for _, qs := range args {
			all = append(all, qs...)
		}
		c.circ.Barrier(all)
		return nil
	}
	lane := make([]circuit.Qubit, len(args))
	for w := 0; w < width; w++ {
		for i, qs := range args {
			if len(qs) == 1 {
				lane[i] = qs[0]
			} else {
				lane[i] = qs[w]
			}
		}
		if err := c.emit(app, lane, 0); err != nil {
			return err
		}
	}
	return nil
}

func (c *compiler) measure(app *Apply) error {
	qs, err := c.resolve(app.Args[0])
	if err != nil {
		return err
	}
	size, ok := c.cregs[app.Dest.Reg]
	if !ok {
		return fmt.Errorf("qasm:%d: measure destination %q is not a classical register", app.Dest.Line, app.Dest.Reg)
	}
	if app.Dest.HasIndex {
		if app.Dest.Index < 0 || app.Dest.Index >= size {
			return fmt.Errorf("qasm:%d: index %d out of range for %s (size %d)", app.Dest.Line, app.Dest.Index, app.Dest.Reg, size)
		}
		if len(qs) != 1 {
			return fmt.Errorf("qasm:%d: measure maps %d qubits to one bit", app.Line, len(qs))
		}
	} else if len(qs) > 1 && len(qs) != size {
		return fmt.Errorf("qasm:%d: measure maps %d qubits to %d bits", app.Line, len(qs), size)
	}
	// The IR has no classical state; the destination is bounds-checked
	// and discarded.
	for _, q := range qs {
		c.circ.MeasZ(q)
	}
	return nil
}

// emit lowers one scalar application: a builtin becomes IR gates, a
// macro call inlines its body with formals bound to the lane's qubits.
func (c *compiler) emit(app *Apply, qs []circuit.Qubit, depth int) error {
	if depth > maxDepth {
		return fmt.Errorf("qasm:%d: gate expansion depth exceeds %d (recursive definitions?)", app.Line, maxDepth)
	}
	if len(c.circ.Gates) > maxGates {
		// Depth alone does not bound work: 64 macros that each invoke
		// the previous one twice expand to 2^64 gates within the depth
		// limit. The gate budget makes elaboration terminate.
		return fmt.Errorf("qasm:%d: program expands past %d gates", app.Line, maxGates)
	}
	arity := func(n int) error {
		if len(qs) != n {
			return fmt.Errorf("qasm:%d: %s expects %d qubits, got %d", app.Line, app.Name, n, len(qs))
		}
		return nil
	}
	switch app.Name {
	case "h", "x", "z", "s", "sdg", "t", "tdg", "id", "reset":
		if err := arity(1); err != nil {
			return err
		}
		switch app.Name {
		case "h":
			c.circ.H(qs[0])
		case "x":
			c.circ.X(qs[0])
		case "z":
			c.circ.Z(qs[0])
		case "s", "sdg":
			// S and S† cost the same cycles on the mesh; the IR keeps one kind.
			c.circ.S(qs[0])
		case "t", "tdg":
			c.circ.T(qs[0])
		case "id":
			// Identity: no braid, no cycles.
		case "reset":
			c.circ.PrepZ(qs[0])
		}
		return nil
	case "cx", "CX":
		if err := arity(2); err != nil {
			return err
		}
		if qs[0] == qs[1] {
			return fmt.Errorf("qasm:%d: cx control and target are the same qubit", app.Line)
		}
		c.circ.CNOT(qs[0], qs[1])
		return nil
	case "U", "u1", "u2", "u3", "rx", "ry", "rz":
		return fmt.Errorf("qasm:%d: parameterized gate %q is not supported (the braid mesh executes Clifford+T only)", app.Line, app.Name)
	case "barrier":
		c.circ.Barrier(qs)
		return nil
	}
	g, ok := c.prog.Gates[app.Name]
	if !ok {
		return fmt.Errorf("qasm:%d: unknown gate %q", app.Line, app.Name)
	}
	if len(g.Params) != len(qs) {
		return fmt.Errorf("qasm:%d: gate %s expects %d qubits, got %d", app.Line, g.Name, len(g.Params), len(qs))
	}
	bind := make(map[string]circuit.Qubit, len(g.Params))
	for i, pn := range g.Params {
		bind[pn] = qs[i]
	}
	for _, inner := range g.Body {
		lane := make([]circuit.Qubit, len(inner.Args))
		for i, a := range inner.Args {
			q, ok := bind[a.Reg]
			if !ok {
				return fmt.Errorf("qasm:%d: gate %s body uses undeclared qubit %q", inner.Line, g.Name, a.Reg)
			}
			lane[i] = q
		}
		if err := c.emit(inner, lane, depth+1); err != nil {
			return err
		}
	}
	return nil
}
