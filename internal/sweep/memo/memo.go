// Package memo is the sweep engine's result cache: a concurrency-safe
// memoization table with singleflight semantics. Keys are arbitrary
// comparable values (the engine keys by core.Config; internal/core keys
// force-directed candidate evaluations by their deterministic inputs),
// and concurrent callers asking for the same key share one computation
// instead of racing to repeat it.
//
// The package sits below every layer that needs caching — it depends on
// nothing but the standard library, so both the engine (which depends on
// core) and core itself can route repeated work through it without an
// import cycle.
package memo

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// entry is one cached computation. The sync.Once gives singleflight
// semantics: the first caller runs fn, concurrent callers for the same
// key block until the value is ready, later callers read it for free.
type entry struct {
	once  sync.Once
	ready atomic.Bool // set after once ran; gates Peek
	val   any
	err   error
}

// Cache memoizes computations by comparable key. The zero value is not
// usable; construct with New.
type Cache struct {
	mu      sync.Mutex
	entries map[any]*entry
	limit   int
	hits    int64
	misses  int64
}

// DefaultLimit is the entry count at which a cache built with New(0)
// resets itself.
const DefaultLimit = 4096

// New returns an empty cache that coarsely resets once it holds limit
// entries (0 means DefaultLimit). Deterministic workloads re-derive
// evicted results at the cost of one recomputation, so the reset only
// bounds memory, never changes answers.
func New(limit int) *Cache {
	if limit <= 0 {
		limit = DefaultLimit
	}
	return &Cache{entries: make(map[any]*entry), limit: limit}
}

// Do returns the memoized result for key, running fn exactly once per
// key (per cache generation). fn's error is cached too: deterministic
// failures are as stable as deterministic successes. The one exception
// is context cancellation — a fn that fails with context.Canceled or
// context.DeadlineExceeded reflects its first caller's deadline, not
// the key, so the entry is dropped and the next caller recomputes.
func (c *Cache) Do(key any, fn func() (any, error)) (any, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		if len(c.entries) >= c.limit {
			c.entries = make(map[any]*entry)
		}
		e = &entry{}
		c.entries[key] = e
		c.misses++
	} else {
		c.hits++
	}
	c.mu.Unlock()

	e.once.Do(func() {
		e.val, e.err = fn()
		e.ready.Store(true)
	})
	if e.err != nil && (errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded)) {
		c.mu.Lock()
		// Only this generation's entry is dropped; a concurrent Reset or
		// a fresh recompute under the same key must not be clobbered.
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		c.mu.Unlock()
	}
	return e.val, e.err
}

// Peek returns the memoized result for key only if a computation has
// already completed, without ever running (or waiting for) one. It is
// the cache-hit fast path for callers that must not block — the msfud
// service answers cached points even when its admission queue is full.
// Peek leaves the hit/miss counters untouched.
func (c *Cache) Peek(key any) (val any, err error, ok bool) {
	c.mu.Lock()
	e, present := c.entries[key]
	c.mu.Unlock()
	if !present || !e.ready.Load() {
		return nil, nil, false
	}
	return e.val, e.err, true
}

// Stats reports how many Do calls found an existing entry (hits) versus
// created one (misses).
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len reports the live entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Reset drops every entry (the counters survive).
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[any]*entry)
}
