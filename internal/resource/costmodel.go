// Package resource implements the paper's resource accounting: the
// per-gate cycle cost model used by the braid simulator and critical-path
// analysis, the Bravyi-Haah error-propagation and balanced-investment code
// distance model of §II.F-II.G (following O'Gorman & Campbell [20]), and
// space-time volume computation.
package resource

import "magicstate/internal/circuit"

// CostModel assigns surface-code cycle durations to logical gates. Braid
// durations are distance-insensitive (a braid extends to arbitrary length
// in constant time, §II.C) but a braid occupies its whole path for the
// full duration, which is what makes congestion expensive. The defaults
// are calibrated so that critical-path volumes of single-level factories
// land in the range Table I reports (e.g. K=2 ≈ 6.3e3, K=24 ≈ 1.1e5).
type CostModel struct {
	Prep   int // state preparation
	H      int // Hadamard (transversal-ish tile-local operation)
	Meas   int // destructive measurement
	CNOT   int // two-qubit braid occupancy
	CXX    int // single-control multi-target braid occupancy
	Inject int // magic-state injection: 2 CNOT braids in expectation (§II.E)
	Move   int // state relocation braid (inter-round permutation step)
}

// DefaultCost returns the calibrated default model.
func DefaultCost() CostModel {
	return CostModel{Prep: 10, H: 10, Meas: 10, CNOT: 20, CXX: 20, Inject: 40, Move: 20}
}

// GateCycles returns the duration of g in cycles. Barriers are pure
// scheduling fences and take zero time.
func (cm CostModel) GateCycles(g *circuit.Gate) int {
	switch g.Kind {
	case circuit.KindPrepZ, circuit.KindPrepX:
		return cm.Prep
	case circuit.KindH, circuit.KindX, circuit.KindZ:
		return cm.H
	case circuit.KindS:
		return 2 * cm.Inject // S decomposes into two T injections (§II.E)
	case circuit.KindT:
		return cm.Inject
	case circuit.KindMeasX, circuit.KindMeasZ:
		return cm.Meas
	case circuit.KindCNOT:
		return cm.CNOT
	case circuit.KindCXX:
		return cm.CXX
	case circuit.KindInjectT, circuit.KindInjectTdag:
		return cm.Inject
	case circuit.KindMove:
		return cm.Move
	case circuit.KindBarrier:
		return 0
	}
	return cm.CNOT
}

// CriticalPath returns the dependency-limited latency of c in cycles: the
// paper's "theoretical lower bound" (Fig. 7), which assumes every braid
// routes without conflict.
func (cm CostModel) CriticalPath(c *circuit.Circuit) int {
	d := circuit.Deps(c)
	w := d.LongestPath(func(i int) float64 { return float64(cm.GateCycles(&c.Gates[i])) })
	return int(w)
}
