package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"magicstate/internal/bravyi"
	"magicstate/internal/graph"
	"magicstate/internal/layout"
)

func twoCliques(bridge float64) *graph.Graph {
	g := graph.New(8)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(i, j, 1)
			g.AddEdge(i+4, j+4, 1)
		}
	}
	g.AddEdge(0, 4, bridge)
	return g
}

func countMask(mask []bool) int {
	n := 0
	for _, b := range mask {
		if b {
			n++
		}
	}
	return n
}

func TestBisectFindsNaturalCut(t *testing.T) {
	g := twoCliques(0.5)
	mask := Bisect(g, 4, rand.New(rand.NewSource(1)))
	if countMask(mask) != 4 {
		t.Fatalf("part size = %d, want 4", countMask(mask))
	}
	if CutWeight(g, mask) != 0.5 {
		t.Errorf("cut = %v, want 0.5 (the bridge)", CutWeight(g, mask))
	}
}

func TestBisectExactSizes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		g := graph.New(n)
		for e := 0; e < n*2; e++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), 1+rng.Float64()*3)
		}
		nA := 1 + rng.Intn(n-1)
		mask := Bisect(g, nA, rng)
		return countMask(mask) == nA
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBisectDegenerate(t *testing.T) {
	g := graph.New(5)
	if countMask(Bisect(g, 0, rand.New(rand.NewSource(1)))) != 0 {
		t.Error("nA=0 should return empty part")
	}
	if countMask(Bisect(g, 5, rand.New(rand.NewSource(1)))) != 5 {
		t.Error("nA=n should return full part")
	}
	// Edgeless graph still splits to exact sizes.
	if countMask(Bisect(g, 2, rand.New(rand.NewSource(1)))) != 2 {
		t.Error("edgeless bisect broken")
	}
}

func TestHeavyEdgeMatchingIsMatching(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := graph.New(n)
		for e := 0; e < n; e++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), 1+rng.Float64())
		}
		match := heavyEdgeMatching(g, rng)
		for v, m := range match {
			if m == -1 {
				return false
			}
			if m != v && match[m] != v {
				return false // not symmetric
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestContractPreservesWeight(t *testing.T) {
	g := twoCliques(1)
	rng := rand.New(rand.NewSource(3))
	match := heavyEdgeMatching(g, rng)
	coarse, mapDown := contract(g, match)
	if coarse.N >= g.N {
		t.Fatalf("no contraction: %d -> %d", g.N, coarse.N)
	}
	// Total weight = internal (collapsed) + preserved.
	var collapsed float64
	for _, e := range g.Edges {
		if mapDown[e.U] == mapDown[e.V] {
			collapsed += e.Weight
		}
	}
	if coarse.TotalWeight()+collapsed != g.TotalWeight() {
		t.Errorf("weight not conserved: coarse %v + collapsed %v != %v",
			coarse.TotalWeight(), collapsed, g.TotalWeight())
	}
}

func TestEmbedProducesValidPlacement(t *testing.T) {
	f, err := bravyi.Build(bravyi.Params{K: 8, Levels: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.FromCircuit(f.Circuit)
	p := EmbedSquare(g, rand.New(rand.NewSource(5)))
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEmbedBeatsRandomOnEdgeLength(t *testing.T) {
	f, err := bravyi.Build(bravyi.Params{K: 8, Levels: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.FromCircuit(f.Circuit)
	gp := EmbedSquare(g, rand.New(rand.NewSource(5)))
	rnd := layout.Random(g.N, rand.New(rand.NewSource(5)))
	if layout.TotalManhattan(g, gp) >= layout.TotalManhattan(g, rnd) {
		t.Errorf("GP edge length %d should beat random %d",
			layout.TotalManhattan(g, gp), layout.TotalManhattan(g, rnd))
	}
}

func TestEmbedTwoLevelValid(t *testing.T) {
	f, err := bravyi.Build(bravyi.Params{K: 2, Levels: 2, Barriers: true})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.FromCircuit(f.Circuit)
	p := EmbedSquare(g, rand.New(rand.NewSource(7)))
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// A square embedding of 368 qubits should have drastically shorter
	// edges than the 368-wide linear strip.
	lin := layout.Linear(f)
	if layout.TotalManhattan(g, p) >= layout.TotalManhattan(g, lin)/2 {
		t.Errorf("GP (%d) should at least halve linear edge length (%d)",
			layout.TotalManhattan(g, p), layout.TotalManhattan(g, lin))
	}
}

func TestEmbedRectangular(t *testing.T) {
	g := graph.New(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(4, 5, 1)
	p := Embed(g, 6, 1, rand.New(rand.NewSource(9)))
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p2 := Embed(g, 2, 3, rand.New(rand.NewSource(9)))
	if err := p2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestKLRefineImprovesBadCut(t *testing.T) {
	g := twoCliques(0.5)
	// Deliberately bad balanced cut: {0,1,4,5} vs {2,3,6,7}.
	mask := []bool{true, true, false, false, true, true, false, false}
	before := CutWeight(g, mask)
	klRefine(g, mask, nil)
	after := CutWeight(g, mask)
	if after > before {
		t.Errorf("refinement worsened cut: %v -> %v", before, after)
	}
	if after != 0.5 {
		t.Logf("note: refinement reached %v, optimum 0.5", after)
	}
	if countMask(mask) != 4 {
		t.Errorf("refinement changed balance: %d", countMask(mask))
	}
}
