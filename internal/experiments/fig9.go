package experiments

import (
	"fmt"

	"magicstate/internal/bravyi"
	"magicstate/internal/core"
	"magicstate/internal/mesh"
	"magicstate/internal/stitch"
)

// Fig9ReuseRow is one capacity point of Fig. 9a/9b: the relative volume
// difference (NR - R) / NR between the no-reuse and reuse protocols for
// each strategy. Positive values mean reuse wins.
type Fig9ReuseRow struct {
	Capacity                 int
	LineDiff, FDDiff, GPDiff float64
}

// Fig9Reuse reproduces Fig. 9a/9b on two-level factories.
func Fig9Reuse(capacities []int, seed int64) ([]Fig9ReuseRow, error) {
	var rows []Fig9ReuseRow
	for _, cap := range capacities {
		row := Fig9ReuseRow{Capacity: cap}
		for _, s := range []core.Strategy{core.StrategyLinear, core.StrategyForceDirected, core.StrategyGraphPartition} {
			nr, err := runCapacity(cap, 2, s, false, seed)
			if err != nil {
				return nil, fmt.Errorf("fig9 cap %d %v NR: %w", cap, s, err)
			}
			r, err := runCapacity(cap, 2, s, true, seed)
			if err != nil {
				return nil, fmt.Errorf("fig9 cap %d %v R: %w", cap, s, err)
			}
			diff := (nr.Volume - r.Volume) / nr.Volume
			switch s {
			case core.StrategyLinear:
				row.LineDiff = diff
			case core.StrategyForceDirected:
				row.FDDiff = diff
			case core.StrategyGraphPartition:
				row.GPDiff = diff
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig9HopsRow is one capacity point of Fig. 9d: the inter-round
// permutation-step latency under each hop routing mode, within the
// hierarchically stitched design.
type Fig9HopsRow struct {
	Capacity         int
	NoHop            int
	RandomHop        int
	AnnealedRandom   int
	AnnealedMidpoint int
}

// Fig9Hops reproduces Fig. 9c/9d on two-level factories with reuse.
func Fig9Hops(capacities []int, seed int64) ([]Fig9HopsRow, error) {
	var rows []Fig9HopsRow
	for _, cap := range capacities {
		k, err := kForCapacity(cap, 2)
		if err != nil {
			return nil, err
		}
		row := Fig9HopsRow{Capacity: cap}
		for _, mode := range []stitch.HopMode{stitch.NoHop, stitch.RandomHop, stitch.AnnealedRandomHop, stitch.AnnealedMidpointHop} {
			res, err := stitch.Build(bravyi.Params{K: k, Levels: 2, Barriers: true},
				stitch.Options{Seed: seed, Reuse: true, Hops: mode})
			if err != nil {
				return nil, fmt.Errorf("fig9d cap %d %v: %w", cap, mode, err)
			}
			sim, err := mesh.Simulate(res.Factory.Circuit, res.Placement, mesh.Config{})
			if err != nil {
				return nil, err
			}
			perm, err := stitch.PermutationLatency(res.Factory, sim.Start, sim.End, 2)
			if err != nil {
				return nil, err
			}
			switch mode {
			case stitch.NoHop:
				row.NoHop = perm
			case stitch.RandomHop:
				row.RandomHop = perm
			case stitch.AnnealedRandomHop:
				row.AnnealedRandom = perm
			case stitch.AnnealedMidpointHop:
				row.AnnealedMidpoint = perm
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}
