package stitch

import (
	"fmt"
	"math/rand"
	"sort"

	"magicstate/internal/bravyi"
	"magicstate/internal/circuit"
	"magicstate/internal/layout"
)

// applyHopRouting selects an intermediate destination for every
// inter-round wire, anneals hop locations when the mode asks for it, and
// rewrites the circuit. Hop qubits are dead qubits (consumed raw states
// or measured ancillas not reused by later rounds), so hops never add
// tiles. Returns the number of hopped wires.
func applyHopRouting(f *bravyi.Factory, pl *layout.Placement, opt Options, rng *rand.Rand) (int, error) {
	// Collect hop candidates per consuming round: ids dead by that
	// round's permutation time and not used as registers afterwards.
	liveAfter := make(map[circuit.Qubit]bool)
	for _, m := range f.Modules {
		if m.Round >= 2 {
			for _, qs := range [][]circuit.Qubit{m.Raw, m.Anc, m.Out} {
				for _, q := range qs {
					liveAfter[q] = true
				}
			}
		}
	}
	// Dead pool: round-1 raw states (consumed by injection) and round-1
	// ancillas (measured), minus anything reused later.
	var pool []circuit.Qubit
	for _, mi := range f.Rounds[0].Modules {
		m := f.Modules[mi]
		for _, qs := range [][]circuit.Qubit{m.Raw, m.Anc} {
			for _, q := range qs {
				if !liveAfter[q] {
					pool = append(pool, q)
				}
			}
		}
	}
	if len(pool) == 0 {
		return 0, nil
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i] < pool[j] })

	wires := f.Wires
	hops := make(map[int]circuit.Qubit, len(wires))
	used := make(map[circuit.Qubit]bool, len(wires))

	srcTile := func(w bravyi.Wire) layout.Point {
		return pl.At(int(f.Modules[w.FromModule].Out[w.FromPort]))
	}
	dstTile := func(w bravyi.Wire) layout.Point {
		return pl.At(int(f.Modules[w.ToModule].Raw[w.ToSlot]))
	}

	pickRandom := func() circuit.Qubit {
		for tries := 0; tries < 4*len(pool); tries++ {
			q := pool[rng.Intn(len(pool))]
			if !used[q] {
				used[q] = true
				return q
			}
		}
		return circuit.NoQubit
	}
	pickNearest := func(target layout.Point) circuit.Qubit {
		best, bestD := circuit.NoQubit, 1<<30
		for _, q := range pool {
			if used[q] {
				continue
			}
			if d := layout.Manhattan(pl.At(int(q)), target); d < bestD {
				best, bestD = q, d
			}
		}
		if best != circuit.NoQubit {
			used[best] = true
		}
		return best
	}

	for wi, w := range wires {
		var hq circuit.Qubit
		switch opt.Hops {
		case RandomHop, AnnealedRandomHop:
			hq = pickRandom()
		case AnnealedMidpointHop:
			s, d := srcTile(w), dstTile(w)
			hq = pickNearest(layout.Point{X: (s.X + d.X) / 2, Y: (s.Y + d.Y) / 2})
		}
		if hq == circuit.NoQubit {
			continue // pool exhausted: route this wire directly
		}
		hops[wi] = hq
	}

	if opt.Hops == AnnealedRandomHop || opt.Hops == AnnealedMidpointHop {
		annealHops(f, pl, wires, hops, pool, used, opt.HopIters, rng)
	}
	if err := bravyi.ApplyHops(f, hops); err != nil {
		return 0, err
	}
	return len(hops), nil
}

// annealHops locally improves hop assignments: each pass tries to move
// every hop to a nearby unused dead qubit and keeps the move when the
// force-directed objective — segment conflicts between permutation legs
// (the crossing heuristic) plus a length term — decreases.
func annealHops(f *bravyi.Factory, pl *layout.Placement, wires []bravyi.Wire,
	hops map[int]circuit.Qubit, pool []circuit.Qubit, used map[circuit.Qubit]bool,
	iters int, rng *rand.Rand) {

	srcTile := func(w bravyi.Wire) layout.Point {
		return pl.At(int(f.Modules[w.FromModule].Out[w.FromPort]))
	}
	dstTile := func(w bravyi.Wire) layout.Point {
		return pl.At(int(f.Modules[w.ToModule].Raw[w.ToSlot]))
	}
	hopTile := func(wi int) layout.Point { return pl.At(int(hops[wi])) }

	// legsFor materializes the two segments of wire wi under its current
	// (or hypothetical) hop tile.
	legsFor := func(wi int, hop layout.Point) [2]layout.Segment {
		w := wires[wi]
		return [2]layout.Segment{
			{A: srcTile(w), B: hop},
			{A: hop, B: dstTile(w)},
		}
	}
	allLegs := func() []layout.Segment {
		var segs []layout.Segment
		for wi, w := range wires {
			if _, ok := hops[wi]; ok {
				ls := legsFor(wi, hopTile(wi))
				segs = append(segs, ls[0], ls[1])
			} else {
				segs = append(segs, layout.Segment{A: srcTile(w), B: dstTile(w)})
			}
		}
		return segs
	}

	score := func(ls [2]layout.Segment, others []layout.Segment) float64 {
		var s float64
		for _, l := range ls {
			s += 0.2 * float64(layout.Manhattan(l.A, l.B))
			for _, o := range others {
				if o == l {
					continue
				}
				if layout.SegmentsConflict(l, o) {
					s += 4
				}
			}
		}
		return s
	}

	hopIdxs := make([]int, 0, len(hops))
	for wi := range hops {
		hopIdxs = append(hopIdxs, wi)
	}
	sort.Ints(hopIdxs)

	for pass := 0; pass < iters; pass++ {
		improved := false
		segs := allLegs()
		for _, wi := range hopIdxs {
			cur := hops[wi]
			curScore := score(legsFor(wi, hopTile(wi)), segs)
			// Candidate: a few random unused pool qubits plus the one
			// nearest the wire midpoint.
			var best circuit.Qubit = circuit.NoQubit
			bestScore := curScore
			for c := 0; c < 6; c++ {
				q := pool[rng.Intn(len(pool))]
				if used[q] {
					continue
				}
				if s := score(legsFor(wi, pl.At(int(q))), segs); s < bestScore {
					best, bestScore = q, s
				}
			}
			if best != circuit.NoQubit {
				used[cur] = false
				used[best] = true
				hops[wi] = best
				improved = true
				segs = allLegs() // refresh after each accepted move
			}
		}
		if !improved {
			break
		}
	}
}

// PermutationLatency extracts the permutation-phase window of round r
// from per-gate timings (Fig. 9d's metric): the cycles between the first
// and last permutation move of that round.
func PermutationLatency(f *bravyi.Factory, start, end []int, round int) (int, error) {
	if round < 2 || round > len(f.Rounds) {
		return 0, fmt.Errorf("stitch: round %d has no permutation phase", round)
	}
	r := f.Rounds[round-1]
	lo, hi := -1, 0
	for gi := r.PermStart; gi < r.PermEnd; gi++ {
		if start[gi] < 0 {
			continue
		}
		if lo == -1 || start[gi] < lo {
			lo = start[gi]
		}
		if end[gi] > hi {
			hi = end[gi]
		}
	}
	if lo == -1 {
		return 0, nil
	}
	return hi - lo, nil
}
