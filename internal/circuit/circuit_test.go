package circuit

import (
	"strings"
	"testing"
)

func sample() *Circuit {
	c := New(0)
	a := c.AddQubit("a")
	b := c.AddQubit("b")
	d := c.AddQubit("d")
	c.H(a)
	c.CNOT(a, b)
	c.CXX(a, []Qubit{b, d})
	c.InjectT(NoQubit, d)
	c.MeasX(b)
	return c
}

func TestBuilderAndValidate(t *testing.T) {
	c := sample()
	if err := c.Validate(); err != nil {
		t.Fatalf("valid circuit rejected: %v", err)
	}
	if c.NumQubits != 3 || len(c.Gates) != 5 {
		t.Fatalf("unexpected shape: %d qubits %d gates", c.NumQubits, len(c.Gates))
	}
	if c.Name(0) != "a" || c.Name(2) != "d" {
		t.Errorf("names lost: %q %q", c.Name(0), c.Name(2))
	}
}

func TestValidateRejectsOutOfRange(t *testing.T) {
	c := New(1)
	c.CNOT(0, 5)
	if err := c.Validate(); err == nil {
		t.Error("out-of-range target must be rejected")
	}
}

func TestValidateRejectsDuplicateOperand(t *testing.T) {
	c := New(2)
	c.CNOT(1, 1)
	if err := c.Validate(); err == nil {
		t.Error("cnot with control == target must be rejected")
	}
}

func TestValidateRejectsMalformedGates(t *testing.T) {
	cases := []Gate{
		{Kind: KindInvalid, Targets: []Qubit{0}},
		{Kind: KindCNOT, Control: NoQubit, Targets: []Qubit{0}},
		{Kind: KindH, Control: NoQubit},
		{Kind: KindMove, Control: 0, Targets: []Qubit{0}, Dest: NoQubit},
		{Kind: KindMove, Control: 0, Targets: []Qubit{2}, Dest: 1},
		{Kind: KindInjectT, Control: NoQubit, Targets: []Qubit{0, 1}},
	}
	for i, g := range cases {
		c := New(3)
		c.Append(g)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d (%v) should be rejected", i, g.Kind)
		}
	}
}

func TestOperands(t *testing.T) {
	g := Gate{Kind: KindCXX, Control: 7, Targets: []Qubit{1, 2, 3}}
	ops := g.Operands()
	if len(ops) != 4 || ops[0] != 7 {
		t.Errorf("cxx operands = %v", ops)
	}
	mv := Gate{Kind: KindMove, Control: 1, Targets: []Qubit{4}, Dest: 4}
	if got := mv.Operands(); len(got) != 2 || got[1] != 4 {
		t.Errorf("move operands = %v", got)
	}
	h := Gate{Kind: KindH, Control: NoQubit, Targets: []Qubit{0}}
	if got := h.Operands(); len(got) != 1 {
		t.Errorf("h operands = %v", got)
	}
}

func TestKindPredicates(t *testing.T) {
	for _, k := range []Kind{KindCNOT, KindCXX, KindInjectT, KindInjectTdag, KindMove} {
		if !k.IsTwoQubit() {
			t.Errorf("%v should be two-qubit", k)
		}
	}
	for _, k := range []Kind{KindH, KindMeasX, KindBarrier, KindPrepZ} {
		if k.IsTwoQubit() {
			t.Errorf("%v should not be two-qubit", k)
		}
	}
	if !KindMeasX.IsMeasurement() || !KindMeasZ.IsMeasurement() || KindH.IsMeasurement() {
		t.Error("measurement predicate broken")
	}
}

func TestCounts(t *testing.T) {
	c := sample()
	if c.CountKind(KindCNOT) != 1 || c.CountKind(KindH) != 1 {
		t.Error("CountKind broken")
	}
	if got := c.TwoQubitGateCount(); got != 3 { // cnot + cxx + inject
		t.Errorf("TwoQubitGateCount = %d, want 3", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := sample()
	cl := c.Clone()
	cl.Gates[2].Targets[0] = 0
	if c.Gates[2].Targets[0] == 0 {
		t.Error("clone shares target slices with original")
	}
	cl.AddQubit("x")
	if c.NumQubits == cl.NumQubits {
		t.Error("clone shares qubit count")
	}
}

func TestStringRendering(t *testing.T) {
	c := sample()
	s := c.String()
	for _, want := range []string{"h q0", "cnot q0, q1", "cxx q0 -> 2 targets", "injectT raw, q2", "measx q1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
	var barrier Circuit
	barrier.NumQubits = 2
	barrier.Barrier([]Qubit{0, 1})
	if !strings.Contains(barrier.String(), "barrier over 2 qubits") {
		t.Error("barrier rendering broken")
	}
}

func TestBarrierCopiesSlice(t *testing.T) {
	qs := []Qubit{0, 1}
	c := New(2)
	c.Barrier(qs)
	qs[0] = 1
	if c.Gates[0].Targets[0] != 0 {
		t.Error("Barrier must copy its input slice")
	}
}
