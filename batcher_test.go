package magicstate

import (
	"context"
	"errors"
	"testing"
)

// TestBatcherCheckpointAcrossProcesses simulates two process lifetimes
// sharing one checkpoint directory: the second Batcher must answer the
// whole grid from disk and compute nothing new.
func TestBatcherCheckpointAcrossProcesses(t *testing.T) {
	dir := t.TempDir()
	points := []BatchPoint{
		{Spec: FactorySpec{Capacity: 2, Levels: 1}},
		{Spec: FactorySpec{Capacity: 4, Levels: 1}},
		{Spec: FactorySpec{Capacity: 2, Levels: 1}}, // duplicate of [0]
	}

	b1, err := NewBatcher(BatcherOptions{Parallelism: 2, Checkpoint: dir})
	if err != nil {
		t.Fatal(err)
	}
	first, err := b1.OptimizeBatch(points, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st1 := b1.Stats()
	if st1.StoredRecords != 2 {
		t.Fatalf("first batcher stored %d records, want 2 unique points", st1.StoredRecords)
	}
	if st1.DiskHits != 0 {
		t.Fatalf("first batcher DiskHits = %d, want 0", st1.DiskHits)
	}
	if err := b1.Close(); err != nil {
		t.Fatal(err)
	}

	b2, err := NewBatcher(BatcherOptions{Parallelism: 2, Checkpoint: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	second, err := b2.OptimizeBatch(points, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st2 := b2.Stats()
	if st2.DiskHits != 2 {
		t.Fatalf("second batcher DiskHits = %d, want 2", st2.DiskHits)
	}
	if st2.StoredRecords != 2 {
		t.Fatalf("second batcher stored %d records, want the same 2", st2.StoredRecords)
	}
	if st2.CheckpointDir != dir {
		t.Fatalf("CheckpointDir = %q, want %q", st2.CheckpointDir, dir)
	}
	for i := range first {
		if *first[i] != *second[i] {
			t.Fatalf("point %d: disk-served result %+v differs from computed %+v", i, *second[i], *first[i])
		}
	}

	// Single points share the same tier.
	res, err := b2.Optimize(FactorySpec{Capacity: 4, Levels: 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if *res != *first[1] {
		t.Fatalf("Optimize through batcher = %+v, want %+v", *res, *first[1])
	}

	// The durable tier is fixed at construction: asking a batch to use a
	// different checkpoint directory is an error, not a silent no-op.
	if _, err := b2.OptimizeBatch(points, BatchOptions{Checkpoint: t.TempDir()}); err == nil {
		t.Fatal("OptimizeBatch accepted a per-batch checkpoint different from the batcher's")
	}
	if _, err := b2.OptimizeBatch(points, BatchOptions{Checkpoint: dir}); err != nil {
		t.Fatalf("OptimizeBatch rejected the batcher's own checkpoint dir: %v", err)
	}
}

// TestBatcherTraceBypassesStore checks that trace-carrying runs still
// return their rendered trace when routed through a store-backed
// batcher (the durable tier must not swallow simulation artifacts).
func TestBatcherTraceBypassesStore(t *testing.T) {
	b, err := NewBatcher(BatcherOptions{Parallelism: 1, Checkpoint: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	spec := FactorySpec{Capacity: 2, Levels: 1}
	if _, err := b.Optimize(spec, Options{}); err != nil {
		t.Fatal(err)
	}
	res, err := b.Optimize(spec, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == "" {
		t.Fatal("trace run through a store-backed batcher lost its trace")
	}
}

// TestOptimizeBatchCheckpointOption covers the one-shot entry point.
func TestOptimizeBatchCheckpointOption(t *testing.T) {
	dir := t.TempDir()
	points := []BatchPoint{{Spec: FactorySpec{Capacity: 2, Levels: 1}}}
	plain, err := OptimizeBatch(points, BatchOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	ck, err := OptimizeBatch(points, BatchOptions{Parallelism: 1, Checkpoint: dir})
	if err != nil {
		t.Fatal(err)
	}
	again, err := OptimizeBatch(points, BatchOptions{Parallelism: 1, Checkpoint: dir})
	if err != nil {
		t.Fatal(err)
	}
	if *plain[0] != *ck[0] || *plain[0] != *again[0] {
		t.Fatalf("checkpointed results diverge: %+v / %+v / %+v", *plain[0], *ck[0], *again[0])
	}
}

// TestBatcherLookupAndPointKey covers the admission-free service fast
// path: Lookup answers only already-paid points, and PointKey is stable
// for identical points and distinct for different ones.
func TestBatcherLookupAndPointKey(t *testing.T) {
	b, err := NewBatcher(BatcherOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	spec := FactorySpec{Capacity: 4, Levels: 1}
	if _, ok := b.Lookup(spec, Options{}); ok {
		t.Fatal("Lookup hit before any computation")
	}
	want, err := b.Optimize(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := b.Lookup(spec, Options{})
	if !ok {
		t.Fatal("Lookup missed a computed point")
	}
	if *got != *want {
		t.Fatalf("Lookup = %+v, want %+v", got, want)
	}
	// Trace results never come from the cache tier (paths are not
	// persisted); Lookup must refuse rather than serve a pathless result.
	if _, ok := b.Lookup(spec, Options{Trace: true}); ok {
		t.Fatal("Lookup served a Trace point from the pathless cache")
	}

	k1, err := PointKey(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := PointKey(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if k1 == "" || k1 != k2 {
		t.Fatalf("PointKey not stable: %q vs %q", k1, k2)
	}
	k3, err := PointKey(spec, Options{Seed: 1}.WithStrategy(RandomMapping))
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Fatal("distinct points share a key")
	}
	if _, err := PointKey(FactorySpec{Capacity: 5, Levels: 2}, Options{}); err == nil {
		t.Fatal("PointKey accepted an invalid spec")
	}
}

// TestBatcherOptimizeContextCancel: a cancelled context surfaces as a
// context error and the point is not cached.
func TestBatcherOptimizeContextCancel(t *testing.T) {
	b, err := NewBatcher(BatcherOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := FactorySpec{Capacity: 4, Levels: 1}
	if _, err := b.OptimizeContext(ctx, spec, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("OptimizeContext(cancelled) = %v, want context.Canceled", err)
	}
	if _, ok := b.Lookup(spec, Options{}); ok {
		t.Fatal("cancelled computation was cached")
	}
	if _, err := b.Optimize(spec, Options{}); err != nil {
		t.Fatalf("Optimize after cancelled attempt: %v", err)
	}
}
