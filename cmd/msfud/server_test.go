package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"magicstate"
)

// newTestServer boots a service on an httptest listener, backed by a
// store when dir is non-empty. The returned batcher lets tests that
// restart the "process" close the store before reopening the directory
// (one writer per directory); cleanup closes it regardless.
func newTestServer(t *testing.T, dir string) (*httptest.Server, *magicstate.Batcher) {
	t.Helper()
	b, err := magicstate.NewBatcher(magicstate.BatcherOptions{Parallelism: 2, Checkpoint: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	srv := newServer(b, serverConfig{MaxParallel: 2, MaxPoints: 64, MaxInflight: 4, MaxQueue: 64})
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return ts, b
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestOptimizeEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, "")
	resp := postJSON(t, ts.URL+"/v1/optimize", optimizeRequest{Capacity: 4, Levels: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	res := decode[resultJSON](t, resp)
	want, err := magicstate.Optimize(magicstate.FactorySpec{Capacity: 4, Levels: 1}, magicstate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res != resultToJSON(want) {
		t.Fatalf("service result %+v differs from library result %+v", res, resultToJSON(want))
	}
}

func TestOptimizeRejectsBadRequests(t *testing.T) {
	ts, _ := newTestServer(t, "")
	for name, body := range map[string]any{
		"invalid capacity": optimizeRequest{Capacity: 5, Levels: 2}, // not a perfect square
		"bad strategy":     optimizeRequest{Capacity: 4, Levels: 1, Strategy: "nope"},
		"bad style":        optimizeRequest{Capacity: 4, Levels: 1, Style: "nope"},
	} {
		resp := postJSON(t, ts.URL+"/v1/optimize", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
		errResp := decode[map[string]string](t, resp)
		if errResp["error"] == "" {
			t.Errorf("%s: missing error body", name)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status = %d, want 400", resp.StatusCode)
	}
}

func TestBatchJobLifecycle(t *testing.T) {
	ts, _ := newTestServer(t, "")
	resp := postJSON(t, ts.URL+"/v1/batch", batchRequest{
		Grid: &gridSpec{Capacities: []int{2, 4}, Levels: 1, Strategies: []string{"line", "random"}},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202", resp.StatusCode)
	}
	acc := decode[map[string]any](t, resp)
	id, _ := acc["job_id"].(string)
	if id == "" {
		t.Fatalf("no job_id in %v", acc)
	}
	if total := acc["total"].(float64); total != 4 {
		t.Fatalf("total = %v, want 4", total)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		jr := decode[map[string]any](t, r)
		switch jr["status"] {
		case "done":
			results := jr["results"].([]any)
			if len(results) != 4 {
				t.Fatalf("job returned %d results, want 4", len(results))
			}
			return
		case "failed":
			t.Fatalf("job failed: %v", jr["error"])
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %v after 30s", jr["status"])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestBatchStreamSSE(t *testing.T) {
	ts, _ := newTestServer(t, "")
	body, _ := json.Marshal(batchRequest{
		Points: []optimizeRequest{{Capacity: 2, Levels: 1}, {Capacity: 4, Levels: 1}},
	})
	resp, err := http.Post(ts.URL+"/v1/batch?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	var progress, done int
	var lastData string
	sc := bufio.NewScanner(resp.Body)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			switch event {
			case "progress":
				progress++
			case "done":
				done++
				lastData = strings.TrimPrefix(line, "data: ")
			case "error":
				t.Fatalf("stream reported error: %s", strings.TrimPrefix(line, "data: "))
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if progress != 2 || done != 1 {
		t.Fatalf("saw %d progress and %d done events, want 2 and 1", progress, done)
	}
	var final struct {
		Results []resultJSON `json:"results"`
	}
	if err := json.Unmarshal([]byte(lastData), &final); err != nil {
		t.Fatal(err)
	}
	if len(final.Results) != 2 {
		t.Fatalf("done event carried %d results, want 2", len(final.Results))
	}
}

func TestBatchCapsAndValidation(t *testing.T) {
	ts, _ := newTestServer(t, "")
	// 65 points exceeds the test server's 64-point cap.
	caps := make([]int, 65)
	for i := range caps {
		caps[i] = 2
	}
	seeds := []int64{1}
	resp := postJSON(t, ts.URL+"/v1/batch", batchRequest{Grid: &gridSpec{Capacities: caps, Levels: 1, Seeds: seeds}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	resp = postJSON(t, ts.URL+"/v1/batch", batchRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	resp = postJSON(t, ts.URL+"/v1/batch", batchRequest{
		Points: []optimizeRequest{{Capacity: 2, Levels: 1}},
		Grid:   &gridSpec{Capacities: []int{2}, Levels: 1},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("points+grid: status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	if r, err := http.Get(ts.URL + "/v1/jobs/job-999"); err != nil {
		t.Fatal(err)
	} else {
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown job: status = %d, want 404", r.StatusCode)
		}
		r.Body.Close()
	}
}

// TestStatsReflectsDurableTier drives the service's reason to exist:
// a second server process over the same store directory must answer
// repeated points from disk, visible in /v1/stats.
func TestStatsReflectsDurableTier(t *testing.T) {
	dir := t.TempDir()
	req := optimizeRequest{Capacity: 4, Levels: 2, Reuse: true, Strategy: "hs", Seed: 1}

	ts1, b1 := newTestServer(t, dir)
	resp := postJSON(t, ts1.URL+"/v1/optimize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	first := decode[resultJSON](t, resp)
	ts1.Close()
	if err := b1.Close(); err != nil { // release the store for the "restarted" server
		t.Fatal(err)
	}

	ts2, _ := newTestServer(t, dir)
	resp = postJSON(t, ts2.URL+"/v1/optimize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restarted server: status = %d, want 200", resp.StatusCode)
	}
	second := decode[resultJSON](t, resp)
	if first != second {
		t.Fatalf("disk-served result %+v differs from computed %+v", second, first)
	}

	r, err := http.Get(ts2.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("/v1/stats status = %d, want 200", r.StatusCode)
	}
	stats := decode[struct {
		Cache struct {
			DiskHits      int64  `json:"disk_hits"`
			StoredRecords int    `json:"stored_records"`
			CheckpointDir string `json:"checkpoint_dir"`
		} `json:"cache"`
		Jobs struct {
			InFlight int `json:"in_flight"`
		} `json:"jobs"`
	}](t, r)
	if stats.Cache.DiskHits != 1 {
		t.Fatalf("disk_hits = %d, want 1 (restarted server must reuse the store)", stats.Cache.DiskHits)
	}
	if stats.Cache.StoredRecords != 1 {
		t.Fatalf("stored_records = %d, want 1", stats.Cache.StoredRecords)
	}
	if stats.Cache.CheckpointDir != dir {
		t.Fatalf("checkpoint_dir = %q, want %q", stats.Cache.CheckpointDir, dir)
	}
}

func TestJobCancel(t *testing.T) {
	ts, _ := newTestServer(t, "")
	// A grid big enough to still be running when the cancel lands:
	// distinct-seed two-level stitched points, evaluated serially.
	var pts []optimizeRequest
	for i := 0; i < 60; i++ {
		pts = append(pts, optimizeRequest{Capacity: 16, Levels: 2, Reuse: true, Seed: int64(i)})
	}
	resp := postJSON(t, ts.URL+"/v1/batch", batchRequest{Points: pts, Parallelism: 1})
	acc := decode[map[string]any](t, resp)
	id := acc["job_id"].(string)

	delReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	dr, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	if dr.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d, want 200", dr.StatusCode)
	}
	dr.Body.Close()

	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		jr := decode[map[string]any](t, r)
		if jr["status"] == "failed" {
			if !strings.Contains(fmt.Sprint(jr["error"]), "cancel") {
				t.Fatalf("cancelled job error = %v, want a context cancellation", jr["error"])
			}
			return
		}
		if jr["status"] == "done" {
			t.Skip("job finished before the cancel landed; nothing to assert")
		}
		if time.Now().After(deadline) {
			t.Fatal("cancelled job never resolved")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
