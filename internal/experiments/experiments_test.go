package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestFig6SmallSample(t *testing.T) {
	r, err := Fig6(4, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 12 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Signs must match the paper: crossings and length correlate
	// positively with latency, spacing negatively.
	if r.RCrossings <= 0 {
		t.Errorf("crossings correlation %v should be positive", r.RCrossings)
	}
	if r.RLength <= 0 {
		t.Errorf("length correlation %v should be positive", r.RLength)
	}
	if r.RSpacing >= 0 {
		t.Errorf("spacing correlation %v should be negative", r.RSpacing)
	}
	var buf bytes.Buffer
	WriteFig6(&buf, r)
	if !strings.Contains(buf.String(), "Fig. 6") {
		t.Error("formatting broken")
	}
}

func TestFig6Deterministic(t *testing.T) {
	a, err := Fig6(2, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig6(2, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatal("same seed must reproduce identical samples")
		}
	}
}

func TestFig7SingleLevel(t *testing.T) {
	rows, err := Fig7(1, []int{2, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.FDLatency < r.Critical || r.GPLatency < r.Critical {
			t.Errorf("capacity %d: latency below lower bound: %+v", r.Capacity, r)
		}
	}
	if rows[1].Critical <= rows[0].Critical {
		t.Error("lower bound should grow with capacity")
	}
	var buf bytes.Buffer
	WriteFig7(&buf, 1, rows)
	if !strings.Contains(buf.String(), "lower bound") {
		t.Error("formatting broken")
	}
}

func TestFig9ReuseSmall(t *testing.T) {
	rows, err := Fig9Reuse([]int{4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatal("want one row")
	}
	for _, d := range []float64{rows[0].LineDiff, rows[0].FDDiff, rows[0].GPDiff} {
		if d < -1 || d > 1 {
			t.Errorf("differential %v out of range", d)
		}
	}
	var buf bytes.Buffer
	WriteFig9Reuse(&buf, rows)
	if !strings.Contains(buf.String(), "capacity") {
		t.Error("formatting broken")
	}
}

func TestFig9HopsSmall(t *testing.T) {
	rows, err := Fig9Hops([]int{4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	for _, v := range []int{r.NoHop, r.RandomHop, r.AnnealedRandom, r.AnnealedMidpoint} {
		if v <= 0 {
			t.Errorf("non-positive permutation latency: %+v", r)
		}
	}
	var buf bytes.Buffer
	WriteFig9Hops(&buf, rows)
	if !strings.Contains(buf.String(), "annealed midpoint") {
		t.Error("formatting broken")
	}
}

func TestFig10SmallSweep(t *testing.T) {
	rows, err := Fig10(2, []int{4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // Line, FD, GP, HS
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	vol := map[string]float64{}
	for _, r := range rows {
		vol[r.Strategy] = r.Volume
	}
	if vol["HS"] >= vol["Line"] {
		t.Errorf("HS (%.3g) should beat Line (%.3g)", vol["HS"], vol["Line"])
	}
	var buf bytes.Buffer
	WriteFig10(&buf, 2, rows)
	out := buf.String()
	for _, want := range []string{"10c", "10d", "10f", "HS"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatting missing %q", want)
		}
	}
}

func TestTable1Small(t *testing.T) {
	res, err := Table1([]int{2}, []int{4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, proc := range []string{"Random", "Line(NR)", "FD", "GP", "Critical"} {
		if _, ok := res.Cell(proc, 1, 2); !ok {
			t.Errorf("missing L1 cell for %s", proc)
		}
	}
	if _, ok := res.Cell("HS", 1, 2); ok {
		t.Error("HS must be empty for level 1")
	}
	if _, ok := res.Cell("HS", 2, 4); !ok {
		t.Error("missing HS L2 cell")
	}
	crit, _ := res.Cell("Critical", 2, 4)
	hs, _ := res.Cell("HS", 2, 4)
	if hs.Volume < crit.Volume {
		t.Errorf("HS volume %.3g below critical %.3g", hs.Volume, crit.Volume)
	}
	if h := res.HeadlineImprovement(); h <= 1 {
		t.Errorf("headline improvement %v should exceed 1", h)
	}
	var buf bytes.Buffer
	WriteTable1(&buf, res)
	if !strings.Contains(buf.String(), "headline") {
		t.Error("formatting broken")
	}
}

func TestKForCapacity(t *testing.T) {
	if k, err := kForCapacity(36, 2); err != nil || k != 6 {
		t.Errorf("36@2: %d %v", k, err)
	}
	if _, err := kForCapacity(5, 2); err == nil {
		t.Error("non-square should fail")
	}
	if k, err := kForCapacity(24, 1); err != nil || k != 24 {
		t.Errorf("24@1: %d %v", k, err)
	}
	if _, err := kForCapacity(4, 3); err == nil {
		t.Error("level 3 unsupported in capacity sweeps")
	}
}

func TestCSV(t *testing.T) {
	var buf bytes.Buffer
	CSV(&buf, []string{"a", "b"}, [][]string{{"1", "2"}})
	if buf.String() != "a,b\n1,2\n" {
		t.Errorf("csv = %q", buf.String())
	}
}
