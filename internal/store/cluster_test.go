package store

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"magicstate/internal/core"
)

func TestParseKey(t *testing.T) {
	k := KeyOf(core.Config{K: 4, Levels: 2})
	got, err := ParseKey(k.String())
	if err != nil || got != k {
		t.Fatalf("ParseKey(String) = %v, %v; want round-trip", got, err)
	}
	for _, bad := range []string{"", "zz", "abcd", strings.Repeat("ab", 31), strings.Repeat("ab", 33)} {
		if _, err := ParseKey(bad); err == nil {
			t.Errorf("ParseKey(%q) accepted", bad)
		}
	}
}

func TestLookupReportContextReadThrough(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	cfg := core.Config{K: 4, Levels: 2, Seed: 7}
	rec := Record{Strategy: "peer", Latency: 42, Area: 7, Volume: 294}
	payload, _ := json.Marshal(rec)

	var fetchedKeys []Key
	s.SetFetcher(func(ctx context.Context, k Key) ([]byte, bool) {
		fetchedKeys = append(fetchedKeys, k)
		return payload, true
	})

	rep, ok := s.LookupReportContext(context.Background(), cfg)
	if !ok || rep.Latency != 42 || rep.Strategy != "peer" {
		t.Fatalf("read-through lookup = %+v, %t", rep, ok)
	}
	if len(fetchedKeys) != 1 || fetchedKeys[0] != KeyOf(cfg) {
		t.Fatalf("fetcher saw keys %v", fetchedKeys)
	}
	// The fetched record was admitted locally: the next lookup is a
	// local hit, no second fetch.
	if rep, ok := s.LookupReportContext(context.Background(), cfg); !ok || rep.Latency != 42 {
		t.Fatalf("second lookup = %+v, %t", rep, ok)
	}
	if len(fetchedKeys) != 1 {
		t.Fatalf("fetcher called %d times, want 1", len(fetchedKeys))
	}
	st := s.Stats()
	if st.PeerHits != 1 {
		t.Fatalf("PeerHits = %d, want 1", st.PeerHits)
	}
}

func TestLookupReportContextRejectsUndecodableFetch(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	cfg := core.Config{K: 4, Levels: 2}
	s.SetFetcher(func(ctx context.Context, k Key) ([]byte, bool) {
		return []byte("{not json"), true
	})
	if _, ok := s.LookupReportContext(context.Background(), cfg); ok {
		t.Fatal("undecodable fetch served")
	}
	// Nothing was admitted to the store.
	if _, ok := s.Get(KeyOf(cfg)); ok {
		t.Fatal("undecodable fetch admitted to the local store")
	}
	if got := s.Stats().PeerHits; got != 0 {
		t.Fatalf("PeerHits = %d, want 0", got)
	}
}

func TestLookupReportContextWithoutFetcherIsLocal(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	cfg := core.Config{K: 4, Levels: 2}
	if _, ok := s.LookupReportContext(context.Background(), cfg); ok {
		t.Fatal("miss served from nowhere")
	}
	rep := &core.Report{Config: cfg, Strategy: "local", Latency: 9}
	if err := s.PutReport(cfg, rep); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.LookupReportContext(context.Background(), cfg); !ok || got.Latency != 9 {
		t.Fatalf("local lookup = %+v, %t", got, ok)
	}
}

func TestLookupReportContextUncacheableNeverFetches(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	called := false
	s.SetFetcher(func(ctx context.Context, k Key) ([]byte, bool) { called = true; return nil, false })
	cfg := core.Config{K: 4, Levels: 2, RecordPaths: true}
	if _, ok := s.LookupReportContext(context.Background(), cfg); ok {
		t.Fatal("uncacheable config served")
	}
	if called {
		t.Fatal("uncacheable config consulted the fetcher")
	}
}

func TestOnPutHookFiresOnFreshPutsOnly(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	type putEvent struct {
		k       Key
		payload string
	}
	var events []putEvent
	s.SetOnPut(func(k Key, payload []byte) {
		events = append(events, putEvent{k, string(payload)})
	})

	k := KeyOf(core.Config{K: 5, Levels: 1})
	if err := s.Put(k, []byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k, []byte(`{"a":2}`)); err != nil { // duplicate: no event
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].k != k || events[0].payload != `{"a":1}` {
		t.Fatalf("events = %+v, want one fresh-put event", events)
	}

	// The hook can call back into the store without deadlocking (it
	// runs outside the store lock) — the fabric's NotifyPut reads ring
	// state but replication receivers do re-enter Put paths.
	s.SetOnPut(func(k Key, payload []byte) { s.Get(k) })
	if err := s.Put(KeyOf(core.Config{K: 6, Levels: 1}), []byte(`{"b":1}`)); err != nil {
		t.Fatal(err)
	}
}
