package layout

import (
	"math/rand"

	"magicstate/internal/bravyi"
	"magicstate/internal/circuit"
)

// Linear produces the hand-optimized linear mapping baseline of Fowler et
// al. [19] as used throughout the paper's evaluation: the entire factory
// occupies a single row of tiles, module after module in round-major
// order, each module's qubits ordered so that every in-module interaction
// is local (each ancilla flanked by the raw states it consumes, each
// output beside the tail ancilla it entangles with). This is near-optimal
// for single-level factories but strands multi-level permutation braids on
// a handful of shared channel rows — the latency blowup of Fig. 10c. With
// qubit reuse, later rounds mostly rename already-placed qubits and the
// row stays short.
func Linear(f *bravyi.Factory) *Placement {
	p := NewPlacement(f.Circuit.NumQubits, f.Circuit.NumQubits, 1)
	col := 0
	for _, r := range f.Rounds {
		for _, mi := range r.Modules {
			m := f.Modules[mi]
			for _, q := range ModuleLinearOrder(&m, f.Params.K) {
				if p.At(int(q)) != Unplaced {
					continue // reused: already placed
				}
				p.Set(int(q), Point{X: col, Y: 0})
				col++
			}
		}
	}
	p.W = col
	if p.W == 0 {
		p.W = 1
	}
	return p
}

// ModuleLinearOrder returns the hand-optimized 1-D ordering of one
// module's registers. The ancilla chain anc1..anc_{k+4} runs left to
// right (the tail's CNOT chain only couples consecutive ancillas), each
// ancilla sits between the two raw states injected into it, and each
// output out_i with its tail raw state sits beside anc_{5+i}. anc0, the
// CXX control, leads the row; its braid tree extends along the row.
func ModuleLinearOrder(m *bravyi.Module, k int) []circuit.Qubit {
	order := make([]circuit.Qubit, 0, 5*k+13)
	order = append(order, m.Anc[0])
	for i := 1; i < k+5; i++ {
		order = append(order, m.Raw[2*i-2], m.Anc[i], m.Raw[2*i-1])
		if i >= 5 {
			j := i - 5
			order = append(order, m.Out[j], m.Raw[2*(k+4)+j])
		}
	}
	return order
}

// Snake folds the same hand-optimized linear order boustrophedon-style
// into a near-square grid: the "linear mapping on a 2-D machine" starting
// point the force-directed annealer transforms for multi-level factories
// (§VI.B.1). Area stays ~n while consecutive qubits remain adjacent.
func Snake(f *bravyi.Factory) *Placement {
	n := f.Circuit.NumQubits
	w, h := GridFor(n, 1)
	p := NewPlacement(n, w, h)
	i := 0
	place := func(q int) {
		row := i / w
		col := i % w
		if row%2 == 1 {
			col = w - 1 - col // reverse odd rows so the line stays connected
		}
		p.Set(q, Point{X: col, Y: row})
		i++
	}
	for _, r := range f.Rounds {
		for _, mi := range r.Modules {
			m := f.Modules[mi]
			for _, q := range ModuleLinearOrder(&m, f.Params.K) {
				if p.At(int(q)) != Unplaced {
					continue
				}
				place(int(q))
			}
		}
	}
	return p
}

// Random places all qubits uniformly at random on a near-square grid just
// large enough to hold them; the Table I "Random" baseline.
func Random(n int, rng *rand.Rand) *Placement {
	w, h := GridFor(n, 1)
	p := NewPlacement(n, w, h)
	tiles := RowMajorTiles(w*h, w)
	rng.Shuffle(len(tiles), func(i, j int) { tiles[i], tiles[j] = tiles[j], tiles[i] })
	for q := 0; q < n; q++ {
		p.Set(q, tiles[q])
	}
	return p
}

// RandomOnTiles places qubits uniformly at random over an explicit tile
// set (len(tiles) must be >= n); used for randomized-mapping sweeps that
// keep the footprint fixed (Fig. 6).
func RandomOnTiles(n int, tiles []Point, w, h int, rng *rand.Rand) *Placement {
	p := NewPlacement(n, w, h)
	perm := rng.Perm(len(tiles))
	for q := 0; q < n; q++ {
		p.Set(q, tiles[perm[q]])
	}
	return p
}
