package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEq(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if Variance([]float64{3}) != 0 {
		t.Error("Variance of single sample should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -2, 7, 0}
	if Min(xs) != -2 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v, want -2/7", Min(xs), Max(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be +Inf/-Inf")
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 1, 1e-12) {
		t.Errorf("r = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if !almostEq(r, -1, 1e-12) {
		t.Errorf("r = %v, want -1", r)
	}
}

func TestPearsonConstantSeries(t *testing.T) {
	r, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil || r != 0 {
		t.Errorf("constant series: r=%v err=%v, want 0,nil", r, err)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1}); err != ErrInsufficientData {
		t.Error("short input should return ErrInsufficientData")
	}
	if _, err := Pearson([]float64{1, 2}, []float64{1}); err != ErrInsufficientData {
		t.Error("mismatched input should return ErrInsufficientData")
	}
}

func TestPearsonBounded(t *testing.T) {
	// Property: |r| <= 1 for arbitrary data.
	f := func(seed int64) bool {
		rng := NewRNG(seed)
		n := 3 + rng.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		r, err := Pearson(xs, ys)
		return err == nil && r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	slope, intercept, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(slope, 2, 1e-12) || !almostEq(intercept, 1, 1e-12) {
		t.Errorf("fit = %v,%v, want 2,1", slope, intercept)
	}
	slope, intercept, err = LinearFit([]float64{5, 5, 5}, []float64{1, 2, 3})
	if err != nil || slope != 0 || !almostEq(intercept, 2, 1e-12) {
		t.Errorf("constant-x fit = %v,%v,%v", slope, intercept, err)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !almostEq(got, 2, 1e-12) {
		t.Errorf("GeoMean = %v, want 2", got)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Error("GeoMean with non-positive input should be NaN")
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) should be 0")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed must produce identical streams")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Int63() != c.Int63() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should diverge")
	}
}

func TestSplitRNGIndependence(t *testing.T) {
	a := SplitRNG(7, 0)
	b := SplitRNG(7, 1)
	collisions := 0
	for i := 0; i < 64; i++ {
		if a.Int63() == b.Int63() {
			collisions++
		}
	}
	if collisions > 2 {
		t.Errorf("streams 0 and 1 collide %d/64 times", collisions)
	}
	// Same stream index reproduces.
	x := SplitRNG(7, 3).Int63()
	y := SplitRNG(7, 3).Int63()
	if x != y {
		t.Error("SplitRNG must be deterministic per (seed, stream)")
	}
}

func TestPerm(t *testing.T) {
	p := Perm(NewRNG(1), 10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}
