package mesh

// router finds conflict-free channel paths on a lattice with time-stamped
// cell reservations. busyUntil[cell] holds the cycle at which the cell
// becomes free; a cell is usable at time t when busyUntil[cell] <= t.
//
// Routing is confined to the bounding box of the braid's endpoints plus a
// margin (the box field), reflecting the straight/L-shaped braid paths of
// the paper's toolchain [1]: a braid does not wander across the machine to
// dodge congestion, so crossing interaction edges genuinely serialize —
// the behaviour behind the paper's Fig. 6 crossing/latency correlation.
// Setting the box to the whole grid recovers fully adaptive routing.
//
// All scratch state (BFS frontier, goal/claim/tree membership) is
// stamp-indexed: a slot belongs to the current query iff it carries the
// current stamp, so queries never clear their scratch and a router is
// reusable across arbitrarily many simulations without per-call
// allocations. Returned paths alias the router's internal buffers and are
// only valid until the next routing call.
type router struct {
	lat       *Lattice
	busyUntil []int
	box       cellBox
	// BFS scratch, reused across calls; visited stamps avoid clearing.
	stamp   int
	visited []int
	parent  []int
	queue   []int
	nbuf    []int
	// goalStamp/goalGroup replace the per-call goal maps of route and
	// routeFromSet: a cell is a goal iff goalStamp[c] == stamp, and then
	// goalGroup[c] names the port group it belongs to.
	goalStamp []int
	goalGroup []int
	// claimStamp marks cells already claimed by earlier arms of the
	// current routeXYTree call (epoch claimEpoch).
	claimStamp []int
	claimEpoch int
	// treeStamp marks cells already in the current routeTree tree.
	treeStamp []int
	treeEpoch int
	// Path buffers reused across calls.
	pathBuf  []int
	unionBuf []int
	treeBuf  []int
	connBuf  []bool
}

// cellBox is an inclusive cell-coordinate rectangle.
type cellBox struct {
	minX, minY, maxX, maxY int
}

func (b cellBox) contains(cx, cy int) bool {
	return cx >= b.minX && cx <= b.maxX && cy >= b.minY && cy <= b.maxY
}

// boxAround returns the bounding box of the given cells expanded by margin,
// clamped to the lattice.
func (l *Lattice) boxAround(cells []int, margin int) cellBox {
	b := emptyBox()
	b = b.extend(l, cells)
	return b.expand(l, margin)
}

func emptyBox() cellBox {
	return cellBox{minX: 1 << 30, minY: 1 << 30, maxX: -1, maxY: -1}
}

func (b cellBox) extend(l *Lattice, cells []int) cellBox {
	for _, ci := range cells {
		cx, cy := ci%l.CW, ci/l.CW
		if cx < b.minX {
			b.minX = cx
		}
		if cy < b.minY {
			b.minY = cy
		}
		if cx > b.maxX {
			b.maxX = cx
		}
		if cy > b.maxY {
			b.maxY = cy
		}
	}
	return b
}

func (b cellBox) expand(l *Lattice, margin int) cellBox {
	b.minX -= margin
	b.minY -= margin
	b.maxX += margin
	b.maxY += margin
	if b.minX < 0 {
		b.minX = 0
	}
	if b.minY < 0 {
		b.minY = 0
	}
	if b.maxX >= l.CW {
		b.maxX = l.CW - 1
	}
	if b.maxY >= l.CH {
		b.maxY = l.CH - 1
	}
	return b
}

// wholeGrid returns a box covering every cell.
func (l *Lattice) wholeGrid() cellBox {
	return cellBox{minX: 0, minY: 0, maxX: l.CW - 1, maxY: l.CH - 1}
}

// deadBusy is the reservation expiry written into every dead (defect-
// region) cell: far beyond any reachable cycle, so the uniform
// busyUntil checks in the BFS and dimension-ordered routers treat dead
// cells as permanently blocked, and a braid with no live candidate
// parks until the deadlock detector reports it — never a hang.
const deadBusy = 1 << 60

func newRouter(lat *Lattice) *router {
	n := lat.Cells()
	r := &router{
		lat:        lat,
		busyUntil:  make([]int, n),
		box:        lat.wholeGrid(),
		visited:    make([]int, n),
		parent:     make([]int, n),
		goalStamp:  make([]int, n),
		goalGroup:  make([]int, n),
		claimStamp: make([]int, n),
		treeStamp:  make([]int, n),
	}
	r.applyDead()
	return r
}

// applyDead re-marks the lattice's defect cells as permanently reserved.
func (r *router) applyDead() {
	if r.lat.dead == nil {
		return
	}
	for ci, d := range r.lat.dead {
		if d {
			r.busyUntil[ci] = deadBusy
		}
	}
}

// reset clears the reservations so the router can serve a fresh
// simulation on the same lattice. Stamp-indexed scratch needs no
// clearing: the stamps keep counting up across runs.
func (r *router) reset() {
	clear(r.busyUntil)
	r.applyDead()
	r.box = r.lat.wholeGrid()
}

// setBox confines routing to the bounding box of the port groups plus
// margin, or to the whole grid when adaptive.
func (r *router) setBox(groups [][]int, adaptive bool, margin int) {
	if adaptive {
		r.box = r.lat.wholeGrid()
		return
	}
	b := emptyBox()
	for _, gp := range groups {
		b = b.extend(r.lat, gp)
	}
	r.box = b.expand(r.lat, margin)
}

func (r *router) free(ci, t int) bool {
	if r.lat.isTile[ci] || r.busyUntil[ci] > t {
		return false
	}
	return r.box.contains(ci%r.lat.CW, ci/r.lat.CW)
}

// route finds a shortest path of free channel cells at time t connecting
// any cell of srcPorts to any cell of dstPorts (inclusive of both port
// cells). When no conflict-free path exists it returns nil plus a sound
// earliest-retry bound: the smallest busyUntil among the reserved cells
// that could possibly extend the search (busy cells on the frontier of
// the reachable region and busy port cells). Until one of those
// reservations expires the reachable region cannot grow, so the query is
// guaranteed to keep failing; a zero bound means the failure is
// structural (no reservation to wait out). The returned path aliases the
// router's scratch and is only valid until the next routing call.
func (r *router) route(srcPorts, dstPorts []int, t int) ([]int, int) {
	r.stamp++
	r.queue = r.queue[:0]
	minExp := 0
	note := func(bu int) {
		if minExp == 0 || bu < minExp {
			minExp = bu
		}
	}
	goals := 0
	for _, c := range dstPorts {
		if r.lat.isTile[c] || !r.box.contains(c%r.lat.CW, c/r.lat.CW) {
			continue
		}
		if bu := r.busyUntil[c]; bu > t {
			note(bu)
			continue
		}
		r.goalStamp[c] = r.stamp
		goals++
	}
	if goals == 0 {
		return nil, minExp
	}
	for _, c := range srcPorts {
		if r.lat.isTile[c] || !r.box.contains(c%r.lat.CW, c/r.lat.CW) {
			continue
		}
		if bu := r.busyUntil[c]; bu > t {
			note(bu)
			continue
		}
		if r.visited[c] == r.stamp {
			continue
		}
		r.visited[c] = r.stamp
		r.parent[c] = -1
		if r.goalStamp[c] == r.stamp {
			r.pathBuf = append(r.pathBuf[:0], c)
			return r.pathBuf, 0
		}
		r.queue = append(r.queue, c)
	}
	for head := 0; head < len(r.queue); head++ {
		cur := r.queue[head]
		r.nbuf = r.lat.NeighborCells(cur, r.nbuf[:0])
		for _, nb := range r.nbuf {
			if r.visited[nb] == r.stamp {
				continue
			}
			if r.lat.isTile[nb] || !r.box.contains(nb%r.lat.CW, nb/r.lat.CW) {
				continue
			}
			if bu := r.busyUntil[nb]; bu > t {
				note(bu)
				continue
			}
			r.visited[nb] = r.stamp
			r.parent[nb] = cur
			if r.goalStamp[nb] == r.stamp {
				return r.walkBack(nb), 0
			}
			r.queue = append(r.queue, nb)
		}
	}
	return nil, minExp
}

// walkBack materializes the BFS path ending at end into the shared path
// buffer (end first, as the original recursive walk produced it).
func (r *router) walkBack(end int) []int {
	path := r.pathBuf[:0]
	for c := end; c != -1; c = r.parent[c] {
		path = append(path, c)
	}
	r.pathBuf = path
	return path
}

// routeTree connects all port groups with a connected set of free channel
// cells at time t (a greedy Steiner tree: start from the first group,
// repeatedly BFS from the current tree to the nearest unconnected group).
// Returns nil when any group cannot be reached. The tree aliases the
// router's scratch and is only valid until the next routing call.
func (r *router) routeTree(groups [][]int, t int) []int {
	if len(groups) == 0 {
		return nil
	}
	if len(groups) == 1 {
		// Claim a single port cell so even degenerate "trees" occupy space.
		for _, c := range groups[0] {
			if r.free(c, t) {
				r.treeBuf = append(r.treeBuf[:0], c)
				return r.treeBuf
			}
		}
		return nil
	}
	r.treeEpoch++
	tree := r.treeBuf[:0]
	if cap(r.connBuf) < len(groups) {
		r.connBuf = make([]bool, len(groups))
	}
	connected := r.connBuf[:len(groups)]
	clear(connected)
	// Seed with the first reachable path between group 0 and any other
	// group; then grow.
	first, _ := r.route(groups[0], groups[1], t)
	if first == nil {
		return nil
	}
	for _, c := range first {
		if r.treeStamp[c] != r.treeEpoch {
			r.treeStamp[c] = r.treeEpoch
			tree = append(tree, c)
		}
	}
	connected[0], connected[1] = true, true
	for {
		remaining := -1
		for gi, done := range connected {
			if !done {
				remaining = gi
				break
			}
		}
		if remaining == -1 {
			r.treeBuf = tree
			return tree
		}
		// BFS from the whole tree to the nearest cell of any unconnected
		// group; claim the path for that group.
		cells, gi := r.routeFromSet(tree, groups, connected, t)
		if cells == nil {
			r.treeBuf = tree[:0]
			return nil
		}
		for _, c := range cells {
			if r.treeStamp[c] != r.treeEpoch {
				r.treeStamp[c] = r.treeEpoch
				tree = append(tree, c)
			}
		}
		connected[gi] = true
	}
}

// routeFromSet BFS-expands from every tree cell simultaneously and stops
// at the first free port cell belonging to an unconnected group,
// returning the connecting path and the group index (nil, -1 when no
// group is reachable).
func (r *router) routeFromSet(tree []int, groups [][]int, connected []bool, t int) ([]int, int) {
	r.stamp++
	r.queue = r.queue[:0]
	goals := 0
	for gi, done := range connected {
		if done {
			continue
		}
		for _, c := range groups[gi] {
			if r.free(c, t) {
				r.goalStamp[c] = r.stamp
				r.goalGroup[c] = gi
				goals++
			}
		}
	}
	if goals == 0 {
		return nil, -1
	}
	for _, c := range tree {
		if r.visited[c] == r.stamp {
			continue
		}
		r.visited[c] = r.stamp
		r.parent[c] = -1
		if r.goalStamp[c] == r.stamp {
			r.pathBuf = append(r.pathBuf[:0], c)
			return r.pathBuf, r.goalGroup[c]
		}
		r.queue = append(r.queue, c)
	}
	for head := 0; head < len(r.queue); head++ {
		cur := r.queue[head]
		r.nbuf = r.lat.NeighborCells(cur, r.nbuf[:0])
		for _, nb := range r.nbuf {
			if r.visited[nb] == r.stamp || !r.free(nb, t) {
				continue
			}
			r.visited[nb] = r.stamp
			r.parent[nb] = cur
			if r.goalStamp[nb] == r.stamp {
				return r.walkBack(nb), r.goalGroup[nb]
			}
			r.queue = append(r.queue, nb)
		}
	}
	return nil, -1
}

// reserve marks cells busy until time until.
func (r *router) reserve(cells []int, until int) {
	for _, c := range cells {
		r.busyUntil[c] = until
	}
}
