package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"magicstate/internal/store"
	"magicstate/internal/sweep"
)

// TestResumeByteIdentical is the checkpoint/resume acceptance test: a
// sweep killed mid-run (simulated by truncating the store's record log
// at an arbitrary point, exactly the state a SIGKILL leaves behind) and
// then restarted against the same store must serve every surviving
// point from disk, recompute only the lost ones, and render artifacts
// byte-identical to an uninterrupted run without any store at all.
func TestResumeByteIdentical(t *testing.T) {
	const seed = 3
	orig := Engine()
	defer SetEngine(orig)

	// Ground truth: a fresh serial run with no durable tier.
	SetEngine(sweep.New(sweep.Options{Workers: 1}))
	want := renderAll(t, seed)

	// First run with a checkpoint store: populates it.
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	SetEngine(sweep.New(sweep.Options{Workers: 1, Store: st}))
	first := renderAll(t, seed)
	if !bytes.Equal(want, first) {
		t.Fatal("store-backed run differs from plain run")
	}
	// Count final records only: the staged pipeline also persists
	// intermediate artifacts, but the resume contract is stated in
	// points (one final record each).
	stored := st.Stats().Records
	if stored == 0 {
		t.Fatal("store-backed run persisted nothing")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Kill: drop the tail of the record log mid-record.
	logPath := filepath.Join(dir, "store.log")
	info, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(logPath, info.Size()*2/3); err != nil {
		t.Fatal(err)
	}

	// Resume: fresh process state (new engine, reopened store).
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	survivors := st2.Stats().Records
	if survivors == 0 || survivors >= stored {
		t.Fatalf("truncation recovered %d of %d records; want a proper subset", survivors, stored)
	}
	eng := sweep.New(sweep.Options{Workers: 1, Store: st2})
	SetEngine(eng)
	resumed := renderAll(t, seed)
	if !bytes.Equal(want, resumed) {
		t.Fatalf("resumed artifacts differ from uninterrupted run:\n--- fresh ---\n%s\n--- resumed ---\n%s", want, resumed)
	}
	if hits := int(eng.DiskHits()); hits != survivors {
		t.Fatalf("resume served %d points from disk, want all %d survivors", hits, survivors)
	}
	if puts := int(st2.Stats().Puts); puts != stored-survivors {
		t.Fatalf("resume recomputed %d points, want exactly the %d lost ones", puts, stored-survivors)
	}
	if err := st2.Close(); err != nil { // one writer per directory at a time
		t.Fatal(err)
	}

	// A second resume against the now-complete store recomputes nothing.
	st3, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	eng3 := sweep.New(sweep.Options{Workers: 4, Store: st3})
	SetEngine(eng3)
	again := renderAll(t, seed)
	if !bytes.Equal(want, again) {
		t.Fatal("fully-cached rerun differs from fresh run")
	}
	if puts := st3.Stats().Puts; puts != 0 {
		t.Fatalf("fully-cached rerun still recomputed %d points", puts)
	}
	if hits := int(eng3.DiskHits()); hits != stored {
		t.Fatalf("fully-cached rerun took %d disk hits, want %d", hits, stored)
	}
}
