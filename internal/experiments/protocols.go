package experiments

import (
	"context"
	"fmt"
	"io"

	"magicstate/internal/protocols"
	"magicstate/internal/sweep"
)

// ProtocolRow is one protocol family provisioned for a common target
// fidelity (the §III related-work comparison).
type ProtocolRow struct {
	Name        string
	Levels      int
	OutputError float64
	RawPerOut   float64
	ExpectedRaw float64
	SuccessProb float64
	Qubits      int
	VolumeProxy float64
	Err         string
}

// ProtocolComparison provisions every protocol of the §III zoo for the
// given injected error rate and target output error, reporting raw-state
// cost, footprint and a space-time proxy per distilled state. Each
// candidate provisions as its own grid point on the sweep engine;
// provisioning failures land in the row's Err field instead of aborting
// the comparison.
func ProtocolComparison(eps, target float64) []ProtocolRow {
	candidates := protocols.DefaultCandidates(eps)
	rows, _ := sweep.Map(context.Background(), Engine(), candidates, func(_ int, cand protocols.Protocol) (ProtocolRow, error) {
		plan, err := protocols.Provision(cand, eps, target, 8)
		row := ProtocolRow{Name: cand.Name()}
		if err != nil {
			row.Err = err.Error()
			return row, nil
		}
		row.Levels = plan.Levels
		row.OutputError = plan.OutputError
		row.RawPerOut = plan.RawPerOutput
		row.ExpectedRaw = plan.ExpectedRawPerOutput
		row.SuccessProb = plan.SuccessProbability
		row.Qubits = plan.Qubits
		row.VolumeProxy = plan.VolumeProxy
		return row, nil
	})
	return rows
}

// WriteProtocols renders the protocol comparison.
func WriteProtocols(w io.Writer, eps, target float64, rows []ProtocolRow) {
	fmt.Fprintf(w, "Distillation protocol zoo (§III) — eps_in=%.1e, target=%.1e\n", eps, target)
	tw := newTab(w)
	fmt.Fprintln(tw, "protocol\tlevels\tout err\traw/out\texp raw/out\tP(success)\tqubits\tvol proxy")
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(tw, "%s\t-\t-\t-\t-\t-\t-\t(%s)\n", r.Name, r.Err)
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%.1e\t%.1f\t%.1f\t%.3f\t%d\t%.3g\n",
			r.Name, r.Levels, r.OutputError, r.RawPerOut, r.ExpectedRaw,
			r.SuccessProb, r.Qubits, r.VolumeProxy)
	}
	tw.Flush()
}
