package main

// Self-managed cluster mode: msfuload spawns and supervises its own
// msfud processes (-exec PATH -cluster N), wires them into a fabric via
// -node-id/-peers, and optionally runs a chaos loop that SIGKILLs a
// random node on a schedule and restarts it after a down window. The
// harness owns the full lifecycle: free ports are picked up front so
// the -peers set can be announced to every node before any has started,
// each node gets its own durable store directory, readiness is polled
// on /v1/ping, and every node is restarted and health-checked before
// the final verification pass — a soak must end on a whole cluster, or
// the byte-identity check would only cover the survivors.

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"magicstate/internal/httpclient"
)

// managedNode is one msfud process the harness spawned and owns.
type managedNode struct {
	name string
	addr string // host:port the node listens on
	base string // http://host:port
	dir  string // the node's durable store directory

	mu  sync.Mutex
	cmd *exec.Cmd // nil while the node is down
}

// managedCluster supervises the spawned node set.
type managedCluster struct {
	execPath  string
	peersSpec string
	faultPeer string
	replicate bool
	nodes     []*managedNode

	kills atomic.Int64
}

// newManagedCluster plans an n-node cluster: ports, store directories
// and the shared -peers membership string. Nothing is started yet.
// Store directories live under storeRoot, created if needed.
func newManagedCluster(execPath string, n int, storeRoot, faultPeer string, replicate bool) (*managedCluster, error) {
	c := &managedCluster{execPath: execPath, faultPeer: faultPeer, replicate: replicate}
	var peers []string
	for i := 0; i < n; i++ {
		addr, err := freePort()
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("node%d", i)
		dir := filepath.Join(storeRoot, name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		c.nodes = append(c.nodes, &managedNode{
			name: name,
			addr: addr,
			base: "http://" + addr,
			dir:  dir,
		})
		peers = append(peers, name+"=http://"+addr)
	}
	c.peersSpec = strings.Join(peers, ",")
	return c, nil
}

// freePort asks the OS for a listenable address and releases it. The
// port can in principle be stolen before msfud binds it, but the window
// is tiny and the harness would fail loudly at readiness polling.
func freePort() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// bases returns every node's base URL, in node order.
func (c *managedCluster) bases() []string {
	out := make([]string, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n.base
	}
	return out
}

// start launches one node's msfud process. The node reopens its own
// store directory, so a restart after SIGKILL recovers every record the
// previous incarnation flushed.
func (c *managedCluster) start(n *managedNode) error {
	args := []string{
		"-addr", n.addr,
		"-store", n.dir,
		"-node-id", n.name,
		"-peers", c.peersSpec,
		fmt.Sprintf("-replicate=%v", c.replicate),
	}
	if c.faultPeer != "" {
		args = append(args, "-fault-peer", c.faultPeer)
	}
	cmd := exec.Command(c.execPath, args...)
	cmd.Stdout = io.Discard
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("starting %s: %w", n.name, err)
	}
	n.mu.Lock()
	n.cmd = cmd
	n.mu.Unlock()
	return nil
}

// kill SIGKILLs one node and reaps it — no drain, no warning, the
// failure mode the fabric's breakers and fallback exist for.
func (c *managedCluster) kill(n *managedNode) {
	n.mu.Lock()
	cmd := n.cmd
	n.cmd = nil
	n.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return
	}
	cmd.Process.Kill()
	cmd.Wait()
	c.kills.Add(1)
}

// startAll boots every node and waits for the whole set to answer.
func (c *managedCluster) startAll(timeout time.Duration) error {
	for _, n := range c.nodes {
		if err := c.start(n); err != nil {
			return err
		}
	}
	return c.awaitReady(timeout)
}

// ensureAllUp restarts any node that is currently down and waits for
// the whole cluster to answer — the "restart everything before the
// final verify" step.
func (c *managedCluster) ensureAllUp(timeout time.Duration) error {
	for _, n := range c.nodes {
		n.mu.Lock()
		down := n.cmd == nil
		n.mu.Unlock()
		if down {
			if err := c.start(n); err != nil {
				return err
			}
		}
	}
	return c.awaitReady(timeout)
}

// awaitReady polls every node's /v1/ping until it answers 200.
func (c *managedCluster) awaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for _, n := range c.nodes {
		for {
			resp, err := http.Get(n.base + "/v1/ping")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("node %s (%s) not ready within %v", n.name, n.base, timeout)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	return nil
}

// stopAll SIGKILLs every node. The harness is exiting; nothing gentler
// is owed to processes it created.
func (c *managedCluster) stopAll() {
	for _, n := range c.nodes {
		c.kill(n)
	}
}

// runChaos kills a random node every killEvery, leaves it down for
// downFor, restarts it, and repeats until ctx ends. The victim sequence
// is derived from the workload seed, so a chaos soak is reproducible.
func (c *managedCluster) runChaos(ctx context.Context, killEvery, downFor time.Duration, seed int64) {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	t := time.NewTicker(killEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		n := c.nodes[rng.Intn(len(c.nodes))]
		c.kill(n)
		fmt.Printf("msfuload: chaos: SIGKILLed %s (%s)\n", n.name, n.addr)
		select {
		case <-ctx.Done():
			return
		case <-time.After(downFor):
		}
		if err := c.start(n); err != nil {
			fmt.Fprintf(os.Stderr, "msfuload: chaos: restarting %s: %v\n", n.name, err)
			return
		}
		fmt.Printf("msfuload: chaos: restarted %s\n", n.name)
	}
}

// checkClusterView asserts, post-restart, that node 0's /v1/cluster
// sees every member healthy — the cluster reassembled after the chaos.
func (c *managedCluster) checkClusterView(client *httpclient.Client) error {
	var view struct {
		Nodes []struct {
			Node  string `json:"node"`
			Error string `json:"error"`
		} `json:"nodes"`
	}
	status, err := client.GetJSON(context.Background(), c.nodes[0].base+"/v1/cluster", &view)
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("GET /v1/cluster: status %d err %v", status, err)
	}
	if len(view.Nodes) != len(c.nodes) {
		return fmt.Errorf("cluster view has %d nodes, want %d", len(view.Nodes), len(c.nodes))
	}
	for _, n := range view.Nodes {
		if n.Error != "" {
			return fmt.Errorf("node %s unhealthy after restart: %s", n.Node, n.Error)
		}
	}
	return nil
}
