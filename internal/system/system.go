// Package system models the system-level concerns the paper's §IX
// sketches: factories feeding an application through a prepared-state
// buffer, throughput derating from distillation failures, and loss
// compensation via a maintenance reserve that covers failed batches.
// It is a discrete-cycle simulation over the aggregate quantities
// (states, not individual qubits), parameterized by the per-factory
// latency and batch size the mapping pipeline produces.
package system

import (
	"fmt"
	"math/rand"
)

// Config describes a factory farm serving a T-gate request stream.
type Config struct {
	// FactoryLatency is the cycles one factory needs per batch attempt
	// (the mapped factory's simulated latency).
	FactoryLatency int
	// BatchSize is the states a successful batch delivers (the factory
	// capacity).
	BatchSize int
	// SuccessProb is the probability a batch passes all distillation
	// checks (1 / resource.ExpectedRunsPerSuccess).
	SuccessProb float64
	// Factories is the number of factory copies running in parallel.
	Factories int
	// BufferSize caps the prepared-state buffer; produced states beyond
	// the cap are wasted (the factory idles only when the buffer is full).
	BufferSize int
	// DemandRate is the average T-gate requests per cycle.
	DemandRate float64
	// Cycles is the simulated horizon.
	Cycles int
	// MaintenanceReserve, when positive, implements §IX's loss
	// compensation: a reserve of high-fidelity states that covers a
	// failed batch (refilled by successful batches before the buffer),
	// hiding the failure from consumers.
	MaintenanceReserve int
	// YieldHistogram, when non-nil, replaces the all-or-nothing
	// SuccessProb draw with a partial-yield distribution:
	// YieldHistogram[n] is the relative weight of a batch delivering
	// exactly n states (the shape montecarlo.Summary.Outputs produces).
	// Index 0 counts as a failed batch for reserve compensation. Its
	// length must be BatchSize+1.
	YieldHistogram []int
	// Seed drives batch success draws.
	Seed int64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.FactoryLatency <= 0 || c.BatchSize <= 0 || c.Factories <= 0 || c.Cycles <= 0 {
		return fmt.Errorf("system: latency, batch size, factories and cycles must be positive")
	}
	if c.SuccessProb <= 0 || c.SuccessProb > 1 {
		return fmt.Errorf("system: success probability %v out of (0,1]", c.SuccessProb)
	}
	if c.DemandRate < 0 || c.BufferSize < 0 || c.MaintenanceReserve < 0 {
		return fmt.Errorf("system: negative rates or capacities")
	}
	if c.YieldHistogram != nil {
		if len(c.YieldHistogram) != c.BatchSize+1 {
			return fmt.Errorf("system: yield histogram has %d bins, want BatchSize+1 = %d",
				len(c.YieldHistogram), c.BatchSize+1)
		}
		mass := 0
		for _, w := range c.YieldHistogram {
			if w < 0 {
				return fmt.Errorf("system: negative yield histogram weight")
			}
			mass += w
		}
		if mass == 0 {
			return fmt.Errorf("system: yield histogram has no mass")
		}
	}
	return nil
}

// drawBatch samples the states a completed batch delivers: either the
// all-or-nothing SuccessProb draw or a partial-yield histogram draw.
func (c Config) drawBatch(rng *rand.Rand) int {
	if c.YieldHistogram == nil {
		if rng.Float64() <= c.SuccessProb {
			return c.BatchSize
		}
		return 0
	}
	mass := 0
	for _, w := range c.YieldHistogram {
		mass += w
	}
	pick := rng.Intn(mass)
	for n, w := range c.YieldHistogram {
		if pick < w {
			return n
		}
		pick -= w
	}
	return 0
}

// Result aggregates a simulated horizon.
type Result struct {
	// Served counts requests satisfied from the buffer the cycle they
	// arrived; Stalled counts requests that had to wait.
	Served, Stalled int
	// StallCycles sums, over all requests, the cycles spent waiting.
	StallCycles int
	// Produced counts states delivered into the buffer (after failures
	// and reserve refills); Wasted counts states dropped at a full buffer.
	Produced, Wasted int
	// FailedBatches counts batch attempts that failed their checks;
	// CompensatedBatches counts failures hidden by the reserve.
	FailedBatches, CompensatedBatches int
	// AvgOccupancy is the mean buffer fill over the horizon.
	AvgOccupancy float64
}

// StallFraction returns the fraction of requests that stalled.
func (r *Result) StallFraction() float64 {
	total := r.Served + r.Stalled
	if total == 0 {
		return 0
	}
	return float64(r.Stalled) / float64(total)
}

// Simulate runs the farm for cfg.Cycles cycles.
func Simulate(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Result{}

	timers := make([]int, cfg.Factories) // cycles until each factory's batch completes
	for i := range timers {
		// Stagger starts so production is spread across the period.
		timers[i] = (i*cfg.FactoryLatency)/cfg.Factories + 1
	}
	buffer := 0
	reserve := cfg.MaintenanceReserve
	var demandAcc float64
	backlog := 0
	var occSum float64

	for t := 0; t < cfg.Cycles; t++ {
		// Production.
		for i := range timers {
			timers[i]--
			if timers[i] > 0 {
				continue
			}
			timers[i] = cfg.FactoryLatency
			if batch := cfg.drawBatch(rng); batch > 0 {
				// Refill the maintenance reserve first (loss compensation
				// keeps it stocked ahead of the buffer).
				if reserve < cfg.MaintenanceReserve {
					refill := cfg.MaintenanceReserve - reserve
					if refill > batch {
						refill = batch
					}
					reserve += refill
					batch -= refill
				}
				if buffer+batch > cfg.BufferSize {
					res.Wasted += buffer + batch - cfg.BufferSize
					batch = cfg.BufferSize - buffer
				}
				buffer += batch
				res.Produced += batch
			} else {
				res.FailedBatches++
				if reserve >= cfg.BatchSize {
					// The reserve covers the failed batch.
					reserve -= cfg.BatchSize
					grant := cfg.BatchSize
					if buffer+grant > cfg.BufferSize {
						res.Wasted += buffer + grant - cfg.BufferSize
						grant = cfg.BufferSize - buffer
					}
					buffer += grant
					res.Produced += grant
					res.CompensatedBatches++
				}
			}
		}
		// Demand.
		demandAcc += cfg.DemandRate
		for demandAcc >= 1 {
			demandAcc--
			if buffer > 0 && backlog == 0 {
				buffer--
				res.Served++
			} else {
				backlog++
				res.Stalled++
			}
		}
		// Drain backlog.
		for backlog > 0 && buffer > 0 {
			buffer--
			backlog--
		}
		res.StallCycles += backlog
		occSum += float64(buffer)
	}
	res.AvgOccupancy = occSum / float64(cfg.Cycles)
	return res, nil
}

// FactoriesFor returns the smallest factory count whose steady-state
// production meets demand with the given headroom factor (>= 1), using
// the fluid approximation production = n * batch * p / latency.
func FactoriesFor(cfg Config, headroom float64) int {
	if headroom < 1 {
		headroom = 1
	}
	if cfg.FactoryLatency <= 0 || cfg.BatchSize <= 0 || cfg.SuccessProb <= 0 {
		return 0
	}
	perFactory := float64(cfg.BatchSize) * cfg.SuccessProb / float64(cfg.FactoryLatency)
	n := 1
	for float64(n)*perFactory < cfg.DemandRate*headroom {
		n++
	}
	return n
}

// BufferSweepPoint is one (buffer size, stall fraction) sample.
type BufferSweepPoint struct {
	BufferSize    int
	StallFraction float64
	AvgOccupancy  float64
}

// BufferSweep measures stall fraction across buffer sizes, holding the
// rest of cfg fixed — the §IX "prepared state buffers" study.
func BufferSweep(cfg Config, sizes []int) ([]BufferSweepPoint, error) {
	var out []BufferSweepPoint
	for _, b := range sizes {
		c := cfg
		c.BufferSize = b
		r, err := Simulate(c)
		if err != nil {
			return nil, err
		}
		out = append(out, BufferSweepPoint{BufferSize: b, StallFraction: r.StallFraction(), AvgOccupancy: r.AvgOccupancy})
	}
	return out, nil
}
