package experiments

import (
	"fmt"
	"io"

	"magicstate/internal/circuit"
	"magicstate/internal/circuits"
	"magicstate/internal/mesh"
	"magicstate/internal/subdiv"
)

// StitchGenRow compares a single global GP embedding against windowed
// subdivision stitching (§IX "stitching generalization") on one workload.
type StitchGenRow struct {
	Workload        string
	Qubits          int
	GlobalLatency   int
	StitchedLatency int
	Moves           int
	// Gain is Global/Stitched; above 1 means stitching won.
	Gain float64
}

// StitchGeneralization runs the comparison over the workload set the
// study needs: a phase-structured hierarchical circuit (where stitching
// should win), a strictly local adder and an all-pairs QFT-like circuit
// (controls where a single good global embedding is already near
// optimal).
func StitchGeneralization(seed int64) ([]StitchGenRow, error) {
	type workload struct {
		name string
		c    *circuit.Circuit
	}
	base := circuits.HierarchicalOptions{
		Blocks: 6, QubitsPerBlock: 10, Phases: 5,
		IntraCNOTs: 40, BridgeCNOTs: 6, Barriers: true, Seed: seed,
	}
	static, err := circuits.HierarchicalRandom(base)
	if err != nil {
		return nil, err
	}
	shuffledOpt := base
	shuffledOpt.Shuffle = true
	shuffled, err := circuits.HierarchicalRandom(shuffledOpt)
	if err != nil {
		return nil, err
	}
	adder, err := circuits.CuccaroAdder(10)
	if err != nil {
		return nil, err
	}
	qft, err := circuits.QFTLike(16)
	if err != nil {
		return nil, err
	}
	// One reusable simulator for all eight runs (global + stitched per
	// workload); arenas regrow to the largest placement and stay.
	sim := mesh.NewSimulator()
	var rows []StitchGenRow
	for _, wl := range []workload{
		{name: "hier-shuffled", c: shuffled},
		{name: "hier-static", c: static},
		{name: "adder-10bit", c: adder},
		{name: "qft-16", c: qft},
	} {
		pg := subdiv.GlobalEmbed(wl.c, seed)
		simG, err := sim.Simulate(wl.c, pg, mesh.Config{})
		if err != nil {
			return nil, fmt.Errorf("stitchgen %s global: %w", wl.name, err)
		}
		st, err := subdiv.Stitch(wl.c, subdiv.Options{Seed: seed, MoveBudget: wl.c.NumQubits / 6})
		if err != nil {
			return nil, fmt.Errorf("stitchgen %s stitch: %w", wl.name, err)
		}
		simS, err := sim.Simulate(st.Circuit, st.Placement, mesh.Config{})
		if err != nil {
			return nil, fmt.Errorf("stitchgen %s stitched sim: %w", wl.name, err)
		}
		rows = append(rows, StitchGenRow{
			Workload:        wl.name,
			Qubits:          wl.c.NumQubits,
			GlobalLatency:   simG.Latency,
			StitchedLatency: simS.Latency,
			Moves:           st.Moves,
			Gain:            float64(simG.Latency) / float64(simS.Latency),
		})
	}
	return rows, nil
}

// WriteStitchGen renders the generalization comparison.
func WriteStitchGen(w io.Writer, rows []StitchGenRow) {
	fmt.Fprintln(w, "Stitching generalization (§IX) — global GP embedding vs windowed stitching")
	tw := newTab(w)
	fmt.Fprintln(tw, "workload\tqubits\tglobal\tstitched\tmoves\tgain")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%.2fx\n",
			r.Workload, r.Qubits, r.GlobalLatency, r.StitchedLatency, r.Moves, r.Gain)
	}
	tw.Flush()
}
