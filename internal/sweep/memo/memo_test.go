package memo

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoMemoizes(t *testing.T) {
	c := New(0)
	calls := 0
	fn := func() (any, error) { calls++; return 42, nil }
	for i := 0; i < 3; i++ {
		v, err := c.Do("k", fn)
		if err != nil || v.(int) != 42 {
			t.Fatalf("Do = %v, %v", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 2/1", hits, misses)
	}
}

func TestDoCachesErrors(t *testing.T) {
	c := New(0)
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 2; i++ {
		_, err := c.Do(1, func() (any, error) { calls++; return nil, boom })
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
}

func TestSingleflight(t *testing.T) {
	c := New(0)
	var calls atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.Do("shared", func() (any, error) {
				calls.Add(1)
				return "v", nil
			})
			if err != nil || v.(string) != "v" {
				t.Errorf("Do = %v, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times under contention, want 1", n)
	}
}

func TestLimitResets(t *testing.T) {
	c := New(2)
	for i := 0; i < 5; i++ {
		if _, err := c.Do(i, func() (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() > 2 {
		t.Fatalf("len = %d, want <= limit 2", c.Len())
	}
	// Evicted keys recompute and still return the right value.
	v, err := c.Do(0, func() (any, error) { return 100, nil })
	if err != nil {
		t.Fatal(err)
	}
	if v.(int) != 100 {
		t.Fatalf("recomputed value = %v", v)
	}
}

func TestReset(t *testing.T) {
	c := New(0)
	c.Do("a", func() (any, error) { return 1, nil })
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("len after reset = %d", c.Len())
	}
}
