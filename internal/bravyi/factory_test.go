package bravyi

import (
	"testing"
	"testing/quick"

	"magicstate/internal/circuit"
)

func mustBuild(t *testing.T, p Params) *Factory {
	t.Helper()
	f, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestParamsDerivedQuantities(t *testing.T) {
	p := Params{K: 2, Levels: 2}
	if p.Capacity() != 4 || p.Inputs() != 196 {
		t.Errorf("capacity/inputs = %d/%d, want 4/196", p.Capacity(), p.Inputs())
	}
	if p.ModulesInRound(1) != 14 || p.ModulesInRound(2) != 2 {
		t.Errorf("modules per round = %d/%d, want 14/2",
			p.ModulesInRound(1), p.ModulesInRound(2))
	}
	if p.TotalModules() != 16 {
		t.Errorf("total modules = %d, want 16", p.TotalModules())
	}
	if p.QubitsPerModule() != 23 {
		t.Errorf("qubits per module = %d, want 23", p.QubitsPerModule())
	}
}

func TestParamsForCapacity(t *testing.T) {
	p, err := ParamsForCapacity(36, 2)
	if err != nil || p.K != 6 {
		t.Errorf("capacity 36 level 2: k=%d err=%v, want 6", p.K, err)
	}
	if _, err := ParamsForCapacity(5, 2); err == nil {
		t.Error("capacity 5 at level 2 is not a perfect square, want error")
	}
	if _, err := ParamsForCapacity(0, 1); err == nil {
		t.Error("capacity 0 should be rejected")
	}
	p, err = ParamsForCapacity(24, 1)
	if err != nil || p.K != 24 {
		t.Errorf("capacity 24 level 1: k=%d err=%v", p.K, err)
	}
}

func TestValidateParams(t *testing.T) {
	if err := (Params{K: 0, Levels: 1}).Validate(); err == nil {
		t.Error("K=0 should fail")
	}
	if err := (Params{K: 1, Levels: 0}).Validate(); err == nil {
		t.Error("Levels=0 should fail")
	}
	if _, err := Build(Params{K: -1, Levels: 1}); err == nil {
		t.Error("Build should propagate validation errors")
	}
}

func TestErrorModel(t *testing.T) {
	p := Params{K: 8, Levels: 1}
	if got := p.OutputError(1e-3); got != 25e-6*1.0 { // (1+24)*1e-6
		t.Errorf("OutputError = %v, want 2.5e-5", got)
	}
	if got := p.SuccessProbability(1e-3); got != 1-32e-3 {
		t.Errorf("SuccessProbability = %v, want 0.968", got)
	}
	if got := p.SuccessProbability(1); got != 0 {
		t.Errorf("success probability must clamp at 0, got %v", got)
	}
}

func TestSingleLevelStructure(t *testing.T) {
	for _, k := range []int{1, 2, 8} {
		f := mustBuild(t, Params{K: k, Levels: 1})
		if len(f.Modules) != 1 || len(f.Rounds) != 1 || len(f.Wires) != 0 {
			t.Fatalf("k=%d: modules/rounds/wires = %d/%d/%d",
				k, len(f.Modules), len(f.Rounds), len(f.Wires))
		}
		if f.Circuit.NumQubits != 5*k+13 {
			t.Errorf("k=%d: qubits = %d, want %d", k, f.Circuit.NumQubits, 5*k+13)
		}
		if got := len(f.Circuit.Gates); got != GatesPerModule(k) {
			t.Errorf("k=%d: gates = %d, want %d", k, got, GatesPerModule(k))
		}
		m := f.Modules[0]
		if len(m.Raw) != 3*k+8 || len(m.Anc) != k+5 || len(m.Out) != k {
			t.Errorf("k=%d: register sizes %d/%d/%d", k, len(m.Raw), len(m.Anc), len(m.Out))
		}
		if got := len(f.Outputs()); got != k {
			t.Errorf("k=%d: outputs = %d, want %d", k, got, k)
		}
	}
}

func TestGateKindCensus(t *testing.T) {
	k := 8
	f := mustBuild(t, Params{K: k, Levels: 1})
	c := f.Circuit
	census := map[circuit.Kind]int{
		circuit.KindH:          3 + k,
		circuit.KindCNOT:       2 + 4*k,
		circuit.KindCXX:        2,
		circuit.KindInjectT:    2*k + 4,
		circuit.KindInjectTdag: k + 4,
		circuit.KindMeasX:      k + 5,
	}
	for kind, want := range census {
		if got := c.CountKind(kind); got != want {
			t.Errorf("%v count = %d, want %d", kind, got, want)
		}
	}
	// Every raw state is consumed exactly once.
	if total := c.CountKind(circuit.KindInjectT) + c.CountKind(circuit.KindInjectTdag); total != 3*k+8 {
		t.Errorf("injections = %d, want 3k+8 = %d", total, 3*k+8)
	}
}

func TestRawConsumersCoverAllSlots(t *testing.T) {
	f := mustBuild(t, Params{K: 4, Levels: 1})
	m := f.Modules[0]
	seen := make(map[int]bool)
	for s, gi := range m.RawConsumer {
		if gi < 0 {
			t.Fatalf("slot %d has no consumer", s)
		}
		if seen[gi] {
			t.Fatalf("gate %d consumes two slots", gi)
		}
		seen[gi] = true
		g := f.Circuit.Gates[gi]
		if g.Kind != circuit.KindInjectT && g.Kind != circuit.KindInjectTdag {
			t.Fatalf("slot %d consumer is %v, want injection", s, g.Kind)
		}
		if g.Control != m.Raw[s] {
			t.Fatalf("slot %d consumer control %d != raw %d", s, g.Control, m.Raw[s])
		}
	}
}

func TestTwoLevelStructure(t *testing.T) {
	p := Params{K: 2, Levels: 2, Barriers: true}
	f := mustBuild(t, p)
	if len(f.Rounds) != 2 {
		t.Fatalf("rounds = %d", len(f.Rounds))
	}
	if got := len(f.Rounds[0].Modules); got != 14 {
		t.Errorf("round 1 modules = %d, want 14", got)
	}
	if got := len(f.Rounds[1].Modules); got != 2 {
		t.Errorf("round 2 modules = %d, want 2", got)
	}
	// 2 consuming modules x 14 slots each.
	if len(f.Wires) != 28 {
		t.Errorf("wires = %d, want 28", len(f.Wires))
	}
	// Every module has the full 5k+13 footprint.
	want := 16 * 23
	if f.Circuit.NumQubits != want {
		t.Errorf("qubits = %d, want %d", f.Circuit.NumQubits, want)
	}
	// The permutation phase is one Move per wire.
	if got := f.Circuit.CountKind(circuit.KindMove); got != 28 {
		t.Errorf("moves = %d, want 28", got)
	}
	r2 := f.Rounds[1]
	if r2.PermEnd-r2.PermStart != 28 {
		t.Errorf("round 2 perm phase = %d gates, want 28", r2.PermEnd-r2.PermStart)
	}
	if len(f.Rounds[0].Modules) != 14 || f.Rounds[0].PermEnd != f.Rounds[0].PermStart {
		t.Error("round 1 must have an empty permutation phase")
	}
	for gi := r2.PermStart; gi < r2.PermEnd; gi++ {
		if !f.PermutationGate(gi, 2) {
			t.Fatalf("gate %d in perm range is not a round-2 move", gi)
		}
	}
	if got := len(f.Outputs()); got != 4 {
		t.Errorf("outputs = %d, want 4", got)
	}
	// One barrier between the rounds.
	if got := f.Circuit.CountKind(circuit.KindBarrier); got != 1 {
		t.Errorf("barriers = %d, want 1", got)
	}
}

func TestWiringCorrelationConstraint(t *testing.T) {
	// Each consuming module must draw every input from a distinct
	// previous-round module (§II.G).
	for _, p := range []Params{
		{K: 2, Levels: 2},
		{K: 3, Levels: 2},
		{K: 2, Levels: 3},
	} {
		f := mustBuild(t, p)
		perConsumer := make(map[int]map[int]bool)
		for _, w := range f.Wires {
			if perConsumer[w.ToModule] == nil {
				perConsumer[w.ToModule] = make(map[int]bool)
			}
			if perConsumer[w.ToModule][w.FromModule] {
				t.Fatalf("K=%d L=%d: module %d receives two states from module %d",
					p.K, p.Levels, w.ToModule, w.FromModule)
			}
			perConsumer[w.ToModule][w.FromModule] = true
		}
		for mi, srcs := range perConsumer {
			if len(srcs) != 3*p.K+8 {
				t.Errorf("module %d has %d distinct sources, want %d", mi, len(srcs), 3*p.K+8)
			}
		}
	}
}

func TestWiringIsBijective(t *testing.T) {
	f := mustBuild(t, Params{K: 3, Levels: 2})
	// Every (module, port) pair of round 1 feeds exactly one wire.
	used := make(map[[2]int]int)
	for _, w := range f.Wires {
		used[[2]int{w.FromModule, w.FromPort}]++
	}
	for _, mi := range f.Rounds[0].Modules {
		for port := 0; port < f.Params.K; port++ {
			if used[[2]int{mi, port}] != 1 {
				t.Errorf("port (%d,%d) used %d times", mi, port, used[[2]int{mi, port}])
			}
		}
	}
	// Wire gate controls match sources.
	for _, w := range f.Wires {
		src := f.Modules[w.FromModule].Out[w.FromPort]
		if f.Circuit.Gates[w.GateIdx].Control != src {
			t.Errorf("wire %+v: gate control %d != source %d",
				w, f.Circuit.Gates[w.GateIdx].Control, src)
		}
	}
}

func TestReuseReducesQubits(t *testing.T) {
	nr := mustBuild(t, Params{K: 4, Levels: 2})
	r := mustBuild(t, Params{K: 4, Levels: 2, Reuse: true})
	if r.Circuit.NumQubits >= nr.Circuit.NumQubits {
		t.Errorf("reuse should shrink qubit count: reuse %d, no-reuse %d",
			r.Circuit.NumQubits, nr.Circuit.NumQubits)
	}
	// With reuse, round 2 should allocate no fresh qubits at all for K=4:
	// the freed pool (raw+anc of 20 modules) easily covers 4 modules.
	if len(r.Rounds[1].Fresh) != 0 {
		t.Errorf("round 2 allocated %d fresh qubits despite reuse", len(r.Rounds[1].Fresh))
	}
	if err := r.Circuit.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReuseNeverStealsLiveOutputs(t *testing.T) {
	f := mustBuild(t, Params{K: 2, Levels: 2, Reuse: true})
	// Round-1 outputs are live into round 2 (they are round 2's raw
	// inputs); none may appear among round 2's anc/out registers.
	live := make(map[circuit.Qubit]bool)
	for _, mi := range f.Rounds[0].Modules {
		for _, q := range f.Modules[mi].Out {
			live[q] = true
		}
	}
	for _, mi := range f.Rounds[1].Modules {
		m := f.Modules[mi]
		regs := append(append(append([]circuit.Qubit{}, m.Raw...), m.Anc...), m.Out...)
		for _, q := range regs {
			if live[q] {
				t.Fatalf("round 2 module %d reuses live output qubit %d", mi, q)
			}
		}
	}
}

func TestReuseRegistersAreDisjointWithinRound(t *testing.T) {
	f := mustBuild(t, Params{K: 3, Levels: 2, Reuse: true})
	seen := make(map[circuit.Qubit]int)
	for _, mi := range f.Rounds[1].Modules {
		m := f.Modules[mi]
		for _, q := range append(append(append([]circuit.Qubit{}, m.Raw...), m.Anc...), m.Out...) {
			if prev, ok := seen[q]; ok {
				t.Fatalf("qubit %d assigned to modules %d and %d", q, prev, mi)
			}
			seen[q] = mi
		}
	}
}

func TestBarriersOptional(t *testing.T) {
	f := mustBuild(t, Params{K: 2, Levels: 2, Barriers: false})
	if got := f.Circuit.CountKind(circuit.KindBarrier); got != 0 {
		t.Errorf("barriers = %d, want 0", got)
	}
	f3 := mustBuild(t, Params{K: 2, Levels: 3, Barriers: true})
	if got := f3.Circuit.CountKind(circuit.KindBarrier); got != 2 {
		t.Errorf("3-level factory barriers = %d, want 2", got)
	}
}

func TestRoundGateRangesAreDisjointAndTagged(t *testing.T) {
	f := mustBuild(t, Params{K: 2, Levels: 2, Barriers: true})
	for ri, r := range f.Rounds {
		if r.GateStart >= r.GateEnd {
			t.Fatalf("round %d empty range", ri)
		}
		for gi := r.GateStart; gi < r.GateEnd; gi++ {
			if got := f.Circuit.Gates[gi].Round; got != r.Index {
				t.Errorf("gate %d tagged round %d, want %d", gi, got, r.Index)
			}
		}
	}
	if f.Rounds[0].GateEnd > f.Rounds[1].GateStart {
		t.Error("round ranges overlap")
	}
}

func TestPermutationMovesTargetSlots(t *testing.T) {
	f := mustBuild(t, Params{K: 2, Levels: 2})
	for _, w := range f.Wires {
		g := f.Circuit.Gates[w.GateIdx]
		if g.Kind != circuit.KindMove {
			t.Fatalf("wire gate %d is %v, want move", w.GateIdx, g.Kind)
		}
		if g.Dest != f.Modules[w.ToModule].Raw[w.ToSlot] {
			t.Fatalf("wire %+v: move dest %d != slot %d", w, g.Dest, f.Modules[w.ToModule].Raw[w.ToSlot])
		}
		if g.Control != f.Modules[w.FromModule].Out[w.FromPort] {
			t.Fatalf("wire %+v: move src mismatch", w)
		}
	}
}

func TestModuleGateRangesCoverTagging(t *testing.T) {
	f := mustBuild(t, Params{K: 2, Levels: 2})
	for _, m := range f.Modules {
		if m.GateEnd-m.GateStart != GatesPerModule(f.Params.K) {
			t.Fatalf("module %d has %d gates, want %d",
				m.Index, m.GateEnd-m.GateStart, GatesPerModule(f.Params.K))
		}
		for gi := m.GateStart; gi < m.GateEnd; gi++ {
			if f.Circuit.Gates[gi].Module != m.Index {
				t.Fatalf("gate %d tagged module %d, want %d",
					gi, f.Circuit.Gates[gi].Module, m.Index)
			}
		}
	}
}

func TestReassignPorts(t *testing.T) {
	f := mustBuild(t, Params{K: 3, Levels: 2})
	pm := f.Rounds[0].Modules[0]
	orig := append([]circuit.Qubit{}, f.Modules[pm].Out...)
	if err := f.ReassignPorts(pm, []int{2, 0, 1}); err != nil {
		t.Fatal(err)
	}
	// Controls updated and still a bijection over the module's outputs.
	used := make(map[circuit.Qubit]bool)
	for _, w := range f.Wires {
		if w.FromModule != pm {
			continue
		}
		src := f.Circuit.Gates[w.GateIdx].Control
		if used[src] {
			t.Fatalf("output %d doubly consumed after reassignment", src)
		}
		used[src] = true
		if src != orig[w.FromPort] {
			t.Errorf("wire port %d control %d, want %d", w.FromPort, src, orig[w.FromPort])
		}
	}
	if len(used) != 3 {
		t.Errorf("only %d distinct sources after reassignment", len(used))
	}
	if err := f.Circuit.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReassignPortsRejectsBadInput(t *testing.T) {
	f := mustBuild(t, Params{K: 2, Levels: 2})
	if err := f.ReassignPorts(-1, []int{0, 1}); err == nil {
		t.Error("negative module index should fail")
	}
	if err := f.ReassignPorts(0, []int{0}); err == nil {
		t.Error("short perm should fail")
	}
	if err := f.ReassignPorts(0, []int{0, 0}); err == nil {
		t.Error("non-permutation should fail")
	}
}

func TestWiresIntoRound(t *testing.T) {
	f := mustBuild(t, Params{K: 2, Levels: 3})
	w2 := f.WiresIntoRound(2)
	w3 := f.WiresIntoRound(3)
	if len(w2) == 0 || len(w3) == 0 {
		t.Fatal("expected wires into rounds 2 and 3")
	}
	if len(w2)+len(w3) != len(f.Wires) {
		t.Errorf("wire partition mismatch: %d + %d != %d", len(w2), len(w3), len(f.Wires))
	}
	if len(f.WiresIntoRound(1)) != 0 {
		t.Error("round 1 should have no incoming wires")
	}
}

// Property: for random small parameters the generated circuit validates
// and the qubit count matches the closed form.
func TestBuildClosedFormQubitCount(t *testing.T) {
	f := func(kSeed, lSeed uint8) bool {
		k := 1 + int(kSeed)%4
		l := 1 + int(lSeed)%2
		p := Params{K: k, Levels: l}
		fac, err := Build(p)
		if err != nil {
			return false
		}
		want := p.TotalModules() * (5*k + 13)
		return fac.Circuit.NumQubits == want && fac.Circuit.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCustomAssigner(t *testing.T) {
	var calls int
	p := Params{K: 2, Levels: 2, Reuse: true,
		Assigner: func(round, im, need int, pool []circuit.Qubit) []circuit.Qubit {
			calls++
			// Reverse-order policy.
			out := make([]circuit.Qubit, 0, need)
			for i := len(pool) - 1 - im*need; i >= 0 && len(out) < need; i-- {
				out = append(out, pool[i])
			}
			return out
		}}
	f := mustBuild(t, p)
	if calls == 0 {
		t.Fatal("custom assigner never consulted")
	}
	if err := f.Circuit.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(f.Rounds[1].Fresh) != 0 {
		t.Errorf("custom assigner should cover all reuse needs, %d fresh", len(f.Rounds[1].Fresh))
	}
}

// Property: for arbitrary small parameters, applying hops to every wire
// preserves circuit validity, gate-range tagging and the wiring bijection.
func TestApplyHopsPreservesStructure(t *testing.T) {
	f := func(kSeed uint8) bool {
		k := 2 + int(kSeed)%3
		fac, err := Build(Params{K: k, Levels: 2, Barriers: true})
		if err != nil {
			return false
		}
		// Hop every wire through a distinct dead round-1 raw qubit.
		hops := make(map[int]circuit.Qubit)
		pool := fac.Modules[fac.Rounds[0].Modules[0]].Raw
		next := 0
		for wi := range fac.Wires {
			if next >= len(pool) {
				break
			}
			hops[wi] = pool[next]
			next++
		}
		before := len(fac.Circuit.Gates)
		if err := ApplyHops(fac, hops); err != nil {
			return false
		}
		if len(fac.Circuit.Gates) != before+len(hops) {
			return false
		}
		// Wires still point at moves sourced from their ports.
		for _, w := range fac.Wires {
			g := fac.Circuit.Gates[w.GateIdx]
			if g.Kind != circuit.KindMove {
				return false
			}
			if g.Control != fac.Modules[w.FromModule].Out[w.FromPort] {
				return false
			}
		}
		// Module gate ranges still hold their own gates.
		for _, m := range fac.Modules {
			if m.GateEnd-m.GateStart != GatesPerModule(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}
