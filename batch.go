package magicstate

import (
	"context"

	"magicstate/internal/core"
	"magicstate/internal/mesh"
	"magicstate/internal/sweep"
)

// BatchPoint is one grid point of a batch optimization: a factory spec
// plus the per-point options Optimize would take. The zero-value Options
// picks the same defaults as Optimize (hierarchical stitching for
// multi-level factories, the linear mapping otherwise).
type BatchPoint struct {
	// Spec is the factory to build, map and simulate.
	Spec FactorySpec
	// Opts carries the per-point options Optimize would take.
	Opts Options
}

// BatchOptions tunes batch execution as a whole.
type BatchOptions struct {
	// Parallelism bounds the worker pool (<= 0 means one worker per CPU;
	// 1 evaluates points serially). Every pipeline stage is
	// deterministic per point, so the setting changes wall-clock time
	// only, never results.
	Parallelism int
	// Progress, when set, observes completion: it is called once per
	// finished point with the running done count and the batch total,
	// serialized by the engine.
	Progress func(done, total int)
	// Context cancels the batch between points (nil means Background).
	Context context.Context
	// Checkpoint, when non-empty, backs the batch with a durable result
	// store in that directory (created or crash-recovered on open):
	// points computed by any earlier run against the same directory are
	// served from disk, and points this batch computes are persisted for
	// the next one. A killed sweep restarted with the same Checkpoint
	// therefore recomputes only what it had not yet finished. One writer
	// per directory at a time: a second concurrent open of the same
	// directory in this process fails, and concurrent writers from
	// different processes are the caller's to prevent. Callers issuing
	// many batches should hold one Batcher instead of paying the store
	// open/close per call.
	Checkpoint string
}

// OptimizeBatch builds, maps and simulates every point of a sweep grid
// on a concurrent worker pool, returning results in input order —
// results[i] answers points[i]. Identical points are evaluated once and
// share a result. The first failing point (lowest index) aborts the
// batch, matching what a serial loop over Optimize would report.
//
// With BatchOptions.Checkpoint set, the batch additionally reads and
// writes a durable result store, so repeated points are computed once
// across processes, not just within one (see Batcher).
//
// OptimizeBatch is how sweep-style workloads — the paper's capacity x
// strategy evaluation grids, parameter studies, seed ensembles — scale
// with cores without the caller managing goroutines:
//
//	points := []magicstate.BatchPoint{
//		{Spec: magicstate.FactorySpec{Capacity: 16, Levels: 2, Reuse: true}},
//		{Spec: magicstate.FactorySpec{Capacity: 36, Levels: 2, Reuse: true}},
//	}
//	results, err := magicstate.OptimizeBatch(points, magicstate.BatchOptions{})
func OptimizeBatch(points []BatchPoint, opts BatchOptions) ([]*Result, error) {
	b, err := NewBatcher(BatcherOptions{Parallelism: opts.Parallelism, Checkpoint: opts.Checkpoint})
	if err != nil {
		return nil, err
	}
	defer b.Close()
	return b.OptimizeBatch(points, opts)
}

// optimizeOn is Optimize routed through a sweep engine's memo cache.
func optimizeOn(eng *sweep.Engine, spec FactorySpec, opts Options) (*Result, error) {
	return optimizeOnContext(context.Background(), eng, spec, opts)
}

// optimizeOnContext is optimizeOn with cooperative cancellation: ctx is
// checked at pipeline stage boundaries, so abandoned work stops costing
// compute. Context errors are never memoized (see sweep.RunOneContext).
func optimizeOnContext(ctx context.Context, eng *sweep.Engine, spec FactorySpec, opts Options) (*Result, error) {
	cfg, err := optimizeConfig(spec, opts)
	if err != nil {
		return nil, err
	}
	rep, err := eng.RunOneContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return resultFromReport(rep, opts)
}

// optimizeConfig lowers a (spec, opts) pair to the core pipeline config
// Optimize runs.
func optimizeConfig(spec FactorySpec, opts Options) (core.Config, error) {
	if opts.Workload != "" {
		// A frontend workload fixes the circuit itself; the factory spec
		// is not consulted (and need not validate). The stitching default
		// never applies — it requires the built-in factory's rounds.
		strat := core.Strategy(opts.Strategy)
		if !opts.strategySet && opts.Strategy == RandomMapping {
			strat = core.StrategyLinear
		}
		return core.Config{
			NoBarriers:     opts.DisableBarriers,
			Strategy:       strat,
			Seed:           opts.Seed,
			Style:          mesh.InteractionStyle(opts.Style),
			Distance:       opts.Distance,
			RecordPaths:    opts.Trace,
			Workload:       opts.Workload,
			WorkloadSource: opts.WorkloadSource,
			Defects:        opts.Defects,
		}, nil
	}
	p, err := spec.Params()
	if err != nil {
		return core.Config{}, err
	}
	strat := core.Strategy(opts.Strategy)
	if !opts.strategySet && opts.Strategy == RandomMapping {
		if spec.Levels >= 2 {
			strat = core.StrategyStitch
		} else {
			strat = core.StrategyLinear
		}
	}
	return core.Config{
		K:           p.K,
		Levels:      p.Levels,
		Reuse:       spec.Reuse,
		NoBarriers:  opts.DisableBarriers,
		Strategy:    strat,
		Seed:        opts.Seed,
		Style:       mesh.InteractionStyle(opts.Style),
		Distance:    opts.Distance,
		RecordPaths: opts.Trace,
		Defects:     opts.Defects,
	}, nil
}
