package core

import (
	"math/rand"

	"magicstate/internal/graph"
	"magicstate/internal/layout"
	"magicstate/internal/partition"
)

// partitionEmbed performs the global recursive-bisection grid embedding
// used by the GP strategy.
func partitionEmbed(g *graph.Graph, seed int64) *layout.Placement {
	return partition.EmbedSquare(g, rand.New(rand.NewSource(seed)))
}
