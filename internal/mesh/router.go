package mesh

// router finds conflict-free channel paths on a lattice with time-stamped
// cell reservations. busyUntil[cell] holds the cycle at which the cell
// becomes free; a cell is usable at time t when busyUntil[cell] <= t.
//
// Routing is confined to the bounding box of the braid's endpoints plus a
// margin (the box field), reflecting the straight/L-shaped braid paths of
// the paper's toolchain [1]: a braid does not wander across the machine to
// dodge congestion, so crossing interaction edges genuinely serialize —
// the behaviour behind the paper's Fig. 6 crossing/latency correlation.
// Setting the box to the whole grid recovers fully adaptive routing.
type router struct {
	lat       *Lattice
	busyUntil []int
	box       cellBox
	// BFS scratch, reused across calls; visited stamps avoid clearing.
	stamp   int
	visited []int
	parent  []int
	queue   []int
	nbuf    []int
}

// cellBox is an inclusive cell-coordinate rectangle.
type cellBox struct {
	minX, minY, maxX, maxY int
}

func (b cellBox) contains(cx, cy int) bool {
	return cx >= b.minX && cx <= b.maxX && cy >= b.minY && cy <= b.maxY
}

// boxAround returns the bounding box of the given cells expanded by margin,
// clamped to the lattice.
func (l *Lattice) boxAround(cells []int, margin int) cellBox {
	b := cellBox{minX: 1 << 30, minY: 1 << 30, maxX: -1, maxY: -1}
	for _, ci := range cells {
		cx, cy := ci%l.CW, ci/l.CW
		if cx < b.minX {
			b.minX = cx
		}
		if cy < b.minY {
			b.minY = cy
		}
		if cx > b.maxX {
			b.maxX = cx
		}
		if cy > b.maxY {
			b.maxY = cy
		}
	}
	b.minX -= margin
	b.minY -= margin
	b.maxX += margin
	b.maxY += margin
	if b.minX < 0 {
		b.minX = 0
	}
	if b.minY < 0 {
		b.minY = 0
	}
	if b.maxX >= l.CW {
		b.maxX = l.CW - 1
	}
	if b.maxY >= l.CH {
		b.maxY = l.CH - 1
	}
	return b
}

// wholeGrid returns a box covering every cell.
func (l *Lattice) wholeGrid() cellBox {
	return cellBox{minX: 0, minY: 0, maxX: l.CW - 1, maxY: l.CH - 1}
}

func newRouter(lat *Lattice) *router {
	n := lat.Cells()
	return &router{
		lat:       lat,
		busyUntil: make([]int, n),
		box:       lat.wholeGrid(),
		visited:   make([]int, n),
		parent:    make([]int, n),
	}
}

func (r *router) free(ci, t int) bool {
	if r.lat.isTile[ci] || r.busyUntil[ci] > t {
		return false
	}
	return r.box.contains(ci%r.lat.CW, ci/r.lat.CW)
}

// route finds a shortest path of free channel cells at time t connecting
// any cell of srcPorts to any cell of dstPorts (inclusive of both port
// cells). It returns nil when no conflict-free path exists.
func (r *router) route(srcPorts, dstPorts []int, t int) []int {
	r.stamp++
	r.queue = r.queue[:0]
	goal := make(map[int]bool, len(dstPorts))
	for _, c := range dstPorts {
		if r.free(c, t) {
			goal[c] = true
		}
	}
	if len(goal) == 0 {
		return nil
	}
	for _, c := range srcPorts {
		if !r.free(c, t) || r.visited[c] == r.stamp {
			continue
		}
		r.visited[c] = r.stamp
		r.parent[c] = -1
		if goal[c] {
			return []int{c}
		}
		r.queue = append(r.queue, c)
	}
	for head := 0; head < len(r.queue); head++ {
		cur := r.queue[head]
		r.nbuf = r.nbuf[:0]
		r.nbuf = r.lat.NeighborCells(cur, r.nbuf)
		for _, nb := range r.nbuf {
			if r.visited[nb] == r.stamp || !r.free(nb, t) {
				continue
			}
			r.visited[nb] = r.stamp
			r.parent[nb] = cur
			if goal[nb] {
				return r.walkBack(nb)
			}
			r.queue = append(r.queue, nb)
		}
	}
	return nil
}

func (r *router) walkBack(end int) []int {
	var path []int
	for c := end; c != -1; c = r.parent[c] {
		path = append(path, c)
	}
	return path
}

// routeTree connects all port groups with a connected set of free channel
// cells at time t (a greedy Steiner tree: start from the first group,
// repeatedly BFS from the current tree to the nearest unconnected group).
// Returns nil when any group cannot be reached.
func (r *router) routeTree(groups [][]int, t int) []int {
	if len(groups) == 0 {
		return nil
	}
	if len(groups) == 1 {
		// Claim a single port cell so even degenerate "trees" occupy space.
		for _, c := range groups[0] {
			if r.free(c, t) {
				return []int{c}
			}
		}
		return nil
	}
	tree := make([]int, 0, 16)
	inTree := make(map[int]bool)
	connected := make([]bool, len(groups))
	// Seed with the first reachable path between group 0 and any other
	// group; then grow.
	first := r.route(groups[0], groups[1], t)
	if first == nil {
		return nil
	}
	for _, c := range first {
		if !inTree[c] {
			inTree[c] = true
			tree = append(tree, c)
		}
	}
	connected[0], connected[1] = true, true
	for {
		remaining := -1
		for gi, done := range connected {
			if !done {
				remaining = gi
				break
			}
		}
		if remaining == -1 {
			return tree
		}
		// BFS from the whole tree to the nearest cell of any unconnected
		// group; claim the path for that group.
		path := r.routeFromSet(tree, groups, connected, t)
		if path == nil {
			return nil
		}
		gi := path.group
		for _, c := range path.cells {
			if !inTree[c] {
				inTree[c] = true
				tree = append(tree, c)
			}
		}
		connected[gi] = true
	}
}

type treePath struct {
	cells []int
	group int
}

// routeFromSet BFS-expands from every tree cell simultaneously and stops
// at the first free port cell belonging to an unconnected group.
func (r *router) routeFromSet(tree []int, groups [][]int, connected []bool, t int) *treePath {
	r.stamp++
	r.queue = r.queue[:0]
	goalGroup := make(map[int]int)
	for gi, done := range connected {
		if done {
			continue
		}
		for _, c := range groups[gi] {
			if r.free(c, t) {
				goalGroup[c] = gi
			}
		}
	}
	if len(goalGroup) == 0 {
		return nil
	}
	for _, c := range tree {
		if r.visited[c] == r.stamp {
			continue
		}
		r.visited[c] = r.stamp
		r.parent[c] = -1
		if gi, ok := goalGroup[c]; ok {
			return &treePath{cells: []int{c}, group: gi}
		}
		r.queue = append(r.queue, c)
	}
	for head := 0; head < len(r.queue); head++ {
		cur := r.queue[head]
		r.nbuf = r.nbuf[:0]
		r.nbuf = r.lat.NeighborCells(cur, r.nbuf)
		for _, nb := range r.nbuf {
			if r.visited[nb] == r.stamp || !r.free(nb, t) {
				continue
			}
			r.visited[nb] = r.stamp
			r.parent[nb] = cur
			if gi, ok := goalGroup[nb]; ok {
				return &treePath{cells: r.walkBack(nb), group: gi}
			}
			r.queue = append(r.queue, nb)
		}
	}
	return nil
}

// reserve marks cells busy until time until.
func (r *router) reserve(cells []int, until int) {
	for _, c := range cells {
		r.busyUntil[c] = until
	}
}
