package mesh

import "magicstate/internal/layout"

// Lattice is the routing-cell grid derived from a tile grid: tile (x, y)
// occupies cell (2x+1, 2y+1); every other cell is a routing channel.
type Lattice struct {
	TileW, TileH int // tile grid dimensions
	CW, CH       int // cell grid dimensions: 2W+1 x 2H+1
	isTile       []bool
	// dead marks cells inside a fabrication-defect region: the cell of
	// each defective tile plus its four adjacent channel cells. Dead
	// cells are never routable and defective tiles expose no ports. nil
	// on a defect-free lattice, so the common case allocates nothing.
	dead []bool
	// ports[y*TileW+x] lists the channel cells adjacent to tile (x, y),
	// all carved from one backing array. The simulator reads these slices
	// on every braid start, so they are precomputed once per lattice and
	// must be treated as read-only. A defective tile has an empty port
	// list, which is what excludes it from braid port assignment.
	ports [][]int
}

// NewLattice builds the lattice for a defect-free W x H tile grid.
func NewLattice(tileW, tileH int) *Lattice {
	return NewLatticeDefective(tileW, tileH, nil)
}

// NewLatticeDefective builds the lattice for a W x H tile grid with the
// given defective tiles. A defective tile kills its own cell and its
// four adjacent channel cells: the router must route around the dead
// region, and neighboring healthy tiles lose the ports they shared with
// it. Defect entries outside the grid are ignored.
func NewLatticeDefective(tileW, tileH int, dm *layout.DefectMap) *Lattice {
	l := &Lattice{TileW: tileW, TileH: tileH, CW: 2*tileW + 1, CH: 2*tileH + 1}
	l.isTile = make([]bool, l.CW*l.CH)
	for y := 0; y < tileH; y++ {
		for x := 0; x < tileW; x++ {
			l.isTile[l.CellIndex(2*x+1, 2*y+1)] = true
		}
	}
	var nbuf [4]int
	if dm.Len() > 0 {
		l.dead = make([]bool, l.CW*l.CH)
		for _, pt := range dm.Tiles() {
			if pt.X >= tileW || pt.Y >= tileH {
				continue
			}
			tc := l.TileCell(pt)
			l.dead[tc] = true
			for _, c := range l.NeighborCells(tc, nbuf[:0]) {
				l.dead[c] = true
			}
		}
	}
	l.ports = make([][]int, tileW*tileH)
	backing := make([]int, 0, 4*tileW*tileH)
	for y := 0; y < tileH; y++ {
		for x := 0; x < tileW; x++ {
			tc := l.CellIndex(2*x+1, 2*y+1)
			if l.dead != nil && l.dead[tc] {
				l.ports[y*tileW+x] = nil
				continue
			}
			start := len(backing)
			for _, c := range l.NeighborCells(tc, nbuf[:0]) {
				if !l.isTile[c] && (l.dead == nil || !l.dead[c]) {
					backing = append(backing, c)
				}
			}
			l.ports[y*tileW+x] = backing[start:len(backing):len(backing)]
		}
	}
	return l
}

// Dead reports whether cell index ci lies in a defect region.
func (l *Lattice) Dead(ci int) bool { return l.dead != nil && l.dead[ci] }

// PortsOf returns the cached channel cells adjacent to tile pt. The
// returned slice is shared and must not be modified; use TilePorts for a
// caller-owned copy.
func (l *Lattice) PortsOf(pt layout.Point) []int {
	return l.ports[pt.Y*l.TileW+pt.X]
}

// Cells returns the total cell count.
func (l *Lattice) Cells() int { return l.CW * l.CH }

// CellIndex returns the dense index of cell (cx, cy).
func (l *Lattice) CellIndex(cx, cy int) int { return cy*l.CW + cx }

// TileCell returns the cell index of tile pt.
func (l *Lattice) TileCell(pt layout.Point) int {
	return l.CellIndex(2*pt.X+1, 2*pt.Y+1)
}

// IsTile reports whether cell index ci is a logical qubit tile.
func (l *Lattice) IsTile(ci int) bool { return l.isTile[ci] }

// NeighborCells appends the 4-neighborhood of cell ci to buf and returns
// it. Out-of-grid neighbors are omitted.
func (l *Lattice) NeighborCells(ci int, buf []int) []int {
	cx, cy := ci%l.CW, ci/l.CW
	if cx > 0 {
		buf = append(buf, ci-1)
	}
	if cx < l.CW-1 {
		buf = append(buf, ci+1)
	}
	if cy > 0 {
		buf = append(buf, ci-l.CW)
	}
	if cy < l.CH-1 {
		buf = append(buf, ci+l.CW)
	}
	return buf
}

// TilePorts appends the channel cells adjacent to a tile (its braid entry
// points) to buf and returns it.
func (l *Lattice) TilePorts(pt layout.Point, buf []int) []int {
	return append(buf, l.PortsOf(pt)...)
}
