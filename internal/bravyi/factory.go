package bravyi

import (
	"fmt"
	"sort"

	"magicstate/internal/circuit"
)

// Round records one block-code level's extent within the factory circuit.
// Rounds after the first begin with a permutation phase of Move braids
// that relocate the previous round's outputs into this round's input slot
// tiles (the inter-round permutation of §II.G / Fig. 2), followed by the
// round's module bodies.
type Round struct {
	Index   int   // 1-based
	Modules []int // global module indices
	// PermStart/PermEnd delimit the permutation Move gates feeding this
	// round (empty for round 1).
	PermStart, PermEnd int
	// GateStart/GateEnd delimit the whole round including the permutation
	// phase, excluding the trailing barrier.
	GateStart, GateEnd int
	// Fresh lists qubit ids first allocated in this round; with reuse the
	// later rounds' lists shrink because renamed qubits come from pools.
	Fresh []circuit.Qubit
}

// Wire is one inter-round permutation edge: output port FromPort of module
// FromModule feeds input slot ToSlot of module ToModule. GateIdx is the
// Move gate realizing the relocation.
type Wire struct {
	FromModule, FromPort int
	ToModule, ToSlot     int
	GateIdx              int
}

// Factory is a fully generated multi-level block-code distillation circuit
// plus its structural metadata.
type Factory struct {
	Params  Params
	Circuit *circuit.Circuit
	Modules []Module
	Rounds  []Round
	// Wires holds every inter-round permutation edge, grouped by the
	// consuming round in ascending order.
	Wires []Wire
}

// Build generates the factory circuit for p. Every module occupies the
// full 5K+13 qubit footprint (3K+8 input slots, K+5 ancillas, K outputs).
// Round 1's input slots hold freshly injected raw states; later rounds'
// slots are filled by an explicit permutation phase of Move braids from
// the previous round's outputs, wired under the correlation constraint of
// §II.G: each module receives at most one state from any previous-round
// module. With p.Reuse, later rounds rename measured/consumed qubits
// (sharing-after-measurement, §V.B) instead of allocating fresh tiles.
func Build(p Params) (*Factory, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	k := p.K
	f := &Factory{Params: p, Circuit: circuit.New(0)}
	c := f.Circuit

	// freed accumulates measured/consumed qubit ids available for reuse.
	var freed []circuit.Qubit
	freedSet := make(map[circuit.Qubit]bool)
	free := func(q circuit.Qubit) {
		if !freedSet[q] {
			freedSet[q] = true
			freed = append(freed, q)
		}
	}
	assigner := p.Assigner
	if assigner == nil {
		assigner = contiguousAssigner
	}

	// Qubits are left unnamed: a factory allocates thousands of them, ids
	// are self-describing under the documented allocation order
	// (module-major, raw/anc/out register-minor), and naming each one cost
	// a fmt.Sprintf allocation that dominated generation profiles.
	alloc := func(round, inRound, n int, fresh *[]circuit.Qubit) []circuit.Qubit {
		qs := make([]circuit.Qubit, 0, n)
		if p.Reuse && round > 1 {
			sort.Slice(freed, func(i, j int) bool { return freed[i] < freed[j] })
			reused := assigner(round, inRound, n, freed)
			for _, q := range reused {
				if len(qs) == n {
					break
				}
				if freedSet[q] {
					delete(freedSet, q)
					qs = append(qs, q)
				}
			}
			if len(qs) > 0 {
				still := freed[:0]
				for _, q := range freed {
					if freedSet[q] {
						still = append(still, q)
					}
				}
				freed = still
			}
		}
		for len(qs) < n {
			q := c.AddQubit("")
			qs = append(qs, q)
			*fresh = append(*fresh, q)
		}
		return qs
	}

	groupSize := 3*k + 8 // previous-round modules per group feeding k next modules
	prevOuts := [][]circuit.Qubit(nil)
	prevModules := []int(nil)
	for r := 1; r <= p.Levels; r++ {
		round := Round{Index: r, GateStart: len(c.Gates)}
		nMods := p.ModulesInRound(r)

		// Allocate every module's registers first so the permutation
		// phase can target the slots.
		base := len(f.Modules)
		for im := 0; im < nMods; im++ {
			m := Module{Round: r, Index: base + im, InRound: im}
			if r == 1 {
				m.Group = im / groupSize
			} else {
				m.Group = im / k
			}
			// Slots reuse first (they free earliest next round), then
			// ancillas, then outputs.
			m.Raw = alloc(r, im, 3*k+8, &round.Fresh)
			m.Anc = alloc(r, im, k+5, &round.Fresh)
			m.Out = alloc(r, im, k, &round.Fresh)
			f.Modules = append(f.Modules, m)
			round.Modules = append(round.Modules, m.Index)
		}

		// Permutation phase: move previous-round outputs into this
		// round's input slots. Within group g, previous module j's port i
		// feeds next module i's slot j.
		round.PermStart = len(c.Gates)
		if r > 1 {
			for im := 0; im < nMods; im++ {
				m := &f.Modules[base+im]
				g := im / k
				pi := im % k
				for s := 0; s < 3*k+8; s++ {
					prevInRound := g*groupSize + s
					src := prevOuts[prevInRound][pi]
					gi := len(c.Gates)
					c.Move(src, m.Raw[s])
					c.Gates[gi].Round = r
					c.Gates[gi].Module = m.Index
					f.Wires = append(f.Wires, Wire{
						FromModule: prevModules[prevInRound],
						FromPort:   pi,
						ToModule:   m.Index,
						ToSlot:     s,
						GateIdx:    gi,
					})
				}
			}
		}
		round.PermEnd = len(c.Gates)

		// Module bodies.
		var roundFreed []circuit.Qubit
		var thisOuts [][]circuit.Qubit
		var thisModules []int
		for im := 0; im < nMods; im++ {
			m := &f.Modules[base+im]
			emitModule(c, m)
			thisOuts = append(thisOuts, m.Out)
			thisModules = append(thisModules, m.Index)
			// Slot states are consumed by injection and ancillas measured
			// by MeasX: both become reusable in the next round.
			roundFreed = append(roundFreed, m.Raw...)
			roundFreed = append(roundFreed, m.Anc...)
		}
		round.GateEnd = len(c.Gates)
		f.Rounds = append(f.Rounds, round)
		for _, q := range roundFreed {
			free(q)
		}

		if p.Barriers && r < p.Levels {
			all := make([]circuit.Qubit, c.NumQubits)
			for i := range all {
				all[i] = circuit.Qubit(i)
			}
			c.Barrier(all)
			c.Gates[len(c.Gates)-1].Round = r
		}
		prevOuts = thisOuts
		prevModules = thisModules
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("bravyi: generated circuit invalid: %w", err)
	}
	return f, nil
}

// contiguousAssigner is the default reuse policy: each allocation takes
// the head of the remaining (sorted) pool. Build removes granted qubits
// from the pool, so consecutive modules receive consecutive id runs,
// which keeps each reused region spatially coherent under module-major
// placements.
func contiguousAssigner(round, moduleInRound, need int, pool []circuit.Qubit) []circuit.Qubit {
	if need > len(pool) {
		need = len(pool)
	}
	return pool[:need]
}

// Outputs returns the final round's output qubits, the factory's product.
func (f *Factory) Outputs() []circuit.Qubit {
	last := f.Rounds[len(f.Rounds)-1]
	var outs []circuit.Qubit
	for _, mi := range last.Modules {
		outs = append(outs, f.Modules[mi].Out...)
	}
	return outs
}

// WiresIntoRound returns the permutation wires consumed by round r
// (2-based; round 1 has none).
func (f *Factory) WiresIntoRound(r int) []Wire {
	var ws []Wire
	for _, w := range f.Wires {
		if f.Modules[w.ToModule].Round == r {
			ws = append(ws, w)
		}
	}
	return ws
}

// ReassignPorts applies a permutation of module pm's output ports: every
// wire previously sourced from port j is re-sourced from port perm[j].
// The permutation Move gates' sources are rewritten in place; slots and
// module bodies are untouched (outputs within a module are
// interchangeable, §VII.B.2). perm must be a permutation of [0,K).
func (f *Factory) ReassignPorts(pm int, perm []int) error {
	k := f.Params.K
	if pm < 0 || pm >= len(f.Modules) {
		return fmt.Errorf("bravyi: module %d out of range", pm)
	}
	if len(perm) != k {
		return fmt.Errorf("bravyi: perm length %d, want %d", len(perm), k)
	}
	seen := make([]bool, k)
	for _, j := range perm {
		if j < 0 || j >= k || seen[j] {
			return fmt.Errorf("bravyi: perm %v is not a permutation of [0,%d)", perm, k)
		}
		seen[j] = true
	}
	mod := &f.Modules[pm]
	for wi := range f.Wires {
		w := &f.Wires[wi]
		if w.FromModule != pm {
			continue
		}
		newPort := perm[w.FromPort]
		w.FromPort = newPort
		f.Circuit.Gates[w.GateIdx].Control = mod.Out[newPort]
	}
	return nil
}

// PermutationGates reports whether gate gi belongs to round r's
// permutation phase (a Move braid feeding round r).
func (f *Factory) PermutationGate(gi, r int) bool {
	g := &f.Circuit.Gates[gi]
	return g.Kind == circuit.KindMove && g.Round == r
}
