package layout

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"magicstate/internal/graph"
)

// randomFixture builds a random graph and a random placement of it with
// headroom for translation.
func randomFixture(seed int64) (*graph.Graph, *Placement, int, int) {
	rng := rand.New(rand.NewSource(seed))
	n := rng.Intn(10) + 4
	g := graph.New(n)
	for i := 0; i < 2*n; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			g.AddEdge(a, b, 1)
		}
	}
	side := n + 4
	p := NewPlacement(n, 2*side, 2*side)
	tiles := rng.Perm(side * side)
	for q := 0; q < n; q++ {
		p.Set(q, Point{X: tiles[q] % side, Y: tiles[q] / side})
	}
	return g, p, side, side
}

// Property: all three congestion metrics are invariant under translating
// the whole placement — they measure relative geometry only.
func TestMetricsPropertyTranslationInvariant(t *testing.T) {
	f := func(seed int64, dxRaw, dyRaw uint8) bool {
		g, p, w, h := randomFixture(seed)
		dx, dy := int(dxRaw%4), int(dyRaw%4)
		base := Measure(g, p)
		moved := p.Clone()
		for q := range moved.Pos {
			moved.Pos[q].X += dx
			moved.Pos[q].Y += dy
		}
		_ = w
		_ = h
		after := Measure(g, moved)
		return base.Crossings == after.Crossings &&
			math.Abs(base.AvgManhattan-after.AvgManhattan) < 1e-9 &&
			math.Abs(base.AvgSpacing-after.AvgSpacing) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: metrics are invariant under reflecting the placement, and
// never negative.
func TestMetricsPropertyReflectionInvariant(t *testing.T) {
	f := func(seed int64) bool {
		g, p, _, _ := randomFixture(seed)
		base := Measure(g, p)
		if base.Crossings < 0 || base.AvgManhattan < 0 || base.AvgSpacing < 0 {
			return false
		}
		mirrored := p.Clone()
		for q := range mirrored.Pos {
			mirrored.Pos[q].X = (mirrored.W - 1) - mirrored.Pos[q].X
		}
		after := Measure(g, mirrored)
		return base.Crossings == after.Crossings &&
			math.Abs(base.AvgManhattan-after.AvgManhattan) < 1e-9 &&
			math.Abs(base.AvgSpacing-after.AvgSpacing) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: spreading a placement by an integer scale factor never
// creates new crossings and scales AvgManhattan exactly linearly.
func TestMetricsPropertyScaling(t *testing.T) {
	f := func(seed int64) bool {
		g, p, _, _ := randomFixture(seed)
		base := Measure(g, p)
		scaled := p.Clone()
		scaled.W *= 2
		scaled.H *= 2
		for q := range scaled.Pos {
			scaled.Pos[q].X *= 2
			scaled.Pos[q].Y *= 2
		}
		after := Measure(g, scaled)
		if math.Abs(after.AvgManhattan-2*base.AvgManhattan) > 1e-9 {
			return false
		}
		// Segment intersection is projective: scaling preserves it.
		return after.Crossings == base.Crossings
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
