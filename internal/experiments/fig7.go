package experiments

import (
	"fmt"

	"magicstate/internal/core"
)

// Fig7Row is one capacity point of Fig. 7: force-directed and graph
// partitioning latency against the dependency-limited lower bound.
type Fig7Row struct {
	Capacity  int
	FDLatency int
	GPLatency int
	Critical  int
}

// Fig7 reproduces Fig. 7a (level 1) or 7b (level 2): overall circuit
// latency attained by FD and GP embeddings versus the theoretical lower
// bound, as capacity grows.
func Fig7(level int, capacities []int, seed int64) ([]Fig7Row, error) {
	var rows []Fig7Row
	for _, cap := range capacities {
		row := Fig7Row{Capacity: cap}
		for _, s := range []core.Strategy{core.StrategyForceDirected, core.StrategyGraphPartition} {
			rep, err := runCapacity(cap, level, s, level >= 2, seed)
			if err != nil {
				return nil, fmt.Errorf("fig7 cap %d %v: %w", cap, s, err)
			}
			switch s {
			case core.StrategyForceDirected:
				row.FDLatency = rep.Latency
			case core.StrategyGraphPartition:
				row.GPLatency = rep.Latency
			}
			row.Critical = rep.CriticalLatency
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runCapacity resolves a capacity to protocol parameters and runs one
// strategy.
func runCapacity(capacity, level int, s core.Strategy, reuse bool, seed int64) (*core.Report, error) {
	k, err := kForCapacity(capacity, level)
	if err != nil {
		return nil, err
	}
	return core.Run(core.Config{K: k, Levels: level, Strategy: s, Reuse: reuse, Seed: seed})
}

func kForCapacity(capacity, level int) (int, error) {
	switch level {
	case 1:
		return capacity, nil
	case 2:
		for k := 1; k*k <= capacity; k++ {
			if k*k == capacity {
				return k, nil
			}
		}
		return 0, fmt.Errorf("capacity %d is not a perfect square", capacity)
	}
	return 0, fmt.Errorf("unsupported level %d", level)
}
