package fabric

import (
	"testing"
	"time"
)

func TestParsePeerFaultPlan(t *testing.T) {
	p, err := ParsePeerFaultPlan("drop=5,stall=10:50ms,corrupt=3")
	if err != nil {
		t.Fatal(err)
	}
	if p.DropEvery != 5 || p.StallEvery != 10 || p.Stall != 50*time.Millisecond || p.CorruptEvery != 3 {
		t.Fatalf("parsed plan = %+v", p)
	}

	if p, err := ParsePeerFaultPlan(""); err != nil || p.DropEvery != 0 || p.StallEvery != 0 || p.CorruptEvery != 0 {
		t.Fatalf("empty spec: plan=%+v err=%v, want inject-nothing plan", p, err)
	}

	for _, bad := range []string{
		"drop",          // no value
		"drop=x",        // non-numeric
		"drop=-1",       // negative
		"stall=5",       // missing duration
		"stall=0:50ms",  // zero interval
		"stall=5:xx",    // bad duration
		"stall=5:-50ms", // negative duration
		"explode=1",     // unknown key
		"drop=1,,",      // empty clause
	} {
		if _, err := ParsePeerFaultPlan(bad); err == nil {
			t.Errorf("ParsePeerFaultPlan(%q) accepted", bad)
		}
	}
}

func TestPeerFaultPlanSchedule(t *testing.T) {
	p, err := ParsePeerFaultPlan("drop=3,stall=2:10ms,corrupt=6")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 12; i++ {
		f := p.Next()
		wantDrop := i%3 == 0
		wantStall := i%2 == 0
		wantCorrupt := i%6 == 0
		if f.Drop != wantDrop || (f.Stall > 0) != wantStall || f.Corrupt != wantCorrupt {
			t.Fatalf("request %d: got %+v, want drop=%t stall=%t corrupt=%t",
				i, f, wantDrop, wantStall, wantCorrupt)
		}
	}
}

func TestPeerFaultPlanNilSafe(t *testing.T) {
	var p *PeerFaultPlan
	if f := p.Next(); f.Drop || f.Stall != 0 || f.Corrupt {
		t.Fatalf("nil plan injected %+v", f)
	}
}
