// Package sweep is the concurrent batch executor behind the repository's
// evaluation pipeline. The paper's whole evaluation (§VIII) is a grid of
// independent (capacity, level, strategy, style, seed) pipeline runs;
// sweep accepts such a grid as a slice of core.Config points, executes it
// on a bounded worker pool, and returns reports in the exact order the
// points were submitted, so callers that used to write nested serial
// loops get the same rows back regardless of worker count.
//
// The engine adds four things over a bare errgroup:
//
//   - memoization: identical Config points (several figures re-evaluate
//     the same grid cells) are computed once per engine and shared, with
//     singleflight semantics under concurrency;
//   - a durable cache tier: an engine given a store (Options.Store)
//     consults it beneath the in-memory memo — memory first, then disk,
//     then compute-and-persist — so results survive the process and a
//     killed sweep resumes by recomputing nothing it already stored;
//   - deterministic ordering: results[i] always corresponds to
//     cfgs[i]; on failure, the engine stops dispatching and reports
//     the lowest-indexed point that ran and failed (a serial run
//     reports exactly the first failure);
//   - cancellation and progress: a context.Context stops the sweep
//     between points, and an optional callback observes completion
//     counts for long grids.
//
// Every pipeline stage the engine runs is deterministic per Config, so a
// fixed-seed grid produces byte-identical results at any worker count —
// the determinism regression test in internal/experiments holds the
// repository to that — and the disk tier preserves the property: a
// resumed sweep renders artifacts byte-identical to an uninterrupted
// one (see TestResumeByteIdentical).
//
// Engines that must share one cache tier but differ in width or
// progress reporting — the msfud service caps workers per request —
// derive narrower views with Engine.Derive instead of constructing
// separate engines.
package sweep
