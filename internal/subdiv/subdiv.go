// Package subdiv generalizes the paper's hierarchical stitching (§VII) to
// arbitrary circuits, the first item of its future work (§IX): extract a
// sequence of temporal subdivisions from the program, embed each
// subdivision's interaction subgraph near-optimally, and patch the
// subdivisions together with explicit state-relocation braids (the swap
// gates the paper sketches become Move gates on the braid mesh).
//
// Relocations consume fresh tile slots, so the stitcher trades area for
// per-window locality exactly as the no-reuse factory policy does (§V.B):
// each window boundary may relocate at most MoveBudget qubits onto
// scratch tiles chosen by the same centroid heuristic the force-directed
// mapper uses (§VI.B.1). Circuits with phase structure (barriers, or
// block-local activity that shifts over time) gain; structure-free
// circuits keep their single global embedding because no relocation shows
// positive gain.
package subdiv

import (
	"fmt"
	"math/rand"
	"sort"

	"magicstate/internal/circuit"
	"magicstate/internal/graph"
	"magicstate/internal/layout"
	"magicstate/internal/partition"
)

// Options tunes the stitcher.
type Options struct {
	// Windows is the number of temporal subdivisions when the circuit
	// has no barriers (zero means 4). Circuits with barriers are always
	// cut at every barrier.
	Windows int
	// MoveBudget caps relocations per window boundary (zero means
	// max(2, qubits/8)).
	MoveBudget int
	// MinGain is the minimum interaction-weighted distance improvement
	// (upcoming-window interaction count × Manhattan distance moved
	// closer to the window centroid) a relocation must show before the
	// stitcher pays for a Move braid (zero means 24, roughly one Move's
	// worth of braid occupancy under the default cost model). Static
	// workloads show no qualifying relocations and keep their single
	// global embedding for free.
	MinGain int
	// Seed drives the embedding.
	Seed int64
}

func (o *Options) fill(n int) {
	if o.Windows <= 0 {
		o.Windows = 4
	}
	if o.MoveBudget <= 0 {
		o.MoveBudget = n / 8
		if o.MoveBudget < 2 {
			o.MoveBudget = 2
		}
	}
	if o.MinGain <= 0 {
		o.MinGain = 24
	}
}

// Window is a half-open gate range [Start, End) of the input circuit.
type Window struct{ Start, End int }

// Result is a stitched mapping: a rewritten circuit whose extra qubit ids
// are relocation slots, the placement covering every slot, the window
// boundaries used, and the number of Move braids inserted.
type Result struct {
	Circuit   *circuit.Circuit
	Placement *layout.Placement
	Windows   []Window
	Moves     int
}

// Stitch subdivides c temporally, embeds the first window's structure
// globally, and re-patches the mapping at each window boundary with
// budgeted relocations. The input must not already contain Move gates
// (slot identity is owned by the stitcher).
func Stitch(c *circuit.Circuit, opt Options) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("subdiv: %w", err)
	}
	if c.NumQubits == 0 || len(c.Gates) == 0 {
		return nil, fmt.Errorf("subdiv: empty circuit")
	}
	for i := range c.Gates {
		if c.Gates[i].Kind == circuit.KindMove {
			return nil, fmt.Errorf("subdiv: input gate %d is a Move; slot identity is owned by the stitcher", i)
		}
	}
	opt.fill(c.NumQubits)
	windows := cutWindows(c, opt.Windows)
	rng := rand.New(rand.NewSource(opt.Seed))

	n := c.NumQubits
	scratch := (len(windows) - 1) * opt.MoveBudget
	w, h := layout.GridFor(n+scratch, 1)

	// Global embedding of the whole-circuit interaction graph seeds the
	// home positions (windows only adjust it with relocations).
	g := graph.FromCircuit(c)
	home := partition.Embed(g, w, h, rng)

	out := circuit.New(0)
	pl := layout.NewPlacement(0, w, h)
	curSlot := make([]circuit.Qubit, n)
	addSlot := func(name string, pt layout.Point) circuit.Qubit {
		q := out.AddQubit(name)
		pl.Pos = append(pl.Pos, pt)
		return q
	}
	for q := 0; q < n; q++ {
		curSlot[q] = addSlot(c.Name(circuit.Qubit(q)), home.At(q))
	}
	free := freeTiles(pl, w, h)

	res := &Result{Circuit: out, Placement: pl, Windows: windows}
	for wi, win := range windows {
		if wi > 0 {
			moved := repatch(c, win, curSlot, pl, &free, out, opt)
			res.Moves += moved
		}
		for gi := win.Start; gi < win.End; gi++ {
			out.Append(remap(&c.Gates[gi], curSlot))
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("subdiv: stitched circuit invalid: %w", err)
	}
	if err := pl.Validate(); err != nil {
		return nil, fmt.Errorf("subdiv: stitched placement invalid: %w", err)
	}
	return res, nil
}

// cutWindows slices the circuit at barriers when present, otherwise into
// `count` spans of roughly equal two-qubit gate mass.
func cutWindows(c *circuit.Circuit, count int) []Window {
	var cuts []int
	for i := range c.Gates {
		if c.Gates[i].Kind == circuit.KindBarrier {
			cuts = append(cuts, i+1)
		}
	}
	if len(cuts) > 0 {
		var ws []Window
		start := 0
		for _, cut := range cuts {
			if cut > start {
				ws = append(ws, Window{Start: start, End: cut})
				start = cut
			}
		}
		if start < len(c.Gates) {
			ws = append(ws, Window{Start: start, End: len(c.Gates)})
		}
		return ws
	}
	total := c.TwoQubitGateCount()
	if count > total && total > 0 {
		count = total
	}
	if count < 1 {
		count = 1
	}
	per := (total + count - 1) / count
	var ws []Window
	start, mass := 0, 0
	for i := range c.Gates {
		if c.Gates[i].Kind.IsTwoQubit() {
			mass++
		}
		if mass >= per && i+1 < len(c.Gates) {
			ws = append(ws, Window{Start: start, End: i + 1})
			start, mass = i+1, 0
		}
	}
	ws = append(ws, Window{Start: start, End: len(c.Gates)})
	return ws
}

// repatch relocates up to MoveBudget qubits whose upcoming-window
// centroid is far from their current tile, emitting Move braids.
func repatch(c *circuit.Circuit, win Window, curSlot []circuit.Qubit,
	pl *layout.Placement, free *[]layout.Point, out *circuit.Circuit, opt Options) int {
	type accum struct {
		sx, sy float64
		n      int
	}
	cent := make(map[int]*accum)
	note := func(q, other circuit.Qubit) {
		a := cent[int(q)]
		if a == nil {
			a = &accum{}
			cent[int(q)] = a
		}
		pt := pl.At(int(curSlot[other]))
		a.sx += float64(pt.X)
		a.sy += float64(pt.Y)
		a.n++
	}
	for gi := win.Start; gi < win.End; gi++ {
		g := &c.Gates[gi]
		if !g.Kind.IsTwoQubit() {
			continue
		}
		ops := g.Operands()
		for _, q := range ops {
			for _, other := range ops {
				if other != q {
					note(q, other)
				}
			}
		}
	}
	type cand struct {
		q      int
		target layout.Point
		weight int // upcoming-window interaction count
		gain   int // weight x current distance to centroid (an upper bound)
	}
	var cands []cand
	for q, a := range cent {
		cx := int(a.sx/float64(a.n) + 0.5)
		cy := int(a.sy/float64(a.n) + 0.5)
		cur := pl.At(int(curSlot[q]))
		target := layout.Point{X: cx, Y: cy}
		cands = append(cands, cand{
			q: q, target: target, weight: a.n,
			gain: a.n * layout.Manhattan(cur, target),
		})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].gain != cands[j].gain {
			return cands[i].gain > cands[j].gain
		}
		return cands[i].q < cands[j].q
	})
	moved := 0
	for _, cd := range cands {
		if moved >= opt.MoveBudget || len(*free) == 0 {
			break
		}
		if cd.gain < opt.MinGain {
			break // sorted descending: nothing further qualifies either
		}
		// Nearest free tile to the centroid target.
		best, bestD := -1, 1<<30
		for i, t := range *free {
			if d := layout.Manhattan(t, cd.target); d < bestD {
				best, bestD = i, d
			}
		}
		cur := pl.At(int(curSlot[cd.q]))
		// Pay for a Move only when the interaction-weighted distance it
		// saves covers the braid's cost.
		if cd.weight*(layout.Manhattan(cur, cd.target)-bestD) < opt.MinGain {
			continue
		}
		tile := (*free)[best]
		*free = append((*free)[:best], (*free)[best+1:]...)
		src := curSlot[cd.q]
		dst := out.AddQubit("")
		pl.Pos = append(pl.Pos, tile)
		out.Move(src, dst)
		curSlot[cd.q] = dst
		moved++
	}
	return moved
}

// remap rewrites a gate's operands through the current slot assignment.
func remap(g *circuit.Gate, curSlot []circuit.Qubit) circuit.Gate {
	ng := *g
	if g.Control != circuit.NoQubit {
		ng.Control = curSlot[g.Control]
	}
	ng.Targets = make([]circuit.Qubit, len(g.Targets))
	for i, t := range g.Targets {
		ng.Targets[i] = curSlot[t]
	}
	// Dest is only meaningful on Move gates, which the stitcher owns and
	// the input is guaranteed not to contain.
	return ng
}

// freeTiles lists grid tiles not used by the placement, row-major.
func freeTiles(pl *layout.Placement, w, h int) []layout.Point {
	occ := make(map[layout.Point]bool, len(pl.Pos))
	for _, pt := range pl.Pos {
		occ[pt] = true
	}
	var free []layout.Point
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			pt := layout.Point{X: x, Y: y}
			if !occ[pt] {
				free = append(free, pt)
			}
		}
	}
	return free
}

// GlobalEmbed returns the single global recursive-bisection embedding of
// c — the baseline the stitched mapping is compared against.
func GlobalEmbed(c *circuit.Circuit, seed int64) *layout.Placement {
	g := graph.FromCircuit(c)
	return partition.EmbedSquare(g, rand.New(rand.NewSource(seed)))
}
