package magicstate

import (
	"fmt"

	"strings"

	"magicstate/internal/bravyi"
	"magicstate/internal/core"
	"magicstate/internal/layout"
	"magicstate/internal/mesh"
	"magicstate/internal/plan"
	"magicstate/internal/resource"
	"magicstate/internal/trace"
)

// InteractionStyle selects how two-qubit logical operations claim the
// lattice — the §IX braiding / lattice-surgery / teleportation study.
type InteractionStyle int

// Interaction styles. Braiding (the zero value) is the paper's model.
const (
	Braiding       InteractionStyle = InteractionStyle(mesh.StyleBraiding)
	LatticeSurgery InteractionStyle = InteractionStyle(mesh.StyleLatticeSurgery)
	Teleportation  InteractionStyle = InteractionStyle(mesh.StyleTeleportation)
)

// String names the style.
func (s InteractionStyle) String() string { return mesh.InteractionStyle(s).String() }

// Strategy selects a qubit mapping procedure.
type Strategy int

// The paper's five mapping strategies (Table I rows).
const (
	RandomMapping         Strategy = Strategy(core.StrategyRandom)
	LinearMapping         Strategy = Strategy(core.StrategyLinear)
	ForceDirected         Strategy = Strategy(core.StrategyForceDirected)
	GraphPartitioning     Strategy = Strategy(core.StrategyGraphPartition)
	HierarchicalStitching Strategy = Strategy(core.StrategyStitch)
)

// String returns the strategy's Table I label.
func (s Strategy) String() string { return core.Strategy(s).String() }

// ParseStrategy maps a strategy name — "random", "line", "fd", "gp" or
// "hs" — to its Strategy. It is the one name table shared by every
// entry point that accepts strategy names (the msfu CLI flags, the
// msfud HTTP API), so the surfaces cannot drift apart.
func ParseStrategy(name string) (Strategy, error) {
	st, ok := map[string]Strategy{
		"random": RandomMapping,
		"line":   LinearMapping,
		"fd":     ForceDirected,
		"gp":     GraphPartitioning,
		"hs":     HierarchicalStitching,
	}[name]
	if !ok {
		return 0, fmt.Errorf("magicstate: unknown strategy %q (want random|line|fd|gp|hs)", name)
	}
	return st, nil
}

// ParseStyle maps an interaction style name — "braiding", "surgery" or
// "teleport" — to its InteractionStyle, sharing one name table across
// the CLI and HTTP surfaces like ParseStrategy.
func ParseStyle(name string) (InteractionStyle, error) {
	st, ok := map[string]InteractionStyle{
		"braiding": Braiding,
		"surgery":  LatticeSurgery,
		"teleport": Teleportation,
	}[name]
	if !ok {
		return 0, fmt.Errorf("magicstate: unknown style %q (want braiding|surgery|teleport)", name)
	}
	return st, nil
}

// FactorySpec describes the magic-state factory to build.
type FactorySpec struct {
	// Capacity is the number of distilled states produced per run; it
	// must be a perfect Levels-th power (the factory produces k^Levels
	// states from a (3k+8) -> k protocol).
	Capacity int
	// Levels is the block-code recursion depth (1 or 2 in the paper).
	Levels int
	// Reuse enables sharing-after-measurement qubit reuse between rounds.
	Reuse bool
}

// Params converts the spec to protocol parameters.
func (s FactorySpec) Params() (bravyi.Params, error) {
	p, err := bravyi.ParamsForCapacity(s.Capacity, s.Levels)
	if err != nil {
		return p, err
	}
	p.Reuse = s.Reuse
	return p, nil
}

// Options tunes an optimization run.
type Options struct {
	// Strategy picks the mapper (default HierarchicalStitching for
	// multi-level factories, LinearMapping otherwise).
	Strategy Strategy
	// Seed makes the run reproducible.
	Seed int64
	// DisableBarriers removes the inter-round scheduling fences.
	DisableBarriers bool
	// Trace populates Result.Trace with a utilization report (braid
	// concurrency sparkline, per-round timing, permutation share,
	// per-kind cycle breakdown).
	Trace bool
	// Style selects the surface-code interaction discipline (§IX);
	// Braiding (the zero value) reproduces the paper.
	Style InteractionStyle
	// Distance feeds the distance-sensitive styles (zero means 7).
	Distance int
	// Workload, when non-empty, replaces the built-in factory build with
	// a frontend circuit: "qasm" (OpenQASM 2 subset), "scaffold"
	// (Scaffold subset) or "random" (seeded layered generator). The
	// FactorySpec is ignored for workload runs, and the default strategy
	// becomes LinearMapping; HierarchicalStitching is rejected because it
	// needs the built-in factory's round structure.
	Workload string
	// WorkloadSource is the workload's input: program source for "qasm"
	// and "scaffold", a generator spec like "q=8;layers=12;cx=0.4;t=0.2"
	// for "random".
	WorkloadSource string
	// Defects is a canonical defect map ("x,y;x,y", row-major sorted)
	// naming mesh tiles that are fabrication-defective: they expose no
	// ports, routing avoids them, and mappers relocate qubits off them.
	// Empty means a pristine mesh.
	Defects     string
	strategySet bool
}

// WithStrategy returns o with the strategy set explicitly (distinguishing
// "unset" from RandomMapping, which is the zero value).
func (o Options) WithStrategy(s Strategy) Options {
	o.Strategy = s
	o.strategySet = true
	return o
}

// Result reports an optimized factory.
type Result struct {
	// Latency is the simulated execution time in surface-code cycles.
	Latency int
	// Area is the logical-qubit tile count.
	Area int
	// Volume is Latency x Area, the paper's quantum volume metric.
	Volume float64
	// CriticalLatency is the dependency-limited latency lower bound
	// ("theoretical lower bound" in Fig. 7).
	CriticalLatency int
	// CriticalVolume is the volume at the dependency-limited bound.
	CriticalVolume float64
	// PermutationLatency is the inter-round permutation window for
	// multi-level factories (Fig. 9d's metric).
	PermutationLatency int
	// Strategy echoes the mapper used.
	Strategy string
	// Trace is the utilization report (only with Options.Trace).
	Trace string
}

// Optimize builds, maps and simulates the factory described by spec.
// For grids of factories, OptimizeBatch evaluates many specs on a
// worker pool with the same per-point results.
func Optimize(spec FactorySpec, opts Options) (*Result, error) {
	cfg, err := optimizeConfig(spec, opts)
	if err != nil {
		return nil, err
	}
	rep, err := core.Run(cfg)
	if err != nil {
		return nil, err
	}
	return resultFromReport(rep, opts)
}

// resultFromReport converts a pipeline report to the public Result,
// rendering the utilization trace when requested.
func resultFromReport(rep *core.Report, opts Options) (*Result, error) {
	res := &Result{
		Latency:            rep.Latency,
		Area:               rep.Area,
		Volume:             rep.Volume,
		CriticalLatency:    rep.CriticalLatency,
		CriticalVolume:     rep.CriticalVolume,
		PermutationLatency: rep.PermLatency,
		Strategy:           rep.Strategy,
	}
	if opts.Trace {
		var sb strings.Builder
		if err := trace.WriteReport(&sb, rep.Factory, rep.Sim); err != nil {
			return nil, err
		}
		if heat, lat, err := mesh.CongestionMap(rep.Sim, rep.Placement); err == nil {
			sb.WriteString("channel congestion ('#' tiles, '1'-'9' heat):\n")
			sb.WriteString(mesh.RenderCongestion(heat, lat, 120, 60))
		}
		res.Trace = sb.String()
	}
	return res, nil
}

// ResourceEstimate reports the physical-qubit provisioning of a factory
// under the balanced-investment error model of §II.G.
type ResourceEstimate struct {
	// RoundDistances holds the surface code distance chosen per round.
	RoundDistances []int
	// PhysicalQubitsPerRound expands each round's logical tiles by d^2.
	PhysicalQubitsPerRound []int
	// OutputError is the distilled state error after the final round.
	OutputError float64
	// ExpectedRunsPerBatch derates throughput for distillation failures.
	ExpectedRunsPerBatch float64
}

// EstimateResources evaluates spec under the default error model
// (p_phys = 1e-3, injected state error 5e-3).
func EstimateResources(spec FactorySpec) (*ResourceEstimate, error) {
	p, err := spec.Params()
	if err != nil {
		return nil, err
	}
	em := resource.DefaultError()
	errs := em.RoundErrors(p)
	return &ResourceEstimate{
		RoundDistances:         em.BalancedDistances(p),
		PhysicalQubitsPerRound: em.PhysicalQubitsPerRound(p),
		OutputError:            errs[len(errs)-1],
		ExpectedRunsPerBatch:   resource.ExpectedRunsPerSuccess(p, em),
	}, nil
}

// Validate checks a spec without running anything.
func (s FactorySpec) Validate() error {
	if _, err := s.Params(); err != nil {
		return fmt.Errorf("magicstate: %w", err)
	}
	return nil
}

// ValidateWorkload checks a frontend workload input — kind plus source,
// as Options.Workload/WorkloadSource take them — without running the
// pipeline: the source is compiled (or generated) and the resulting
// circuit validated, exactly as the build stage will do. Serving
// surfaces call this at the request boundary so malformed programs are
// rejected as client errors before any compute is admitted.
func ValidateWorkload(kind, source string, seed int64) error {
	_, err := core.CompileWorkload(kind, source, seed)
	return err
}

// ValidateDefects checks a defect-map string (Options.Defects) without
// running anything.
func ValidateDefects(s string) error {
	_, err := layout.ParseDefects(s)
	return err
}

// Application describes a workload to provision magic-state production
// for, in the units of the paper's §II.D sizing exercise.
type Application struct {
	// TCount is the total number of T gates the application executes.
	TCount float64
	// ErrorBudget is the acceptable probability that any distilled state
	// faults over the whole run (per-state target = ErrorBudget/TCount).
	ErrorBudget float64
	// TGatesPerCycle is the application's T-consumption rate.
	TGatesPerCycle float64
}

// Provision is a complete factory-farm sizing: the chosen block code, the
// farm and buffer dimensions, and the physical-qubit bill.
type Provision struct {
	// CapacityPerFactory is the states one factory delivers per batch.
	CapacityPerFactory int
	// K and Levels are the chosen Bravyi-Haah parameters.
	K, Levels int
	// OutputError is the achieved per-state error.
	OutputError float64
	// BatchLatency is the cycles per factory batch (critical path).
	BatchLatency int
	// BatchSuccessProbability derates throughput for failed batches.
	BatchSuccessProbability float64
	// Factories is the farm size.
	Factories int
	// BufferSize is the prepared-state buffer keeping stalls under 1%.
	BufferSize int
	// PhysicalQubits totals the farm under balanced-investment distances.
	PhysicalQubits int
	// RawStates estimates total injected raw states, retries included.
	RawStates float64
}

// PlanProvision sizes a factory farm for the application: it selects the
// cheapest Bravyi-Haah block code meeting the error budget, derates for
// batch failures, and dimensions the farm and buffer of §IX.
func PlanProvision(app Application) (*Provision, error) {
	prov, err := plan.Plan(plan.Requirements{
		TCount:      app.TCount,
		ErrorBudget: app.ErrorBudget,
		DemandRate:  app.TGatesPerCycle,
	})
	if err != nil {
		return nil, err
	}
	return &Provision{
		CapacityPerFactory:      prov.Params.Capacity(),
		K:                       prov.Params.K,
		Levels:                  prov.Params.Levels,
		OutputError:             prov.OutputError,
		BatchLatency:            prov.BatchLatency,
		BatchSuccessProbability: prov.SuccessProb,
		Factories:               prov.Factories,
		BufferSize:              prov.BufferSize,
		PhysicalQubits:          prov.PhysicalQubits,
		RawStates:               prov.RawStates,
	}, nil
}
