package scaffold

// AST node definitions for the supported Scaffold subset.

// Program is a parsed translation unit: #define constants plus modules.
// Execution starts at the module named "main".
type Program struct {
	Defines map[string]int
	Modules map[string]*Module
	Order   []string // module definition order, for deterministic dumps
}

// Module is a procedure over qbit-array parameters.
type Module struct {
	Name   string
	Params []string // qbit* parameter names
	Body   []Stmt
	Line   int
}

// Stmt is a statement: declaration, loop, gate application or call.
type Stmt interface{ stmt() }

// DeclStmt declares a local qbit array: qbit name[size];
type DeclStmt struct {
	Name string
	Size Expr
	Line int
}

// ForStmt is a constant-bound loop: for (int i = lo; i < hi; i++) { body }.
type ForStmt struct {
	Var    string
	Lo, Hi Expr
	Body   []Stmt
	Line   int
}

// GateStmt applies a builtin gate: name(args);
type GateStmt struct {
	Name string
	Args []Expr
	Line int
}

// CallStmt invokes a user module: name(args); every argument must be a
// whole qbit array.
type CallStmt struct {
	Name string
	Args []Expr
	Line int
}

func (*DeclStmt) stmt() {}
func (*ForStmt) stmt()  {}
func (*GateStmt) stmt() {}
func (*CallStmt) stmt() {}

// Expr is an integer or qbit-reference expression.
type Expr interface{ expr() }

// NumExpr is an integer literal.
type NumExpr struct{ Value int }

// VarExpr references a loop variable, #define constant, or qbit array by
// name.
type VarExpr struct {
	Name string
	Line int
}

// IndexExpr is array[subscript].
type IndexExpr struct {
	Array string
	Sub   Expr
	Line  int
}

// BinExpr is left op right for op in + - * /.
type BinExpr struct {
	Op          string
	Left, Right Expr
}

func (*NumExpr) expr()   {}
func (*VarExpr) expr()   {}
func (*IndexExpr) expr() {}
func (*BinExpr) expr()   {}
