package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// PaperCapacities groups the capacity sweeps the paper's figures use.
var (
	PaperFig7L1Capacities  = []int{2, 4, 6, 8, 12, 16, 20}
	PaperFig7L2Capacities  = []int{4, 16, 36, 64}
	PaperFig9Capacities    = []int{4, 16, 36, 64}
	PaperFig10L1Capacities = []int{2, 4, 6, 8, 12, 16, 20, 24}
	PaperFig10L2Capacities = []int{4, 16, 36, 64, 100}
	PaperTable1L1          = []int{2, 4, 8, 10, 24}
	PaperTable1L2          = []int{4, 16, 36, 64, 100}
)

func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// WriteFig6 renders a Fig. 6 result.
func WriteFig6(w io.Writer, r *Fig6Result) {
	fmt.Fprintf(w, "Fig. 6 — congestion metric vs latency correlations (K=%d, %d randomized mappings)\n", r.K, r.Samples)
	fmt.Fprintf(w, "  r(edge crossings, latency)  = %+.3f   (paper: positive, strongest panel r=0.831)\n", r.RCrossings)
	fmt.Fprintf(w, "  r(avg edge length, latency) = %+.3f   (paper: positive, r=0.601)\n", r.RLength)
	fmt.Fprintf(w, "  r(avg edge spacing, latency)= %+.3f   (paper: negative, r=-0.625)\n", r.RSpacing)
}

// WriteFig7 renders Fig. 7 rows.
func WriteFig7(w io.Writer, level int, rows []Fig7Row) {
	fmt.Fprintf(w, "Fig. 7%s — latency vs capacity (level %d)\n", map[int]string{1: "a", 2: "b"}[level], level)
	tw := newTab(w)
	fmt.Fprintln(tw, "capacity\tFD\tGP\tlower bound")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\n", r.Capacity, r.FDLatency, r.GPLatency, r.Critical)
	}
	tw.Flush()
}

// WriteFig9Reuse renders Fig. 9a/9b rows.
func WriteFig9Reuse(w io.Writer, rows []Fig9ReuseRow) {
	fmt.Fprintln(w, "Fig. 9a/9b — reuse vs no-reuse volume differential (NR-R)/NR, level 2")
	fmt.Fprintln(w, "positive: reuse better; negative: no-reuse better")
	tw := newTab(w)
	fmt.Fprintln(tw, "capacity\tLine\tFD\tGP")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%+.3f\t%+.3f\t%+.3f\n", r.Capacity, r.LineDiff, r.FDDiff, r.GPDiff)
	}
	tw.Flush()
}

// WriteFig9Hops renders Fig. 9d rows.
func WriteFig9Hops(w io.Writer, rows []Fig9HopsRow) {
	fmt.Fprintln(w, "Fig. 9d — permutation-step latency by hop routing (level 2, stitched, reuse)")
	tw := newTab(w)
	fmt.Fprintln(tw, "capacity\tno hop\trandom hop\tannealed random\tannealed midpoint")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\n", r.Capacity, r.NoHop, r.RandomHop, r.AnnealedRandom, r.AnnealedMidpoint)
	}
	tw.Flush()
}

// WriteFig10 renders Fig. 10 rows grouped per metric, mirroring the
// figure's three panels per level.
func WriteFig10(w io.Writer, level int, rows []Fig10Row) {
	panels := map[int][3]string{
		1: {"10a latency", "10b area", "10e volume"},
		2: {"10c latency", "10d area", "10f volume"},
	}[level]
	strategies := orderedStrategies(rows)
	caps := orderedCapacities(rows)
	cell := func(strategy string, cap int) *Fig10Row {
		for i := range rows {
			if rows[i].Strategy == strategy && rows[i].Capacity == cap {
				return &rows[i]
			}
		}
		return nil
	}
	for pi, metric := range []func(*Fig10Row) string{
		func(r *Fig10Row) string { return fmt.Sprintf("%d", r.Latency) },
		func(r *Fig10Row) string { return fmt.Sprintf("%d", r.Area) },
		func(r *Fig10Row) string { return fmt.Sprintf("%.3g", r.Volume) },
	} {
		fmt.Fprintf(w, "Fig. %s (level %d)\n", panels[pi], level)
		tw := newTab(w)
		fmt.Fprintf(tw, "strategy\\capacity")
		for _, c := range caps {
			fmt.Fprintf(tw, "\t%d", c)
		}
		fmt.Fprintln(tw)
		for _, s := range strategies {
			fmt.Fprintf(tw, "%s", s)
			for _, c := range caps {
				if r := cell(s, c); r != nil {
					fmt.Fprintf(tw, "\t%s", metric(r))
				} else {
					fmt.Fprintf(tw, "\t-")
				}
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}
}

// WriteTable1 renders Table I.
func WriteTable1(w io.Writer, t *Table1Result) {
	fmt.Fprintln(w, "Table I — quantum volumes (qubits x cycles)")
	tw := newTab(w)
	fmt.Fprintf(tw, "procedure")
	for _, c := range t.Level1Capacities {
		fmt.Fprintf(tw, "\tL1 K=%d", c)
	}
	for _, c := range t.Level2Capacities {
		fmt.Fprintf(tw, "\tL2 K=%d", c)
	}
	fmt.Fprintln(tw)
	for _, proc := range Procedures {
		fmt.Fprintf(tw, "%s", proc)
		for _, c := range t.Level1Capacities {
			if cell, ok := t.Cell(proc, 1, c); ok {
				fmt.Fprintf(tw, "\t%.3g", cell.Volume)
			} else {
				fmt.Fprintf(tw, "\t-")
			}
		}
		for _, c := range t.Level2Capacities {
			if cell, ok := t.Cell(proc, 2, c); ok {
				fmt.Fprintf(tw, "\t%.3g", cell.Volume)
			} else {
				fmt.Fprintf(tw, "\t-")
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	if h := t.HeadlineImprovement(); h > 0 {
		fmt.Fprintf(w, "headline: Line(NR)/HS at largest L2 capacity = %.2fx (paper: 5.64x)\n", h)
	}
}

func orderedStrategies(rows []Fig10Row) []string {
	var out []string
	seen := map[string]bool{}
	for _, r := range rows {
		if !seen[r.Strategy] {
			seen[r.Strategy] = true
			out = append(out, r.Strategy)
		}
	}
	return out
}

func orderedCapacities(rows []Fig10Row) []int {
	var out []int
	seen := map[int]bool{}
	for _, r := range rows {
		if !seen[r.Capacity] {
			seen[r.Capacity] = true
			out = append(out, r.Capacity)
		}
	}
	return out
}

// CSV renders any row set as comma-separated values via a header and a
// row formatter; experiments use it to dump plot-ready data.
func CSV(w io.Writer, header []string, rows [][]string) {
	fmt.Fprintln(w, strings.Join(header, ","))
	for _, r := range rows {
		fmt.Fprintln(w, strings.Join(r, ","))
	}
}
