package layout

import (
	"math"

	"magicstate/internal/graph"
)

// Metrics aggregates the three congestion heuristics of §VI.A for one
// placement of an interaction graph.
type Metrics struct {
	// Crossings counts pairs of interaction edges whose straight segments
	// intersect away from a shared endpoint (including collinear
	// overlaps), the paper's edge-crossing metric.
	Crossings int
	// AvgManhattan is the mean Manhattan length of interaction edges.
	AvgManhattan float64
	// AvgSpacing is the mean pairwise Euclidean distance between edge
	// midpoints; larger spacing means braids are more spread out.
	AvgSpacing float64
}

// Measure computes all three metrics. It is O(m^2) in the edge count and
// intended for analysis/reporting; optimizers use the incremental helpers.
func Measure(g *graph.Graph, p *Placement) Metrics {
	m := Metrics{}
	if len(g.Edges) == 0 {
		return m
	}
	segs := Segments(g, p)
	var lenSum float64
	for _, s := range segs {
		lenSum += float64(Manhattan(s.A, s.B))
	}
	m.AvgManhattan = lenSum / float64(len(segs))

	var spacingSum float64
	pairs := 0
	for i := 0; i < len(segs); i++ {
		for j := i + 1; j < len(segs); j++ {
			if SegmentsConflict(segs[i], segs[j]) {
				m.Crossings++
			}
			spacingSum += midpointDist(segs[i], segs[j])
			pairs++
		}
	}
	if pairs > 0 {
		m.AvgSpacing = spacingSum / float64(pairs)
	}
	return m
}

// Segment is an interaction edge realized as a straight segment between
// two placed endpoints.
type Segment struct {
	A, B Point
}

// Segments realizes every graph edge as a segment under p, skipping edges
// with unplaced endpoints.
func Segments(g *graph.Graph, p *Placement) []Segment {
	segs := make([]Segment, 0, len(g.Edges))
	for _, e := range g.Edges {
		a, b := p.At(e.U), p.At(e.V)
		if a == Unplaced || b == Unplaced {
			continue
		}
		segs = append(segs, Segment{a, b})
	}
	return segs
}

func midpointDist(s1, s2 Segment) float64 {
	mx1 := float64(s1.A.X+s1.B.X) / 2
	my1 := float64(s1.A.Y+s1.B.Y) / 2
	mx2 := float64(s2.A.X+s2.B.X) / 2
	my2 := float64(s2.A.Y+s2.B.Y) / 2
	dx, dy := mx1-mx2, my1-my2
	return math.Sqrt(dx*dx + dy*dy)
}

func orient(a, b, c Point) int {
	v := (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}

func onSegment(a, b, c Point) bool {
	return min(a.X, b.X) <= c.X && c.X <= max(a.X, b.X) &&
		min(a.Y, b.Y) <= c.Y && c.Y <= max(a.Y, b.Y)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SegmentsConflict reports whether two segments intersect somewhere other
// than at a single shared endpoint. Proper crossings conflict; collinear
// overlapping segments conflict; segments that merely touch at a common
// endpoint do not (braids may share a qubit's neighborhood sequentially
// without crossing).
func SegmentsConflict(s1, s2 Segment) bool {
	// Disjoint bounding boxes cannot intersect, overlap, or share an
	// endpoint (any such point would lie in both boxes). This rejects the
	// typical far-apart pair with integer compares before any
	// cross-product math — the annealer's cost loop lives here.
	if max(s1.A.X, s1.B.X) < min(s2.A.X, s2.B.X) ||
		max(s2.A.X, s2.B.X) < min(s1.A.X, s1.B.X) ||
		max(s1.A.Y, s1.B.Y) < min(s2.A.Y, s2.B.Y) ||
		max(s2.A.Y, s2.B.Y) < min(s1.A.Y, s1.B.Y) {
		return false
	}
	return SegmentsConflictTight(s1, s2)
}

// SegmentsConflictTight is SegmentsConflict without the bounding-box
// fast-reject: identical answers on any input, meant for callers that
// have already rejected disjoint boxes themselves (the hop annealer
// caches segment boxes and tests them inline before each call).
func SegmentsConflictTight(s1, s2 Segment) bool {
	shared := 0
	if s1.A == s2.A || s1.A == s2.B {
		shared++
	}
	if s1.B == s2.A || s1.B == s2.B {
		shared++
	}
	if shared > 0 {
		// Sharing one endpoint conflicts only when collinear and
		// overlapping beyond that point; sharing both means identical
		// segments, which conflict.
		if shared >= 2 {
			return true
		}
		if orient(s1.A, s1.B, s2.A) == 0 && orient(s1.A, s1.B, s2.B) == 0 {
			return collinearOverlapBeyondPoint(s1, s2)
		}
		return false
	}
	o1 := orient(s1.A, s1.B, s2.A)
	o2 := orient(s1.A, s1.B, s2.B)
	o3 := orient(s2.A, s2.B, s1.A)
	o4 := orient(s2.A, s2.B, s1.B)
	if o1 != o2 && o3 != o4 {
		return true
	}
	// Collinear touching cases.
	if o1 == 0 && onSegment(s1.A, s1.B, s2.A) {
		return true
	}
	if o2 == 0 && onSegment(s1.A, s1.B, s2.B) {
		return true
	}
	if o3 == 0 && onSegment(s2.A, s2.B, s1.A) {
		return true
	}
	if o4 == 0 && onSegment(s2.A, s2.B, s1.B) {
		return true
	}
	return false
}

// collinearOverlapBeyondPoint reports whether two collinear segments that
// share an endpoint overlap in more than that single point.
func collinearOverlapBeyondPoint(s1, s2 Segment) bool {
	pts := []Point{s2.A, s2.B}
	for _, p := range pts {
		if p != s1.A && p != s1.B && onSegment(s1.A, s1.B, p) {
			return true
		}
	}
	pts = []Point{s1.A, s1.B}
	for _, p := range pts {
		if p != s2.A && p != s2.B && onSegment(s2.A, s2.B, p) {
			return true
		}
	}
	return false
}

// CrossingsForEdges counts conflicts between the given subset of segments
// and all segments (used for incremental cost deltas when moving one
// vertex: pass that vertex's incident edges).
func CrossingsForEdges(subset, all []Segment) int {
	n := 0
	for _, s := range subset {
		for _, t := range all {
			if s == t {
				continue
			}
			if SegmentsConflict(s, t) {
				n++
			}
		}
	}
	return n
}

// TotalManhattan returns the summed Manhattan length of all edges of g
// under p; a cheap O(m) objective for refinement loops.
func TotalManhattan(g *graph.Graph, p *Placement) int {
	total := 0
	for _, e := range g.Edges {
		a, b := p.At(e.U), p.At(e.V)
		if a == Unplaced || b == Unplaced {
			continue
		}
		total += Manhattan(a, b)
	}
	return total
}

// WeightedManhattan is TotalManhattan with edge weights applied.
func WeightedManhattan(g *graph.Graph, p *Placement) float64 {
	var total float64
	for _, e := range g.Edges {
		a, b := p.At(e.U), p.At(e.V)
		if a == Unplaced || b == Unplaced {
			continue
		}
		total += e.Weight * float64(Manhattan(a, b))
	}
	return total
}
