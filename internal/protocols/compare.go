package protocols

import (
	"fmt"
	"math"
)

// Plan is the outcome of provisioning one protocol family for a target
// output fidelity.
type Plan struct {
	// Protocol is the composed (possibly multilevel) protocol that meets
	// the target.
	Protocol Protocol
	// Levels is the recursion depth used.
	Levels int
	// OutputError is the achieved output error rate.
	OutputError float64
	// RawPerOutput is the ideal raw-state cost per distilled state.
	RawPerOutput float64
	// ExpectedRawPerOutput folds in first-order failure retries.
	ExpectedRawPerOutput float64
	// SuccessProbability is the full-run success probability.
	SuccessProbability float64
	// Qubits is the peak logical-qubit footprint.
	Qubits int
	// VolumeProxy is a technology-independent space-time proxy:
	// qubit-steps per distilled output, charging every level its
	// footprint for a duration proportional to its input count and
	// dividing by expected yield. Absolute values are not comparable to
	// simulated cycle counts; ratios between protocols are the point.
	VolumeProxy float64
}

// Provision composes base with itself until the multilevel output error
// meets target, starting from injected error eps. It fails if the base
// protocol does not suppress error at eps (i.e. distillation diverges) or
// if maxLevels is exceeded.
func Provision(base Protocol, eps, target float64, maxLevels int) (*Plan, error) {
	if eps <= 0 || target <= 0 {
		return nil, fmt.Errorf("protocols: error rates must be positive (eps=%g target=%g)", eps, target)
	}
	if base.OutputError(eps) >= eps {
		return nil, fmt.Errorf("protocols: %s does not suppress error at eps=%g (output %g)",
			base.Name(), eps, base.OutputError(eps))
	}
	if maxLevels <= 0 {
		maxLevels = 8
	}
	for l := 1; l <= maxLevels; l++ {
		ml, err := NewMultilevel(base, l)
		if err != nil {
			return nil, err
		}
		var p Protocol = ml
		if l == 1 {
			p = base
		}
		if out := p.OutputError(eps); out <= target {
			return planFor(p, l, eps, out), nil
		}
	}
	return nil, fmt.Errorf("protocols: %s cannot reach %g from %g within %d levels",
		base.Name(), target, eps, maxLevels)
}

func planFor(p Protocol, levels int, eps, out float64) *Plan {
	ps := p.SuccessProbability(eps)
	plan := &Plan{
		Protocol:             p,
		Levels:               levels,
		OutputError:          out,
		RawPerOutput:         RawPerOutput(p),
		ExpectedRawPerOutput: ExpectedRawPerOutput(p, eps),
		SuccessProbability:   ps,
		Qubits:               p.Qubits(),
	}
	plan.VolumeProxy = volumeProxy(p, levels, eps)
	return plan
}

// volumeProxy charges each level its concurrent footprint times a
// duration proportional to its per-module input count, then normalizes by
// outputs and expected yield.
func volumeProxy(p Protocol, levels int, eps float64) float64 {
	ps := p.SuccessProbability(eps)
	if ps <= 0 {
		return math.Inf(1)
	}
	var vol float64
	if ml, ok := p.(Multilevel); ok {
		for r := 1; r <= ml.Levels; r++ {
			modules := ipow(ml.Base.Inputs(), ml.Levels-r) * ipow(ml.Base.Outputs(), r-1)
			vol += float64(modules*ml.Base.Qubits()) * float64(ml.Base.Inputs())
		}
	} else {
		vol = float64(p.Qubits()) * float64(p.Inputs())
	}
	return vol / (float64(p.Outputs()) * ps)
}

// CompareRow pairs a protocol name with its plan for tabular output.
type CompareRow struct {
	Name string
	Plan *Plan
	Err  error
}

// Compare provisions every candidate for the same working point and
// returns one row per candidate, in input order. Candidates that cannot
// meet the target carry a non-nil Err instead of a Plan.
func Compare(candidates []Protocol, eps, target float64, maxLevels int) []CompareRow {
	rows := make([]CompareRow, 0, len(candidates))
	for _, cand := range candidates {
		plan, err := Provision(cand, eps, target, maxLevels)
		rows = append(rows, CompareRow{Name: cand.Name(), Plan: plan, Err: err})
	}
	return rows
}

// DefaultCandidates returns the protocol set of the §III comparison: the
// original 15→1, Bravyi-Haah at a few block sizes, and the asymptotic
// Haah-Hastings model at the given working point.
func DefaultCandidates(eps float64) []Protocol {
	var out []Protocol
	out = append(out, BravyiKitaev15{})
	for _, k := range []int{1, 2, 4, 8} {
		bh, err := NewBravyiHaah(k)
		if err != nil {
			panic(err) // static ks are always valid
		}
		out = append(out, bh)
	}
	out = append(out, DefaultHaahHastings().AtWorkingPoint(eps))
	return out
}
