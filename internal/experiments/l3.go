package experiments

import (
	"context"
	"fmt"
	"io"

	"magicstate/internal/core"
	"magicstate/internal/sweep"
)

// L3Row is one strategy's cost on a three-level factory — one block-code
// level beyond the paper's evaluation, where the inter-round permutation
// overhead compounds twice.
type L3Row struct {
	Strategy string
	Latency  int
	Area     int
	Volume   float64
	Critical int
}

// ThreeLevel runs every strategy on a K=k three-level factory (capacity
// k³). The paper's argument predicts the ordering sharpens with depth:
// the linear mapping pays the permutation overhead twice, so hierarchical
// stitching's round-local embeddings and hop-routed permutations should
// win by more than at two levels.
func ThreeLevel(k int, seed int64) ([]L3Row, error) {
	strategies := []core.Strategy{
		core.StrategyLinear, core.StrategyForceDirected,
		core.StrategyGraphPartition, core.StrategyStitch,
	}
	return sweep.Map(context.Background(), Engine(), strategies, func(_ int, s core.Strategy) (L3Row, error) {
		rep, err := Engine().RunOne(core.Config{K: k, Levels: 3, Reuse: true, Strategy: s, Seed: seed})
		if err != nil {
			return L3Row{}, fmt.Errorf("l3 %v: %w", s, err)
		}
		return L3Row{
			Strategy: s.String(),
			Latency:  rep.Latency,
			Area:     rep.Area,
			Volume:   rep.Volume,
			Critical: rep.CriticalLatency,
		}, nil
	})
}

// WriteThreeLevel renders the three-level comparison.
func WriteThreeLevel(w io.Writer, k int, rows []L3Row) {
	capn := k * k * k
	fmt.Fprintf(w, "Three-level factories (beyond the paper) — K=%d, capacity %d, reuse\n", k, capn)
	tw := newTab(w)
	fmt.Fprintln(tw, "strategy\tlatency\tarea\tvolume\tbound")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.3g\t%d\n", r.Strategy, r.Latency, r.Area, r.Volume, r.Critical)
	}
	tw.Flush()
	var line, hs float64
	for _, r := range rows {
		switch r.Strategy {
		case "Line":
			line = r.Volume
		case "HS":
			hs = r.Volume
		}
	}
	if hs > 0 {
		fmt.Fprintf(w, "Line/HS volume ratio: %.2fx\n", line/hs)
	}
}
