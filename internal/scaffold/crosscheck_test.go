package scaffold

import (
	"testing"

	"magicstate/internal/circuit"
	"magicstate/internal/circuits"
)

// ghzSrc is an n-qubit GHZ preparation in the Fig. 5 language subset.
const ghzSrc = `
#define N 7

module main ( ) {
  qbit q[N];
  H ( q[0] );
  for (int i = 0; i < N - 1; i++) {
    CNOT ( q[i] , q[i + 1] );
  }
}
`

// TestCompileGHZMatchesGenerator cross-checks the Scaffold front end
// against the programmatic workload generator gate-for-gate, the same
// style of check the Fig. 5 listing gets against internal/bravyi.
func TestCompileGHZMatchesGenerator(t *testing.T) {
	compiled, err := Compile(ghzSrc)
	if err != nil {
		t.Fatal(err)
	}
	generated, err := circuits.GHZ(7)
	if err != nil {
		t.Fatal(err)
	}
	if compiled.NumQubits != generated.NumQubits {
		t.Fatalf("qubits: compiled %d, generated %d", compiled.NumQubits, generated.NumQubits)
	}
	if len(compiled.Gates) != len(generated.Gates) {
		t.Fatalf("gates: compiled %d, generated %d", len(compiled.Gates), len(generated.Gates))
	}
	for i := range compiled.Gates {
		cg, gg := &compiled.Gates[i], &generated.Gates[i]
		if cg.Kind != gg.Kind || cg.Control != gg.Control {
			t.Fatalf("gate %d: compiled %s, generated %s", i, cg.String(), gg.String())
		}
		if len(cg.Targets) != len(gg.Targets) {
			t.Fatalf("gate %d: target arity differs", i)
		}
		for j := range cg.Targets {
			if cg.Targets[j] != gg.Targets[j] {
				t.Fatalf("gate %d: compiled %s, generated %s", i, cg.String(), gg.String())
			}
		}
	}
}

// TestCompileGHZKinds double-checks the compiled gate census.
func TestCompileGHZKinds(t *testing.T) {
	compiled, err := Compile(ghzSrc)
	if err != nil {
		t.Fatal(err)
	}
	if got := compiled.CountKind(circuit.KindH); got != 1 {
		t.Errorf("h count = %d, want 1", got)
	}
	if got := compiled.CountKind(circuit.KindCNOT); got != 6 {
		t.Errorf("cnot count = %d, want 6", got)
	}
}
