package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"magicstate/internal/core"
)

// Key is the content address of a pipeline configuration: a SHA-256
// digest of the canonical encoding KeyOf produces. Two core.Config
// values collide on a Key exactly when they are equal, so a Key names a
// result independent of which process (or machine) computed it.
type Key [sha256.Size]byte

// String renders the key as lowercase hex, the form used in logs and
// the /v1/stats output.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey parses the hex form String produces. It is the inverse used
// by the cluster record endpoints, where keys travel in URL paths.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil {
		return k, fmt.Errorf("store: bad key %q: %w", s, err)
	}
	if len(b) != len(k) {
		return k, fmt.Errorf("store: bad key %q: want %d hex bytes, got %d", s, len(k), len(b))
	}
	copy(k[:], b)
	return k, nil
}

// keyFormatVersion is bumped whenever the canonical encoding below
// changes meaning (field added, renamed, or reinterpreted). Bumping it
// changes every key, which safely orphans — never misreads — records
// written by older encodings.
const keyFormatVersion = 3

// KeyOf returns the canonical content address of cfg. The encoding
// writes every Config field (including the nested cost model and the
// force-directed and stitching option blocks) by name in a fixed order,
// so the digest is stable across processes, platforms and Go versions
// for as long as keyFormatVersion stands. TestKeyGuardsConfigFields
// pins the Config field set so a new field cannot silently be left out
// of the encoding (which would serve stale results for configs that
// differ only in that field).
func KeyOf(cfg core.Config) Key {
	h := sha256.New()
	fmt.Fprintf(h, "magicstate/store v%d\n", keyFormatVersion)
	fmt.Fprintf(h, "K=%d Levels=%d Reuse=%t NoBarriers=%t Strategy=%d Seed=%d\n",
		cfg.K, cfg.Levels, cfg.Reuse, cfg.NoBarriers, int(cfg.Strategy), cfg.Seed)
	fmt.Fprintf(h, "Cost={Prep=%d H=%d Meas=%d CNOT=%d CXX=%d Inject=%d Move=%d}\n",
		cfg.Cost.Prep, cfg.Cost.H, cfg.Cost.Meas, cfg.Cost.CNOT, cfg.Cost.CXX,
		cfg.Cost.Inject, cfg.Cost.Move)
	fmt.Fprintf(h, "MeshMode=%d RouteMargin=%d Style=%d Distance=%d RecordPaths=%t\n",
		int(cfg.MeshMode), cfg.RouteMargin, int(cfg.Style), cfg.Distance, cfg.RecordPaths)
	// FD.RestartWorkers is deliberately left out: it only caps restart
	// concurrency and can never change the winning placement (guarded by
	// TestAnnealRestartsDeterministicAcrossWorkerWidths), so configs that
	// differ only in worker width share one stored result.
	fmt.Fprintf(h, "FD={Iterations=%d Seed=%d WAttract=%g WRepulse=%g WDipole=%g CostSample=%d MarginRows=%d DisableDipole=%t DisableCommunity=%t Restarts=%d}\n",
		cfg.FD.Iterations, cfg.FD.Seed, cfg.FD.WAttract, cfg.FD.WRepulse, cfg.FD.WDipole,
		cfg.FD.CostSample, cfg.FD.MarginRows, cfg.FD.DisableDipole, cfg.FD.DisableCommunity,
		cfg.FD.Restarts)
	fmt.Fprintf(h, "Stitch={Seed=%d Reuse=%t Hops=%d HopIters=%d DisablePortReassign=%t ExpandSpacing=%d NoBarriers=%t}\n",
		cfg.Stitch.Seed, cfg.Stitch.Reuse, int(cfg.Stitch.Hops), cfg.Stitch.HopIters,
		cfg.Stitch.DisablePortReassign, cfg.Stitch.ExpandSpacing, cfg.Stitch.NoBarriers)
	// %q makes the string fields self-delimiting, so no crafted source
	// text can collide with another field's encoding.
	fmt.Fprintf(h, "Workload=%q WorkloadSource=%q Defects=%q\n",
		cfg.Workload, cfg.WorkloadSource, cfg.Defects)
	var k Key
	h.Sum(k[:0])
	return k
}

// Cacheable reports whether cfg's result can be served from disk. A
// stored Record keeps only the scalar outcome of a run, so configs
// whose callers need the in-memory simulation artifacts — RecordPaths
// retains braid paths for trace rendering and congestion maps — must
// always recompute and are excluded from the durable tier.
func Cacheable(cfg core.Config) bool { return !cfg.RecordPaths }
