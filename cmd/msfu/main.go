// Command msfu (magic-state functional unit) builds, maps and simulates
// Bravyi-Haah block-code distillation factories and prints their
// resource reports.
//
// Usage:
//
//	msfu -capacity 16 -levels 2 -strategy hs -reuse [-seed N] [-estimate]
//	msfu -capacity 4,16,36 -levels 2 -strategy line,hs -reuse -parallel 4
//	msfu store verify [-repair] DIR
//
// Strategies: random, line, fd, gp, hs (default: hs for levels>=2, line
// otherwise).
//
// -capacity and -strategy accept comma-separated lists; the cross
// product of the two becomes a batch evaluated through
// magicstate.OptimizeBatch on -parallel workers (default: one per CPU;
// 1 evaluates points one at a time, exactly as repeated single runs
// would). Reports always print in capacity-major, strategy-minor order
// and are byte-identical at every -parallel setting, so the flag trades
// wall-clock only.
//
// -checkpoint DIR persists every computed point to a durable result
// store and serves repeated points from it across invocations — the
// same store directory paperbench -checkpoint and msfud -store use.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"magicstate"
)

func main() {
	// Subcommands go before flag parsing: "msfu store ..." is offline
	// store maintenance, everything else is the classic sweep CLI.
	if len(os.Args) > 1 && os.Args[1] == "store" {
		os.Exit(storeCmd(os.Args[2:]))
	}
	capacities := flag.String("capacity", "8", "distilled states per factory run (k^levels); comma-separated list sweeps a batch")
	levels := flag.Int("levels", 1, "block-code recursion depth")
	strategy := flag.String("strategy", "", "mapping strategy: random|line|fd|gp|hs, comma-separated list sweeps a batch (default: hs for levels>=2, line otherwise)")
	reuse := flag.Bool("reuse", false, "reuse measured qubits across rounds")
	seed := flag.Int64("seed", 1, "random seed")
	noBarriers := flag.Bool("nobarriers", false, "drop inter-round scheduling fences")
	estimate := flag.Bool("estimate", false, "also print the physical resource estimate")
	traceFlag := flag.Bool("trace", false, "also print a utilization trace (concurrency, per-round timing)")
	style := flag.String("style", "braiding", "interaction style: braiding|surgery|teleport (§IX)")
	distance := flag.Int("distance", 0, "code distance for distance-sensitive styles (default 7)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "batch workers for capacity/strategy sweeps (1 = serial)")
	checkpoint := flag.String("checkpoint", "", "durable result store directory; repeated points are served from disk across runs")
	flag.Parse()

	st, err := magicstate.ParseStyle(*style)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	caps, err := parseCapacities(*capacities)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	baseOpts := magicstate.Options{
		Seed: *seed, DisableBarriers: *noBarriers, Trace: *traceFlag,
		Style: st, Distance: *distance,
	}
	strategies, err := parseStrategies(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// The capacity x strategy cross product is one batch; a single
	// capacity and strategy is just a batch of one.
	var points []magicstate.BatchPoint
	for _, capacity := range caps {
		for _, s := range strategies {
			opts := baseOpts
			if s != nil {
				opts = opts.WithStrategy(*s)
			}
			points = append(points, magicstate.BatchPoint{
				Spec: magicstate.FactorySpec{Capacity: capacity, Levels: *levels, Reuse: *reuse},
				Opts: opts,
			})
		}
	}
	results, err := magicstate.OptimizeBatch(points, magicstate.BatchOptions{Parallelism: *parallel, Checkpoint: *checkpoint})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	for i, res := range results {
		if i > 0 {
			fmt.Println()
		}
		pt := points[i]
		fmt.Printf("factory: capacity %d, %d level(s), reuse=%v, strategy=%s\n",
			pt.Spec.Capacity, pt.Spec.Levels, pt.Spec.Reuse, res.Strategy)
		fmt.Printf("  latency:  %d cycles (lower bound %d)\n", res.Latency, res.CriticalLatency)
		fmt.Printf("  area:     %d logical qubits\n", res.Area)
		fmt.Printf("  volume:   %.4g qubit-cycles (lower bound %.4g)\n", res.Volume, res.CriticalVolume)
		if res.PermutationLatency > 0 {
			fmt.Printf("  permute:  %d cycles (inter-round step)\n", res.PermutationLatency)
		}

		if *traceFlag {
			fmt.Print(res.Trace)
		}

		if *estimate {
			est, err := magicstate.EstimateResources(pt.Spec)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("physical estimate (p=1e-3, inject=5e-3, balanced investment):\n")
			for r, d := range est.RoundDistances {
				fmt.Printf("  round %d: distance %d, %d physical qubits\n",
					r+1, d, est.PhysicalQubitsPerRound[r])
			}
			fmt.Printf("  output state error: %.3g\n", est.OutputError)
			fmt.Printf("  expected runs per successful batch: %.3f\n", est.ExpectedRunsPerBatch)
		}
	}
}

// parseCapacities reads the -capacity list.
func parseCapacities(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad capacity %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// parseStrategies reads the -strategy list; a nil entry keeps the
// level-dependent default.
func parseStrategies(s string) ([]*magicstate.Strategy, error) {
	if s == "" {
		return []*magicstate.Strategy{nil}, nil
	}
	var out []*magicstate.Strategy
	for _, part := range strings.Split(s, ",") {
		st, err := magicstate.ParseStrategy(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, &st)
	}
	return out, nil
}
