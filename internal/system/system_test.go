package system

import "testing"

func base() Config {
	return Config{
		FactoryLatency: 100,
		BatchSize:      10,
		SuccessProb:    0.9,
		Factories:      2,
		BufferSize:     50,
		DemandRate:     0.1,
		Cycles:         20000,
		Seed:           1,
	}
}

func TestValidate(t *testing.T) {
	if err := base().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := base()
	bad.SuccessProb = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero success probability should fail")
	}
	bad = base()
	bad.Factories = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero factories should fail")
	}
	bad = base()
	bad.DemandRate = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative demand should fail")
	}
}

func TestZeroDemandNeverStalls(t *testing.T) {
	cfg := base()
	cfg.DemandRate = 0
	r, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stalled != 0 || r.Served != 0 {
		t.Errorf("no demand: served %d stalled %d", r.Served, r.Stalled)
	}
	if r.AvgOccupancy <= 0 {
		t.Error("buffer should fill with no demand")
	}
}

func TestOversupplyServesEverything(t *testing.T) {
	cfg := base()
	// Supply 2*10*0.9/100 = 0.18 states/cycle vs demand 0.05.
	cfg.DemandRate = 0.05
	r, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.StallFraction() > 0.05 {
		t.Errorf("oversupplied farm stalls %.1f%% of requests", 100*r.StallFraction())
	}
	if r.Wasted == 0 {
		t.Error("oversupply with a finite buffer should waste some states")
	}
}

func TestUndersupplyStalls(t *testing.T) {
	cfg := base()
	cfg.DemandRate = 1.0 // demand 1 state/cycle vs supply 0.18
	r, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.StallFraction() < 0.5 {
		t.Errorf("undersupplied farm should stall most requests, got %.1f%%", 100*r.StallFraction())
	}
	if r.StallCycles == 0 {
		t.Error("stall cycles should accumulate")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a, err := Simulate(base())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(base())
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Error("same seed must reproduce identical results")
	}
}

func TestMaintenanceReserveCompensatesLosses(t *testing.T) {
	cfg := base()
	cfg.SuccessProb = 0.5 // heavy failures
	cfg.DemandRate = 0.08
	plain, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaintenanceReserve = 30
	backed, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if backed.CompensatedBatches == 0 {
		t.Fatal("reserve never exercised")
	}
	if backed.StallFraction() > plain.StallFraction() {
		t.Errorf("loss compensation should not increase stalls: %.3f vs %.3f",
			backed.StallFraction(), plain.StallFraction())
	}
}

func TestFactoriesFor(t *testing.T) {
	cfg := base()
	cfg.DemandRate = 0.5
	n := FactoriesFor(cfg, 1.1)
	// Need n * 10 * 0.9 / 100 >= 0.55 -> n >= 6.1 -> 7.
	if n != 7 {
		t.Errorf("factories = %d, want 7", n)
	}
	// And a farm with that many factories should mostly keep up.
	cfg.Factories = n
	cfg.BufferSize = 200
	r, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.StallFraction() > 0.15 {
		t.Errorf("sized farm stalls %.1f%%", 100*r.StallFraction())
	}
	if FactoriesFor(Config{}, 1) != 0 {
		t.Error("degenerate config should size to 0")
	}
}

func TestBufferSweepMonotoneTrend(t *testing.T) {
	cfg := base()
	cfg.DemandRate = 0.17 // just under supply: buffering matters
	pts, err := BufferSweep(cfg, []int{1, 10, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatal("want 3 points")
	}
	if pts[2].StallFraction > pts[0].StallFraction {
		t.Errorf("bigger buffers should not stall more: %+v", pts)
	}
	if pts[2].AvgOccupancy < pts[0].AvgOccupancy {
		t.Errorf("bigger buffers should hold more: %+v", pts)
	}
}

func TestYieldHistogramValidation(t *testing.T) {
	base := Config{
		FactoryLatency: 100, BatchSize: 4, SuccessProb: 0.5,
		Factories: 1, BufferSize: 16, DemandRate: 0.01, Cycles: 1000,
	}
	bad := base
	bad.YieldHistogram = []int{1, 1} // wrong length
	if _, err := Simulate(bad); err == nil {
		t.Error("wrong-length histogram accepted")
	}
	bad = base
	bad.YieldHistogram = []int{0, 0, 0, 0, 0}
	if _, err := Simulate(bad); err == nil {
		t.Error("zero-mass histogram accepted")
	}
	bad = base
	bad.YieldHistogram = []int{1, -1, 0, 0, 0}
	if _, err := Simulate(bad); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestYieldHistogramProductionMatchesMean(t *testing.T) {
	// Histogram: half the batches deliver 0, half deliver 4 → mean 2 per
	// batch, same as SuccessProb 0.5 with batch 4; production should
	// match the all-or-nothing model closely.
	cfg := Config{
		FactoryLatency: 50, BatchSize: 4, SuccessProb: 0.5,
		Factories: 2, BufferSize: 1 << 20, DemandRate: 0, Cycles: 100000,
		Seed: 7,
	}
	allOrNothing, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.YieldHistogram = []int{1, 0, 0, 0, 1}
	hist, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(hist.Produced) / float64(allOrNothing.Produced)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("histogram production %d vs all-or-nothing %d (ratio %.2f)",
			hist.Produced, allOrNothing.Produced, ratio)
	}
	// A partial-yield histogram with the same mean smooths production.
	cfg.YieldHistogram = []int{0, 0, 1, 0, 0} // always 2 states
	smooth, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sr := float64(smooth.Produced) / float64(allOrNothing.Produced)
	if sr < 0.9 || sr > 1.1 {
		t.Errorf("smooth production ratio %.2f", sr)
	}
	if smooth.FailedBatches != 0 {
		t.Errorf("always-2 histogram recorded %d failed batches", smooth.FailedBatches)
	}
}
