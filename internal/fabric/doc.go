// Package fabric is the cluster layer that shards the msfud evaluation
// service horizontally: it consistent-hashes the store's canonical
// config key (store.Key) across N named nodes, routes point evaluations
// to the owning node, and backs the store's read-through peer tier — on
// a local miss the record is fetched from its owner over HTTP before
// anything is recomputed.
//
// Robustness is the package's first concern, because a cluster is only
// useful if a dead or partitioned peer degrades service instead of
// failing requests:
//
//   - Peer calls go through the retrying internal/httpclient (jittered
//     backoff, Retry-After honored) under a per-call timeout.
//   - Every peer has a circuit breaker: consecutive failures open it,
//     open breakers skip the peer outright, and after a cooldown a
//     single half-open probe (live traffic or the background prober)
//     decides whether it closes again.
//   - Whenever the owner is unreachable, slow, or serves bad bytes, the
//     caller falls back to computing the point locally. Correctness
//     never depends on the fabric: records are content-addressed, every
//     payload crossing the wire carries its SHA-256 and is re-hashed on
//     receipt, and a digest or key mismatch is treated exactly like a
//     dead peer.
//   - Freshly computed records a node owns are replicated best-effort
//     and asynchronously to the next node on the ring, so a restarted
//     peer warms back up from its neighbor.
//
// The package also carries the peer-layer fault-injection plan
// (-fault-peer: drop, stall and corrupt schedules) so partition,
// slow-peer and corrupt-record paths are deterministically testable,
// mirroring the store's -fault-store grammar.
package fabric
