package fabric

import (
	"encoding/binary"
	"testing"

	"magicstate/internal/store"
)

// keyWithPoint fabricates a key whose ring point is exactly p. Only the
// first 8 bytes matter for placement.
func keyWithPoint(p uint64) store.Key {
	var k store.Key
	binary.BigEndian.PutUint64(k[:8], p)
	return k
}

// keyOwnedBy finds a key that node owns on r, by scanning points.
func keyOwnedBy(t *testing.T, r *Ring, node string) store.Key {
	t.Helper()
	for i := uint64(0); i < 1_000_000; i++ {
		k := keyWithPoint(i * 0x9e3779b97f4a7c15) // golden-ratio stride
		if r.Owner(k) == node {
			return k
		}
	}
	t.Fatalf("no key owned by %s found", node)
	return store.Key{}
}

func TestRingMembershipDefinesOwnership(t *testing.T) {
	a, err := NewRing([]string{"n1", "n2", "n3"})
	if err != nil {
		t.Fatal(err)
	}
	// Different argument order, duplicates included: same ring.
	b, err := NewRing([]string{"n3", "n1", "n2", "n1"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		k := keyWithPoint(uint64(i) * 0x9e3779b97f4a7c15)
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("rings disagree on owner of %s: %s vs %s", k, a.Owner(k), b.Owner(k))
		}
	}
}

func TestRingErrors(t *testing.T) {
	if _, err := NewRing(nil); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", ""}); err == nil {
		t.Fatal("empty node id accepted")
	}
}

func TestRingBalance(t *testing.T) {
	r, err := NewRing([]string{"n1", "n2", "n3"})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 30_000
	for i := 0; i < n; i++ {
		k := keyWithPoint(uint64(i) * 0x9e3779b97f4a7c15)
		counts[r.Owner(k)]++
	}
	for node, c := range counts {
		frac := float64(c) / n
		// Perfect balance is 1/3; with 64 vnodes/node anything inside
		// [0.2, 0.5] is fine — the test guards gross misplacement (one
		// node owning everything), not statistical polish.
		if frac < 0.20 || frac > 0.50 {
			t.Errorf("node %s owns %.1f%% of keys, want roughly a third", node, 100*frac)
		}
	}
}

func TestRingSuccessorDistinctFromOwner(t *testing.T) {
	r, err := NewRing([]string{"n1", "n2", "n3"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		k := keyWithPoint(uint64(i) * 0x9e3779b97f4a7c15)
		owner, succ := r.Owner(k), r.Successor(k)
		if succ == "" {
			t.Fatalf("no successor for %s on a 3-node ring", k)
		}
		if succ == owner {
			t.Fatalf("successor of %s equals owner %s", k, owner)
		}
	}
}

func TestRingSingleNode(t *testing.T) {
	r, err := NewRing([]string{"solo"})
	if err != nil {
		t.Fatal(err)
	}
	k := keyWithPoint(42)
	if got := r.Owner(k); got != "solo" {
		t.Fatalf("Owner = %s, want solo", got)
	}
	if got := r.Successor(k); got != "" {
		t.Fatalf("Successor on 1-node ring = %q, want empty", got)
	}
}

func TestRingWraps(t *testing.T) {
	r, err := NewRing([]string{"n1", "n2"})
	if err != nil {
		t.Fatal(err)
	}
	// A point above every vnode hash must wrap to the first vnode.
	top := keyWithPoint(^uint64(0))
	first := r.vnodes[0].node
	if got := r.Owner(top); got != first {
		t.Fatalf("Owner(max point) = %s, want wrap to %s", got, first)
	}
}
