// Package mesh is the cycle-accurate surface-code braid network simulator
// (the substrate of §VIII.A, reimplementing the role of the MICRO'17 tool
// [1]). Logical qubit tiles sit on a W x H grid; between and around tiles
// runs a lattice of routing channel cells. A two-qubit gate claims a
// connected path of free channel cells between its endpoint tiles for the
// gate's whole duration; a multi-target CXX claims a connected tree
// touching the control and every target. Braids may not overlap in space
// and time: a gate that cannot claim a conflict-free path stalls until a
// running braid releases its cells (oldest-first arbitration), exactly the
// behaviour the paper's congestion results rest on.
//
// # Entry points
//
// Simulate is the one-shot call: it borrows a pooled Simulator, runs the
// circuit, and returns a freshly allocated Result. Callers that simulate
// repeatedly — the planner's candidate search, the force-directed
// mapper's cost evaluations, stitching, sweep-engine grid points — hold
// a Simulator of their own so the arena state (router scratch, ready
// queues, path buffers, the cached dependency DAG) carries across calls
// instead of being reallocated; see the Simulator type for the event
// loop and reuse rules.
//
// # Knobs
//
// Config selects the routing discipline (RouteMode, RouteMargin), the
// gate cost model, and the §IX interaction style (InteractionStyle:
// braiding, lattice surgery, or teleportation — braiding reproduces the
// paper). Every simulation is deterministic in its inputs: the same
// circuit, placement and Config always produce the same Result, which
// is what lets results be memoized in-process (internal/sweep/memo) and
// persisted across processes (internal/store) without changing any
// artifact.
//
// Diagnostics live beside the simulator: CongestionMap aggregates
// per-channel braid occupancy from a recorded run and RenderCongestion
// draws it, the render.go helpers draw placements, and Result.Paths
// (with Config.RecordPaths) retains every braid's claimed cells so
// overlap invariants can be audited after the fact.
package mesh
