// Command msfud (magic-state functional unit daemon) serves factory
// optimization over HTTP: the same pipeline the msfu and paperbench
// CLIs run, behind a long-running process with a two-tier result cache
// (in-memory memo + optional durable store), so any given (capacity,
// level, strategy, style, seed) point is computed once — ever, when a
// -store directory is given — no matter how many requests ask for it.
//
// Usage:
//
//	msfud [-addr HOST:PORT] [-store DIR] [-parallel N] [-max-points N]
//	      [-max-inflight N] [-max-queue N] [-rate R] [-burst B]
//	      [-request-timeout D] [-drain-timeout D] [-addr-file FILE]
//	      [-node-id ID -peers ID=URL,...] [-replicate] [-peer-timeout D]
//
// Endpoints (see API.md for request/response bodies and curl examples):
//
//	POST   /v1/optimize   one point, synchronous
//	POST   /v1/batch      a grid; 202 + job id, or SSE progress with ?stream=1
//	GET    /v1/jobs/{id}  poll a batch job
//	DELETE /v1/jobs/{id}  cancel a batch job
//	GET    /v1/stats      cache hit rates, job counters, uptime
//	GET    /metrics       the same counters, Prometheus text format
//
// Cluster mode (see DESIGN.md "Fabric & failover"): -node-id names this
// node and -peers lists every cluster member as ID=URL pairs (the entry
// for this node's own ID may omit the URL). Each canonical point key is
// owned by one node on a consistent-hash ring; misses route to the
// owner first (record fetch, then forwarded evaluation) and fall back
// to local compute when the owner is unreachable or its circuit breaker
// is open, so a partitioned cluster degrades to N independent nodes,
// never to wrong answers. Cluster mode adds peer endpoints
// (/v1/record/{key}, /v1/fabric/eval, /v1/ping) and GET /v1/cluster,
// the aggregated cluster view.
//
// -parallel caps the worker pool any single request may use (default:
// one per CPU); requests may ask for less, never more. -max-points
// bounds a single batch request's grid expansion. -store enables the
// durable tier: results are persisted to DIR (created on first use,
// crash-recovered on open) and served from disk across restarts.
//
// Overload behavior (see DESIGN.md "Admission control"): at most
// -max-inflight compute-carrying requests execute at once, -max-queue
// more wait, and the rest answer 429 + Retry-After. Cache hits bypass
// the budget entirely. -rate adds a per-client token bucket;
// -request-timeout bounds one synchronous request's total service time
// and propagates as a context deadline into the pipeline.
//
// -addr supports port 0 for an OS-assigned port; the resolved address
// is printed on stdout and, with -addr-file, written to FILE — which is
// how the CI smoke test boots the service on a random free port.
//
// SIGINT/SIGTERM shut the service down gracefully: new compute requests
// answer 503 + Retry-After, in-flight requests and jobs are cancelled,
// live SSE streams get their terminal frame, and the store is flushed
// and closed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"magicstate"
	"magicstate/internal/fabric"
	"magicstate/internal/store"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8350", "listen address (port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the resolved listen address to this file once serving")
	storeDir := flag.String("store", "", "durable result store directory (empty = in-memory cache only)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "max sweep workers any single request may use")
	maxPoints := flag.Int("max-points", 4096, "max grid points one batch request may expand to")
	maxInflight := flag.Int("max-inflight", runtime.NumCPU(), "max compute-carrying requests executing at once")
	maxQueue := flag.Int("max-queue", 64, "max requests waiting for an execution slot (beyond it: 429)")
	rate := flag.Float64("rate", 0, "per-client rate limit in requests/second (0 = unlimited)")
	burst := flag.Float64("burst", 0, "per-client burst size (0 = max(1, rate))")
	requestTimeout := flag.Duration("request-timeout", 0, "deadline for one synchronous request, queue wait included (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long shutdown waits for in-flight work")
	faultStore := flag.String("fault-store", "", "TESTING ONLY: store fault injection plan, e.g. failwrite=3,stall=5:10ms")
	nodeID := flag.String("node-id", "", "this node's name in the cluster (required with -peers)")
	peers := flag.String("peers", "", "cluster members as ID=URL pairs, comma separated (this node's own URL may be omitted)")
	replicate := flag.Bool("replicate", true, "in cluster mode, replicate fresh records to the next node on the ring")
	peerTimeout := flag.Duration("peer-timeout", 2*time.Second, "deadline for one peer fetch or forwarded evaluation")
	faultPeer := flag.String("fault-peer", "", "TESTING ONLY: peer fault injection plan, e.g. drop=5,stall=10:50ms,corrupt=7")
	flag.Parse()

	cfg := serverConfig{
		MaxParallel:    *parallel,
		MaxPoints:      *maxPoints,
		MaxInflight:    *maxInflight,
		MaxQueue:       *maxQueue,
		Rate:           *rate,
		Burst:          *burst,
		RequestTimeout: *requestTimeout,
	}
	cl := clusterConfig{
		NodeID:      *nodeID,
		Peers:       *peers,
		Replicate:   *replicate,
		PeerTimeout: *peerTimeout,
		FaultPlan:   *faultPeer,
	}
	if err := run(*addr, *addrFile, *storeDir, *faultStore, cfg, cl, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// clusterConfig carries the cluster flags from main to run.
type clusterConfig struct {
	NodeID      string
	Peers       string
	Replicate   bool
	PeerTimeout time.Duration
	FaultPlan   string
}

// parsePeers splits "-peers a=http://host:1,b=http://host:2" into the
// member list and the URL map. An entry with no '=' names a member
// without an address (legal only for the node itself — it never dials
// its own URL).
func parsePeers(spec string) (nodes []string, urls map[string]string, err error) {
	urls = make(map[string]string)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, found := strings.Cut(part, "=")
		id = strings.TrimSpace(id)
		if id == "" {
			return nil, nil, fmt.Errorf("peer entry %q has no node id", part)
		}
		nodes = append(nodes, id)
		if found {
			url = strings.TrimRight(strings.TrimSpace(url), "/")
			if url == "" {
				return nil, nil, fmt.Errorf("peer entry %q has an empty URL", part)
			}
			urls[id] = url
		}
	}
	if len(nodes) == 0 {
		return nil, nil, fmt.Errorf("-peers lists no members")
	}
	return nodes, urls, nil
}

// run wires the batcher, fabric, listener and signal handling; split
// from main so every exit path returns through the deferred cleanup.
func run(addr, addrFile, storeDir, faultSpec string, cfg serverConfig, cl clusterConfig, drainTimeout time.Duration) error {
	if faultSpec != "" {
		// Validate eagerly so a typo'd plan fails at boot, not mid-soak.
		if _, err := store.ParseFaultPlan(faultSpec); err != nil {
			return fmt.Errorf("-fault-store: %w", err)
		}
		fmt.Println("msfud: WARNING: store fault injection active (-fault-store); not for production")
	}

	opts := magicstate.BatcherOptions{
		Parallelism: cfg.MaxParallel,
		Checkpoint:  storeDir,
		StoreFaults: faultSpec,
	}
	var fab *fabric.Fabric
	if cl.Peers != "" || cl.NodeID != "" {
		nodes, urls, err := parsePeers(cl.Peers)
		if err != nil {
			return fmt.Errorf("-peers: %w", err)
		}
		fab, err = fabric.New(fabric.Options{
			Self:      cl.NodeID,
			Nodes:     nodes,
			URLs:      urls,
			Timeout:   cl.PeerTimeout,
			Replicate: cl.Replicate,
		})
		if err != nil {
			return err
		}
		opts.RemoteFetch = func(ctx context.Context, key [32]byte) ([]byte, bool) {
			return fab.Fetch(ctx, key)
		}
		opts.RemoteEval = func(ctx context.Context, key [32]byte, cfgJSON []byte) ([]byte, bool) {
			return fab.Evaluate(ctx, key, cfgJSON)
		}
		opts.OnStore = func(key [32]byte, payload []byte) {
			fab.NotifyPut(key, payload)
		}
		cfg.Fabric = fab
	}
	if cl.FaultPlan != "" {
		if fab == nil {
			return fmt.Errorf("-fault-peer requires cluster mode (-peers)")
		}
		plan, err := fabric.ParsePeerFaultPlan(cl.FaultPlan)
		if err != nil {
			return fmt.Errorf("-fault-peer: %w", err)
		}
		cfg.PeerFaults = plan
		fmt.Println("msfud: WARNING: peer fault injection active (-fault-peer); not for production")
	}

	b, err := magicstate.NewBatcher(opts)
	if err != nil {
		return err
	}
	defer b.Close()

	if fab != nil {
		// The replication worker and breaker prober live until shutdown;
		// cancelling before the deferred b.Close keeps them from racing
		// the closing store.
		fabCtx, fabCancel := context.WithCancel(context.Background())
		defer fabCancel()
		go fab.Run(fabCtx)
	}

	srv := newServer(b, cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	resolved := ln.Addr().String()
	fmt.Printf("msfud listening on http://%s\n", resolved)
	if storeDir != "" {
		fmt.Printf("msfud durable store: %s (%d records)\n", storeDir, b.Stats().StoredRecords)
	}
	if fab != nil {
		fmt.Printf("msfud cluster: node %s of %s (replicate=%v)\n",
			fab.Self(), strings.Join(fab.Nodes(), ","), cl.Replicate)
	}
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(resolved), 0o644); err != nil {
			return err
		}
	}

	hs := &http.Server{Handler: srv.handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Printf("msfud: %v, shutting down\n", s)
		// Drain order: flip to draining first (new compute answers 503
		// + Retry-After, jobs and SSE streams are cancelled), then let
		// the HTTP layer finish writing responses, then wait for job
		// goroutines before the deferred store close, so nothing races
		// a PutReport against the closing store.
		srv.startDrain()
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		err := hs.Shutdown(ctx)
		srv.awaitJobs(drainTimeout)
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return nil
	}
}
