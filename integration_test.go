// Cross-substrate integration tests: each one chains several packages the
// way the examples and the provisioning planner do, so regressions at the
// seams (yield histograms feeding the farm model, traces reading mapped
// runs, stitched circuits surviving the simulator's invariants) surface
// in `go test .` rather than only in examples.
package magicstate_test

import (
	"strings"
	"testing"

	"magicstate/internal/bravyi"
	"magicstate/internal/circuits"
	"magicstate/internal/core"
	"magicstate/internal/mesh"
	"magicstate/internal/montecarlo"
	"magicstate/internal/resource"
	"magicstate/internal/subdiv"
	"magicstate/internal/system"
	"magicstate/internal/trace"
)

// TestYieldFeedsFarm wires the Monte-Carlo partial-yield histogram into
// the system-level farm simulation: the farm's realized production per
// batch must track the sampler's mean outputs.
func TestYieldFeedsFarm(t *testing.T) {
	params := bravyi.Params{K: 2, Levels: 2, Barriers: true}
	sum, err := montecarlo.Run(montecarlo.Config{
		Params: params, Trials: 20000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := system.Config{
		FactoryLatency: 500,
		BatchSize:      params.Capacity(),
		SuccessProb:    1, // overridden by the histogram
		Factories:      3,
		BufferSize:     1 << 20,
		DemandRate:     0,
		Cycles:         200000,
		YieldHistogram: sum.Outputs,
		Seed:           5,
	}
	res, err := system.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	batches := cfg.Factories * cfg.Cycles / cfg.FactoryLatency
	perBatch := float64(res.Produced) / float64(batches)
	if diff := perBatch - sum.MeanOutputs; diff > 0.2 || diff < -0.2 {
		t.Errorf("farm delivered %.2f states/batch, sampler mean %.2f", perBatch, sum.MeanOutputs)
	}
}

// TestTraceReadsEveryStrategy runs the full Fig. 3 pipeline under every
// mapping strategy and checks the trace diagnostics stay coherent.
func TestTraceReadsEveryStrategy(t *testing.T) {
	for _, s := range core.Strategies(2) {
		rep, err := core.Run(core.Config{K: 2, Levels: 2, Reuse: true, Strategy: s, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		spans, err := trace.RoundTimeline(rep.Factory, rep.Sim)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if len(spans) != 2 {
			t.Fatalf("%v: %d round spans", s, len(spans))
		}
		if spans[1].PermCycles() <= 0 {
			t.Errorf("%v: no permutation window in round 2", s)
		}
		var sb strings.Builder
		if err := trace.WriteReport(&sb, rep.Factory, rep.Sim); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !strings.Contains(sb.String(), "permutation share") {
			t.Errorf("%v: report incomplete", s)
		}
	}
}

// TestStitchedWorkloadsSurviveStyles runs subdivision-stitched arbitrary
// circuits under every interaction style and audits the space-time
// overlap invariant end to end.
func TestStitchedWorkloadsSurviveStyles(t *testing.T) {
	c, err := circuits.HierarchicalRandom(circuits.HierarchicalOptions{
		Blocks: 3, QubitsPerBlock: 6, Phases: 3,
		IntraCNOTs: 10, BridgeCNOTs: 2, Barriers: true, Shuffle: true, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := subdiv.Stitch(c, subdiv.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, style := range mesh.Styles() {
		res, err := mesh.Simulate(st.Circuit, st.Placement, mesh.Config{
			Style: style, RecordPaths: true,
		})
		if err != nil {
			t.Fatalf("%v: %v", style, err)
		}
		if err := res.CheckNoOverlaps(); err != nil {
			t.Errorf("%v: %v", style, err)
		}
	}
}

// TestProvisioningConsistency cross-checks the planner's derating factor
// against the resource model it is built on.
func TestProvisioningConsistency(t *testing.T) {
	params := bravyi.Params{K: 2, Levels: 2, Barriers: true}
	em := resource.DefaultError()
	runs := resource.ExpectedRunsPerSuccess(params, em)
	yield := montecarlo.AnalyticFullYield(params, em)
	if got := runs * yield; got < 0.999 || got > 1.001 {
		t.Errorf("runs x yield = %g, want 1", got)
	}
}
