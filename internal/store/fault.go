package store

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// ErrInjected marks a deliberately injected fault. Tests and soak
// harnesses match on it (errors.Is) to tell manufactured failures from
// real ones.
var ErrInjected = errors.New("store: injected fault")

// FaultPlan schedules deliberate failures into a store's file
// operations so that recovery behavior is exercised on purpose rather
// than hoped for. Operation counts are 1-based and shared across both
// store files (log and index) in issue order, which makes a plan
// deterministic for a serial writer: "the 7th write fails" names one
// specific record boundary. The zero value injects nothing.
//
// A plan must not be shared between stores — its counters are the
// fault schedule's clock, and two stores advancing one clock would
// make both schedules meaningless.
type FaultPlan struct {
	// FailWriteOp makes the nth Write fail outright with ErrInjected
	// before touching the disk (0 = never).
	FailWriteOp int64
	// ShortWriteOp makes the nth Write a torn write: the first half of
	// the buffer reaches the file, then ErrInjected (0 = never). This is
	// the mid-op crash shape recovery must confine.
	ShortWriteOp int64
	// FailSyncOp makes the nth Sync fail with ErrInjected after skipping
	// the flush (0 = never).
	FailSyncOp int64
	// StallEveryOp, when > 0, makes every nth Write sleep Stall first —
	// a slow-disk simulation for backpressure and drain testing.
	StallEveryOp int64
	// Stall is the per-stall sleep; ignored unless StallEveryOp > 0.
	Stall time.Duration

	writes atomic.Int64
	syncs  atomic.Int64
}

// ParseFaultPlan parses the comma-separated spec grammar the msfud
// -fault-store flag and BatcherOptions.StoreFaults accept:
//
//	failwrite=N    nth write fails outright
//	shortwrite=N   nth write tears (half lands, then an error)
//	failsync=N     nth sync fails
//	stall=N:DUR    every nth write first sleeps DUR (e.g. 10:2ms)
//
// An empty spec yields an inject-nothing plan.
func ParseFaultPlan(spec string) (*FaultPlan, error) {
	p := &FaultPlan{}
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("store: fault spec %q: want key=value", part)
		}
		switch k {
		case "failwrite", "shortwrite", "failsync":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("store: fault spec %q: want a non-negative op count", part)
			}
			switch k {
			case "failwrite":
				p.FailWriteOp = n
			case "shortwrite":
				p.ShortWriteOp = n
			case "failsync":
				p.FailSyncOp = n
			}
		case "stall":
			nStr, durStr, ok := strings.Cut(v, ":")
			if !ok {
				return nil, fmt.Errorf("store: fault spec %q: want stall=N:DURATION", part)
			}
			n, err := strconv.ParseInt(nStr, 10, 64)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("store: fault spec %q: want a positive op interval", part)
			}
			d, err := time.ParseDuration(durStr)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("store: fault spec %q: bad duration", part)
			}
			p.StallEveryOp, p.Stall = n, d
		default:
			return nil, fmt.Errorf("store: fault spec: unknown key %q (want failwrite|shortwrite|failsync|stall)", k)
		}
	}
	return p, nil
}

// wrap returns f with the plan's faults injected into Write and Sync.
// Reads, seeks and truncates pass through untouched: the plan models a
// disk that misbehaves under write load, and recovery itself (which
// only reads and truncates) must stay observable.
func (p *FaultPlan) wrap(f storeFile) storeFile { return &faultFile{inner: f, plan: p} }

// faultFile decorates one store file with its plan's fault schedule.
type faultFile struct {
	inner storeFile
	plan  *FaultPlan
}

func (f *faultFile) Write(b []byte) (int, error) {
	p := f.plan
	n := p.writes.Add(1)
	if p.StallEveryOp > 0 && n%p.StallEveryOp == 0 && p.Stall > 0 {
		time.Sleep(p.Stall)
	}
	if p.FailWriteOp > 0 && n == p.FailWriteOp {
		return 0, fmt.Errorf("write op %d: %w", n, ErrInjected)
	}
	if p.ShortWriteOp > 0 && n == p.ShortWriteOp {
		m, err := f.inner.Write(b[:len(b)/2])
		if err != nil {
			return m, err
		}
		return m, fmt.Errorf("short write op %d (%d of %d bytes): %w", n, m, len(b), ErrInjected)
	}
	return f.inner.Write(b)
}

func (f *faultFile) Sync() error {
	p := f.plan
	n := p.syncs.Add(1)
	if p.FailSyncOp > 0 && n == p.FailSyncOp {
		return fmt.Errorf("sync op %d: %w", n, ErrInjected)
	}
	return f.inner.Sync()
}

func (f *faultFile) Read(b []byte) (int, error)         { return f.inner.Read(b) }
func (f *faultFile) Seek(o int64, w int) (int64, error) { return f.inner.Seek(o, w) }
func (f *faultFile) Truncate(size int64) error          { return f.inner.Truncate(size) }
func (f *faultFile) Close() error                       { return f.inner.Close() }
