package force

import (
	"math/rand"
	"testing"

	"magicstate/internal/bravyi"
	"magicstate/internal/graph"
	"magicstate/internal/layout"
	"magicstate/internal/mesh"
)

func buildFactory(t *testing.T, k, l int) (*bravyi.Factory, *graph.Graph, *layout.Placement) {
	t.Helper()
	f, err := bravyi.Build(bravyi.Params{K: k, Levels: l, Barriers: true})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.FromCircuit(f.Circuit)
	return f, g, layout.Linear(f)
}

func TestAnnealKeepsPlacementValid(t *testing.T) {
	f, g, init := buildFactory(t, 4, 1)
	p := Anneal(g, f.Circuit, init, Options{Seed: 1})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.N() != g.N {
		t.Fatalf("lost qubits: %d != %d", p.N(), g.N)
	}
}

func TestAnnealDeterministicPerSeed(t *testing.T) {
	f, g, init := buildFactory(t, 2, 1)
	p1 := Anneal(g, f.Circuit, init, Options{Seed: 42})
	p2 := Anneal(g, f.Circuit, init, Options{Seed: 42})
	for q := range p1.Pos {
		if p1.Pos[q] != p2.Pos[q] {
			t.Fatal("same seed must reproduce the same mapping")
		}
	}
}

func TestAnnealDoesNotMutateInput(t *testing.T) {
	f, g, init := buildFactory(t, 2, 1)
	before := append([]layout.Point(nil), init.Pos...)
	Anneal(g, f.Circuit, init, Options{Seed: 3})
	for q := range before {
		if init.Pos[q] != before[q] {
			t.Fatal("Anneal must not mutate the initial placement")
		}
	}
}

func TestAnnealImprovesRandomStart(t *testing.T) {
	// From a random start the annealer must shorten edges substantially.
	f, g, _ := buildFactory(t, 8, 1)
	rng := layout.Random(g.N, randSource(7))
	before := layout.TotalManhattan(g, rng)
	p := Anneal(g, f.Circuit, rng, Options{Seed: 7})
	after := layout.TotalManhattan(g, p)
	if after >= before {
		t.Errorf("edge length did not improve: %d -> %d", before, after)
	}
}

func TestAnnealCompetitiveWithLinearOnSimulator(t *testing.T) {
	f, g, lin := buildFactory(t, 8, 1)
	fd := Anneal(g, f.Circuit, lin, Options{Seed: 11})
	rl, err := mesh.Simulate(f.Circuit, lin, mesh.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rf, err := mesh.Simulate(f.Circuit, fd, mesh.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The paper finds FD slightly better than or comparable to linear on
	// single-level factories; allow a modest tolerance.
	if float64(rf.Latency) > 1.35*float64(rl.Latency) {
		t.Errorf("FD latency %d too far above linear %d", rf.Latency, rl.Latency)
	}
}

func TestAnnealAblationFlagsRun(t *testing.T) {
	f, g, init := buildFactory(t, 2, 1)
	p := Anneal(g, f.Circuit, init, Options{Seed: 5, DisableDipole: true, DisableCommunity: true})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAnnealTwoLevelValid(t *testing.T) {
	f, g, init := buildFactory(t, 2, 2)
	p := Anneal(g, f.Circuit, init, Options{Seed: 9, Iterations: 10})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func randSource(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func samePlacement(t *testing.T, want, got *layout.Placement, label string) {
	t.Helper()
	if len(want.Pos) != len(got.Pos) {
		t.Fatalf("%s: qubit count %d != %d", label, len(got.Pos), len(want.Pos))
	}
	for q := range want.Pos {
		if want.Pos[q] != got.Pos[q] {
			t.Fatalf("%s: qubit %d placed at %v, want %v", label, q, got.Pos[q], want.Pos[q])
		}
	}
}

func TestAnnealRestartsDeterministicAcrossWorkerWidths(t *testing.T) {
	// Restarts run on independent SplitMix64 child streams, so the
	// winning placement must be byte-identical no matter how many
	// goroutines executed them (the -race run of this test is also the
	// data-race check for the restart pool).
	f, g, init := buildFactory(t, 4, 1)
	opt := Options{Seed: 21, Restarts: 4, Iterations: 40}
	opt.RestartWorkers = 1
	ref := Anneal(g, f.Circuit, init, opt)
	for _, w := range []int{2, 8} {
		opt.RestartWorkers = w
		samePlacement(t, ref, Anneal(g, f.Circuit, init, opt),
			"RestartWorkers="+string(rune('0'+w)))
	}
}

func TestAnnealRestartZeroMatchesSingleRun(t *testing.T) {
	// Restart 0 replays the historical single-run stream verbatim, so a
	// multi-restart anneal can never do worse than the plain one: if the
	// extra streams don't win, the result is exactly the single-run
	// placement.
	f, g, init := buildFactory(t, 2, 1)
	single := Anneal(g, f.Circuit, init, Options{Seed: 13, Iterations: 30})
	multi := Anneal(g, f.Circuit, init, Options{Seed: 13, Iterations: 30, Restarts: 3})
	if placementCost(g, multi) > placementCost(g, single) {
		t.Fatalf("restarts made the placement worse: %v > %v",
			placementCost(g, multi), placementCost(g, single))
	}
}

func TestAnnealerReuseMatchesFresh(t *testing.T) {
	// A reused Annealer carries dirty scratch arenas from prior runs of a
	// different problem size; results must still match a fresh anneal.
	f, g, init := buildFactory(t, 4, 1)
	f2, g2, init2 := buildFactory(t, 2, 1)
	an := NewAnnealer()
	an.Anneal(g2, f2.Circuit, init2, Options{Seed: 2})
	reused := an.Anneal(g, f.Circuit, init, Options{Seed: 21, Restarts: 2})
	fresh := Anneal(g, f.Circuit, init, Options{Seed: 21, Restarts: 2})
	samePlacement(t, fresh, reused, "reused annealer")
}
