// Command msfuload is the load generator and soak harness for msfud:
// it drives a mixed workload — synchronous /v1/optimize points, async
// /v1/batch jobs polled to completion, and streamed SSE batches — at a
// configurable duplicate ratio, through the retrying client
// (internal/httpclient) that honors the server's 429/503 + Retry-After
// pushback, and then asserts the service-level objectives the
// robustness layer promises:
//
//   - bounded p99 latency for accepted optimize requests (-slo-p99);
//   - zero dropped SSE streams: every stream the server accepted ends
//     with a terminal done/error frame, never a silent connection drop;
//   - zero non-injected 5xx responses (rejections are 429/503, which
//     don't count; those are the mechanism working);
//   - served results byte-identical to an in-process serial reference
//     for a sample of points (-verify).
//
// A violated SLO exits non-zero and says why. -out writes a JSON report
// whose benchmarks array carries serve_optimize_p50/p99 entries in the
// repo's bench-trajectory shape, so CI can diff soak runs against the
// committed BENCH_PR*.json numbers.
//
// Usage:
//
//	msfuload -addr 127.0.0.1:8350 [-duration 30s] [-workers 8]
//	         [-dup 0.7] [-hot 4] [-batch-every 20] [-sse-every 25]
//	         [-slo-p99 5s] [-verify 8] [-out soak.json] [-seed 1]
//
// -addr accepts a comma-separated list; workers rotate requests across
// all targets, which is how a multi-node msfud cluster is soaked.
//
// Cluster mode spawns and supervises the cluster itself:
//
//	msfuload -exec ./msfud -cluster 3 [-chaos-kill 5s] [-chaos-down 2s]
//	         [-store-root DIR] [-node-fault-peer PLAN] [-replicate]
//
// Each node gets its own store directory and a -node-id/-peers wiring;
// -chaos-kill SIGKILLs a random node on that interval and restarts it
// after -chaos-down. Before the final verification pass every node is
// restarted and node 0's /v1/cluster view must report the whole
// membership healthy — a chaos soak has to end with the cluster
// reassembled, serving byte-identical results. SIGKILL chaos disables
// the SSE mix (a killed node legitimately drops its live streams), and
// -node-fault-peer hands every node a peer fault plan so byte
// verification and fallback compute run hot for the whole soak.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"magicstate"
	"magicstate/internal/httpclient"
)

// point is one workload unit: a request body for /v1/optimize and the
// spec/opts to recompute it in-process for verification.
type point struct {
	body map[string]any
	spec magicstate.FactorySpec
	opts magicstate.Options
}

// universe builds the pool of distinct points the workload draws from:
// cheap single- and two-level points across every mapping strategy, so
// the soak exercises each pipeline without any point dominating the
// clock.
func universe() []point {
	var pts []point
	add := func(capacity, levels int, reuse bool, strategy string, seed int64) {
		body := map[string]any{"capacity": capacity, "levels": levels, "seed": seed}
		opts := magicstate.Options{Seed: seed}
		if reuse {
			body["reuse"] = true
		}
		if strategy != "" {
			body["strategy"] = strategy
			st, err := magicstate.ParseStrategy(strategy)
			if err != nil {
				panic(err)
			}
			opts = opts.WithStrategy(st)
		}
		pts = append(pts, point{
			body: body,
			spec: magicstate.FactorySpec{Capacity: capacity, Levels: levels, Reuse: reuse},
			opts: opts,
		})
	}
	for _, capacity := range []int{4, 9, 16, 25} {
		for _, strategy := range []string{"line", "random", "gp"} {
			for seed := int64(1); seed <= 4; seed++ {
				add(capacity, 1, false, strategy, seed)
			}
		}
	}
	for _, capacity := range []int{4, 16} {
		for seed := int64(1); seed <= 4; seed++ {
			add(capacity, 2, true, "hs", seed)
		}
	}
	// Frontend workload points: seeded random circuits of a few shapes,
	// one on a defective mesh, so the soak also exercises the workload
	// build path and defect-aware routing end to end.
	addWorkload := func(source, defects string, seed int64) {
		body := map[string]any{"workload": "random", "workload_source": source, "seed": seed}
		opts := magicstate.Options{Seed: seed, Workload: "random", WorkloadSource: source}
		if defects != "" {
			body["defects"] = defects
			opts.Defects = defects
		}
		pts = append(pts, point{body: body, opts: opts})
	}
	for seed := int64(1); seed <= 4; seed++ {
		addWorkload("q=6;layers=8;cx=0.5;t=0.2", "", seed)
		addWorkload("q=9;layers=6;cx=0.4;t=0.3", "1,0", seed)
	}
	return pts
}

// tally is the shared outcome ledger all workers write into.
type tally struct {
	mu        sync.Mutex
	latencies []time.Duration // accepted /v1/optimize service times

	optimizeOK  atomic.Int64
	rejected    atomic.Int64 // 429s that exhausted retries
	unavailable atomic.Int64 // 503s that exhausted retries
	badRequest  atomic.Int64
	serverError atomic.Int64 // any 5xx other than 503
	transport   atomic.Int64

	jobsDone    atomic.Int64
	jobsFailed  atomic.Int64
	sseDone     atomic.Int64
	sseDropped  atomic.Int64 // streams ending without a terminal frame
	sseRejected atomic.Int64
}

func (t *tally) recordLatency(d time.Duration) {
	t.mu.Lock()
	t.latencies = append(t.latencies, d)
	t.mu.Unlock()
}

// percentile returns the q-quantile of the recorded latencies (sorted
// copy; 0 when empty).
func (t *tally) percentile(q float64) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.latencies) == 0 {
		return 0
	}
	s := make([]time.Duration, len(t.latencies))
	copy(s, t.latencies)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q * float64(len(s)-1))
	return s[i]
}

// classify folds one optimize response status into the tally.
func (t *tally) classify(status int, err error) {
	switch {
	case err != nil:
		t.transport.Add(1)
	case status == http.StatusOK:
		t.optimizeOK.Add(1)
	case status == http.StatusTooManyRequests:
		t.rejected.Add(1)
	case status == http.StatusServiceUnavailable:
		t.unavailable.Add(1)
	case status == http.StatusBadRequest:
		t.badRequest.Add(1)
	case status >= 500:
		t.serverError.Add(1)
	}
}

// worker drives one goroutine's share of the workload until ctx ends,
// rotating ops across every target so a cluster is loaded evenly.
func worker(ctx context.Context, id int, bases []string, c *httpclient.Client, pts []point, cfg workloadConfig, t *tally) {
	rng := rand.New(rand.NewSource(cfg.seed + int64(id)))
	for op := 1; ; op++ {
		if ctx.Err() != nil {
			return
		}
		base := bases[(id+op)%len(bases)]
		switch {
		case cfg.sseEvery > 0 && op%cfg.sseEvery == 0:
			runSSE(ctx, base, pts, rng, t)
		case cfg.batchEvery > 0 && op%cfg.batchEvery == 0:
			runJob(ctx, base, c, pts, rng, t)
		default:
			pt := pick(pts, rng, cfg)
			start := time.Now()
			status, err := c.PostJSON(ctx, base+"/v1/optimize", pt.body, nil)
			if ctx.Err() != nil {
				return // shutdown races look like transport errors; don't count them
			}
			t.classify(status, err)
			if status == http.StatusOK && err == nil {
				t.recordLatency(time.Since(start))
			}
		}
	}
}

// pick draws a point: from the hot set with probability dup (the
// duplicate-heavy traffic that singleflight and the cache collapse),
// uniformly otherwise.
func pick(pts []point, rng *rand.Rand, cfg workloadConfig) point {
	if rng.Float64() < cfg.dup {
		return pts[rng.Intn(cfg.hot)]
	}
	return pts[rng.Intn(len(pts))]
}

// runJob submits a small async batch and polls it to resolution.
func runJob(ctx context.Context, base string, c *httpclient.Client, pts []point, rng *rand.Rand, t *tally) {
	var bodies []map[string]any
	for i := 0; i < 3; i++ {
		bodies = append(bodies, pts[rng.Intn(len(pts))].body)
	}
	var acc struct {
		JobID string `json:"job_id"`
	}
	status, err := c.PostJSON(ctx, base+"/v1/batch", map[string]any{"points": bodies}, &acc)
	if err != nil || status != http.StatusAccepted {
		if ctx.Err() == nil && status != http.StatusTooManyRequests && status != http.StatusServiceUnavailable {
			t.jobsFailed.Add(1)
		}
		return
	}
	for {
		if ctx.Err() != nil {
			return
		}
		var jr struct {
			Status string `json:"status"`
		}
		if _, err := c.GetJSON(ctx, base+"/v1/jobs/"+acc.JobID, &jr); err != nil {
			return
		}
		switch jr.Status {
		case "done":
			t.jobsDone.Add(1)
			return
		case "failed":
			t.jobsFailed.Add(1)
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// runSSE streams a small batch and verifies the stream terminates with
// a done/error frame. A stream that the server accepted (200) but that
// ends without a terminal frame is a dropped stream — the SLO the
// drain-time terminal-frame machinery exists to keep at zero.
func runSSE(ctx context.Context, base string, pts []point, rng *rand.Rand, t *tally) {
	var bodies []map[string]any
	for i := 0; i < 3; i++ {
		bodies = append(bodies, pts[rng.Intn(len(pts))].body)
	}
	data, _ := json.Marshal(map[string]any{"points": bodies})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/batch?stream=1", strings.NewReader(string(data)))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			t.transport.Add(1)
		}
		return
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		t.sseRejected.Add(1)
		return
	default:
		t.serverError.Add(1)
		return
	}
	terminal := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "event: done" || line == "event: error" {
			terminal = true
		}
	}
	if terminal {
		t.sseDone.Add(1)
	} else if ctx.Err() == nil {
		t.sseDropped.Add(1)
	}
}

// workloadConfig carries the flag-derived workload shape.
type workloadConfig struct {
	dup        float64
	hot        int
	batchEvery int
	sseEvery   int
	seed       int64
}

// verifyPoints recomputes sample points in-process (serial reference)
// and compares the server's answers byte-for-byte after normalizing
// through the same struct. Returns the mismatches.
func verifyPoints(base string, c *httpclient.Client, pts []point, n int) []string {
	var bad []string
	if n > len(pts) {
		n = len(pts)
	}
	for _, pt := range pts[:n] {
		var got struct {
			Strategy           string  `json:"strategy"`
			Latency            int     `json:"latency"`
			Area               int     `json:"area"`
			Volume             float64 `json:"volume"`
			CriticalLatency    int     `json:"critical_latency"`
			CriticalVolume     float64 `json:"critical_volume"`
			PermutationLatency int     `json:"permutation_latency"`
		}
		status, err := c.PostJSON(context.Background(), base+"/v1/optimize", pt.body, &got)
		if err != nil || status != http.StatusOK {
			bad = append(bad, fmt.Sprintf("%v: status %d err %v", pt.body, status, err))
			continue
		}
		want, err := magicstate.Optimize(pt.spec, pt.opts)
		if err != nil {
			bad = append(bad, fmt.Sprintf("%v: reference failed: %v", pt.body, err))
			continue
		}
		if got.Strategy != want.Strategy || got.Latency != want.Latency || got.Area != want.Area ||
			got.Volume != want.Volume || got.CriticalLatency != want.CriticalLatency ||
			got.CriticalVolume != want.CriticalVolume || got.PermutationLatency != want.PermutationLatency {
			bad = append(bad, fmt.Sprintf("%v: served %+v, reference %+v", pt.body, got, want))
		}
	}
	return bad
}

// metricsSnapshot pulls the counters the report and assertions need
// from /v1/stats.
type metricsSnapshot struct {
	Cache struct {
		MemoryHits   int64 `json:"memory_hits"`
		MemoryMisses int64 `json:"memory_misses"`
		DiskHits     int64 `json:"disk_hits"`
	} `json:"cache"`
	Admission struct {
		QueueRejected int64 `json:"queue_rejected"`
		RateLimited   int64 `json:"rate_limited"`
	} `json:"admission"`
	Singleflight struct {
		Leaders int64 `json:"leaders"`
		Shared  int64 `json:"shared"`
	} `json:"singleflight"`
}

func main() {
	os.Exit(run())
}

// run is main's body, returning the exit code so the managed cluster's
// deferred teardown always executes.
func run() int {
	addr := flag.String("addr", "", "msfud address(es), comma separated (host:port or http:// URL); required unless -cluster")
	duration := flag.Duration("duration", 30*time.Second, "how long to generate load")
	workers := flag.Int("workers", 8, "concurrent load-generating workers")
	dup := flag.Float64("dup", 0.7, "probability a request draws from the hot set (duplicate-heavy traffic)")
	hot := flag.Int("hot", 4, "hot set size for duplicate traffic")
	batchEvery := flag.Int("batch-every", 20, "every Nth worker op submits+polls an async batch job (0 = never)")
	sseEvery := flag.Int("sse-every", 25, "every Nth worker op runs a streamed SSE batch (0 = never)")
	sloP99 := flag.Duration("slo-p99", 5*time.Second, "SLO: max p99 latency for accepted optimize requests")
	verify := flag.Int("verify", 8, "distinct points to verify against the in-process serial reference")
	out := flag.String("out", "", "write a JSON soak report to this file")
	seed := flag.Int64("seed", 1, "workload RNG seed")
	execPath := flag.String("exec", "", "msfud binary for self-managed cluster mode")
	clusterN := flag.Int("cluster", 0, "spawn and supervise this many msfud nodes (requires -exec)")
	storeRoot := flag.String("store-root", "", "root directory for spawned nodes' stores (default: a temp dir, removed on exit)")
	chaosKill := flag.Duration("chaos-kill", 0, "in cluster mode, SIGKILL a random node on this interval (0 = never)")
	chaosDown := flag.Duration("chaos-down", 2*time.Second, "how long a chaos-killed node stays down before restart")
	nodeFaultPeer := flag.String("node-fault-peer", "", "in cluster mode, pass this -fault-peer plan to every spawned node")
	replicate := flag.Bool("replicate", true, "in cluster mode, spawn nodes with record replication enabled")
	flag.Parse()

	// Resolve the target set: either a spawned cluster or -addr targets.
	var bases []string
	var mc *managedCluster
	if *clusterN > 0 {
		if *execPath == "" {
			fmt.Fprintln(os.Stderr, "msfuload: -cluster requires -exec (path to the msfud binary)")
			return 2
		}
		root := *storeRoot
		if root == "" {
			tmp, err := os.MkdirTemp("", "msfuload-cluster-")
			if err != nil {
				fmt.Fprintln(os.Stderr, "msfuload:", err)
				return 1
			}
			defer os.RemoveAll(tmp)
			root = tmp
		}
		var err error
		mc, err = newManagedCluster(*execPath, *clusterN, root, *nodeFaultPeer, *replicate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "msfuload:", err)
			return 1
		}
		defer mc.stopAll()
		if err := mc.startAll(10 * time.Second); err != nil {
			fmt.Fprintln(os.Stderr, "msfuload:", err)
			return 1
		}
		bases = mc.bases()
		fmt.Printf("msfuload: spawned %d-node cluster: %s\n", *clusterN, strings.Join(bases, " "))
		if *chaosKill > 0 && *sseEvery > 0 {
			// SIGKILL drops a node's live SSE streams by definition; the
			// zero-dropped-streams SLO only makes sense without kills.
			fmt.Println("msfuload: chaos-kill active; disabling the SSE mix (-sse-every 0)")
			*sseEvery = 0
		}
	} else {
		if *addr == "" {
			fmt.Fprintln(os.Stderr, "msfuload: -addr is required (or use -cluster/-exec)")
			return 2
		}
		for _, a := range strings.Split(*addr, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				continue
			}
			if !strings.HasPrefix(a, "http://") && !strings.HasPrefix(a, "https://") {
				a = "http://" + a
			}
			bases = append(bases, strings.TrimRight(a, "/"))
		}
		if len(bases) == 0 {
			fmt.Fprintln(os.Stderr, "msfuload: -addr lists no targets")
			return 2
		}
	}

	pts := universe()
	if *hot <= 0 || *hot > len(pts) {
		*hot = 1
	}
	cfg := workloadConfig{dup: *dup, hot: *hot, batchEvery: *batchEvery, sseEvery: *sseEvery, seed: *seed}
	client := &httpclient.Client{MaxAttempts: 6, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}

	fmt.Printf("msfuload: %d workers x %v against %s (dup=%.2f hot=%d)\n", *workers, *duration, strings.Join(bases, " "), *dup, *hot)
	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	t := &tally{}
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			worker(ctx, i, bases, client, pts, cfg, t)
		}(i)
	}
	var chaosWg sync.WaitGroup
	if mc != nil && *chaosKill > 0 {
		chaosWg.Add(1)
		go func() {
			defer chaosWg.Done()
			mc.runChaos(ctx, *chaosKill, *chaosDown, *seed)
		}()
	}
	wg.Wait()
	cancel()
	chaosWg.Wait()
	elapsed := time.Since(start)

	var violations []string

	// A chaos soak must end on a whole, healthy cluster: restart
	// whatever is down and demand the full membership in the cluster
	// view before verifying anything.
	if mc != nil {
		if err := mc.ensureAllUp(10 * time.Second); err != nil {
			fmt.Fprintln(os.Stderr, "msfuload:", err)
			return 1
		}
		if kills := mc.kills.Load(); kills > 0 {
			fmt.Printf("msfuload: chaos: %d kills; all nodes restarted\n", kills)
		}
		if err := mc.checkClusterView(client); err != nil {
			violations = append(violations, "cluster view: "+err.Error())
		}
	}

	// Post-run verification and metrics against every now-idle target:
	// after a partition-and-heal, each node must still serve reference
	// answers.
	var mismatches []string
	for _, base := range bases {
		mismatches = append(mismatches, verifyPoints(base, client, pts, *verify)...)
	}
	var snap metricsSnapshot
	if _, err := client.GetJSON(context.Background(), bases[0]+"/v1/stats", &snap); err != nil {
		fmt.Fprintf(os.Stderr, "msfuload: scraping /v1/stats: %v\n", err)
	}

	p50, p99 := t.percentile(0.50), t.percentile(0.99)
	total := t.optimizeOK.Load() + t.rejected.Load() + t.unavailable.Load() + t.badRequest.Load() + t.serverError.Load()
	fmt.Printf("msfuload: %d optimize responses in %v (%.0f/s): %d ok, %d x429, %d x503, %d x400, %d x5xx, %d transport\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds(),
		t.optimizeOK.Load(), t.rejected.Load(), t.unavailable.Load(), t.badRequest.Load(), t.serverError.Load(), t.transport.Load())
	fmt.Printf("msfuload: latency p50=%v p99=%v; jobs %d done %d failed; sse %d done %d rejected %d dropped\n",
		p50.Round(time.Microsecond), p99.Round(time.Microsecond),
		t.jobsDone.Load(), t.jobsFailed.Load(), t.sseDone.Load(), t.sseRejected.Load(), t.sseDropped.Load())
	fmt.Printf("msfuload: server cache hits=%d misses=%d disk=%d; singleflight leaders=%d shared=%d; rejected=%d rate-limited=%d\n",
		snap.Cache.MemoryHits, snap.Cache.MemoryMisses, snap.Cache.DiskHits,
		snap.Singleflight.Leaders, snap.Singleflight.Shared,
		snap.Admission.QueueRejected, snap.Admission.RateLimited)

	// SLO evaluation.
	if t.optimizeOK.Load() == 0 {
		violations = append(violations, "no optimize request ever succeeded")
	}
	if p99 > *sloP99 {
		violations = append(violations, fmt.Sprintf("p99 %v exceeds SLO %v", p99, *sloP99))
	}
	if n := t.sseDropped.Load(); n > 0 {
		violations = append(violations, fmt.Sprintf("%d SSE streams dropped without a terminal frame", n))
	}
	if n := t.serverError.Load(); n > 0 {
		violations = append(violations, fmt.Sprintf("%d non-injected 5xx responses", n))
	}
	if n := t.badRequest.Load(); n > 0 {
		violations = append(violations, fmt.Sprintf("%d requests rejected as 400 (workload/server contract broken)", n))
	}
	for _, m := range mismatches {
		violations = append(violations, "verification: "+m)
	}
	// Duplicate-heavy traffic must collapse: the distinct points any one
	// node computed can never exceed the universe, no matter how many
	// requests were served.
	for _, base := range bases {
		var s metricsSnapshot
		if _, err := client.GetJSON(context.Background(), base+"/v1/stats", &s); err != nil {
			continue
		}
		if s.Cache.MemoryMisses > int64(len(pts)) {
			violations = append(violations,
				fmt.Sprintf("%s computed %d points for a %d-point universe (dedup failed)", base, s.Cache.MemoryMisses, len(pts)))
		}
	}

	if *out != "" {
		report := map[string]any{
			"schema":   "msfuload-soak/v1",
			"duration": elapsed.String(),
			"workers":  *workers,
			"dup":      *dup,
			"totals": map[string]int64{
				"optimize_ok": t.optimizeOK.Load(),
				"rejected":    t.rejected.Load(),
				"unavailable": t.unavailable.Load(),
				"server_5xx":  t.serverError.Load(),
				"transport":   t.transport.Load(),
				"jobs_done":   t.jobsDone.Load(),
				"jobs_failed": t.jobsFailed.Load(),
				"sse_done":    t.sseDone.Load(),
				"sse_dropped": t.sseDropped.Load(),
			},
			"server": snap,
			"benchmarks": []map[string]any{
				{"name": "serve_optimize_p50", "ns_per_op": p50.Nanoseconds()},
				{"name": "serve_optimize_p99", "ns_per_op": p99.Nanoseconds()},
			},
			"violations": violations,
		}
		if mc != nil {
			report["cluster"] = map[string]any{"nodes": len(mc.nodes), "kills": mc.kills.Load()}
		}
		data, _ := json.MarshalIndent(report, "", "  ")
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "msfuload: writing %s: %v\n", *out, err)
			return 1
		}
		fmt.Printf("msfuload: report written to %s\n", *out)
	}

	if len(violations) > 0 {
		fmt.Fprintln(os.Stderr, "msfuload: SLO VIOLATIONS:")
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "  - "+v)
		}
		return 1
	}
	fmt.Println("msfuload: all SLOs met")
	return 0
}
