package experiments

import (
	"bytes"
	"testing"

	"magicstate/internal/sweep"
)

// renderAll runs a fixed-seed experiment grid spanning every sweep-engine
// entry point this package has — pipeline grids, best-of-reuse
// reduction, stitched hop tasks, randomized fig6 samples — and renders
// the artifacts exactly as cmd/paperbench would.
func renderAll(t *testing.T, seed int64) []byte {
	t.Helper()
	var buf bytes.Buffer

	f6, err := Fig6(2, 9, seed)
	if err != nil {
		t.Fatal(err)
	}
	WriteFig6(&buf, f6)

	f7, err := Fig7(1, []int{2, 4}, seed)
	if err != nil {
		t.Fatal(err)
	}
	WriteFig7(&buf, 1, f7)

	f9, err := Fig9Reuse([]int{4}, seed)
	if err != nil {
		t.Fatal(err)
	}
	WriteFig9Reuse(&buf, f9)

	hops, err := Fig9Hops([]int{4}, seed)
	if err != nil {
		t.Fatal(err)
	}
	WriteFig9Hops(&buf, hops)

	f10, err := Fig10(2, []int{4}, seed)
	if err != nil {
		t.Fatal(err)
	}
	WriteFig10(&buf, 2, f10)

	t1, err := Table1([]int{2}, []int{4}, seed)
	if err != nil {
		t.Fatal(err)
	}
	WriteTable1(&buf, t1)

	di, err := DefectImpact(4, 1, []float64{0, 0.05}, seed)
	if err != nil {
		t.Fatal(err)
	}
	WriteDefectImpact(&buf, 4, 1, di)

	return buf.Bytes()
}

// TestParallelMatchesSerialByteIdentical is the determinism regression
// test behind the -parallel flag: a fixed-seed grid rendered under a
// serial engine must be byte-identical to the same grid rendered under
// a wide parallel engine, with or without memo-cache sharing across
// artifacts.
func TestParallelMatchesSerialByteIdentical(t *testing.T) {
	const seed = 3
	orig := Engine()
	defer SetEngine(orig)

	SetEngine(sweep.New(sweep.Options{Workers: 1}))
	serial := renderAll(t, seed)

	SetEngine(sweep.New(sweep.Options{Workers: 8}))
	parallel := renderAll(t, seed)

	if !bytes.Equal(serial, parallel) {
		t.Fatalf("parallel artifacts differ from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}

	// A warm memo cache (second pass on the same engine) must not change
	// output either — cached reports are the same values, just not
	// recomputed.
	warm := renderAll(t, seed)
	if !bytes.Equal(serial, warm) {
		t.Fatal("memo-cache reuse changed rendered artifacts")
	}
}
