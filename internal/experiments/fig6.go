// Package experiments regenerates every table and figure of the paper's
// evaluation section (§VIII). Each function returns structured rows; the
// Format helpers render them as text tables, and cmd/paperbench drives
// them from the command line. All experiments are deterministic per seed:
// their point grids run on the concurrent sweep engine (internal/sweep),
// and every sample draws its randomness from an explicit per-point
// stream, so rendered artifacts are byte-identical at any worker count.
package experiments

import (
	"context"
	"fmt"

	"magicstate/internal/bravyi"
	"magicstate/internal/force"
	"magicstate/internal/graph"
	"magicstate/internal/layout"
	"magicstate/internal/mesh"
	"magicstate/internal/stats"
	"magicstate/internal/sweep"
)

// Fig6Point is one randomized mapping sample: the three congestion
// metrics of §VI.A plus the simulated latency.
type Fig6Point struct {
	Crossings    int
	AvgManhattan float64
	AvgSpacing   float64
	Latency      int
}

// Fig6Result reproduces Fig. 6: the correlation of each congestion metric
// with simulated circuit latency over randomized mappings of a
// single-level factory.
type Fig6Result struct {
	K, Samples int
	// RCrossings, RLength, RSpacing are Pearson r values against latency.
	// The paper reports r = 0.601 / -0.625 / 0.831 panels with positive
	// correlation for crossings and length and negative for spacing.
	RCrossings, RLength, RSpacing float64
	Points                        []Fig6Point
}

// Fig6 draws `samples` randomized placements of a capacity-k single-level
// factory on a fixed near-square grid, simulates each, and correlates the
// metrics with latency. To span the quality range the paper's scatter
// plots cover, two thirds of the samples are random placements partially
// improved by a short force-directed pass of varying length; the rest are
// purely random. Every sample derives its own RNG stream from (seed,
// index), so the samples are independent grid points for the sweep
// engine and their order is the submission order regardless of workers.
func Fig6(k, samples int, seed int64) (*Fig6Result, error) {
	f, err := bravyi.Build(bravyi.Params{K: k, Levels: 1})
	if err != nil {
		return nil, err
	}
	g := graph.FromCircuit(f.Circuit)
	n := f.Circuit.NumQubits
	w, h := layout.GridFor(n, 1)
	tiles := layout.RowMajorTiles(w*h, w)

	idxs := make([]int, samples)
	for i := range idxs {
		idxs[i] = i
	}
	points, err := sweep.Map(context.Background(), Engine(), idxs, func(_ int, s int) (Fig6Point, error) {
		rng := stats.SplitRNG(seed, int64(s))
		p := layout.RandomOnTiles(n, tiles, w, h, rng)
		if iters := (s % 3) * (4 + s%5); iters > 0 {
			p = force.Anneal(g, f.Circuit, p, force.Options{
				Seed: seed + int64(s), Iterations: iters, MarginRows: 1,
				DisableCommunity: true, DisableDipole: s%2 == 0,
			})
		}
		sim, err := mesh.Simulate(f.Circuit, p, mesh.Config{})
		if err != nil {
			return Fig6Point{}, fmt.Errorf("sample %d: %w", s, err)
		}
		m := layout.Measure(g, p)
		return Fig6Point{
			Crossings:    m.Crossings,
			AvgManhattan: m.AvgManhattan,
			AvgSpacing:   m.AvgSpacing,
			Latency:      sim.Latency,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	res := &Fig6Result{K: k, Samples: samples, Points: points}
	var xs, lens, sps, ys []float64
	for _, p := range points {
		xs = append(xs, float64(p.Crossings))
		lens = append(lens, p.AvgManhattan)
		sps = append(sps, p.AvgSpacing)
		ys = append(ys, float64(p.Latency))
	}
	if res.RCrossings, err = stats.Pearson(xs, ys); err != nil {
		return nil, err
	}
	if res.RLength, err = stats.Pearson(lens, ys); err != nil {
		return nil, err
	}
	if res.RSpacing, err = stats.Pearson(sps, ys); err != nil {
		return nil, err
	}
	return res, nil
}
