// Package montecarlo samples the stochastic behaviour of multi-level
// block-code factories that the analytic first-order model in
// internal/resource summarizes: per-module syndrome failures (§II.F),
// the O'Gorman-Campbell checkpoint that discards whole module groups on
// any member failure ([20], §II.G), and the loss-compensation maintenance
// reserve sketched in the paper's future work (§IX). Where the analytic
// model assumes every module of a round must pass, the sampler also
// reports partial yield — how many output states a run actually delivers
// when some donor modules fail — which is what a prepared-state buffer
// (internal/system) consumes.
package montecarlo

import (
	"fmt"
	"math/rand"

	"magicstate/internal/bravyi"
	"magicstate/internal/resource"
)

// Config describes one sampling campaign.
type Config struct {
	// Params is the factory under study.
	Params bravyi.Params
	// Errors supplies injected-state and physical error rates; zero
	// value uses resource.DefaultError.
	Errors resource.ErrorModel
	// Trials is the number of independent factory executions to sample
	// (default 10000).
	Trials int
	// Seed drives the sampler.
	Seed int64
	// Checkpoints enables the group-discard rule of [20]: modules of a
	// round are partitioned into groups, and one failure discards the
	// whole group's outputs.
	Checkpoints bool
	// GroupSize is the checkpoint group size; zero picks min(3K+8, M_r)
	// per round, the donor-set size of one next-round module.
	GroupSize int
	// Reserve holds per-round spare module counts for loss compensation
	// (§IX): round r runs Reserve[r-1] extra modules whose outputs
	// replace states lost to failures. Nil means no reserve.
	Reserve []int
}

func (c *Config) fill() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.Errors == (resource.ErrorModel{}) {
		c.Errors = resource.DefaultError()
	}
	if c.Trials == 0 {
		c.Trials = 10000
	}
	if c.Trials < 1 {
		return fmt.Errorf("montecarlo: trials must be >= 1, got %d", c.Trials)
	}
	if len(c.Reserve) != 0 && len(c.Reserve) != c.Params.Levels {
		return fmt.Errorf("montecarlo: reserve has %d rounds, factory has %d", len(c.Reserve), c.Params.Levels)
	}
	for r, n := range c.Reserve {
		if n < 0 {
			return fmt.Errorf("montecarlo: negative reserve %d in round %d", n, r+1)
		}
	}
	return nil
}

// Trial records one sampled factory execution.
type Trial struct {
	// Outputs is the number of distilled states the run delivered
	// (0..Capacity).
	Outputs int
	// ModulesRun counts every module executed, reserves included.
	ModulesRun int
	// ModulesFailed counts syndrome failures across all rounds.
	ModulesFailed int
	// GroupsDiscarded counts checkpoint group discards (zero without
	// Checkpoints).
	GroupsDiscarded int
}

// Summary aggregates a campaign.
type Summary struct {
	Config Config
	// MeanOutputs is the average number of delivered states per run.
	MeanOutputs float64
	// FullYieldRate is the fraction of runs delivering full capacity.
	FullYieldRate float64
	// ZeroYieldRate is the fraction of runs delivering nothing.
	ZeroYieldRate float64
	// MeanModulesRun and MeanFailures are per-run averages.
	MeanModulesRun float64
	MeanFailures   float64
	// MeanGroupsDiscarded is the per-run average checkpoint discard count.
	MeanGroupsDiscarded float64
	// ExpectedRunsPerFull estimates runs needed per full-capacity batch
	// (1/FullYieldRate; +Inf style large value when none observed).
	ExpectedRunsPerFull float64
	// ExpectedRawPerState is raw input states consumed per delivered
	// state across the campaign.
	ExpectedRawPerState float64
	// Outputs histograms delivered-state counts: Outputs[n] is the
	// number of runs that delivered exactly n states.
	Outputs []int
}

// Run samples cfg.Trials factory executions and aggregates them.
func Run(cfg Config) (*Summary, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	errs := cfg.Errors.RoundErrors(cfg.Params)

	capn := cfg.Params.Capacity()
	sum := &Summary{Config: cfg, Outputs: make([]int, capn+1)}
	totalOutputs := 0
	fulls := 0
	zeros := 0
	totalRaw := 0
	for i := 0; i < cfg.Trials; i++ {
		tr := sample(cfg, errs, rng)
		sum.Outputs[tr.Outputs]++
		totalOutputs += tr.Outputs
		if tr.Outputs == capn {
			fulls++
		}
		if tr.Outputs == 0 {
			zeros++
		}
		sum.MeanModulesRun += float64(tr.ModulesRun)
		sum.MeanFailures += float64(tr.ModulesFailed)
		sum.MeanGroupsDiscarded += float64(tr.GroupsDiscarded)
		totalRaw += cfg.Params.Inputs()
		if len(cfg.Reserve) > 0 {
			totalRaw += cfg.Reserve[0] * (3*cfg.Params.K + 8)
		}
	}
	n := float64(cfg.Trials)
	sum.MeanOutputs = float64(totalOutputs) / n
	sum.FullYieldRate = float64(fulls) / n
	sum.ZeroYieldRate = float64(zeros) / n
	sum.MeanModulesRun /= n
	sum.MeanFailures /= n
	sum.MeanGroupsDiscarded /= n
	if fulls > 0 {
		sum.ExpectedRunsPerFull = n / float64(fulls)
	} else {
		sum.ExpectedRunsPerFull = 1e18
	}
	if totalOutputs > 0 {
		sum.ExpectedRawPerState = float64(totalRaw) / float64(totalOutputs)
	} else {
		sum.ExpectedRawPerState = 1e18
	}
	return sum, nil
}

// sample executes one factory run. Round r starts with the surviving
// donor modules of round r−1; each round-r module succeeds independently
// with the first-order probability at that round's input error rate. A
// round-(r+1) module is runnable when enough distinct surviving donors
// exist to cover its 3K+8 inputs (one state per donor, k states per donor
// total); a greedy round-robin allocation achieves the matching bound
// min(M, floor(k·S / (3K+8))) for S ≥ 3K+8 donors.
func sample(cfg Config, errs []float64, rng *rand.Rand) Trial {
	p := cfg.Params
	var tr Trial
	need := 3*p.K + 8

	// supply is the number of next-round modules that can be fed.
	runnable := p.ModulesInRound(1)
	for r := 1; r <= p.Levels; r++ {
		ps := clampProb(p.SuccessProbability(errs[r-1]))
		modules := runnable
		reserve := 0
		if len(cfg.Reserve) > 0 {
			reserve = cfg.Reserve[r-1]
		}
		total := modules + reserve
		tr.ModulesRun += total
		// Sample successes over the round's modules (reserves are
		// indistinguishable from regulars: they just add headroom).
		successes := 0
		if cfg.Checkpoints {
			gs := cfg.GroupSize
			if gs <= 0 {
				gs = need
				if gs > total {
					gs = total
				}
			}
			for start := 0; start < total; start += gs {
				size := gs
				if start+size > total {
					size = total - start
				}
				groupOK := true
				for i := 0; i < size; i++ {
					if rng.Float64() >= ps {
						tr.ModulesFailed++
						groupOK = false
					}
				}
				if groupOK {
					successes += size
				} else {
					tr.GroupsDiscarded++
				}
			}
		} else {
			for i := 0; i < total; i++ {
				if rng.Float64() < ps {
					successes++
				} else {
					tr.ModulesFailed++
				}
			}
		}
		// Cap the useful successes at the modules the round was asked
		// for: reserve successes only backfill losses.
		if successes > modules {
			successes = modules
		}
		if r == p.Levels {
			tr.Outputs = successes * p.K
			return tr
		}
		if successes < need {
			// Not enough distinct donors for even one next-round module.
			return tr
		}
		next := p.ModulesInRound(r + 1)
		feed := successes * p.K / need
		if feed < next {
			runnable = feed
		} else {
			runnable = next
		}
		if runnable == 0 {
			return tr
		}
	}
	return tr
}

func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// AnalyticFullYield returns the first-order probability that every module
// of every round passes — the event the analytic model in
// resource.ExpectedRunsPerSuccess prices. The sampler's FullYieldRate
// converges to this when no reserve masks failures and every round's
// module count survives intact.
func AnalyticFullYield(p bravyi.Params, em resource.ErrorModel) float64 {
	errs := em.RoundErrors(p)
	yield := 1.0
	for r := 1; r <= p.Levels; r++ {
		ps := clampProb(p.SuccessProbability(errs[r-1]))
		for i := 0; i < p.ModulesInRound(r); i++ {
			yield *= ps
		}
	}
	return yield
}
