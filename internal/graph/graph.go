// Package graph implements the program interaction graph of §VI: vertices
// are logical qubits, edges are two-qubit interactions weighted by
// multiplicity. It also provides the structural analyses the mappers rely
// on: connected components, per-timestep 2-coloring for the magnetic
// dipole heuristic, and community detection.
package graph

import (
	"sort"

	"magicstate/internal/circuit"
)

// Edge is an undirected interaction between qubits U < V with a weight
// equal to the number of gates acting on the pair.
type Edge struct {
	U, V   int
	Weight float64
}

// Graph is an undirected weighted multigraph collapsed to simple edges.
type Graph struct {
	N     int
	Edges []Edge
	adj   [][]int // vertex -> edge indices
}

// New returns an empty graph over n vertices.
func New(n int) *Graph {
	return &Graph{N: n, adj: make([][]int, n)}
}

// AddEdge inserts or reinforces the undirected edge {u, v} with the given
// weight. Self-loops are ignored.
func (g *Graph) AddEdge(u, v int, w float64) {
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	for _, ei := range g.adj[u] {
		e := &g.Edges[ei]
		if e.U == u && e.V == v {
			e.Weight += w
			return
		}
	}
	g.Edges = append(g.Edges, Edge{U: u, V: v, Weight: w})
	ei := len(g.Edges) - 1
	g.adj[u] = append(g.adj[u], ei)
	g.adj[v] = append(g.adj[v], ei)
}

// Neighbors calls fn for every neighbor of u with the connecting edge's
// weight.
func (g *Graph) Neighbors(u int, fn func(v int, w float64)) {
	for _, ei := range g.adj[u] {
		e := g.Edges[ei]
		v := e.U
		if v == u {
			v = e.V
		}
		fn(v, e.Weight)
	}
}

// Degree returns the number of distinct neighbors of u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Incident returns the indices of the edges touching u, in ascending edge
// order. The slice aliases the graph's adjacency storage: callers must
// treat it as read-only.
func (g *Graph) Incident(u int) []int { return g.adj[u] }

// WeightedDegree returns the sum of edge weights incident to u.
func (g *Graph) WeightedDegree(u int) float64 {
	var s float64
	for _, ei := range g.adj[u] {
		s += g.Edges[ei].Weight
	}
	return s
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	var s float64
	for _, e := range g.Edges {
		s += e.Weight
	}
	return s
}

// FromCircuit builds the interaction graph of c. Each two-qubit gate
// contributes weight 1 to its pair; a CXX contributes one edge from the
// control to each target; barriers contribute nothing (they are scheduling
// fences, not interactions).
func FromCircuit(c *circuit.Circuit) *Graph {
	g := New(c.NumQubits)
	for i := range c.Gates {
		gt := &c.Gates[i]
		switch gt.Kind {
		case circuit.KindCNOT, circuit.KindInjectT, circuit.KindInjectTdag:
			if gt.Control != circuit.NoQubit {
				g.AddEdge(int(gt.Control), int(gt.Targets[0]), 1)
			}
		case circuit.KindCXX:
			for _, t := range gt.Targets {
				g.AddEdge(int(gt.Control), int(t), 1)
			}
		case circuit.KindMove:
			g.AddEdge(int(gt.Control), int(gt.Dest), 1)
		}
	}
	return g
}

// Components returns the connected component id of every vertex and the
// number of components. Ids are assigned in increasing order of the
// smallest vertex in each component, so output is deterministic.
func (g *Graph) Components() (comp []int, count int) {
	comp = make([]int, g.N)
	for i := range comp {
		comp[i] = -1
	}
	var queue []int
	for v := 0; v < g.N; v++ {
		if comp[v] != -1 {
			continue
		}
		comp[v] = count
		queue = append(queue[:0], v)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			g.Neighbors(u, func(w int, _ float64) {
				if comp[w] == -1 {
					comp[w] = count
					queue = append(queue, w)
				}
			})
		}
		count++
	}
	return comp, count
}

// Subgraph returns the induced subgraph over the given vertices along with
// the mapping from new vertex ids to original ids.
func (g *Graph) Subgraph(vertices []int) (*Graph, []int) {
	idx := make(map[int]int, len(vertices))
	orig := make([]int, len(vertices))
	for i, v := range vertices {
		idx[v] = i
		orig[i] = v
	}
	sub := New(len(vertices))
	for _, e := range g.Edges {
		iu, okU := idx[e.U]
		iv, okV := idx[e.V]
		if okU && okV {
			sub.AddEdge(iu, iv, e.Weight)
		}
	}
	return sub, orig
}

// SortedEdgesByWeight returns edge indices ordered by descending weight,
// ties broken by (U, V) for determinism.
func (g *Graph) SortedEdgesByWeight() []int {
	idx := make([]int, len(g.Edges))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ea, eb := g.Edges[idx[a]], g.Edges[idx[b]]
		if ea.Weight != eb.Weight {
			return ea.Weight > eb.Weight
		}
		if ea.U != eb.U {
			return ea.U < eb.U
		}
		return ea.V < eb.V
	})
	return idx
}
