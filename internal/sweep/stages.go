package sweep

import (
	"context"
	"sync/atomic"

	"magicstate/internal/core"
	"magicstate/internal/mesh"
	"magicstate/internal/store"
)

// The stage tier: on a final-record miss, instead of handing the whole
// config to core.RunContext, the engine resolves each pipeline stage
// independently through memory → disk → compute, exactly mirroring
// RunContext's serial composition (BuildStage → PlaceStage → SimStage →
// Assemble). A config that shares upstream axes with earlier work — a
// sweep varying only Seed reuses every factory build; one varying only
// Style reuses factory + placement — replays the shared artifacts
// instead of recomputing them. The stage-equivalence harness pins every
// partial-reuse path byte-identical to the monolithic pipeline.

// stageCacheLimit bounds the in-memory stage artifact memo. Stage
// artifacts are heavyweight (a decoded factory holds the whole
// circuit), so the limit sits far below the config memo's default; the
// durable tier backstops evictions.
const stageCacheLimit = 256

// stageMemoKey identifies one stage artifact in the in-memory memo.
// recordPaths joins the key only because the place stage's memoized
// value can carry a force-directed simulation byproduct, whose
// diagnostic payload depends on RecordPaths even though the placement
// itself does not.
type stageMemoKey struct {
	stage       core.Stage
	key         store.Key
	recordPaths bool
}

// stageCounters tracks stage-tier traffic, shared by every engine a
// Derive chain produces (like diskHits). Hits count artifacts replayed
// from the durable tier (disk or peer); computes count stage
// executions. In-memory stage reuse surfaces as neither — same as the
// config memo.
type stageCounters struct {
	buildHits, buildComputes atomic.Int64
	placeHits, placeComputes atomic.Int64
	simHits, simComputes     atomic.Int64
}

// StageStats snapshots the stage tier's counters. For each stage, Hits
// are artifacts served from the durable tier instead of recomputed and
// Computes are actual stage executions; a fully warm rerun shows zero
// computes everywhere.
type StageStats struct {
	// BuildHits and BuildComputes split the factory-build stage.
	BuildHits, BuildComputes int64
	// PlaceHits and PlaceComputes split the placement stage.
	PlaceHits, PlaceComputes int64
	// SimHits and SimComputes split the simulation stage.
	SimHits, SimComputes int64
}

// StageStats reports stage-tier traffic across this engine and every
// engine sharing its caches via Derive.
func (e *Engine) StageStats() StageStats {
	return StageStats{
		BuildHits:     e.stage.buildHits.Load(),
		BuildComputes: e.stage.buildComputes.Load(),
		PlaceHits:     e.stage.placeHits.Load(),
		PlaceComputes: e.stage.placeComputes.Load(),
		SimHits:       e.stage.simHits.Load(),
		SimComputes:   e.stage.simComputes.Load(),
	}
}

// runStaged computes cfg as the staged pipeline: each stage resolved
// memory → disk → compute, then assembled. It is the compute path
// behind RunOneContext's final-record miss.
func (e *Engine) runStaged(ctx context.Context, cfg core.Config) (*core.Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b, err := e.buildStage(ctx, cfg)
	if err != nil {
		return nil, err
	}
	p, err := e.placeStage(ctx, cfg, b)
	if err != nil {
		return nil, err
	}
	sim, err := e.simStage(ctx, cfg, b, p)
	if err != nil {
		return nil, err
	}
	return core.Assemble(cfg, b, p, sim), nil
}

// buildStage resolves the factory build artifact for cfg.
func (e *Engine) buildStage(ctx context.Context, cfg core.Config) (*core.BuildArtifact, error) {
	k := stageMemoKey{stage: core.StageBuild, key: store.StageKeyOf(core.StageBuild, cfg)}
	v, err := e.stageCache.Do(k, func() (any, error) {
		if e.store != nil {
			if body, ok := e.store.GetStageContext(ctx, core.StageBuild, cfg); ok {
				if b, derr := core.DecodeBuildArtifact(body); derr == nil {
					e.stage.buildHits.Add(1)
					return b, nil
				}
			}
		}
		b, err := core.BuildStage(ctx, cfg)
		if err != nil {
			return nil, err
		}
		e.stage.buildComputes.Add(1)
		if e.store != nil {
			_ = e.store.PutStage(core.StageBuild, cfg, core.EncodeBuildArtifact(b))
		}
		return b, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.BuildArtifact), nil
}

// placeStage resolves the placement artifact for cfg. Stitching skips
// the tier entirely — its build artifact carries the placement — and
// the seeded mappers share artifacts across every config axis their
// stage key excludes.
func (e *Engine) placeStage(ctx context.Context, cfg core.Config, b *core.BuildArtifact) (*core.PlaceArtifact, error) {
	if cfg.Strategy == core.StrategyStitch {
		return core.PlaceStage(ctx, cfg, b)
	}
	k := stageMemoKey{
		stage:       core.StagePlace,
		key:         store.StageKeyOf(core.StagePlace, cfg),
		recordPaths: cfg.RecordPaths,
	}
	v, err := e.stageCache.Do(k, func() (any, error) {
		if e.store != nil {
			if body, ok := e.store.GetStageContext(ctx, core.StagePlace, cfg); ok {
				if p, derr := core.DecodePlaceArtifact(body); derr == nil {
					e.stage.placeHits.Add(1)
					return p, nil
				}
			}
		}
		p, err := core.PlaceStage(ctx, cfg, b)
		if err != nil {
			return nil, err
		}
		e.stage.placeComputes.Add(1)
		if e.store != nil {
			_ = e.store.PutStage(core.StagePlace, cfg, core.EncodePlaceArtifact(p))
			if p.Sim != nil {
				// The force-directed mapper simulated the winner while
				// choosing it; persist that simulation under the sim
				// stage's key so a future placement replay skips the
				// resimulation as well.
				_ = e.store.PutStage(core.StageSim, cfg, core.EncodeSimArtifact(p.Sim))
			}
		}
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.PlaceArtifact), nil
}

// simStage resolves the simulation result for cfg. A placement-stage
// byproduct (fresh force-directed evaluation) short-circuits the tier;
// paths-recording configs always resimulate because the durable
// artifact drops the diagnostics they exist to collect.
func (e *Engine) simStage(ctx context.Context, cfg core.Config, b *core.BuildArtifact, p *core.PlaceArtifact) (*mesh.Result, error) {
	// The post-placement cancellation boundary must hold even when the
	// placement stage already carries the simulation: a caller that hung
	// up mid-anneal gets its cancellation, not a report (and the config
	// memo therefore never caches the abandoned point).
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if p.Sim != nil {
		return p.Sim, nil
	}
	if !store.StageCacheable(core.StageSim, cfg) {
		sim, err := core.SimStage(ctx, cfg, b, p)
		if err != nil {
			return nil, err
		}
		e.stage.simComputes.Add(1)
		return sim, nil
	}
	k := stageMemoKey{stage: core.StageSim, key: store.StageKeyOf(core.StageSim, cfg)}
	v, err := e.stageCache.Do(k, func() (any, error) {
		if e.store != nil {
			if body, ok := e.store.GetStageContext(ctx, core.StageSim, cfg); ok {
				if sim, derr := core.DecodeSimArtifact(body); derr == nil {
					e.stage.simHits.Add(1)
					return sim, nil
				}
			}
		}
		sim, err := core.SimStage(ctx, cfg, b, p)
		if err != nil {
			return nil, err
		}
		e.stage.simComputes.Add(1)
		if e.store != nil {
			_ = e.store.PutStage(core.StageSim, cfg, core.EncodeSimArtifact(sim))
		}
		return sim, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*mesh.Result), nil
}
