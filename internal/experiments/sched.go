package experiments

import (
	"fmt"
	"io"

	"magicstate/internal/bravyi"
	"magicstate/internal/layout"
	"magicstate/internal/mesh"
	"magicstate/internal/resource"
	"magicstate/internal/sched"
)

// SchedRow compares program-order issue against commutativity-aware gate
// sifting (§V.A) for one factory on one mapping.
type SchedRow struct {
	Capacity int
	Strategy string
	// ProgramLatency and SiftedLatency are simulated cycles before and
	// after sifting commuting gates earlier.
	ProgramLatency int
	SiftedLatency  int
	// CriticalProgram / CriticalSifted are the dependency lower bounds
	// of the two gate orders.
	CriticalProgram int
	CriticalSifted  int
}

// SchedReorder quantifies the paper's §V.A observation that gate
// reordering is limited on block-code circuits: the checkpoints (barriers)
// bound gate mobility, so sifting commuting gates earlier barely moves
// the dependency bound, and the realized latency can even regress when
// early gates congest the network. Factories are mapped with the linear
// baseline so the schedule is the only variable.
func SchedReorder(level int, capacities []int, seed int64) ([]SchedRow, error) {
	cm := resource.DefaultCost()
	// One reusable simulator serves every capacity point: the program and
	// sifted schedules share placements, so the lattice and router arenas
	// carry over between runs.
	sim := mesh.NewSimulator()
	var rows []SchedRow
	for _, capn := range capacities {
		p, err := bravyi.ParamsForCapacity(capn, level)
		if err != nil {
			return nil, fmt.Errorf("sched: %w", err)
		}
		p.Reuse = level >= 2
		f, err := bravyi.Build(p)
		if err != nil {
			return nil, err
		}
		pl := layout.Linear(f)
		sifted := sched.SiftEarlier(f.Circuit)

		simP, err := sim.Simulate(f.Circuit, pl, mesh.Config{})
		if err != nil {
			return nil, fmt.Errorf("sched cap %d program: %w", capn, err)
		}
		simS, err := sim.Simulate(sifted, pl, mesh.Config{})
		if err != nil {
			return nil, fmt.Errorf("sched cap %d sifted: %w", capn, err)
		}
		rows = append(rows, SchedRow{
			Capacity:        capn,
			Strategy:        "Line",
			ProgramLatency:  simP.Latency,
			SiftedLatency:   simS.Latency,
			CriticalProgram: cm.CriticalPath(f.Circuit),
			CriticalSifted:  cm.CriticalPath(sifted),
		})
	}
	_ = seed // the linear mapping and sifting are deterministic
	return rows, nil
}

// WriteSchedReorder renders the reordering study.
func WriteSchedReorder(w io.Writer, level int, rows []SchedRow) {
	fmt.Fprintf(w, "Gate reordering (§V.A) — program order vs commuting-sift, level %d, linear mapping\n", level)
	tw := newTab(w)
	fmt.Fprintln(tw, "capacity\tprogram\tsifted\tbound (program)\tbound (sifted)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\n",
			r.Capacity, r.ProgramLatency, r.SiftedLatency, r.CriticalProgram, r.CriticalSifted)
	}
	tw.Flush()
	fmt.Fprintln(w, "(the paper's claim: barriers bound mobility, so reordering moves little)")
}
