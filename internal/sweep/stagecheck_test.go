package sweep

import (
	"context"
	"encoding/json"
	"math/rand"
	"sync"
	"testing"

	"magicstate/internal/core"
	"magicstate/internal/store"
)

// recordBytes canonicalizes a report for byte-identity comparison the
// same way the durable tier does: through store.RecordOf's JSON form.
// If a reuse path drifted on any recorded field, these bytes differ.
func recordBytes(t *testing.T, rep *core.Report) string {
	t.Helper()
	b, err := json.Marshal(store.RecordOf(rep))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// randomStageConfig draws one config from the full strategy × style ×
// levels space, sized to stay cheap: the harness cares about pipeline
// composition, not factory scale.
func randomStageConfig(rng *rand.Rand) core.Config {
	cfg := core.Config{
		K:        2 + rng.Intn(3),
		Levels:   1 + rng.Intn(2),
		Strategy: core.Strategy(rng.Intn(5)),
		Seed:     int64(1 + rng.Intn(50)),
		Reuse:    rng.Intn(2) == 0,
	}
	if rng.Intn(2) == 0 {
		cfg.Style = 1
	}
	if rng.Intn(3) == 0 {
		cfg.NoBarriers = true
	}
	if cfg.Strategy == core.StrategyForceDirected {
		// A small explicit cap keeps FD anneals fast and deterministic
		// across the replayed paths.
		cfg.FD.Iterations = 5 + rng.Intn(10)
		cfg.K = 2
	}
	if cfg.Strategy == core.StrategyStitch {
		cfg.K = 2
		cfg.Levels = 2
	}
	return cfg
}

// mutateForPartialReuse returns a sibling of cfg that shares the given
// upstream stages: seedSibling keeps the factory build (except for
// stitch, whose build is seed-fused); styleSibling keeps build and —
// for every strategy but FD — the placement too.
func seedSibling(cfg core.Config) core.Config {
	s := cfg
	s.Seed += 1000
	return s
}

func styleSibling(cfg core.Config) core.Config {
	s := cfg
	s.Style = 1 - s.Style
	return s
}

// TestStagedReusePathsMatchMonolithic is the stage-equivalence harness:
// over randomized configs spanning every strategy, style and level
// count, each partial-reuse path — cold, factory-hit, factory+placement
// hit, and full-record hit — must produce a report byte-identical (in
// its durable record form) to the monolithic serial pipeline. Paths run
// concurrently per config, so `go test -race` also checks the tier's
// locking.
func TestStagedReusePathsMatchMonolithic(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	n := 10
	if testing.Short() {
		n = 4
	}
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		cfg := randomStageConfig(rng)
		ck := store.KeyOf(cfg).String()
		if seen[ck] {
			continue
		}
		seen[ck] = true
		t.Run(ck[:8], func(t *testing.T) {
			t.Parallel()
			mono, err := core.RunContext(context.Background(), cfg)
			if err != nil {
				t.Fatalf("%+v: monolithic pipeline: %v", cfg, err)
			}
			want := recordBytes(t, mono)

			st, err := store.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()

			// Cold: nothing cached anywhere.
			cold := New(Options{Store: st, Workers: 1})
			rep, err := cold.RunOne(cfg)
			if err != nil {
				t.Fatalf("cold: %v", err)
			}
			if got := recordBytes(t, rep); got != want {
				t.Fatalf("cold path diverged:\n got %s\nwant %s", got, want)
			}

			// The remaining paths replay against stores warmed by
			// siblings (or by the config itself), each from a fresh
			// engine so the reuse comes from the durable tier, not the
			// memo. They are independent, so exercise them concurrently
			// for the race detector's benefit.
			paths := []struct {
				name string
				warm core.Config
			}{
				{"factory-hit", seedSibling(cfg)},
				{"factory-place-hit", styleSibling(cfg)},
				{"full-hit", cfg},
			}
			var wg sync.WaitGroup
			for _, p := range paths {
				wg.Add(1)
				go func(name string, warmCfg core.Config) {
					defer wg.Done()
					ps, err := store.Open(t.TempDir())
					if err != nil {
						t.Errorf("%s: %v", name, err)
						return
					}
					defer ps.Close()
					warmer := New(Options{Store: ps, Workers: 1})
					if _, err := warmer.RunOne(warmCfg); err != nil {
						t.Errorf("%s: warming with %+v: %v", name, warmCfg, err)
						return
					}
					eng := New(Options{Store: ps, Workers: 1})
					rep, err := eng.RunOne(cfg)
					if err != nil {
						t.Errorf("%s: %v", name, err)
						return
					}
					if got := recordBytes(t, rep); got != want {
						t.Errorf("%s path diverged:\n got %s\nwant %s", name, got, want)
					}
				}(p.name, p.warm)
			}
			wg.Wait()
		})
	}
}

// TestStagedReuseCountsFactoryHits pins that the partial-reuse paths
// actually take the stage tier, not just agree on results: a second
// config differing only in Seed must replay the factory build for every
// strategy whose build scope excludes the seed.
func TestStagedReuseCountsFactoryHits(t *testing.T) {
	for _, strat := range []core.Strategy{
		core.StrategyLinear, core.StrategyRandom, core.StrategyGraphPartition,
	} {
		cfg := core.Config{K: 3, Levels: 2, Strategy: strat, Seed: 1}
		st, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		warmer := New(Options{Store: st, Workers: 1})
		if _, err := warmer.RunOne(cfg); err != nil {
			t.Fatal(err)
		}
		eng := New(Options{Store: st, Workers: 1})
		if _, err := eng.RunOne(seedSibling(cfg)); err != nil {
			t.Fatal(err)
		}
		ss := eng.StageStats()
		if ss.BuildHits != 1 || ss.BuildComputes != 0 {
			t.Errorf("%v: build stage hits/computes = %d/%d, want 1/0", strat, ss.BuildHits, ss.BuildComputes)
		}
		st.Close()
	}

	// Differing only in Style keeps the placement too (Linear here, whose
	// placement is style-independent): both upstream stages replay.
	cfg := core.Config{K: 3, Levels: 2, Strategy: core.StrategyLinear, Seed: 1}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	warmer := New(Options{Store: st, Workers: 1})
	if _, err := warmer.RunOne(cfg); err != nil {
		t.Fatal(err)
	}
	eng := New(Options{Store: st, Workers: 1})
	if _, err := eng.RunOne(styleSibling(cfg)); err != nil {
		t.Fatal(err)
	}
	ss := eng.StageStats()
	if ss.BuildHits != 1 || ss.PlaceHits != 1 || ss.BuildComputes != 0 || ss.PlaceComputes != 0 {
		t.Errorf("style sibling: stage stats %+v, want build and place both replayed", ss)
	}
	if ss.SimComputes != 1 {
		t.Errorf("style sibling: sim computes = %d, want 1 (style is simulated state)", ss.SimComputes)
	}
}
