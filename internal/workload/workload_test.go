package workload

import (
	"strings"
	"testing"

	"magicstate/internal/circuit"
)

func TestSpecRoundTrip(t *testing.T) {
	specs := []Spec{
		{Qubits: 2, Layers: 1},
		{Qubits: 16, Layers: 8, CX: 0.5, T: 0.25},
		{Qubits: 9, Layers: 6, CX: 0.4, T: 0.3},
		{Qubits: 3, Layers: 2, CX: 1, T: 1},
	}
	for _, s := range specs {
		got, err := Parse(s.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", s.String(), err)
		}
		if got != s {
			t.Fatalf("round trip %q: got %+v, want %+v", s.String(), got, s)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"", "empty entry"},
		{"q=4", "must set q and layers"},
		{"layers=2", "must set q and layers"},
		{"q=4;layers=2;q=5", "repeats key"},
		{"q=4;layers=2;foo=1", "unknown spec key"},
		{"q=four;layers=2", "spec entry"},
		{"q=1;layers=2", "at least 2 qubits"},
		{"q=4;layers=0", "at least 1 layer"},
		{"q=4;layers=2;cx=1.5", "outside [0, 1]"},
		{"q=4;layers=2;t=-0.1", "outside [0, 1]"},
		{"q=4;layers=2;cx", "not key=value"},
	}
	for _, tc := range cases {
		if _, err := Parse(tc.src); err == nil {
			t.Errorf("Parse(%q) accepted", tc.src)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q) error %q does not mention %q", tc.src, err, tc.want)
		}
	}
}

// TestGenerateDeterministic pins the seeded-stream contract: the same
// (spec, seed) pair yields the identical gate sequence on every call,
// and a different seed yields a different one.
func TestGenerateDeterministic(t *testing.T) {
	const spec = "q=8;layers=6;cx=0.5;t=0.3"
	a, err := GenerateString(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateString(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same (spec, seed) produced different circuits")
	}
	c, err := GenerateString(spec, 43)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() == c.String() {
		t.Fatal("different seeds produced identical circuits")
	}
}

func TestGenerateShape(t *testing.T) {
	spec := Spec{Qubits: 10, Layers: 4, CX: 1, T: 0}
	c, err := Generate(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 10 {
		t.Fatalf("NumQubits = %d, want 10", c.NumQubits)
	}
	if got := c.CountKind(circuit.KindPrepZ); got != 10 {
		t.Errorf("PrepZ count = %d, want 10", got)
	}
	if got := c.CountKind(circuit.KindMeasZ); got != 10 {
		t.Errorf("MeasZ count = %d, want 10", got)
	}
	// CX = 1: every layer pairs all 10 qubits into 5 CNOTs.
	if got := c.CountKind(circuit.KindCNOT); got != 20 {
		t.Errorf("CNOT count = %d, want 20", got)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("generated circuit invalid: %v", err)
	}
}

func FuzzWorkloadParse(f *testing.F) {
	f.Add("q=8;layers=6;cx=0.5;t=0.3", int64(1))
	f.Add("q=2;layers=1", int64(0))
	f.Add(" q = 4 ; layers = 2 ; cx = 0 ; t = 1 ", int64(-5))
	f.Fuzz(func(t *testing.T, src string, seed int64) {
		spec, err := Parse(src)
		if err != nil {
			return
		}
		// Cap the work so fuzzing explores the codec, not generation cost.
		if spec.Qubits > 64 || spec.Layers > 64 {
			return
		}
		c, err := Generate(spec, seed)
		if err != nil {
			t.Fatalf("Parse accepted %q but Generate failed: %v", src, err)
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("generated circuit invalid for %q: %v", src, verr)
		}
	})
}
