package montecarlo

import (
	"fmt"
	"math/rand"
	"sort"
)

// TimeSummary reports the sampled distribution of the time one factory
// needs to accumulate a target number of distilled states, batch by
// batch, partial yields included.
type TimeSummary struct {
	// Target is the requested state count.
	Target int
	// BatchLatency is the cycles charged per batch attempt.
	BatchLatency int
	// MeanBatches and MeanCycles are the sample means.
	MeanBatches float64
	MeanCycles  float64
	// P50, P90 and P99 are cycle percentiles of the time-to-target.
	P50, P90, P99 int
}

// TimeToStates samples how long one factory takes to deliver target
// states when every batch costs batchLatency cycles and yields a sampled
// (possibly partial) state count. It answers the throughput question the
// analytic ExpectedRunsPerSuccess only bounds: tail latencies matter for
// provisioning buffers (§IX), and partial yields shorten them
// considerably relative to the all-or-nothing model.
func TimeToStates(cfg Config, target, batchLatency int) (*TimeSummary, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if target < 1 {
		return nil, fmt.Errorf("montecarlo: target must be >= 1, got %d", target)
	}
	if batchLatency < 1 {
		return nil, fmt.Errorf("montecarlo: batch latency must be >= 1, got %d", batchLatency)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	errs := cfg.Errors.RoundErrors(cfg.Params)

	// Guard against unreachable targets (zero yield forever): bound the
	// batches per trial and fail if any trial exhausts the bound.
	maxBatches := 1000 * (target/cfg.Params.Capacity() + 1)
	batchCounts := make([]int, cfg.Trials)
	for i := 0; i < cfg.Trials; i++ {
		got, batches := 0, 0
		for got < target {
			if batches >= maxBatches {
				return nil, fmt.Errorf("montecarlo: target %d unreachable within %d batches (yield ~ 0)",
					target, maxBatches)
			}
			tr := sample(cfg, errs, rng)
			got += tr.Outputs
			batches++
		}
		batchCounts[i] = batches
	}
	sum := &TimeSummary{Target: target, BatchLatency: batchLatency}
	cycles := make([]int, len(batchCounts))
	var totalBatches float64
	for i, b := range batchCounts {
		totalBatches += float64(b)
		cycles[i] = b * batchLatency
	}
	sort.Ints(cycles)
	sum.MeanBatches = totalBatches / float64(len(batchCounts))
	sum.MeanCycles = sum.MeanBatches * float64(batchLatency)
	pct := func(p float64) int {
		idx := int(p * float64(len(cycles)-1))
		return cycles[idx]
	}
	sum.P50, sum.P90, sum.P99 = pct(0.50), pct(0.90), pct(0.99)
	return sum, nil
}
