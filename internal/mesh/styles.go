package mesh

import (
	"fmt"

	"magicstate/internal/circuit"
)

// InteractionStyle selects how two-qubit logical operations claim the
// lattice — the surface-code interaction-style study the paper lists as
// future work (§IX, following [1] and [20]). The three styles trade
// latency against channel occupancy:
//
//   - Braiding (the paper's model, Fig. 1): a braid completes in constant
//     time regardless of length but its whole path is exclusive for the
//     full gate duration.
//   - Lattice surgery: merge/split operations take Θ(d) rounds for code
//     distance d, and the ancilla corridor between the patches is
//     likewise exclusive for the full duration. Cheap at small d,
//     increasingly slow at large d.
//   - Teleportation: Bell-pair distribution occupies the channel for only
//     EprCycles, after which the gate completes with local operations
//     while the channel is free for other traffic. Latency still scales
//     with d (the local Bell measurement is a patch operation) but
//     congestion nearly vanishes.
type InteractionStyle int

const (
	// StyleBraiding reproduces the paper's braid model (default).
	StyleBraiding InteractionStyle = iota
	// StyleLatticeSurgery makes every operation's duration scale with
	// the code distance while holding its path exclusively throughout.
	StyleLatticeSurgery
	// StyleTeleportation holds paths only during entanglement
	// distribution; completion is local.
	StyleTeleportation
)

var styleNames = map[InteractionStyle]string{
	StyleBraiding:       "braiding",
	StyleLatticeSurgery: "lattice-surgery",
	StyleTeleportation:  "teleportation",
}

// String names the style for reports.
func (s InteractionStyle) String() string {
	if n, ok := styleNames[s]; ok {
		return n
	}
	return fmt.Sprintf("style(%d)", int(s))
}

// Styles lists every interaction style, in comparison-table order.
func Styles() []InteractionStyle {
	return []InteractionStyle{StyleBraiding, StyleLatticeSurgery, StyleTeleportation}
}

// braidUnit is the base time unit of the braiding cost model: the default
// CostModel expresses local operations as 1 unit (10 cycles), braids as 2
// and injections as 4. The distance-sensitive styles rescale that unit to
// the code distance d, so at d = braidUnit cycles the styles' durations
// coincide and the crossover study (experiments.Styles) pivots around it.
const braidUnit = 10

// styleCycles returns the completion duration and the channel-hold
// duration of gate g under the configured style. For braiding both equal
// the cost model's duration; lattice surgery rescales durations by
// d/braidUnit and holds for the full duration; teleportation holds
// two-qubit channels only for EprCycles while completing after the
// rescaled duration.
func (cfg *Config) styleCycles(g *circuit.Gate) (dur, hold int) {
	base := cfg.Cost.GateCycles(g)
	switch cfg.Style {
	case StyleLatticeSurgery:
		dur = scaleByDistance(base, cfg.Distance)
		return dur, dur
	case StyleTeleportation:
		dur = scaleByDistance(base, cfg.Distance)
		if g.Kind.IsTwoQubit() {
			dur += cfg.EprCycles
			return dur, cfg.EprCycles
		}
		return dur, dur
	default:
		return base, base
	}
}

// scaleByDistance converts a braiding-model duration into a
// distance-d duration, rounding up so nonzero gates never become free.
func scaleByDistance(base, d int) int {
	if base == 0 {
		return 0
	}
	scaled := (base*d + braidUnit - 1) / braidUnit
	if scaled < 1 {
		scaled = 1
	}
	return scaled
}

// fillStyle applies style-related defaults; called from Config.fill.
func (cfg *Config) fillStyle() {
	if cfg.Distance == 0 {
		cfg.Distance = 7
	}
	if cfg.EprCycles == 0 {
		cfg.EprCycles = 2
	}
}
