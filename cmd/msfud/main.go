// Command msfud (magic-state functional unit daemon) serves factory
// optimization over HTTP: the same pipeline the msfu and paperbench
// CLIs run, behind a long-running process with a two-tier result cache
// (in-memory memo + optional durable store), so any given (capacity,
// level, strategy, style, seed) point is computed once — ever, when a
// -store directory is given — no matter how many requests ask for it.
//
// Usage:
//
//	msfud [-addr HOST:PORT] [-store DIR] [-parallel N] [-max-points N]
//	      [-max-inflight N] [-max-queue N] [-rate R] [-burst B]
//	      [-request-timeout D] [-drain-timeout D] [-addr-file FILE]
//
// Endpoints (see API.md for request/response bodies and curl examples):
//
//	POST   /v1/optimize   one point, synchronous
//	POST   /v1/batch      a grid; 202 + job id, or SSE progress with ?stream=1
//	GET    /v1/jobs/{id}  poll a batch job
//	DELETE /v1/jobs/{id}  cancel a batch job
//	GET    /v1/stats      cache hit rates, job counters, uptime
//	GET    /metrics       the same counters, Prometheus text format
//
// -parallel caps the worker pool any single request may use (default:
// one per CPU); requests may ask for less, never more. -max-points
// bounds a single batch request's grid expansion. -store enables the
// durable tier: results are persisted to DIR (created on first use,
// crash-recovered on open) and served from disk across restarts.
//
// Overload behavior (see DESIGN.md "Admission control"): at most
// -max-inflight compute-carrying requests execute at once, -max-queue
// more wait, and the rest answer 429 + Retry-After. Cache hits bypass
// the budget entirely. -rate adds a per-client token bucket;
// -request-timeout bounds one synchronous request's total service time
// and propagates as a context deadline into the pipeline.
//
// -addr supports port 0 for an OS-assigned port; the resolved address
// is printed on stdout and, with -addr-file, written to FILE — which is
// how the CI smoke test boots the service on a random free port.
//
// SIGINT/SIGTERM shut the service down gracefully: new compute requests
// answer 503 + Retry-After, in-flight requests and jobs are cancelled,
// live SSE streams get their terminal frame, and the store is flushed
// and closed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"magicstate"
	"magicstate/internal/store"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8350", "listen address (port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the resolved listen address to this file once serving")
	storeDir := flag.String("store", "", "durable result store directory (empty = in-memory cache only)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "max sweep workers any single request may use")
	maxPoints := flag.Int("max-points", 4096, "max grid points one batch request may expand to")
	maxInflight := flag.Int("max-inflight", runtime.NumCPU(), "max compute-carrying requests executing at once")
	maxQueue := flag.Int("max-queue", 64, "max requests waiting for an execution slot (beyond it: 429)")
	rate := flag.Float64("rate", 0, "per-client rate limit in requests/second (0 = unlimited)")
	burst := flag.Float64("burst", 0, "per-client burst size (0 = max(1, rate))")
	requestTimeout := flag.Duration("request-timeout", 0, "deadline for one synchronous request, queue wait included (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long shutdown waits for in-flight work")
	faultStore := flag.String("fault-store", "", "TESTING ONLY: store fault injection plan, e.g. failwrite=3,stall=5:10ms")
	flag.Parse()

	cfg := serverConfig{
		MaxParallel:    *parallel,
		MaxPoints:      *maxPoints,
		MaxInflight:    *maxInflight,
		MaxQueue:       *maxQueue,
		Rate:           *rate,
		Burst:          *burst,
		RequestTimeout: *requestTimeout,
	}
	if err := run(*addr, *addrFile, *storeDir, *faultStore, cfg, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run wires the batcher, listener and signal handling; split from main
// so every exit path returns through the deferred cleanup.
func run(addr, addrFile, storeDir, faultSpec string, cfg serverConfig, drainTimeout time.Duration) error {
	if faultSpec != "" {
		// Validate eagerly so a typo'd plan fails at boot, not mid-soak.
		if _, err := store.ParseFaultPlan(faultSpec); err != nil {
			return fmt.Errorf("-fault-store: %w", err)
		}
		fmt.Println("msfud: WARNING: store fault injection active (-fault-store); not for production")
	}
	b, err := magicstate.NewBatcher(magicstate.BatcherOptions{
		Parallelism: cfg.MaxParallel,
		Checkpoint:  storeDir,
		StoreFaults: faultSpec,
	})
	if err != nil {
		return err
	}
	defer b.Close()

	srv := newServer(b, cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	resolved := ln.Addr().String()
	fmt.Printf("msfud listening on http://%s\n", resolved)
	if storeDir != "" {
		fmt.Printf("msfud durable store: %s (%d records)\n", storeDir, b.Stats().StoredRecords)
	}
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(resolved), 0o644); err != nil {
			return err
		}
	}

	hs := &http.Server{Handler: srv.handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Printf("msfud: %v, shutting down\n", s)
		// Drain order: flip to draining first (new compute answers 503
		// + Retry-After, jobs and SSE streams are cancelled), then let
		// the HTTP layer finish writing responses, then wait for job
		// goroutines before the deferred store close, so nothing races
		// a PutReport against the closing store.
		srv.startDrain()
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		err := hs.Shutdown(ctx)
		srv.awaitJobs(drainTimeout)
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return nil
	}
}
