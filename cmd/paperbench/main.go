// Command paperbench regenerates the tables and figures of the paper's
// evaluation section (§VIII) on this repository's implementation.
//
// Usage:
//
//	paperbench [-seed N] [-quick] [-parallel N] [-progress] [-checkpoint DIR] [artifact ...]
//	paperbench preset NAME [-parallel N] [-checkpoint DIR]   # run a named sweep suite
//	paperbench -bench FILE        # machine-readable perf snapshot, then exit
//	paperbench -cpuprofile FILE [-memprofile FILE] [artifact ...]
//
// Artifacts: fig6 fig7a fig7b fig9ab fig9d fig10a fig10b table1 all
// (fig10a covers the single-level panels 10a/10b/10e; fig10b the
// two-level panels 10c/10d/10f). The extension artifacts ext-styles,
// ext-area, ext-protocols, ext-yield, ext-stitchgen and ext-defects
// cover the §IX future-work and §III related-work studies; `ext` runs
// all of them.
// -quick shrinks the capacity sweeps so a full pass finishes in well
// under a minute.
//
// Every artifact is a grid of independent pipeline runs, and -parallel N
// executes each grid on N sweep-engine workers (default: one per CPU;
// -parallel 1 reproduces the serial pipeline exactly). Each pipeline
// stage is deterministic per grid point, so stdout and -csv artifacts
// are byte-identical for a given -seed at every -parallel setting —
// only the wall-clock changes. Identical grid points across artifacts
// (Table I and Fig. 10 share capacity cells, for instance) are
// evaluated once per process through the engine's memo cache.
//
// -progress reports per-artifact grid completion ("fig10b 7/16 points")
// on stderr as long sweeps run; stdout stays clean for the artifacts
// themselves.
//
// -checkpoint DIR backs the run with a durable result store (created on
// first use, crash-recovered on open): every pipeline grid point is
// persisted to DIR as it completes, and a later run with the same
// -checkpoint — the same invocation restarted after a kill, or an
// entirely different artifact sharing grid cells — serves stored points
// from disk instead of recomputing them. Artifacts stay byte-identical
// with or without a checkpoint (the store keeps exactly the scalar
// fields the artifact writers read; internal/experiments'
// TestResumeByteIdentical holds the repo to this). A cache summary
// ("checkpoint: N from store, M computed, K records") prints on stderr
// at exit so resumed runs can verify they recomputed nothing.
//
// -bench FILE runs the repo's simulator/stitcher perf workloads in
// process and writes a machine-readable JSON snapshot (see bench.go) to
// FILE ("-" for stdout), then exits; CI archives these and
// BENCH_PR2.json pins the PR-2 before/after numbers. -cpuprofile and
// -memprofile capture pprof profiles of whatever artifacts (or -bench
// suite) the invocation runs — the profiling workflow is documented in
// DESIGN.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
	"time"

	"magicstate/internal/experiments"
	"magicstate/internal/store"
	"magicstate/internal/sweep"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed shared by all experiments")
	quick := flag.Bool("quick", false, "shrink capacity sweeps for a fast smoke pass")
	samples := flag.Int("fig6samples", 60, "randomized mappings for fig6")
	csvDir := flag.String("csv", "", "also write plot-ready CSV files into this directory")
	parallel := flag.Int("parallel", runtime.NumCPU(), "sweep-engine workers per experiment grid (1 = serial)")
	progress := flag.Bool("progress", false, "report per-artifact grid progress on stderr")
	benchOut := flag.String("bench", "", "run the perf workloads and write a JSON snapshot to this file (- for stdout), then exit")
	checkpoint := flag.String("checkpoint", "", "durable result store directory; resumed runs skip already-stored points")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	// Parse flags interleaved with artifact names, so
	// `paperbench all -quick -parallel 4` means what it says (the stdlib
	// parser would silently treat everything after `all` as artifacts).
	var artifacts []string
	rest := os.Args[1:]
	for len(rest) > 0 {
		if err := flag.CommandLine.Parse(rest); err != nil {
			os.Exit(2)
		}
		rest = flag.Args()
		if len(rest) == 0 {
			break
		}
		artifacts = append(artifacts, rest[0])
		rest = rest[1:]
	}

	// Profiles must be flushed on every exit path — os.Exit skips defers,
	// and a profile of a failing run is exactly the one worth keeping —
	// so error paths below go through exitWith, not os.Exit.
	stopProfiles := func() {
		if *cpuProfile != "" {
			pprof.StopCPUProfile()
		}
		if *memProfile != "" {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained state
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
	}
	// closeCheckpoint flushes the -checkpoint store and prints the cache
	// summary; reassigned once the store is open, and called on every
	// exit path (a crash-killed run skips it by design — recovery at the
	// next open picks up whatever reached the log).
	closeCheckpoint := func() {}
	exitWith := func(code int) {
		closeCheckpoint()
		stopProfiles()
		os.Exit(code)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	defer stopProfiles()

	if *benchOut != "" {
		if err := runBenchSuite(*benchOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exitWith(1)
		}
		return
	}

	// `paperbench preset <name>` runs a named sweep suite and prints one
	// JSON result per line — the same points and bytes msfud's
	// /v1/batch {"preset": ...} reports. Handled before the engine and
	// checkpoint store come up: the preset runner owns its own batcher
	// (and store handle, which allows one writer per directory).
	if len(artifacts) > 0 && artifacts[0] == "preset" {
		if len(artifacts) != 2 {
			fmt.Fprintln(os.Stderr, "usage: paperbench preset <name> [-parallel N] [-checkpoint DIR]")
			exitWith(2)
		}
		if err := runPreset(artifacts[1], *parallel, *checkpoint); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exitWith(1)
		}
		return
	}

	var artifact atomic.Value // name of the artifact currently sweeping
	artifact.Store("")
	var progressFn func(done, total int)
	if *progress {
		progressFn = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%s %d/%d points", artifact.Load(), done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	engOpts := sweep.Options{Workers: *parallel, Progress: progressFn}
	if *checkpoint != "" {
		st, err := store.Open(*checkpoint)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exitWith(1)
		}
		engOpts.Store = st
	}
	eng := sweep.New(engOpts)
	experiments.SetEngine(eng)
	if st := engOpts.Store; st != nil {
		closeCheckpoint = func() {
			closeCheckpoint = func() {} // once
			stats := st.Stats()
			fmt.Fprintf(os.Stderr, "checkpoint: %d from store, %d computed, %d records in %s\n",
				eng.DiskHits(), stats.Puts, stats.Records, *checkpoint)
			if ss := eng.StageStats(); ss.BuildHits+ss.BuildComputes+ss.PlaceHits+ss.PlaceComputes+ss.SimHits+ss.SimComputes > 0 {
				fmt.Fprintf(os.Stderr, "stages: build %d reused / %d computed, place %d/%d, sim %d/%d (%d stage artifacts)\n",
					ss.BuildHits, ss.BuildComputes, ss.PlaceHits, ss.PlaceComputes, ss.SimHits, ss.SimComputes,
					stats.StageRecords)
			}
			if err := st.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
		defer func() { closeCheckpoint() }()
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exitWith(1)
		}
	}
	writeCSV := func(name string, header []string, rows [][]string) {
		if *csvDir == "" {
			return
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exitWith(1)
		}
		defer f.Close()
		experiments.CSV(f, header, rows)
	}

	if len(artifacts) == 0 {
		artifacts = []string{"all"}
	}
	known := map[string]bool{"all": true, "ext": true}
	for _, a := range []string{
		"fig6", "fig7a", "fig7b", "fig9ab", "fig9d", "fig10a", "fig10b", "table1",
		"ext-styles", "ext-area", "ext-protocols", "ext-yield", "ext-stitchgen",
		"ext-bk15", "ext-l3", "ext-sched", "ext-defects",
	} {
		known[a] = true
	}
	want := map[string]bool{}
	for _, a := range artifacts {
		if !known[a] {
			fmt.Fprintf(os.Stderr, "unknown artifact %q (see doc comment for the list)\n", a)
			exitWith(2)
		}
		want[a] = true
	}
	all := want["all"]

	f7l1 := experiments.PaperFig7L1Capacities
	f7l2 := experiments.PaperFig7L2Capacities
	f9 := experiments.PaperFig9Capacities
	f10l1 := experiments.PaperFig10L1Capacities
	f10l2 := experiments.PaperFig10L2Capacities
	t1l1 := experiments.PaperTable1L1
	t1l2 := experiments.PaperTable1L2
	if *quick {
		f7l1, f7l2 = []int{2, 4, 8}, []int{4, 16}
		f9 = []int{4, 16}
		f10l1, f10l2 = []int{2, 4, 8}, []int{4, 16}
		t1l1, t1l2 = []int{2, 4}, []int{4, 16}
		*samples = 24
	}

	run := func(name string, fn func() error) {
		if !all && !want[name] {
			return
		}
		artifact.Store(name)
		start := time.Now()
		if err := fn(); err != nil {
			if *progress {
				fmt.Fprintln(os.Stderr) // finish any partial \r progress line
			}
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			exitWith(1)
		}
		fmt.Fprintf(os.Stderr, "(%s in %s)\n", name, time.Since(start).Round(time.Millisecond))
		fmt.Println()
	}

	run("fig6", func() error {
		r, err := experiments.Fig6(8, *samples, *seed)
		if err != nil {
			return err
		}
		experiments.WriteFig6(os.Stdout, r)
		var rows [][]string
		for _, p := range r.Points {
			rows = append(rows, []string{
				fmt.Sprint(p.Crossings), fmt.Sprintf("%.4f", p.AvgManhattan),
				fmt.Sprintf("%.4f", p.AvgSpacing), fmt.Sprint(p.Latency)})
		}
		writeCSV("fig6.csv", []string{"crossings", "avg_manhattan", "avg_spacing", "latency"}, rows)
		return nil
	})
	run("fig7a", func() error {
		rows, err := experiments.Fig7(1, f7l1, *seed)
		if err != nil {
			return err
		}
		experiments.WriteFig7(os.Stdout, 1, rows)
		return nil
	})
	run("fig7b", func() error {
		rows, err := experiments.Fig7(2, f7l2, *seed)
		if err != nil {
			return err
		}
		experiments.WriteFig7(os.Stdout, 2, rows)
		return nil
	})
	run("fig9ab", func() error {
		rows, err := experiments.Fig9Reuse(f9, *seed)
		if err != nil {
			return err
		}
		experiments.WriteFig9Reuse(os.Stdout, rows)
		return nil
	})
	run("fig9d", func() error {
		rows, err := experiments.Fig9Hops(f9, *seed)
		if err != nil {
			return err
		}
		experiments.WriteFig9Hops(os.Stdout, rows)
		return nil
	})
	run("fig10a", func() error {
		rows, err := experiments.Fig10(1, f10l1, *seed)
		if err != nil {
			return err
		}
		experiments.WriteFig10(os.Stdout, 1, rows)
		return nil
	})
	run("fig10b", func() error {
		rows, err := experiments.Fig10(2, f10l2, *seed)
		if err != nil {
			return err
		}
		experiments.WriteFig10(os.Stdout, 2, rows)
		var csv [][]string
		for _, r := range rows {
			csv = append(csv, []string{r.Strategy, fmt.Sprint(r.Capacity),
				fmt.Sprint(r.Latency), fmt.Sprint(r.Area), fmt.Sprintf("%.6g", r.Volume),
				fmt.Sprint(r.Reuse)})
		}
		writeCSV("fig10_level2.csv", []string{"strategy", "capacity", "latency", "area", "volume", "reuse"}, csv)
		return nil
	})
	run("table1", func() error {
		t, err := experiments.Table1(t1l1, t1l2, *seed)
		if err != nil {
			return err
		}
		experiments.WriteTable1(os.Stdout, t)
		return nil
	})

	// Extension artifacts (§IX future work and §III related work); run
	// with `paperbench ext` or by individual name.
	extRun := func(name string, fn func() error) {
		if !all && !want[name] && !want["ext"] {
			return
		}
		artifact.Store(name)
		start := time.Now()
		if err := fn(); err != nil {
			if *progress {
				fmt.Fprintln(os.Stderr) // finish any partial \r progress line
			}
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			exitWith(1)
		}
		fmt.Fprintf(os.Stderr, "(%s in %s)\n", name, time.Since(start).Round(time.Millisecond))
		fmt.Println()
	}
	styleLevel, styleK := 2, 4
	yieldKs := []int{2, 4, 6}
	yieldTrials := 20000
	if *quick {
		styleLevel, styleK = 1, 4
		yieldKs = []int{2, 4}
		yieldTrials = 3000
	}
	extRun("ext-styles", func() error {
		rows, err := experiments.StylesExperiment(styleK, styleLevel, []int{3, 5, 7, 11, 15, 21}, *seed)
		if err != nil {
			return err
		}
		experiments.WriteStyles(os.Stdout, styleK, styleLevel, rows)
		var csv [][]string
		for _, r := range rows {
			csv = append(csv, []string{r.Style, fmt.Sprint(r.Distance),
				fmt.Sprint(r.Latency), fmt.Sprint(r.Stalls), fmt.Sprintf("%.6g", r.Volume)})
		}
		writeCSV("ext_styles.csv", []string{"style", "distance", "latency", "stalls", "volume"}, csv)
		fmt.Println()
		cross, err := experiments.StylesByStrategy(4, 7, *seed)
		if err != nil {
			return err
		}
		experiments.WriteStylesByStrategy(os.Stdout, 4, 7, cross)
		return nil
	})
	extRun("ext-area", func() error {
		rows, err := experiments.AreaExpansion(4, styleLevel, []float64{1, 1.25, 1.5, 2, 3}, *seed)
		if err != nil {
			return err
		}
		experiments.WriteAreaExpansion(os.Stdout, 4, styleLevel, rows)
		var csv [][]string
		for _, r := range rows {
			csv = append(csv, []string{fmt.Sprintf("%.2f", r.Factor),
				fmt.Sprint(r.Latency), fmt.Sprint(r.Stalls),
				fmt.Sprint(r.HullArea), fmt.Sprintf("%.6g", r.HullVolume)})
		}
		writeCSV("ext_area.csv", []string{"factor", "latency", "stalls", "hull_area", "hull_volume"}, csv)
		return nil
	})
	extRun("ext-protocols", func() error {
		rows := experiments.ProtocolComparison(1e-3, 1e-10)
		experiments.WriteProtocols(os.Stdout, 1e-3, 1e-10, rows)
		return nil
	})
	extRun("ext-yield", func() error {
		rows, err := experiments.Yield(yieldKs, 2, yieldTrials, *seed)
		if err != nil {
			return err
		}
		experiments.WriteYield(os.Stdout, 2, yieldTrials, rows)
		var csv [][]string
		for _, r := range rows {
			csv = append(csv, []string{fmt.Sprint(r.K), fmt.Sprint(r.Capacity),
				fmt.Sprintf("%.4f", r.AnalyticFullYield), fmt.Sprintf("%.4f", r.SampledFullYield),
				fmt.Sprintf("%.3f", r.MeanOutputs), fmt.Sprintf("%.4f", r.ReserveFullYield)})
		}
		writeCSV("ext_yield.csv", []string{"k", "capacity", "analytic_full", "sampled_full", "mean_outputs", "reserve_full"}, csv)
		return nil
	})
	extRun("ext-stitchgen", func() error {
		rows, err := experiments.StitchGeneralization(*seed)
		if err != nil {
			return err
		}
		experiments.WriteStitchGen(os.Stdout, rows)
		return nil
	})
	extRun("ext-bk15", func() error {
		rows, err := experiments.BK15Mapping(*seed)
		if err != nil {
			return err
		}
		experiments.WriteBK15(os.Stdout, rows)
		return nil
	})
	extRun("ext-l3", func() error {
		rows, err := experiments.ThreeLevel(2, *seed)
		if err != nil {
			return err
		}
		experiments.WriteThreeLevel(os.Stdout, 2, rows)
		return nil
	})
	extRun("ext-defects", func() error {
		rates := []float64{0, 0.02, 0.05, 0.1}
		rows, err := experiments.DefectImpact(4, 1, rates, *seed)
		if err != nil {
			return err
		}
		experiments.WriteDefectImpact(os.Stdout, 4, 1, rows)
		var csv [][]string
		for _, r := range rows {
			csv = append(csv, []string{fmt.Sprintf("%.2f", r.Rate), fmt.Sprint(r.DefectTiles),
				fmt.Sprint(r.Latency), fmt.Sprint(r.Area), fmt.Sprint(r.Stalls), r.Defects})
		}
		writeCSV("ext_defects.csv", []string{"rate", "dead_tiles", "latency", "area", "stalls", "map"}, csv)
		return nil
	})
	extRun("ext-sched", func() error {
		caps := []int{4, 16, 36}
		if *quick {
			caps = []int{4, 16}
		}
		rows, err := experiments.SchedReorder(2, caps, *seed)
		if err != nil {
			return err
		}
		experiments.WriteSchedReorder(os.Stdout, 2, rows)
		return nil
	})
}
