package stats

import "math/rand"

// NewRNG returns a deterministic math/rand source seeded with seed. Every
// randomized component in this repository (random placements, annealing
// acceptance, Valiant hop selection, k-means++ seeding) draws from an
// explicit *rand.Rand so experiments are reproducible run-to-run.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// SplitRNG derives an independent child stream from a parent seed and a
// stream index. Children with different indices are decorrelated by mixing
// the index through a SplitMix64 step.
func SplitRNG(seed int64, stream int64) *rand.Rand {
	return NewRNG(int64(splitmix64(uint64(seed) + uint64(stream)*0x9E3779B97F4A7C15)))
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Perm fills a deterministic permutation of n elements using rng.
func Perm(rng *rand.Rand, n int) []int { return rng.Perm(n) }
