package qasm

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"magicstate/internal/circuit"
)

const bell = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[0];
cx q[0],q[1];
measure q -> c;
`

func TestCompileBell(t *testing.T) {
	c, err := Compile(bell)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 2 {
		t.Fatalf("NumQubits = %d, want 2", c.NumQubits)
	}
	kinds := []circuit.Kind{}
	for _, g := range c.Gates {
		kinds = append(kinds, g.Kind)
	}
	want := []circuit.Kind{circuit.KindH, circuit.KindCNOT, circuit.KindMeasZ, circuit.KindMeasZ}
	if len(kinds) != len(want) {
		t.Fatalf("gate kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("gate %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestCompileBroadcast(t *testing.T) {
	src := `OPENQASM 2.0;
qreg a[3];
qreg b[3];
h a;
cx a,b;
cx a[0],b;
`
	c, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	// h a broadcasts to 3 H gates; cx a,b zips to 3 CNOTs; cx a[0],b
	// broadcasts the single control over b's 3 elements.
	if h := c.CountKind(circuit.KindH); h != 3 {
		t.Fatalf("H count = %d, want 3", h)
	}
	if cx := c.CountKind(circuit.KindCNOT); cx != 6 {
		t.Fatalf("CNOT count = %d, want 6", cx)
	}
}

func TestCompileMacro(t *testing.T) {
	src := `OPENQASM 2.0;
gate flip a { x a; }
gate bellpair a, b { h a; cx a, b; }
qreg q[2];
flip q[0];
bellpair q[0], q[1];
`
	c, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if x := c.CountKind(circuit.KindX); x != 1 {
		t.Fatalf("X count = %d, want 1", x)
	}
	if cx := c.CountKind(circuit.KindCNOT); cx != 1 {
		t.Fatalf("CNOT count = %d, want 1", cx)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"missing header", "qreg q[1];\n", "OPENQASM"},
		{"parameterized gate", "OPENQASM 2.0;\nqreg q[1];\nrz(0.5) q[0];\n", "not supported"},
		{"if statement", "OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nif (c==1) x q[0];\n", "if"},
		{"bad index", "OPENQASM 2.0;\nqreg q[2];\nx q[5];\n", "out of range"},
		{"undeclared register", "OPENQASM 2.0;\nx q[0];\n", "undeclared"},
		{"measure size mismatch", "OPENQASM 2.0;\nqreg q[3];\ncreg c[2];\nmeasure q -> c;\n", "3 qubits to 2 bits"},
		{"cx same qubit", "OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[0];\n", "same qubit"},
		{"redeclared", "OPENQASM 2.0;\nqreg q[1];\nqreg q[2];\n", "redeclared"},
		{"unknown gate", "OPENQASM 2.0;\nqreg q[1];\nfoo q[0];\n", "unknown gate"},
		{"mixed widths", "OPENQASM 2.0;\nqreg a[2];\nqreg b[3];\ncx a,b;\n", "mixes registers"},
		{"qubit budget", "OPENQASM 2.0;\nqreg q[1000000];\n", "more than"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Compile(tc.src); err == nil {
				t.Fatalf("Compile accepted %q", tc.src)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestCompileRecursionDepth(t *testing.T) {
	src := "OPENQASM 2.0;\ngate loop a { loop a; }\nqreg q[1];\nloop q[0];\n"
	_, err := Compile(src)
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Fatalf("recursive macro: err = %v, want depth error", err)
	}
}

// TestCompileGateBudget pins the fix for the exponential-expansion
// hang: a chain of macros that each invoke the previous one twice
// stays within the depth limit while expanding 2^n gates. Elaboration
// must fail fast instead of running for the age of the universe.
func TestCompileGateBudget(t *testing.T) {
	var b strings.Builder
	b.WriteString("OPENQASM 2.0;\ngate g0 a { x a; }\n")
	for i := 1; i <= 60; i++ {
		fmt.Fprintf(&b, "gate g%d a { g%d a; g%d a; }\n", i, i-1, i-1)
	}
	b.WriteString("qreg q[1];\ng60 q[0];\n")
	done := make(chan error, 1)
	go func() {
		_, err := Compile(b.String())
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "expands past") {
			t.Fatalf("doubling macros: err = %v, want gate-budget error", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("doubling macros: Compile hung")
	}
}

func FuzzQASMParse(f *testing.F) {
	f.Add(bell)
	f.Add("OPENQASM 2.0;\ngate g a, b { cx a, b; h b; }\nqreg q[3];\ncreg c[3];\ng q[0], q[1];\nbarrier q;\nreset q[2];\nmeasure q -> c;\n")
	f.Add("OPENQASM 2.0;\ngate g0 a { x a; }\ngate g1 a { g0 a; g0 a; }\nqreg q[1];\ng1 q[0];\n")
	f.Add("OPENQASM 2;\nqreg q[1]")
	f.Add("// comment\nOPENQASM 2.0;\nqreg q[0];\n")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Compile(src)
		if err != nil {
			return
		}
		// Whatever compiles must be a valid circuit: that is the
		// frontend-boundary contract the pipeline relies on.
		if verr := c.Validate(); verr != nil {
			t.Fatalf("Compile accepted %q but circuit invalid: %v", src, verr)
		}
	})
}
