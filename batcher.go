package magicstate

import (
	"fmt"
	"path/filepath"

	"magicstate/internal/store"
	"magicstate/internal/sweep"
)

// BatcherOptions configures a Batcher.
type BatcherOptions struct {
	// Parallelism is the widest worker pool the batcher will ever run
	// (<= 0 means one worker per CPU). Individual batches can narrow it
	// per call via BatchOptions.Parallelism but never widen it.
	Parallelism int
	// Checkpoint, when non-empty, is a directory holding a durable
	// result store: every computed point is persisted there, and future
	// batches — in this process or any later one — serve repeated points
	// from disk instead of recomputing. The directory is created if
	// missing; a store left behind by a killed process is recovered to
	// its longest valid prefix on open.
	Checkpoint string
}

// Batcher is a reusable optimization runner that carries one cache tier
// — an in-memory memo and, with a checkpoint directory, a durable
// on-disk store — across many Optimize and OptimizeBatch calls. The
// one-shot package functions rebuild that state per call; a Batcher is
// for the long-running callers the ROADMAP aims at (the msfud service
// holds exactly one), where the same (capacity, level, strategy, style,
// seed) points recur across requests and should be computed once, ever.
//
// A Batcher is safe for concurrent use. Close it when done; Close
// flushes and releases the checkpoint store (a memory-only Batcher's
// Close is a no-op).
type Batcher struct {
	eng *sweep.Engine
	st  *store.Store
}

// NewBatcher builds a Batcher. An empty Checkpoint yields a memory-only
// cache; a non-empty one opens (creating or crash-recovering as needed)
// the durable store under that directory.
func NewBatcher(opts BatcherOptions) (*Batcher, error) {
	var st *store.Store
	if opts.Checkpoint != "" {
		var err error
		if st, err = store.Open(opts.Checkpoint); err != nil {
			return nil, err
		}
	}
	return &Batcher{
		eng: sweep.New(sweep.Options{Workers: opts.Parallelism, Store: st}),
		st:  st,
	}, nil
}

// Optimize is Optimize routed through the batcher's cache tier: a point
// already computed by this batcher (or stored by any earlier process
// sharing the checkpoint directory) is served without running the
// pipeline. Trace-carrying runs (Options.Trace) always compute — their
// result includes simulation artifacts the store does not keep.
func (b *Batcher) Optimize(spec FactorySpec, opts Options) (*Result, error) {
	return optimizeOn(b.eng, spec, opts)
}

// OptimizeBatch evaluates points like the package-level OptimizeBatch,
// but on the batcher's shared cache tier. opts.Parallelism below the
// batcher's width narrows the pool for this call; zero or anything
// wider uses the batcher's width. The durable tier is fixed at
// construction: opts.Checkpoint must be empty or equal to the
// batcher's own checkpoint directory — naming a different store here
// is an error, not a silent no-op.
func (b *Batcher) OptimizeBatch(points []BatchPoint, opts BatchOptions) ([]*Result, error) {
	if opts.Checkpoint != "" {
		open := ""
		if b.st != nil {
			open = b.st.Dir()
		}
		if !sameDir(opts.Checkpoint, open) {
			return nil, fmt.Errorf("magicstate: batcher checkpoint is %q, set at construction; cannot switch to %q per batch", open, opts.Checkpoint)
		}
	}
	eng := b.eng.Derive(sweep.Options{Workers: opts.Parallelism, Progress: opts.Progress})
	return sweep.Map(opts.Context, eng, points, func(_ int, pt BatchPoint) (*Result, error) {
		return optimizeOn(eng, pt.Spec, pt.Opts)
	})
}

// CacheStats reports how a Batcher's cache tier has performed.
type CacheStats struct {
	// MemoryHits and MemoryMisses count lookups in the in-process memo.
	MemoryHits, MemoryMisses int64
	// DiskHits counts points served from the checkpoint store instead
	// of recomputed (always zero without a checkpoint).
	DiskHits int64
	// StoredRecords is the checkpoint store's live record count.
	StoredRecords int
	// StoredBytes is the checkpoint store's record log size.
	StoredBytes int64
	// CheckpointDir is the store directory ("" when memory-only).
	CheckpointDir string
}

// Stats snapshots the batcher's cache counters.
func (b *Batcher) Stats() CacheStats {
	hits, misses := b.eng.CacheStats()
	cs := CacheStats{
		MemoryHits:   hits,
		MemoryMisses: misses,
		DiskHits:     b.eng.DiskHits(),
	}
	if b.st != nil {
		st := b.st.Stats()
		cs.StoredRecords = st.Records
		cs.StoredBytes = st.LogBytes
		cs.CheckpointDir = b.st.Dir()
	}
	return cs
}

// sameDir reports whether two directory spellings name the same
// location ("ck", "./ck" and the absolute form are all one directory,
// matching how the store's own open-directory guard normalizes paths).
func sameDir(a, b string) bool {
	if a == b {
		return true
	}
	if a == "" || b == "" {
		return false
	}
	absA, errA := filepath.Abs(a)
	absB, errB := filepath.Abs(b)
	return errA == nil && errB == nil && absA == absB
}

// Close flushes and closes the checkpoint store. It is safe to call on
// a memory-only Batcher and safe to call twice.
func (b *Batcher) Close() error {
	if b.st == nil {
		return nil
	}
	return b.st.Close()
}
