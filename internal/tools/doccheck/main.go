// Command doccheck is the repository's doc-comment linter: it parses the
// packages under the directories given on the command line and reports
// every exported identifier — top-level function, type, method, const or
// var group, and struct field of an exported type — that has no doc
// comment, in the spirit of what pkg.go.dev renders blank. go vet checks
// comment *form* (the // Name prefix convention is checked by its
// stdmethods/directive analyzers only loosely); doccheck checks
// *presence*, which vet does not, and CI runs it over the packages the
// documentation pass guarantees.
//
// Usage:
//
//	doccheck [-fields=false] DIR [DIR ...]
//
// Exit status is 1 when any identifier is undocumented, so the CI step
// fails loudly. Test files and *_test packages are skipped.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	fields := flag.Bool("fields", true, "also require doc comments on exported struct fields")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: doccheck [-fields=false] DIR [DIR ...]")
		os.Exit(2)
	}
	var bad int
	for _, dir := range flag.Args() {
		n, err := checkDir(dir, *fields)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		bad += n
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported identifier(s)\n", bad)
		os.Exit(1)
	}
}

// checkDir parses one directory (non-recursively, skipping _test.go
// files) and reports undocumented exported identifiers.
func checkDir(dir string, fields bool) (int, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	var bad int
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		fmt.Printf("%s:%d: %s %s has no doc comment\n", filepath.ToSlash(p.Filename), p.Line, what, name)
		bad++
	}
	for _, pkg := range pkgs {
		for _, f := range sortedFiles(pkg) {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !receiverExported(d) {
						continue
					}
					if d.Doc.Text() == "" {
						report(d.Pos(), declKind(d), d.Name.Name)
					}
				case *ast.GenDecl:
					checkGenDecl(d, report, fields)
				}
			}
		}
	}
	return bad, nil
}

// sortedFiles returns the package's files in name order so output is
// deterministic (map iteration is not).
func sortedFiles(pkg *ast.Package) []*ast.File {
	names := make([]string, 0, len(pkg.Files))
	for name := range pkg.Files {
		names = append(names, name)
	}
	sort.Strings(names)
	files := make([]*ast.File, len(names))
	for i, name := range names {
		files[i] = pkg.Files[name]
	}
	return files
}

// declKind names a FuncDecl for the report line.
func declKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// receiverExported reports whether a method's receiver type is itself
// exported (methods on unexported types never reach pkg.go.dev).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// checkGenDecl handles const/var/type declarations. A doc comment on
// the grouped declaration covers every name in the group — the
// idiomatic form for enum-style const blocks — and a doc or trailing
// line comment covers an individual spec.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string, string), fields bool) {
	groupDoc := d.Doc.Text() != ""
	for _, spec := range d.Specs {
		switch sp := spec.(type) {
		case *ast.TypeSpec:
			if !sp.Name.IsExported() {
				continue
			}
			if !groupDoc && sp.Doc.Text() == "" && sp.Comment.Text() == "" {
				report(sp.Pos(), "type", sp.Name.Name)
			}
			if st, ok := sp.Type.(*ast.StructType); ok && fields && sp.Name.IsExported() {
				checkFields(sp.Name.Name, st, report)
			}
		case *ast.ValueSpec:
			if sp.Doc.Text() != "" || sp.Comment.Text() != "" || groupDoc {
				continue
			}
			for _, name := range sp.Names {
				if name.IsExported() {
					report(name.Pos(), kindWord(d.Tok), name.Name)
				}
			}
		}
	}
}

// kindWord names a const/var token for the report line.
func kindWord(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}

// checkFields requires a doc or line comment on each exported field of
// an exported struct type. A comment above a run of fields documents
// only the first field it precedes — matching how godoc renders it.
func checkFields(typeName string, st *ast.StructType, report func(token.Pos, string, string)) {
	for _, field := range st.Fields.List {
		if field.Doc.Text() != "" || field.Comment.Text() != "" {
			continue
		}
		for _, name := range field.Names {
			if name.IsExported() {
				report(name.Pos(), "field", typeName+"."+name.Name)
			}
		}
	}
}
