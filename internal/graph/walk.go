package graph

import (
	"math"
	"sort"
)

// WalkProfiles returns, per vertex, the probability distribution of a
// t-step weighted random walk started at that vertex [37]: row v is
// (P^t)_v where P is the degree-normalized transition matrix. Vertices
// whose walks land in similar places belong to the same community, the
// intuition behind walktrap-style detection. The result is a dense n×n
// matrix; callers on large graphs should prefer Communities (label
// propagation), which is linear-time.
func WalkProfiles(g *Graph, t int) [][]float64 {
	n := g.N
	if t < 1 {
		t = 1
	}
	rows := make([][]float64, n)
	cur := make([]float64, n)
	next := make([]float64, n)
	for s := 0; s < n; s++ {
		for i := range cur {
			cur[i] = 0
		}
		cur[s] = 1
		for step := 0; step < t; step++ {
			for i := range next {
				next[i] = 0
			}
			for v := 0; v < n; v++ {
				if cur[v] == 0 {
					continue
				}
				d := g.WeightedDegree(v)
				if d == 0 {
					next[v] += cur[v] // isolated vertices hold their mass
					continue
				}
				mass := cur[v]
				g.Neighbors(v, func(u int, w float64) {
					next[u] += mass * w / d
				})
			}
			cur, next = next, cur
		}
		rows[s] = append([]float64(nil), cur...)
	}
	return rows
}

// walkDistance is the degree-weighted L2 distance between two walk
// profiles, the walktrap merge criterion: contributions are normalized by
// vertex degree so hubs do not dominate.
func walkDistance(g *Graph, a, b []float64) float64 {
	var s float64
	for i := range a {
		d := g.WeightedDegree(i)
		if d == 0 {
			d = 1
		}
		diff := a[i] - b[i]
		s += diff * diff / d
	}
	return math.Sqrt(s)
}

// RandomWalkCommunities clusters vertices by agglomerative merging of
// t-step walk profiles (a compact walktrap [37]): every vertex starts as
// its own community; at each step the pair of edge-adjacent communities
// with the smallest profile distance merges; the partition of highest
// modularity across the merge sequence wins. t = 0 uses 3 steps.
func RandomWalkCommunities(g *Graph, t int) ([]int, int) {
	n := g.N
	if n == 0 {
		return nil, 0
	}
	if t < 1 {
		t = 3
	}
	profiles := WalkProfiles(g, t)
	label := make([]int, n)
	size := make([]int, n)
	for i := range label {
		label[i] = i
		size[i] = 1
	}
	bestLabel, _ := densify(label)
	bestQ := Modularity(g, bestLabel)

	// adjacency between communities: derived from graph edges.
	for merges := 0; merges < n-1; merges++ {
		// Find the closest pair of adjacent communities.
		bestA, bestB, bestD := -1, -1, math.Inf(1)
		for _, e := range g.Edges {
			ca, cb := label[e.U], label[e.V]
			if ca == cb {
				continue
			}
			if ca > cb {
				ca, cb = cb, ca
			}
			d := walkDistance(g, profiles[ca], profiles[cb])
			if d < bestD || (d == bestD && (ca < bestA || (ca == bestA && cb < bestB))) {
				bestA, bestB, bestD = ca, cb, d
			}
		}
		if bestA < 0 {
			break // no adjacent communities left (disconnected remainder)
		}
		// Merge B into A; A's profile becomes the size-weighted mean.
		wa, wb := float64(size[bestA]), float64(size[bestB])
		pa, pb := profiles[bestA], profiles[bestB]
		for i := range pa {
			pa[i] = (pa[i]*wa + pb[i]*wb) / (wa + wb)
		}
		size[bestA] += size[bestB]
		for v := range label {
			if label[v] == bestB {
				label[v] = bestA
			}
		}
		cand, _ := densify(label)
		if q := Modularity(g, cand); q > bestQ {
			bestQ = q
			bestLabel = cand
		}
	}
	out, count := densify(bestLabel)
	return out, count
}

// CommunityMethod names one detection algorithm for comparison tables.
type CommunityMethod struct {
	Name   string
	Detect func(g *Graph) ([]int, int)
}

// CommunityMethods returns the detection algorithms the paper's §VI.B.1
// discussion cites ([34–39]): label propagation (the force-directed
// mapper's default), Girvan-Newman edge betweenness, spectral recursive
// bisection, and random-walk agglomeration. seedK is the community count
// hint used by the spectral method (zero means 4).
func CommunityMethods(seedK int) []CommunityMethod {
	if seedK < 2 {
		seedK = 4
	}
	return []CommunityMethod{
		{Name: "label-propagation", Detect: func(g *Graph) ([]int, int) {
			return Communities(g, nil)
		}},
		{Name: "girvan-newman", Detect: func(g *Graph) ([]int, int) {
			return GirvanNewman(g, 0)
		}},
		{Name: "spectral", Detect: func(g *Graph) ([]int, int) {
			return SpectralCommunities(g, seedK)
		}},
		{Name: "random-walk", Detect: func(g *Graph) ([]int, int) {
			return RandomWalkCommunities(g, 0)
		}},
	}
}

// SortedCommunitySizes returns community sizes in descending order, a
// stable summary for tests and reports.
func SortedCommunitySizes(label []int, count int) []int {
	size := make([]int, count)
	for _, l := range label {
		if l >= 0 && l < count {
			size[l]++
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(size)))
	return size
}
