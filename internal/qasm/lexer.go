// Package qasm compiles an OpenQASM-2 subset into the circuit IR: the
// version header, qreg/creg declarations, parameterless gate macro
// definitions, the Clifford+T builtin applications the mesh model can
// execute (h, x, z, s, sdg, t, tdg, id, cx, measure, reset, barrier)
// with full register broadcast, and include directives (accepted and
// ignored — the qelib1 gates this subset uses are built in). Classical
// control (`if`), parameterized rotations (`U`, `rz`, ...) and opaque
// declarations are rejected with structured errors: the braid mesh has
// no execution model for them, and a silent skip would misreport
// latency. Like the scaffold front-end, the compiler validates the
// resulting circuit before returning it, so a malformed import can
// never reach the simulator with out-of-range qubit indices.
package qasm

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber // integer or real literal (reals only survive to error messages)
	tokString // double-quoted include path
	tokPunct  // ( ) { } [ ] ; , -> == and friends
)

type token struct {
	kind tokenKind
	text string
	line int
}

type lexer struct {
	src  []rune
	pos  int
	line int
	toks []token
}

// lex tokenizes source, stripping // comments (the only comment form
// OpenQASM 2 defines).
func lex(src string) ([]token, error) {
	l := &lexer{src: []rune(src), line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case unicode.IsSpace(c):
			l.pos++
		case c == '/' && l.peek(1) == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '"':
			start := l.pos
			l.pos++
			for l.pos < len(l.src) && l.src[l.pos] != '"' && l.src[l.pos] != '\n' {
				l.pos++
			}
			if l.pos >= len(l.src) || l.src[l.pos] != '"' {
				return nil, fmt.Errorf("qasm:%d: unterminated string", l.line)
			}
			l.pos++
			l.emit(tokString, string(l.src[start+1:l.pos-1]))
		case unicode.IsLetter(c) || c == '_':
			start := l.pos
			for l.pos < len(l.src) && (unicode.IsLetter(l.src[l.pos]) || unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '_') {
				l.pos++
			}
			l.emit(tokIdent, string(l.src[start:l.pos]))
		case unicode.IsDigit(c) || (c == '.' && unicode.IsDigit(l.peek(1))):
			start := l.pos
			for l.pos < len(l.src) && (unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '.' ||
				l.src[l.pos] == 'e' || l.src[l.pos] == 'E' ||
				((l.src[l.pos] == '+' || l.src[l.pos] == '-') && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E'))) {
				l.pos++
			}
			l.emit(tokNumber, string(l.src[start:l.pos]))
		case strings.ContainsRune("(){}[];,+-*/=<>!", c):
			if two := string(l.src[l.pos:minInt(l.pos+2, len(l.src))]); two == "->" || two == "==" {
				l.emit(tokPunct, two)
				l.pos += 2
				break
			}
			l.emit(tokPunct, string(c))
			l.pos++
		default:
			return nil, fmt.Errorf("qasm:%d: unexpected character %q", l.line, c)
		}
	}
	l.emit(tokEOF, "")
	return l.toks, nil
}

func (l *lexer) peek(ahead int) rune {
	if l.pos+ahead < len(l.src) {
		return l.src[l.pos+ahead]
	}
	return 0
}

func (l *lexer) emit(kind tokenKind, text string) {
	l.toks = append(l.toks, token{kind: kind, text: text, line: l.line})
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
