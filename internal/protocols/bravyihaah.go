package protocols

import (
	"fmt"

	"magicstate/internal/bravyi"
)

// BravyiHaah is the (3k+8)→k block protocol of [18] the paper's factories
// are built from (§II.F): output error (1+3k)ε², success probability
// 1−(8+3k)ε to first order, 5k+13 logical qubits per module.
type BravyiHaah struct {
	K int
}

// NewBravyiHaah validates k and returns the protocol.
func NewBravyiHaah(k int) (BravyiHaah, error) {
	if k < 1 {
		return BravyiHaah{}, fmt.Errorf("protocols: Bravyi-Haah k must be >= 1, got %d", k)
	}
	return BravyiHaah{K: k}, nil
}

// Name identifies the protocol with its k.
func (p BravyiHaah) Name() string { return fmt.Sprintf("BH %d-to-%d", p.Inputs(), p.Outputs()) }

// Inputs returns 3k+8.
func (p BravyiHaah) Inputs() int { return 3*p.K + 8 }

// Outputs returns k.
func (p BravyiHaah) Outputs() int { return p.K }

// Qubits returns 5k+13 (3k+8 input slots, k+5 ancillas, k outputs).
func (p BravyiHaah) Qubits() int { return 5*p.K + 13 }

// OutputError returns (1+3k)ε² (§II.F); delegated to bravyi.Params so the
// protocol zoo and the factory generator cannot drift apart.
func (p BravyiHaah) OutputError(eps float64) float64 {
	return bravyi.Params{K: p.K, Levels: 1}.OutputError(eps)
}

// SuccessProbability returns 1−(8+3k)ε to first order (§II.F).
func (p BravyiHaah) SuccessProbability(eps float64) float64 {
	return clamp01(bravyi.Params{K: p.K, Levels: 1}.SuccessProbability(eps))
}
