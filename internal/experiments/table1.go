package experiments

import (
	"fmt"

	"magicstate/internal/core"
)

// Table1Cell is one entry of Table I: the quantum volume a procedure
// needs for a factory of the given level and capacity. Zero Volume means
// the cell is empty in the paper (e.g. HS for single-level factories).
type Table1Cell struct {
	Procedure string
	Level     int
	Capacity  int
	Volume    float64
}

// Table1Result reproduces Table I. Procedures appear in the paper's row
// order: Random, Line(NR), Line(R), FD, GP, HS, Critical.
type Table1Result struct {
	Level1Capacities []int
	Level2Capacities []int
	Cells            []Table1Cell
}

// Procedures is Table I's row order.
var Procedures = []string{"Random", "Line(NR)", "Line(R)", "FD", "GP", "HS", "Critical"}

// Cell looks up a cell by procedure, level and capacity; ok is false for
// cells the table leaves empty.
func (t *Table1Result) Cell(proc string, level, capacity int) (Table1Cell, bool) {
	for _, c := range t.Cells {
		if c.Procedure == proc && c.Level == level && c.Capacity == capacity {
			return c, true
		}
	}
	return Table1Cell{}, false
}

// Table1 regenerates Table I for the given capacity sets (the paper uses
// level 1 K in {2,4,8,10,24} and level 2 K in {4,16,36,64,100}).
func Table1(level1, level2 []int, seed int64) (*Table1Result, error) {
	res := &Table1Result{Level1Capacities: level1, Level2Capacities: level2}
	add := func(proc string, level, cap int, vol float64) {
		res.Cells = append(res.Cells, Table1Cell{Procedure: proc, Level: level, Capacity: cap, Volume: vol})
	}
	for _, cap := range level1 {
		rnd, err := runCapacity(cap, 1, core.StrategyRandom, false, seed)
		if err != nil {
			return nil, fmt.Errorf("table1 random cap %d: %w", cap, err)
		}
		add("Random", 1, cap, rnd.Volume)
		line, err := runCapacity(cap, 1, core.StrategyLinear, false, seed)
		if err != nil {
			return nil, err
		}
		// Single-level factories have no rounds to reuse across; both
		// Line rows coincide, as their Table I values nearly do.
		add("Line(NR)", 1, cap, line.Volume)
		add("Line(R)", 1, cap, line.Volume)
		fd, err := runCapacity(cap, 1, core.StrategyForceDirected, false, seed)
		if err != nil {
			return nil, err
		}
		add("FD", 1, cap, fd.Volume)
		gp, err := runCapacity(cap, 1, core.StrategyGraphPartition, false, seed)
		if err != nil {
			return nil, err
		}
		add("GP", 1, cap, gp.Volume)
		add("Critical", 1, cap, line.CriticalVolume)
	}
	for _, cap := range level2 {
		lineNR, err := runCapacity(cap, 2, core.StrategyLinear, false, seed)
		if err != nil {
			return nil, fmt.Errorf("table1 line cap %d: %w", cap, err)
		}
		add("Line(NR)", 2, cap, lineNR.Volume)
		lineR, err := runCapacity(cap, 2, core.StrategyLinear, true, seed)
		if err != nil {
			return nil, err
		}
		add("Line(R)", 2, cap, lineR.Volume)
		fd, err := bestReuse(cap, 2, core.StrategyForceDirected, seed)
		if err != nil {
			return nil, err
		}
		add("FD", 2, cap, fd.Volume)
		gp, err := bestReuse(cap, 2, core.StrategyGraphPartition, seed)
		if err != nil {
			return nil, err
		}
		add("GP", 2, cap, gp.Volume)
		hs, err := bestReuse(cap, 2, core.StrategyStitch, seed)
		if err != nil {
			return nil, err
		}
		add("HS", 2, cap, hs.Volume)
		// Critical volume uses the reuse footprint (the smallest machine
		// that can run the factory) times the dependency bound.
		critArea := lineR.Area
		add("Critical", 2, cap, float64(lineR.CriticalLatency)*float64(critArea))
	}
	return res, nil
}

// HeadlineImprovement returns the Line(NR) / HS volume ratio at the
// largest level-2 capacity — the paper's 5.64x headline.
func (t *Table1Result) HeadlineImprovement() float64 {
	if len(t.Level2Capacities) == 0 {
		return 0
	}
	cap := t.Level2Capacities[len(t.Level2Capacities)-1]
	line, ok1 := t.Cell("Line(NR)", 2, cap)
	hs, ok2 := t.Cell("HS", 2, cap)
	if !ok1 || !ok2 || hs.Volume == 0 {
		return 0
	}
	return line.Volume / hs.Volume
}
