package scaffold

import (
	"fmt"

	"magicstate/internal/circuit"
)

// Compile parses and elaborates src, returning the flat gate-level
// circuit produced by executing main: loops unroll, module calls inline,
// and every qbit declaration allocates fresh logical qubits.
func Compile(src string) (*circuit.Circuit, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileProgram(prog)
}

// CompileProgram elaborates an already-parsed program.
func CompileProgram(prog *Program) (*circuit.Circuit, error) {
	e := &elaborator{prog: prog, circ: circuit.New(0)}
	env := newEnv(nil)
	for name, v := range prog.Defines {
		env.setInt(name, v)
	}
	if err := e.runModule(prog.Modules["main"], nil, env, 0); err != nil {
		return nil, err
	}
	if err := e.circ.Validate(); err != nil {
		return nil, fmt.Errorf("scaffold: compiled circuit invalid: %w", err)
	}
	return e.circ, nil
}

// value is either an integer or a qubit array (a single qubit is a
// one-element array).
type value struct {
	isInt bool
	n     int
	qs    []circuit.Qubit
}

type env struct {
	parent *env
	vars   map[string]value
}

func newEnv(parent *env) *env { return &env{parent: parent, vars: map[string]value{}} }

func (e *env) lookup(name string) (value, bool) {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.vars[name]; ok {
			return v, true
		}
	}
	return value{}, false
}

func (e *env) setInt(name string, n int)                 { e.vars[name] = value{isInt: true, n: n} }
func (e *env) setQubits(name string, qs []circuit.Qubit) { e.vars[name] = value{qs: qs} }

type elaborator struct {
	prog  *Program
	circ  *circuit.Circuit
	steps int
}

const maxDepth = 64

// maxQubits bounds allocation and maxSteps bounds elaboration: the
// interpreter unrolls loops, so a one-line `for (i in 0..1<<30)` would
// otherwise spin for minutes, and `qbit q[1<<30]` would demand
// gigabytes. Both limits sit far beyond any program the mesh could
// simulate, so real circuits never see them.
const (
	maxQubits = 1 << 16
	maxSteps  = 1 << 22
)

func (el *elaborator) runModule(m *Module, args []value, outer *env, depth int) error {
	if depth > maxDepth {
		return fmt.Errorf("scaffold: call depth exceeds %d (recursion?)", maxDepth)
	}
	env := newEnv(outer)
	if len(args) != len(m.Params) {
		return fmt.Errorf("scaffold: module %s expects %d args, got %d", m.Name, len(m.Params), len(args))
	}
	for i, p := range m.Params {
		if args[i].isInt {
			env.setInt(p, args[i].n)
		} else {
			env.setQubits(p, args[i].qs)
		}
	}
	return el.runBlock(m.Body, env, depth)
}

func (el *elaborator) runBlock(stmts []Stmt, env *env, depth int) error {
	for _, s := range stmts {
		if err := el.runStmt(s, env, depth); err != nil {
			return err
		}
	}
	return nil
}

func (el *elaborator) runStmt(s Stmt, env *env, depth int) error {
	el.steps++
	if el.steps > maxSteps {
		return fmt.Errorf("scaffold: program executes more than %d statements (runaway loop?)", maxSteps)
	}
	switch st := s.(type) {
	case *DeclStmt:
		size, err := el.evalInt(st.Size, env)
		if err != nil {
			return err
		}
		if size < 0 {
			return fmt.Errorf("scaffold:%d: negative array size %d", st.Line, size)
		}
		if el.circ.NumQubits+size > maxQubits {
			return fmt.Errorf("scaffold:%d: program declares more than %d qubits", st.Line, maxQubits)
		}
		qs := make([]circuit.Qubit, size)
		for i := range qs {
			qs[i] = el.circ.AddQubit(fmt.Sprintf("%s_%d", st.Name, i))
		}
		env.setQubits(st.Name, qs)
	case *ForStmt:
		lo, err := el.evalInt(st.Lo, env)
		if err != nil {
			return err
		}
		hi, err := el.evalInt(st.Hi, env)
		if err != nil {
			return err
		}
		for i := lo; i < hi; i++ {
			// Each iteration is a step in its own right, so a huge
			// trip count over an empty body still hits the budget.
			el.steps++
			if el.steps > maxSteps {
				return fmt.Errorf("scaffold:%d: program executes more than %d statements (runaway loop?)", st.Line, maxSteps)
			}
			inner := newEnv(env)
			inner.setInt(st.Var, i)
			if err := el.runBlock(st.Body, inner, depth); err != nil {
				return err
			}
		}
	case *GateStmt:
		return el.emitGate(st, env)
	case *CallStmt:
		m, ok := el.prog.Modules[st.Name]
		if !ok {
			return fmt.Errorf("scaffold:%d: unknown module %q", st.Line, st.Name)
		}
		args := make([]value, len(st.Args))
		for i, a := range st.Args {
			v, err := el.eval(a, env)
			if err != nil {
				return err
			}
			args[i] = v
		}
		return el.runModule(m, args, env, depth+1)
	}
	return nil
}

func (el *elaborator) emitGate(st *GateStmt, env *env) error {
	qubitArg := func(i int) ([]circuit.Qubit, error) {
		if i >= len(st.Args) {
			return nil, fmt.Errorf("scaffold:%d: %s missing argument %d", st.Line, st.Name, i)
		}
		v, err := el.eval(st.Args[i], env)
		if err != nil {
			return nil, err
		}
		if v.isInt {
			return nil, fmt.Errorf("scaffold:%d: %s argument %d is an int, want qubits", st.Line, st.Name, i)
		}
		return v.qs, nil
	}
	single := func(i int) (circuit.Qubit, error) {
		qs, err := qubitArg(i)
		if err != nil {
			return 0, err
		}
		if len(qs) != 1 {
			return 0, fmt.Errorf("scaffold:%d: %s argument %d must be a single qubit", st.Line, st.Name, i)
		}
		return qs[0], nil
	}

	switch st.Name {
	case "H", "X", "Z", "S", "T", "PrepZ", "MeasX", "MeasZ":
		qs, err := qubitArg(0)
		if err != nil {
			return err
		}
		kind := map[string]circuit.Kind{
			"H": circuit.KindH, "X": circuit.KindX, "Z": circuit.KindZ,
			"S": circuit.KindS, "T": circuit.KindT, "PrepZ": circuit.KindPrepZ,
			"MeasX": circuit.KindMeasX, "MeasZ": circuit.KindMeasZ,
		}[st.Name]
		for _, q := range qs {
			el.circ.Append(circuit.Gate{Kind: kind, Control: circuit.NoQubit, Targets: []circuit.Qubit{q}})
		}
	case "CNOT":
		c, err := single(0)
		if err != nil {
			return err
		}
		t, err := single(1)
		if err != nil {
			return err
		}
		el.circ.CNOT(c, t)
	case "CXX":
		// CXX(ctrl, arr, n): single-control multi-target over the first n
		// entries of arr that are not the control (the Fig. 5 calling
		// convention, where CXX(anc[0], anc, K) targets anc[1..K]).
		c, err := single(0)
		if err != nil {
			return err
		}
		arr, err := qubitArg(1)
		if err != nil {
			return err
		}
		n := len(arr)
		if len(st.Args) >= 3 {
			if n, err = el.evalInt(st.Args[2], env); err != nil {
				return err
			}
		}
		var targets []circuit.Qubit
		for _, q := range arr {
			if q == c {
				continue
			}
			if len(targets) == n {
				break
			}
			targets = append(targets, q)
		}
		if len(targets) < n {
			return fmt.Errorf("scaffold:%d: CXX wants %d targets, array has %d", st.Line, n, len(targets))
		}
		el.circ.CXX(c, targets)
	case "injectT", "injectTdag":
		raw, err := single(0)
		if err != nil {
			return err
		}
		data, err := single(1)
		if err != nil {
			return err
		}
		if st.Name == "injectT" {
			el.circ.InjectT(raw, data)
		} else {
			el.circ.InjectTdag(raw, data)
		}
	case "barrier":
		var all []circuit.Qubit
		for i := range st.Args {
			qs, err := qubitArg(i)
			if err != nil {
				return err
			}
			all = append(all, qs...)
		}
		el.circ.Barrier(all)
	default:
		return fmt.Errorf("scaffold:%d: unsupported gate %q", st.Line, st.Name)
	}
	return nil
}

func (el *elaborator) evalInt(e Expr, env *env) (int, error) {
	v, err := el.eval(e, env)
	if err != nil {
		return 0, err
	}
	if !v.isInt {
		return 0, fmt.Errorf("scaffold: expected integer expression")
	}
	return v.n, nil
}

func (el *elaborator) eval(e Expr, env *env) (value, error) {
	switch ex := e.(type) {
	case *NumExpr:
		return value{isInt: true, n: ex.Value}, nil
	case *VarExpr:
		v, ok := env.lookup(ex.Name)
		if !ok {
			return value{}, fmt.Errorf("scaffold:%d: undefined name %q", ex.Line, ex.Name)
		}
		return v, nil
	case *IndexExpr:
		av, ok := env.lookup(ex.Array)
		if !ok {
			return value{}, fmt.Errorf("scaffold:%d: undefined array %q", ex.Line, ex.Array)
		}
		if av.isInt {
			return value{}, fmt.Errorf("scaffold:%d: %q is not a qbit array", ex.Line, ex.Array)
		}
		idx, err := el.evalInt(ex.Sub, env)
		if err != nil {
			return value{}, err
		}
		if idx < 0 || idx >= len(av.qs) {
			return value{}, fmt.Errorf("scaffold:%d: index %d out of range for %q (len %d)",
				ex.Line, idx, ex.Array, len(av.qs))
		}
		return value{qs: av.qs[idx : idx+1]}, nil
	case *BinExpr:
		l, err := el.evalInt(ex.Left, env)
		if err != nil {
			return value{}, err
		}
		r, err := el.evalInt(ex.Right, env)
		if err != nil {
			return value{}, err
		}
		switch ex.Op {
		case "+":
			return value{isInt: true, n: l + r}, nil
		case "-":
			return value{isInt: true, n: l - r}, nil
		case "*":
			return value{isInt: true, n: l * r}, nil
		case "/":
			if r == 0 {
				return value{}, fmt.Errorf("scaffold: division by zero")
			}
			return value{isInt: true, n: l / r}, nil
		}
	}
	return value{}, fmt.Errorf("scaffold: unsupported expression")
}
