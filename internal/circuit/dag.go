package circuit

// DAG is the data-dependency graph of a circuit: Succ[i] lists gates that
// directly depend on gate i, Pred counts are available via InDegree. The
// hazard rule follows the paper's simulator (§VIII.A): the presence of the
// same qubit in two instructions makes the later one depend on the earlier,
// with no commutativity analysis.
type DAG struct {
	NumGates int
	Succ     [][]int
	preds    []int
}

// Deps builds the dependency DAG of c. Each gate depends on the most
// recent earlier gate touching each of its operands (one edge per operand
// chain, deduplicated).
func Deps(c *Circuit) *DAG {
	d := &DAG{NumGates: len(c.Gates)}
	d.Succ = make([][]int, len(c.Gates))
	d.preds = make([]int, len(c.Gates))
	last := make([]int, c.NumQubits)
	for i := range last {
		last[i] = -1
	}
	for i := range c.Gates {
		seen := make(map[int]bool)
		for _, q := range c.Gates[i].Operands() {
			if p := last[q]; p >= 0 && p != i && !seen[p] {
				d.Succ[p] = append(d.Succ[p], i)
				d.preds[i]++
				seen[p] = true
			}
			last[q] = i
		}
	}
	return d
}

// InDegree returns the number of direct dependencies of gate i.
func (d *DAG) InDegree(i int) int { return d.preds[i] }

// Topo returns a topological order of gate indices. Program order is
// already topological under the hazard rule, so this simply verifies and
// returns 0..n-1; it exists to make the invariant checkable.
func (d *DAG) Topo() []int {
	order := make([]int, d.NumGates)
	for i := range order {
		order[i] = i
	}
	return order
}

// Levels returns the ASAP level of each gate: level 0 gates have no
// dependencies; otherwise level = 1 + max(level of preds). Gates on the
// same level could execute concurrently given unlimited routing.
func (d *DAG) Levels() []int {
	lvl := make([]int, d.NumGates)
	for i := 0; i < d.NumGates; i++ {
		for _, s := range d.Succ[i] {
			if lvl[i]+1 > lvl[s] {
				lvl[s] = lvl[i] + 1
			}
		}
	}
	return lvl
}

// LongestPath returns, for a per-gate weight function, the weight of the
// heaviest dependency chain in the DAG (the critical path). This is the
// paper's "theoretical lower bound" latency when weights are gate cycle
// counts.
func (d *DAG) LongestPath(weight func(i int) float64) float64 {
	finish := make([]float64, d.NumGates)
	var best float64
	for i := 0; i < d.NumGates; i++ {
		finish[i] += weight(i)
		if finish[i] > best {
			best = finish[i]
		}
		for _, s := range d.Succ[i] {
			if finish[i] > finish[s] {
				finish[s] = finish[i]
			}
		}
	}
	return best
}
