package resource

import (
	"testing"

	"magicstate/internal/bravyi"
	"magicstate/internal/circuit"
)

func TestGateCycles(t *testing.T) {
	cm := DefaultCost()
	cases := []struct {
		g    circuit.Gate
		want int
	}{
		{circuit.Gate{Kind: circuit.KindH, Targets: []circuit.Qubit{0}}, cm.H},
		{circuit.Gate{Kind: circuit.KindCNOT, Control: 0, Targets: []circuit.Qubit{1}}, cm.CNOT},
		{circuit.Gate{Kind: circuit.KindInjectT, Control: 0, Targets: []circuit.Qubit{1}}, cm.Inject},
		{circuit.Gate{Kind: circuit.KindS, Targets: []circuit.Qubit{0}}, 2 * cm.Inject},
		{circuit.Gate{Kind: circuit.KindBarrier}, 0},
		{circuit.Gate{Kind: circuit.KindMove, Control: 0, Dest: 1}, cm.Move},
		{circuit.Gate{Kind: circuit.KindMeasX, Targets: []circuit.Qubit{0}}, cm.Meas},
	}
	for _, c := range cases {
		if got := cm.GateCycles(&c.g); got != c.want {
			t.Errorf("%v cycles = %d, want %d", c.g.Kind, got, c.want)
		}
	}
}

func TestCriticalPathSimpleChain(t *testing.T) {
	cm := DefaultCost()
	c := circuit.New(2)
	c.H(0)
	c.CNOT(0, 1)
	c.MeasX(1)
	want := cm.H + cm.CNOT + cm.Meas
	if got := cm.CriticalPath(c); got != want {
		t.Errorf("critical path = %d, want %d", got, want)
	}
}

func TestCriticalPathSingleLevelCalibration(t *testing.T) {
	// Table I reports critical volumes 6.28e3 (K=2) and 1.12e5 (K=24).
	// With area = 5k+13 the implied critical latencies are ~273 and ~842
	// cycles. Check our calibration lands within a factor of ~1.5.
	cm := DefaultCost()
	for _, tc := range []struct {
		k              int
		wantLo, wantHi int
	}{
		{2, 180, 410},
		{24, 560, 1300},
	} {
		f, err := bravyi.Build(bravyi.Params{K: tc.k, Levels: 1})
		if err != nil {
			t.Fatal(err)
		}
		got := cm.CriticalPath(f.Circuit)
		if got < tc.wantLo || got > tc.wantHi {
			t.Errorf("k=%d critical path = %d, want in [%d,%d]", tc.k, got, tc.wantLo, tc.wantHi)
		}
	}
}

func TestCriticalPathGrowsWithLevels(t *testing.T) {
	cm := DefaultCost()
	f1, _ := bravyi.Build(bravyi.Params{K: 2, Levels: 1})
	f2, _ := bravyi.Build(bravyi.Params{K: 2, Levels: 2, Barriers: true})
	c1 := cm.CriticalPath(f1.Circuit)
	c2 := cm.CriticalPath(f2.Circuit)
	if float64(c2) < 1.8*float64(c1) {
		t.Errorf("two-level critical path %d should be ~2x single level %d", c2, c1)
	}
}

func TestLogicalErrorDecreasesWithDistance(t *testing.T) {
	em := DefaultError()
	prev := 1.0
	for d := 3; d <= 25; d += 2 {
		pl := em.LogicalError(d)
		if pl >= prev {
			t.Fatalf("logical error not monotone at d=%d: %v >= %v", d, pl, prev)
		}
		prev = pl
	}
	if em.LogicalError(0) != 1 {
		t.Error("d<1 should return 1")
	}
}

func TestMinDistanceFor(t *testing.T) {
	em := DefaultError()
	d := em.MinDistanceFor(1e-10)
	if d%2 == 0 || d < 3 {
		t.Errorf("distance %d should be odd and >= 3", d)
	}
	if em.LogicalError(d) > 1e-10 {
		t.Errorf("d=%d does not meet target", d)
	}
	if d > 3 && em.LogicalError(d-2) <= 1e-10 {
		t.Errorf("d=%d is not minimal", d)
	}
	if em.MinDistanceFor(0) != 99 {
		t.Error("unreachable target should cap at 99")
	}
}

func TestRoundErrorsSquareEachRound(t *testing.T) {
	em := DefaultError()
	p := bravyi.Params{K: 2, Levels: 2}
	errs := em.RoundErrors(p)
	if len(errs) != 3 {
		t.Fatalf("want 3 entries, got %d", len(errs))
	}
	if errs[0] != em.InjectError {
		t.Error("round 1 input should be InjectError")
	}
	want1 := 7 * errs[0] * errs[0] // (1+3k), k=2
	if errs[1] != want1 {
		t.Errorf("after round 1: %v, want %v", errs[1], want1)
	}
	if errs[2] >= errs[1] {
		t.Error("error must shrink each round")
	}
}

func TestBalancedDistancesIncrease(t *testing.T) {
	em := DefaultError()
	p := bravyi.Params{K: 4, Levels: 2}
	ds := em.BalancedDistances(p)
	if len(ds) != 2 {
		t.Fatalf("want 2 distances")
	}
	if ds[1] <= ds[0] {
		t.Errorf("later rounds need larger distance: %v", ds)
	}
}

func TestPhysicalQubitsPerRound(t *testing.T) {
	em := DefaultError()
	p := bravyi.Params{K: 2, Levels: 2}
	qs := em.PhysicalQubitsPerRound(p)
	ds := em.BalancedDistances(p)
	want0 := 14 * 23 * ds[0] * ds[0]
	if qs[0] != want0 {
		t.Errorf("round 1 physical qubits = %d, want %d", qs[0], want0)
	}
	// Early rounds dominate physical area because module count shrinks
	// geometrically faster than d^2 grows at these parameters.
	if qs[1] >= qs[0] {
		t.Logf("note: round 2 (%d) >= round 1 (%d) physical qubits", qs[1], qs[0])
	}
}

func TestVolume(t *testing.T) {
	v := Volume{Area: 100, Latency: 50}
	if v.SpaceTime() != 5000 {
		t.Error("space-time broken")
	}
	p := bravyi.Params{K: 2, Levels: 2}
	if v.PerState(p) != 1250 {
		t.Errorf("per-state = %v, want 1250", v.PerState(p))
	}
}

func TestExpectedRunsPerSuccess(t *testing.T) {
	em := DefaultError()
	p := bravyi.Params{K: 2, Levels: 1}
	runs := ExpectedRunsPerSuccess(p, em)
	if runs <= 1 {
		t.Errorf("expected runs must exceed 1, got %v", runs)
	}
	// With k=2 and eps=5e-3 per-module success is 1-14*5e-3 = 0.93.
	if runs < 1.0/0.94 || runs > 1.0/0.92 {
		t.Errorf("runs = %v, want ~1/0.93", runs)
	}
}
