package mesh

import (
	"fmt"
	"math/rand"
	"testing"

	"magicstate/internal/bravyi"
	"magicstate/internal/layout"
)

// fingerprint renders every externally visible field of a Result so two
// runs can be compared byte-for-byte.
func fingerprint(r *Result) string {
	return fmt.Sprintf("lat=%d stalls=%d area=%d start=%v end=%v paths=%v holdend=%v",
		r.Latency, r.Stalls, r.Area, r.Start, r.End, r.Paths, r.HoldEnd)
}

// TestSimulatorReuseMatchesFresh is the arena-reuse property test: one
// Simulator run many times — across routing modes, interaction styles,
// and interleaved circuits/placements of different sizes (forcing arena
// regrowth and lattice/DAG cache evictions) — must produce results
// byte-identical to a fresh Simulator per call, and every recorded run
// must still satisfy the no-overlap braid invariant.
func TestSimulatorReuseMatchesFresh(t *testing.T) {
	small, err := bravyi.Build(bravyi.Params{K: 2, Levels: 1})
	if err != nil {
		t.Fatal(err)
	}
	big, err := bravyi.Build(bravyi.Params{K: 2, Levels: 2, Barriers: true, Reuse: true})
	if err != nil {
		t.Fatal(err)
	}
	type workload struct {
		name string
		f    *bravyi.Factory
		pl   *layout.Placement
	}
	workloads := []workload{
		{"small-linear", small, layout.Linear(small)},
		{"big-linear", big, layout.Linear(big)},
		{"small-random", small, layout.Random(small.Circuit.NumQubits, rand.New(rand.NewSource(11)))},
	}
	reused := NewSimulator()
	for _, mode := range []RouteMode{RouteXY, RouteBox, RouteAdaptive} {
		for _, style := range Styles() {
			cfg := Config{Mode: mode, Style: style, Distance: 9, RecordPaths: true}
			for rep := 0; rep < 2; rep++ {
				for _, wl := range workloads {
					label := fmt.Sprintf("%s/%s/%s/rep%d", mode.name(), style, wl.name, rep)
					fresh, err := NewSimulator().Simulate(wl.f.Circuit, wl.pl, cfg)
					if err != nil {
						t.Fatalf("%s: fresh: %v", label, err)
					}
					pooled, err := reused.Simulate(wl.f.Circuit, wl.pl, cfg)
					if err != nil {
						t.Fatalf("%s: reused: %v", label, err)
					}
					if got, want := fingerprint(pooled), fingerprint(fresh); got != want {
						t.Fatalf("%s: reused simulator diverged from fresh\nreused: %s\nfresh:  %s", label, got, want)
					}
					if err := pooled.CheckNoOverlaps(); err != nil {
						t.Fatalf("%s: %v", label, err)
					}
				}
			}
		}
	}
}

func (m RouteMode) name() string {
	switch m {
	case RouteXY:
		return "xy"
	case RouteBox:
		return "box"
	case RouteAdaptive:
		return "adaptive"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// TestPooledSimulateMatchesOwnedSimulator pins the compatibility wrapper:
// mesh.Simulate (pool-backed) must agree with a caller-owned Simulator.
func TestPooledSimulateMatchesOwnedSimulator(t *testing.T) {
	f, err := bravyi.Build(bravyi.Params{K: 4, Levels: 1})
	if err != nil {
		t.Fatal(err)
	}
	pl := layout.Linear(f)
	cfg := Config{RecordPaths: true}
	owned := NewSimulator()
	for rep := 0; rep < 3; rep++ {
		a, err := Simulate(f.Circuit, pl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := owned.Simulate(f.Circuit, pl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if fingerprint(a) != fingerprint(b) {
			t.Fatalf("rep %d: pooled Simulate diverged from owned Simulator\npooled: %s\nowned:  %s",
				rep, fingerprint(a), fingerprint(b))
		}
	}
}

// TestRouteMarginSentinel pins the RouteMargin zero-value contract: 0
// keeps meaning the historical default of 2, and ZeroRouteMargin (or any
// negative value) now expresses the previously unexpressible true
// zero-margin box.
func TestRouteMarginSentinel(t *testing.T) {
	cases := []struct {
		in, want int
	}{
		{0, 2},               // zero value -> historical default
		{ZeroRouteMargin, 0}, // sentinel -> true zero margin
		{-3, 0},              // any negative -> true zero margin
		{1, 1},               // explicit positive passes through
		{5, 5},
	}
	for _, c := range cases {
		cfg := Config{RouteMargin: c.in}
		cfg.fill()
		if cfg.RouteMargin != c.want {
			t.Errorf("RouteMargin %d filled to %d, want %d", c.in, cfg.RouteMargin, c.want)
		}
	}
}

// TestZeroRouteMarginRuns exercises RouteBox with a genuine zero-margin
// box end to end: the run must complete, obey the no-overlap invariant,
// and (being strictly more constrained) never stall less than the
// default-margin run.
func TestZeroRouteMarginRuns(t *testing.T) {
	f, err := bravyi.Build(bravyi.Params{K: 4, Levels: 1})
	if err != nil {
		t.Fatal(err)
	}
	pl := layout.Linear(f)
	tight, err := Simulate(f.Circuit, pl, Config{Mode: RouteBox, RouteMargin: ZeroRouteMargin, RecordPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := tight.CheckNoOverlaps(); err != nil {
		t.Fatal(err)
	}
	roomy, err := Simulate(f.Circuit, pl, Config{Mode: RouteBox})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Latency < roomy.Latency {
		t.Errorf("zero-margin latency %d below default-margin latency %d; tighter boxes cannot help",
			tight.Latency, roomy.Latency)
	}
}
