package mesh

import (
	"fmt"
	"strings"

	"magicstate/internal/layout"
)

// CongestionMap accumulates, per lattice cell, the total cycles braids
// held that cell during a recorded run (Config.RecordPaths must have been
// set). The result indexes cells as the lattice does; use the returned
// lattice for coordinates. Hold windows (HoldEnd) are used when present,
// so teleportation-style short claims weigh their true occupancy.
func CongestionMap(res *Result, p *layout.Placement) ([]int, *Lattice, error) {
	if res.Paths == nil {
		return nil, nil, fmt.Errorf("mesh: run did not record paths")
	}
	lat := NewLattice(p.W, p.H)
	heat := make([]int, lat.Cells())
	for gi, path := range res.Paths {
		if len(path) == 0 || res.Start[gi] < 0 {
			continue
		}
		end := res.End[gi]
		if res.HoldEnd != nil && res.HoldEnd[gi] > 0 {
			end = res.HoldEnd[gi]
		}
		held := end - res.Start[gi]
		for _, ci := range path {
			if ci >= 0 && ci < len(heat) {
				heat[ci] += held
			}
		}
	}
	return heat, lat, nil
}

// RenderCongestion draws the congestion map as ASCII art over the
// lattice: tiles render as '#', idle channels as '.', and busy channels
// as a log-ish heat scale '1'-'9'. Rows are emitted top to bottom,
// clipped to maxW x maxH cells.
func RenderCongestion(heat []int, lat *Lattice, maxW, maxH int) string {
	if maxW <= 0 {
		maxW = 160
	}
	if maxH <= 0 {
		maxH = 80
	}
	max := 0
	for _, h := range heat {
		if h > max {
			max = h
		}
	}
	w, h := lat.CW, lat.CH
	clipped := false
	if w > maxW {
		w, clipped = maxW, true
	}
	if h > maxH {
		h, clipped = maxH, true
	}
	var b strings.Builder
	for cy := 0; cy < h; cy++ {
		for cx := 0; cx < w; cx++ {
			ci := lat.CellIndex(cx, cy)
			switch {
			case lat.IsTile(ci):
				b.WriteByte('#')
			case heat[ci] == 0:
				b.WriteByte('.')
			default:
				// Linear 1..9 bucket over the observed maximum.
				bucket := 1 + heat[ci]*9/(max+1)
				if bucket > 9 {
					bucket = 9
				}
				b.WriteByte(byte('0' + bucket))
			}
		}
		b.WriteByte('\n')
	}
	if clipped {
		fmt.Fprintf(&b, "(clipped to %dx%d of %dx%d)\n", w, h, lat.CW, lat.CH)
	}
	return b.String()
}

// HottestCells returns the n busiest channel cells with their held-cycle
// counts, descending — the congestion hotspots the mapping optimizations
// exist to disperse.
func HottestCells(heat []int, lat *Lattice, n int) []struct{ Cell, Cycles int } {
	type hc struct{ Cell, Cycles int }
	var all []hc
	for ci, v := range heat {
		if v > 0 && !lat.IsTile(ci) {
			all = append(all, hc{Cell: ci, Cycles: v})
		}
	}
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && (all[j].Cycles > all[j-1].Cycles ||
			(all[j].Cycles == all[j-1].Cycles && all[j].Cell < all[j-1].Cell)); j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	if n > len(all) {
		n = len(all)
	}
	out := make([]struct{ Cell, Cycles int }, n)
	for i := 0; i < n; i++ {
		out[i] = struct{ Cell, Cycles int }(all[i])
	}
	return out
}
