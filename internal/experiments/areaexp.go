package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"magicstate/internal/bravyi"
	"magicstate/internal/graph"
	"magicstate/internal/mesh"
	"magicstate/internal/partition"
)

// AreaExpRow is one grid-expansion factor of the §IX area-expansion
// study: the same factory embedded by recursive graph partitioning into a
// grid inflated by the factor, trading tiles for routing slack.
type AreaExpRow struct {
	Factor   float64
	W, H     int
	Latency  int
	Stalls   int
	HullArea int
	// Volume is occupied-tile area × latency (the paper's metric: extra
	// empty tiles do not count as consumed qubits)…
	Volume float64
	// HullVolume charges the whole inflated hull, the honest cost when
	// the region is dedicated to the factory.
	HullVolume float64
}

// AreaExpansion sweeps grid inflation factors for a level-`level` factory
// under the GP embedding. The paper's future-work hypothesis (§IX) is
// that extra area reduces latency enough to pay for itself in some range;
// the HullVolume column shows where that stops being true.
func AreaExpansion(k, level int, factors []float64, seed int64) ([]AreaExpRow, error) {
	params := bravyi.Params{K: k, Levels: level, Reuse: level >= 2, Barriers: true}
	f, err := bravyi.Build(params)
	if err != nil {
		return nil, fmt.Errorf("areaexp: %w", err)
	}
	g := graph.FromCircuit(f.Circuit)
	n := f.Circuit.NumQubits
	base := int(math.Ceil(math.Sqrt(float64(n))))
	var rows []AreaExpRow
	for _, factor := range factors {
		if factor < 1 {
			return nil, fmt.Errorf("areaexp: factor %g below 1", factor)
		}
		side := int(math.Ceil(float64(base) * math.Sqrt(factor)))
		pl := partition.Embed(g, side, side, rand.New(rand.NewSource(seed)))
		res, err := mesh.Simulate(f.Circuit, pl, mesh.Config{})
		if err != nil {
			return nil, fmt.Errorf("areaexp factor %g: %w", factor, err)
		}
		rows = append(rows, AreaExpRow{
			Factor:     factor,
			W:          side,
			H:          side,
			Latency:    res.Latency,
			Stalls:     res.Stalls,
			HullArea:   pl.HullArea(),
			Volume:     res.Volume().SpaceTime(),
			HullVolume: float64(pl.HullArea()) * float64(res.Latency),
		})
	}
	return rows, nil
}

// WriteAreaExpansion renders the expansion sweep.
func WriteAreaExpansion(w io.Writer, k, level int, rows []AreaExpRow) {
	fmt.Fprintf(w, "Area expansion (§IX) — K=%d level-%d factory, GP embedding on inflated grids\n", k, level)
	tw := newTab(w)
	fmt.Fprintln(tw, "factor\tgrid\tlatency\tstalls\thull area\tvolume\thull volume")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.2f\t%dx%d\t%d\t%d\t%d\t%.3g\t%.3g\n",
			r.Factor, r.W, r.H, r.Latency, r.Stalls, r.HullArea, r.Volume, r.HullVolume)
	}
	tw.Flush()
}
