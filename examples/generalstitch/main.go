// Stitching generalization (§IX): apply windowed subdivision stitching to
// circuits that are not distillation factories — a phase-shuffled
// hierarchical workload, a ripple-carry adder, and a QFT-like all-pairs
// network — and compare against a single global graph-partitioning
// embedding of each.
package main

import (
	"fmt"
	"log"
	"os"

	"magicstate/internal/circuits"
	"magicstate/internal/experiments"
	"magicstate/internal/mesh"
	"magicstate/internal/subdiv"
)

func main() {
	rows, err := experiments.StitchGeneralization(1)
	if err != nil {
		log.Fatal(err)
	}
	experiments.WriteStitchGen(os.Stdout, rows)

	// Drill into one workload: show how the move budget trades
	// relocation braids against window locality.
	fmt.Println("\nmove-budget sweep on the phase-shuffled workload:")
	c, err := circuits.HierarchicalRandom(circuits.HierarchicalOptions{
		Blocks: 6, QubitsPerBlock: 10, Phases: 5,
		IntraCNOTs: 40, BridgeCNOTs: 6, Barriers: true, Shuffle: true, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	global, err := mesh.Simulate(c, subdiv.GlobalEmbed(c, 1), mesh.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  global embedding: %d cycles\n", global.Latency)
	for _, budget := range []int{2, 5, 10, 20} {
		st, err := subdiv.Stitch(c, subdiv.Options{Seed: 1, MoveBudget: budget})
		if err != nil {
			log.Fatal(err)
		}
		sim, err := mesh.Simulate(st.Circuit, st.Placement, mesh.Config{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  budget %2d: %d cycles with %d moves (%.2fx)\n",
			budget, sim.Latency, st.Moves, float64(global.Latency)/float64(sim.Latency))
	}
}
