// Protocol zoo (§III related work): provision every distillation protocol
// family — the original 15→1, Bravyi-Haah block codes at several sizes,
// and the asymptotic Haah-Hastings model — for a common target fidelity
// and compare raw-state cost, footprint and space-time proxies.
package main

import (
	"fmt"
	"log"
	"os"

	"magicstate/internal/experiments"
	"magicstate/internal/protocols"
)

func main() {
	const eps = 1e-3
	for _, target := range []float64{1e-8, 1e-12, 1e-16} {
		rows := experiments.ProtocolComparison(eps, target)
		experiments.WriteProtocols(os.Stdout, eps, target, rows)
		fmt.Println()
	}

	// Show the multilevel planner directly on one family.
	base, err := protocols.NewBravyiHaah(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Bravyi-Haah 14-to-2 provisioning by target fidelity:")
	for _, target := range []float64{1e-6, 1e-9, 1e-12, 1e-15} {
		plan, err := protocols.Provision(base, eps, target, 8)
		if err != nil {
			fmt.Printf("  %.0e: %v\n", target, err)
			continue
		}
		fmt.Printf("  %.0e: %d levels, %.0f raw per state ideal, %.0f expected, P(success)=%.3f\n",
			target, plan.Levels, plan.RawPerOutput, plan.ExpectedRawPerOutput, plan.SuccessProbability)
	}
}
