package fabric

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// PeerFaultPlan schedules deliberate failures into a node's peer-facing
// endpoints (record serving and forwarded evaluation), extending the
// store's -fault-store idea to the network layer so partition,
// slow-peer and corrupt-record paths are exercised on purpose. Requests
// are counted 1-based in arrival order across all peer endpoints, which
// makes a plan deterministic for a serial requester: "every 5th peer
// request is dropped" names specific requests. The zero value injects
// nothing.
//
// Unlike the store plan's one-shot failwrite=N, every peer fault key is
// periodic ("every Nth request"), because the interesting peer
// pathologies — a partitioned, slow, or bit-rotting node — persist
// rather than happen once. N=1 makes the fault total: corrupt=1 is a
// node whose every served record is bad, drop=1 is a full partition.
type PeerFaultPlan struct {
	// DropEvery makes every Nth peer request drop its connection without
	// a response — the partition shape (0 = never).
	DropEvery int64
	// StallEvery makes every Nth peer request sleep Stall before being
	// served — the slow-peer shape (0 = never).
	StallEvery int64
	// Stall is the per-stall sleep; ignored unless StallEvery > 0.
	Stall time.Duration
	// CorruptEvery makes every Nth record-carrying response flip payload
	// bytes after its digest was computed — the bit-rot shape the
	// receiver's re-hash must catch (0 = never).
	CorruptEvery int64

	ops atomic.Int64
}

// PeerFault is the set of faults one specific request must suffer.
type PeerFault struct {
	// Drop aborts the connection without a response.
	Drop bool
	// Stall sleeps this long before serving (zero = no stall).
	Stall time.Duration
	// Corrupt flips payload bytes while leaving the declared digest
	// intact, so receipt-side verification must reject the record.
	Corrupt bool
}

// Next advances the plan's request clock and reports the faults due for
// this request. A nil plan injects nothing.
func (p *PeerFaultPlan) Next() PeerFault {
	if p == nil {
		return PeerFault{}
	}
	n := p.ops.Add(1)
	var f PeerFault
	if p.DropEvery > 0 && n%p.DropEvery == 0 {
		f.Drop = true
	}
	if p.StallEvery > 0 && n%p.StallEvery == 0 {
		f.Stall = p.Stall
	}
	if p.CorruptEvery > 0 && n%p.CorruptEvery == 0 {
		f.Corrupt = true
	}
	return f
}

// ParsePeerFaultPlan parses the comma-separated grammar the msfud
// -fault-peer flag accepts:
//
//	drop=N         every Nth peer request drops its connection
//	stall=N:DUR    every Nth peer request first sleeps DUR (e.g. 10:50ms)
//	corrupt=N      every Nth record response is served corrupted
//
// An empty spec yields an inject-nothing plan.
func ParsePeerFaultPlan(spec string) (*PeerFaultPlan, error) {
	p := &PeerFaultPlan{}
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("fabric: fault spec %q: want key=value", part)
		}
		switch k {
		case "drop", "corrupt":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("fabric: fault spec %q: want a non-negative request interval", part)
			}
			if k == "drop" {
				p.DropEvery = n
			} else {
				p.CorruptEvery = n
			}
		case "stall":
			nStr, durStr, ok := strings.Cut(v, ":")
			if !ok {
				return nil, fmt.Errorf("fabric: fault spec %q: want stall=N:DURATION", part)
			}
			n, err := strconv.ParseInt(nStr, 10, 64)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("fabric: fault spec %q: want a positive request interval", part)
			}
			d, err := time.ParseDuration(durStr)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("fabric: fault spec %q: bad duration", part)
			}
			p.StallEvery, p.Stall = n, d
		default:
			return nil, fmt.Errorf("fabric: fault spec: unknown key %q (want drop|stall|corrupt)", k)
		}
	}
	return p, nil
}
