package mesh

import (
	"fmt"
	"sort"

	"magicstate/internal/circuit"
	"magicstate/internal/layout"
)

// Simulator is a reusable, allocation-free simulation engine. It owns
// every piece of scratch state a run needs — the lattice, the router's
// reservation table and stamp-indexed BFS scratch, the ready/blocked
// queues, the completion and wake heaps — and recycles them across calls,
// so repeated simulations (a planner's candidate search, the
// force-directed mapper's paired evaluations, sweep-engine grid points)
// cost only the Result they return. The zero value is ready to use;
// mesh.Simulate wraps a shared pool of Simulators for one-shot callers.
//
// A Simulator is NOT safe for concurrent use; give each goroutine its
// own (or go through mesh.Simulate, whose pool does this automatically).
// Reuse never changes results: a reused Simulator produces output
// byte-identical to a fresh one, which TestSimulatorReuseMatchesFresh
// locks in.
//
// Event loop: gates ready to issue sit in a program-order ready queue.
// A gate whose braid fails to route is parked on the wake heap keyed by a
// sound earliest-retry bound (the routers guarantee the route keeps
// failing until then, because reservations only ever extend), and is
// reconsidered only at the first completion event at or past that bound —
// turning the original retry-every-event rescan of every available gate
// into near-O(events log n) work. Routing failures with no usable bound
// (greedy Steiner trees, structurally-blocked BFS) simply stay in the
// ready queue and retry every event, preserving the original semantics.
type Simulator struct {
	lat *Lattice
	rt  *router
	// latDefects is the canonical defect-map string the cached lattice
	// was built with; a config with a different defect set forces a
	// lattice (and router) rebuild even at the same tile dimensions.
	latDefects string

	// Dependency DAG cache: circuits are immutable once built everywhere
	// in this repository, so repeated simulations of the same *Circuit
	// reuse one DAG instead of re-deriving it per call.
	dagFor   *circuit.Circuit
	dagGates int
	dag      *circuit.DAG

	indeg []int
	// ready holds gates eligible to attempt this pass, including gates
	// that failed routing without a wake bound (greedy Steiner trees,
	// structurally-blocked BFS) — those are retried every event, as the
	// pre-arena simulator retried everything. newReady collects gates
	// whose last dependency finished mid-pass.
	ready    []int
	newReady []int
	wake     eventHeap // parked gates keyed by earliest-retry cycle
	comps    eventHeap // running gates keyed by completion cycle

	portBuf [][]int
	tgtBuf  []layout.Point

	// Stamp-indexed placement-validation scratch (replaces the map
	// layout.Placement.Validate builds per call).
	tileStamp []int
	tileWho   []int
	tileEpoch int
}

// NewSimulator returns an empty simulator; arenas are grown on first use
// and retained for subsequent calls.
func NewSimulator() *Simulator { return &Simulator{} }

// event is a (cycle, gate) pair on one of the simulator's heaps.
type event struct {
	t    int
	gate int
}

// eventHeap is a binary min-heap over event.t with concrete-typed push
// and pop (container/heap would box every event through interface{}).
// Tie order among equal cycles is unspecified; the event loop sorts
// woken gates into program order before attempting them and finishes
// same-cycle completions commutatively, so it never matters.
type eventHeap []event

func (h *eventHeap) push(e event) {
	s := append(*h, e)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].t <= s[i].t {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
	*h = s
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	for i := 0; ; {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if rt := l + 1; rt < n && s[rt].t < s[l].t {
			m = rt
		}
		if s[i].t <= s[m].t {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// validatePlacement performs layout.Placement.Validate's checks (same
// error text) against stamp-indexed scratch instead of a per-call map,
// plus the defect check: no qubit may sit on a defective tile.
func (s *Simulator) validatePlacement(p *layout.Placement, dm *layout.DefectMap) error {
	if cap(s.tileStamp) < p.W*p.H {
		s.tileStamp = make([]int, p.W*p.H)
		s.tileWho = make([]int, p.W*p.H)
	}
	s.tileStamp = s.tileStamp[:p.W*p.H]
	s.tileWho = s.tileWho[:p.W*p.H]
	s.tileEpoch++
	for q, pt := range p.Pos {
		if pt == layout.Unplaced {
			return fmt.Errorf("layout: qubit %d unplaced", q)
		}
		if pt.X < 0 || pt.X >= p.W || pt.Y < 0 || pt.Y >= p.H {
			return fmt.Errorf("layout: qubit %d at %v outside %dx%d grid", q, pt, p.W, p.H)
		}
		if dm.Has(pt) {
			return fmt.Errorf("layout: qubit %d placed on defective tile %v", q, pt)
		}
		ti := pt.Y*p.W + pt.X
		if s.tileStamp[ti] == s.tileEpoch {
			return fmt.Errorf("layout: qubits %d and %d share tile %v", s.tileWho[ti], q, pt)
		}
		s.tileStamp[ti] = s.tileEpoch
		s.tileWho[ti] = q
	}
	return nil
}

// prepare sizes the arenas for (c, p) and resets per-run state. The
// circuit is validated once per DAG-cache miss, so a malformed frontend
// circuit surfaces as a structured error here instead of an
// out-of-range panic deep in the event loop.
func (s *Simulator) prepare(c *circuit.Circuit, p *layout.Placement, dm *layout.DefectMap) error {
	defects := dm.String()
	if s.lat == nil || s.lat.TileW != p.W || s.lat.TileH != p.H || s.latDefects != defects {
		s.lat = NewLatticeDefective(p.W, p.H, dm)
		s.rt = newRouter(s.lat)
		s.latDefects = defects
	} else {
		s.rt.reset()
	}
	if s.dagFor != c || s.dagGates != len(c.Gates) {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("mesh: %w", err)
		}
		s.dag = circuit.Deps(c)
		s.dagFor, s.dagGates = c, len(c.Gates)
	}
	n := len(c.Gates)
	if cap(s.indeg) < n {
		s.indeg = make([]int, n)
	}
	s.indeg = s.indeg[:n]
	s.ready = s.ready[:0]
	s.newReady = s.newReady[:0]
	s.wake = s.wake[:0]
	s.comps = s.comps[:0]
	for i := 0; i < n; i++ {
		s.indeg[i] = s.dag.InDegree(i)
		if s.indeg[i] == 0 {
			s.ready = append(s.ready, i)
		}
	}
	return nil
}

// Simulate executes c on the braid mesh defined by p and returns timing.
// Gates issue in dependency order; braids that cannot claim a
// conflict-free channel path stall until running braids release cells.
// The returned Result is freshly allocated and independent of the
// Simulator; everything else is served from the arenas.
func (s *Simulator) Simulate(c *circuit.Circuit, p *layout.Placement, cfg Config) (*Result, error) {
	cfg.fill()
	dm, err := layout.ParseDefects(cfg.Defects)
	if err != nil {
		return nil, fmt.Errorf("mesh: %w", err)
	}
	if len(p.Pos) != c.NumQubits {
		return nil, fmt.Errorf("mesh: placement covers %d qubits, circuit has %d", len(p.Pos), c.NumQubits)
	}
	if err := s.validatePlacement(p, dm); err != nil {
		return nil, fmt.Errorf("mesh: %w", err)
	}
	if err := s.prepare(c, p, dm); err != nil {
		return nil, err
	}
	lat, rt, dag := s.lat, s.rt, s.dag

	n := len(c.Gates)
	se := make([]int, 2*n)
	res := &Result{
		Start: se[:n:n],
		End:   se[n:],
		Area:  p.Area(),
	}
	if cfg.RecordPaths {
		res.Paths = make([][]int, n)
		res.HoldEnd = make([]int, n)
	}
	for i := range res.Start {
		res.Start[i] = -1
		res.End[i] = -1
	}

	completed := 0
	t := 0
	adaptive := cfg.Mode == RouteAdaptive

	// record is the one place gate timing — and therefore Latency, the
	// maximum recorded end — is accounted.
	record := func(gi, start, end int) {
		res.Start[gi], res.End[gi] = start, end
		if end > res.Latency {
			res.Latency = end
		}
	}
	finish := func(gi int) {
		completed++
		for _, su := range dag.Succ[gi] {
			s.indeg[su]--
			if s.indeg[su] == 0 {
				s.newReady = append(s.newReady, su)
			}
		}
	}
	routePair := func(srcQ, dstQ circuit.Qubit) ([]int, int) {
		if cfg.Mode == RouteXY {
			return rt.routeXY(p.At(int(srcQ)), p.At(int(dstQ)), t)
		}
		s.portBuf = append(s.portBuf[:0], lat.PortsOf(p.At(int(srcQ))), lat.PortsOf(p.At(int(dstQ))))
		rt.setBox(s.portBuf, adaptive, cfg.RouteMargin)
		return rt.route(s.portBuf[0], s.portBuf[1], t)
	}

	for completed < n {
		if t > cfg.MaxCycles {
			return nil, fmt.Errorf("mesh: exceeded %d cycles with %d/%d gates done", cfg.MaxCycles, completed, n)
		}
		// Wake parked gates whose retry bound has been reached. Bounds
		// between event times wake at the next completion event, exactly
		// when the original retry-every-event loop would have retried.
		for len(s.wake) > 0 && s.wake[0].t <= t {
			s.ready = append(s.ready, s.wake.pop().gate)
		}
		s.ready = append(s.ready, s.newReady...)
		s.newReady = s.newReady[:0]
		// Attempt to start every attemptable gate; zero-duration gates
		// complete inline and may enable more, so loop until quiescent.
		// The sort keeps program-order arbitration.
		for progress := true; progress && len(s.ready) > 0; {
			progress = false
			sort.Ints(s.ready)
			pending := s.ready
			next := pending[:0]
			for _, gi := range pending {
				g := &c.Gates[gi]
				dur, hold := cfg.styleCycles(g)
				if dur == 0 {
					record(gi, t, t)
					finish(gi)
					progress = true
					continue
				}
				if !g.Kind.IsTwoQubit() {
					record(gi, t, t+dur)
					s.comps.push(event{t + dur, gi})
					progress = true
					continue
				}
				var path []int
				bound := 0
				switch g.Kind {
				case circuit.KindCXX:
					if cfg.Mode == RouteXY {
						s.tgtBuf = s.tgtBuf[:0]
						for _, tq := range g.Targets {
							s.tgtBuf = append(s.tgtBuf, p.At(int(tq)))
						}
						path, bound = rt.routeXYTree(p.At(int(g.Control)), s.tgtBuf, t)
						break
					}
					s.portBuf = append(s.portBuf[:0], lat.PortsOf(p.At(int(g.Control))))
					for _, tq := range g.Targets {
						s.portBuf = append(s.portBuf, lat.PortsOf(p.At(int(tq))))
					}
					rt.setBox(s.portBuf, adaptive, cfg.RouteMargin)
					path = rt.routeTree(s.portBuf, t)
				case circuit.KindMove:
					path, bound = routePair(g.Control, g.Dest)
				default: // CNOT, InjectT, InjectTdag
					if g.Control == circuit.NoQubit {
						// Ambient injection: local operation on the target.
						record(gi, t, t+dur)
						s.comps.push(event{t + dur, gi})
						progress = true
						continue
					}
					path, bound = routePair(g.Control, g.Targets[0])
				}
				if path == nil {
					res.Stalls++
					if bound > t {
						s.wake.push(event{bound, gi})
					} else {
						next = append(next, gi)
					}
					continue
				}
				rt.reserve(path, t+hold)
				if cfg.RecordPaths {
					res.Paths[gi] = append([]int(nil), path...)
					res.HoldEnd[gi] = t + hold
				}
				record(gi, t, t+dur)
				s.comps.push(event{t + dur, gi})
				progress = true
			}
			s.ready = append(next, s.newReady...)
			s.newReady = s.newReady[:0]
		}
		if completed >= n {
			break
		}
		if len(s.comps) == 0 {
			stuck := len(s.ready) + len(s.wake)
			return nil, fmt.Errorf("mesh: deadlock at cycle %d: %d gates stuck, none running", t, stuck)
		}
		// Advance to the next completion and drain all completions there.
		t = s.comps[0].t
		for len(s.comps) > 0 && s.comps[0].t == t {
			finish(s.comps.pop().gate)
		}
	}
	return res, nil
}
