package fabric

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"magicstate/internal/store"
)

// RecordEnvelope is the wire form of one store record crossing the
// fabric, on both the read-through fetch path (GET /v1/record/{key})
// and the replication path (PUT /v1/record/{key}). The payload travels
// with its own SHA-256; the receiver re-hashes what actually arrived
// and rejects any mismatch, so a record damaged on a peer's disk, in
// its page cache, or on the wire is treated exactly like a missing one
// — the fabric can lose records, never corrupt them.
type RecordEnvelope struct {
	// Key is the record's canonical config key, lowercase hex. The
	// receiver checks it against the key it asked for (or the path it
	// was PUT to), so a confused peer cannot file a record under the
	// wrong point.
	Key string `json:"key"`
	// Payload is the raw record bytes (base64 in JSON transit).
	Payload []byte `json:"payload"`
	// SHA256 is the payload's digest, lowercase hex, computed by the
	// sender before the bytes left its store.
	SHA256 string `json:"sha256"`
}

// NewEnvelope wraps a record payload for the wire, stamping its digest.
func NewEnvelope(k store.Key, payload []byte) RecordEnvelope {
	sum := sha256.Sum256(payload)
	return RecordEnvelope{Key: k.String(), Payload: payload, SHA256: hex.EncodeToString(sum[:])}
}

// Verify byte-verifies the envelope against the key the caller asked
// for: the declared key must match, and the payload must re-hash to the
// declared digest. It returns the verified payload, or an error that
// callers treat as "the peer does not (usably) have this record".
func (e RecordEnvelope) Verify(want store.Key) ([]byte, error) {
	if e.Key != want.String() {
		return nil, fmt.Errorf("fabric: envelope names key %s, want %s", e.Key, want)
	}
	sum := sha256.Sum256(e.Payload)
	if hex.EncodeToString(sum[:]) != e.SHA256 {
		return nil, fmt.Errorf("fabric: payload digest mismatch for %s (corrupt record rejected)", e.Key)
	}
	return e.Payload, nil
}

// EvalRequest is the body of POST /v1/fabric/eval: a full pipeline
// configuration forwarded to its owning node for evaluation. Key is the
// sender's canonical key for the config; the receiver re-derives the
// key from the config and refuses on mismatch, which catches canonical-
// encoding drift between nodes (version skew) before it can file a
// result under the wrong address.
type EvalRequest struct {
	// Key is the sender's canonical key for Config, lowercase hex.
	Key string `json:"key"`
	// Config is the core.Config JSON encoding.
	Config json.RawMessage `json:"config"`
}
