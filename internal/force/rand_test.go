package force

import "math/rand"

// randWrap gives tests a *rand.Rand without importing math/rand at every
// call site.
type randWrap = rand.Rand

func newRandWrap(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
