package fabric

import (
	"sync"
	"sync/atomic"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

// The three breaker states: Closed passes traffic, Open skips the peer,
// HalfOpen lets exactly one probe through to decide between the two.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String renders the state for stats and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker is a per-peer circuit breaker. Consecutive failures open it;
// an open breaker answers Allow()=false (callers skip the peer and fall
// back to local compute immediately instead of waiting out timeouts);
// after Cooldown one caller is admitted as a half-open probe, and that
// probe's outcome closes or re-opens the circuit. Safe for concurrent
// use.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time

	// Transition counters, exported to the metrics registry: how many
	// times the breaker opened, re-closed, and admitted a half-open
	// probe.
	opened    atomic.Int64
	closed    atomic.Int64
	halfOpens atomic.Int64
}

// NewBreaker builds a breaker that opens after threshold consecutive
// failures (min 1) and admits a probe after cooldown. A nil now uses
// time.Now; tests inject a fake clock to make transitions deterministic.
func NewBreaker(threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// Allow reports whether a call to the peer may proceed. In the open
// state it admits a single caller once the cooldown has elapsed,
// transitioning to half-open; every other caller is refused until that
// probe resolves via Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = BreakerHalfOpen
			b.halfOpens.Add(1)
			return true
		}
		return false
	default: // half-open: a probe is already in flight
		return false
	}
}

// Success records a successful call: the failure streak resets and an
// open or half-open breaker closes.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	if b.state != BreakerClosed {
		b.state = BreakerClosed
		b.closed.Add(1)
	}
}

// Failure records a failed call: a half-open probe re-opens the breaker
// immediately, and a closed breaker opens once the consecutive-failure
// streak reaches the threshold.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	switch b.state {
	case BreakerHalfOpen:
		b.trip()
	case BreakerClosed:
		if b.failures >= b.threshold {
			b.trip()
		}
	case BreakerOpen:
		// Already open (a straggler finished after the trip): the
		// cooldown window restarts from the most recent failure.
		b.openedAt = b.now()
	}
}

// trip moves to the open state. Callers hold b.mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.opened.Add(1)
}

// State reports the current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
