package assign

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHungarianSimple(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	match, total, err := Hungarian(cost)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: row0->col1 (1), row1->col0 (2), row2->col2 (2) = 5.
	if total != 5 {
		t.Errorf("total = %v, want 5 (match %v)", total, match)
	}
	checkPermutation(t, match)
}

func TestHungarianIdentity(t *testing.T) {
	// Diagonal zeros: optimal cost 0 matching rows to their own column.
	n := 6
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			if i != j {
				cost[i][j] = 10 + float64(i+j)
			}
		}
	}
	match, total, err := Hungarian(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 0 {
		t.Errorf("total = %v, want 0", total)
	}
	for i, j := range match {
		if i != j {
			t.Errorf("match[%d] = %d, want identity", i, j)
		}
	}
}

func TestHungarianShapeErrors(t *testing.T) {
	if _, _, err := Hungarian(nil); err != ErrShape {
		t.Error("nil matrix should return ErrShape")
	}
	if _, _, err := Hungarian([][]float64{{1, 2}}); err != ErrShape {
		t.Error("ragged matrix should return ErrShape")
	}
	if _, _, err := Greedy(nil); err != ErrShape {
		t.Error("Greedy nil matrix should return ErrShape")
	}
	if _, _, err := Greedy([][]float64{{1, 2}}); err != ErrShape {
		t.Error("Greedy ragged matrix should return ErrShape")
	}
}

func TestHungarianSingleCell(t *testing.T) {
	match, total, err := Hungarian([][]float64{{7}})
	if err != nil || total != 7 || match[0] != 0 {
		t.Errorf("1x1: match=%v total=%v err=%v", match, total, err)
	}
}

func checkPermutation(t *testing.T, match []int) {
	t.Helper()
	seen := make(map[int]bool)
	for _, j := range match {
		if j < 0 || j >= len(match) || seen[j] {
			t.Fatalf("match %v is not a permutation", match)
		}
		seen[j] = true
	}
}

func bruteForce(cost [][]float64) float64 {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := 1e18
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			var s float64
			for i, j := range perm {
				s += cost[i][j]
			}
			if s < best {
				best = s
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}

func TestHungarianMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5) // up to 6x6, brute force is 720 perms
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = float64(rng.Intn(100))
			}
		}
		_, total, err := Hungarian(cost)
		if err != nil {
			return false
		}
		return total == bruteForce(cost)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestHungarianBeatsOrEqualsGreedy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = rng.Float64() * 100
			}
		}
		_, hTotal, err1 := Hungarian(cost)
		gm, gTotal, err2 := Greedy(cost)
		if err1 != nil || err2 != nil {
			return false
		}
		seen := make(map[int]bool)
		for _, j := range gm {
			if seen[j] {
				return false
			}
			seen[j] = true
		}
		return hTotal <= gTotal+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
