// Package plan is the end-to-end provisioning planner: given an
// application's T-gate count and target logical error budget (the §II.D
// sizing exercise — e.g. the Fe2S2 ground-state estimate with ~10^12 T
// gates), it selects a Bravyi-Haah block size and recursion depth from the
// protocol zoo, prices the mapped factory with the resource model, derates
// throughput by the Monte-Carlo-validated batch success probability, and
// sizes the factory farm and prepared-state buffer of §IX. It turns the
// repository's substrates into the provisioning answer a machine architect
// actually needs: how many factories, how many physical qubits, how long.
package plan

import (
	"context"
	"fmt"

	"magicstate/internal/bravyi"
	"magicstate/internal/resource"
	"magicstate/internal/sweep"
	"magicstate/internal/system"
)

// Requirements describes the application and machine.
type Requirements struct {
	// TCount is the total number of T gates the application executes.
	TCount float64
	// ErrorBudget is the acceptable probability that any magic state
	// faults over the whole run; per-state target error is
	// ErrorBudget / TCount.
	ErrorBudget float64
	// DemandRate is the T gates consumed per surface-code cycle (from
	// the application's parallelism; e.g. 1/50 means one T per 50
	// cycles).
	DemandRate float64
	// Errors is the physical error model (zero value = defaults).
	Errors resource.ErrorModel
	// CandidateKs are the Bravyi-Haah block sizes to consider (nil means
	// {1, 2, 4, 6, 8}).
	CandidateKs []int
	// MaxLevels caps the recursion depth (zero means 4).
	MaxLevels int
	// Headroom is the production margin over demand (zero means 1.2).
	Headroom float64
	// MaxModules prunes impractically wide factories before they are
	// generated (zero means 4000 modules; a K=8 four-level factory would
	// otherwise instantiate 32768 round-1 modules just to be rejected on
	// cost).
	MaxModules int
	// Workers bounds the candidate search's parallelism: each candidate
	// block size K is priced on its own sweep-engine worker (zero means
	// one worker per CPU; 1 reproduces the serial scan exactly).
	Workers int
}

func (r *Requirements) fill() error {
	if r.TCount < 1 {
		return fmt.Errorf("plan: TCount must be >= 1, got %g", r.TCount)
	}
	if r.ErrorBudget <= 0 || r.ErrorBudget >= 1 {
		return fmt.Errorf("plan: ErrorBudget %g out of (0,1)", r.ErrorBudget)
	}
	if r.DemandRate <= 0 {
		return fmt.Errorf("plan: DemandRate must be positive, got %g", r.DemandRate)
	}
	if r.Errors == (resource.ErrorModel{}) {
		r.Errors = resource.DefaultError()
	}
	if len(r.CandidateKs) == 0 {
		r.CandidateKs = []int{1, 2, 4, 6, 8}
	}
	if r.MaxLevels == 0 {
		r.MaxLevels = 4
	}
	if r.Headroom == 0 {
		r.Headroom = 1.2
	}
	if r.Headroom < 1 {
		return fmt.Errorf("plan: Headroom %g below 1", r.Headroom)
	}
	if r.MaxModules == 0 {
		r.MaxModules = 4000
	}
	return nil
}

// Provision is the planner's answer.
type Provision struct {
	// Params is the chosen factory configuration.
	Params bravyi.Params
	// TargetPerState is the per-state error the budget implies.
	TargetPerState float64
	// OutputError is the achieved per-state error.
	OutputError float64
	// BatchLatency is the estimated cycles per factory batch (critical
	// path of the generated circuit under the default cost model).
	BatchLatency int
	// SuccessProb is the full-batch success probability (first order).
	SuccessProb float64
	// Factories is the farm size meeting demand with headroom.
	Factories int
	// BufferSize is the smallest buffer keeping the simulated stall
	// fraction under 1%.
	BufferSize int
	// PhysicalQubits totals the farm's physical qubits under
	// balanced-investment code distances.
	PhysicalQubits int
	// RunCycles estimates the application duration in cycles
	// (TCount / DemandRate).
	RunCycles float64
	// RawStates estimates total raw injected states consumed, retries
	// included.
	RawStates float64
}

// Plan selects the cheapest candidate meeting the error target and sizes
// the farm for it. Cost is physical-qubit count of the farm; ties break
// toward fewer factories. The candidate block sizes are priced
// concurrently on the sweep engine's worker pool (Requirements.Workers);
// the reduction walks them in submission order, so the winner — and
// every tie-break — is identical to the serial scan's.
func Plan(req Requirements) (*Provision, error) {
	if err := req.fill(); err != nil {
		return nil, err
	}
	target := req.ErrorBudget / req.TCount
	eng := sweep.New(sweep.Options{Workers: req.Workers})
	candidates, err := sweep.Map(context.Background(), eng, req.CandidateKs,
		func(_ int, k int) (*Provision, error) { return planForK(req, k, target) })
	if err != nil {
		return nil, err
	}
	var best *Provision
	for _, prov := range candidates {
		if prov == nil {
			continue
		}
		if best == nil || prov.PhysicalQubits < best.PhysicalQubits ||
			(prov.PhysicalQubits == best.PhysicalQubits && prov.Factories < best.Factories) {
			best = prov
		}
	}
	if best == nil {
		return nil, fmt.Errorf("plan: no candidate reaches per-state error %g from inject error %g",
			target, req.Errors.InjectError)
	}
	return best, nil
}

// planForK scans recursion depths for one block size and provisions the
// shallowest viable depth (deeper recursion only costs more for a given
// k); nil means no depth works for this k.
func planForK(req Requirements, k int, target float64) (*Provision, error) {
	for levels := 1; levels <= req.MaxLevels; levels++ {
		p := bravyi.Params{K: k, Levels: levels, Reuse: levels >= 2, Barriers: true}
		errs := req.Errors.RoundErrors(p)
		out := errs[len(errs)-1]
		if out > target {
			continue
		}
		if p.TotalModules() > req.MaxModules {
			return nil, nil // wider K at deeper levels only grows further
		}
		prov, err := provisionFor(req, p, target, out)
		if err != nil {
			return nil, err
		}
		if prov == nil {
			continue // throughput unattainable (success prob ~ 0)
		}
		return prov, nil
	}
	return nil, nil
}

func provisionFor(req Requirements, p bravyi.Params, target, out float64) (*Provision, error) {
	f, err := bravyi.Build(p)
	if err != nil {
		return nil, err
	}
	cm := resource.DefaultCost()
	latency := cm.CriticalPath(f.Circuit)
	runs := resource.ExpectedRunsPerSuccess(p, req.Errors)
	if runs >= 1e17 {
		return nil, nil // hopeless success probability
	}
	succ := 1 / runs

	cfg := system.Config{
		FactoryLatency: latency,
		BatchSize:      p.Capacity(),
		SuccessProb:    succ,
		DemandRate:     req.DemandRate,
		Factories:      1,
		Cycles:         1,
		BufferSize:     1,
	}
	factories := system.FactoriesFor(cfg, req.Headroom)
	if factories == 0 {
		return nil, nil
	}
	cfg.Factories = factories

	// Smallest buffer with < 1% stalls over a representative horizon.
	// Large farms are fluid-scaled down for the sizing simulation
	// (factories, demand and buffer shrink together; the stall fraction
	// is approximately scale-invariant in this aggregate model) so the
	// planner stays fast for farm sizes in the thousands.
	simCfg := cfg
	scale := 1
	if factories > 64 {
		scale = (factories + 63) / 64
		simCfg.Factories = (factories + scale - 1) / scale
		simCfg.DemandRate = cfg.DemandRate / float64(scale)
	}
	simCfg.Cycles = 30 * latency
	if simCfg.Cycles > 300_000 {
		simCfg.Cycles = 300_000
	}
	if simCfg.Cycles < 10*latency {
		simCfg.Cycles = 10 * latency
	}
	simCfg.Seed = 1
	buffer := p.Capacity()
	for ; buffer <= 64*p.Capacity(); buffer *= 2 {
		c := simCfg
		c.BufferSize = buffer
		r, err := system.Simulate(c)
		if err != nil {
			return nil, err
		}
		if r.StallFraction() < 0.01 {
			break
		}
	}
	buffer *= scale

	perFactory := 0
	for _, q := range req.Errors.PhysicalQubitsPerRound(p) {
		perFactory += q
	}
	prov := &Provision{
		Params:         p,
		TargetPerState: target,
		OutputError:    out,
		BatchLatency:   latency,
		SuccessProb:    succ,
		Factories:      factories,
		BufferSize:     buffer,
		PhysicalQubits: factories * perFactory,
		RunCycles:      req.TCount / req.DemandRate,
		RawStates:      req.TCount / float64(p.Capacity()) * float64(p.Inputs()) * runs,
	}
	return prov, nil
}

// String renders the provision as a short report.
func (p *Provision) String() string {
	return fmt.Sprintf(
		"K=%d L=%d factory: out err %.2e (target %.2e), batch %d states / %d cycles, "+
			"P(batch)=%.3f, %d factories, buffer %d, %d physical qubits",
		p.Params.K, p.Params.Levels, p.OutputError, p.TargetPerState,
		p.Params.Capacity(), p.BatchLatency, p.SuccessProb,
		p.Factories, p.BufferSize, p.PhysicalQubits)
}
