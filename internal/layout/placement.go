// Package layout defines qubit placements on the 2-D logical tile grid and
// the congestion metrics of §VI.A (edge crossings, average Manhattan edge
// length, average edge spacing), plus the two baseline mappings the paper
// compares against: the hand-optimized linear mapping of Fowler et al. [19]
// and uniform random placement (Table I "Random").
package layout

import (
	"fmt"
	"math/rand"
	"sort"
)

// Point is a tile coordinate on the logical qubit grid.
type Point struct{ X, Y int }

// Manhattan returns the L1 distance between two points.
func Manhattan(a, b Point) int {
	return abs(a.X-b.X) + abs(a.Y-b.Y)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Unplaced marks a qubit without a position.
var Unplaced = Point{-1, -1}

// Placement maps logical qubits to distinct tiles of a W x H grid.
type Placement struct {
	W, H int
	Pos  []Point
}

// NewPlacement returns a placement of n unplaced qubits on a W x H grid.
func NewPlacement(n, w, h int) *Placement {
	p := &Placement{W: w, H: h, Pos: make([]Point, n)}
	for i := range p.Pos {
		p.Pos[i] = Unplaced
	}
	return p
}

// N returns the number of qubits.
func (p *Placement) N() int { return len(p.Pos) }

// At returns the position of qubit q.
func (p *Placement) At(q int) Point { return p.Pos[q] }

// Set positions qubit q at pt.
func (p *Placement) Set(q int, pt Point) { p.Pos[q] = pt }

// Clone returns a deep copy.
func (p *Placement) Clone() *Placement {
	return &Placement{W: p.W, H: p.H, Pos: append([]Point(nil), p.Pos...)}
}

// Validate checks that every qubit is placed, in bounds, and that no two
// qubits share a tile.
func (p *Placement) Validate() error {
	seen := make(map[Point]int, len(p.Pos))
	for q, pt := range p.Pos {
		if pt == Unplaced {
			return fmt.Errorf("layout: qubit %d unplaced", q)
		}
		if pt.X < 0 || pt.X >= p.W || pt.Y < 0 || pt.Y >= p.H {
			return fmt.Errorf("layout: qubit %d at %v outside %dx%d grid", q, pt, p.W, p.H)
		}
		if prev, dup := seen[pt]; dup {
			return fmt.Errorf("layout: qubits %d and %d share tile %v", prev, q, pt)
		}
		seen[pt] = q
	}
	return nil
}

// Occupied returns the set of used tiles.
func (p *Placement) Occupied() map[Point]int {
	occ := make(map[Point]int, len(p.Pos))
	for q, pt := range p.Pos {
		if pt != Unplaced {
			occ[pt] = q
		}
	}
	return occ
}

// FreeTiles returns unoccupied tiles in row-major order.
func (p *Placement) FreeTiles() []Point {
	occ := p.Occupied()
	var free []Point
	for y := 0; y < p.H; y++ {
		for x := 0; x < p.W; x++ {
			pt := Point{x, y}
			if _, used := occ[pt]; !used {
				free = append(free, pt)
			}
		}
	}
	return free
}

// UsedBounds returns the bounding box (width, height) of occupied tiles;
// (0, 0) when nothing is placed.
func (p *Placement) UsedBounds() (w, h int) {
	minX, minY, maxX, maxY := 1<<30, 1<<30, -1, -1
	for _, pt := range p.Pos {
		if pt == Unplaced {
			continue
		}
		if pt.X < minX {
			minX = pt.X
		}
		if pt.Y < minY {
			minY = pt.Y
		}
		if pt.X > maxX {
			maxX = pt.X
		}
		if pt.Y > maxY {
			maxY = pt.Y
		}
	}
	if maxX < 0 {
		return 0, 0
	}
	return maxX - minX + 1, maxY - minY + 1
}

// Area returns the number of occupied tiles: the paper's "Area (qubits)"
// axis counts the logical qubits a factory design consumes (its per-
// strategy differences come from qubit reuse and auxiliary slots, not
// from placement hulls — see Fig. 10b, where all three mappings' area
// curves coincide).
func (p *Placement) Area() int {
	n := 0
	for _, pt := range p.Pos {
		if pt != Unplaced {
			n++
		}
	}
	return n
}

// HullArea returns the bounding-box tile area of the occupied region, a
// sprawl diagnostic.
func (p *Placement) HullArea() int {
	w, h := p.UsedBounds()
	return w * h
}

// Normalize translates all positions so the bounding box starts at the
// origin and shrinks W, H to the bounding box.
func (p *Placement) Normalize() {
	minX, minY := 1<<30, 1<<30
	for _, pt := range p.Pos {
		if pt == Unplaced {
			continue
		}
		if pt.X < minX {
			minX = pt.X
		}
		if pt.Y < minY {
			minY = pt.Y
		}
	}
	if minX == 1<<30 {
		return
	}
	maxX, maxY := 0, 0
	for q, pt := range p.Pos {
		if pt == Unplaced {
			continue
		}
		np := Point{pt.X - minX, pt.Y - minY}
		p.Pos[q] = np
		if np.X > maxX {
			maxX = np.X
		}
		if np.Y > maxY {
			maxY = np.Y
		}
	}
	p.W, p.H = maxX+1, maxY+1
}

// Swap exchanges the tiles of qubits a and b.
func (p *Placement) Swap(a, b int) {
	p.Pos[a], p.Pos[b] = p.Pos[b], p.Pos[a]
}

// CenterOfMass returns the mean position of a set of qubits.
func (p *Placement) CenterOfMass(qs []int) (float64, float64) {
	if len(qs) == 0 {
		return 0, 0
	}
	var sx, sy float64
	for _, q := range qs {
		sx += float64(p.Pos[q].X)
		sy += float64(p.Pos[q].Y)
	}
	n := float64(len(qs))
	return sx / n, sy / n
}

// GridFor returns grid dimensions (w, h) with w*h >= n, w >= h, as close
// to the given aspect ratio (w/h) as possible.
func GridFor(n int, aspect float64) (w, h int) {
	if n <= 0 {
		return 0, 0
	}
	if aspect <= 0 {
		aspect = 1
	}
	h = 1
	for h*h < int(float64(n)/aspect) {
		h++
	}
	for h > 1 && (h-1)*ceilDiv(n, h-1) >= n {
		probe := h - 1
		if float64(ceilDiv(n, probe))/float64(probe) > aspect*2 {
			break
		}
		h = probe
	}
	w = ceilDiv(n, h)
	if w < h {
		w, h = h, w
	}
	return w, h
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// RowMajorTiles returns the first n tiles of a w-wide grid in row-major
// order.
func RowMajorTiles(n, w int) []Point {
	tiles := make([]Point, n)
	for i := range tiles {
		tiles[i] = Point{i % w, i / w}
	}
	return tiles
}

// SortQubitsByPosition returns qubit ids ordered row-major by their
// position, for deterministic iteration over a placement.
func (p *Placement) SortQubitsByPosition() []int {
	idx := make([]int, len(p.Pos))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := p.Pos[idx[a]], p.Pos[idx[b]]
		if pa.Y != pb.Y {
			return pa.Y < pb.Y
		}
		if pa.X != pb.X {
			return pa.X < pb.X
		}
		return idx[a] < idx[b]
	})
	return idx
}

// Shuffle randomly permutes the assignment of the currently used tiles
// among the placed qubits, preserving the used tile set.
func (p *Placement) Shuffle(rng *rand.Rand) {
	var placed []int
	var tiles []Point
	for q, pt := range p.Pos {
		if pt != Unplaced {
			placed = append(placed, q)
			tiles = append(tiles, pt)
		}
	}
	rng.Shuffle(len(tiles), func(i, j int) { tiles[i], tiles[j] = tiles[j], tiles[i] })
	for i, q := range placed {
		p.Pos[q] = tiles[i]
	}
}
