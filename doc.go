// Package magicstate is a from-scratch reproduction of "Magic-State
// Functional Units: Mapping and Scheduling Multi-Level Distillation
// Circuits for Fault-Tolerant Quantum Architectures" (Ding, Holmes et
// al., MICRO 2018).
//
// The library generates Bravyi-Haah (3k+8) -> k block-code magic-state
// distillation factories, maps their logical qubits onto a 2-D
// surface-code tile grid with the paper's optimization strategies
// (linear, force-directed annealing with magnetic-dipole heuristics,
// recursive graph partitioning, and hierarchical stitching with port
// reassignment and Valiant-style intermediate hops), and measures the
// resulting space-time volume on a cycle-accurate braid-routing
// simulator.
//
// Quick start:
//
//	spec := magicstate.FactorySpec{Capacity: 16, Levels: 2, Reuse: true}
//	res, err := magicstate.Optimize(spec, magicstate.Options{
//		Strategy: magicstate.HierarchicalStitching,
//		Seed:     1,
//	})
//	if err != nil { ... }
//	fmt.Println(res.Latency, res.Area, res.Volume)
//
// Beyond the paper's evaluation, the library builds out its future-work
// section: Options.Style switches the simulator between braiding,
// lattice-surgery and teleportation interaction disciplines (§IX),
// Options.Trace attaches a utilization report with per-round permutation
// shares and a channel congestion heatmap, and PlanProvision turns an
// application's T-count and error budget into a complete factory-farm
// sizing (protocol choice, farm and buffer dimensions, physical-qubit
// bill):
//
//	prov, err := magicstate.PlanProvision(magicstate.Application{
//		TCount:         1e9,
//		ErrorBudget:    0.01,
//		TGatesPerCycle: 0.02,
//	})
//
// Sweep-style workloads — grids of factory configurations — run on a
// concurrent batch executor via OptimizeBatch: points are evaluated on
// a worker pool, results preserve submission order, identical points
// are computed once, and because every pipeline stage is deterministic
// per point, parallelism never changes the numbers, only the wall
// clock.
//
// Results can outlive the process: a Batcher (or a one-shot
// OptimizeBatch with BatchOptions.Checkpoint) backs the in-memory
// result cache with a durable, crash-safe on-disk store, so a point
// computed by any earlier run against the same directory — including a
// run that was killed partway — is served from disk instead of
// recomputed. The cmd/msfud HTTP service wraps exactly this: one
// long-running Batcher behind POST /v1/optimize and /v1/batch.
//
// See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
// reproduction of every table and figure in the paper's evaluation plus
// the extension studies.
package magicstate
