package layout

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// DefectMap is a set of defective (fabrication-failed) tiles on the
// logical grid. A defective tile can neither host a qubit nor expose
// braid ports; the mesh router must route around the dead region.
//
// The map has a canonical string codec ("x,y;x,y;..." sorted row-major,
// deduplicated) so configurations carrying a defect map stay
// content-addressable: two configs with the same physical defect set
// always hash to the same store key regardless of how the set was
// written down.
type DefectMap struct {
	tiles []Point // sorted row-major (y, then x), deduplicated
	set   map[Point]struct{}
}

// ParseDefects parses a defect-map string: semicolon-separated "x,y"
// tile coordinates, in any order, duplicates allowed. The empty string
// parses to a nil map (no defects). Coordinates must be non-negative;
// bounds against a concrete grid are checked where the map is applied.
func ParseDefects(s string) (*DefectMap, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	set := make(map[Point]struct{})
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("layout: defect map %q has an empty entry", s)
		}
		xs, ys, ok := strings.Cut(part, ",")
		if !ok {
			return nil, fmt.Errorf("layout: defect entry %q is not of the form x,y", part)
		}
		x, err := strconv.Atoi(strings.TrimSpace(xs))
		if err != nil {
			return nil, fmt.Errorf("layout: defect entry %q: bad x coordinate: %v", part, err)
		}
		y, err := strconv.Atoi(strings.TrimSpace(ys))
		if err != nil {
			return nil, fmt.Errorf("layout: defect entry %q: bad y coordinate: %v", part, err)
		}
		if x < 0 || y < 0 {
			return nil, fmt.Errorf("layout: defect entry %q has negative coordinates", part)
		}
		set[Point{x, y}] = struct{}{}
	}
	tiles := make([]Point, 0, len(set))
	for pt := range set {
		tiles = append(tiles, pt)
	}
	sort.Slice(tiles, func(i, j int) bool {
		if tiles[i].Y != tiles[j].Y {
			return tiles[i].Y < tiles[j].Y
		}
		return tiles[i].X < tiles[j].X
	})
	return &DefectMap{tiles: tiles, set: set}, nil
}

// String returns the canonical codec form: tiles sorted row-major,
// "x,y" joined by ";". A nil or empty map renders as "".
func (dm *DefectMap) String() string {
	if dm == nil || len(dm.tiles) == 0 {
		return ""
	}
	var b strings.Builder
	for i, pt := range dm.tiles {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(strconv.Itoa(pt.X))
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(pt.Y))
	}
	return b.String()
}

// Has reports whether tile pt is defective. Safe on a nil map.
func (dm *DefectMap) Has(pt Point) bool {
	if dm == nil {
		return false
	}
	_, bad := dm.set[pt]
	return bad
}

// Len returns the number of defective tiles. Safe on a nil map.
func (dm *DefectMap) Len() int {
	if dm == nil {
		return 0
	}
	return len(dm.tiles)
}

// Tiles returns the defective tiles in canonical row-major order. The
// returned slice is shared and must not be modified.
func (dm *DefectMap) Tiles() []Point {
	if dm == nil {
		return nil
	}
	return dm.tiles
}

// SampleDefects draws a per-tile defect map over a w x h grid: each tile
// independently fails with the given probability. The draw order is
// row-major, so the same rng state always yields the same map — callers
// wanting reproducibility pass a seeded source (e.g. stats.SplitRNG).
func SampleDefects(w, h int, rate float64, rng *rand.Rand) *DefectMap {
	if rate <= 0 || w <= 0 || h <= 0 {
		return nil
	}
	set := make(map[Point]struct{})
	var tiles []Point
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if rng.Float64() < rate {
				pt := Point{x, y}
				set[pt] = struct{}{}
				tiles = append(tiles, pt)
			}
		}
	}
	if len(tiles) == 0 {
		return nil
	}
	return &DefectMap{tiles: tiles, set: set}
}

// AvoidDefects relocates any qubit placed on a defective tile to the
// nearest free healthy tile (Manhattan distance, row-major tie-break),
// processing qubits in increasing id order so the result is fully
// deterministic. Exact-fit placements (the linear mapping's single row)
// have no spare tiles, so when the grid runs out of healthy capacity it
// grows by whole rows — deterministically — until a displaced qubit
// fits. It mutates p in place.
func AvoidDefects(p *Placement, dm *DefectMap) error {
	if dm.Len() == 0 {
		return nil
	}
	if p.W <= 0 {
		return fmt.Errorf("layout: cannot relocate around defects on a %dx%d grid", p.W, p.H)
	}
	occ := p.Occupied()
	for q, pt := range p.Pos {
		if pt == Unplaced || !dm.Has(pt) {
			continue
		}
		delete(occ, pt)
		best := Unplaced
		bestDist := 1 << 30
		for grown := 0; ; grown++ {
			for y := 0; y < p.H; y++ {
				for x := 0; x < p.W; x++ {
					cand := Point{x, y}
					if dm.Has(cand) {
						continue
					}
					if _, used := occ[cand]; used {
						continue
					}
					if d := Manhattan(pt, cand); d < bestDist {
						best, bestDist = cand, d
					}
				}
			}
			if best != Unplaced {
				break
			}
			// Every added row is fully free, so growth succeeds once it
			// clears any defect rows the map names beyond the grid.
			if grown > dm.Len()+1 {
				return fmt.Errorf("layout: no healthy tile for qubit %d on a %dx%d grid with %d defects", q, p.W, p.H, dm.Len())
			}
			p.H++
		}
		p.Pos[q] = best
		occ[best] = q
	}
	return nil
}
