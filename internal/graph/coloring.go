package graph

import "magicstate/internal/circuit"

// Poles assigns a magnetic pole (+1 or -1) to every qubit for the dipole
// rotation heuristic (§VI.B.1). The paper observes that within any single
// schedule timestep each qubit touches at most one two-qubit gate (or one
// arm of a multi-target CXX), so the per-timestep interaction subgraph is
// a disjoint union of paths and stars and is 2-colorable. We 2-color each
// ASAP level's subgraph and let every level vote; a qubit's final pole is
// the sign of its vote sum (ties resolve to +1).
func Poles(c *circuit.Circuit) []int {
	levels := circuit.Deps(c).Levels()
	// Bucket two-qubit gates by level.
	byLevel := make(map[int][]int)
	maxLevel := 0
	for i := range c.Gates {
		if !c.Gates[i].Kind.IsTwoQubit() {
			continue
		}
		l := levels[i]
		byLevel[l] = append(byLevel[l], i)
		if l > maxLevel {
			maxLevel = l
		}
	}
	votes := make([]int, c.NumQubits)
	color := make([]int, c.NumQubits) // scratch: 0 unset, +1/-1 per level
	for l := 0; l <= maxLevel; l++ {
		gates := byLevel[l]
		if len(gates) == 0 {
			continue
		}
		// Build the level's adjacency and 2-color by BFS; conflicts (possible
		// when distinct gates at the same ASAP level share a qubit through
		// non-chain hazards) keep the first color.
		adj := make(map[int][]int)
		touch := make([]int, 0, len(gates)*2)
		add := func(a, b int) {
			adj[a] = append(adj[a], b)
			adj[b] = append(adj[b], a)
			touch = append(touch, a, b)
		}
		for _, gi := range gates {
			g := &c.Gates[gi]
			switch g.Kind {
			case circuit.KindCXX:
				for _, t := range g.Targets {
					add(int(g.Control), int(t))
				}
			case circuit.KindMove:
				add(int(g.Control), int(g.Dest))
			default:
				add(int(g.Control), int(g.Targets[0]))
			}
		}
		for _, v := range touch {
			color[v] = 0
		}
		for _, v := range touch {
			if color[v] != 0 {
				continue
			}
			color[v] = 1
			queue := []int{v}
			for len(queue) > 0 {
				u := queue[0]
				queue = queue[1:]
				for _, w := range adj[u] {
					if color[w] == 0 {
						color[w] = -color[u]
						queue = append(queue, w)
					}
				}
			}
		}
		for _, v := range touch {
			votes[v] += color[v]
		}
	}
	poles := make([]int, c.NumQubits)
	for i, v := range votes {
		if v < 0 {
			poles[i] = -1
		} else {
			poles[i] = 1
		}
	}
	return poles
}
