package mesh

import "magicstate/internal/layout"

// Dimension-ordered routing: a braid between two tiles follows one of two
// rectilinear candidate paths (horizontal-then-vertical or
// vertical-then-horizontal). If both are blocked the braid stalls. This is
// the braid model of the paper's Fig. 1: crossing braids cannot execute
// simultaneously and do not wander around each other.
//
// The candidate scan is the simulator's single hottest loop (every
// blocked gate rescans both candidates when it wakes), so checkXY/checkYX
// walk the fixed cell sequence with direct index arithmetic over the
// busyUntil array instead of the closure-based walkXY/walkYX visitors,
// stopping at the first blocked cell and reporting its expiry.
// Reservations only ever extend (a busy cell can never be re-reserved
// before it expires), so a candidate provably stays blocked at least
// until its first blocked cell has expired — making that expiry a sound
// wake-up time for the event loop's retry heap.

// walkXY visits the horizontal-first path between tiles src and dst
// cell by cell without materializing it. visit returning false aborts the
// walk; walkXY then returns false. Paths run on even (all-channel) rows
// and columns, entering/leaving tiles through adjacent port cells.
func (l *Lattice) walkXY(src, dst layout.Point, visit func(ci int) bool) bool {
	sx, sy := 2*src.X+1, 2*src.Y+1
	dx, dy := 2*dst.X+1, 2*dst.Y+1
	// Horizontal highway row adjacent to src, biased toward dst.
	ry := sy + 1
	if dy < sy {
		ry = sy - 1
	}
	// Vertical highway column adjacent to dst, biased toward src.
	cx := dx + 1
	if sx < dx {
		cx = dx - 1
	}
	if !visit(l.CellIndex(sx, ry)) { // exit src vertically
		return false
	}
	for x := sx; x != cx; x += sign(cx - sx) {
		if !visit(l.CellIndex(x+sign(cx-sx), ry)) {
			return false
		}
	}
	for y := ry; y != dy; y += sign(dy - ry) {
		if !visit(l.CellIndex(cx, y+sign(dy-ry))) {
			return false
		}
	}
	return true
}

// walkYX visits the vertical-first path between tiles src and dst.
func (l *Lattice) walkYX(src, dst layout.Point, visit func(ci int) bool) bool {
	sx, sy := 2*src.X+1, 2*src.Y+1
	dx, dy := 2*dst.X+1, 2*dst.Y+1
	// Vertical highway column adjacent to src, biased toward dst.
	cx := sx + 1
	if dx < sx {
		cx = sx - 1
	}
	// Horizontal highway row adjacent to dst, biased toward src.
	ry := dy + 1
	if sy < dy {
		ry = dy - 1
	}
	if !visit(l.CellIndex(cx, sy)) { // exit src horizontally
		return false
	}
	for y := sy; y != ry; y += sign(ry - sy) {
		if !visit(l.CellIndex(cx, y+sign(ry-sy))) {
			return false
		}
	}
	for x := cx; x != dx; x += sign(dx - cx) {
		if !visit(l.CellIndex(x+sign(dx-cx), ry)) {
			return false
		}
	}
	return true
}

// xyPathInto materializes the horizontal-first path into buf (reused).
func (l *Lattice) xyPathInto(buf []int, src, dst layout.Point) []int {
	buf = buf[:0]
	l.walkXY(src, dst, func(ci int) bool {
		if len(buf) == 0 || buf[len(buf)-1] != ci {
			buf = append(buf, ci)
		}
		return true
	})
	return buf
}

// yxPathInto materializes the vertical-first path into buf (reused).
func (l *Lattice) yxPathInto(buf []int, src, dst layout.Point) []int {
	buf = buf[:0]
	l.walkYX(src, dst, func(ci int) bool {
		if len(buf) == 0 || buf[len(buf)-1] != ci {
			buf = append(buf, ci)
		}
		return true
	})
	return buf
}

// xyPath materializes the horizontal-first path (used by tests and by
// successful routing).
func (l *Lattice) xyPath(src, dst layout.Point) []int {
	return l.xyPathInto(nil, src, dst)
}

// yxPath materializes the vertical-first path.
func (l *Lattice) yxPath(src, dst layout.Point) []int {
	return l.yxPathInto(nil, src, dst)
}

func sign(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}

// checkXY scans the horizontal-first candidate between src and dst with
// direct index arithmetic (the cell sequence mirrors walkXY exactly) and
// reports whether it is fully free at t. When blocked, clearAt is the
// first blocked cell's busyUntil — a sound earliest-retry bound for this
// candidate. With claimed set, cells claimed by an earlier arm of the
// current routeXYTree call never block (arms of one braid tree may
// overlap).
func (r *router) checkXY(src, dst layout.Point, t int, claimed bool) (ok bool, clearAt int) {
	cw := r.lat.CW
	bu := r.busyUntil
	sx, sy := 2*src.X+1, 2*src.Y+1
	dx, dy := 2*dst.X+1, 2*dst.Y+1
	ry := sy + 1
	if dy < sy {
		ry = sy - 1
	}
	cx := dx + 1
	if sx < dx {
		cx = dx - 1
	}
	blocked := func(ci int) (int, bool) {
		if v := bu[ci]; v > t && !(claimed && r.claimStamp[ci] == r.claimEpoch) {
			return v, true
		}
		return 0, false
	}
	base := ry * cw
	if v, bad := blocked(base + sx); bad { // exit src vertically
		return false, v
	}
	if cx >= sx { // horizontal highway: row ry, columns (sx..cx]
		for x := sx + 1; x <= cx; x++ {
			if v, bad := blocked(base + x); bad {
				return false, v
			}
		}
	} else {
		for x := sx - 1; x >= cx; x-- {
			if v, bad := blocked(base + x); bad {
				return false, v
			}
		}
	}
	if dy >= ry { // vertical highway: column cx, rows (ry..dy]
		for ci := (ry+1)*cw + cx; ci <= dy*cw+cx; ci += cw {
			if v, bad := blocked(ci); bad {
				return false, v
			}
		}
	} else {
		for ci := (ry-1)*cw + cx; ci >= dy*cw+cx; ci -= cw {
			if v, bad := blocked(ci); bad {
				return false, v
			}
		}
	}
	return true, 0
}

// checkYX is checkXY for the vertical-first candidate (mirrors walkYX).
func (r *router) checkYX(src, dst layout.Point, t int, claimed bool) (ok bool, clearAt int) {
	cw := r.lat.CW
	bu := r.busyUntil
	sx, sy := 2*src.X+1, 2*src.Y+1
	dx, dy := 2*dst.X+1, 2*dst.Y+1
	cx := sx + 1
	if dx < sx {
		cx = sx - 1
	}
	ry := dy + 1
	if sy < dy {
		ry = dy - 1
	}
	blocked := func(ci int) (int, bool) {
		if v := bu[ci]; v > t && !(claimed && r.claimStamp[ci] == r.claimEpoch) {
			return v, true
		}
		return 0, false
	}
	if v, bad := blocked(sy*cw + cx); bad { // exit src horizontally
		return false, v
	}
	if ry >= sy { // vertical highway: column cx, rows (sy..ry]
		for ci := (sy+1)*cw + cx; ci <= ry*cw+cx; ci += cw {
			if v, bad := blocked(ci); bad {
				return false, v
			}
		}
	} else {
		for ci := (sy-1)*cw + cx; ci >= ry*cw+cx; ci -= cw {
			if v, bad := blocked(ci); bad {
				return false, v
			}
		}
	}
	base := ry * cw
	if dx >= cx { // horizontal highway: row ry, columns (cx..dx]
		for x := cx + 1; x <= dx; x++ {
			if v, bad := blocked(base + x); bad {
				return false, v
			}
		}
	} else {
		for x := cx - 1; x >= dx; x-- {
			if v, bad := blocked(base + x); bad {
				return false, v
			}
		}
	}
	return true, 0
}

// routeXY tries the XY then the YX candidate between two tiles and
// returns the first conflict-free one (aliasing the router's path
// buffer). When both are blocked it returns nil and the earliest cycle at
// which either candidate could possibly clear.
func (r *router) routeXY(src, dst layout.Point, t int) ([]int, int) {
	ok1, clear1 := r.checkXY(src, dst, t, false)
	if ok1 {
		r.pathBuf = r.lat.xyPathInto(r.pathBuf, src, dst)
		return r.pathBuf, 0
	}
	ok2, clear2 := r.checkYX(src, dst, t, false)
	if ok2 {
		r.pathBuf = r.lat.yxPathInto(r.pathBuf, src, dst)
		return r.pathBuf, 0
	}
	if clear2 < clear1 {
		clear1 = clear2
	}
	if clear1 >= deadBusy {
		// Both rectilinear candidates are severed by a fabrication-defect
		// region — no reservation will ever expire to unblock them. This
		// is the one case where a braid leaves the L-shaped discipline:
		// the control software would precompute a detour around known-bad
		// tiles, so route adaptively (mere congestion still stalls).
		return r.route(r.lat.PortsOf(src), r.lat.PortsOf(dst), t)
	}
	return nil, clear1
}

// routeXYTree builds a multi-target braid under dimension-ordered routing:
// one arm per target, each an XY or YX candidate from the control, where
// arms of the same gate may overlap one another (a braid tree is a single
// topological defect). Returns the union of cells (aliasing the router's
// union buffer), or nil plus an earliest-retry bound if any arm is
// blocked. Claimed-arm membership is tracked in the stamp-indexed
// claimStamp array; a busy cell can never be claimed (the first arm
// crossing it would itself be blocked), so the failing arm's bound
// remains sound in the presence of claims.
func (r *router) routeXYTree(control layout.Point, targets []layout.Point, t int) ([]int, int) {
	r.claimEpoch++
	union := r.unionBuf[:0]
	for _, tgt := range targets {
		var arm []int
		ok, clear1 := r.checkXY(control, tgt, t, true)
		if ok {
			arm = r.lat.xyPathInto(r.pathBuf, control, tgt)
		} else {
			ok2, clear2 := r.checkYX(control, tgt, t, true)
			if !ok2 {
				if clear2 < clear1 {
					clear1 = clear2
				}
				if clear1 >= deadBusy {
					// Defect-severed arm: detour adaptively, as routeXY
					// does for pairs. Arms may overlap claimed cells of
					// earlier arms (they are free in busyUntil until the
					// whole tree reserves), so a plain BFS is sound here.
					arm, clear1 = r.route(r.lat.PortsOf(control), r.lat.PortsOf(tgt), t)
				}
				if arm == nil {
					r.unionBuf = union[:0]
					return nil, clear1
				}
			} else {
				arm = r.lat.yxPathInto(r.pathBuf, control, tgt)
			}
		}
		r.pathBuf = arm
		for _, ci := range arm {
			if r.claimStamp[ci] != r.claimEpoch {
				r.claimStamp[ci] = r.claimEpoch
				union = append(union, ci)
			}
		}
	}
	r.unionBuf = union
	return union, 0
}
