package store

import (
	"context"
	"encoding/json"
	"fmt"

	"magicstate/internal/core"
)

// Record is the durable form of a pipeline result: the scalar fields of
// core.Report, without the in-memory Factory/Placement/Sim artifacts.
// Every consumer of memoized grid points (Table I, Figs. 7/9/10, the
// style and level studies, the public Result type) reads exactly these
// fields, which is what makes a disk round-trip lossless for them.
// Records are stored as JSON; encoding/json renders float64 with the
// shortest round-tripping representation, so values survive a
// store/load cycle bit-for-bit and resumed sweeps emit byte-identical
// artifacts.
type Record struct {
	Strategy        string  `json:"strategy"`         // mapper label, as core.Report.Strategy
	Latency         int     `json:"latency"`          // simulated execution time in cycles
	Area            int     `json:"area"`             // logical-qubit tile count
	Volume          float64 `json:"volume"`           // Latency x Area
	CriticalLatency int     `json:"critical_latency"` // dependency-limited latency bound
	CriticalVolume  float64 `json:"critical_volume"`  // volume at the critical bound
	PermLatency     int     `json:"perm_latency"`     // inter-round permutation window
	Stalls          int     `json:"stalls"`           // rejected braid attempts
}

// RecordOf extracts the durable scalar outcome of rep.
func RecordOf(rep *core.Report) Record {
	return Record{
		Strategy:        rep.Strategy,
		Latency:         rep.Latency,
		Area:            rep.Area,
		Volume:          rep.Volume,
		CriticalLatency: rep.CriticalLatency,
		CriticalVolume:  rep.CriticalVolume,
		PermLatency:     rep.PermLatency,
		Stalls:          rep.Stalls,
	}
}

// Report rebuilds a core.Report for cfg from the stored scalars. The
// Factory, Placement and Sim pointers are nil — disk-served reports
// only feed consumers of the scalar fields (Cacheable gates out the
// configs whose callers need more).
func (r Record) Report(cfg core.Config) *core.Report {
	return &core.Report{
		Config:          cfg,
		Strategy:        r.Strategy,
		Latency:         r.Latency,
		Area:            r.Area,
		Volume:          r.Volume,
		CriticalLatency: r.CriticalLatency,
		CriticalVolume:  r.CriticalVolume,
		PermLatency:     r.PermLatency,
		Stalls:          r.Stalls,
	}
}

// LookupReport returns the stored result for cfg, or ok=false when cfg
// is not cacheable, absent, or stored in an undecodable form (treated
// as a miss: the caller recomputes and overwrites nothing).
func (s *Store) LookupReport(cfg core.Config) (rep *core.Report, ok bool) {
	if !Cacheable(cfg) {
		return nil, false
	}
	payload, ok := s.Get(KeyOf(cfg))
	if !ok {
		return nil, false
	}
	var r Record
	if err := json.Unmarshal(payload, &r); err != nil {
		return nil, false
	}
	return r.Report(cfg), true
}

// LookupReportContext is LookupReport with the read-through peer tier:
// on a local miss it consults the fetcher installed by SetFetcher, and
// a fetched payload — already byte-verified by the fabric — must also
// decode as a Record before it is admitted to the local store and
// served. Undecodable fetch results are dropped as misses, so a
// confused peer can cost a recompute but can never plant a record the
// local node would later serve. With no fetcher installed this is
// exactly LookupReport.
func (s *Store) LookupReportContext(ctx context.Context, cfg core.Config) (rep *core.Report, ok bool) {
	if !Cacheable(cfg) {
		return nil, false
	}
	k := KeyOf(cfg)
	if payload, ok := s.Get(k); ok {
		var r Record
		if err := json.Unmarshal(payload, &r); err != nil {
			return nil, false
		}
		return r.Report(cfg), true
	}
	s.hookMu.RLock()
	fetch := s.fetcher
	s.hookMu.RUnlock()
	if fetch == nil {
		return nil, false
	}
	payload, fetched := fetch(ctx, k)
	if !fetched {
		return nil, false
	}
	var r Record
	if err := json.Unmarshal(payload, &r); err != nil {
		return nil, false
	}
	// Admission after decode verification; a racing local compute that
	// beat us to the key makes this a harmless duplicate.
	if err := s.Put(k, payload); err != nil {
		return nil, false
	}
	s.mu.Lock()
	s.peerHits++
	s.mu.Unlock()
	return r.Report(cfg), true
}

// PutReport persists rep's scalar outcome under cfg's key. Uncacheable
// configs are silently skipped, so callers can offer every result to
// the store without gating.
func (s *Store) PutReport(cfg core.Config, rep *core.Report) error {
	if !Cacheable(cfg) {
		return nil
	}
	payload, err := json.Marshal(RecordOf(rep))
	if err != nil {
		return fmt.Errorf("store: encode record: %w", err)
	}
	return s.Put(KeyOf(cfg), payload)
}
