package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDepsChain(t *testing.T) {
	c := New(2)
	c.H(0)       // gate 0
	c.CNOT(0, 1) // gate 1 depends on 0
	c.H(1)       // gate 2 depends on 1
	c.H(0)       // gate 3 depends on 1 (shares q0)
	d := Deps(c)
	if d.InDegree(0) != 0 || d.InDegree(1) != 1 || d.InDegree(2) != 1 || d.InDegree(3) != 1 {
		t.Errorf("in-degrees wrong: %d %d %d %d",
			d.InDegree(0), d.InDegree(1), d.InDegree(2), d.InDegree(3))
	}
	if len(d.Succ[1]) != 2 {
		t.Errorf("gate 1 should have 2 successors, got %v", d.Succ[1])
	}
}

func TestDepsDeduplicatesSharedOperands(t *testing.T) {
	c := New(2)
	c.CNOT(0, 1)
	c.CNOT(0, 1) // shares both qubits with gate 0; only one edge
	d := Deps(c)
	if d.InDegree(1) != 1 {
		t.Errorf("duplicate-operand edge not deduplicated: in-degree %d", d.InDegree(1))
	}
}

func TestLevelsIndependentGates(t *testing.T) {
	c := New(4)
	c.H(0)
	c.H(1)
	c.CNOT(0, 1) // level 1
	c.CNOT(2, 3) // level 0: disjoint qubits
	lvl := Deps(c).Levels()
	want := []int{0, 0, 1, 0}
	for i, w := range want {
		if lvl[i] != w {
			t.Errorf("level[%d] = %d, want %d (all %v)", i, lvl[i], w, lvl)
		}
	}
}

func TestBarrierSerializes(t *testing.T) {
	c := New(4)
	c.H(0)
	c.H(1)
	c.Barrier([]Qubit{0, 1, 2, 3})
	c.H(2) // would be level 0 without the barrier
	lvl := Deps(c).Levels()
	if lvl[3] <= lvl[2]-1 && lvl[3] != lvl[2]+1 {
		t.Errorf("gate after barrier should be above it: barrier %d, h(2) %d", lvl[2], lvl[3])
	}
	if lvl[3] != 2 {
		t.Errorf("h(2) should be at level 2 (after barrier at 1), got %d", lvl[3])
	}
}

func TestLongestPathUnitWeights(t *testing.T) {
	c := New(2)
	c.H(0)
	c.CNOT(0, 1)
	c.MeasX(1)
	d := Deps(c)
	if got := d.LongestPath(func(int) float64 { return 1 }); got != 3 {
		t.Errorf("chain of 3 unit gates: critical path %v, want 3", got)
	}
}

func TestLongestPathWeighted(t *testing.T) {
	c := New(3)
	c.H(0)       // weight 1
	c.H(1)       // weight 10 — heavier independent branch
	c.CNOT(0, 2) // weight 1: path through gate 0 = 2
	d := Deps(c)
	w := []float64{1, 10, 1}
	if got := d.LongestPath(func(i int) float64 { return w[i] }); got != 10 {
		t.Errorf("critical path %v, want 10", got)
	}
}

// Property: critical path with unit weights equals 1 + max ASAP level, and
// every gate's level is at least its predecessor's + 1.
func TestLevelsConsistentWithLongestPath(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		c := New(n)
		for g := 0; g < 30; g++ {
			a := Qubit(rng.Intn(n))
			b := Qubit(rng.Intn(n))
			if a == b {
				c.H(a)
			} else {
				c.CNOT(a, b)
			}
		}
		d := Deps(c)
		lvl := d.Levels()
		maxLvl := 0
		for i, l := range lvl {
			if l > maxLvl {
				maxLvl = l
			}
			for _, s := range d.Succ[i] {
				if lvl[s] < l+1 {
					return false
				}
			}
		}
		return d.LongestPath(func(int) float64 { return 1 }) == float64(maxLvl+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTopoIsProgramOrder(t *testing.T) {
	c := New(3)
	c.H(0)
	c.CNOT(0, 1)
	order := Deps(c).Topo()
	for i, v := range order {
		if v != i {
			t.Fatalf("topo order should be program order, got %v", order)
		}
	}
}
