package experiments

import (
	"context"
	"fmt"

	"magicstate/internal/core"
	"magicstate/internal/sweep"
)

// Fig7Row is one capacity point of Fig. 7: force-directed and graph
// partitioning latency against the dependency-limited lower bound.
type Fig7Row struct {
	Capacity  int
	FDLatency int
	GPLatency int
	Critical  int
}

// fig7Strategies are the two mappers Fig. 7 compares, in column order.
var fig7Strategies = []core.Strategy{core.StrategyForceDirected, core.StrategyGraphPartition}

// Fig7 reproduces Fig. 7a (level 1) or 7b (level 2): overall circuit
// latency attained by FD and GP embeddings versus the theoretical lower
// bound, as capacity grows. The capacity x strategy grid runs on the
// sweep engine.
func Fig7(level int, capacities []int, seed int64) ([]Fig7Row, error) {
	type point struct {
		capacity int
		strategy core.Strategy
	}
	var pts []point
	for _, c := range capacities {
		for _, s := range fig7Strategies {
			pts = append(pts, point{capacity: c, strategy: s})
		}
	}
	reps, err := sweep.Map(context.Background(), Engine(), pts, func(_ int, pt point) (*core.Report, error) {
		rep, err := runCapacity(pt.capacity, level, pt.strategy, level >= 2, seed)
		if err != nil {
			return nil, fmt.Errorf("fig7 cap %d %v: %w", pt.capacity, pt.strategy, err)
		}
		return rep, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Fig7Row, 0, len(capacities))
	for i, c := range capacities {
		fd, gp := reps[2*i], reps[2*i+1]
		rows = append(rows, Fig7Row{
			Capacity:  c,
			FDLatency: fd.Latency,
			GPLatency: gp.Latency,
			Critical:  gp.CriticalLatency,
		})
	}
	return rows, nil
}

// capacityConfig resolves a capacity to protocol parameters for one
// strategy's pipeline run.
func capacityConfig(capacity, level int, s core.Strategy, reuse bool, seed int64) (core.Config, error) {
	k, err := kForCapacity(capacity, level)
	if err != nil {
		return core.Config{}, err
	}
	return core.Config{K: k, Levels: level, Strategy: s, Reuse: reuse, Seed: seed}, nil
}

// runCapacity executes one capacity point through the engine's memo
// cache (call it from inside a sweep.Map function).
func runCapacity(capacity, level int, s core.Strategy, reuse bool, seed int64) (*core.Report, error) {
	cfg, err := capacityConfig(capacity, level, s, reuse, seed)
	if err != nil {
		return nil, err
	}
	return Engine().RunOne(cfg)
}

func kForCapacity(capacity, level int) (int, error) {
	switch level {
	case 1:
		return capacity, nil
	case 2:
		for k := 1; k*k <= capacity; k++ {
			if k*k == capacity {
				return k, nil
			}
		}
		return 0, fmt.Errorf("capacity %d is not a perfect square", capacity)
	}
	return 0, fmt.Errorf("unsupported level %d", level)
}
