package experiments

import (
	"context"
	"fmt"
	"io"

	"magicstate/internal/bravyi"
	"magicstate/internal/core"
	"magicstate/internal/layout"
	"magicstate/internal/stats"
	"magicstate/internal/sweep"
)

// DefectRow is one defect rate of the heterogeneous-mesh study: a fixed
// factory simulated on meshes with a growing fraction of fabrication-
// defective tiles. Qubits are relocated off dead tiles and braids
// detour around the dead regions, so latency (and, once relocation has
// to add rows, area) measures the price of imperfect yield at the
// mesh level rather than the distillation level.
type DefectRow struct {
	// Rate is the per-tile defect probability the map was sampled at.
	Rate float64
	// DefectTiles is the sampled defect count (rate x grid, realized).
	DefectTiles int
	// Defects is the canonical map, so a row is exactly reproducible.
	Defects string
	// Latency, Area, Stalls are the simulated outcome on that mesh.
	Latency int
	Area    int
	Stalls  int
}

// DefectImpact simulates one factory across sampled per-tile defect
// maps of increasing rate. Maps are sampled over the factory's own
// placement grid with SplitRNG(seed, rate index), so the study is
// deterministic per seed and each rate's map is independent; every
// pipeline run goes through the sweep engine and caches like any other
// grid point (the defect map is part of the stage keys).
func DefectImpact(k, levels int, rates []float64, seed int64) ([]DefectRow, error) {
	f, err := bravyi.Build(bravyi.Params{K: k, Levels: levels, Barriers: true})
	if err != nil {
		return nil, err
	}
	grid := layout.Linear(f)
	w, h := grid.W, grid.H
	type point struct {
		rate    float64
		defects string
	}
	pts := make([]point, len(rates))
	for i, rate := range rates {
		dm := layout.SampleDefects(w, h, rate, stats.SplitRNG(seed, int64(i)))
		pts[i] = point{rate: rate, defects: dm.String()}
	}
	return sweep.Map(context.Background(), Engine(), pts, func(_ int, pt point) (DefectRow, error) {
		rep, err := Engine().RunOne(core.Config{
			K: k, Levels: levels, Strategy: core.StrategyLinear, Seed: seed,
			Defects: pt.defects,
		})
		if err != nil {
			return DefectRow{}, fmt.Errorf("defects rate=%.2f map=%q: %w", pt.rate, pt.defects, err)
		}
		dm, err := layout.ParseDefects(pt.defects)
		if err != nil {
			return DefectRow{}, err
		}
		return DefectRow{
			Rate: pt.rate, DefectTiles: dm.Len(), Defects: pt.defects,
			Latency: rep.Latency, Area: rep.Area, Stalls: rep.Stalls,
		}, nil
	})
}

// WriteDefectImpact renders the heterogeneous-mesh study.
func WriteDefectImpact(w io.Writer, k, levels int, rows []DefectRow) {
	fmt.Fprintf(w, "Defective-mesh impact — K=%d level %d factory, linear mapping\n", k, levels)
	tw := newTab(w)
	fmt.Fprintln(tw, "rate\tdead tiles\tlatency\tarea\tstalls\tmap")
	for _, r := range rows {
		m := r.Defects
		if m == "" {
			m = "(pristine)"
		}
		fmt.Fprintf(tw, "%.2f\t%d\t%d\t%d\t%d\t%s\n",
			r.Rate, r.DefectTiles, r.Latency, r.Area, r.Stalls, m)
	}
	tw.Flush()
}
