package magicstate

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"testing"
)

// parseTestKey converts PointKey's hex form to the raw 32-byte key the
// cluster hooks deal in.
func parseTestKey(t *testing.T, s string) (k [32]byte) {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != 32 {
		t.Fatalf("bad key %q: %v", s, err)
	}
	copy(k[:], b)
	return k
}

// TestBatcherClusterHooks wires two batchers into a miniature two-node
// cluster in-process: node A's remote hooks call straight into node B's
// serving methods (RecordGet, EvalConfigJSON), the way cmd/msfud wires
// them through the fabric's HTTP calls.
func TestBatcherClusterHooks(t *testing.T) {
	nodeB, err := NewBatcher(BatcherOptions{Parallelism: 1, Checkpoint: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()

	var fetches, evals int
	nodeA, err := NewBatcher(BatcherOptions{
		Parallelism: 1,
		Checkpoint:  t.TempDir(),
		RemoteFetch: func(ctx context.Context, key [32]byte) ([]byte, bool) {
			fetches++
			return nodeB.RecordGet(key)
		},
		RemoteEval: func(ctx context.Context, key [32]byte, cfgJSON []byte) ([]byte, bool) {
			evals++
			gotKey, payload, err := nodeB.EvalConfigJSON(ctx, cfgJSON)
			if err != nil || gotKey != key {
				return nil, false
			}
			return payload, true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()

	spec := FactorySpec{Capacity: 2, Levels: 1}
	want, err := nodeB.Optimize(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Node A's first sight of the point: local memo miss, local store
	// miss, then the fetch hook finds node B's record.
	got, err := nodeA.Optimize(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Fatalf("fetched result %+v differs from origin %+v", *got, *want)
	}
	if fetches != 1 {
		t.Fatalf("fetch hook called %d times, want 1", fetches)
	}
	if st := nodeA.Stats(); st.PeerFetchHits != 1 {
		t.Fatalf("PeerFetchHits = %d, want 1", st.PeerFetchHits)
	}

	// A point node B has never seen: the fetch misses, the eval hook
	// forwards the computation to node B.
	spec2 := FactorySpec{Capacity: 4, Levels: 1}
	want2, err := nodeA.Optimize(spec2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if evals != 1 {
		t.Fatalf("eval hook called %d times, want 1", evals)
	}
	if nodeA.Stats().RemoteEvalHits != 1 {
		t.Fatalf("RemoteEvalHits = %d, want 1", nodeA.Stats().RemoteEvalHits)
	}
	// Node B computed and stored it; node A persisted the result too.
	if direct, err := nodeB.Optimize(spec2, Options{}); err != nil || *direct != *want2 {
		t.Fatalf("node B's own result %+v (err %v) differs from forwarded %+v", direct, err, *want2)
	}
	if nodeA.Stats().StoredRecords != 2 {
		t.Fatalf("node A stored %d records, want 2", nodeA.Stats().StoredRecords)
	}
}

func TestRecordPutVerifiesPayload(t *testing.T) {
	b, err := NewBatcher(BatcherOptions{Parallelism: 1, Checkpoint: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	keyHex, err := PointKey(FactorySpec{Capacity: 2, Levels: 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := parseTestKey(t, keyHex)

	if err := b.RecordPut(k, []byte(`{"strategy":"x","latency":1,"area":1,"volume":1,"critical_latency":1,"critical_volume":1,"perm_latency":0,"stalls":0}`)); err != nil {
		t.Fatalf("valid record refused: %v", err)
	}
	if _, ok := b.RecordGet(k); !ok {
		t.Fatal("admitted record not served")
	}
	if err := b.RecordPut(k, []byte(`not a record`)); err == nil {
		t.Fatal("garbage payload admitted")
	}
	if err := b.RecordPut(k, []byte(`{"strategy":"x","surprise_field":1}`)); err == nil {
		t.Fatal("unknown-field payload admitted (version-skew guard)")
	}
}

func TestEvalConfigJSONContract(t *testing.T) {
	b, err := NewBatcher(BatcherOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	cfg, err := optimizeConfig(FactorySpec{Capacity: 2, Levels: 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	key, payload, err := b.EvalConfigJSON(context.Background(), cfgJSON)
	if err != nil {
		t.Fatal(err)
	}
	wantKey, _ := PointKey(FactorySpec{Capacity: 2, Levels: 1}, Options{})
	if hex.EncodeToString(key[:]) != wantKey {
		t.Fatalf("key = %x, want %s", key, wantKey)
	}
	var rec map[string]any
	if err := json.Unmarshal(payload, &rec); err != nil {
		t.Fatalf("payload does not decode: %v", err)
	}
	if rec["latency"].(float64) <= 0 {
		t.Fatalf("payload = %s", payload)
	}

	// Strict decode: unknown fields are refused.
	if _, _, err := b.EvalConfigJSON(context.Background(), []byte(`{"K":2,"NoSuchField":1}`)); err == nil {
		t.Fatal("unknown config field accepted")
	}
	// Uncacheable (trace-carrying) configs are refused, not computed.
	traceCfg, err := optimizeConfig(FactorySpec{Capacity: 2, Levels: 1}, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	traceJSON, _ := json.Marshal(traceCfg)
	if _, _, err := b.EvalConfigJSON(context.Background(), traceJSON); err == nil {
		t.Fatal("uncacheable config accepted")
	}
}
