// Package sweep is the concurrent batch executor behind the repository's
// evaluation pipeline. The paper's whole evaluation (§VIII) is a grid of
// independent (capacity, level, strategy, style, seed) pipeline runs;
// sweep accepts such a grid as a slice of core.Config points, executes it
// on a bounded worker pool, and returns reports in the exact order the
// points were submitted, so callers that used to write nested serial
// loops get the same rows back regardless of worker count.
//
// The engine adds three things over a bare errgroup:
//
//   - memoization: identical Config points (several figures re-evaluate
//     the same grid cells) are computed once per engine and shared, with
//     singleflight semantics under concurrency;
//   - deterministic ordering: results[i] always corresponds to
//     cfgs[i]; on failure, the engine stops dispatching and reports
//     the lowest-indexed point that ran and failed (a serial run
//     reports exactly the first failure);
//   - cancellation and progress: a context.Context stops the sweep
//     between points, and an optional callback observes completion
//     counts for long grids.
//
// Every pipeline stage the engine runs is deterministic per Config, so a
// fixed-seed grid produces byte-identical results at any worker count —
// the determinism regression test in internal/experiments holds the
// repository to that.
package sweep

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"magicstate/internal/core"
	"magicstate/internal/sweep/memo"
)

// Options configures an Engine.
type Options struct {
	// Workers bounds pool concurrency; <= 0 means runtime.GOMAXPROCS(0).
	// 1 reproduces serial execution exactly.
	Workers int
	// Progress, when set, observes completion: it is called once per
	// point as the point finishes — successfully, with an error, or
	// skipped after an earlier failure — with the running done count
	// and the batch total. A successful sweep always reaches done ==
	// total; a failing sweep may stop short (the serial path returns at
	// the first error). Calls are serialized by the engine; the
	// callback itself need not be safe for concurrent use.
	Progress func(done, total int)
	// CacheLimit bounds the memo cache entry count (0 = memo.DefaultLimit).
	CacheLimit int
}

// Engine is a reusable batch executor. An Engine is safe for concurrent
// use; its memo cache persists across Run calls, so successive artifacts
// in one process share grid points.
type Engine struct {
	workers  int
	progress func(done, total int)
	progMu   sync.Mutex
	cache    *memo.Cache
}

// New builds an engine.
func New(opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		workers:  w,
		progress: opts.Progress,
		cache:    memo.New(opts.CacheLimit),
	}
}

// Workers reports the pool width.
func (e *Engine) Workers() int { return e.workers }

// CacheStats reports memo cache hits and misses so far.
func (e *Engine) CacheStats() (hits, misses int64) { return e.cache.Stats() }

// Run executes every Config point and returns the reports in input
// order. Identical points are computed once (reports are shared — treat
// them as read-only). On failure Run stops dispatching further points
// and returns the lowest-indexed error among points that ran.
func (e *Engine) Run(ctx context.Context, cfgs []core.Config) ([]*core.Report, error) {
	return Map(ctx, e, cfgs, func(_ int, cfg core.Config) (*core.Report, error) {
		return e.RunOne(cfg)
	})
}

// RunOne executes a single Config through the engine's memo cache. It
// is how grid stages that need per-point error context (or mix pipeline
// runs with other work) still share the cache: call RunOne from inside
// a Map function instead of core.Run.
func (e *Engine) RunOne(cfg core.Config) (*core.Report, error) {
	v, err := e.cache.Do(cfg, func() (any, error) { return core.Run(cfg) })
	if err != nil {
		return nil, err
	}
	return v.(*core.Report), nil
}

// tick reports one completed point.
func (e *Engine) tick(done *int, total int) {
	if e.progress == nil {
		return
	}
	e.progMu.Lock()
	*done++
	e.progress(*done, total)
	e.progMu.Unlock()
}

// Map runs fn over items on e's worker pool and returns the results in
// input order. It is the engine's generic entry point for grid stages
// that are not plain core.Config points (Monte-Carlo yield runs, stitch
// hop sweeps, protocol provisioning, the planner's candidate scan). fn
// must be safe for concurrent invocation and deterministic per item if
// callers rely on reproducible output. On failure Map stops dispatching
// further items and returns the lowest-indexed error among items that
// ran (a serial run reports exactly the first failure).
func Map[T, R any](ctx context.Context, e *Engine, items []T, fn func(int, T) (R, error)) ([]R, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]R, len(items))
	if len(items) == 0 {
		return results, nil
	}

	workers := e.workers
	if workers > len(items) {
		workers = len(items)
	}
	var done int

	if workers <= 1 {
		// Serial fast path: identical control flow to the loops this
		// engine replaced, including stopping at the first error.
		for i, it := range items {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := fn(i, it)
			if err != nil {
				return nil, err
			}
			results[i] = r
			e.tick(&done, len(items))
		}
		return results, nil
	}

	errs := make([]error, len(items))
	idx := make(chan int)
	var wg sync.WaitGroup
	var failed atomic.Bool
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				switch {
				case failed.Load():
					// Another point already failed; don't burn the rest
					// of the grid's wall-clock on results that will be
					// discarded.
					errs[i] = errSkipped
				case ctx.Err() != nil:
					errs[i] = ctx.Err()
					failed.Store(true)
				default:
					r, err := fn(i, items[i])
					if err != nil {
						errs[i] = err
						failed.Store(true)
					} else {
						results[i] = r
					}
				}
				e.tick(&done, len(items))
			}
		}()
	}
	for i := range items {
		idx <- i
	}
	close(idx)
	wg.Wait()

	// Report the lowest-indexed point that actually ran and failed
	// (points skipped after the first failure never produced an error
	// of their own).
	for _, err := range errs {
		if err != nil && err != errSkipped {
			return nil, err
		}
	}
	return results, nil
}

// errSkipped marks grid points abandoned because an earlier point
// already failed; it is never returned to callers.
var errSkipped = errors.New("sweep: point skipped after earlier failure")
