package mesh

import (
	"math/rand"
	"testing"
	"testing/quick"

	"magicstate/internal/bravyi"
	"magicstate/internal/circuit"
	"magicstate/internal/layout"
	"magicstate/internal/resource"
)

func TestStyleString(t *testing.T) {
	if StyleBraiding.String() != "braiding" ||
		StyleLatticeSurgery.String() != "lattice-surgery" ||
		StyleTeleportation.String() != "teleportation" {
		t.Error("style names wrong")
	}
	if InteractionStyle(99).String() == "" {
		t.Error("unknown style renders empty")
	}
	if len(Styles()) != 3 {
		t.Errorf("Styles() lists %d styles", len(Styles()))
	}
}

func TestStyleCyclesBraidingMatchesCostModel(t *testing.T) {
	cfg := Config{Cost: resource.DefaultCost()}
	cfg.fill()
	g := circuit.Gate{Kind: circuit.KindCNOT, Control: 0, Targets: []circuit.Qubit{1}}
	dur, hold := cfg.styleCycles(&g)
	if want := cfg.Cost.GateCycles(&g); dur != want || hold != want {
		t.Errorf("braiding dur/hold = %d/%d, want %d", dur, hold, want)
	}
}

func TestStyleCyclesSurgeryScalesWithDistance(t *testing.T) {
	g := circuit.Gate{Kind: circuit.KindCNOT, Control: 0, Targets: []circuit.Qubit{1}}
	small := Config{Cost: resource.DefaultCost(), Style: StyleLatticeSurgery, Distance: 5}
	small.fill()
	big := small
	big.Distance = 15
	ds, hs := small.styleCycles(&g)
	db, hb := big.styleCycles(&g)
	if ds != hs || db != hb {
		t.Error("surgery must hold for its full duration")
	}
	if db != 3*ds {
		t.Errorf("surgery d=15 dur %d, want 3x of d=5 dur %d", db, ds)
	}
	// At d = braidUnit the styles coincide.
	even := Config{Cost: resource.DefaultCost(), Style: StyleLatticeSurgery, Distance: braidUnit}
	even.fill()
	de, _ := even.styleCycles(&g)
	if want := even.Cost.GateCycles(&g); de != want {
		t.Errorf("surgery at d=%d dur %d, want braiding %d", braidUnit, de, want)
	}
}

func TestStyleCyclesTeleportationShortHold(t *testing.T) {
	g := circuit.Gate{Kind: circuit.KindCNOT, Control: 0, Targets: []circuit.Qubit{1}}
	cfg := Config{Cost: resource.DefaultCost(), Style: StyleTeleportation, Distance: 9}
	cfg.fill()
	dur, hold := cfg.styleCycles(&g)
	if hold != cfg.EprCycles {
		t.Errorf("hold = %d, want EprCycles %d", hold, cfg.EprCycles)
	}
	if dur <= hold {
		t.Errorf("dur %d must exceed hold %d (local completion)", dur, hold)
	}
	// Local gates hold for their full duration (no channel involved).
	h := circuit.Gate{Kind: circuit.KindH, Control: circuit.NoQubit, Targets: []circuit.Qubit{0}}
	dl, hl := cfg.styleCycles(&h)
	if dl != hl {
		t.Errorf("local gate dur/hold = %d/%d, want equal", dl, hl)
	}
}

func TestStyleCyclesBarrierStaysFree(t *testing.T) {
	b := circuit.Gate{Kind: circuit.KindBarrier, Control: circuit.NoQubit}
	for _, s := range Styles() {
		cfg := Config{Cost: resource.DefaultCost(), Style: s}
		cfg.fill()
		if dur, _ := cfg.styleCycles(&b); dur != 0 {
			t.Errorf("%v: barrier dur = %d, want 0", s, dur)
		}
	}
}

func TestScaleByDistanceRoundsUp(t *testing.T) {
	if got := scaleByDistance(10, 3); got != 3 {
		t.Errorf("scale(10,3) = %d, want 3", got)
	}
	if got := scaleByDistance(15, 3); got != 5 {
		t.Errorf("scale(15,3) = %d, want ceil(45/10) = 5", got)
	}
	if got := scaleByDistance(1, 1); got != 1 {
		t.Errorf("scale(1,1) = %d, want floor at 1", got)
	}
	if got := scaleByDistance(0, 7); got != 0 {
		t.Errorf("scale(0,7) = %d, want 0", got)
	}
}

// styleFixture builds a small factory circuit and a random placement.
func styleFixture(t testing.TB, seed int64) (*circuit.Circuit, *layout.Placement) {
	f, err := bravyi.Build(bravyi.Params{K: 2, Levels: 1, Barriers: true})
	if err != nil {
		t.Fatal(err)
	}
	pl := layout.Random(f.Circuit.NumQubits, rand.New(rand.NewSource(seed)))
	return f.Circuit, pl
}

func TestSimulateTeleportationReducesStalls(t *testing.T) {
	c, pl := styleFixture(t, 3)
	braid, err := Simulate(c, pl, Config{Style: StyleBraiding})
	if err != nil {
		t.Fatal(err)
	}
	tele, err := Simulate(c, pl, Config{Style: StyleTeleportation, Distance: braidUnit})
	if err != nil {
		t.Fatal(err)
	}
	if tele.Stalls > braid.Stalls {
		t.Errorf("teleportation stalls %d > braiding %d", tele.Stalls, braid.Stalls)
	}
}

func TestSimulateSurgeryLatencyGrowsWithDistance(t *testing.T) {
	c, pl := styleFixture(t, 5)
	small, err := Simulate(c, pl, Config{Style: StyleLatticeSurgery, Distance: 5})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Simulate(c, pl, Config{Style: StyleLatticeSurgery, Distance: 20})
	if err != nil {
		t.Fatal(err)
	}
	if big.Latency <= small.Latency {
		t.Errorf("surgery latency did not grow with d: d=20 %d <= d=5 %d", big.Latency, small.Latency)
	}
	ratio := float64(big.Latency) / float64(small.Latency)
	if ratio < 2 || ratio > 6 {
		t.Errorf("latency ratio %.2f far from the 4x duration scaling", ratio)
	}
}

func TestSimulateStylesPreserveOverlapInvariant(t *testing.T) {
	c, pl := styleFixture(t, 7)
	for _, s := range Styles() {
		res, err := Simulate(c, pl, Config{Style: s, RecordPaths: true})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if err := res.CheckNoOverlaps(); err != nil {
			t.Errorf("%v: %v", s, err)
		}
		if res.Latency <= 0 {
			t.Errorf("%v: zero latency", s)
		}
	}
}

func TestSimulateBraidingUnchangedByStyleKnobs(t *testing.T) {
	c, pl := styleFixture(t, 9)
	a, err := Simulate(c, pl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(c, pl, Config{Distance: 31, EprCycles: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Latency != b.Latency || a.Stalls != b.Stalls {
		t.Errorf("braiding results changed with style knobs: %d/%d vs %d/%d",
			a.Latency, a.Stalls, b.Latency, b.Stalls)
	}
}

// Property: for any style and seed, simulation completes with the overlap
// invariant intact and every gate scheduled.
func TestSimulateStylePropertyComplete(t *testing.T) {
	f := func(seed int64, styleRaw uint8) bool {
		style := InteractionStyle(int(styleRaw) % 3)
		c, pl := styleFixture(t, seed)
		res, err := Simulate(c, pl, Config{Style: style, RecordPaths: true})
		if err != nil {
			return false
		}
		for i := range res.End {
			if res.End[i] < 0 {
				return false
			}
		}
		return res.CheckNoOverlaps() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
