package store

import (
	"crypto/sha256"
	"fmt"
	"io"

	"magicstate/internal/core"
)

// stageKeyFormatVersion is bumped whenever a stage's canonical encoding
// below changes meaning — a field added to a stage's scope, removed
// from it, or reinterpreted. Like keyFormatVersion, bumping it orphans
// (never misreads) stage records written by older encodings.
const stageKeyFormatVersion = 2

// StageKeyOf returns the content address of cfg's artifact for one
// pipeline stage. Where KeyOf digests every Config field (the final
// result depends on all of them), a stage key digests exactly the
// fields that stage consumes, so configs that differ only in
// downstream axes share upstream artifacts:
//
//   - StageBuild (flat strategies): {K, Levels, Reuse, NoBarriers,
//     Workload, WorkloadSource}. Every seed, style, cost model and
//     mapper shares one factory; a frontend workload determines the
//     circuit, so it scopes the build for every stage downstream.
//   - StageBuild (stitching): the above plus Seed and the Stitch
//     options — building and placing are one fused, seeded
//     optimization there (the artifact carries the placement).
//   - StagePlace: the build scope plus Strategy, Defects (every mapper
//     relocates qubits off defective tiles) and what the mapper reads —
//     Seed for the seeded mappers (Random, GP, FD), nothing extra for
//     Linear, and for FD also the FD options and the mesh scope,
//     because FD scores candidates in simulation.
//   - StageSim: the place scope plus the mesh scope {Cost, MeshMode,
//     RouteMargin, Style, Distance, Defects}.
//
// RecordPaths appears in no stage scope: it changes which diagnostics a
// simulation retains, never its outcome, so it gates sim-stage
// cacheability (StageCacheable) instead of aliasing keys. Likewise
// FD.RestartWorkers stays excluded for the reason KeyOf documents.
// TestStageKeyScopes pins the scope matrix field by field, and a
// reflection guard ties it to the Config field set so a new field
// cannot silently join (or miss) a stage's scope.
func StageKeyOf(st core.Stage, cfg core.Config) Key {
	h := sha256.New()
	fmt.Fprintf(h, "magicstate/store stage/%s v%d\n", st, stageKeyFormatVersion)
	switch st {
	case core.StageBuild:
		writeBuildScope(h, cfg)
	case core.StagePlace:
		writePlaceScope(h, cfg)
	case core.StageSim:
		writePlaceScope(h, cfg)
		writeMeshScope(h, cfg)
	default:
		// An unknown stage must never alias a real one; digest the full
		// config under the stage number so the key is still total.
		fmt.Fprintf(h, "unknown=%d full=%s\n", int(st), KeyOf(cfg))
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// writeBuildScope digests what the factory build consumes.
func writeBuildScope(h io.Writer, cfg core.Config) {
	fmt.Fprintf(h, "K=%d Levels=%d Reuse=%t NoBarriers=%t\n",
		cfg.K, cfg.Levels, cfg.Reuse, cfg.NoBarriers)
	fmt.Fprintf(h, "Workload=%q WorkloadSource=%q\n", cfg.Workload, cfg.WorkloadSource)
	if cfg.Strategy == core.StrategyStitch {
		fmt.Fprintf(h, "kind=stitch Seed=%d\n", cfg.Seed)
		fmt.Fprintf(h, "Stitch={Seed=%d Reuse=%t Hops=%d HopIters=%d DisablePortReassign=%t ExpandSpacing=%d NoBarriers=%t}\n",
			cfg.Stitch.Seed, cfg.Stitch.Reuse, int(cfg.Stitch.Hops), cfg.Stitch.HopIters,
			cfg.Stitch.DisablePortReassign, cfg.Stitch.ExpandSpacing, cfg.Stitch.NoBarriers)
	} else {
		fmt.Fprintf(h, "kind=bravyi\n")
	}
}

// writePlaceScope digests what the mapper consumes: the build scope
// (its input) plus the strategy and its own knobs.
func writePlaceScope(h io.Writer, cfg core.Config) {
	writeBuildScope(h, cfg)
	fmt.Fprintf(h, "Strategy=%d\n", int(cfg.Strategy))
	// Every mapper (including the stitch pass-through) relocates qubits
	// off defective tiles, so the defect map scopes every placement.
	fmt.Fprintf(h, "Defects=%q\n", cfg.Defects)
	switch cfg.Strategy {
	case core.StrategyRandom, core.StrategyGraphPartition:
		fmt.Fprintf(h, "Seed=%d\n", cfg.Seed)
	case core.StrategyForceDirected:
		fmt.Fprintf(h, "Seed=%d\n", cfg.Seed)
		// RestartWorkers excluded: concurrency cap, result-invariant.
		fmt.Fprintf(h, "FD={Iterations=%d Seed=%d WAttract=%g WRepulse=%g WDipole=%g CostSample=%d MarginRows=%d DisableDipole=%t DisableCommunity=%t Restarts=%d}\n",
			cfg.FD.Iterations, cfg.FD.Seed, cfg.FD.WAttract, cfg.FD.WRepulse, cfg.FD.WDipole,
			cfg.FD.CostSample, cfg.FD.MarginRows, cfg.FD.DisableDipole, cfg.FD.DisableCommunity,
			cfg.FD.Restarts)
		// FD scores its candidates in simulation, so the simulator's
		// configuration shapes which placement wins.
		writeMeshScope(h, cfg)
	}
	// StrategyLinear is deterministic from the factory alone, and
	// stitching's placement is fixed by its build scope.
}

// writeMeshScope digests what the simulator consumes beyond the circuit
// and placement. RecordPaths is deliberately absent (see StageKeyOf).
func writeMeshScope(h io.Writer, cfg core.Config) {
	fmt.Fprintf(h, "Cost={Prep=%d H=%d Meas=%d CNOT=%d CXX=%d Inject=%d Move=%d}\n",
		cfg.Cost.Prep, cfg.Cost.H, cfg.Cost.Meas, cfg.Cost.CNOT, cfg.Cost.CXX,
		cfg.Cost.Inject, cfg.Cost.Move)
	fmt.Fprintf(h, "MeshMode=%d RouteMargin=%d Style=%d Distance=%d Defects=%q\n",
		int(cfg.MeshMode), cfg.RouteMargin, int(cfg.Style), cfg.Distance, cfg.Defects)
}

// StageCacheable reports whether cfg's artifact for the given stage can
// be served from (and persisted to) the durable tier. Build and place
// artifacts are lossless for every config. A sim artifact omits the
// Paths/HoldEnd diagnostics, so configs that record them must always
// resimulate — the same rule Cacheable applies to final records.
func StageCacheable(st core.Stage, cfg core.Config) bool {
	if st == core.StageSim {
		return !cfg.RecordPaths
	}
	return true
}
