package experiments

import (
	"fmt"

	"magicstate/internal/core"
)

// Fig10Row is one (strategy, capacity) cell of Fig. 10: simulated
// latency, area and space-time volume. For multi-level factories each
// strategy is run under both reuse policies and the better volume is
// kept, mirroring the paper's "final results plots show these
// configurations" (§VIII.C.2); Reuse records the winning policy.
type Fig10Row struct {
	Strategy string
	Capacity int
	Latency  int
	Area     int
	Volume   float64
	Reuse    bool
}

// Fig10 reproduces Fig. 10a/b/e (level 1) or 10c/d/f (level 2).
func Fig10(level int, capacities []int, seed int64) ([]Fig10Row, error) {
	strategies := []core.Strategy{core.StrategyLinear, core.StrategyForceDirected, core.StrategyGraphPartition}
	if level >= 2 {
		strategies = append(strategies, core.StrategyStitch)
	}
	var rows []Fig10Row
	for _, cap := range capacities {
		for _, s := range strategies {
			best, err := bestReuse(cap, level, s, seed)
			if err != nil {
				return nil, fmt.Errorf("fig10 cap %d %v: %w", cap, s, err)
			}
			rows = append(rows, *best)
		}
	}
	return rows, nil
}

// bestReuse runs strategy s under both reuse policies (multi-level) and
// returns the lower-volume configuration; single-level factories have no
// reuse dimension.
func bestReuse(capacity, level int, s core.Strategy, seed int64) (*Fig10Row, error) {
	toRow := func(rep *core.Report, reuse bool) *Fig10Row {
		return &Fig10Row{
			Strategy: s.String(), Capacity: capacity,
			Latency: rep.Latency, Area: rep.Area, Volume: rep.Volume, Reuse: reuse,
		}
	}
	if level == 1 {
		rep, err := runCapacity(capacity, level, s, false, seed)
		if err != nil {
			return nil, err
		}
		return toRow(rep, false), nil
	}
	nr, err := runCapacity(capacity, level, s, false, seed)
	if err != nil {
		return nil, err
	}
	r, err := runCapacity(capacity, level, s, true, seed)
	if err != nil {
		return nil, err
	}
	if r.Volume <= nr.Volume {
		return toRow(r, true), nil
	}
	return toRow(nr, false), nil
}
