package store

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

const (
	// logName and idxName are the two files of a store directory.
	logName = "store.log"
	idxName = "store.idx"

	// entrySize is the fixed width of one index entry:
	// key[32] | log offset uint64 | payload length uint32 |
	// payload CRC32 uint32 | entry CRC32 uint32 (over the first 48
	// bytes). All integers are little-endian.
	entrySize = 32 + 8 + 4 + 4 + 4
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// Stats is a point-in-time snapshot of a store's counters, exposed to
// callers (sweep engine stats, the msfud /v1/stats endpoint).
type Stats struct {
	// Hits and Misses count final-record Get outcomes since Open.
	Hits, Misses int64
	// PeerHits counts local misses served by the read-through fetcher
	// (a peer's store) instead of recomputation, stage and final alike.
	PeerHits int64
	// Puts counts final records appended since Open (duplicates
	// excluded). Because every cacheable pipeline run persists exactly
	// one final record, this doubles as the "points computed" count.
	Puts int64
	// Records is the live final-record count, recovered entries
	// included.
	Records int
	// StageHits and StageMisses count stage-artifact Get outcomes
	// (GetStage and its peer-aware variant) since Open.
	StageHits, StageMisses int64
	// StagePuts counts stage-artifact records appended since Open
	// (duplicates excluded).
	StagePuts int64
	// StageRecords is the live stage-artifact record count; Records +
	// StageRecords is the total the log holds.
	StageRecords int
	// LogBytes is the current size of the record log in bytes, stage
	// and final records together.
	LogBytes int64
}

// Fetcher is the read-through hook consulted on a local miss: given a
// key, it may produce the record payload from elsewhere (in practice, a
// cluster peer's store via internal/fabric). ok=false means "not
// available, compute locally". Implementations own their own
// verification — the store additionally refuses payloads that do not
// decode as a Record before admitting them.
type Fetcher func(ctx context.Context, k Key) ([]byte, bool)

// storeFile is the slice of *os.File the store drives. Production opens
// real files; fault-injection tests and soak harnesses wrap them in a
// faultFile that fails, stalls or tears writes on demand (see fault.go).
type storeFile interface {
	io.Reader
	io.Writer
	io.Seeker
	Truncate(size int64) error
	Sync() error
	Close() error
}

// Store is a durable, append-only map from Key to an opaque payload,
// with crash-safe recovery (see the package comment for the file format
// and recovery rules). All records are held in memory once opened —
// payloads are the scalar outcome of a pipeline run, a few dozen bytes
// each — so Get never touches the disk. Store is safe for concurrent
// use within one process.
type Store struct {
	mu     sync.Mutex
	dir    string
	absDir string
	logF   storeFile
	idxF   storeFile
	mem    map[Key][]byte
	logLen int64
	idxLen int64
	closed bool

	hits, misses, puts int64
	peerHits           int64

	// Stage-artifact traffic is counted apart from final records so
	// "records stored" keeps meaning "pipeline points answered" for
	// stats consumers, however many intermediate artifacts ride along.
	stageHits, stageMisses, stagePuts int64
	stageRecs                         int

	// hookMu guards the two cluster hooks below, which are configured
	// once at wiring time but read on every Put/lookup.
	hookMu  sync.RWMutex
	fetcher Fetcher
	onPut   func(k Key, payload []byte)
}

// openDirs guards against two Stores writing one directory from the
// same process — independently tracked append offsets would interleave
// and corrupt both files. Cross-process exclusion is the operator's job
// (see the package comment); in-process it is cheap to make a hard
// error instead of a corruption.
var openDirs = struct {
	mu   sync.Mutex
	dirs map[string]bool
}{dirs: make(map[string]bool)}

// Open opens (creating if needed) the store in dir and recovers the
// longest valid prefix of its files: replay stops at the first index
// entry that fails its own CRC, references a non-contiguous or
// out-of-range log extent, or points at a payload that fails its CRC;
// both files are truncated back to the validated prefix so subsequent
// appends continue from a clean end of log.
func Open(dir string) (*Store, error) { return open(dir, nil) }

// OpenWithFaults is Open with deliberate fault injection: every file
// operation the store issues flows through plan, which can fail, stall
// or tear writes and fail syncs on schedule. It exists to exercise the
// recovery path on purpose — the msfud soak harness runs its store this
// way — and has no place in production use. A nil plan is plain Open.
func OpenWithFaults(dir string, plan *FaultPlan) (*Store, error) { return open(dir, plan) }

// open opens (creating if needed) the store in dir, wrapping its files
// in plan's fault injectors when plan is non-nil.
func open(dir string, plan *FaultPlan) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	openDirs.mu.Lock()
	if openDirs.dirs[absDir] {
		openDirs.mu.Unlock()
		return nil, fmt.Errorf("store: %s is already open in this process (one writer per directory)", dir)
	}
	openDirs.dirs[absDir] = true
	openDirs.mu.Unlock()
	release := func() {
		openDirs.mu.Lock()
		delete(openDirs.dirs, absDir)
		openDirs.mu.Unlock()
	}
	rawLog, err := os.OpenFile(filepath.Join(dir, logName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		release()
		return nil, fmt.Errorf("store: %w", err)
	}
	rawIdx, err := os.OpenFile(filepath.Join(dir, idxName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		rawLog.Close()
		release()
		return nil, fmt.Errorf("store: %w", err)
	}
	var logF, idxF storeFile = rawLog, rawIdx
	if plan != nil {
		logF, idxF = plan.wrap(rawLog), plan.wrap(rawIdx)
	}
	s := &Store{dir: dir, absDir: absDir, logF: logF, idxF: idxF, mem: make(map[Key][]byte)}
	if err := s.recover(); err != nil {
		logF.Close()
		idxF.Close()
		release()
		return nil, err
	}
	return s, nil
}

// recover replays the index against the log and truncates both files to
// the longest valid prefix.
func (s *Store) recover() error {
	logBytes, err := io.ReadAll(s.logF)
	if err != nil {
		return fmt.Errorf("store: read log: %w", err)
	}
	idxBytes, err := io.ReadAll(s.idxF)
	if err != nil {
		return fmt.Errorf("store: read index: %w", err)
	}

	var validEntries int
	var validLog int64
	for off := 0; off+entrySize <= len(idxBytes); off += entrySize {
		e := idxBytes[off : off+entrySize]
		if crc32.ChecksumIEEE(e[:48]) != binary.LittleEndian.Uint32(e[48:52]) {
			break // torn or corrupt index entry
		}
		recOff := int64(binary.LittleEndian.Uint64(e[32:40]))
		recLen := int64(binary.LittleEndian.Uint32(e[40:44]))
		if recOff != validLog || recOff+recLen > int64(len(logBytes)) {
			break // non-contiguous entry, or log truncated under it
		}
		payload := logBytes[recOff : recOff+recLen]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(e[44:48]) {
			break // payload corrupt
		}
		var k Key
		copy(k[:], e[:32])
		// Copy out of the big read buffer so the log bytes can be freed.
		s.mem[k] = append([]byte(nil), payload...)
		if _, _, isStage := StagePayload(payload); isStage {
			s.stageRecs++
		}
		validEntries++
		validLog = recOff + recLen
	}

	if int64(validEntries*entrySize) != int64(len(idxBytes)) {
		if err := s.idxF.Truncate(int64(validEntries * entrySize)); err != nil {
			return fmt.Errorf("store: truncate index: %w", err)
		}
	}
	if validLog != int64(len(logBytes)) {
		if err := s.logF.Truncate(validLog); err != nil {
			return fmt.Errorf("store: truncate log: %w", err)
		}
	}
	if _, err := s.logF.Seek(validLog, io.SeekStart); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := s.idxF.Seek(int64(validEntries*entrySize), io.SeekStart); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.logLen = validLog
	s.idxLen = int64(validEntries * entrySize)
	return nil
}

// Dir reports the directory the store lives in.
func (s *Store) Dir() string { return s.dir }

// SetFetcher installs the read-through hook LookupReportContext
// consults on a local miss. A nil fetcher (the default) makes every
// lookup purely local. Safe to call concurrently with lookups.
func (s *Store) SetFetcher(f Fetcher) {
	s.hookMu.Lock()
	s.fetcher = f
	s.hookMu.Unlock()
}

// SetOnPut installs a hook invoked after every fresh Put (duplicates
// and failed appends do not fire it), outside the store's lock. The
// fabric uses it to replicate freshly computed records; the hook must
// treat the payload as read-only.
func (s *Store) SetOnPut(h func(k Key, payload []byte)) {
	s.hookMu.Lock()
	s.onPut = h
	s.hookMu.Unlock()
}

// Get returns the payload stored under k. The boolean reports whether
// the key was present; the returned slice must be treated as read-only.
func (s *Store) Get(k Key) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.mem[k]
	if ok {
		s.hits++
	} else {
		s.misses++
	}
	return p, ok
}

// getStage is Get under a stage key: the same map lookup, counted on
// the stage side of the stats ledger so final-record hit rates stay
// meaningful.
func (s *Store) getStage(k Key) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.mem[k]
	if ok {
		s.stageHits++
	} else {
		s.stageMisses++
	}
	return p, ok
}

// Put appends a record under k. A key already present is left untouched
// (results are deterministic per key, so the first record is as good as
// any) and Put returns nil. The payload is written to the log first and
// the index entry second, so a crash between the two leaves an orphan
// payload that recovery discards; if either write fails outright (a
// full disk, say), both files are rolled back to their pre-Put lengths
// — a torn index fragment left in place would break the fixed-width
// entry alignment and cost every later record at the next recovery.
func (s *Store) Put(k Key, payload []byte) error {
	fresh, err := s.put(k, payload)
	if err != nil || !fresh {
		return err
	}
	s.hookMu.RLock()
	h := s.onPut
	s.hookMu.RUnlock()
	if h != nil {
		h(k, payload)
	}
	return nil
}

// put appends the record under the store lock and reports whether the
// key was freshly added (false for duplicates).
func (s *Store) put(k Key, payload []byte) (fresh bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, ErrClosed
	}
	if _, ok := s.mem[k]; ok {
		return false, nil
	}
	if _, err := s.logF.Write(payload); err != nil {
		s.rollback()
		return false, fmt.Errorf("store: append log: %w", err)
	}
	var e [entrySize]byte
	copy(e[:32], k[:])
	binary.LittleEndian.PutUint64(e[32:40], uint64(s.logLen))
	binary.LittleEndian.PutUint32(e[40:44], uint32(len(payload)))
	binary.LittleEndian.PutUint32(e[44:48], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(e[48:52], crc32.ChecksumIEEE(e[:48]))
	if _, err := s.idxF.Write(e[:]); err != nil {
		s.rollback()
		return false, fmt.Errorf("store: append index: %w", err)
	}
	s.logLen += int64(len(payload))
	s.idxLen += entrySize
	s.mem[k] = append([]byte(nil), payload...)
	if _, _, isStage := StagePayload(payload); isStage {
		s.stagePuts++
		s.stageRecs++
	} else {
		s.puts++
	}
	return true, nil
}

// rollback restores both files to the last committed record boundary
// after a failed append — partial payloads and torn index fragments are
// truncated away so the next Put (or the next recovery) sees aligned,
// contiguous files. Errors are deliberately dropped: if even truncation
// fails the on-disk CRCs still confine the damage, at worst costing the
// records after the tear at the next Open.
func (s *Store) rollback() {
	s.logF.Truncate(s.logLen)
	s.logF.Seek(s.logLen, io.SeekStart)
	s.idxF.Truncate(s.idxLen)
	s.idxF.Seek(s.idxLen, io.SeekStart)
}

// Len reports the live record count, stage artifacts included. Callers
// asking "how many pipeline points does this store answer" want
// Stats().Records instead.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem)
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits: s.hits, Misses: s.misses, PeerHits: s.peerHits, Puts: s.puts,
		Records:   len(s.mem) - s.stageRecs,
		StageHits: s.stageHits, StageMisses: s.stageMisses, StagePuts: s.stagePuts,
		StageRecords: s.stageRecs,
		LogBytes:     s.logLen,
	}
}

// Sync flushes both files to stable storage. Appends are otherwise left
// to the OS page cache — recovery tolerates anything short of a flushed
// write — so callers that need a hard durability point (the service's
// graceful shutdown) call Sync explicitly.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.logF.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := s.idxF.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Close syncs and closes the store's files. A closed store rejects Put
// and Sync; Get keeps answering from memory.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	errSync1 := s.logF.Sync()
	errSync2 := s.idxF.Sync()
	err1 := s.logF.Close()
	err2 := s.idxF.Close()
	openDirs.mu.Lock()
	delete(openDirs.dirs, s.absDir)
	openDirs.mu.Unlock()
	for _, err := range []error{errSync1, errSync2, err1, err2} {
		if err != nil {
			return fmt.Errorf("store: close: %w", err)
		}
	}
	return nil
}
